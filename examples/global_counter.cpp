// Global page-view counter: the conflict-resolution extension in action
// (§II-B: PaRiS resolves conflicts with LWW by default but supports any
// commutative, associative merge).
//
// Five DCs concurrently increment the same counter key. With register
// (LWW) semantics, concurrent increments overwrite each other and views
// are lost; with counter semantics every delta survives and all replicas
// converge to the exact total.

#include <cstdio>
#include <vector>

#include "proto/sim_access.h"

using namespace paris;

namespace {

struct Blocking {
  sim::Simulation& sim;
  proto::Client& c;
  void start() {
    bool d = false;
    c.start_tx([&](TxId, Timestamp) { d = true; });
    while (!d) sim.step();
  }
  void commit() {
    bool d = false;
    c.commit([&](Timestamp) { d = true; });
    while (!d) sim.step();
  }
  std::int64_t read_counter(Key k) {
    bool d = false;
    std::int64_t out = 0;
    c.read({k},
           [&](std::vector<wire::Item> items) {
             out = items[0].v.empty() ? 0 : std::stoll(items[0].v);
             d = true;
           },
           wire::ReadMode::kCounter);
    while (!d) sim.step();
    return out;
  }
  std::string read_register(Key k) {
    bool d = false;
    std::string out;
    c.read({k}, [&](std::vector<wire::Item> items) {
      out = items[0].v;
      d = true;
    });
    while (!d) sim.step();
    return out;
  }
};

}  // namespace

int main() {
  proto::DeploymentConfig cfg;
  cfg.system = proto::System::kParis;
  cfg.topo = {/*num_dcs=*/5, /*num_partitions=*/10, /*replication=*/2};
  cfg.seed = 11;
  proto::Deployment dep(cfg);
  dep.start();
  dep.run_for(300'000);
  const auto& topo = dep.topo();

  const Key views = topo.make_key(3, 42);          // counter key
  const Key views_lww = topo.make_key(4, 42);      // same workload, LWW register

  std::vector<proto::Client*> clients;
  for (DcId d = 0; d < 5; ++d) clients.push_back(&dep.add_client(d, topo.partitions_at(d)[0]));

  std::printf("== page-view counter: 5 DCs increment concurrently ==\n\n");

  // Each DC records 20 views, interleaved with no settling: maximal
  // cross-DC write concurrency.
  const int per_dc = 20;
  for (int i = 0; i < per_dc; ++i) {
    for (auto* c : clients) {
      Blocking b{sim_of(dep), *c};
      b.start();
      c->add(views, 1);  // counter delta: merges by summation
      // Naive LWW emulation: read-modify-write a register (racy by design).
      const std::string cur = b.read_register(views_lww);
      c->write({{views_lww, std::to_string((cur.empty() ? 0 : std::stoll(cur)) + 1)}});
      b.commit();
    }
  }

  dep.run_for(1'500'000);  // full stabilization

  std::printf("expected total: %d views\n\n", per_dc * 5);
  std::printf("%-12s %16s %22s\n", "read from", "counter (merge)", "register (LWW rmw)");
  for (DcId d = 0; d < 5; ++d) {
    Blocking b{sim_of(dep), *clients[d]};
    b.start();
    const std::int64_t merged = b.read_counter(views);
    const std::string lww = b.read_register(views_lww);
    b.commit();
    std::printf("DC%-11u %16lld %22s\n", d, static_cast<long long>(merged),
                lww.empty() ? "0" : lww.c_str());
  }

  std::printf("\nThe counter converges to the exact total on every replica; the LWW\n"
              "register lost most concurrent increments (stale read-modify-write),\n"
              "which is why merge functions matter for this workload class.\n");
  return 0;
}
