// Bank-transfer / auditor example: atomic multi-partition writes under a
// concurrent read-only auditor.
//
// Accounts are sharded over all partitions (and thus replicated in subsets
// of the DCs). Transfer transactions move money between two random
// accounts — an atomic two-key write that frequently spans partitions in
// different DCs. Auditors in every DC continuously read ALL accounts in a
// single transaction and check that the total balance is conserved.
//
// TCC guarantees the audit can never observe a half-applied transfer:
// both legs carry the same commit timestamp, so a causal snapshot contains
// either both or neither (Proposition 4 in the paper). A violated invariant
// here means broken atomicity.

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "proto/sim_access.h"

using namespace paris;

namespace {

constexpr int kAccounts = 24;
constexpr std::int64_t kInitialBalance = 1000;

struct Blocking {
  sim::Simulation& sim;
  proto::Client& c;
  void start() {
    bool d = false;
    c.start_tx([&](TxId, Timestamp) { d = true; });
    while (!d) sim.step();
  }
  std::vector<wire::Item> read(std::vector<Key> ks) {
    bool d = false;
    std::vector<wire::Item> out;
    c.read(std::move(ks), [&](std::vector<wire::Item> i) { out = std::move(i), d = true; });
    while (!d) sim.step();
    return out;
  }
  void commit() {
    bool d = false;
    c.commit([&](Timestamp) { d = true; });
    while (!d) sim.step();
  }
};

std::int64_t balance_of(const wire::Item& item) {
  return item.v.empty() ? kInitialBalance : std::stoll(item.v);
}

}  // namespace

int main() {
  proto::DeploymentConfig cfg;
  cfg.system = proto::System::kParis;
  cfg.topo = {/*num_dcs=*/4, /*num_partitions=*/8, /*replication=*/2};
  cfg.seed = 99;
  proto::Deployment dep(cfg);
  dep.start();
  dep.run_for(300'000);
  const auto& topo = dep.topo();

  std::vector<Key> accounts;
  for (int i = 0; i < kAccounts; ++i)
    accounts.push_back(topo.make_key(static_cast<PartitionId>(i % topo.num_partitions()),
                                     500 + static_cast<std::uint64_t>(i)));

  auto& teller_client = dep.add_client(0, topo.partitions_at(0)[0]);
  Blocking teller{sim_of(dep), teller_client};

  std::vector<proto::Client*> auditors;
  for (DcId d = 0; d < topo.num_dcs(); ++d)
    auditors.push_back(&dep.add_client(d, topo.partitions_at(d)[0]));

  Rng rng(2718);
  int transfers = 0, audits = 0, anomalies = 0;

  std::printf("== bank: %d accounts x %lld initial; transfers with concurrent audits ==\n",
              kAccounts, static_cast<long long>(kInitialBalance));

  for (int round = 0; round < 40; ++round) {
    // One transfer: read both balances, move a random amount, commit
    // atomically. Source/destination usually live on different partitions
    // whose replicas are in different DC subsets.
    const auto from = static_cast<std::size_t>(rng.next_below(kAccounts));
    auto to = static_cast<std::size_t>(rng.next_below(kAccounts));
    if (to == from) to = (to + 1) % kAccounts;

    teller.start();
    const auto cur = teller.read({accounts[from], accounts[to]});
    const std::int64_t amount = 1 + static_cast<std::int64_t>(rng.next_below(50));
    teller_client.write(
        {{accounts[from], std::to_string(balance_of(cur[0]) - amount)},
         {accounts[to], std::to_string(balance_of(cur[1]) + amount)}});
    teller.commit();
    ++transfers;

    // Auditors in every DC take a full snapshot read at staggered times.
    dep.run_for(5'000 + rng.next_below(40'000));
    for (auto* a : auditors) {
      Blocking audit{sim_of(dep), *a};
      audit.start();
      const auto snapshot = audit.read(accounts);
      audit.commit();
      std::int64_t total = 0;
      for (const auto& item : snapshot) total += balance_of(item);
      ++audits;
      if (total != kAccounts * kInitialBalance) {
        ++anomalies;
        std::printf("round %2d: AUDIT ANOMALY in DC%u: total=%lld (expected %lld)\n",
                    round, a->dc(), static_cast<long long>(total),
                    static_cast<long long>(kAccounts * kInitialBalance));
      }
    }
  }

  std::printf("\n%d transfers, %d audits across %u DCs, %d anomalies\n", transfers, audits,
              topo.num_dcs(), anomalies);
  if (anomalies == 0) {
    std::printf("money conserved in every causal snapshot: atomic multi-partition "
                "writes + snapshot reads work as advertised\n");
  }
  return anomalies == 0 ? 0 : 1;
}
