// Quickstart: bring up a 3-DC partially-replicated PaRiS cluster, run a few
// interactive read-write transactions, and watch the stable snapshot (UST)
// advance.
//
//   cluster:  3 DCs (Virginia, Oregon, Ireland), 6 partitions, R = 2
//   client:   collocated with a coordinator partition server in DC 0
//
// Everything runs inside the deterministic simulator; the protocol code is
// the real thing (Algorithms 1-4 of the paper).

#include <cstdio>

#include "proto/sim_access.h"

using namespace paris;

namespace {

/// Minimal blocking adapter for the continuation-based client API: run the
/// simulation until the pending operation completes.
struct BlockingClient {
  sim::Simulation& sim;
  proto::Client& c;

  Timestamp start() {
    Timestamp out;
    bool done = false;
    c.start_tx([&](TxId, Timestamp s) { out = s, done = true; });
    while (!done) sim.step();
    return out;
  }
  wire::Item read(Key k) {
    wire::Item out;
    bool done = false;
    c.read({k}, [&](std::vector<wire::Item> items) { out = items[0], done = true; });
    while (!done) sim.step();
    return out;
  }
  Timestamp commit() {
    Timestamp out;
    bool done = false;
    c.commit([&](Timestamp ct) { out = ct, done = true; });
    while (!done) sim.step();
    return out;
  }
};

}  // namespace

int main() {
  // 1. Describe the deployment: topology + protocol knobs (defaults follow
  //    the paper: ΔR = 1ms, ΔG = ΔU = 5ms, HLC timestamps, AWS latencies).
  proto::DeploymentConfig cfg;
  cfg.system = proto::System::kParis;
  cfg.topo = {/*num_dcs=*/3, /*num_partitions=*/6, /*replication=*/2};
  cfg.seed = 2024;

  proto::Deployment dep(cfg);
  dep.start();
  std::printf("cluster up: %u DCs, %u partitions, R=%u (%u servers)\n",
              dep.topo().num_dcs(), dep.topo().num_partitions(), dep.topo().replication(),
              dep.topo().total_servers());

  // 2. Let replication heartbeats and the UST gossip settle.
  dep.run_for(300'000);

  // 3. Open a client session against a coordinator in DC 0.
  auto& client = dep.add_client(/*dc=*/0, dep.topo().partitions_at(0)[0]);
  BlockingClient bc{sim_of(dep), client};

  const Key alice = dep.topo().make_key(/*partition=*/0, /*rank=*/1);
  const Key bob = dep.topo().make_key(/*partition=*/1, /*rank=*/1);

  // 4. A read-write transaction updating two keys on different partitions.
  Timestamp snap = bc.start();
  std::printf("tx1 snapshot (UST) = %s\n", to_string(snap).c_str());
  client.write({{alice, "hello"}, {bob, "world"}});
  const Timestamp ct = bc.commit();
  std::printf("tx1 committed atomically at ct = %s\n", to_string(ct).c_str());

  // 5. Read-your-writes: immediately visible to this client via its write
  //    cache even though the commit is not yet in the stable snapshot.
  snap = bc.start();
  std::printf("tx2 snapshot = %s (< ct: commit not yet stable)\n", to_string(snap).c_str());
  std::printf("tx2 reads alice -> \"%s\" (from the client write cache)\n",
              bc.read(alice).v.c_str());
  bc.commit();

  // 6. After stabilization the write is in the snapshot of every DC; any
  //    client anywhere reads it without blocking.
  dep.run_for(400'000);
  auto& remote = dep.add_client(/*dc=*/2, dep.topo().partitions_at(2)[0]);
  BlockingClient rc{sim_of(dep), remote};
  snap = rc.start();
  std::printf("remote tx snapshot = %s (>= ct: now stable)\n", to_string(snap).c_str());
  std::printf("remote reads alice -> \"%s\", bob -> \"%s\" — both or neither, never one\n",
              rc.read(alice).v.c_str(), rc.read(bob).v.c_str());
  rc.commit();

  std::printf("\nsimulated %.1f ms, %llu events, %llu bytes on the wire\n",
              sim_of(dep).now() / 1000.0,
              static_cast<unsigned long long>(sim_of(dep).events_executed()),
              static_cast<unsigned long long>(net_of(dep).total_bytes_sent()));
  return 0;
}
