// Staleness monitor: watches the UST lag (how far the stable snapshot
// trails wall-clock time) on a 5-DC cluster, then injects a DC partition
// and shows the paper's §III-C availability behavior live:
//   * the UST freezes at ALL DCs (it is a system-wide minimum),
//   * local transactions keep completing without blocking,
//   * client write caches grow because they cannot be pruned,
//   * after the heal, the UST snaps back and caches drain.

#include <cstdio>

#include "proto/sim_access.h"

using namespace paris;

namespace {

struct Blocking {
  sim::Simulation& sim;
  proto::Client& c;
  Timestamp start() {
    bool d = false;
    Timestamp s;
    c.start_tx([&](TxId, Timestamp x) { s = x, d = true; });
    while (!d) sim.step();
    return s;
  }
  void commit() {
    bool d = false;
    c.commit([&](Timestamp) { d = true; });
    while (!d) sim.step();
  }
};

}  // namespace

int main() {
  proto::DeploymentConfig cfg;
  cfg.system = proto::System::kParis;
  cfg.topo = {/*num_dcs=*/5, /*num_partitions=*/10, /*replication=*/2};
  cfg.seed = 5;
  proto::Deployment dep(cfg);
  dep.start();
  const auto& topo = dep.topo();

  auto& client = dep.add_client(0, topo.partitions_at(0)[0]);
  Blocking bc{sim_of(dep), client};

  auto sample = [&](const char* phase) {
    // UST lag at one server per DC + a local transaction's latency.
    std::printf("%-22s t=%7.0f ms | UST lag per DC (ms):", phase, sim_of(dep).now() / 1000.0);
    for (DcId d = 0; d < topo.num_dcs(); ++d) {
      auto* s = dep.paris_server(d, topo.partitions_at(d)[0]);
      const double lag =
          (static_cast<double>(sim_of(dep).now()) - static_cast<double>(s->ust().physical_us())) /
          1000.0;
      std::printf(" %7.1f", lag);
    }
    const auto t0 = sim_of(dep).now();
    bc.start();
    client.write({{topo.make_key(topo.partitions_at(0)[0], 7), "tick"}});
    bc.commit();
    std::printf(" | local tx %5.2f ms | cache %zu\n",
                (sim_of(dep).now() - t0) / 1000.0, client.cache_size());
  };

  std::printf("== UST staleness monitor: 5 DCs (AWS latencies), 10 partitions, R=2 ==\n\n");

  dep.run_for(500'000);
  sample("steady state");
  dep.run_for(250'000);
  sample("steady state");

  std::printf("\n--- isolating DC4 (Sydney) from the rest of the system ---\n\n");
  net_of(dep).isolate_dc(4);
  for (int i = 0; i < 4; ++i) {
    dep.run_for(250'000);
    sample("partitioned");
  }
  std::printf("\n  note: UST lag grows ~linearly at every DC — the UST is the\n"
              "  system-wide minimum — yet local transactions stay fast and the\n"
              "  write cache holds unpruned commits.\n");

  std::printf("\n--- healing the partition ---\n\n");
  net_of(dep).heal_all();
  for (int i = 0; i < 3; ++i) {
    dep.run_for(250'000);
    sample("healed");
  }

  std::printf("\nUST snapped back to the steady-state lag; cache drained.\n");
  return 0;
}
