// Social-network example — the workload class the paper motivates PaRiS
// with (§VI: "applications that can tolerate weaker consistency and some
// data staleness, e.g., social networks").
//
// Users in different continents post, reply and read timelines. The causal
// guarantees on display:
//   * a reply is NEVER visible without the post it answers (causal
//     consistency across partitions in different DCs);
//   * a user always sees their own posts immediately (write cache);
//   * timeline reads are one-round and non-blocking, served from the
//     stable snapshot.
//
// Keys: post:<user>:<seq> holds post content; wall:<user> holds the latest
// post sequence number per user (a simple "timeline head" register).

#include <cstdio>
#include <string>
#include <vector>

#include "proto/sim_access.h"

using namespace paris;

namespace {

struct User {
  std::string name;
  DcId home;
  proto::Client* client = nullptr;
  int posts = 0;
};

struct Blocking {
  sim::Simulation& sim;
  proto::Client& c;
  Timestamp start() {
    bool d = false;
    Timestamp s;
    c.start_tx([&](TxId, Timestamp x) { s = x, d = true; });
    while (!d) sim.step();
    return s;
  }
  std::vector<wire::Item> read(std::vector<Key> ks) {
    bool d = false;
    std::vector<wire::Item> out;
    c.read(std::move(ks), [&](std::vector<wire::Item> items) {
      out = std::move(items);
      d = true;
    });
    while (!d) sim.step();
    return out;
  }
  void commit() {
    bool d = false;
    c.commit([&](Timestamp) { d = true; });
    while (!d) sim.step();
  }
};

// Key layout: user keys spread over partitions by hashing the name.
Key wall_key(const cluster::Topology& topo, const std::string& user) {
  const auto h = splitmix64(std::hash<std::string>{}(user));
  return topo.make_key(static_cast<PartitionId>(h % topo.num_partitions()), 1'000'000 + h % 1000);
}
Key post_key(const cluster::Topology& topo, const std::string& user, int seq) {
  const auto h = splitmix64(std::hash<std::string>{}(user) + static_cast<std::uint64_t>(seq) * 31);
  return topo.make_key(static_cast<PartitionId>(h % topo.num_partitions()), 2'000'000 + h % 100000);
}

}  // namespace

int main() {
  proto::DeploymentConfig cfg;
  cfg.system = proto::System::kParis;
  cfg.topo = {/*num_dcs=*/5, /*num_partitions=*/10, /*replication=*/2};
  cfg.seed = 7;
  proto::Deployment dep(cfg);
  dep.start();
  dep.run_for(300'000);
  const auto& topo = dep.topo();

  std::vector<User> users = {
      {"alice@virginia", 0}, {"bruno@oregon", 1}, {"chloe@ireland", 2},
      {"dev@mumbai", 3},     {"erin@sydney", 4},
  };
  for (auto& u : users) u.client = &dep.add_client(u.home, topo.partitions_at(u.home)[0]);

  std::printf("== social network on PaRiS: 5 DCs, 10 partitions, R=2 ==\n\n");

  // Alice posts; the post and her wall head update atomically.
  auto post = [&](User& u, const std::string& text) {
    Blocking b{sim_of(dep), *u.client};
    b.start();
    ++u.posts;
    u.client->write({{post_key(topo, u.name, u.posts), text},
                     {wall_key(topo, u.name), std::to_string(u.posts)}});
    b.commit();
    std::printf("[%7.1f ms] %s posts #%d: \"%s\"\n", sim_of(dep).now() / 1000.0,
                u.name.c_str(), u.posts, text.c_str());
  };

  // Reading a wall: fetch the head, then the post — all within one causal
  // snapshot, so the head never points at an invisible post.
  auto read_wall = [&](User& reader, User& author) {
    Blocking b{sim_of(dep), *reader.client};
    b.start();
    const auto head = b.read({wall_key(topo, author.name)})[0];
    if (head.v.empty()) {
      std::printf("[%7.1f ms] %s reads %s's wall: (empty snapshot)\n",
                  sim_of(dep).now() / 1000.0, reader.name.c_str(), author.name.c_str());
      b.commit();
      return std::string();
    }
    const int seq = std::stoi(head.v);
    const auto item = b.read({post_key(topo, author.name, seq)})[0];
    b.commit();
    std::printf("[%7.1f ms] %s reads %s's wall: #%d \"%s\"%s\n", sim_of(dep).now() / 1000.0,
                reader.name.c_str(), author.name.c_str(), seq, item.v.c_str(),
                item.v.empty() ? "  <-- WOULD BE A CAUSALITY VIOLATION" : "");
    if (item.v.empty()) std::abort();  // head visible but post missing: impossible
    return item.v;
  };

  post(users[0], "PaRiS paper accepted!");
  // Alice re-reads her own wall immediately: served by her write cache.
  read_wall(users[0], users[0]);

  // Remote users read before stabilization: they may see an older (empty)
  // snapshot — stale but consistent, and non-blocking.
  read_wall(users[4], users[0]);

  dep.run_for(400'000);  // let the UST pass the post

  // Now everyone sees it; Bruno replies, which causally depends on reading
  // Alice's post.
  const auto seen = read_wall(users[1], users[0]);
  post(users[1], "re: '" + seen.substr(0, 20) + "' congrats!");

  dep.run_for(400'000);

  // Every other user now reads both walls in one transaction: if Bruno's
  // reply is visible, Alice's post must be too (causal order preserved
  // across partitions replicated in different DCs).
  for (auto idx : {2, 3, 4}) {
    Blocking b{sim_of(dep), *users[idx].client};
    b.start();
    const auto items = b.read({wall_key(topo, users[0].name), wall_key(topo, users[1].name)});
    b.commit();
    const bool alice_visible = !items[0].v.empty();
    const bool reply_visible = !items[1].v.empty();
    std::printf("[%7.1f ms] %s sees alice:%s bruno-reply:%s\n", sim_of(dep).now() / 1000.0,
                users[idx].name.c_str(), alice_visible ? "yes" : "no",
                reply_visible ? "yes" : "no");
    if (reply_visible && !alice_visible) {
      std::printf("CAUSALITY VIOLATION\n");
      return 1;
    }
  }

  std::printf("\nno causality violations; %llu simulated events\n",
              static_cast<unsigned long long>(sim_of(dep).events_executed()));
  return 0;
}
