// MinTracker: multiset-equivalent semantics (insert/erase/min/empty) with
// O(live) memory under churn — the server's active-snapshot and prepared-pt
// trackers run it for the lifetime of a simulation.

#include <gtest/gtest.h>

#include <set>

#include "common/min_tracker.h"
#include "common/rng.h"

namespace paris {
namespace {

TEST(MinTracker, MatchesMultisetSemantics) {
  Rng rng(99);
  MinTracker<std::uint64_t> t;
  std::multiset<std::uint64_t> ref;
  for (int op = 0; op < 20'000; ++op) {
    if (ref.empty() || rng.next_below(3) != 0) {
      const std::uint64_t v = rng.next_below(50);  // many duplicates
      t.insert(v);
      ref.insert(v);
    } else {
      // Erase a random present value.
      auto it = ref.begin();
      std::advance(it, static_cast<long>(rng.next_below(ref.size())));
      t.erase(*it);
      ref.erase(it);
    }
    ASSERT_EQ(t.empty(), ref.empty());
    ASSERT_EQ(t.size(), ref.size());
    if (!ref.empty()) {
      ASSERT_EQ(t.min(), *ref.begin());
    }
  }
}

TEST(MinTracker, DrainingReclaimsAllEntries) {
  MinTracker<int> t;
  // Insert/erase pairs that drain the tracker between queries — the exact
  // pattern of prepared_pts_ when every 2PC completes between apply ticks.
  // Without reclamation this grew by one entry per transaction forever.
  for (int round = 0; round < 10'000; ++round) {
    t.insert(round);
    t.erase(round);
    ASSERT_TRUE(t.empty());
  }
  EXPECT_EQ(t.internal_entries(), 0u);
}

TEST(MinTracker, PinnedMinimumKeepsMemoryBounded) {
  MinTracker<int> t;
  t.insert(0);  // long-lived entry pinning the minimum (abandoned snapshot)
  for (int i = 1; i <= 10'000; ++i) {
    t.insert(i);
    t.erase(i);  // churn above the pin; never becomes the top
    EXPECT_EQ(t.min(), 0);
  }
  EXPECT_EQ(t.size(), 1u);
  // Compaction keeps internal storage O(live), not O(historical churn).
  EXPECT_LE(t.internal_entries(), 8u);
  t.erase(0);
  EXPECT_TRUE(t.empty());
}

}  // namespace
}  // namespace paris
