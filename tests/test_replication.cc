// Replication-layer behavior (Alg. 4): full replica convergence after
// quiescence, version-clock monotonicity, heartbeat-only idle traffic, and
// apply ordering guarantees observed through the tracer.

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/driver.h"
#include "workload/generator.h"

namespace paris::test {
namespace {

TEST(Replication, AllReplicasConvergeToIdenticalState) {
  // Random workload from every DC, then quiesce: each partition's replicas
  // must hold exactly the same version chains (count, order, and winning
  // version per key).
  Deployment dep(small_config(System::kParis, 4, 8, 3, /*seed=*/211));
  dep.start();
  settle(dep);
  const auto& topo = dep.topo();

  workload::Collector collector;
  collector.set_window(0, 1);  // measurement irrelevant here
  std::vector<std::unique_ptr<workload::Session>> sessions;
  workload::WorkloadSpec spec;
  spec.ops_per_tx = 6;
  spec.writes_per_tx = 3;
  spec.partitions_per_tx = 2;
  spec.multi_dc_ratio = 0.3;
  spec.keys_per_partition = 40;
  for (DcId d = 0; d < topo.num_dcs(); ++d) {
    auto& c = dep.add_client(d, topo.partitions_at(d)[0]);
    sessions.push_back(std::make_unique<workload::Session>(
        dep.exec(), c, workload::TxGenerator(topo, spec, d, 1000 + d), collector));
    sessions.back()->run();
  }
  dep.run_for(500'000);
  // Quiesce: stop generating new transactions by simply running past the
  // active ones (sessions keep going; instead compare a quiesced copy).
  // Simpler: freeze load by destroying sessions' ability to run — we just
  // stop stepping client callbacks by running replication longer than any
  // in-flight transaction and comparing *a snapshot at stable time*:
  // instead, compare replicas on versions with ut <= UST, which both
  // replicas must already have installed identically.
  auto* any_paris = dep.paris_server(0, topo.partitions_at(0)[0]);
  const Timestamp stable = any_paris->ust();
  ASSERT_FALSE(stable.is_zero());

  std::size_t keys_compared = 0;
  for (PartitionId p = 0; p < topo.num_partitions(); ++p) {
    const auto& reps = topo.replicas(p);
    const auto& first = dep.server(reps[0], p).kvstore();
    for (Key k : first.keys()) {
      const auto* v0 = first.read(k, stable);
      for (std::size_t r = 1; r < reps.size(); ++r) {
        const auto* vr = dep.server(reps[r], p).kvstore().read(k, stable);
        if (v0 == nullptr) {
          EXPECT_EQ(vr, nullptr);
          continue;
        }
        ASSERT_NE(vr, nullptr) << "replica missing a stable version, key " << k;
        EXPECT_EQ(v0->ut, vr->ut) << "k=" << k;
        EXPECT_EQ(v0->tx, vr->tx) << "k=" << k;
        EXPECT_EQ(v0->v, vr->v) << "k=" << k;
        ++keys_compared;
      }
    }
  }
  EXPECT_GT(keys_compared, 20u) << "workload too small to be meaningful";
}

TEST(Replication, MinVvIsMonotonicOverTime) {
  Deployment dep(small_config(System::kParis, 3, 6, 2, /*seed=*/223));
  dep.start();
  auto& c = dep.add_client(0, dep.topo().partitions_at(0)[0]);
  SyncClient sc(sim_of(dep), c);

  std::vector<Timestamp> prev(dep.servers().size(), kTsZero);
  for (int round = 0; round < 25; ++round) {
    sc.put({{dep.topo().make_key(round % 6, round), "x"}});
    dep.run_for(9'000);
    for (std::size_t i = 0; i < dep.servers().size(); ++i) {
      const Timestamp cur = dep.servers()[i]->min_vv();
      EXPECT_GE(cur, prev[i]) << "version clock went backwards at server " << i;
      prev[i] = cur;
    }
  }
}

TEST(Replication, IdleClusterSendsHeartbeatsNotBatches) {
  Deployment dep(small_config(System::kParis, 3, 6, 2, /*seed=*/227));
  dep.start();
  dep.run_for(300'000);  // no clients
  const auto st = dep.total_server_stats();
  EXPECT_GT(st.heartbeats_sent, 100u);
  EXPECT_EQ(st.replicate_batches_sent, 0u);
  EXPECT_EQ(st.applied_writes, 0u);
}

TEST(Replication, BusyPartitionShipsBatchesInsteadOfHeartbeats) {
  Deployment dep(small_config(System::kParis, 3, 6, 2, /*seed=*/229));
  dep.start();
  settle(dep);
  const PartitionId p = 0;
  auto& c = dep.add_client(0, p);
  SyncClient sc(sim_of(dep), c);
  for (int i = 0; i < 30; ++i) sc.put({{dep.topo().make_key(p, i), "v"}});
  settle(dep);  // let the last commits apply and replicate
  const auto st = dep.total_server_stats();
  EXPECT_GT(st.replicate_batches_sent, 0u);
  EXPECT_EQ(st.applied_writes, 60u);  // 30 writes x R=2 replicas
}

TEST(Replication, AppliesAlwaysAboveInstalledSnapshot) {
  // Whenever a server applies a transaction, its ct must exceed the
  // server's currently installed snapshot min(VV): local applies happen
  // before the tick advances vv[own], and a replicated batch's cts all
  // exceed the sender's previously advertised bound. If this ever failed,
  // a stabilized snapshot would retroactively gain a version — exactly the
  // unsoundness the UST design must exclude.
  struct ApplyTracer : proto::Tracer {
    Deployment* dep = nullptr;
    int violations = 0;
    void on_applied(DcId dc, PartitionId p, TxId, Timestamp ct, sim::SimTime) override {
      if (ct <= dep->server(dc, p).min_vv()) ++violations;
    }
  } tracer;

  Deployment dep(small_config(System::kParis, 3, 6, 2, /*seed=*/233), &tracer);
  tracer.dep = &dep;
  dep.start();
  settle(dep);
  auto& c = dep.add_client(0, dep.topo().partitions_at(0)[0]);
  SyncClient sc(sim_of(dep), c);
  for (int i = 0; i < 40; ++i) {
    sc.put({{dep.topo().make_key(i % 6, i), "v"}});
    dep.run_for(3'000);
  }
  EXPECT_EQ(tracer.violations, 0)
      << "a commit landed at or below an already-advertised version clock";
}

}  // namespace
}  // namespace paris::test
