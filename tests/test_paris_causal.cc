// The paper's §III-A partial-replication challenge scenarios, exercised
// directly. Placement with M=4, R=2 gives p0 -> {DC0,DC1}, p1 -> {DC1,DC2},
// p2 -> {DC2,DC3}, p3 -> {DC3,DC0}: dependent writes land on partitions with
// disjoint replica sets, and a reader in a third DC assembles its snapshot
// from servers in different DCs — exactly the hard case for consistency and
// atomicity under partial replication.

#include <gtest/gtest.h>

#include "test_util.h"

namespace paris::test {
namespace {

int decode_gen(const Value& v) { return v.empty() ? -1 : std::stoi(v); }

TEST(ParisCausal, DependentWritesNeverReadOutOfOrder_AcrossDcs) {
  Deployment dep(small_config(System::kParis, 4, 4, 2, /*seed=*/7));
  dep.start();
  settle(dep);
  const auto& topo = dep.topo();

  const Key x = topo.make_key(0, 1);  // partition 0: DCs {0,1}
  const Key y = topo.make_key(1, 1);  // partition 1: DCs {1,2}
  ASSERT_FALSE(topo.dc_replicates(3, 0));
  ASSERT_FALSE(topo.dc_replicates(3, 1));

  // Writer in DC0: X_i then Y_i, Y_i causally depends on X_i (same session,
  // read of x in between makes the dependency explicit).
  auto& wc = dep.add_client(0, topo.partitions_at(0)[0]);
  SyncClient w(sim_of(dep), wc);
  // Reader in DC3 reads both keys from remote DCs.
  auto& rc = dep.add_client(3, topo.partitions_at(3)[0]);
  SyncClient r(sim_of(dep), rc);

  for (int gen = 0; gen < 8; ++gen) {
    w.put({{x, std::to_string(gen)}});
    w.start();
    EXPECT_EQ(decode_gen(w.read1(x).v), gen);  // x -> y dependency
    w.write(y, std::to_string(gen));
    w.commit();

    // Poll at many offsets relative to replication/stabilization progress.
    for (int poll = 0; poll < 6; ++poll) {
      dep.run_for(23'000);
      r.start();
      const auto items = r.read({x, y});
      const int gx = decode_gen(items[0].v), gy = decode_gen(items[1].v);
      EXPECT_GE(gx, gy) << "saw Y_" << gy << " without X_" << gy
                        << " (causality violated across DCs)";
      r.commit();
    }
  }
}

TEST(ParisCausal, MultiPartitionWritesAreAtomic_AcrossDcs) {
  Deployment dep(small_config(System::kParis, 4, 4, 2, /*seed=*/11));
  dep.start();
  settle(dep);
  const auto& topo = dep.topo();

  const Key y = topo.make_key(1, 2);  // DCs {1,2}
  const Key z = topo.make_key(3, 2);  // DCs {3,0}
  auto& wc = dep.add_client(0, topo.partitions_at(0)[0]);
  SyncClient w(sim_of(dep), wc);
  auto& rc = dep.add_client(2, topo.partitions_at(2)[0]);
  SyncClient r(sim_of(dep), rc);

  for (int gen = 0; gen < 8; ++gen) {
    // One transaction writes both keys; replicas of y and z share no DC.
    w.start();
    w.write({{y, std::to_string(gen)}, {z, std::to_string(gen)}});
    w.commit();

    for (int poll = 0; poll < 6; ++poll) {
      dep.run_for(17'000);
      r.start();
      const auto items = r.read({y, z});
      EXPECT_EQ(decode_gen(items[0].v), decode_gen(items[1].v))
          << "atomicity violated: transaction became visible piecewise";
      r.commit();
    }
  }
}

TEST(ParisCausal, TransitiveDependencyThroughThirdClient) {
  // u1 -> u3 (read by middle client) -> u2: reader must never see u2
  // without u1 (§II-A case iii).
  Deployment dep(small_config(System::kParis, 3, 6, 2, /*seed=*/13));
  dep.start();
  settle(dep);
  const auto& topo = dep.topo();

  const Key a = topo.make_key(0, 7);
  const Key b = topo.make_key(1, 7);
  const Key c = topo.make_key(2, 7);

  auto& alice = dep.add_client(0, topo.partitions_at(0)[0]);
  auto& bob = dep.add_client(1, topo.partitions_at(1)[0]);
  auto& carol = dep.add_client(2, topo.partitions_at(2)[0]);
  SyncClient A(sim_of(dep), alice), B(sim_of(dep), bob), C(sim_of(dep), carol);

  A.put({{a, "1"}});  // u1
  settle(dep);

  B.start();
  ASSERT_EQ(B.read1(a).v, "1");  // B observed u1
  B.write(b, "1");               // u3 depends on u1
  B.commit();
  settle(dep);

  C.start();
  ASSERT_EQ(C.read1(b).v, "1");  // C observed u3
  C.write(c, "1");               // u2 depends on u3 -> depends on u1
  C.commit();
  settle(dep);

  // A fresh reader that sees c must see a (and b).
  auto& dave = dep.add_client(0, topo.partitions_at(0)[1]);
  SyncClient D(sim_of(dep), dave);
  D.start();
  const auto items = D.read({a, b, c});
  if (items[2].v == "1") {
    EXPECT_EQ(items[0].v, "1") << "transitive dependency violated (a missing)";
    EXPECT_EQ(items[1].v, "1") << "transitive dependency violated (b missing)";
  }
  D.commit();
}

TEST(ParisCausal, CommitTimestampsRespectCausality) {
  // Proposition 1: u1 -> u2 implies u1.ut < u2.ut, across clients and DCs.
  Deployment dep(small_config(System::kParis, 3, 6, 2, /*seed=*/17));
  dep.start();
  settle(dep);
  const auto& topo = dep.topo();
  const Key k1 = topo.make_key(0, 3), k2 = topo.make_key(3, 3);

  auto& c0 = dep.add_client(0, topo.partitions_at(0)[0]);
  auto& c1 = dep.add_client(1, topo.partitions_at(1)[0]);
  SyncClient a(sim_of(dep), c0), b(sim_of(dep), c1);

  const Timestamp ct1 = a.put({{k1, "u1"}});
  settle(dep);

  b.start();
  const Item got = b.read1(k1);
  ASSERT_EQ(got.v, "u1");
  b.write(k2, "u2");
  const Timestamp ct2 = b.commit();
  EXPECT_LT(ct1, ct2) << "dependent update must carry a larger timestamp";

  // Same-session chain (case i): each commit exceeds the previous.
  Timestamp prev = ct2;
  for (int i = 0; i < 5; ++i) {
    const Timestamp ct = b.put({{k2, "u" + std::to_string(i)}});
    EXPECT_GT(ct, prev);
    prev = ct;
  }
}

TEST(ParisCausal, ConcurrentConflictingWritesConvergeEverywhere) {
  // Two clients in different DCs race on the same key; after quiescence all
  // replicas must agree on the LWW winner.
  Deployment dep(small_config(System::kParis, 3, 6, 2, /*seed=*/19));
  dep.start();
  settle(dep);
  const auto& topo = dep.topo();
  const PartitionId p = 0;
  const Key k = topo.make_key(p, 5);

  auto& c0 = dep.add_client(topo.replicas(p)[0], p);
  auto& c1 = dep.add_client(topo.replicas(p)[1], p);
  SyncClient a(sim_of(dep), c0), b(sim_of(dep), c1);

  // Interleave conflicting updates without settling.
  for (int i = 0; i < 10; ++i) {
    a.put({{k, "a" + std::to_string(i)}});
    b.put({{k, "b" + std::to_string(i)}});
  }
  settle(dep, 500'000);

  const store::Version* v0 = nullptr;
  std::string value;
  for (DcId d : topo.replicas(p)) {
    const auto* v = dep.server(d, p).kvstore().latest(k);
    ASSERT_NE(v, nullptr);
    if (v0 == nullptr) {
      v0 = v;
      value = v->v;
    } else {
      EXPECT_EQ(v->ut, v0->ut) << "replicas diverged on winning timestamp";
      EXPECT_EQ(v->v, value) << "replicas diverged on winning value";
    }
  }
}

}  // namespace
}  // namespace paris::test
