// BPR baseline tests: fresh snapshots, read blocking (duration bounded by
// replication lag), drain order, and the freshness-vs-latency trade against
// PaRiS that motivates the paper.

#include <gtest/gtest.h>

#include "proto/bpr_server.h"
#include "test_util.h"

namespace paris::test {
namespace {

TEST(Bpr, FreshSnapshotReadsBlockForRoughlyOneWayDelay) {
  // Uniform 20ms one-way: a read at a just-assigned snapshot must wait for
  // the peer replica's version vector entry (heartbeat lag ~ one-way + ΔR).
  Deployment dep(small_config(System::kBpr, 3, 6, 2, /*seed=*/3, /*inter_dc=*/20'000));
  dep.start();
  settle(dep);

  auto& c = dep.add_client(0, dep.topo().partitions_at(0)[0]);
  SyncClient sc(sim_of(dep), c);
  const sim::SimTime t0 = sim_of(dep).now();
  sc.start();
  sc.read({dep.topo().make_key(dep.topo().partitions_at(0)[0], 1)});
  const sim::SimTime elapsed = sim_of(dep).now() - t0;
  sc.commit();

  EXPECT_GT(elapsed, 12'000u) << "BPR local read should block ~ one-way delay";
  EXPECT_LT(elapsed, 60'000u);
  EXPECT_GT(dep.total_server_stats().reads_blocked, 0u);
}

TEST(Bpr, EquivalentParisReadDoesNotBlock) {
  Deployment dep(small_config(System::kParis, 3, 6, 2, /*seed=*/3, /*inter_dc=*/20'000));
  dep.start();
  settle(dep);

  auto& c = dep.add_client(0, dep.topo().partitions_at(0)[0]);
  SyncClient sc(sim_of(dep), c);
  const sim::SimTime t0 = sim_of(dep).now();
  sc.start();
  sc.read({dep.topo().make_key(dep.topo().partitions_at(0)[0], 1)});
  const sim::SimTime elapsed = sim_of(dep).now() - t0;
  sc.commit();

  EXPECT_LT(elapsed, 2'000u) << "PaRiS local reads are non-blocking";
  EXPECT_EQ(dep.total_server_stats().reads_blocked, 0u);
}

TEST(Bpr, BlockedReadReturnsCorrectFreshValue) {
  Deployment dep(small_config(System::kBpr, 3, 6, 2, /*seed=*/5));
  dep.start();
  settle(dep);
  const auto& topo = dep.topo();
  const PartitionId p = 0;  // replicas {0, 1}
  const Key k = topo.make_key(p, 9);

  auto& wc = dep.add_client(topo.replicas(p)[0], p);
  SyncClient w(sim_of(dep), wc);
  const Timestamp ct = w.put({{k, "fresh"}});

  // Reader in the peer DC with a snapshot >= ct (folding its own clock):
  // must block until replication catches up, then see the fresh value.
  auto& rc = dep.add_client(topo.replicas(p)[1], p);
  SyncClient r(sim_of(dep), rc);
  const Timestamp snap = r.start();
  if (snap >= ct) {
    EXPECT_EQ(r.read1(k).v, "fresh")
        << "BPR snapshot covers the commit; blocking must surface it";
  }
  r.commit();
}

TEST(Bpr, FresherThanParisRightAfterCommit) {
  // The paper's trade-off: BPR sees recent writes sooner (blocking buys
  // freshness), PaRiS returns in the past until the UST catches up.
  // With 40ms one-way delays, replication lands ~42ms after commit while
  // the UST needs at least replication + root exchange + ΔU (~90ms+); a
  // probe at 55ms therefore splits the two systems.
  const Key probe_rank = 31;
  auto freshness = [&](System sys) {
    Deployment dep(small_config(sys, 3, 6, 2, /*seed=*/7, /*inter_dc=*/40'000));
    dep.start();
    settle(dep);
    const auto& topo = dep.topo();
    const PartitionId p = 0;
    const Key k = topo.make_key(p, probe_rank);
    auto& wc = dep.add_client(topo.replicas(p)[0], p);
    SyncClient w(sim_of(dep), wc);
    w.put({{k, "new"}});
    dep.run_for(55'000);
    auto& rc = dep.add_client(topo.replicas(p)[1], p);
    SyncClient r(sim_of(dep), rc);
    r.start();
    const std::string got = r.read1(k).v;
    r.commit();
    return got;
  };
  EXPECT_EQ(freshness(System::kBpr), "new");
  EXPECT_EQ(freshness(System::kParis), "") << "PaRiS still serves the stale snapshot";
}

TEST(Bpr, ManyBlockedReadsAllDrain) {
  Deployment dep(small_config(System::kBpr, 3, 6, 2, /*seed=*/9));
  dep.start();
  settle(dep);
  const auto& topo = dep.topo();

  // Fire a burst of transactions from several clients; every read
  // eventually completes (no lost wakeups) and blocked stats accumulate.
  std::vector<std::unique_ptr<SyncClient>> clients;
  int completed = 0;
  for (int i = 0; i < 8; ++i) {
    auto& c = dep.add_client(i % 3, topo.partitions_at(i % 3)[i % 2]);
    c.start_tx([&, i, cp = &c](TxId, Timestamp) {
      cp->read({topo.make_key(i % 6, i), topo.make_key((i + 1) % 6, i)},
               [&, cp](std::vector<Item>) { cp->commit([&](Timestamp) { ++completed; }); });
    });
  }
  dep.run_for(1'000'000);
  EXPECT_EQ(completed, 8);
  const auto st = dep.total_server_stats();
  EXPECT_GT(st.reads_blocked, 0u);
  EXPECT_GT(st.blocked_time_us, 0u);
  for (const auto& s : dep.servers()) {
    auto* b = dynamic_cast<proto::BprServer*>(s.get());
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->blocked_reads_pending(), 0u) << "no read left parked";
  }
}

TEST(Bpr, LocalStableTracksMinVv) {
  Deployment dep(small_config(System::kBpr, 3, 6, 2));
  dep.start();
  dep.run_for(200'000);
  for (const auto& s : dep.servers()) {
    auto* b = dynamic_cast<proto::BprServer*>(s.get());
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->local_stable(), b->min_vv());
    EXPECT_EQ(b->stable_snapshot(), b->min_vv());
  }
}

}  // namespace
}  // namespace paris::test
