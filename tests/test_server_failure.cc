// Server-failure scenarios (§III-C "Failures within a DC"): a crashed
// server stalls the UST system-wide — but only until a (state-preserving)
// backup takes over — and abandoned client transaction contexts are reaped
// by timeout so they cannot pin the GC watermark forever.

#include <gtest/gtest.h>

#include "proto/paris_server.h"
#include "test_util.h"

namespace paris::test {
namespace {

TEST(ServerFailure, CrashedServerFreezesUstUntilFailover) {
  Deployment dep(small_config(System::kParis, 3, 6, 2, /*seed=*/81));
  dep.start();
  settle(dep);

  auto* victim = dep.paris_server(1, dep.topo().partitions_at(1)[0]);
  ASSERT_NE(victim, nullptr);
  auto* observer = dep.paris_server(0, dep.topo().partitions_at(0)[0]);

  const Timestamp before = observer->ust();
  ASSERT_FALSE(before.is_zero());

  // Crash: the server stops applying, heartbeating and gossiping; its
  // inbound messages queue at the network layer.
  net_of(dep).pause_node(victim->node());
  dep.run_for(400'000);
  const Timestamp frozen = observer->ust();
  // The UST may advance by at most the in-flight slack, then stalls.
  EXPECT_LE(frozen.physical_us(), before.physical_us() + 100'000);
  dep.run_for(300'000);
  EXPECT_LE(observer->ust().physical_us(), frozen.physical_us() + 20'000)
      << "UST kept advancing past a crashed contributor";

  // Failover: the backup resumes with the replicated state; queued
  // messages drain, heartbeats resume, the UST catches up.
  net_of(dep).resume_node(victim->node());
  settle(dep, 600'000);
  EXPECT_GT(observer->ust(), frozen) << "UST must recover after failover";
  const auto lag = sim_of(dep).now() - observer->ust().physical_us();
  EXPECT_LT(lag, 200'000u) << "UST should return to steady-state lag";
}

TEST(ServerFailure, ReadsNonBlockingWhileServerCrashed) {
  // Reads access the stable snapshot, so a crashed server elsewhere never
  // blocks a read served by a live replica (§III-C: "reads are non-blocking
  // also with such mechanisms enabled").
  Deployment dep(small_config(System::kParis, 3, 6, 2, /*seed=*/83));
  dep.start();
  settle(dep);
  const auto& topo = dep.topo();

  // Crash DC1's replica of partition 0 (replicas {0,1}); read partition 0
  // in DC0 (live replica).
  net_of(dep).pause_node(dep.server(1, 0).node());
  dep.run_for(100'000);

  auto& c = dep.add_client(0, 0);
  SyncClient sc(sim_of(dep), c);
  const sim::SimTime t0 = sim_of(dep).now();
  sc.start();
  sc.read({topo.make_key(0, 3)});
  sc.commit();
  EXPECT_LT(sim_of(dep).now() - t0, 10'000u);
  net_of(dep).resume_node(dep.server(1, 0).node());
}

TEST(ServerFailure, AbandonedTxContextReapedByTimeout) {
  auto cfg = small_config(System::kParis, 3, 6, 2, /*seed=*/87);
  cfg.protocol.tx_context_timeout_us = 300'000;  // short for the test
  Deployment dep(cfg);
  dep.start();
  settle(dep);
  const PartitionId p = dep.topo().partitions_at(0)[0];

  // A client starts a transaction and "crashes" (never commits/ends it).
  auto& ghost = dep.add_client(0, p);
  SyncClient gs(sim_of(dep), ghost);
  const Timestamp abandoned_snap = gs.start();
  ASSERT_FALSE(abandoned_snap.is_zero());

  // While the context lives, it pins the GC watermark at its snapshot.
  auto* server = dep.paris_server(0, p);
  dep.run_for(150'000);
  EXPECT_LE(server->gc_watermark_value(), abandoned_snap);

  // After the timeout the reaper drops it and the watermark moves past.
  dep.run_for(1'200'000);
  EXPECT_GT(server->gc_watermark_value(), abandoned_snap)
      << "abandoned context still pinning GC";
}

TEST(ServerFailure, CommittingContextIsNeverReaped) {
  // Cut the network mid-2PC so a commit stays in flight well past the
  // context timeout: the reaper must leave it alone, and the commit must
  // complete after heal.
  auto cfg = small_config(System::kParis, 3, 6, 2, /*seed=*/89);
  cfg.protocol.tx_context_timeout_us = 200'000;
  Deployment dep(cfg);
  dep.start();
  settle(dep);
  const auto& topo = dep.topo();

  // Find a partition whose preferred target from DC0 is remote (DC2), so
  // the prepare crosses the DC0-DC2 link.
  PartitionId remote_p = topo.num_partitions();
  for (PartitionId p = 0; p < topo.num_partitions(); ++p)
    if (topo.target_dc(0, p) == 2) {
      remote_p = p;
      break;
    }
  ASSERT_LT(remote_p, topo.num_partitions());

  auto& c = dep.add_client(0, topo.partitions_at(0)[0]);
  bool committed = false;
  c.start_tx([&](TxId, Timestamp) {
    net_of(dep).partition_dcs(0, 2);  // strand the prepare
    c.write({{topo.make_key(remote_p, 1), "stranded"}});
    c.commit([&](Timestamp) { committed = true; });
  });
  dep.run_for(1'000'000);  // 5x the context timeout
  EXPECT_FALSE(committed);

  net_of(dep).heal_all();
  dep.run_for(500'000);
  EXPECT_TRUE(committed) << "2PC must complete after heal (context survived)";
}

}  // namespace
}  // namespace paris::test
