// Fault-tolerance scenarios on the REAL thread runtime — the ports of
// test_failures.cc's simulator scenarios that the ReliableTransport +
// PartitionTransport stack makes possible. The simulator buffers traffic
// across partitions (TCP connections surviving the outage); on threads a
// blackout drops packets and the at-least-once layer must recover them, so
// these tests exercise the full retransmission machinery end to end:
// island writes converge after heal, local traffic flows during a remote
// blackout, remote reads stall exactly as long as the partition, and the
// exactness + causal + session checkers stay green across heal cycles.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "proto/deployment.h"
#include "verify/history.h"
#include "workload/experiment.h"

namespace paris::test {
namespace {

using proto::Client;
using proto::Deployment;
using proto::DeploymentConfig;
using proto::System;
using runtime::PartitionWindow;
using wire::Item;
using wire::WriteKV;

/// Sanitizer builds run several times slower; every wall-clock window and
/// sleep below scales up so the scenarios keep their shape (the blackout
/// still covers setup + the in-blackout operations, heal still lands well
/// before the final assertions).
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr std::uint64_t kTimeScale = 5;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr std::uint64_t kTimeScale = 5;
#else
constexpr std::uint64_t kTimeScale = 1;
#endif
#else
constexpr std::uint64_t kTimeScale = 1;
#endif

DeploymentConfig threads_config(System sys, std::uint32_t dcs, std::uint32_t partitions,
                                std::uint32_t replication, std::uint64_t seed) {
  DeploymentConfig cfg;
  cfg.system = sys;
  cfg.topo = {dcs, partitions, replication};
  cfg.runtime = runtime::Kind::kThreads;
  cfg.worker_threads = 2;
  cfg.aws_latency = false;
  cfg.codec = sim::CodecMode::kBytes;
  cfg.reliable = true;
  // RTO scales with the sanitizer slowdown so inflated queueing delay does
  // not read as loss (spurious-retransmission collapse).
  cfg.reliable_cfg.rto_us = 10'000 * kTimeScale;
  cfg.reliable_cfg.max_rto_us = 40'000 * kTimeScale;
  cfg.seed = seed;
  return cfg;
}

/// Blocking facade over the continuation-based client API for the thread
/// runtime: every operation is posted to the client's own worker and the
/// main thread polls for completion (the threads analogue of SyncClient,
/// which steps the simulator instead).
class ThreadSyncClient {
 public:
  ThreadSyncClient(Deployment& dep, Client& c) : dep_(dep), c_(c) {}

  Timestamp start(std::uint64_t timeout_ms = 5'000 * kTimeScale) {
    auto done = std::make_shared<std::atomic<bool>>(false);
    auto snap = std::make_shared<Timestamp>();
    dep_.exec().post(c_.node(), [this, done, snap] {
      c_.start_tx([done, snap](TxId, Timestamp s) {
        *snap = s;
        done->store(true, std::memory_order_release);
      });
    });
    wait(*done, timeout_ms, "start_tx");
    return *snap;
  }

  std::vector<Item> read(std::vector<Key> keys,
                         std::uint64_t timeout_ms = 5'000 * kTimeScale) {
    auto done = std::make_shared<std::atomic<bool>>(false);
    auto out = std::make_shared<std::vector<Item>>();
    dep_.exec().post(c_.node(), [this, keys = std::move(keys), done, out]() mutable {
      c_.read(std::move(keys), [done, out](std::vector<Item> items) {
        *out = std::move(items);
        done->store(true, std::memory_order_release);
      });
    });
    wait(*done, timeout_ms, "read");
    return *out;
  }

  void write(Key k, Value v) {
    auto done = std::make_shared<std::atomic<bool>>(false);
    dep_.exec().post(c_.node(), [this, k, v = std::move(v), done]() mutable {
      c_.write({WriteKV{k, std::move(v)}});
      done->store(true, std::memory_order_release);
    });
    wait(*done, 5'000 * kTimeScale, "write");
  }

  Timestamp commit(std::uint64_t timeout_ms = 5'000 * kTimeScale) {
    auto done = std::make_shared<std::atomic<bool>>(false);
    auto ct = std::make_shared<Timestamp>();
    dep_.exec().post(c_.node(), [this, done, ct] {
      c_.commit([done, ct](Timestamp t) {
        *ct = t;
        done->store(true, std::memory_order_release);
      });
    });
    wait(*done, timeout_ms, "commit");
    return *ct;
  }

  Timestamp put(Key k, Value v, std::uint64_t timeout_ms = 5'000 * kTimeScale) {
    start(timeout_ms);
    write(k, std::move(v));
    return commit(timeout_ms);
  }

 private:
  void wait(std::atomic<bool>& done, std::uint64_t timeout_ms, const char* what) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (!done.load(std::memory_order_acquire)) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << what << " did not complete within " << timeout_ms << " ms";
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  Deployment& dep_;
  Client& c_;
};

void sleep_ms(std::uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

TEST(ThreadFailures, IslandWriteConvergesAfterHeal) {
  // DC2's replica of partition p is cut off from its peer while a client in
  // DC2 writes; the blackout eats every replication attempt, and after heal
  // the retransmission layer must deliver the write to DC0.
  auto cfg = threads_config(System::kParis, 3, 6, 2, /*seed=*/301);
  // Blackout 0 <-> 2 from construction (covers the write below) to 900ms —
  // long enough that setup + the put land inside it even under sanitizers.
  cfg.partitions.windows.push_back(PartitionWindow{0, 2, false, 0, 900'000 * kTimeScale});
  verify::HistoryRecorder history;
  Deployment dep(cfg, &history);
  dep.start();
  const auto& topo = dep.topo();
  const PartitionId p = 2;  // replicas {2, 0} (placement: p % M primary)
  ASSERT_TRUE(topo.dc_replicates(2, p));
  ASSERT_TRUE(topo.dc_replicates(0, p));
  const Key k = topo.make_key(p, 4);

  auto& wc = dep.add_client(2, p);
  auto& rc = dep.add_client(1, topo.partitions_at(1)[0]);
  dep.run_for(0);  // spawn workers; clients must already be registered

  ThreadSyncClient w(dep, wc);
  w.put(k, "island-write");  // commits locally at DC2 during the blackout

  sleep_ms(1'300 * kTimeScale);  // heal + retransmission + stabilization slack

  // It must become readable from a third DC through the resumed UST. An
  // absent read here is legitimate until stabilization re-covers the
  // write's commit timestamp (reads are exact at their snapshot), so poll:
  // the property is convergence, not a fixed deadline.
  ThreadSyncClient r(dep, rc);
  std::string got;
  for (int attempt = 0; attempt < 40 && got.empty(); ++attempt) {
    r.start();
    const auto items = r.read({k});
    r.commit();
    ASSERT_EQ(items.size(), 1u);
    if (!items[0].v.empty()) got = items[0].v;
    if (got.empty()) sleep_ms(100 * kTimeScale);
  }
  EXPECT_EQ(got, "island-write") << "island write never became readable after heal";

  dep.stop();
  const auto* v = dep.server(0, p).kvstore().latest(k);
  ASSERT_NE(v, nullptr) << "replication must resume after heal";
  EXPECT_EQ(v->v, "island-write");
  EXPECT_GT(dep.partition_transport()->stats().dropped, 0u);
  EXPECT_GT(dep.reliable_transport()->stats().retransmits, 0u);
  for (const auto& viol : history.check()) ADD_FAILURE() << viol;
}

TEST(ThreadFailures, LocalTxsFlowWhileRemoteDcIsolated) {
  // DC2 fully isolated: a DC0 client touching only DC0-replicated
  // partitions keeps committing promptly (PaRiS local ops stay available,
  // §III-C), while the blackout is active.
  auto cfg = threads_config(System::kParis, 3, 6, 2, /*seed=*/303);
  cfg.partitions.windows.push_back(PartitionWindow{2, 0, true, 0, 1'500'000 * kTimeScale});
  Deployment dep(cfg);
  dep.start();
  const auto& topo = dep.topo();
  auto& c = dep.add_client(0, topo.partitions_at(0)[0]);
  dep.run_for(0);

  ThreadSyncClient sc(dep, c);
  const auto& locals = topo.partitions_at(0);
  for (int i = 0; i < 5; ++i) {
    // Generous per-op timeout, but far below the blackout length: if local
    // ops waited for the isolated DC, these would time out.
    sc.start(1'000 * kTimeScale);
    sc.write(topo.make_key(locals[i % locals.size()], i), "during-blackout");
    sc.commit(1'000 * kTimeScale);
  }
  dep.stop();
  EXPECT_GT(dep.partition_transport()->stats().dropped, 0u)
      << "the isolation must actually have been active (heartbeats eaten)";
}

TEST(ThreadFailures, RemoteReadStallsUntilHealThenCompletes) {
  // R=1: partitions have a single replica, so a read of a partition owned
  // by a blacked-out DC has no alternative replica and must stall exactly
  // as long as the blackout (the at-least-once layer keeps retrying), then
  // complete — the thread-runtime port of ParisRemoteReadCompletesAfterHeal.
  auto cfg = threads_config(System::kParis, 3, 3, 1, /*seed=*/307);
  // Long blackout: sanitizer builds slow setup down, and the mid-blackout
  // assertion below must still land well inside the window.
  cfg.partitions.windows.push_back(PartitionWindow{0, 1, false, 0, 1'200'000 * kTimeScale});
  Deployment dep(cfg);
  dep.start();
  const auto& topo = dep.topo();

  PartitionId remote_p = topo.num_partitions();
  for (PartitionId p = 0; p < topo.num_partitions(); ++p) {
    if (!topo.dc_replicates(0, p) && topo.target_dc(0, p) == 1) {
      remote_p = p;
      break;
    }
  }
  ASSERT_LT(remote_p, topo.num_partitions());

  auto& c = dep.add_client(0, topo.partitions_at(0)[0]);
  dep.run_for(0);

  auto read_done = std::make_shared<std::atomic<bool>>(false);
  dep.exec().post(c.node(), [&c, &topo, remote_p, read_done] {
    c.start_tx([&c, &topo, remote_p, read_done](TxId, Timestamp) {
      c.read({topo.make_key(remote_p, 1)},
             [read_done](std::vector<Item>) { read_done->store(true); });
    });
  });

  sleep_ms(400 * kTimeScale);  // well inside the blackout
  EXPECT_FALSE(read_done->load()) << "remote read must stall while partitioned";

  sleep_ms(1'200 * kTimeScale);  // past heal + retransmission slack
  EXPECT_TRUE(read_done->load()) << "remote read must complete after heal";
  dep.stop();
}

TEST(ThreadFailures, ConsistencyHoldsAcrossPartitionHealCycles) {
  // Two blackout/heal cycles under workload traffic; every checker —
  // exactness, causal safety, per-session monotonic snapshots — must stay
  // green, for both systems.
  for (const auto sys : {System::kParis, System::kBpr}) {
    workload::ExperimentConfig cfg;
    cfg.system = sys;
    cfg.runtime = runtime::Kind::kThreads;
    cfg.worker_threads = 2;
    cfg.num_dcs = 3;
    cfg.num_partitions = 6;
    cfg.replication = 2;
    cfg.threads_per_process = 1;
    cfg.workload.ops_per_tx = 8;
    cfg.workload.writes_per_tx = 2;
    cfg.workload.keys_per_partition = 100;
    cfg.warmup_us = 50'000 * kTimeScale;
    cfg.measure_us = 900'000 * kTimeScale;
    cfg.aws_latency = false;
    cfg.codec = sim::CodecMode::kBytes;
    cfg.check_consistency = true;
    cfg.reliable = true;
    cfg.reliable_cfg.rto_us = 10'000 * kTimeScale;
    cfg.reliable_cfg.max_rto_us = 40'000 * kTimeScale;
    cfg.partitions.windows.push_back(
        PartitionWindow{0, 1, false, 150'000 * kTimeScale, 350'000 * kTimeScale});
    cfg.partitions.windows.push_back(
        PartitionWindow{0, 2, false, 550'000 * kTimeScale, 750'000 * kTimeScale});
    cfg.seed = 311;

    const auto res = workload::run_experiment(cfg);
    SCOPED_TRACE(proto::system_name(sys));
    EXPECT_GT(res.committed, 0u);
    EXPECT_GT(res.partition.dropped, 0u);
    EXPECT_GT(res.reliable.retransmits, 0u);
    for (const auto& v : res.violations) ADD_FAILURE() << v;
  }
}

}  // namespace
}  // namespace paris::test
