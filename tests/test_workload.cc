// Workload generator and driver tests: transaction shape, locality ratios,
// partition fan-out, zipfian targeting and collector windowing.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/driver.h"
#include "workload/generator.h"

namespace paris::workload {
namespace {

cluster::Topology paper_topo() { return cluster::Topology({5, 45, 2}); }

TEST(WorkloadSpec, PresetsMatchPaper) {
  const auto b = WorkloadSpec::read_heavy();
  EXPECT_EQ(b.ops_per_tx, 20u);
  EXPECT_EQ(b.reads_per_tx(), 19u);
  EXPECT_EQ(b.writes_per_tx, 1u);
  const auto a = WorkloadSpec::write_heavy();
  EXPECT_EQ(a.reads_per_tx(), 10u);
  EXPECT_EQ(a.writes_per_tx, 10u);
  EXPECT_NE(a.describe().find("10r:10w"), std::string::npos);
}

TEST(TxGenerator, TransactionShape) {
  const auto topo = paper_topo();
  TxGenerator gen(topo, WorkloadSpec::read_heavy(), /*dc=*/0, /*seed=*/1);
  for (int i = 0; i < 200; ++i) {
    const auto plan = gen.next();
    EXPECT_EQ(plan.reads.size(), 19u);
    EXPECT_EQ(plan.writes.size(), 1u);
    for (const auto& w : plan.writes) EXPECT_EQ(w.v.size(), 8u);
  }
}

TEST(TxGenerator, LocalTxOnlyTouchesLocalPartitions) {
  const auto topo = paper_topo();
  auto spec = WorkloadSpec::read_heavy();
  spec.multi_dc_ratio = 0.0;
  TxGenerator gen(topo, spec, /*dc=*/2, /*seed=*/3);
  for (int i = 0; i < 300; ++i) {
    const auto plan = gen.next();
    EXPECT_FALSE(plan.multi_dc);
    for (Key k : plan.reads)
      EXPECT_TRUE(topo.dc_replicates(2, topo.partition_of(k)))
          << "local-DC tx read a non-local partition";
    for (const auto& w : plan.writes)
      EXPECT_TRUE(topo.dc_replicates(2, topo.partition_of(w.k)));
  }
}

TEST(TxGenerator, MultiRatioIsCalibrated) {
  const auto topo = paper_topo();
  auto spec = WorkloadSpec::read_heavy();
  spec.multi_dc_ratio = 0.10;
  TxGenerator gen(topo, spec, 0, 5);
  int multi = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) multi += gen.next().multi_dc;
  EXPECT_NEAR(static_cast<double>(multi) / n, 0.10, 0.01);
}

TEST(TxGenerator, TouchesExactlyRequestedPartitionCount) {
  const auto topo = paper_topo();
  auto spec = WorkloadSpec::read_heavy();
  spec.partitions_per_tx = 4;
  TxGenerator gen(topo, spec, 1, 7);
  for (int i = 0; i < 200; ++i) {
    const auto plan = gen.next();
    std::set<PartitionId> parts;
    for (Key k : plan.reads) parts.insert(topo.partition_of(k));
    for (const auto& w : plan.writes) parts.insert(topo.partition_of(w.k));
    EXPECT_EQ(parts.size(), 4u);
  }
}

TEST(TxGenerator, WritesSpreadAcrossPartitionsInWriteHeavyMix) {
  const auto topo = paper_topo();
  TxGenerator gen(topo, WorkloadSpec::write_heavy(), 0, 9);
  const auto plan = gen.next();
  std::set<PartitionId> wparts;
  for (const auto& w : plan.writes) wparts.insert(topo.partition_of(w.k));
  EXPECT_GE(wparts.size(), 2u) << "10 writes round-robin over 4 partitions";
}

TEST(TxGenerator, KeysAreZipfSkewed) {
  const auto topo = paper_topo();
  auto spec = WorkloadSpec::read_heavy();
  spec.multi_dc_ratio = 0;
  TxGenerator gen(topo, spec, 0, 11);
  std::map<std::uint64_t, int> rank_freq;
  for (int i = 0; i < 3000; ++i) {
    const auto plan = gen.next();
    for (Key k : plan.reads) rank_freq[k / topo.num_partitions()]++;
  }
  // Rank 0 must dominate under zipf(0.99).
  int max_rank_count = 0;
  std::uint64_t hottest = 1;
  for (const auto& [rank, cnt] : rank_freq)
    if (cnt > max_rank_count) {
      max_rank_count = cnt;
      hottest = rank;
    }
  EXPECT_EQ(hottest, 0u);
}

TEST(TxGenerator, DeterministicPerSeed) {
  const auto topo = paper_topo();
  TxGenerator g1(topo, WorkloadSpec::read_heavy(), 0, 42);
  TxGenerator g2(topo, WorkloadSpec::read_heavy(), 0, 42);
  for (int i = 0; i < 50; ++i) {
    const auto a = g1.next(), b = g2.next();
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
  }
}

TEST(TxGenerator, ValuesAreUnique) {
  const auto topo = paper_topo();
  TxGenerator gen(topo, WorkloadSpec::write_heavy(), 0, 13);
  std::set<Value> values;
  for (int i = 0; i < 100; ++i)
    for (const auto& w : gen.next().writes) values.insert(w.v);
  EXPECT_EQ(values.size(), 1000u) << "checker relies on distinguishable values";
}

TEST(Collector, WindowFiltersAndAggregates) {
  Collector col;
  col.set_window(1000, 2000);
  col.record_tx(500, 900, false);    // before window: dropped
  col.record_tx(900, 1100, false);   // finished inside: counted
  col.record_tx(1500, 1800, true);   // inside: counted (multi)
  col.record_tx(1900, 2000, false);  // finishes at end boundary: dropped
  EXPECT_EQ(col.committed(), 2u);
  EXPECT_EQ(col.latency().count(), 2u);
  EXPECT_EQ(col.latency_local().count(), 1u);
  EXPECT_EQ(col.latency_multi().count(), 1u);
  EXPECT_DOUBLE_EQ(col.window_seconds(), 0.001);
  EXPECT_DOUBLE_EQ(col.throughput_tx_s(), 2000.0);
}

}  // namespace
}  // namespace paris::workload
