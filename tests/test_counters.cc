// Convergent-counter conflict resolution (§II-B extension point): the paper
// resolves conflicts with LWW by default but allows any commutative,
// associative merge. Counter deltas merge by summation, so concurrent
// increments from different DCs all survive — exactly what LWW cannot do.

#include <gtest/gtest.h>

#include "storage/mv_store.h"
#include "test_util.h"

namespace paris::test {
namespace {

using store::MvStore;
using wire::ReadMode;
using wire::WriteKind;

Timestamp ts(std::uint64_t p) { return Timestamp::from_physical(p); }

// ---------------------------------------------------------------------------
// Storage level.
// ---------------------------------------------------------------------------

TEST(CounterStore, SumsVisibleDeltas) {
  MvStore s;
  s.apply(1, "5", ts(100), TxId::make(1, 1), 0, /*kind=*/1);
  s.apply(1, "3", ts(200), TxId::make(1, 2), 1, /*kind=*/1);
  s.apply(1, "-2", ts(300), TxId::make(1, 3), 0, /*kind=*/1);

  EXPECT_EQ(s.read_counter(1, ts(50)).first, 0);
  EXPECT_EQ(s.read_counter(1, ts(150)).first, 5);
  EXPECT_EQ(s.read_counter(1, ts(250)).first, 8);
  EXPECT_EQ(s.read_counter(1, ts(999)).first, 6);
  EXPECT_EQ(s.read_counter(1, ts(999)).second->ut, ts(300));
}

TEST(CounterStore, RegisterWriteResetsBase) {
  MvStore s;
  s.apply(1, "10", ts(100), TxId::make(1, 1), 0, /*kind=*/1);
  s.apply(1, "100", ts(200), TxId::make(1, 2), 0, /*kind=*/0);  // register base
  s.apply(1, "7", ts(300), TxId::make(1, 3), 0, /*kind=*/1);
  EXPECT_EQ(s.read_counter(1, ts(150)).first, 10);
  EXPECT_EQ(s.read_counter(1, ts(250)).first, 100);
  EXPECT_EQ(s.read_counter(1, ts(999)).first, 107);
}

TEST(CounterStore, GcFoldsPrunedDeltasIntoBase) {
  MvStore s;
  for (std::uint64_t i = 1; i <= 10; ++i)
    s.apply(1, "1", ts(i * 100), TxId::make(1, i), 0, /*kind=*/1);
  ASSERT_EQ(s.read_counter(1, ts(10'000)).first, 10);

  // GC at watermark 550: versions 100..400 fold into the version at 500.
  const std::size_t removed = s.gc(ts(550));
  EXPECT_EQ(removed, 4u);
  EXPECT_EQ(s.chain_length(1), 6u);
  EXPECT_EQ(s.read_counter(1, ts(10'000)).first, 10) << "GC must preserve the sum";
  EXPECT_EQ(s.read_counter(1, ts(550)).first, 5) << "sum at the watermark preserved";
  EXPECT_EQ(s.read_counter(1, ts(750)).first, 7);
}

TEST(CounterStore, GcDoesNotTouchPureRegisterValues) {
  MvStore s;
  s.apply(1, "old", ts(100), TxId::make(1, 1), 0, /*kind=*/0);
  s.apply(1, "new", ts(200), TxId::make(1, 2), 0, /*kind=*/0);
  s.gc(ts(250));
  EXPECT_EQ(s.read(1, ts(999))->v, "new");
  EXPECT_EQ(s.chain_length(1), 1u);
}

// ---------------------------------------------------------------------------
// Wire level.
// ---------------------------------------------------------------------------

TEST(CounterWire, KindAndModeRoundtrip) {
  wire::ClientReadReq req;
  req.tx = TxId::make(1, 1);
  req.mode = static_cast<std::uint8_t>(ReadMode::kCounter);
  req.keys = {1, 2};
  std::vector<std::uint8_t> buf;
  wire::encode_message(req, buf);
  wire::Decoder d(buf);
  auto decoded = wire::decode_message(d);
  const auto& r = static_cast<const wire::ClientReadReq&>(*decoded);
  EXPECT_EQ(r.mode, static_cast<std::uint8_t>(ReadMode::kCounter));

  wire::WriteKV w(7, "42", WriteKind::kCounterAdd);
  EXPECT_EQ(w.write_kind(), WriteKind::kCounterAdd);
  wire::PrepareReq p;
  p.writes = {w};
  buf.clear();
  wire::encode_message(p, buf);
  wire::Decoder d2(buf);
  auto decoded2 = wire::decode_message(d2);
  EXPECT_EQ(static_cast<const wire::PrepareReq&>(*decoded2).writes[0].write_kind(),
            WriteKind::kCounterAdd);
}

// ---------------------------------------------------------------------------
// End to end.
// ---------------------------------------------------------------------------

std::int64_t counter_value(SyncClient& sc, sim::Simulation& sim, proto::Client& c, Key k) {
  sc.start();
  bool done = false;
  std::int64_t out = 0;
  c.read({k},
         [&](std::vector<wire::Item> items) {
           out = items[0].v.empty() ? 0 : std::stoll(items[0].v);
           done = true;
         },
         ReadMode::kCounter);
  run_until_flag(sim, done);
  sc.commit();
  return out;
}

TEST(CounterE2E, ConcurrentIncrementsFromAllDcsAllSurvive) {
  Deployment dep(small_config(System::kParis, 3, 6, 2, /*seed=*/101));
  dep.start();
  settle(dep);
  const auto& topo = dep.topo();
  const PartitionId p = 0;
  const Key k = topo.make_key(p, 77);

  // Clients in every DC increment concurrently, WITHOUT settling in
  // between: every DC race-writes the same key.
  std::vector<SyncClient> clients;
  std::vector<proto::Client*> raw;
  for (DcId d = 0; d < 3; ++d) {
    auto& c = dep.add_client(d, topo.partitions_at(d)[0]);
    raw.push_back(&c);
    clients.emplace_back(sim_of(dep), c);
  }
  const int rounds = 5;
  for (int r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < clients.size(); ++i) {
      clients[i].start();
      raw[i]->add(k, 1);
      clients[i].commit();
    }
  }
  settle(dep, 800'000);

  // Every increment survives: 3 DCs x 5 rounds = 15. Under LWW nearly all
  // concurrent increments would have been lost.
  for (std::size_t i = 0; i < clients.size(); ++i) {
    EXPECT_EQ(counter_value(clients[i], sim_of(dep), *raw[i], k), rounds * 3)
        << "DC " << i << " lost increments";
  }
}

TEST(CounterE2E, ReadYourOwnIncrementsBeforeStabilization) {
  Deployment dep(small_config(System::kParis, 3, 6, 2, /*seed=*/103));
  dep.start();
  settle(dep);
  const Key k = dep.topo().make_key(1, 88);
  auto& c = dep.add_client(0, dep.topo().partitions_at(0)[0]);
  SyncClient sc(sim_of(dep), c);

  // Commit three increments back-to-back: the UST cannot cover them yet,
  // so they live in the counter cache — and must still be counted.
  for (int i = 0; i < 3; ++i) {
    sc.start();
    c.add(k, 10);
    sc.commit();
  }
  EXPECT_EQ(counter_value(sc, sim_of(dep), c, k), 30)
      << "read-your-writes must hold for counters via the counter cache";

  // In-transaction uncommitted delta also folds in.
  sc.start();
  c.add(k, 5);
  bool done = false;
  std::int64_t val = 0;
  c.read({k},
         [&](std::vector<wire::Item> items) {
           val = std::stoll(items[0].v);
           done = true;
         },
         ReadMode::kCounter);
  run_until_flag(sim_of(dep), done);
  sc.commit();
  EXPECT_EQ(val, 35);

  // After stabilization the server-side sum takes over and the cache drains.
  settle(dep, 800'000);
  EXPECT_EQ(counter_value(sc, sim_of(dep), c, k), 35);
  sc.start();
  sc.commit();
  EXPECT_EQ(c.cache_size(), 0u);
}

TEST(CounterE2E, CountersSurviveGcChurn) {
  auto cfg = small_config(System::kParis, 3, 6, 2, /*seed=*/107);
  cfg.protocol.gc_interval_us = 20'000;
  Deployment dep(cfg);
  dep.start();
  settle(dep);
  const auto& topo = dep.topo();
  const PartitionId p = 0;
  const Key k = topo.make_key(p, 99);
  auto& c = dep.add_client(0, p);
  SyncClient sc(sim_of(dep), c);

  for (int i = 0; i < 120; ++i) {
    sc.start();
    c.add(k, 1);
    sc.commit();
    dep.run_for(4'000);
  }
  settle(dep, 800'000);

  EXPECT_EQ(counter_value(sc, sim_of(dep), c, k), 120)
      << "GC folding must not change counter sums";
  // And GC did actually trim the delta chain.
  for (DcId d : topo.replicas(p))
    EXPECT_LT(dep.server(d, p).kvstore().chain_length(k), 30u);
}

TEST(CounterE2E, BprCountersWorkThroughBlocking) {
  Deployment dep(small_config(System::kBpr, 3, 6, 2, /*seed=*/109));
  dep.start();
  settle(dep);
  const Key k = dep.topo().make_key(0, 55);
  auto& c0 = dep.add_client(0, 0);
  auto& c1 = dep.add_client(1, 0);
  SyncClient a(sim_of(dep), c0), b(sim_of(dep), c1);

  a.start();
  c0.add(k, 4);
  a.commit();
  b.start();
  c1.add(k, 6);
  b.commit();
  settle(dep, 400'000);

  EXPECT_EQ(counter_value(a, sim_of(dep), c0, k), 10);
  EXPECT_EQ(counter_value(b, sim_of(dep), c1, k), 10);
}

}  // namespace
}  // namespace paris::test
