// Client-session semantics (Alg. 1): write-set buffering, read-your-writes
// via the write cache, cache pruning against the UST, repeatable reads, and
// the BPR client variant (no cache, hwt folded into the snapshot).

#include <gtest/gtest.h>

#include "test_util.h"

namespace paris::test {
namespace {

TEST(Client, WriteSetOverwriteInPlace) {
  Deployment dep(small_config(System::kParis, 3, 6, 2));
  dep.start();
  auto& c = dep.add_client(0, dep.topo().partitions_at(0)[0]);
  SyncClient sc(sim_of(dep), c);
  const Key k = dep.topo().make_key(0, 1);

  sc.start();
  sc.write(k, "v1");
  sc.write(k, "v2");
  EXPECT_EQ(sc.read1(k).v, "v2") << "WS read returns the latest buffered value";
  const Timestamp ct = sc.commit();
  EXPECT_FALSE(ct.is_zero());

  settle(dep);
  auto& c2 = dep.add_client(1, dep.topo().partitions_at(1)[0]);
  SyncClient sc2(sim_of(dep), c2);
  sc2.start();
  EXPECT_EQ(sc2.read1(k).v, "v2") << "only the final value commits";
  sc2.commit();
}

TEST(Client, OwnUncommittedWriteTaggedWithCurrentTx) {
  Deployment dep(small_config(System::kParis, 3, 6, 2));
  dep.start();
  auto& c = dep.add_client(0, dep.topo().partitions_at(0)[0]);
  SyncClient sc(sim_of(dep), c);
  const Key k = dep.topo().make_key(0, 2);

  sc.start();
  sc.write(k, "mine");
  const Item it = sc.read1(k);
  EXPECT_EQ(it.v, "mine");
  EXPECT_TRUE(it.ut.is_zero()) << "uncommitted: no commit timestamp yet";
  sc.commit();
}

TEST(Client, CachePrunedOnceUstCoversCommit) {
  Deployment dep(small_config(System::kParis, 3, 6, 2));
  dep.start();
  settle(dep);
  auto& c = dep.add_client(0, dep.topo().partitions_at(0)[0]);
  SyncClient sc(sim_of(dep), c);
  const Key k = dep.topo().make_key(0, 3);

  sc.put({{k, "cached"}});
  EXPECT_EQ(c.cache_size(), 1u) << "committed write parked in WC until stable";

  // Starting immediately: UST cannot have covered ct yet (gossip lag);
  // the entry must still be there so read-your-writes holds.
  const Timestamp snap = sc.start();
  EXPECT_LT(snap, c.hwt());
  EXPECT_EQ(c.cache_size(), 1u);
  EXPECT_EQ(sc.read1(k).v, "cached");
  sc.commit();

  // After stabilization the snapshot covers ct and the cache is pruned.
  settle(dep);
  const Timestamp snap2 = sc.start();
  EXPECT_GE(snap2, c.hwt());
  EXPECT_EQ(c.cache_size(), 0u);
  EXPECT_EQ(sc.read1(k).v, "cached") << "now served by the store itself";
  sc.commit();
}

TEST(Client, ReadYourWritesAcrossTransactionsBeforeStabilization) {
  Deployment dep(small_config(System::kParis, 3, 6, 2));
  dep.start();
  settle(dep);
  auto& c = dep.add_client(0, dep.topo().partitions_at(0)[0]);
  SyncClient sc(sim_of(dep), c);
  const Key k = dep.topo().make_key(1, 9);

  // Chain of updates with no settling: each next transaction must observe
  // the previous one through the cache even though the UST lags.
  for (int i = 0; i < 5; ++i) {
    sc.start();
    const Item prev = sc.read1(k);
    if (i > 0) {
      EXPECT_EQ(prev.v, "gen" + std::to_string(i - 1));
    }
    sc.write(k, "gen" + std::to_string(i));
    sc.commit();
  }
}

TEST(Client, ReadOnlyCommitReturnsZeroAndKeepsHwt) {
  Deployment dep(small_config(System::kParis, 3, 6, 2));
  dep.start();
  auto& c = dep.add_client(0, dep.topo().partitions_at(0)[0]);
  SyncClient sc(sim_of(dep), c);

  const Timestamp ct = sc.put({{dep.topo().make_key(0, 1), "x"}});
  sc.start();
  sc.read({dep.topo().make_key(0, 1)});
  EXPECT_TRUE(sc.commit().is_zero());
  EXPECT_EQ(c.hwt(), ct) << "read-only transactions do not change hwt";
}

TEST(Client, ReadResultsPreserveRequestOrder) {
  Deployment dep(small_config(System::kParis, 3, 6, 2));
  dep.start();
  settle(dep);
  const auto& topo = dep.topo();
  auto& c = dep.add_client(0, topo.partitions_at(0)[0]);
  SyncClient sc(sim_of(dep), c);

  std::vector<Key> keys;
  std::vector<wire::WriteKV> writes;
  for (int i = 0; i < 6; ++i) {
    const Key k = topo.make_key(topo.partitions_at(0)[i % 3], 100 + i);
    keys.push_back(k);
    writes.push_back({k, "val" + std::to_string(i)});
  }
  sc.put(writes);
  settle(dep);

  sc.start();
  // Reverse order request; results must align with the request.
  std::vector<Key> rev(keys.rbegin(), keys.rend());
  const auto items = sc.read(rev);
  ASSERT_EQ(items.size(), rev.size());
  for (std::size_t i = 0; i < rev.size(); ++i) {
    EXPECT_EQ(items[i].k, rev[i]);
    EXPECT_EQ(items[i].v, "val" + std::to_string(rev.size() - 1 - i));
  }
  sc.commit();
}

TEST(Client, LocalHitStatsCountCacheAndSets) {
  Deployment dep(small_config(System::kParis, 3, 6, 2));
  dep.start();
  auto& c = dep.add_client(0, dep.topo().partitions_at(0)[0]);
  SyncClient sc(sim_of(dep), c);
  const Key k = dep.topo().make_key(0, 4);

  sc.start();
  sc.write(k, "a");
  sc.read({k});  // WS hit
  sc.read({k});  // WS hit again
  sc.commit();
  sc.start();
  sc.read({k});  // cache hit (UST lag)
  sc.commit();
  EXPECT_EQ(c.stats().local_hits, 3u);
}

TEST(Client, BprClientHasNoCacheButReadsItsWrites) {
  Deployment dep(small_config(System::kBpr, 3, 6, 2));
  dep.start();
  settle(dep);
  auto& c = dep.add_client(0, dep.topo().partitions_at(0)[0]);
  SyncClient sc(sim_of(dep), c);
  const Key k = dep.topo().make_key(0, 5);

  const Timestamp ct = sc.put({{k, "fresh"}});
  EXPECT_EQ(c.cache_size(), 0u) << "BPR does not use the write cache";

  const Timestamp snap = sc.start();
  EXPECT_GE(snap, ct) << "BPR folds hwt into the snapshot";
  EXPECT_EQ(sc.read1(k).v, "fresh") << "read-your-writes via fresh snapshot + blocking";
  sc.commit();
}

TEST(Client, SnapshotsAdvanceMonotonicallyPerClient) {
  for (auto sys : {System::kParis, System::kBpr}) {
    Deployment dep(small_config(sys, 3, 6, 2));
    dep.start();
    auto& c = dep.add_client(0, dep.topo().partitions_at(0)[0]);
    SyncClient sc(sim_of(dep), c);
    Timestamp prev = kTsZero;
    for (int i = 0; i < 10; ++i) {
      const Timestamp s = sc.start();
      EXPECT_GE(s, prev);
      prev = s;
      if (i % 2) sc.write(dep.topo().make_key(0, 1), "x" + std::to_string(i));
      sc.commit();
      dep.run_for(20'000);
    }
  }
}

}  // namespace
}  // namespace paris::test
