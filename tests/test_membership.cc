// Cluster membership tests: replica coverage, the paper's machines-per-DC
// arithmetic, preferred-remote-replica routing, the stabilization tree, and
// the versioned view machinery (join/leave schedules, monotone install,
// view-relative routing).

#include <gtest/gtest.h>

#include <map>

#include "cluster/membership.h"

namespace paris::cluster {
namespace {

TEST(Topology, EveryPartitionHasExactlyRReplicas) {
  Topology topo({5, 45, 2});
  for (PartitionId p = 0; p < 45; ++p) {
    const auto& reps = topo.replicas(p);
    ASSERT_EQ(reps.size(), 2u);
    EXPECT_NE(reps[0], reps[1]);
    for (DcId d : reps) {
      EXPECT_LT(d, 5u);
      EXPECT_TRUE(topo.dc_replicates(d, p));
    }
  }
}

TEST(Topology, PaperDeploymentGives18MachinesPerDc) {
  // §V-A: 45 partitions, R=2, 5 DCs -> 18 servers per DC, 90 total.
  Topology topo({5, 45, 2});
  for (DcId d = 0; d < 5; ++d) EXPECT_EQ(topo.servers_per_dc(d), 18u);
  EXPECT_EQ(topo.total_servers(), 90u);
}

TEST(Topology, ReplicaIdxConsistentWithReplicaList) {
  Topology topo({4, 10, 3});
  for (PartitionId p = 0; p < 10; ++p) {
    const auto& reps = topo.replicas(p);
    for (ReplicaIdx i = 0; i < reps.size(); ++i)
      EXPECT_EQ(topo.replica_idx(reps[i], p), i);
    for (DcId d = 0; d < 4; ++d) {
      const bool in_list = std::find(reps.begin(), reps.end(), d) != reps.end();
      EXPECT_EQ(topo.dc_replicates(d, p), in_list);
    }
  }
}

TEST(Topology, KeyMappingRoundtrips) {
  Topology topo({3, 7, 2});
  for (PartitionId p = 0; p < 7; ++p) {
    for (std::uint64_t rank = 0; rank < 100; ++rank) {
      EXPECT_EQ(topo.partition_of(topo.make_key(p, rank)), p);
    }
  }
}

TEST(Topology, TargetDcPrefersLocalReplica) {
  Topology topo({5, 45, 2});
  for (DcId d = 0; d < 5; ++d) {
    for (PartitionId p : topo.partitions_at(d)) EXPECT_EQ(topo.target_dc(d, p), d);
  }
}

TEST(Topology, TargetDcForRemotePartitionIsAReplicaAndBalanced) {
  Topology topo({5, 45, 2});
  std::map<DcId, int> hits;
  for (DcId d = 0; d < 5; ++d) {
    for (PartitionId p = 0; p < 45; ++p) {
      if (topo.dc_replicates(d, p)) continue;
      const DcId t = topo.target_dc(d, p);
      EXPECT_NE(t, d);
      EXPECT_TRUE(topo.dc_replicates(t, p));
      ++hits[t];
    }
  }
  // Round-robin preference spreads remote load over all DCs.
  EXPECT_EQ(hits.size(), 5u);
  for (const auto& [dc, n] : hits) EXPECT_GT(n, 10) << "DC " << dc << " starved";
}

TEST(Topology, SinglePartitionSingleDc) {
  Topology topo({1, 1, 1});
  EXPECT_EQ(topo.partitions_at(0).size(), 1u);
  EXPECT_EQ(topo.target_dc(0, 0), 0u);
}

TEST(Topology, RejectsBadConfigs) {
  EXPECT_DEATH(Topology({2, 4, 3}), "replication");  // R > M
  EXPECT_DEATH(Topology({0, 4, 1}), "DC");
}

TEST(Directory, StoresAndLooksUpServers) {
  Topology topo({3, 6, 2});
  Directory dir(topo);
  dir.set_server(0, 0, 17);
  EXPECT_TRUE(dir.has_server(0, 0));
  EXPECT_FALSE(dir.has_server(1, 1));
  EXPECT_EQ(dir.server(0, 0), 17u);
}

TEST(StabTree, BinaryTreeShape) {
  StabTree t(7, 2);
  EXPECT_TRUE(t.is_root(0));
  EXPECT_EQ(t.children(0), (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(t.children(1), (std::vector<std::uint32_t>{3, 4}));
  EXPECT_EQ(t.children(2), (std::vector<std::uint32_t>{5, 6}));
  EXPECT_TRUE(t.children(3).empty());
  for (std::uint32_t i = 1; i < 7; ++i) EXPECT_EQ(t.parent(i), (i - 1) / 2);
  EXPECT_EQ(t.depth(), 2u);
}

TEST(StabTree, EveryNodeReachesRoot) {
  for (std::uint32_t n : {1u, 2u, 5u, 18u, 64u}) {
    for (std::uint32_t fanout : {1u, 2u, 4u}) {
      StabTree t(n, fanout);
      for (std::uint32_t i = 0; i < n; ++i) {
        std::uint32_t cur = i, hops = 0;
        while (!t.is_root(cur)) {
          cur = t.parent(cur);
          ASSERT_LT(++hops, n) << "cycle in tree";
        }
      }
    }
  }
}

TEST(StabTree, ChildrenAndParentAgree) {
  StabTree t(18, 2);
  for (std::uint32_t i = 0; i < 18; ++i) {
    for (std::uint32_t c : t.children(i)) EXPECT_EQ(t.parent(c), i);
  }
}

TEST(Membership, StaticViewHasEveryoneActive) {
  Topology topo({3, 9, 2});
  Membership mem(topo);
  EXPECT_EQ(mem.num_views(), 1u);
  EXPECT_EQ(mem.current_view_id(), 0u);
  for (DcId d = 0; d < 3; ++d) {
    EXPECT_TRUE(mem.active(d));
    EXPECT_TRUE(mem.ever_active(d));
    EXPECT_TRUE(mem.initially_active(d));
  }
  for (PartitionId p = 0; p < 9; ++p)
    EXPECT_EQ(mem.active_replicas(p), topo.replicas(p));
}

TEST(Membership, JoinScheduleStartsDcInactive) {
  Topology topo({3, 9, 3});
  Membership mem(topo, {}, {{/*join=*/true, {2}, 5'000'000}});
  ASSERT_EQ(mem.num_views(), 2u);
  EXPECT_FALSE(mem.active(2));
  EXPECT_FALSE(mem.ever_active(2));
  EXPECT_FALSE(mem.initially_active(2));
  EXPECT_TRUE(mem.active(0));
  // With DC 2 out, every partition keeps its other replicas.
  for (PartitionId p = 0; p < 9; ++p) {
    EXPECT_EQ(mem.active_replicas(p).size(), 2u);
    for (DcId d : mem.active_replicas(p)) EXPECT_NE(d, 2u);
  }
  EXPECT_TRUE(mem.install(1));
  EXPECT_TRUE(mem.active(2));
  EXPECT_TRUE(mem.ever_active(2));
  EXPECT_FALSE(mem.initially_active(2));
  for (PartitionId p = 0; p < 9; ++p)
    EXPECT_EQ(mem.active_replicas(p), topo.replicas(p));
}

TEST(Membership, LeaveKeepsEverActive) {
  Topology topo({3, 9, 3});
  Membership mem(topo, {}, {{/*join=*/false, {1}, 4'000'000}});
  EXPECT_TRUE(mem.active(1));
  EXPECT_TRUE(mem.install(1));
  EXPECT_FALSE(mem.active(1));
  EXPECT_TRUE(mem.ever_active(1));  // its vv slot keeps counting post-drain
  EXPECT_TRUE(mem.initially_active(1));
}

TEST(Membership, InstallIsMonotoneAndClamps) {
  Topology topo({3, 9, 3});
  Membership mem(topo, {}, {{true, {2}, 1'000}, {false, {2}, 2'000}});
  ASSERT_EQ(mem.num_views(), 3u);
  EXPECT_TRUE(mem.install(2));
  EXPECT_FALSE(mem.install(1));  // never moves backwards
  EXPECT_EQ(mem.current_view_id(), 2u);
  EXPECT_FALSE(mem.install(99));  // out-of-range clamps to the last view
  EXPECT_EQ(mem.current_view_id(), 2u);
}

TEST(Membership, TargetDcNeverRoutesToInactiveDc) {
  Topology topo({5, 45, 2});
  // DC 4 joins later: until the view flips, no client routes a read there.
  Membership mem(topo, {}, {{true, {4}, 5'000'000}});
  for (DcId d = 0; d < 4; ++d) {
    for (PartitionId p = 0; p < 45; ++p) {
      const DcId t = mem.target_dc(d, p);
      EXPECT_NE(t, 4u);
      EXPECT_TRUE(topo.dc_replicates(t, p));
    }
  }
  // A client AT the inactive DC also routes away from it.
  for (PartitionId p = 0; p < 45; ++p) EXPECT_NE(mem.target_dc(4, p), 4u);
  mem.install(1);
  for (DcId d = 0; d < 5; ++d) {
    for (PartitionId p : topo.partitions_at(d)) EXPECT_EQ(mem.target_dc(d, p), d);
  }
}

TEST(Membership, RejectsViewWithUncoveredPartition) {
  // R=1: dropping any DC strands its partitions.
  Topology topo({3, 9, 1});
  EXPECT_DEATH(Membership(topo, {}, {{false, {0}, 1'000}}),
               "no active replica");
}

TEST(Membership, ViewsCarryMembers) {
  Topology topo({3, 9, 2});
  std::vector<Member> members = {
      {0, {"127.0.0.1", 7421}, 0}, {1, {"127.0.0.2", 7421}, 0}};
  Membership mem(topo, members, {});
  ASSERT_EQ(mem.view().members.size(), 2u);
  EXPECT_EQ(mem.view().members[1].endpoint.str(), "127.0.0.2:7421");
}

}  // namespace
}  // namespace paris::cluster
