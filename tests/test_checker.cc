// The checker must catch violations, not just bless correct histories:
// feed it hand-corrupted histories and assert it flags each anomaly class.

#include <gtest/gtest.h>

#include "verify/history.h"

namespace paris::verify {
namespace {

using wire::Item;
using wire::WriteKV;

Timestamp ts(std::uint64_t p) { return Timestamp::from_physical(p); }

Item item(Key k, const Value& v, Timestamp ut, TxId tx, DcId sr = 0) {
  Item i;
  i.k = k;
  i.v = v;
  i.ut = ut;
  i.tx = tx;
  i.sr = sr;
  return i;
}

class CheckerFixture : public testing::Test {
 protected:
  void commit(TxId tx, Timestamp ct, std::vector<WriteKV> writes, DcId origin = 0) {
    h.on_commit_writes(tx, origin, writes);
    h.on_commit_decided(tx, ct, origin, ct.physical_us());
  }
  void slice(Timestamp snapshot, std::vector<Item> items) {
    h.on_slice_served(0, 0, TxId::make(99, 1), snapshot, /*mode=*/0, items,
                      snapshot.physical_us());
  }
  HistoryRecorder h;
};

TEST_F(CheckerFixture, AcceptsCorrectHistory) {
  const TxId t1 = TxId::make(1, 1), t2 = TxId::make(1, 2);
  commit(t1, ts(100), {{7, "a"}});
  commit(t2, ts(200), {{7, "b"}});
  slice(ts(150), {item(7, "a", ts(100), t1)});
  slice(ts(250), {item(7, "b", ts(200), t2)});
  slice(ts(50), {item(7, "", kTsZero, kInvalidTxId)});  // absent before t1
  EXPECT_TRUE(h.check().empty());
  EXPECT_EQ(h.num_committed(), 2u);
  EXPECT_EQ(h.commit_ts(t1), ts(100));
}

TEST_F(CheckerFixture, DetectsStaleRead) {
  const TxId t1 = TxId::make(1, 1), t2 = TxId::make(1, 2);
  commit(t1, ts(100), {{7, "a"}});
  commit(t2, ts(200), {{7, "b"}});
  // Snapshot 250 covers t2, but the slice returned the older version.
  slice(ts(250), {item(7, "a", ts(100), t1)});
  const auto v = h.check();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("LWW winner"), std::string::npos);
}

TEST_F(CheckerFixture, DetectsLostWrite) {
  commit(TxId::make(1, 1), ts(100), {{7, "a"}});
  slice(ts(150), {item(7, "", kTsZero, kInvalidTxId)});  // reported absent
  const auto v = h.check();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("ABSENT"), std::string::npos);
}

TEST_F(CheckerFixture, DetectsPhantomVersion) {
  // A slice returns a version no committed transaction produced: both the
  // dedicated causal PHANTOM check and the exactness check must fire.
  slice(ts(500), {item(7, "ghost", ts(400), TxId::make(9, 9))});
  const auto v = h.check();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_NE(v[0].find("PHANTOM"), std::string::npos);
  EXPECT_NE(v[1].find("no committed write"), std::string::npos);
}

TEST_F(CheckerFixture, DetectsTornTransaction) {
  // t2 wrote both keys at ct=200; a snapshot at 250 that returns the new
  // version of one key and the old of the other is torn.
  const TxId t1 = TxId::make(1, 1), t2 = TxId::make(1, 2);
  commit(t1, ts(100), {{7, "a7"}, {8, "a8"}});
  commit(t2, ts(200), {{7, "b7"}, {8, "b8"}});
  slice(ts(250), {item(7, "b7", ts(200), t2), item(8, "a8", ts(100), t1)});
  const auto v = h.check();
  ASSERT_EQ(v.size(), 1u) << "the stale half must be flagged";
}

TEST_F(CheckerFixture, DetectsValueCorruption) {
  const TxId t1 = TxId::make(1, 1);
  commit(t1, ts(100), {{7, "good"}});
  slice(ts(150), {item(7, "evil", ts(100), t1)});
  const auto v = h.check();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("value differs"), std::string::npos);
}

TEST_F(CheckerFixture, UndecidedTransactionsAreIgnored) {
  // Writes that never got a commit timestamp (in flight at shutdown) are
  // not part of the expected state.
  h.on_commit_writes(TxId::make(1, 1), 0, {{7, "never"}});
  slice(ts(100), {item(7, "", kTsZero, kInvalidTxId)});
  EXPECT_TRUE(h.check().empty());
}

TEST_F(CheckerFixture, TieBreakByTxIdAtEqualTimestamp) {
  const TxId low = TxId::make(1, 1), high = TxId::make(2, 1);
  commit(low, ts(100), {{7, "low"}});
  commit(high, ts(100), {{7, "high"}});
  slice(ts(100), {item(7, "high", ts(100), high)});
  EXPECT_TRUE(h.check().empty());
  slice(ts(100), {item(7, "low", ts(100), low)});
  EXPECT_EQ(h.check().size(), 1u) << "loser of the (ct, tx) tie returned";
}

TEST_F(CheckerFixture, ViolationFloodIsSuppressed) {
  commit(TxId::make(1, 1), ts(100), {{7, "a"}});
  for (int i = 0; i < 200; ++i) slice(ts(150), {item(7, "", kTsZero, kInvalidTxId)});
  const auto v = h.check();
  EXPECT_LE(v.size(), 60u) << "checker output must stay readable";
}

TEST_F(CheckerFixture, AcceptsMonotonicSessionSnapshots) {
  const NodeId client = 42;
  h.on_tx_started(client, TxId::make(1, 1), ts(100), 100);
  h.on_tx_started(client, TxId::make(1, 2), ts(100), 200);  // equal is fine
  h.on_tx_started(client, TxId::make(1, 3), ts(180), 300);
  // A second session may run at older snapshots — only WITHIN a session
  // must snapshots be monotonic.
  h.on_tx_started(/*client=*/43, TxId::make(2, 1), ts(50), 400);
  EXPECT_TRUE(h.check().empty());
}

TEST_F(CheckerFixture, SessionViolationFloodIsSuppressed) {
  const NodeId client = 42;
  h.on_tx_started(client, TxId::make(1, 0), ts(1'000), 0);
  for (std::uint64_t i = 1; i < 300; ++i) {
    h.on_tx_started(client, TxId::make(1, i), ts(1'000 - i), i);  // each moves back
  }
  const auto v = h.check();
  EXPECT_LE(v.size(), 60u) << "session checks must honor the flood cap";
}

TEST_F(CheckerFixture, DetectsSessionSnapshotMovingBackwards) {
  // Seeded violation: the regression the reliable layer's dedup must
  // prevent — a stale retransmitted start response re-assigning an older
  // snapshot to a session mid-stream.
  const NodeId client = 42;
  h.on_tx_started(client, TxId::make(1, 1), ts(100), 100);
  h.on_tx_started(client, TxId::make(1, 2), ts(180), 200);
  h.on_tx_started(client, TxId::make(1, 3), ts(120), 300);
  const auto v = h.check();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("SESSION violation"), std::string::npos);
  EXPECT_NE(v[0].find("moved backwards"), std::string::npos);
}

}  // namespace
}  // namespace paris::verify
