// Slab event queue tests: pop order must exactly match a reference model
// (the pre-slab std::function heap semantics: (time, insertion seq) order),
// cancellation tokens, slab slot reuse, and the periodic-timer path.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "sim/event_queue.h"
#include "sim/simulation.h"

namespace paris::sim {
namespace {

TEST(EventQueue, PopOrderMatchesReferenceHeap) {
  Rng rng(12345);
  EventQueue q;
  struct Ref {
    SimTime at;
    std::uint64_t seq;
    int id;
  };
  std::vector<Ref> ref;
  std::vector<int> got;
  for (int i = 0; i < 1000; ++i) {
    const SimTime at = rng.next_below(200);  // many ties
    q.push(at, [i, &got] { got.push_back(i); });
    ref.push_back(Ref{at, static_cast<std::uint64_t>(i), i});
  }
  std::stable_sort(ref.begin(), ref.end(), [](const Ref& a, const Ref& b) {
    return a.at != b.at ? a.at < b.at : a.seq < b.seq;
  });
  SimTime prev = 0;
  while (q.run_next([&](SimTime at) {
    EXPECT_GE(at, prev);
    prev = at;
  })) {
  }
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_EQ(got[i], ref[i].id) << "pop order diverged from reference at " << i;
}

TEST(EventQueue, DeterministicAcrossIdenticalRuns) {
  const auto run = [](std::uint64_t seed) {
    Rng rng(seed);
    EventQueue q;
    std::vector<int> order;
    std::vector<EventQueue::EventId> ids;
    for (int i = 0; i < 500; ++i) {
      ids.push_back(q.push(rng.next_below(100), [i, &order] { order.push_back(i); }));
      if (rng.next_below(4) == 0 && !ids.empty()) {
        q.cancel(ids[rng.next_below(ids.size())]);  // interleaved cancels
      }
    }
    while (q.run_next([](SimTime) {})) {
    }
    return order;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(EventQueue, CancelPreventsExecutionAndIsIdempotent) {
  EventQueue q;
  int fired = 0;
  const auto id1 = q.push(10, [&] { ++fired; });
  const auto id2 = q.push(20, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id1));
  EXPECT_FALSE(q.cancel(id1)) << "second cancel must be a no-op";
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), 20u) << "next_time must skip the cancelled event";
  while (q.run_next([](SimTime) {})) {
  }
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(q.cancel(id2)) << "cancel after execution must fail";
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelledSlotRecycledIdsDoNotAlias) {
  EventQueue q;
  int fired = 0;
  const auto id1 = q.push(10, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id1));
  // Drain (releases the cancelled slot), then reuse it for a new event: the
  // stale id must not cancel the new occupant.
  while (q.run_next([](SimTime) {})) {
  }
  q.push(30, [&] { fired += 10; });
  EXPECT_FALSE(q.cancel(id1));
  while (q.run_next([](SimTime) {})) {
  }
  EXPECT_EQ(fired, 10);
}

TEST(EventQueue, SlabSlotsAreReusedInSteadyState) {
  EventQueue q;
  int sink = 0;
  // Warmup batch establishes the slab size...
  for (int i = 0; i < 100; ++i) q.push(i, [&] { ++sink; });
  while (q.run_next([](SimTime) {})) {
  }
  const std::size_t warmed = q.slab_slots();
  // ...then repeated batches of the same shape must not grow it.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 100; ++i) q.push(i, [&] { ++sink; });
    while (q.run_next([](SimTime) {})) {
    }
  }
  EXPECT_EQ(q.slab_slots(), warmed) << "steady-state batches must recycle slots";
  EXPECT_EQ(sink, 51 * 100);
}

TEST(EventQueue, OversizedClosuresFallBackToHeapBox) {
  EventQueue q;
  char big[2 * InlineTask::kInlineBytes] = {0};
  big[0] = 41;
  int got = 0;
  q.push(5, [big, &got] { got = big[0] + 1; });
  while (q.run_next([](SimTime) {})) {
  }
  EXPECT_EQ(got, 42);
}

TEST(EventQueue, PushDuringRunKeepsOrdering) {
  EventQueue q;
  std::vector<int> order;
  q.push(10, [&] {
    order.push_back(1);
    q.push(10, [&] { order.push_back(2); });  // same time, later seq
    q.push(5, [&] { order.push_back(3); });   // "earlier" time, but already past
  });
  q.push(12, [&] { order.push_back(4); });
  while (q.run_next([](SimTime) {})) {
  }
  // After the first event ran, the heap holds (12,s1)=4, (10,s2)=2, (5,s3)=3;
  // time sorts first, insertion seq breaks the tie.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2, 4}));
}

TEST(Simulation, PeriodicTimerDoesNotGrowSlabOrChurn) {
  Simulation sim;
  int ticks = 0;
  auto h = sim.every(10, 0, [&] { ++ticks; });
  sim.run_until(100);  // warm up slab + timer table
  const int warm_ticks = ticks;
  EXPECT_GT(warm_ticks, 0);
  sim.run_until(100'000);
  EXPECT_EQ(ticks, 100'000 / 10 + 1);
  h.cancel();
  const auto executed = sim.events_executed();
  sim.run_until(200'000);
  EXPECT_EQ(ticks, 100'000 / 10 + 1) << "cancelled timer must not fire";
  EXPECT_EQ(sim.events_executed(), executed) << "cancelled timer must not even wake";
}

TEST(Simulation, TimerCancelledFromInsideItsOwnCallback) {
  Simulation sim;
  int ticks = 0;
  Simulation::PeriodicHandle h;
  h = sim.every(10, 0, [&] {
    if (++ticks == 3) h.cancel();
  });
  sim.run_until(1'000);
  EXPECT_EQ(ticks, 3);
}

TEST(Simulation, TimerCallbackMayCreateTimersWhileFiring) {
  // Regression: timer_fire invokes the closure stored in the timer table;
  // creating timers from inside a callback grows the table and must not
  // invalidate the executing closure (table is a deque, not a vector).
  Simulation sim;
  std::vector<Simulation::PeriodicHandle> spawned;
  int child_ticks = 0;
  auto h = sim.every(10, 0, [&] {
    for (int i = 0; i < 8; ++i)
      spawned.push_back(sim.every(50, 0, [&] { ++child_ticks; }));
  });
  sim.run_until(300);
  h.cancel();
  spawned.clear();
  EXPECT_GT(child_ticks, 0);
  const auto executed = sim.events_executed();
  sim.run_until(1'000);
  EXPECT_EQ(sim.events_executed(), executed) << "all timers cancelled";
}

TEST(Simulation, ManyTimersCancelledAndRecreated) {
  Simulation sim;
  int ticks = 0;
  std::vector<Simulation::PeriodicHandle> hs;
  for (int round = 0; round < 10; ++round) {
    hs.clear();  // cancels the previous generation
    for (int i = 0; i < 20; ++i)
      hs.push_back(sim.every(7, static_cast<SimTime>(i), [&] { ++ticks; }));
    sim.run_until(sim.now() + 100);
  }
  EXPECT_GT(ticks, 10 * 20 * 10);
}

}  // namespace
}  // namespace paris::sim
