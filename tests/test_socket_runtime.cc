// Socket-runtime tests: wire framing and reassembly over real byte streams
// (including pathological split points), two in-process SocketBackends
// exchanging protocol messages over genuine TCP loopback, and transport-
// level reconnect — a killed connection redials and the reliable layer's
// existing per-channel seq state retransmits and dedups across it, so
// delivery stays exactly-once in order.
//
// The multi-process (fork/exec) path is exercised by CI's socket-smoke job
// through paris_sim; spawning children from a gtest binary would re-exec
// the test runner, so these tests stay in-process by design.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "runtime/reliable_transport.h"
#include "runtime/socket_runtime.h"

namespace paris::test {
namespace {

using runtime::ReliableConfig;
using runtime::ReliableTransport;
using runtime::SocketBackend;
using namespace runtime::sockdetail;

// ---------------------------------------------------------------------------
// Framing + reassembly.
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> payload_of(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = static_cast<std::uint8_t>(seed + i);
  return p;
}

TEST(SocketFraming, RoundTripsSingleFrame) {
  const auto payload = payload_of(37, 3);
  std::vector<std::uint8_t> wire;
  append_frame(wire, /*from=*/7, /*to=*/11, payload.data(), payload.size());
  ASSERT_EQ(wire.size(), 4u + 8u + payload.size());

  FrameReassembler ra;
  ASSERT_TRUE(ra.feed(wire.data(), wire.size()));
  Frame f;
  ASSERT_TRUE(ra.next(f));
  EXPECT_EQ(f.from, 7u);
  EXPECT_EQ(f.to, 11u);
  EXPECT_EQ(f.bytes, payload);
  EXPECT_FALSE(ra.next(f));
  EXPECT_EQ(ra.buffered(), 0u);
}

TEST(SocketFraming, ReassemblesAcrossArbitrarySplits) {
  // Many frames of varying sizes, fed in chunks of every awkward size
  // (1..13 bytes): every split point inside headers and payloads occurs.
  std::vector<std::uint8_t> wire;
  const int kFrames = 64;
  for (int i = 0; i < kFrames; ++i) {
    const auto p = payload_of(static_cast<std::size_t>(1 + (i * 37) % 300),
                              static_cast<std::uint8_t>(i));
    append_frame(wire, static_cast<NodeId>(i), static_cast<NodeId>(i + 1), p.data(),
                 p.size());
  }

  FrameReassembler ra;
  std::vector<Frame> got;
  std::size_t off = 0;
  int chunk = 1;
  while (off < wire.size()) {
    const std::size_t n = std::min<std::size_t>(static_cast<std::size_t>(chunk),
                                                wire.size() - off);
    ASSERT_TRUE(ra.feed(wire.data() + off, n));
    off += n;
    chunk = chunk % 13 + 1;
    Frame f;
    while (ra.next(f)) got.push_back(f);
  }
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kFrames));
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_EQ(got[i].from, static_cast<NodeId>(i));
    EXPECT_EQ(got[i].to, static_cast<NodeId>(i + 1));
    EXPECT_EQ(got[i].bytes,
              payload_of(static_cast<std::size_t>(1 + (i * 37) % 300),
                         static_cast<std::uint8_t>(i)));
  }
  EXPECT_EQ(ra.buffered(), 0u);
}

TEST(SocketFraming, RejectsCorruptLengthPrefix) {
  std::vector<std::uint8_t> wire;
  const auto p = payload_of(8, 1);
  append_frame(wire, 1, 2, p.data(), p.size());
  wire[0] = 0xff;  // length explodes past kMaxFrame
  wire[1] = 0xff;
  wire[2] = 0xff;
  wire[3] = 0xff;
  FrameReassembler ra;
  ra.feed(wire.data(), wire.size());
  Frame f;
  EXPECT_FALSE(ra.next(f));
  EXPECT_FALSE(ra.feed(wire.data(), 1)) << "a corrupt stream must stay rejected";

  // A frame claiming to be shorter than its own from/to header is equally
  // corrupt (len < 8).
  std::vector<std::uint8_t> runt = {4, 0, 0, 0, 1, 2, 3, 4};
  FrameReassembler rb;
  rb.feed(runt.data(), runt.size());
  EXPECT_FALSE(rb.next(f));
  EXPECT_FALSE(rb.feed(runt.data(), 1));
}

TEST(SocketFraming, SurvivesShortWritesAndPartialReadsOverASocketpair) {
  // A real kernel byte stream: write the encoded frames in deliberately
  // tiny bursts, read in odd-sized sips, reassemble on the far end.
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

  std::vector<std::uint8_t> wire;
  const int kFrames = 32;
  for (int i = 0; i < kFrames; ++i) {
    const auto p = payload_of(static_cast<std::size_t>(11 + 61 * i % 500),
                              static_cast<std::uint8_t>(i * 3));
    append_frame(wire, static_cast<NodeId>(100 + i), static_cast<NodeId>(200 + i),
                 p.data(), p.size());
  }

  std::size_t woff = 0;
  int wchunk = 1;
  FrameReassembler ra;
  std::vector<Frame> got;
  std::uint8_t buf[97];  // deliberately not a power of two
  while (woff < wire.size() || true) {
    if (woff < wire.size()) {
      const std::size_t n = std::min<std::size_t>(static_cast<std::size_t>(wchunk),
                                                  wire.size() - woff);
      ASSERT_EQ(write(sv[0], wire.data() + woff, n), static_cast<ssize_t>(n));
      woff += n;
      wchunk = wchunk % 7 + 1;
      if (woff == wire.size()) close(sv[0]);
    }
    const ssize_t r = read(sv[1], buf, sizeof(buf));
    if (r == 0) break;  // EOF after the writer closed
    ASSERT_GT(r, 0);
    ASSERT_TRUE(ra.feed(buf, static_cast<std::size_t>(r)));
    Frame f;
    while (ra.next(f)) got.push_back(f);
  }
  close(sv[1]);

  ASSERT_EQ(got.size(), static_cast<std::size_t>(kFrames));
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_EQ(got[i].from, static_cast<NodeId>(100 + i));
    EXPECT_EQ(got[i].to, static_cast<NodeId>(200 + i));
  }
}

// ---------------------------------------------------------------------------
// Two in-process backends over real TCP loopback.
// ---------------------------------------------------------------------------

/// Records delivered Commit2pc payloads. The vectors are read only after
/// stop() (the join gives happens-before); live progress is polled through
/// the atomic counter, so the main thread's spin loops race nothing.
class SinkActor : public runtime::Actor {
 public:
  void on_message(NodeId from, const wire::Message& m) override {
    ASSERT_EQ(m.type(), wire::MsgType::kCommit2pc);
    values.push_back(static_cast<const wire::Commit2pc&>(m).tx.raw);
    froms.push_back(from);
    delivered.store(values.size(), std::memory_order_release);
  }
  std::vector<std::uint64_t> values;
  std::vector<NodeId> froms;
  std::atomic<std::size_t> delivered{0};
};

class NullActor : public runtime::Actor {
 public:
  void on_message(NodeId, const wire::Message&) override {
    FAIL() << "a remote node's actor must never run locally";
  }
};

wire::MessagePtr numbered(std::uint64_t i) {
  auto m = wire::make_message<wire::Commit2pc>();
  m->tx = TxId{i};
  return m;
}

/// One half of a 2-process cluster living in this test process: rank owns
/// DC == rank (nprocs 2). Node 0 lives on rank 0, node 1 on rank 1; both
/// backends register both nodes in the same order.
struct Half {
  explicit Half(std::uint32_t rank, std::uint16_t base_port,
                std::uint64_t outbound_budget = 4u << 20)
      : be(SocketBackend::Options{rank, 2, runtime::loopback_host_list(2, base_port),
                                  /*workers=*/1, /*seed=*/1,
                                  /*connect_timeout_ms=*/10'000, /*mesh_token=*/0,
                                  /*epoch=*/0, runtime::SocketPump::kPoll,
                                  outbound_budget}) {
    n0 = be.add_node(rank == 0 ? static_cast<runtime::Actor*>(&sink) : &null_, /*dc=*/0,
                     nullptr);
    n1 = be.add_node(rank == 1 ? static_cast<runtime::Actor*>(&sink) : &null_, /*dc=*/1,
                     nullptr);
  }
  SocketBackend be;
  SinkActor sink;
  NullActor null_;
  NodeId n0 = kInvalidNode, n1 = kInvalidNode;
};

TEST(SocketBackendPair, DeliversAcrossRealTcpInOrder) {
  Half a(0, 7601), b(1, 7601);
  // start() blocks until the mesh is up; run b's in a thread so both halves
  // can rendezvous.
  std::thread tb([&] { b.be.start(); });
  a.be.start();
  tb.join();

  const std::uint64_t kMsgs = 200;
  for (std::uint64_t i = 0; i < kMsgs; ++i) {
    a.be.transport().send(a.n0, a.n1, numbered(i));  // cross-process
  }
  // Wait for delivery on the remote half.
  for (int spin = 0; spin < 100 && b.sink.delivered.load() < kMsgs; ++spin) {
    b.be.run_for(20'000);
  }
  a.be.stop();
  b.be.stop();

  ASSERT_EQ(b.sink.values.size(), kMsgs);
  for (std::uint64_t i = 0; i < kMsgs; ++i) {
    EXPECT_EQ(b.sink.values[i], i) << "TCP per-channel FIFO must hold";
    EXPECT_EQ(b.sink.froms[i], a.n0) << "the wire frame must carry the true sender";
  }
  EXPECT_EQ(a.sink.values.size(), 0u);
  // Epoch beacons (DESIGN §11) ride the same frame path as data, so the
  // counters are a floor, not an exact match.
  EXPECT_GE(a.be.stats().frames_out, kMsgs);
  EXPECT_GE(b.be.stats().frames_in, kMsgs);
}

/// Reliable endpoints over the socket pair: built like Half, but the sink
/// actors are wrapped by a per-half ReliableTransport before registration.
struct ReliableHalf {
  explicit ReliableHalf(std::uint32_t rank, std::uint16_t base_port, ReliableConfig cfg)
      : be(SocketBackend::Options{rank, 2, runtime::loopback_host_list(2, base_port),
                                  /*workers=*/1, /*seed=*/1,
                                  /*connect_timeout_ms=*/10'000}),
        rt(be.transport(), be.exec(), cfg) {
    runtime::Actor* a0 = rank == 0 ? rt.wrap(&sink) : rt.wrap(&null_);
    runtime::Actor* a1 = rank == 1 ? rt.wrap(&sink) : rt.wrap(&null_);
    n0 = be.add_node(a0, /*dc=*/0, nullptr);
    n1 = be.add_node(a1, /*dc=*/1, nullptr);
    rt.attach(a0, n0);
    rt.attach(a1, n1);
  }
  SocketBackend be;
  ReliableTransport rt;
  SinkActor sink;
  NullActor null_;
  NodeId n0 = kInvalidNode, n1 = kInvalidNode;
};

TEST(SocketBackendPair, ReliableRetransmitsAcrossReconnectExactlyOnce) {
  // Kill the TCP connection mid-stream: the original dialer redials, RTO
  // retransmission replays the unacked window over the fresh connection,
  // and the receiver's EXISTING per-channel seq state dedups anything that
  // had already been delivered — exactly-once, in order, across a
  // transport-level restart.
  ReliableConfig cfg;
  cfg.rto_us = 40'000;
  cfg.max_rto_us = 300'000;
  ReliableHalf a(0, 7621, cfg), b(1, 7621, cfg);

  // Sends are paced by a timer on the owning worker — endpoint window
  // state must never be touched from a foreign thread once workers run.
  const std::uint64_t kFirst = 30, kSecond = 30;
  std::atomic<std::uint64_t> limit{kFirst};
  std::atomic<std::uint64_t> sent{0};
  runtime::TimerHandle pump = a.be.exec().every(a.n0, 2'000, 0, [&] {
    while (sent.load() < limit.load()) {
      a.rt.send(a.n0, a.n1, numbered(sent.load()));
      sent.fetch_add(1);
    }
  });

  std::thread tb([&] { b.be.start(); });
  a.be.start();
  tb.join();

  // First burst delivers and acks over the original connection.
  for (int spin = 0; spin < 200 && b.sink.delivered.load() < kFirst; ++spin) {
    b.be.run_for(10'000);
  }
  ASSERT_EQ(b.sink.delivered.load(), kFirst);

  // Kill the link from the receiver side, then release a second burst:
  // those frames hit a dead (or reborn) connection, get dropped at the
  // transport, and must be recovered purely by RTO retransmission over the
  // redialed connection — deduped by b's existing RecvChannel state.
  b.be.debug_kill_connection(0);
  limit.store(kFirst + kSecond);
  for (int spin = 0; spin < 300 && b.sink.delivered.load() < kFirst + kSecond; ++spin) {
    b.be.run_for(20'000);
  }
  a.be.stop();
  b.be.stop();

  ASSERT_EQ(b.sink.values.size(), kFirst + kSecond)
      << "retransmission must recover everything the dead link ate";
  for (std::uint64_t i = 0; i < kFirst + kSecond; ++i) {
    EXPECT_EQ(b.sink.values[i], i) << "exactly-once, in order, across the reconnect";
  }
  const auto sa = a.be.stats();
  const auto sb = b.be.stats();
  EXPECT_GE(sa.reconnects + sb.reconnects, 1u) << "the link must actually have died";
  EXPECT_GT(a.rt.stats().retransmits, 0u);
}

// ---------------------------------------------------------------------------
// Batched write path (DESIGN §12).
// ---------------------------------------------------------------------------

TEST(SocketFraming, CursorResumesShortWritesMidIovecOverASocketpair) {
  // The pump's batched write path under maximum kernel hostility: a tiny
  // send buffer forces sendmsg to accept only part of an iovec chain, so
  // the cursor must resume mid-frame (possibly mid-iovec) on every flush.
  // The reader sips 1..13-byte reads, so reassembly sees every split point
  // the cursor can produce.
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const int sndbuf = 4096;
  ASSERT_EQ(setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf)), 0);
  const int wflags = fcntl(sv[0], F_GETFL, 0);
  ASSERT_EQ(fcntl(sv[0], F_SETFL, wflags | O_NONBLOCK), 0);

  const int kFrames = 41;
  std::vector<std::vector<std::uint8_t>> frames;
  std::vector<std::vector<std::uint8_t>> payloads;
  for (int i = 0; i < kFrames; ++i) {
    const auto p = payload_of(static_cast<std::size_t>(1 + (i * 977) % 3000),
                              static_cast<std::uint8_t>(i * 5 + 1));
    payloads.push_back(p);
    std::vector<std::uint8_t> f;
    append_frame(f, static_cast<NodeId>(i), static_cast<NodeId>(1000 + i), p.data(),
                 p.size());
    frames.push_back(std::move(f));
  }

  FrameQueueCursor cur;
  FrameReassembler ra;
  std::vector<Frame> got;
  std::uint64_t short_writes = 0;
  std::uint8_t sip[13];
  int sipn = 1;
  while (!cur.done(frames) || got.size() < static_cast<std::size_t>(kFrames)) {
    if (!cur.done(frames)) {
      struct iovec iov[kMaxWritevIovecs];
      const std::size_t cnt = cur.build(frames, iov, kMaxWritevIovecs, kMaxWritevBytes);
      std::size_t total = 0;
      for (std::size_t k = 0; k < cnt; ++k) total += iov[k].iov_len;
      msghdr mh{};
      mh.msg_iov = iov;
      mh.msg_iovlen = cnt;
      const ssize_t n = sendmsg(sv[0], &mh, MSG_NOSIGNAL);
      if (n > 0) {
        cur.advance(frames, static_cast<std::size_t>(n));
        if (static_cast<std::size_t>(n) < total) ++short_writes;
      } else {
        ASSERT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK);
      }
    }
    const ssize_t r = read(sv[1], sip, static_cast<std::size_t>(sipn));
    sipn = sipn % 13 + 1;
    if (r > 0) {
      ASSERT_TRUE(ra.feed(sip, static_cast<std::size_t>(r)));
      Frame f;
      while (ra.next(f)) got.push_back(f);
    }
  }
  close(sv[0]);
  close(sv[1]);

  EXPECT_GT(short_writes, 0u) << "the tiny SNDBUF must actually have split a batch";
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kFrames));
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_EQ(got[i].from, static_cast<NodeId>(i));
    EXPECT_EQ(got[i].to, static_cast<NodeId>(1000 + i));
    EXPECT_EQ(got[i].bytes, payloads[i]) << "frame " << i << " must survive byte-exact";
  }
}

TEST(SocketBackendPair, WakeFloodLosesNoWakeups) {
  // Hammer the pump's wake path: a flood of single sends, each a potential
  // empty->non-empty ring transition racing the pump's "drain pipe, clear
  // armed flag, rescan" sequence. A lost wakeup would strand the last
  // frame(s) in the ring until the next beacon; losing NONE of 3000 proves
  // the clear-before-scan ordering.
  Half a(0, 7641), b(1, 7641);
  std::thread tb([&] { b.be.start(); });
  a.be.start();
  tb.join();

  const std::uint64_t kMsgs = 3000;
  for (std::uint64_t i = 0; i < kMsgs; ++i) {
    a.be.transport().send(a.n0, a.n1, numbered(i));
  }
  for (int spin = 0; spin < 300 && b.sink.delivered.load() < kMsgs; ++spin) {
    b.be.run_for(20'000);
  }
  a.be.stop();
  b.be.stop();

  ASSERT_EQ(b.sink.values.size(), kMsgs);
  for (std::uint64_t i = 0; i < kMsgs; ++i) {
    EXPECT_EQ(b.sink.values[i], i) << "flood must deliver in order with no loss";
  }
  // The whole point of batching: far fewer write syscalls than frames.
  const auto sa = a.be.stats();
  EXPECT_LT(sa.write_syscalls, sa.frames_out)
      << "coalescing must beat one write per frame on a flood";
}

TEST(SocketBackendPair, BackpressureBoundsOutboundAndConvergesAfterHeal) {
  // A stalled peer (pump ignores its socket entirely — a slow consumer
  // taken to the limit) must NOT let the sender queue grow without bound:
  // the ring fills to its byte budget, forward() refuses, and the sending
  // worker parks envelopes (counted as backpressure stalls). Healing the
  // peer drains the ring and the parked queue in order — backpressure is
  // deferral, never loss.
  const std::uint64_t kBudget = 4096;
  Half a(0, 7661, kBudget), b(1, 7661, kBudget);
  std::thread tb([&] { b.be.start(); });
  a.be.start();
  tb.join();

  a.be.debug_stall_peer(1, true);
  const std::uint64_t kMsgs = 2000;
  for (std::uint64_t i = 0; i < kMsgs; ++i) {
    a.be.transport().send(a.n0, a.n1, numbered(i));
  }
  // Give the sending worker time to hit the budget and start parking.
  for (int spin = 0; spin < 50 && a.be.stats().backpressure_stalls == 0; ++spin) {
    a.be.run_for(10'000);
  }
  const auto stalled = a.be.stats();
  EXPECT_GT(stalled.backpressure_stalls, 0u)
      << "a full ring must park senders, not grow";
  // Bounded memory: the ring never exceeds its budget plus the epoch
  // beacons that bypass it (16 wire bytes per 50ms — a rounding error).
  EXPECT_LE(a.be.debug_outbound_queued(1), kBudget + 2048)
      << "the outbound ring must respect its byte budget while stalled";

  a.be.debug_stall_peer(1, false);
  for (int spin = 0; spin < 500 && b.sink.delivered.load() < kMsgs; ++spin) {
    b.be.run_for(20'000);
  }
  a.be.stop();
  b.be.stop();

  ASSERT_EQ(b.sink.values.size(), kMsgs)
      << "every parked envelope must deliver after the heal";
  for (std::uint64_t i = 0; i < kMsgs; ++i) {
    EXPECT_EQ(b.sink.values[i], i) << "parked envelopes must preserve FIFO";
  }
  EXPECT_EQ(a.be.stats().backpressure_drops, 0u)
      << "2000 small envelopes sit far under the parked-bytes cap";
}

}  // namespace
}  // namespace paris::test
