// Self-healing cluster tests (DESIGN §11): snapshot state transfer +
// catch-up onto a recovering replica, 2PC fencing of dead coordinators,
// epoch fencing of stale incarnations at the socket layer, byte-level
// mutation of inbound frames against the wire validator, and the
// end-to-end kill-under-load proof: a 3-process socket run SIGKILLs a rank
// mid-load, the supervisor respawns it with a bumped epoch, the respawn
// streams donor state, and the merged-history checkers come back clean.
//
// Unlike the other socket tests this binary defines its own main(): the
// e2e tests re-exec it as socket children, which the
// maybe_run_socket_child() hook intercepts before gtest ever runs.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "proto/paris_server.h"
#include "runtime/socket_runtime.h"
#include "test_util.h"
#include "wire/messages.h"
#include "workload/experiment.h"
#include "workload/socket_runner.h"

namespace paris::test {
namespace {

// ---------------------------------------------------------------------------
// Byte-level mutation of inbound frames (the socket pump runs every inbound
// payload through wire::validate_encoded_message before pooled decode).
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encoded(const wire::Message& m) {
  std::vector<std::uint8_t> bytes;
  wire::encode_message(m, bytes);
  return bytes;
}

void mutate_and_validate(const std::vector<std::uint8_t>& pristine) {
  ASSERT_TRUE(wire::validate_encoded_message(pristine.data(), pristine.size()));
  std::vector<std::uint8_t> buf;
  // Every single-byte corruption, three patterns per position: the
  // validator must classify (accept or reject) without crashing, asserting
  // or allocating absurdly — it parse-skips, never materializes.
  for (std::size_t i = 0; i < pristine.size(); ++i) {
    for (const std::uint8_t mask : {0xFFu, 0x01u, 0x80u}) {
      buf = pristine;
      buf[i] ^= static_cast<std::uint8_t>(mask);
      (void)wire::validate_encoded_message(buf.data(), buf.size());
    }
  }
  // Every truncation point.
  for (std::size_t n = 0; n < pristine.size(); ++n) {
    (void)wire::validate_encoded_message(pristine.data(), n);
  }
}

TEST(FrameMutation, ValidatorSurvivesEveryByteFlipAndTruncation) {
  wire::PrepareReq prep;
  prep.tx = TxId::make(42, 7);
  prep.partition = 3;
  prep.snapshot = Timestamp{1'000'000};
  prep.ht = Timestamp{1'000'500};
  prep.writes = {{11, "hello"}, {12, "recovery"}};
  mutate_and_validate(encoded(prep));

  wire::SnapshotChunk chunk;
  chunk.partition = 1;
  chunk.seq = 0;
  chunk.last = 1;
  chunk.payload.assign(300, 0x5A);
  mutate_and_validate(encoded(chunk));

  wire::CatchUpRequest creq;
  creq.partition = 2;
  creq.epoch = 1;
  creq.vv = {5, 6, 7};
  mutate_and_validate(encoded(creq));
}

// ---------------------------------------------------------------------------
// TxId epoch salting.
// ---------------------------------------------------------------------------

TEST(Recovery, IncarnationEpochSaltsCoordinatorTxIds) {
  Deployment dep(small_config(System::kParis, 1, 1, 1, /*seed=*/11));
  dep.start();
  const PartitionId p = dep.topo().partitions_at(0)[0];
  dep.server(0, p).set_incarnation(3);
  settle(dep);

  auto& c = dep.add_client(0, p);
  SyncClient sc(sim_of(dep), c);
  const Key k = dep.topo().make_key(p, 9);
  sc.put({{k, "salted"}});
  settle(dep);

  // The committed version's TxId sequence must live in incarnation 3's
  // namespace: a respawned coordinator can never re-mint a TxId its dead
  // predecessor already used.
  bool found = false;
  dep.server(0, p).kvstore().for_each_chain(
      [&](Key key, const std::vector<store::Version>& chain) {
        if (key != k) return;
        for (const auto& v : chain) {
          EXPECT_GE(v.tx.seq(), 3u << 24);
          found = true;
        }
      });
  EXPECT_TRUE(found) << "write never applied";
}

// ---------------------------------------------------------------------------
// 2PC fencing: a prepared entry whose coordinator died must not pin the
// apply fence (and through it the cluster UST) forever.
// ---------------------------------------------------------------------------

TEST(Recovery, PreparedEntryOfDeadCoordinatorIsFenced) {
  Deployment dep(small_config(System::kParis, 2, 2, 2, /*seed=*/23));
  dep.start();
  settle(dep);
  const PartitionId p0 = dep.topo().partitions_at(0)[0];
  auto& victim = dep.server(0, p0);
  auto& coord = dep.server(1, dep.topo().partitions_at(1)[1]);

  // A coordinator prepares a write on the victim cohort ... and dies before
  // ever sending the decision. (The PrepareResp goes back to a server that
  // never coordinated this tx — which must tolerate it as an orphan.)
  wire::PrepareReq prep;
  prep.tx = TxId::make(coord.node(), 1);
  prep.partition = p0;
  prep.snapshot = victim.stable_snapshot();
  prep.ht = victim.hlc_value();
  prep.writes = {{dep.topo().make_key(p0, 4), "never-decided"}};
  victim.on_message(coord.node(), prep);

  // The undecided prepare pins the victim's apply fence: its installed
  // snapshot freezes while the rest of the run moves on.
  dep.run_for(400'000);
  const Timestamp pinned = victim.min_vv();
  dep.run_for(400'000);
  EXPECT_LE(victim.min_vv().physical_us(), pinned.physical_us() + 50'000)
      << "a prepared entry with no decision must freeze the apply fence";
  EXPECT_GE(coord.stats().orphan_prepare_resps, 1u)
      << "the non-coordinator must tolerate the stray PrepareResp";

  // Epoch fence: the deployment learned the coordinator's process died.
  victim.fence_lost_coordinators({coord.node()});
  EXPECT_EQ(victim.stats().prepared_fenced, 1u);
  dep.run_for(600'000);
  EXPECT_GT(victim.min_vv().physical_us(), pinned.physical_us() + 300'000)
      << "fencing must un-pin the apply fence";
}

// ---------------------------------------------------------------------------
// Snapshot + catch-up state transfer.
// ---------------------------------------------------------------------------

using VersionKey = std::tuple<Key, std::uint64_t, std::uint64_t, DcId>;
using VersionVal = std::pair<std::uint8_t, Value>;

/// Newest version per key, with its full identity (ut, tx, sr) and payload.
std::map<Key, std::pair<VersionKey, VersionVal>> newest_versions(
    const store::MvStore& s) {
  std::map<Key, std::pair<VersionKey, VersionVal>> out;
  s.for_each_chain([&](Key k, const std::vector<store::Version>& chain) {
    const auto& v = chain.back();
    out[k] = {{k, v.ut.raw, v.tx.raw, v.sr}, {v.kind, v.v}};
  });
  return out;
}

TEST(Recovery, SnapshotStreamAndCatchupRebuildReplica) {
  // Partition 0 is replicated at all three DCs: A (dc0) donates the
  // snapshot, C (dc2) supplies the catch-up delta, B (dc1) recovers.
  Deployment dep(small_config(System::kParis, 3, 3, 3, /*seed=*/31));
  dep.start();
  settle(dep);
  const PartitionId p = dep.topo().partitions_at(0)[0];
  auto& A = dep.server(0, p);
  auto& B = dep.server(1, p);
  auto& C = dep.server(2, p);

  auto& c0 = dep.add_client(0, p);
  SyncClient sc0(sim_of(dep), c0);
  for (int i = 0; i < 8; ++i) {
    sc0.put({{dep.topo().make_key(p, static_cast<std::uint64_t>(i)), "v" + std::to_string(i)}});
  }
  settle(dep);

  bool done = false;
  B.start_recovery(A.node(), {C.node()}, [&] { done = true; });
  ASSERT_TRUE(B.recovering());
  // Traffic arriving mid-recovery (replication of this fresh commit, ΔR
  // heartbeats, gossip) is buffered and replayed, not lost.
  sc0.put({{dep.topo().make_key(p, 77), "written-during-recovery"}});
  run_until_flag(sim_of(dep), done);

  EXPECT_FALSE(B.recovering());
  EXPECT_EQ(A.stats().snapshots_served, 1u);
  EXPECT_EQ(C.stats().catchups_served, 1u);
  EXPECT_GT(B.stats().recovery_buffered, 0u);

  // Equivalence: B holds every donor/peer version bit-exactly — same update
  // timestamp, creating tx, source replica and payload, so the total
  // version order (ut, tx, sr) is preserved across the transfer.
  settle(dep);
  const auto got = newest_versions(B.kvstore());
  for (const auto* src : {&A, &C}) {
    for (const auto& [k, want] : newest_versions(src->kvstore())) {
      const auto it = got.find(k);
      ASSERT_NE(it, got.end()) << "key " << k << " missing after recovery";
      EXPECT_EQ(it->second.first, want.first) << "version identity differs for key " << k;
      EXPECT_EQ(it->second.second, want.second) << "payload differs for key " << k;
    }
  }
  const auto it77 = got.find(dep.topo().make_key(p, 77));
  ASSERT_NE(it77, got.end()) << "commit during recovery lost";
  EXPECT_EQ(it77->second.second.second, "written-during-recovery");
}

// ---------------------------------------------------------------------------
// Socket-layer epoch fencing (unit; the in-process half of DESIGN §11's
// membership story — the fork/exec half is the e2e test below).
// ---------------------------------------------------------------------------

int dial_loopback(std::uint16_t port) {
  for (int tries = 0; tries < 400; ++tries) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) return fd;
    ::close(fd);
    ::usleep(10'000);
  }
  return -1;
}

void send_hello(int fd, std::uint32_t rank, std::uint64_t token, std::uint32_t epoch) {
  std::uint8_t h[runtime::sockdetail::kHelloSize];
  const std::uint32_t magic = runtime::sockdetail::kHelloMagic;
  const std::uint32_t reserved = 0;
  std::memcpy(h, &magic, 4);
  std::memcpy(h + 4, &rank, 4);
  std::memcpy(h + 8, &token, 8);
  std::memcpy(h + 16, &epoch, 4);
  std::memcpy(h + 20, &reserved, 4);
  ASSERT_EQ(::write(fd, h, sizeof(h)), static_cast<ssize_t>(sizeof(h)));
}

struct NullActor : runtime::Actor {
  void on_message(NodeId, const wire::Message&) override {}
};

TEST(SocketEpochFence, StaleIncarnationHelloIsFencedAndListenerFires) {
  runtime::SocketBackend::Options opt;
  opt.rank = 0;
  opt.nprocs = 2;
  opt.hosts = runtime::loopback_host_list(2, 7721);
  opt.workers = 1;
  opt.seed = 9;
  opt.connect_timeout_ms = 10'000;
  opt.mesh_token = 0xFEED'FACE'CAFE'BEEFull;
  runtime::SocketBackend be(opt);
  NullActor n0, n1;
  be.add_node(&n0, /*dc=*/0, nullptr);
  be.add_node(&n1, /*dc=*/1, nullptr);

  std::mutex mu;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> fired;
  be.set_epoch_listener([&](std::uint32_t rank, std::uint32_t epoch) {
    std::lock_guard<std::mutex> lk(mu);
    fired.emplace_back(rank, epoch);
  });

  // "Rank 1, incarnation 2" rendezvouses while start() waits for the mesh.
  int fd_live = -1;
  std::thread fake([&] {
    fd_live = dial_loopback(7721);
    ASSERT_GE(fd_live, 0);
    send_hello(fd_live, /*rank=*/1, opt.mesh_token, /*epoch=*/2);
  });
  be.start();
  fake.join();
  EXPECT_EQ(be.peer_epoch(1), 2u);
  {
    std::lock_guard<std::mutex> lk(mu);
    ASSERT_EQ(fired.size(), 1u) << "listener must fire on the 0 -> 2 increase";
    EXPECT_EQ(fired[0], (std::pair<std::uint32_t, std::uint32_t>{1, 2}));
  }

  // A zombie of the dead incarnation (epoch 1 < 2) redials in: fenced —
  // the connection is closed without ever joining the mesh.
  const int fd_stale = dial_loopback(7721);
  ASSERT_GE(fd_stale, 0);
  send_hello(fd_stale, /*rank=*/1, opt.mesh_token, /*epoch=*/1);
  std::uint64_t fenced = 0;
  for (int spin = 0; spin < 400 && fenced == 0; ++spin) {
    fenced = be.stats().fenced_stale_epoch;
    ::usleep(10'000);
  }
  EXPECT_EQ(fenced, 1u);
  std::uint8_t byte;
  EXPECT_EQ(::read(fd_stale, &byte, 1), 0) << "fenced connection must be closed";
  EXPECT_EQ(be.peer_epoch(1), 2u) << "a stale hello must not regress the lease";

  // The NEXT incarnation (epoch 3) replaces the live connection and fires
  // the listener again.
  const int fd_next = dial_loopback(7721);
  ASSERT_GE(fd_next, 0);
  send_hello(fd_next, /*rank=*/1, opt.mesh_token, /*epoch=*/3);
  for (int spin = 0; spin < 400 && be.peer_epoch(1) != 3; ++spin) ::usleep(10'000);
  EXPECT_EQ(be.peer_epoch(1), 3u);
  {
    std::lock_guard<std::mutex> lk(mu);
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[1], (std::pair<std::uint32_t, std::uint32_t>{1, 3}));
  }

  ::close(fd_live);
  ::close(fd_stale);
  ::close(fd_next);
  be.stop();
}

// ---------------------------------------------------------------------------
// End-to-end: SIGKILL a rank under load; the supervisor respawns it with a
// bumped epoch, the respawn streams donor state, and the merged-history
// checkers accept the full cross-process execution.
// ---------------------------------------------------------------------------

workload::ExperimentConfig kill_under_load_config(System sys, std::uint16_t base_port,
                                                  std::uint32_t replication,
                                                  std::uint64_t seed) {
  workload::ExperimentConfig cfg;
  cfg.system = sys;
  cfg.runtime = runtime::Kind::kSockets;
  cfg.num_dcs = 3;
  cfg.num_partitions = 3;
  cfg.replication = replication;
  cfg.socket.processes = 3;
  cfg.socket.base_port = base_port;
  cfg.socket.supervise = true;
  cfg.socket.max_respawns = 2;
  cfg.socket.kill_rank = 1;
  cfg.socket.kill_after_ms = 1'000;
  cfg.threads_per_process = 2;
  cfg.workload.ops_per_tx = 6;
  cfg.workload.writes_per_tx = 2;
  cfg.workload.partitions_per_tx = 2;
  // DESIGN §11: a SIGKILL can separate a multi-DC transaction's coordinator
  // from its replicated writes mid-2PC; the recovery acceptance runs
  // single-DC transactions so every commit is atomic w.r.t. the crash.
  cfg.workload.multi_dc_ratio = 0.0;
  cfg.workload.keys_per_partition = 200;
  cfg.warmup_us = 200'000;
  cfg.measure_us = 2'500'000;
  cfg.reliable = true;
  cfg.reliable_cfg.rto_us = 50'000;
  cfg.check_consistency = true;
  cfg.aws_latency = false;
  cfg.seed = seed;
  return cfg;
}

void expect_healed(const workload::ExperimentResult& res) {
  for (const auto& v : res.violations) ADD_FAILURE() << "violation: " << v;
  EXPECT_GE(res.respawns, 1u) << "the killed rank was never respawned";
  EXPECT_GE(res.snapshots_served, 1u) << "the respawn never streamed donor state";
  EXPECT_GT(res.committed, 0u);
}

TEST(RecoveryE2E, ParisKillUnderLoadHealsCheckerClean) {
  expect_healed(workload::run_experiment(
      kill_under_load_config(System::kParis, 7701, /*replication=*/3, /*seed=*/101)));
}

TEST(RecoveryE2E, BprKillUnderLoadHealsCheckerClean) {
  expect_healed(workload::run_experiment(
      kill_under_load_config(System::kBpr, 7711, /*replication=*/2, /*seed=*/103)));
}

}  // namespace
}  // namespace paris::test

// The e2e tests above re-exec this binary as socket children; the hook must
// intercept them before gtest parses argv (it exits in the child).
int main(int argc, char** argv) {
  paris::workload::maybe_run_socket_child(argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
