// Multi-version store tests: snapshot visibility, the total version order,
// out-of-order/duplicate inserts, and garbage collection.

#include <gtest/gtest.h>

#include "storage/mv_store.h"

namespace paris::store {
namespace {

Timestamp ts(std::uint64_t phys, std::uint16_t log = 0) {
  return Timestamp::from_parts(phys, log);
}

TEST(MvStore, ReadReturnsFreshestWithinSnapshot) {
  MvStore s;
  s.apply(1, "v1", ts(100), TxId::make(1, 1), 0);
  s.apply(1, "v2", ts(200), TxId::make(1, 2), 0);
  s.apply(1, "v3", ts(300), TxId::make(1, 3), 0);

  EXPECT_EQ(s.read(1, ts(50)), nullptr);
  EXPECT_EQ(s.read(1, ts(100))->v, "v1");
  EXPECT_EQ(s.read(1, ts(250))->v, "v2");
  EXPECT_EQ(s.read(1, ts(999))->v, "v3");
}

TEST(MvStore, UnknownKeyReadsNull) {
  MvStore s;
  EXPECT_EQ(s.read(42, kTsMax), nullptr);
  EXPECT_EQ(s.latest(42), nullptr);
  EXPECT_EQ(s.chain_length(42), 0u);
}

TEST(MvStore, OutOfOrderInsertKeepsChainSorted) {
  MvStore s;
  s.apply(1, "v3", ts(300), TxId::make(1, 3), 0);
  s.apply(1, "v1", ts(100), TxId::make(1, 1), 0);
  s.apply(1, "v2", ts(200), TxId::make(1, 2), 0);
  EXPECT_EQ(s.read(1, ts(150))->v, "v1");
  EXPECT_EQ(s.read(1, ts(250))->v, "v2");
  EXPECT_EQ(s.latest(1)->v, "v3");
  EXPECT_EQ(s.chain_length(1), 3u);
}

TEST(MvStore, DuplicateInsertIgnored) {
  MvStore s;
  s.apply(1, "v1", ts(100), TxId::make(1, 1), 0);
  s.apply(1, "v1", ts(100), TxId::make(1, 1), 0);
  EXPECT_EQ(s.chain_length(1), 1u);
  EXPECT_EQ(s.num_versions(), 1u);
}

TEST(MvStore, ConcurrentSameTimestampOrderedByTxIdThenDc) {
  MvStore s;
  // Same ut; tx id breaks the tie (then source DC).
  s.apply(1, "low-tx", ts(100), TxId::make(1, 1), 2);
  s.apply(1, "high-tx", ts(100), TxId::make(2, 1), 0);
  EXPECT_EQ(s.read(1, ts(100))->v, "high-tx") << "LWW winner is max (ut, tx, sr)";
  EXPECT_EQ(s.chain_length(1), 2u);

  s.apply(2, "dc0", ts(100), TxId::make(3, 1), 0);
  s.apply(2, "dc1", ts(100), TxId::make(3, 1), 1);
  EXPECT_EQ(s.read(2, ts(100))->v, "dc1") << "source DC breaks remaining ties";
}

TEST(MvStore, GcKeepsNewestAtOrBelowWatermarkPlusNewer) {
  MvStore s;
  for (std::uint64_t i = 1; i <= 5; ++i)
    s.apply(1, "v" + std::to_string(i), ts(i * 100), TxId::make(1, i), 0);

  const std::size_t removed = s.gc(ts(350));
  EXPECT_EQ(removed, 2u);  // v1, v2 superseded by v3 (newest <= 350)
  EXPECT_EQ(s.chain_length(1), 3u);
  // A reader at snapshot >= watermark still sees the right version.
  EXPECT_EQ(s.read(1, ts(350))->v, "v3");
  EXPECT_EQ(s.read(1, ts(450))->v, "v4");
  // Older snapshots are no longer servable (by design: GC watermark is
  // below every active snapshot).
  EXPECT_EQ(s.read(1, ts(150)), nullptr);
}

TEST(MvStore, GcWithWatermarkBelowAllVersionsIsNoop) {
  MvStore s;
  s.apply(1, "v1", ts(100), TxId::make(1, 1), 0);
  s.apply(1, "v2", ts(200), TxId::make(1, 2), 0);
  EXPECT_EQ(s.gc(ts(50)), 0u);
  EXPECT_EQ(s.chain_length(1), 2u);
}

TEST(MvStore, GcIsIncrementalAcrossManyKeys) {
  MvStore s;
  for (Key k = 0; k < 100; ++k)
    for (std::uint64_t v = 1; v <= 4; ++v)
      s.apply(k, "x", ts(v * 10), TxId::make(1, static_cast<std::uint32_t>(k * 4 + v)), 0);
  EXPECT_EQ(s.num_versions(), 400u);
  EXPECT_EQ(s.gc(ts(40)), 300u);
  EXPECT_EQ(s.num_versions(), 100u);
  // Second GC has nothing to do and must be cheap (multi-version set empty).
  EXPECT_EQ(s.gc(ts(40)), 0u);
}

TEST(MvStore, StatsAccumulate) {
  MvStore s;
  s.apply(1, "a", ts(10), TxId::make(1, 1), 0);
  s.apply(1, "b", ts(20), TxId::make(1, 2), 0);
  s.read(1, ts(15));
  s.gc(ts(20));
  EXPECT_EQ(s.stats().applied_versions, 2u);
  EXPECT_EQ(s.stats().reads, 1u);
  EXPECT_EQ(s.stats().gc_removed, 1u);
}

TEST(MvStore, ValuesAreIndependentPerKey) {
  MvStore s;
  s.apply(1, "one", ts(10), TxId::make(1, 1), 0);
  s.apply(2, "two", ts(10), TxId::make(1, 2), 0);
  EXPECT_EQ(s.read(1, kTsMax)->v, "one");
  EXPECT_EQ(s.read(2, kTsMax)->v, "two");
  EXPECT_EQ(s.num_keys(), 2u);
}

// ---------------------------------------------------------------------------
// Binary counter payloads (the protocol path applies deltas as int64s; the
// string form is a legacy/test convenience that must stay equivalent).
// ---------------------------------------------------------------------------

TEST(MvStore, BinaryAndStringCounterApplyAreEquivalent) {
  MvStore bin, str;
  for (std::uint64_t i = 1; i <= 6; ++i) {
    bin.apply(1, Value{}, /*delta=*/static_cast<std::int64_t>(i), ts(i * 10),
              TxId::make(1, i), 0, /*kind=*/1);
    str.apply(1, std::to_string(i), ts(i * 10), TxId::make(1, i), 0, /*kind=*/1);
  }
  for (std::uint64_t snap : {5ull, 25ull, 45ull, 999ull}) {
    EXPECT_EQ(bin.read_counter(1, ts(snap)).first, str.read_counter(1, ts(snap)).first)
        << "snap " << snap;
  }
  EXPECT_EQ(bin.read_counter(1, ts(999)).first, 21);
}

TEST(MvStore, CounterReadsStraddlingGcFoldBoundary) {
  MvStore s;
  // Register base 100 at t=100, then deltas +1 at t=200..1000.
  s.apply(1, "100", ts(100), TxId::make(1, 1), 0, /*kind=*/0);
  for (std::uint64_t i = 2; i <= 10; ++i)
    s.apply(1, Value{}, /*delta=*/1, ts(i * 100), TxId::make(1, i), 0, /*kind=*/1);
  ASSERT_EQ(s.read_counter(1, ts(10'000)).first, 109);

  // Fold at watermark 550: base + deltas at 200..500 collapse into the
  // boundary version at 500 (now a register base with the partial sum).
  const std::size_t removed = s.gc(ts(550));
  EXPECT_EQ(removed, 4u);
  // Sums at every snapshot at or above the watermark are preserved —
  // exactly AT the boundary version, just above it, and at the top.
  EXPECT_EQ(s.read_counter(1, ts(500)).first, 104) << "at the fold boundary";
  EXPECT_EQ(s.read_counter(1, ts(550)).first, 104) << "at the watermark";
  EXPECT_EQ(s.read_counter(1, ts(600)).first, 105) << "first delta above the fold";
  EXPECT_EQ(s.read_counter(1, ts(10'000)).first, 109) << "full sum";
  // The folded boundary acts as a register base for register-mode reads too.
  EXPECT_EQ(s.read(1, ts(550))->v, "104");

  // A second fold on the already-folded chain keeps being exact.
  s.gc(ts(750));
  EXPECT_EQ(s.read_counter(1, ts(750)).first, 106);
  EXPECT_EQ(s.read_counter(1, ts(10'000)).first, 109);
}

TEST(MvStore, DuplicateReapplyOfSameCoordinateIsIgnored) {
  MvStore s;
  // Same (ut, tx, sr) delivered twice (e.g. a test harness replaying a
  // replication batch) must not double-count — for registers or counters.
  s.apply(1, Value{}, /*delta=*/5, ts(100), TxId::make(1, 1), 0, /*kind=*/1);
  s.apply(1, Value{}, /*delta=*/5, ts(100), TxId::make(1, 1), 0, /*kind=*/1);
  s.apply(1, "7", ts(100), TxId::make(1, 1), 0, /*kind=*/1);  // string twin
  EXPECT_EQ(s.chain_length(1), 1u);
  EXPECT_EQ(s.read_counter(1, ts(999)).first, 5);

  // Duplicates arriving after a GC fold are also ignored if their slot in
  // the chain survived; ones below the fold horizon reinsert at the front
  // but never corrupt sums at or above the watermark.
  for (std::uint64_t i = 2; i <= 4; ++i)
    s.apply(1, Value{}, /*delta=*/1, ts(i * 100), TxId::make(1, i), 0, /*kind=*/1);
  s.gc(ts(250));
  const std::int64_t before = s.read_counter(1, ts(999)).first;
  s.apply(1, Value{}, /*delta=*/1, ts(300), TxId::make(1, 3), 0, /*kind=*/1);  // dup
  EXPECT_EQ(s.read_counter(1, ts(999)).first, before);
}

}  // namespace
}  // namespace paris::store
