// Experiment-runner sanity: both systems sustain load on a mid-size
// cluster, produce sane latency/throughput numbers, and pass the offline
// exactness checker (which subsumes causal-snapshot and atomicity checks)
// while every message goes through the wire codec.

#include <gtest/gtest.h>

#include "workload/experiment.h"

namespace paris::test {
namespace {

using workload::ExperimentConfig;
using workload::ExperimentResult;
using workload::WorkloadSpec;

ExperimentConfig base_config(proto::System sys) {
  ExperimentConfig cfg;
  cfg.system = sys;
  cfg.num_dcs = 3;
  cfg.num_partitions = 9;
  cfg.replication = 2;
  cfg.workload = WorkloadSpec::read_heavy();
  cfg.workload.keys_per_partition = 200;  // contention -> version churn
  cfg.threads_per_process = 2;
  cfg.warmup_us = 200'000;
  cfg.measure_us = 400'000;
  cfg.check_consistency = true;
  cfg.codec = sim::CodecMode::kBytes;
  return cfg;
}

TEST(Experiment, ParisReadHeavyIsConsistent) {
  auto cfg = base_config(proto::System::kParis);
  const ExperimentResult res = run_experiment(cfg);
  EXPECT_GT(res.committed, 500u);
  EXPECT_GT(res.throughput_tx_s, 100.0);
  EXPECT_GT(res.latency_us.p50, 0u);
  for (const auto& v : res.violations) ADD_FAILURE() << v;
}

TEST(Experiment, ParisWriteHeavyIsConsistent) {
  auto cfg = base_config(proto::System::kParis);
  cfg.workload = WorkloadSpec::write_heavy();
  cfg.workload.keys_per_partition = 200;
  const ExperimentResult res = run_experiment(cfg);
  EXPECT_GT(res.committed, 500u);
  for (const auto& v : res.violations) ADD_FAILURE() << v;
}

TEST(Experiment, BprReadHeavyIsConsistent) {
  auto cfg = base_config(proto::System::kBpr);
  const ExperimentResult res = run_experiment(cfg);
  EXPECT_GT(res.committed, 100u);
  // BPR must actually block some reads on this WAN cluster.
  EXPECT_GT(res.blocked_reads, 0u);
  for (const auto& v : res.violations) ADD_FAILURE() << v;
}

TEST(Experiment, BprWriteHeavyIsConsistent) {
  auto cfg = base_config(proto::System::kBpr);
  cfg.workload = WorkloadSpec::write_heavy();
  cfg.workload.keys_per_partition = 200;
  const ExperimentResult res = run_experiment(cfg);
  EXPECT_GT(res.committed, 100u);
  for (const auto& v : res.violations) ADD_FAILURE() << v;
}

TEST(Experiment, ParisLatencyWellBelowBpr) {
  auto pcfg = base_config(proto::System::kParis);
  auto bcfg = base_config(proto::System::kBpr);
  pcfg.check_consistency = bcfg.check_consistency = false;
  pcfg.codec = bcfg.codec = sim::CodecMode::kSizeOnly;
  const auto p = run_experiment(pcfg);
  const auto b = run_experiment(bcfg);
  EXPECT_LT(p.latency_us.mean, b.latency_us.mean)
      << "non-blocking reads must beat blocking reads on latency";
}

TEST(Experiment, DeterministicGivenSeed) {
  auto cfg = base_config(proto::System::kParis);
  cfg.check_consistency = false;
  const auto a = run_experiment(cfg);
  const auto b = run_experiment(cfg);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.latency_us.p99, b.latency_us.p99);
  cfg.seed = 99;
  const auto c = run_experiment(cfg);
  EXPECT_NE(a.sim_events, c.sim_events) << "different seed should perturb the run";
}

TEST(Experiment, VisibilityMeasurement) {
  auto cfg = base_config(proto::System::kParis);
  cfg.check_consistency = false;
  cfg.measure_visibility = true;
  cfg.visibility_sample_shift = 0;  // sample every tx
  const auto res = run_experiment(cfg);
  ASSERT_GT(res.visibility_hist.count(), 0u);
  // PaRiS visibility is bounded below by the gossip lag; with 20ms WAN it
  // must exceed a couple of milliseconds.
  EXPECT_GT(res.visibility_hist.percentile(0.5), 2'000u);
}

}  // namespace
}  // namespace paris::test
