// Hybrid Logical Clock unit tests: encoding, ordering, and the three HLC
// transition rules (local tick, receive tick, passive observe).

#include <gtest/gtest.h>

#include "common/hlc.h"

namespace paris {
namespace {

TEST(Timestamp, PartsRoundtrip) {
  const auto ts = Timestamp::from_parts(123456789, 42);
  EXPECT_EQ(ts.physical_us(), 123456789u);
  EXPECT_EQ(ts.logical(), 42u);
}

TEST(Timestamp, OrderingIsPhysicalThenLogical) {
  EXPECT_LT(Timestamp::from_parts(100, 65535), Timestamp::from_parts(101, 0));
  EXPECT_LT(Timestamp::from_parts(100, 1), Timestamp::from_parts(100, 2));
  EXPECT_EQ(Timestamp::from_parts(5, 7), Timestamp::from_parts(5, 7));
}

TEST(Timestamp, NextIncrementsLogical) {
  const auto ts = Timestamp::from_parts(100, 3);
  EXPECT_EQ(ts.next().physical_us(), 100u);
  EXPECT_EQ(ts.next().logical(), 4u);
}

TEST(Timestamp, LogicalOverflowCarriesIntoPhysical) {
  const auto ts = Timestamp::from_parts(100, 65535);
  EXPECT_EQ(ts.next().physical_us(), 101u);
  EXPECT_EQ(ts.next().logical(), 0u);
}

TEST(Timestamp, ToStringFormat) {
  EXPECT_EQ(to_string(Timestamp::from_parts(42, 7)), "42.7");
  EXPECT_EQ(to_string(kTsZero), "0.0");
}

TEST(Hlc, TickFollowsPhysicalClock) {
  Hlc h;
  EXPECT_EQ(h.tick(1000), Timestamp::from_physical(1000));
  EXPECT_EQ(h.tick(2000), Timestamp::from_physical(2000));
}

TEST(Hlc, TickIsStrictlyMonotonicEvenWithFrozenClock) {
  Hlc h;
  Timestamp prev = h.tick(1000);
  for (int i = 0; i < 100; ++i) {
    const Timestamp cur = h.tick(1000);  // physical clock stuck
    EXPECT_GT(cur, prev);
    prev = cur;
  }
  EXPECT_EQ(prev.physical_us(), 1000u);
  EXPECT_EQ(prev.logical(), 100u);
}

TEST(Hlc, TickPastAdvancesOverObserved) {
  Hlc h;
  h.tick(1000);
  const auto remote = Timestamp::from_parts(5000, 9);
  const Timestamp t = h.tick_past(1000, remote);
  EXPECT_GT(t, remote) << "receive rule must move past the incoming event";
  EXPECT_EQ(t, remote.next());
}

TEST(Hlc, TickPastUsesPhysicalWhenAhead) {
  Hlc h;
  const Timestamp t = h.tick_past(9000, Timestamp::from_physical(100));
  EXPECT_EQ(t, Timestamp::from_physical(9000));
}

TEST(Hlc, ObserveNeverGoesBackward) {
  Hlc h;
  h.tick(5000);
  const Timestamp before = h.value();
  h.observe(1000, Timestamp::from_physical(100));  // both older
  EXPECT_EQ(h.value(), before);
  h.observe(1000, Timestamp::from_parts(7000, 3));
  EXPECT_EQ(h.value(), Timestamp::from_parts(7000, 3));
}

TEST(Hlc, SkewedReplicasConvergeThroughMessages) {
  // A fast clock at 10ms and a slow one at 9ms exchange events; the slow
  // side's HLC runs ahead of its physical clock, as HLCs are designed to.
  Hlc fast, slow;
  Timestamp msg = fast.tick(10'000);
  const Timestamp got = slow.tick_past(9'000, msg);
  EXPECT_GT(got, msg);
  EXPECT_EQ(got.physical_us(), 10'000u);
}

}  // namespace
}  // namespace paris
