// End-to-end basics of the PaRiS protocol on a small partially-replicated
// cluster: transactions run, snapshots advance, reads observe committed
// data after stabilization, and read-your-writes holds immediately via the
// client cache.

#include <gtest/gtest.h>

#include "test_util.h"

namespace paris::test {
namespace {

TEST(ParisBasic, CommitAndReadBack_SameClient) {
  Deployment dep(small_config(System::kParis, 3, 6, 2));
  dep.start();
  auto& c = dep.add_client(0, dep.topo().partitions_at(0)[0]);
  SyncClient sc(sim_of(dep), c);

  const Key k = dep.topo().make_key(0, 7);
  const Timestamp ct = sc.put({{k, "hello"}});
  EXPECT_FALSE(ct.is_zero());

  // Immediately readable by the same client (write cache), even though the
  // UST has almost certainly not covered ct yet.
  sc.start();
  const Item it = sc.read1(k);
  EXPECT_EQ(it.v, "hello");
  sc.commit();
}

TEST(ParisBasic, SnapshotIsStaleButMonotonic) {
  Deployment dep(small_config(System::kParis, 3, 6, 2));
  dep.start();
  auto& c = dep.add_client(0, dep.topo().partitions_at(0)[0]);
  SyncClient sc(sim_of(dep), c);

  Timestamp prev = kTsZero;
  for (int i = 0; i < 5; ++i) {
    const Timestamp snap = sc.start();
    EXPECT_GE(snap, prev) << "snapshots must advance monotonically per client";
    prev = snap;
    sc.commit();  // read-only
    settle(dep, 50'000);
  }
  EXPECT_FALSE(prev.is_zero()) << "UST should have advanced after settling";
}

TEST(ParisBasic, OtherClientSeesWriteAfterStabilization) {
  Deployment dep(small_config(System::kParis, 3, 6, 2));
  dep.start();
  settle(dep);  // UST > 0 everywhere

  const Key k = dep.topo().make_key(1, 3);
  auto& writer = dep.add_client(0, dep.topo().partitions_at(0)[0]);
  auto& reader = dep.add_client(1, dep.topo().partitions_at(1)[0]);
  SyncClient w(sim_of(dep), writer), r(sim_of(dep), reader);

  const Timestamp ct = w.put({{k, "v1"}});

  // Before the UST passes ct the other client may or may not see it; after
  // full stabilization it must.
  settle(dep);
  r.start();
  const Item it = r.read1(k);
  EXPECT_EQ(it.v, "v1");
  EXPECT_EQ(it.ut, ct);
  r.commit();
}

TEST(ParisBasic, AbsentKeyReadsAsZeroItem) {
  Deployment dep(small_config(System::kParis, 3, 6, 2));
  dep.start();
  settle(dep);
  auto& c = dep.add_client(0, dep.topo().partitions_at(0)[0]);
  SyncClient sc(sim_of(dep), c);

  sc.start();
  const Item it = sc.read1(dep.topo().make_key(2, 999));
  EXPECT_TRUE(it.ut.is_zero());
  EXPECT_TRUE(it.v.empty());
  sc.commit();
}

TEST(ParisBasic, MultiPartitionTransactionCommitsAtomically) {
  Deployment dep(small_config(System::kParis, 3, 6, 2));
  dep.start();
  settle(dep);
  auto& c = dep.add_client(0, dep.topo().partitions_at(0)[0]);
  SyncClient sc(sim_of(dep), c);

  const auto& locals = dep.topo().partitions_at(0);
  const Key a = dep.topo().make_key(locals[0], 1);
  const Key b = dep.topo().make_key(locals[1], 1);
  const Timestamp ct = sc.put({{a, "A"}, {b, "B"}});

  settle(dep);
  auto& c2 = dep.add_client(1, dep.topo().partitions_at(1)[0]);
  SyncClient sc2(sim_of(dep), c2);
  sc2.start();
  auto items = sc2.read({a, b});
  EXPECT_EQ(items[0].v, "A");
  EXPECT_EQ(items[1].v, "B");
  EXPECT_EQ(items[0].ut, ct) << "all writes of a tx share the commit timestamp";
  EXPECT_EQ(items[1].ut, ct);
  sc2.commit();
}

TEST(ParisBasic, ReadsFromRemoteDcWork) {
  // Client in DC0 reads a key whose partition is not replicated at DC0.
  Deployment dep(small_config(System::kParis, 4, 8, 2));
  dep.start();
  settle(dep);

  const auto& topo = dep.topo();
  PartitionId remote_p = kInvalidReplica;
  for (PartitionId p = 0; p < topo.num_partitions(); ++p)
    if (!topo.dc_replicates(0, p)) {
      remote_p = p;
      break;
    }
  ASSERT_NE(remote_p, kInvalidReplica);

  // Write it from a DC that does replicate it.
  const DcId owner = topo.replicas(remote_p)[0];
  auto& w = dep.add_client(owner, topo.partitions_at(owner)[0]);
  SyncClient sw(sim_of(dep), w);
  const Key k = topo.make_key(remote_p, 42);
  sw.put({{k, "remote"}});
  settle(dep);

  auto& r = dep.add_client(0, topo.partitions_at(0)[0]);
  SyncClient sr(sim_of(dep), r);
  sr.start();
  EXPECT_EQ(sr.read1(k).v, "remote");
  sr.commit();
}

TEST(ParisBasic, RepeatableReadsWithinTransaction) {
  Deployment dep(small_config(System::kParis, 3, 6, 2));
  dep.start();
  settle(dep);
  const Key k = dep.topo().make_key(0, 5);

  auto& c1 = dep.add_client(0, dep.topo().partitions_at(0)[0]);
  auto& c2 = dep.add_client(1, dep.topo().partitions_at(1)[0]);
  SyncClient a(sim_of(dep), c1), b(sim_of(dep), c2);

  a.put({{k, "v1"}});
  settle(dep);

  b.start();
  const Item first = b.read1(k);
  EXPECT_EQ(first.v, "v1");

  // Concurrent update by a; b must keep seeing its first read.
  a.put({{k, "v2"}});
  settle(dep);

  const Item second = b.read1(k);
  EXPECT_EQ(second.v, first.v) << "repeatable reads within a transaction";
  b.commit();
}

}  // namespace
}  // namespace paris::test
