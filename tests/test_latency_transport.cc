// Transport-decorator tests: per-channel delay ordering on the thread
// backend, seed-determinism of the jitter draws, chaos fault injection
// (cross-channel reorder must PASS the causal/exactness checker; drops must
// be caught by it), and a cross-runtime latency-percentile smoke comparing
// the threads backend under an injected WAN model against the simulator
// running the same deployment.

#include <gtest/gtest.h>

#include <vector>

#include "runtime/latency_transport.h"
#include "runtime/thread_runtime.h"
#include "workload/experiment.h"

namespace paris::test {
namespace {

using runtime::ChaosConfig;
using runtime::ChaosTransport;
using runtime::LatencyTransport;
using runtime::ThreadBackend;

/// Records each heartbeat's payload and its arrival time on the backend
/// clock (accessed only from the owning worker, then after stop()).
class ArrivalActor : public runtime::Actor {
 public:
  explicit ArrivalActor(runtime::Executor& exec) : exec_(&exec) {}
  void on_message(NodeId from, const wire::Message& m) override {
    ASSERT_EQ(m.type(), wire::MsgType::kHeartbeat);
    froms.push_back(from);
    values.push_back(static_cast<const wire::Heartbeat&>(m).t.raw);
    at_us.push_back(exec_->now_us());
  }
  std::vector<NodeId> froms;
  std::vector<std::uint64_t> values;
  std::vector<std::uint64_t> at_us;

 private:
  runtime::Executor* exec_;
};

wire::MessagePtr heartbeat(std::uint64_t t) {
  auto hb = wire::make_message<wire::Heartbeat>();
  hb->t = Timestamp{t};
  return hb;
}

sim::LatencyModel wan(std::uint64_t inter_us, double jitter) {
  auto m = sim::LatencyModel::uniform(2, inter_us, /*intra_dc_us=*/500);
  m.set_jitter(jitter);
  return m;
}

TEST(LatencyTransport, DelaysDeliveryAndPreservesPerChannelFifo) {
  ThreadBackend be(ThreadBackend::Options{2, 1});
  ArrivalActor a(be.exec()), b(be.exec());
  const NodeId na = be.add_node(&a, 0, nullptr);
  const NodeId nb = be.add_node(&b, 1, nullptr);
  LatencyTransport lt(be.transport(), be.exec(), wan(20'000, /*jitter=*/0.3), /*seed=*/7);

  const int kMsgs = 50;
  const std::uint64_t sent_at = be.exec().now_us();
  for (int i = 0; i < kMsgs; ++i) lt.send(na, nb, heartbeat(static_cast<std::uint64_t>(i)));
  be.run_for(80'000);
  be.stop();

  ASSERT_EQ(b.values.size(), static_cast<std::size_t>(kMsgs));
  for (int i = 0; i < kMsgs; ++i) {
    EXPECT_EQ(b.values[i], static_cast<std::uint64_t>(i));  // FIFO despite jitter
    if (i > 0) {
      EXPECT_GE(b.at_us[i], b.at_us[i - 1]);  // arrivals non-decreasing
    }
  }
  // One-way delay 20ms +- 30% jitter: nothing may arrive earlier than the
  // minimum modeled delay (scheduling can only add lateness, never remove
  // delay).
  EXPECT_GE(b.at_us.front(), sent_at + 14'000);
}

TEST(LatencyTransport, FastChannelOvertakesSlowChannel) {
  ThreadBackend be(ThreadBackend::Options{2, 1});
  ArrivalActor a(be.exec()), c(be.exec()), b(be.exec());
  const NodeId na = be.add_node(&a, 0, nullptr);  // remote DC: 30ms away
  const NodeId nc = be.add_node(&c, 1, nullptr);  // same DC as b: 500us
  const NodeId nb = be.add_node(&b, 1, nullptr);
  LatencyTransport lt(be.transport(), be.exec(), wan(30'000, /*jitter=*/0), /*seed=*/7);

  lt.send(na, nb, heartbeat(111));  // sent first, arrives last
  lt.send(nc, nb, heartbeat(222));
  be.run_for(60'000);
  be.stop();

  ASSERT_EQ(b.values.size(), 2u);
  EXPECT_EQ(b.values[0], 222u);  // intra-DC message overtook the WAN one
  EXPECT_EQ(b.values[1], 111u);
  EXPECT_GE(b.at_us[1], b.at_us[0] + 20'000);
}

TEST(LatencyTransport, JitterDrawsAreSeedDeterministicPerChannel) {
  ThreadBackend be(ThreadBackend::Options{1, 1});
  ArrivalActor a(be.exec()), b(be.exec());
  const NodeId na = be.add_node(&a, 0, nullptr);
  const NodeId nb = be.add_node(&b, 1, nullptr);

  LatencyTransport t1(be.transport(), be.exec(), wan(20'000, 0.25), /*seed=*/42);
  LatencyTransport t2(be.transport(), be.exec(), wan(20'000, 0.25), /*seed=*/42);
  LatencyTransport t3(be.transport(), be.exec(), wan(20'000, 0.25), /*seed=*/43);

  bool any_diff_seed43 = false;
  bool any_jitter = false;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t d1 = t1.sample_one_way_us(na, nb);
    EXPECT_EQ(d1, t2.sample_one_way_us(na, nb));  // same seed -> same sequence
    any_diff_seed43 |= d1 != t3.sample_one_way_us(na, nb);
    any_jitter |= d1 != 20'000;
    EXPECT_GE(d1, 15'000u);
    EXPECT_LE(d1, 25'000u);
  }
  EXPECT_TRUE(any_diff_seed43);  // different seed -> different draws
  EXPECT_TRUE(any_jitter);       // jitter actually applied
  be.stop();
}

TEST(LatencyTransport, MatrixModeIsJitterFree) {
  ThreadBackend be(ThreadBackend::Options{1, 1});
  ArrivalActor a(be.exec()), b(be.exec());
  const NodeId na = be.add_node(&a, 0, nullptr);
  const NodeId nb = be.add_node(&b, 1, nullptr);
  LatencyTransport lt(be.transport(), be.exec(), wan(20'000, /*jitter=*/0), /*seed=*/5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(lt.sample_one_way_us(na, nb), 20'000u);
  EXPECT_EQ(lt.sample_one_way_us(na, na), 500u);  // intra-DC
  be.stop();
}

workload::ExperimentConfig small_threads_cluster(std::uint64_t seed) {
  workload::ExperimentConfig cfg;
  cfg.runtime = runtime::Kind::kThreads;
  cfg.worker_threads = 2;
  cfg.num_dcs = 3;
  cfg.num_partitions = 6;
  cfg.replication = 2;
  cfg.threads_per_process = 1;
  cfg.workload.ops_per_tx = 8;
  cfg.workload.writes_per_tx = 2;
  cfg.workload.keys_per_partition = 100;
  cfg.warmup_us = 50'000;
  cfg.measure_us = 250'000;
  cfg.aws_latency = false;
  cfg.uniform_inter_dc_us = 2'000;  // small WAN so the test stays fast
  cfg.uniform_intra_dc_us = 150;
  cfg.latency_model = runtime::LatencyModelKind::kJitter;
  cfg.codec = sim::CodecMode::kBytes;
  cfg.check_consistency = true;
  cfg.seed = seed;
  return cfg;
}

/// Chaos reorder stalls random messages, reordering delivery ACROSS
/// channels while the backend's clamp preserves each channel's FIFO — the
/// paper's TCP assumption. Causal safety must therefore hold: the exactness
/// checker (extended with the no-future-read / no-phantom causal checks)
/// must stay green for both systems.
TEST(ChaosTransport, ReorderStillPassesCausalChecker) {
  for (const auto sys : {proto::System::kParis, proto::System::kBpr}) {
    auto cfg = small_threads_cluster(21);
    cfg.system = sys;
    cfg.chaos.reorder_p = 0.3;
    cfg.chaos.reorder_stall_us = 5'000;

    const auto res = workload::run_experiment(cfg);
    SCOPED_TRACE(proto::system_name(sys));
    EXPECT_GT(res.committed, 0u);
    EXPECT_GT(res.chaos.stalled, 0u);  // chaos actually engaged
    EXPECT_EQ(res.chaos.dropped, 0u);
    for (const auto& v : res.violations) ADD_FAILURE() << v;
  }
}

/// Duplicated replication-layer messages must be absorbed: version vectors
/// merge by monotonic max and the store dedups (ut, tx, sr) re-applies.
TEST(ChaosTransport, DuplicateReplicationIsIdempotent) {
  auto cfg = small_threads_cluster(22);
  cfg.chaos.duplicate_p = 0.5;

  const auto res = workload::run_experiment(cfg);
  EXPECT_GT(res.committed, 0u);
  EXPECT_GT(res.chaos.duplicated, 0u);
  for (const auto& v : res.violations) ADD_FAILURE() << v;
}

/// Dropping ReplicateBatch breaks the version-clock promise (a later batch
/// or heartbeat advances `upto` past the lost writes), so the checker MUST
/// report stale reads: chaos drops are checker-visible, not silent.
TEST(ChaosTransport, DropIsCheckerVisible) {
  auto cfg = small_threads_cluster(23);
  cfg.measure_us = 400'000;
  cfg.chaos.drop_p = 0.9;

  const auto res = workload::run_experiment(cfg);
  EXPECT_GT(res.committed, 0u);
  EXPECT_GT(res.chaos.dropped, 0u);
  EXPECT_FALSE(res.violations.empty())
      << "90% replication drop produced no checker violation — drops are "
         "supposed to be visible to the exactness checker";
}

/// The same WAN-dominated deployment on the simulator and on real threads
/// with the LatencyTransport must agree on the latency distribution to
/// within scheduling tolerance: the median is set by the modeled RTTs, not
/// by the backend.
TEST(CrossRuntime, LatencyPercentilesMatchSimWithinTolerance) {
  workload::ExperimentConfig cfg;
  cfg.system = proto::System::kParis;
  cfg.num_dcs = 3;
  cfg.num_partitions = 3;
  cfg.replication = 1;  // R < M: remote partitions force WAN reads
  cfg.threads_per_process = 1;
  cfg.workload.ops_per_tx = 6;
  cfg.workload.writes_per_tx = 1;
  cfg.workload.partitions_per_tx = 2;
  cfg.workload.multi_dc_ratio = 1.0;  // every transaction crosses DCs
  cfg.workload.keys_per_partition = 100;
  cfg.warmup_us = 100'000;
  cfg.measure_us = 400'000;
  cfg.aws_latency = false;
  cfg.uniform_inter_dc_us = 10'000;
  cfg.uniform_intra_dc_us = 150;
  cfg.seed = 31;

  cfg.runtime = runtime::Kind::kSim;
  const auto sim_res = workload::run_experiment(cfg);

  cfg.runtime = runtime::Kind::kThreads;
  cfg.worker_threads = 2;
  cfg.latency_model = runtime::LatencyModelKind::kJitter;
  const auto thr_res = workload::run_experiment(cfg);

  ASSERT_GT(sim_res.committed, 20u);
  ASSERT_GT(thr_res.committed, 20u);
  // Both medians are WAN-bound: at least one modeled one-way hop.
  EXPECT_GE(sim_res.latency_us.p50, 10'000.0);
  EXPECT_GE(thr_res.latency_us.p50, 10'000.0);
  // And they agree within generous scheduling tolerance.
  EXPECT_GE(thr_res.latency_us.p50, 0.4 * sim_res.latency_us.p50);
  EXPECT_LE(thr_res.latency_us.p50, 2.5 * sim_res.latency_us.p50);
}

}  // namespace
}  // namespace paris::test
