// RNG, zipfian generator and physical-clock model tests.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/phys_clock.h"
#include "common/rng.h"

namespace paris {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) differs |= (a2.next_u64() != c.next_u64());
  EXPECT_TRUE(differs);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
    EXPECT_EQ(r.next_below(1), 0u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 10'000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, RangeInclusive) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.range(3, 5));
  EXPECT_EQ(seen, (std::set<std::uint64_t>{3, 4, 5}));
}

TEST(Rng, ChanceIsRoughlyCalibrated) {
  Rng r(13);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Zipfian, DrawsWithinDomain) {
  Rng r(3);
  Zipfian z(100, 0.99);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(z.draw(r), 100u);
}

TEST(Zipfian, RankZeroIsHottest) {
  Rng r(5);
  Zipfian z(1000, 0.99);
  std::map<std::uint64_t, int> freq;
  for (int i = 0; i < 100'000; ++i) ++freq[z.draw(r)];
  int max_count = 0;
  std::uint64_t max_rank = ~0ull;
  for (const auto& [rank, count] : freq)
    if (count > max_count) {
      max_count = count;
      max_rank = rank;
    }
  EXPECT_EQ(max_rank, 0u);
  // With theta=.99 over 1000 keys, rank 0 draws a sizable share.
  EXPECT_GT(max_count, 100'000 / 20);
}

TEST(Zipfian, HigherThetaIsMoreSkewed) {
  Rng r1(7), r2(7);
  Zipfian mild(1000, 0.5), strong(1000, 0.99);
  int mild_zero = 0, strong_zero = 0;
  for (int i = 0; i < 50'000; ++i) {
    mild_zero += mild.draw(r1) == 0;
    strong_zero += strong.draw(r2) == 0;
  }
  EXPECT_GT(strong_zero, mild_zero);
}

TEST(SampleDistinct, ProducesDistinctValuesInRange) {
  Rng r(17);
  for (int trial = 0; trial < 100; ++trial) {
    const auto s = sample_distinct(r, 20, 7);
    ASSERT_EQ(s.size(), 7u);
    std::set<std::uint32_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 7u);
    for (auto v : s) EXPECT_LT(v, 20u);
  }
}

TEST(SampleDistinct, FullSampleIsPermutation) {
  Rng r(19);
  const auto s = sample_distinct(r, 10, 10);
  std::set<std::uint32_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(PhysClock, OffsetBounded) {
  Rng r(23);
  for (int i = 0; i < 100; ++i) {
    const auto c = PhysClock::sample(r, 500, 50);
    EXPECT_LE(std::abs(c.offset_us()), 500);
    EXPECT_LE(std::abs(c.drift_ppm()), 50.0);
  }
}

TEST(PhysClock, ReadIsMonotonic) {
  Rng r(29);
  const auto c = PhysClock::sample(r, 1000, 100);
  std::uint64_t prev = 0;
  for (std::uint64_t t = 0; t < 10'000'000; t += 97'531) {
    const auto v = c.read_us(t);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(PhysClock, SkewStaysNearOffset) {
  const PhysClock c(250, 0.0);
  EXPECT_EQ(c.read_us(1'000'000), 1'000'250u);
  const PhysClock neg(-250, 0.0);
  EXPECT_EQ(neg.read_us(1'000'000), 999'750u);
  EXPECT_EQ(neg.read_us(100), 0u) << "clamps at zero rather than underflowing";
}

}  // namespace
}  // namespace paris
