// Universal Stable Time protocol tests: progress (with and without
// updates), monotonicity, the global safety bound, freeze under network
// partition and recovery after heal.

#include <gtest/gtest.h>

#include "proto/paris_server.h"
#include "test_util.h"

namespace paris::test {
namespace {

using proto::ParisServer;

std::vector<ParisServer*> paris_servers(Deployment& dep) {
  std::vector<ParisServer*> out;
  for (const auto& s : dep.servers()) out.push_back(dynamic_cast<ParisServer*>(s.get()));
  return out;
}

TEST(Ust, AdvancesOnIdleClusterViaHeartbeats) {
  Deployment dep(small_config(System::kParis, 3, 6, 2));
  dep.start();
  dep.run_for(400'000);  // no clients at all
  for (auto* s : paris_servers(dep)) {
    ASSERT_NE(s, nullptr);
    EXPECT_GT(s->ust().physical_us(), 100'000u)
        << "heartbeats must drive the UST forward without updates";
  }
}

TEST(Ust, StaysWithinGossipLagOfNow) {
  Deployment dep(small_config(System::kParis, 3, 12, 2));
  dep.start();
  dep.run_for(1'000'000);
  // Lag budget: replication one-way (20ms) + tree hops * ΔG + root exchange
  // one-way + ΔU, with margin.
  const sim::SimTime max_lag_us = 150'000;
  for (auto* s : paris_servers(dep)) {
    const auto lag = sim_of(dep).now() - s->ust().physical_us();
    EXPECT_LT(lag, max_lag_us) << "UST too stale at dc=" << s->dc()
                               << " p=" << s->partition();
  }
}

TEST(Ust, NeverExceedsGlobalMinInstalledSnapshot) {
  Deployment dep(small_config(System::kParis, 3, 6, 2));
  dep.start();
  auto& c = dep.add_client(0, dep.topo().partitions_at(0)[0]);
  SyncClient sc(sim_of(dep), c);

  for (int round = 0; round < 30; ++round) {
    sc.put({{dep.topo().make_key(round % 6, round), "v"}});
    dep.run_for(20'000);
    // Safety: every server's UST <= every server's min(VV). (min(VV) is
    // monotonic, so a UST computed from older minima can never exceed a
    // current one.)
    Timestamp global_min = kTsMax;
    for (const auto& s : dep.servers()) global_min = std::min(global_min, s->min_vv());
    for (auto* s : paris_servers(dep)) {
      EXPECT_LE(s->ust(), global_min)
          << "UST above an installed snapshot => non-blocking reads unsound";
    }
  }
}

TEST(Ust, MonotonicPerServer) {
  struct MonotonicTracer : proto::Tracer {
    std::unordered_map<std::uint64_t, Timestamp> last;
    int violations = 0;
    void on_ust_advance(DcId dc, PartitionId p, Timestamp ust, sim::SimTime) override {
      const std::uint64_t key = (static_cast<std::uint64_t>(dc) << 32) | p;
      auto& prev = last[key];
      if (ust < prev) ++violations;
      prev = ust;
    }
  } tracer;

  Deployment dep(small_config(System::kParis, 3, 6, 2), &tracer);
  dep.start();
  auto& c = dep.add_client(0, dep.topo().partitions_at(0)[0]);
  SyncClient sc(sim_of(dep), c);
  for (int i = 0; i < 20; ++i) {
    sc.put({{dep.topo().make_key(i % 6, i), "x"}});
    dep.run_for(15'000);
  }
  EXPECT_EQ(tracer.violations, 0);
  EXPECT_FALSE(tracer.last.empty());
}

TEST(Ust, FreezesWhenDcIsolatedAndResumesAfterHeal) {
  Deployment dep(small_config(System::kParis, 3, 6, 2));
  dep.start();
  settle(dep);

  auto servers = paris_servers(dep);
  const Timestamp before = servers[0]->ust();
  ASSERT_FALSE(before.is_zero());

  // Isolate DC2: the UST is a system-wide minimum, so it freezes at ALL DCs
  // (§III-C), within one gossip round of slack.
  net_of(dep).isolate_dc(2);
  dep.run_for(150'000);
  const Timestamp frozen = servers[0]->ust();
  dep.run_for(400'000);
  for (auto* s : paris_servers(dep)) {
    EXPECT_LE(s->ust().physical_us(), frozen.physical_us() + 50'000)
        << "UST kept advancing during a partition";
  }

  // Transactions still run in the connected DCs, reading the frozen
  // snapshot (availability of local operations).
  auto& c = dep.add_client(0, dep.topo().partitions_at(0)[0]);
  SyncClient sc(sim_of(dep), c);
  const sim::SimTime t0 = sim_of(dep).now();
  sc.start();
  sc.read({dep.topo().make_key(0, 1)});
  sc.commit();
  EXPECT_LT(sim_of(dep).now() - t0, 10'000u) << "local reads must not block during partition";

  net_of(dep).heal_all();
  settle(dep, 500'000);
  for (auto* s : paris_servers(dep)) {
    EXPECT_GT(s->ust(), frozen) << "UST must resume after heal";
  }
}

TEST(Ust, ClientCacheGrowsDuringFreezeAndDrainsAfterHeal) {
  Deployment dep(small_config(System::kParis, 3, 6, 2));
  dep.start();
  settle(dep);

  net_of(dep).isolate_dc(2);
  dep.run_for(100'000);

  auto& c = dep.add_client(0, dep.topo().partitions_at(0)[0]);
  SyncClient sc(sim_of(dep), c);
  for (int i = 0; i < 5; ++i) {
    sc.put({{dep.topo().make_key(0, 100 + i), "v"}});
    dep.run_for(10'000);
  }
  EXPECT_GE(c.cache_size(), 5u) << "frozen UST => cache cannot be pruned";

  net_of(dep).heal_all();
  settle(dep, 600'000);
  sc.start();  // pruning happens on transaction start
  sc.commit();
  EXPECT_EQ(c.cache_size(), 0u) << "cache drains once the UST catches up";
}

TEST(Ust, SnapshotAssignedIsServersUst) {
  Deployment dep(small_config(System::kParis, 3, 6, 2));
  dep.start();
  settle(dep);
  const PartitionId p = dep.topo().partitions_at(0)[0];
  auto& c = dep.add_client(0, p);
  SyncClient sc(sim_of(dep), c);
  const Timestamp snap = sc.start();
  sc.commit();
  auto* server = dep.paris_server(0, p);
  ASSERT_NE(server, nullptr);
  EXPECT_LE(snap, server->ust());
  EXPECT_GT(snap, kTsZero);
}

// The invariant that makes PaRiS reads non-blocking (§III-B): every read
// slice's snapshot is already installed at the serving replica, i.e.
// min(VV) >= snapshot at serve time. Checked live via a tracer that peeks
// at the serving server's version vector (the tracer runs synchronously
// inside serve_slice, so the state it reads is current).
TEST(Ust, ReadSliceSnapshotAlwaysLocallyInstalled) {
  struct InstalledTracer : proto::Tracer {
    Deployment* dep = nullptr;
    int slices = 0, violations = 0;
    void on_slice_served(DcId dc, PartitionId p, TxId, Timestamp snapshot, std::uint8_t,
                         const std::vector<wire::Item>&, sim::SimTime) override {
      ++slices;
      if (dep->server(dc, p).min_vv() < snapshot) ++violations;
    }
  } tracer;

  Deployment dep(small_config(System::kParis, 4, 8, 2, /*seed=*/23), &tracer);
  tracer.dep = &dep;
  dep.start();

  auto& c0 = dep.add_client(0, dep.topo().partitions_at(0)[0]);
  auto& c1 = dep.add_client(1, dep.topo().partitions_at(1)[0]);
  SyncClient a(sim_of(dep), c0), b(sim_of(dep), c1);
  for (int i = 0; i < 25; ++i) {
    a.put({{dep.topo().make_key(i % 8, i), "v"}});
    b.start();
    b.read({dep.topo().make_key((i + 3) % 8, i), dep.topo().make_key((i + 5) % 8, i)});
    b.commit();
    dep.run_for(7'000);
  }
  EXPECT_GT(tracer.slices, 0);
  EXPECT_EQ(tracer.violations, 0)
      << "a PaRiS snapshot reached a replica that had not installed it";
}

}  // namespace
}  // namespace paris::test
