// Coordinated-omission-safe latency recording (DESIGN §14).
//
// Unit half: LatencyRecorder window/overdue/merge semantics.
//
// E2E half — the regression Tene's "how NOT to measure latency" warns about:
// a 2-process socket cluster stalls one pump direction for 500ms mid-run.
//  - The OPEN-loop run charges every queued arrival its wait from the
//    SCHEDULED instant, so intended p99 jumps to stall scale, while service
//    p99 (finish - actual start) stays flat: only the handful of in-flight
//    transactions ever observe the stall from the inside.
//  - The CLOSED-loop driver — the old recorder — issues the next request
//    only after the previous finishes, so the stall suppresses the very
//    samples that would have shown it and its p99 stays flat. Running both
//    against the identical fault pins the difference.
//
// This binary defines its own main(): the e2e tests re-exec it as socket
// children, which maybe_run_socket_child() intercepts before gtest runs.

#include <gtest/gtest.h>

#include "stats/latency_recorder.h"
#include "workload/experiment.h"
#include "workload/socket_runner.h"

namespace paris::workload {
namespace {

using stats::LatencyRecorder;

// ---------------------------------------------------------------------------
// Recorder unit semantics.
// ---------------------------------------------------------------------------

TEST(Recorder, WindowsByFinishTimeAndCountsScheduledAtScheduleTime) {
  LatencyRecorder r;
  r.set_window(1000, 2000);

  r.note_scheduled(999);   // before the window: not counted
  r.note_scheduled(1000);  // in
  r.note_scheduled(1999);  // in
  r.note_scheduled(2000);  // after: not counted
  EXPECT_EQ(r.scheduled(), 2u);

  // Scheduled pre-window but FINISHED inside: the completion counts (same
  // finish-time convention as the closed-loop Collector).
  r.record(/*scheduled=*/900, /*started=*/905, /*finished=*/1100);
  // Finished outside the window: dropped entirely.
  r.record(1500, 1505, 2100);
  r.record(100, 105, 900);
  EXPECT_EQ(r.completed(), 1u);
  EXPECT_EQ(r.intended().count(), 1u);
  // The histogram is log-bucketed (<= ~3.1% relative error).
  EXPECT_NEAR(static_cast<double>(r.intended().percentile(0.5)), 200.0, 7.0);  // 1100 - 900
  EXPECT_NEAR(static_cast<double>(r.service().percentile(0.5)), 195.0, 7.0);   // 1100 - 905
}

TEST(Recorder, OverdueRequiresWaitBeyondPumpGrace) {
  LatencyRecorder r;
  r.set_window(0, 1'000'000);
  // Started a hair late (pump granularity): NOT overdue.
  r.record(1000, 1000 + LatencyRecorder::kOverdueGraceUs, 5000);
  EXPECT_EQ(r.overdue(), 0u);
  // Queued behind a busy channel for 2ms: overdue.
  r.record(1000, 3001, 9000);
  EXPECT_EQ(r.overdue(), 1u);
}

TEST(Recorder, IntendedChargesQueueingThatServiceNeverSees) {
  LatencyRecorder r;
  r.set_window(0, 1'000'000);
  // Scheduled at t=0, couldn't start until 500ms, served in 1ms: the user
  // waited 501ms even though the server only "worked" 1ms.
  r.record(0, 500'000, 501'000);
  EXPECT_EQ(r.intended().percentile(0.99), 501'000u);
  EXPECT_EQ(r.service().percentile(0.99), 1'000u);
}

TEST(Recorder, MergeSumsCountsAndAdoptsWindow) {
  LatencyRecorder a, b;
  a.set_window(0, 2'000'000);
  b.set_window(0, 2'000'000);
  a.note_scheduled(10);
  a.record(10, 20, 100);
  b.note_scheduled(30);
  b.note_scheduled(40);
  b.record(30, 5000, 6000);
  b.note_backlog(7);

  LatencyRecorder merged;
  merged.merge(a);
  merged.merge(b);
  EXPECT_EQ(merged.scheduled(), 3u);
  EXPECT_EQ(merged.completed(), 2u);
  EXPECT_EQ(merged.overdue(), 1u);
  EXPECT_EQ(merged.max_backlog(), 7u);
  EXPECT_DOUBLE_EQ(merged.intended_rate(), 3.0 / 2.0);
  EXPECT_DOUBLE_EQ(merged.achieved_rate(), 2.0 / 2.0);
}

// ---------------------------------------------------------------------------
// E2E: 500ms pump stall, open loop vs closed loop.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kStallMs = 500;

ExperimentConfig stall_config(std::uint16_t base_port, bool open_loop) {
  ExperimentConfig cfg;
  cfg.runtime = runtime::Kind::kSockets;
  cfg.num_dcs = 2;
  cfg.num_partitions = 2;
  cfg.replication = 1;
  cfg.threads_per_process = 2;
  cfg.socket.processes = 2;
  cfg.socket.base_port = base_port;
  // Every transaction spans both partitions so the stalled direction gates
  // all traffic (replication=1: each partition lives in exactly one DC).
  cfg.workload.ops_per_tx = 4;
  cfg.workload.writes_per_tx = 1;
  cfg.workload.partitions_per_tx = 2;
  cfg.workload.multi_dc_ratio = 1.0;
  cfg.workload.keys_per_partition = 1000;
  cfg.openloop.enabled = open_loop;
  cfg.openloop.arrival_rate = 1500;
  cfg.warmup_us = 300'000;
  cfg.measure_us = 2'200'000;
  // Rank 0 stops draining frames toward rank 1 from 800ms to 1300ms of run
  // time — inside the measurement window with room to drain afterwards.
  cfg.socket.stall_rank = 0;
  cfg.socket.stall_peer = 1;
  cfg.socket.stall_at_ms = 800;
  cfg.socket.stall_len_ms = kStallMs;
  cfg.check_consistency = true;
  cfg.aws_latency = false;
  cfg.seed = 2024;
  return cfg;
}

TEST(CoordinatedOmission, OpenLoopIntendedP99SeesTheStallServiceP99DoesNot) {
  const auto res = run_experiment(stall_config(7885, /*open_loop=*/true));
  for (const auto& v : res.violations) ADD_FAILURE() << "violation: " << v;
  ASSERT_GT(res.committed, 0u);
  EXPECT_GT(res.scheduled, 0u);

  const double intended_p99_ms = static_cast<double>(res.intended_hist.percentile(0.99)) / 1e3;
  const double service_p99_ms = static_cast<double>(res.service_hist.percentile(0.99)) / 1e3;

  // ~750 arrivals queue during the 500ms stall (~23% of the window's
  // completions), so intended p99 must reach stall scale...
  EXPECT_GT(intended_p99_ms, 250.0) << "intended p99 missed the stall";
  // ...while only the few in-flight transactions (client pool width, <1% of
  // samples) ever see it from the inside: service p99 stays flat.
  EXPECT_LT(service_p99_ms, intended_p99_ms - 150.0)
      << "service p99 " << service_p99_ms << "ms vs intended " << intended_p99_ms << "ms";
  // The queue is visible in the overdue/backlog accounting too.
  EXPECT_GT(res.overdue, 100u);
  EXPECT_GT(res.max_backlog, 10u);
}

TEST(CoordinatedOmission, ClosedLoopRecorderHidesTheIdenticalStall) {
  // The exact same cluster, fault schedule and seed — measured the old way.
  const auto closed = run_experiment(stall_config(7888, /*open_loop=*/false));
  for (const auto& v : closed.violations) ADD_FAILURE() << "violation: " << v;
  ASSERT_GT(closed.committed, 0u);

  // Each blocked session contributes ONE stall-length sample and then
  // resumes; with thousands of fast samples around it the stall vanishes
  // from p99 — the coordinated-omission lie this PR's recorder fixes.
  const double closed_p99_ms = static_cast<double>(closed.latency_hist.percentile(0.99)) / 1e3;
  EXPECT_LT(closed_p99_ms, 100.0)
      << "closed-loop p99 unexpectedly saw the stall; the CO regression "
         "baseline assumption broke";
}

}  // namespace
}  // namespace paris::workload

// The e2e tests above re-exec this binary as socket children; the hook must
// intercept them before gtest parses argv (it exits in the child).
int main(int argc, char** argv) {
  paris::workload::maybe_run_socket_child(argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
