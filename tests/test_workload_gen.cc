// Workload-generator statistics and determinism (DESIGN §14):
//  - chi-square goodness-of-fit of every key distribution against
//    KeyPicker::pmf() over 1M draws (the pmf IS the analytic oracle),
//  - the hot-spot split is exact in expectation,
//  - draw sequences are byte-identical per seed across concurrent threads,
//  - the open-loop schedule digest is identical across the sim, thread and
//    3-process socket runtimes for the same (config, seed),
//  - trace / flag parsing rejects malformed input.
//
// This binary defines its own main(): the cross-runtime digest test re-execs
// it as socket children, which maybe_run_socket_child() intercepts before
// gtest runs.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "workload/experiment.h"
#include "workload/keydist.h"
#include "workload/openloop.h"
#include "workload/socket_runner.h"

namespace paris::workload {
namespace {

constexpr std::uint64_t kDraws = 1'000'000;

// Pearson chi-square statistic of `draws` samples from `picker` against its
// own analytic pmf, one bucket per rank. With n = 1000 ranks and 1M draws the
// smallest expected bucket is still > 40, so no tail merging is needed.
double chi_square(const KeyPicker& picker, std::uint64_t seed, std::uint64_t draws) {
  std::vector<std::uint64_t> observed(picker.n(), 0);
  Rng rng(seed);
  for (std::uint64_t i = 0; i < draws; ++i) {
    const std::uint64_t r = picker.draw(rng);
    EXPECT_LT(r, picker.n());
    ++observed[r];
  }
  double chi2 = 0;
  for (std::uint64_t r = 0; r < picker.n(); ++r) {
    const double expected = picker.pmf(r) * static_cast<double>(draws);
    EXPECT_GT(expected, 5.0) << "bucket too thin for chi-square at rank " << r;
    const double d = static_cast<double>(observed[r]) - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

// dof = n - 1 = 999. mean 999, stddev sqrt(2*999) ~ 44.7; 1250 is ~5.6 sigma
// — astronomically unlikely under the null, and the seeds are fixed anyway.
constexpr double kChi2Bound999 = 1250.0;

WorkloadSpec spec_with(KeyDistKind kind, double theta = 0.99) {
  WorkloadSpec w;
  w.keys_per_partition = 1000;
  w.key_dist = kind;
  w.zipf_theta = theta;
  return w;
}

TEST(KeyDist, PmfSumsToOneForEveryKind) {
  for (const KeyDistKind kind :
       {KeyDistKind::kZipfGray, KeyDistKind::kUniform, KeyDistKind::kZipfRejection,
        KeyDistKind::kHotspot}) {
    const KeyPicker picker(spec_with(kind));
    double sum = 0;
    for (std::uint64_t r = 0; r < picker.n(); ++r) sum += picker.pmf(r);
    EXPECT_NEAR(sum, 1.0, 1e-9) << key_dist_name(kind);
  }
}

TEST(KeyDist, ZipfRejectionChiSquareMatchesAnalyticPmf) {
  const KeyPicker picker(spec_with(KeyDistKind::kZipfRejection, 0.99));
  EXPECT_LT(chi_square(picker, /*seed=*/1234, kDraws), kChi2Bound999);
}

TEST(KeyDist, ZipfRejectionSupportsThetaAboveOne) {
  // The Gray generator cannot do theta >= 1; rejection-inversion is exact.
  const KeyPicker picker(spec_with(KeyDistKind::kZipfRejection, 1.2));
  EXPECT_LT(chi_square(picker, /*seed=*/5678, kDraws), kChi2Bound999);
  // Skew sanity: pmf is strictly decreasing in rank.
  EXPECT_GT(picker.pmf(0), picker.pmf(1));
  EXPECT_GT(picker.pmf(1), picker.pmf(999));
}

TEST(KeyDist, UniformChiSquare) {
  const KeyPicker picker(spec_with(KeyDistKind::kUniform));
  EXPECT_LT(chi_square(picker, /*seed=*/42, kDraws), kChi2Bound999);
}

TEST(KeyDist, HotspotSplitIsExactInExpectation) {
  WorkloadSpec w = spec_with(KeyDistKind::kHotspot);
  w.hot_key_frac = 0.10;     // 100 hot ranks out of 1000
  w.hot_access_frac = 0.90;  // absorbing 90% of accesses
  const KeyPicker picker(w);
  ASSERT_EQ(picker.hot_n(), 100u);

  std::uint64_t hot_hits = 0;
  Rng rng(99);
  for (std::uint64_t i = 0; i < kDraws; ++i) {
    if (picker.draw(rng) < picker.hot_n()) ++hot_hits;
  }
  // Binomial stddev at p=0.9, 1M draws is ~3e-4; 0.005 is > 16 sigma.
  EXPECT_NEAR(static_cast<double>(hot_hits) / static_cast<double>(kDraws), 0.90, 0.005);
  // And the chi-square against pmf() covers uniformity within each set.
  EXPECT_LT(chi_square(picker, /*seed=*/99, kDraws), kChi2Bound999);
}

TEST(KeyDist, DrawSequenceIsByteIdenticalPerSeedAcrossThreads) {
  const KeyPicker picker(spec_with(KeyDistKind::kZipfRejection, 0.99));
  constexpr std::uint64_t kN = 100'000;
  constexpr std::uint64_t kSeed = 7;

  std::vector<std::uint64_t> reference;
  reference.reserve(kN);
  {
    Rng rng(kSeed);
    for (std::uint64_t i = 0; i < kN; ++i) reference.push_back(picker.draw(rng));
  }

  // Four threads hammer the SAME picker concurrently (draw() is const and
  // stateless) with private rngs; every sequence must equal the reference.
  std::vector<std::vector<std::uint64_t>> got(4);
  std::vector<std::thread> threads;
  for (auto& out : got) {
    threads.emplace_back([&picker, &out] {
      Rng rng(kSeed);
      out.reserve(kN);
      for (std::uint64_t i = 0; i < kN; ++i) out.push_back(picker.draw(rng));
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& out : got) EXPECT_EQ(out, reference);
}

TEST(KeyDist, ParseNames) {
  KeyDistKind k;
  EXPECT_TRUE(parse_key_dist("zipf", &k));
  EXPECT_EQ(k, KeyDistKind::kZipfGray);
  EXPECT_TRUE(parse_key_dist("zipf-ri", &k));
  EXPECT_EQ(k, KeyDistKind::kZipfRejection);
  EXPECT_TRUE(parse_key_dist("uniform", &k));
  EXPECT_EQ(k, KeyDistKind::kUniform);
  EXPECT_TRUE(parse_key_dist("hotspot", &k));
  EXPECT_EQ(k, KeyDistKind::kHotspot);
  EXPECT_FALSE(parse_key_dist("zipfian", &k));
  RateProfile p;
  EXPECT_TRUE(parse_rate_profile("flash", &p));
  EXPECT_EQ(p, RateProfile::kFlash);
  EXPECT_FALSE(parse_rate_profile("spike", &p));
}

// ---------------------------------------------------------------------------
// Trace parsing.
// ---------------------------------------------------------------------------

std::string write_temp(const char* contents) {
  char path[] = "/tmp/paris_trace_XXXXXX";
  const int fd = ::mkstemp(path);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::write(fd, contents, std::strlen(contents)),
            static_cast<ssize_t>(std::strlen(contents)));
  ::close(fd);
  return path;
}

TEST(Trace, ParsesOffsetsKeysAndComments) {
  const std::string path = write_temp(
      "# comment\n"
      "0\n"
      "150 7\n"
      "\n"
      "900 42\n");
  std::vector<TraceEntry> out;
  std::string err;
  ASSERT_TRUE(load_trace(path, &out, &err)) << err;
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].offset_us, 0u);
  EXPECT_FALSE(out[0].has_key);
  EXPECT_EQ(out[1].offset_us, 150u);
  EXPECT_TRUE(out[1].has_key);
  EXPECT_EQ(out[1].key_rank, 7u);
  EXPECT_EQ(out[2].key_rank, 42u);
  ::unlink(path.c_str());
}

TEST(Trace, RejectsUnsortedAndJunk) {
  std::vector<TraceEntry> out;
  std::string err;
  const std::string unsorted = write_temp("100\n50\n");
  EXPECT_FALSE(load_trace(unsorted, &out, &err));
  EXPECT_FALSE(err.empty());
  ::unlink(unsorted.c_str());

  const std::string junk = write_temp("100 notakey\n");
  EXPECT_FALSE(load_trace(junk, &out, &err));
  ::unlink(junk.c_str());

  EXPECT_FALSE(load_trace("/nonexistent/trace.txt", &out, &err));
}

// ---------------------------------------------------------------------------
// Cross-runtime schedule digest: the open-loop arrival schedule is a pure
// function of (config, seed), so the XOR-of-FNV digest must be identical on
// the deterministic simulator, real worker threads, and 3 real processes
// over TCP — regardless of scheduling, timing or process boundaries.
// ---------------------------------------------------------------------------

ExperimentConfig digest_config(runtime::Kind rt, std::uint16_t base_port) {
  ExperimentConfig cfg;
  cfg.runtime = rt;
  cfg.num_dcs = 3;
  cfg.num_partitions = 3;
  cfg.replication = 2;
  cfg.threads_per_process = 2;
  cfg.workload.keys_per_partition = 1000;
  cfg.workload.key_dist = KeyDistKind::kZipfRejection;
  cfg.workload.zipf_theta = 0.99;
  cfg.openloop.enabled = true;
  cfg.openloop.arrival_rate = 1200;
  cfg.warmup_us = 200'000;
  cfg.measure_us = 800'000;
  cfg.seed = 424242;
  cfg.aws_latency = false;
  cfg.check_consistency = true;
  if (rt == runtime::Kind::kSockets) {
    cfg.socket.processes = 3;
    cfg.socket.base_port = base_port;
  }
  return cfg;
}

TEST(OpenLoopDigest, IdenticalAcrossSimThreadsAndSocketProcesses) {
  const auto sim = run_experiment(digest_config(runtime::Kind::kSim, 0));
  const auto thr = run_experiment(digest_config(runtime::Kind::kThreads, 0));
  const auto sock = run_experiment(digest_config(runtime::Kind::kSockets, 7880));

  EXPECT_NE(sim.workload_digest, 0u);
  EXPECT_EQ(sim.workload_digest, thr.workload_digest);
  EXPECT_EQ(sim.workload_digest, sock.workload_digest)
      << "socket children must draw the same schedules and XOR-merge cleanly";

  for (const auto* r : {&sim, &thr, &sock}) {
    EXPECT_TRUE(r->violations.empty());
    EXPECT_GT(r->committed, 0u);
    EXPECT_GT(r->intended_rate_tx_s, 0.0);
  }

  // A different seed must change the schedule.
  auto reseeded = digest_config(runtime::Kind::kSim, 0);
  reseeded.seed = 424243;
  EXPECT_NE(run_experiment(reseeded).workload_digest, sim.workload_digest);
}

}  // namespace
}  // namespace paris::workload

// The digest test above re-execs this binary as socket children; the hook
// must intercept them before gtest parses argv (it exits in the child).
int main(int argc, char** argv) {
  paris::workload::maybe_run_socket_child(argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
