// ThreadBackend unit tests (mailbox delivery, per-channel FIFO, deferred
// tasks, periodic timers + cancellation) and the cross-runtime smoke test:
// the same small cluster and workload run on both the SimRuntime and the
// ThreadRuntime and both pass the exactness checker.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "runtime/thread_runtime.h"
#include "workload/experiment.h"

namespace paris::test {
namespace {

using runtime::ThreadBackend;

/// Records every received heartbeat's `t` payload (single-worker access).
class RecordingActor : public runtime::Actor {
 public:
  void on_message(NodeId from, const wire::Message& m) override {
    ASSERT_EQ(m.type(), wire::MsgType::kHeartbeat);
    froms.push_back(from);
    values.push_back(static_cast<const wire::Heartbeat&>(m).t.raw);
  }
  std::vector<NodeId> froms;
  std::vector<std::uint64_t> values;
};

wire::MessagePtr heartbeat(std::uint64_t t) {
  auto hb = wire::make_message<wire::Heartbeat>();
  hb->t = Timestamp{t};
  return hb;
}

TEST(ThreadRuntime, MailboxDeliversAndPreservesPerChannelFifo) {
  ThreadBackend be(ThreadBackend::Options{2, 1});
  RecordingActor a, b;
  const NodeId na = be.add_node(&a, 0, nullptr);
  const NodeId nb = be.add_node(&b, 1, nullptr);
  ASSERT_NE(be.worker_of(na), be.worker_of(nb));  // round-robin across workers

  // Sends enqueued before the workers spawn drain on the first run.
  const int kMsgs = 200;
  for (int i = 0; i < kMsgs; ++i) be.send(na, nb, heartbeat(static_cast<std::uint64_t>(i)));
  be.run_for(50'000);
  be.stop();

  ASSERT_EQ(b.values.size(), static_cast<std::size_t>(kMsgs));
  for (int i = 0; i < kMsgs; ++i) {
    EXPECT_EQ(b.froms[i], na);
    EXPECT_EQ(b.values[i], static_cast<std::uint64_t>(i));  // FIFO per channel
  }
  EXPECT_TRUE(a.values.empty());
  EXPECT_GE(be.events_executed(), static_cast<std::uint64_t>(kMsgs));
  EXPECT_GT(be.transport().total_bytes_sent(), 0u);
}

TEST(ThreadRuntime, ColocatedNodesShareAWorker) {
  ThreadBackend be(ThreadBackend::Options{4, 1});
  RecordingActor s, c;
  const NodeId ns = be.add_node(&s, 0, nullptr);
  const NodeId nc = be.add_node(&c, 0, nullptr, /*colocate_with=*/ns);
  EXPECT_EQ(be.worker_of(ns), be.worker_of(nc));
}

TEST(ThreadRuntime, DeferredTasksRunOnTheOwningWorker) {
  ThreadBackend be(ThreadBackend::Options{2, 1});
  RecordingActor a;
  const NodeId na = be.add_node(&a, 0, nullptr);

  std::atomic<int> ran{0};
  std::thread::id task_thread;
  be.exec().defer(na, [&] {
    task_thread = std::this_thread::get_id();
    ran.fetch_add(1);
  });
  be.exec().post(na, [&] { ran.fetch_add(1); });
  be.run_for(50'000);
  be.stop();

  EXPECT_EQ(ran.load(), 2);
  EXPECT_NE(task_thread, std::this_thread::get_id());
}

TEST(ThreadRuntime, PeriodicTimerFiresAndCancelStops) {
  ThreadBackend be(ThreadBackend::Options{1, 1});
  RecordingActor a;
  const NodeId na = be.add_node(&a, 0, nullptr);

  std::atomic<int> fires{0};
  std::atomic<int> cancelled_fires{0};
  runtime::TimerHandle keep =
      be.exec().every(na, /*period=*/5'000, /*phase=*/0, [&] { fires.fetch_add(1); });
  {
    runtime::TimerHandle dropped =
        be.exec().every(na, 5'000, 0, [&] { cancelled_fires.fetch_add(1); });
    // RAII-cancelled before the workers ever start.
  }
  be.run_for(60'000);
  be.stop();

  // ~12 periods in 60ms; generous bounds absorb scheduler noise in CI.
  EXPECT_GE(fires.load(), 3);
  EXPECT_LE(fires.load(), 40);
  EXPECT_EQ(cancelled_fires.load(), 0);
  keep.cancel();  // cancel after stop must be safe
}

TEST(ThreadRuntime, NowAdvancesMonotonically) {
  ThreadBackend be(ThreadBackend::Options{1, 1});
  const std::uint64_t t0 = be.exec().now_us();
  be.run_for(10'000);
  const std::uint64_t t1 = be.exec().now_us();
  be.stop();
  EXPECT_GE(t1, t0 + 9'000);
}

/// Cross-runtime smoke: identical cluster + workload on both backends; the
/// exactness checker (order-independent) must pass on each, proving the
/// protocol layer truly runs unchanged on either runtime.
TEST(CrossRuntime, SameClusterPassesExactnessOnBothBackends) {
  for (const auto kind : {runtime::Kind::kSim, runtime::Kind::kThreads}) {
    workload::ExperimentConfig cfg;
    cfg.runtime = kind;
    cfg.system = proto::System::kParis;
    cfg.num_dcs = 2;
    cfg.num_partitions = 4;
    cfg.replication = 2;
    cfg.threads_per_process = 1;
    cfg.workload.ops_per_tx = 8;
    cfg.workload.writes_per_tx = 2;
    cfg.workload.keys_per_partition = 100;
    cfg.warmup_us = 50'000;
    cfg.measure_us = 150'000;
    cfg.aws_latency = false;
    cfg.codec = sim::CodecMode::kBytes;
    cfg.check_consistency = true;
    cfg.seed = 11;

    const auto res = workload::run_experiment(cfg);
    SCOPED_TRACE(runtime::kind_name(kind));
    EXPECT_GT(res.committed, 0u);
    for (const auto& v : res.violations) ADD_FAILURE() << v;
  }
}

TEST(CrossRuntime, BprPassesExactnessOnThreads) {
  workload::ExperimentConfig cfg;
  cfg.runtime = runtime::Kind::kThreads;
  cfg.system = proto::System::kBpr;
  cfg.num_dcs = 2;
  cfg.num_partitions = 4;
  cfg.replication = 2;
  cfg.threads_per_process = 1;
  cfg.workload.ops_per_tx = 8;
  cfg.workload.writes_per_tx = 2;
  cfg.workload.keys_per_partition = 100;
  cfg.warmup_us = 50'000;
  cfg.measure_us = 150'000;
  cfg.check_consistency = true;
  cfg.seed = 12;

  const auto res = workload::run_experiment(cfg);
  EXPECT_GT(res.committed, 0u);
  for (const auto& v : res.violations) ADD_FAILURE() << v;
}

}  // namespace
}  // namespace paris::test
