// Simulator tests: deterministic event ordering, timers, the network's
// FIFO/latency/partition behavior and the per-node CPU service queue.

#include <gtest/gtest.h>

#include <vector>

#include "sim/network.h"
#include "sim/simulation.h"

namespace paris::sim {
namespace {

TEST(Simulation, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.at(30, [&] { order.push_back(3); });
  sim.at(10, [&] { order.push_back(1); });
  sim.at(20, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulation, TiesBreakByInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.at(5, [&order, i] { order.push_back(i); });
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulation, RunUntilAdvancesTimeEvenWithoutEvents) {
  Simulation sim;
  sim.run_until(1000);
  EXPECT_EQ(sim.now(), 1000u);
}

TEST(Simulation, RunUntilLeavesLaterEventsQueued) {
  Simulation sim;
  int fired = 0;
  sim.at(100, [&] { ++fired; });
  sim.at(200, [&] { ++fired; });
  sim.run_until(150);
  EXPECT_EQ(fired, 1);
  sim.run_until(250);
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, PeriodicFiresAndCancels) {
  Simulation sim;
  int count = 0;
  {
    auto h = sim.every(10, 0, [&] { ++count; });
    sim.run_until(55);
    EXPECT_EQ(count, 6);  // t=0,10,20,30,40,50
  }                       // handle destroyed -> cancelled
  sim.run_until(200);
  EXPECT_EQ(count, 6);
}

TEST(Simulation, EventsDuringEventsKeepOrdering) {
  Simulation sim;
  std::vector<int> order;
  sim.at(10, [&] {
    order.push_back(1);
    sim.after(0, [&] { order.push_back(2); });
    sim.after(5, [&] { order.push_back(3); });
  });
  sim.at(12, [&] { order.push_back(4); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 4, 3}));
}

class Recorder : public Actor {
 public:
  struct Rx {
    NodeId from;
    wire::MsgType type;
    SimTime at;
    Timestamp payload;
  };
  explicit Recorder(Simulation& sim) : sim_(sim) {}
  void on_message(NodeId from, const wire::Message& m) override {
    Timestamp p;
    if (m.type() == wire::MsgType::kHeartbeat)
      p = static_cast<const wire::Heartbeat&>(m).t;
    got.push_back(Rx{from, m.type(), sim_.now(), p});
  }
  std::vector<Rx> got;

 private:
  Simulation& sim_;
};

wire::MessagePtr heartbeat(std::uint64_t seq) {
  auto h = wire::make_message<wire::Heartbeat>();
  h->partition = 0;
  h->t = Timestamp{seq};
  return h;
}

TEST(Network, DeliversWithLatencyAndDecodesBytes) {
  Simulation sim;
  Network net(sim, LatencyModel::uniform(2, 10'000, 100), CodecMode::kBytes);
  Recorder a(sim), b(sim);
  const NodeId na = net.add_node(&a, 0);
  const NodeId nb = net.add_node(&b, 1);
  net.send(na, nb, heartbeat(7));
  sim.run_all();
  ASSERT_EQ(b.got.size(), 1u);
  EXPECT_EQ(b.got[0].from, na);
  EXPECT_EQ(b.got[0].payload.raw, 7u);
  // 10ms +-5% jitter
  EXPECT_GE(b.got[0].at, 9'500u);
  EXPECT_LE(b.got[0].at, 10'500u);
}

TEST(Network, FifoPerChannelDespiteJitter) {
  Simulation sim(99);
  auto lat = LatencyModel::uniform(2, 10'000, 100);
  lat.set_jitter(0.5);  // aggressive jitter to provoke reordering attempts
  Network net(sim, lat, CodecMode::kSizeOnly);
  Recorder a(sim), b(sim);
  const NodeId na = net.add_node(&a, 0);
  const NodeId nb = net.add_node(&b, 1);
  for (std::uint64_t i = 0; i < 200; ++i) {
    sim.at(i * 10, [&net, na, nb, i] { net.send(na, nb, heartbeat(i)); });
  }
  sim.run_all();
  ASSERT_EQ(b.got.size(), 200u);
  for (std::uint64_t i = 0; i < 200; ++i)
    EXPECT_EQ(b.got[i].payload.raw, i) << "FIFO violated at " << i;
}

TEST(Network, ColocatedPairUsesLoopback) {
  Simulation sim;
  Network net(sim, LatencyModel::uniform(2, 10'000, 500), CodecMode::kSizeOnly);
  Recorder a(sim), b(sim);
  const NodeId na = net.add_node(&a, 0);
  const NodeId nb = net.add_node(&b, 0);
  net.set_colocated(na, nb);
  net.send(na, nb, heartbeat(1));
  sim.run_all();
  ASSERT_EQ(b.got.size(), 1u);
  EXPECT_LE(b.got[0].at, 30u);  // loopback ~20µs, not 500µs intra-DC
}

TEST(Network, ServiceQueueSerializesProcessing) {
  Simulation sim;
  Network net(sim, LatencyModel::uniform(1, 0, 100), CodecMode::kSizeOnly);
  Recorder a(sim), b(sim);
  const NodeId na = net.add_node(&a, 0);
  // Every message takes 50µs of CPU at b.
  const NodeId nb = net.add_node(&b, 0, [](const wire::Message&) { return SimTime{50}; });
  for (int i = 0; i < 4; ++i) net.send(na, nb, heartbeat(i));
  sim.run_all();
  ASSERT_EQ(b.got.size(), 4u);
  // All arrive ~100µs, then process serially: 150, 200, 250, 300.
  for (int i = 1; i < 4; ++i)
    EXPECT_EQ(b.got[i].at - b.got[i - 1].at, 50u) << "serial CPU expected";
  EXPECT_EQ(net.counters(nb).cpu_busy_us, 200u);
}

TEST(Network, ChargeCpuDelaysSubsequentMessages) {
  Simulation sim;
  Network net(sim, LatencyModel::uniform(1, 0, 100), CodecMode::kSizeOnly);
  Recorder a(sim), b(sim);
  const NodeId na = net.add_node(&a, 0);
  const NodeId nb = net.add_node(&b, 0, [](const wire::Message&) { return SimTime{10}; });
  sim.at(0, [&] { net.charge_cpu(nb, 1'000); });
  net.send(na, nb, heartbeat(1));
  sim.run_all();
  ASSERT_EQ(b.got.size(), 1u);
  EXPECT_GE(b.got[0].at, 1'010u);
}

TEST(Network, PartitionBuffersAndHealsInOrder) {
  Simulation sim;
  Network net(sim, LatencyModel::uniform(2, 5'000, 100), CodecMode::kSizeOnly);
  Recorder a(sim), b(sim);
  const NodeId na = net.add_node(&a, 0);
  const NodeId nb = net.add_node(&b, 1);

  net.partition_dcs(0, 1);
  EXPECT_TRUE(net.dcs_partitioned(0, 1));
  for (std::uint64_t i = 0; i < 5; ++i) net.send(na, nb, heartbeat(i));
  sim.run_until(100'000);
  EXPECT_TRUE(b.got.empty()) << "messages must stall across a partition";

  net.heal_dcs(0, 1);
  sim.run_until(200'000);
  ASSERT_EQ(b.got.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(b.got[i].payload.raw, i);
  EXPECT_GE(b.got[0].at, 100'000u) << "delivery only after heal";
}

TEST(Network, IsolateDcBlocksAllPairsAndHealAllRestores) {
  Simulation sim;
  Network net(sim, LatencyModel::uniform(3, 5'000, 100), CodecMode::kSizeOnly);
  Recorder a(sim), b(sim), c(sim);
  const NodeId na = net.add_node(&a, 0);
  const NodeId nb = net.add_node(&b, 1);
  const NodeId nc = net.add_node(&c, 2);
  net.isolate_dc(0);
  EXPECT_TRUE(net.dcs_partitioned(0, 1));
  EXPECT_TRUE(net.dcs_partitioned(0, 2));
  EXPECT_FALSE(net.dcs_partitioned(1, 2));
  net.send(na, nb, heartbeat(1));
  net.send(nc, na, heartbeat(2));
  net.send(nb, nc, heartbeat(3));
  sim.run_until(50'000);
  EXPECT_TRUE(b.got.empty());
  EXPECT_TRUE(a.got.empty());
  EXPECT_EQ(c.got.size(), 1u) << "1<->2 unaffected";
  net.heal_all();
  sim.run_until(100'000);
  EXPECT_EQ(b.got.size(), 1u);
  EXPECT_EQ(a.got.size(), 1u);
}

TEST(Network, CountersTrackTraffic) {
  Simulation sim;
  Network net(sim, LatencyModel::uniform(2, 1'000, 100), CodecMode::kBytes);
  Recorder a(sim), b(sim);
  const NodeId na = net.add_node(&a, 0);
  const NodeId nb = net.add_node(&b, 1);
  net.send(na, nb, heartbeat(300));
  sim.run_all();
  EXPECT_EQ(net.counters(na).msgs_sent, 1u);
  EXPECT_EQ(net.counters(nb).msgs_recv, 1u);
  EXPECT_GT(net.counters(na).bytes_sent, 1u);
  EXPECT_EQ(net.counters(na).bytes_sent, net.counters(nb).bytes_recv);
  EXPECT_EQ(net.total_bytes_sent(), net.counters(na).bytes_sent);
}

TEST(Network, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    Simulation sim(seed);
    auto lat = LatencyModel::uniform(2, 10'000, 100);
    lat.set_jitter(0.3);
    Network net(sim, lat, CodecMode::kSizeOnly);
    Recorder a(sim), b(sim);
    const NodeId na = net.add_node(&a, 0);
    const NodeId nb = net.add_node(&b, 1);
    for (std::uint64_t i = 0; i < 50; ++i)
      sim.at(i * 100, [&net, na, nb, i] { net.send(na, nb, heartbeat(i)); });
    sim.run_all();
    std::vector<SimTime> times;
    for (const auto& rx : b.got) times.push_back(rx.at);
    return times;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(LatencyModel, AwsMatrixSymmetricAndPositive) {
  const auto m = LatencyModel::aws(10);
  for (DcId a = 0; a < 10; ++a) {
    for (DcId b = 0; b < 10; ++b) {
      if (a == b) continue;
      EXPECT_EQ(m.mean_one_way_us(a, b), m.mean_one_way_us(b, a));
      EXPECT_GT(m.mean_one_way_us(a, b), 5'000u) << "inter-region >= 5ms one-way";
    }
  }
  // Virginia <-> Ohio is the closest pair in the table (12ms RTT).
  EXPECT_EQ(m.mean_one_way_us(0, 9), 6'000u);
}

}  // namespace
}  // namespace paris::sim
