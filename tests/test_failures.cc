// Fault-tolerance and availability scenarios (§III-C): behavior during and
// after inter-DC network partitions, for both systems.

#include <gtest/gtest.h>

#include "test_util.h"
#include "verify/history.h"

namespace paris::test {
namespace {

TEST(Failures, ParisLocalOpsAvailableWhileAnotherDcIsolated) {
  Deployment dep(small_config(System::kParis, 3, 6, 2, /*seed=*/31));
  dep.start();
  settle(dep);

  net_of(dep).isolate_dc(2);

  auto& c = dep.add_client(0, dep.topo().partitions_at(0)[0]);
  SyncClient sc(sim_of(dep), c);
  // Local-DC transactions keep completing with low latency.
  for (int i = 0; i < 5; ++i) {
    const sim::SimTime t0 = sim_of(dep).now();
    sc.start();
    sc.read({dep.topo().make_key(dep.topo().partitions_at(0)[0], i)});
    sc.write(dep.topo().make_key(dep.topo().partitions_at(0)[1], i), "during-partition");
    sc.commit();
    EXPECT_LT(sim_of(dep).now() - t0, 20'000u) << "local tx slowed by remote partition";
  }
  net_of(dep).heal_all();
}

TEST(Failures, WritesDuringPartitionConvergeAfterHeal) {
  Deployment dep(small_config(System::kParis, 3, 6, 2, /*seed=*/37));
  dep.start();
  settle(dep);
  const auto& topo = dep.topo();
  const PartitionId p = 2;  // replicas {2, 0}
  ASSERT_EQ(topo.replicas(p)[0], 2u);
  const Key k = topo.make_key(p, 4);

  net_of(dep).isolate_dc(2);
  auto& wc = dep.add_client(2, p);
  SyncClient w(sim_of(dep), wc);
  w.put({{k, "island-write"}});
  dep.run_for(200'000);

  // The peer replica at DC0 cannot have it yet.
  EXPECT_EQ(dep.server(0, p).kvstore().latest(k), nullptr);

  net_of(dep).heal_all();
  settle(dep, 500'000);
  const auto* v = dep.server(0, p).kvstore().latest(k);
  ASSERT_NE(v, nullptr) << "replication must resume after heal";
  EXPECT_EQ(v->v, "island-write");

  // And it becomes readable everywhere through the resumed UST.
  auto& rc = dep.add_client(1, topo.partitions_at(1)[0]);
  SyncClient r(sim_of(dep), rc);
  r.start();
  EXPECT_EQ(r.read1(k).v, "island-write");
  r.commit();
}

TEST(Failures, ParisRemoteReadStallsOnlyIfAllReplicasUnreachable) {
  // 4 DCs, R=2: DC3 does not replicate partition 0 (replicas {0,1}). If
  // DC3 is cut from DC1 only, it can still read partition 0 via DC0.
  Deployment dep(small_config(System::kParis, 4, 4, 2, /*seed=*/41));
  dep.start();
  settle(dep);
  const auto& topo = dep.topo();
  ASSERT_FALSE(topo.dc_replicates(3, 0));

  net_of(dep).partition_dcs(3, 2);

  auto& c = dep.add_client(3, topo.partitions_at(3)[0]);
  SyncClient sc(sim_of(dep), c);
  // The preferred target for (DC3, partition p) is fixed; this test only
  // requires that a partition exists whose preferred replica is NOT behind
  // the partition (if it were, the stall is the documented unavailability
  // case of §III-C).
  PartitionId readable = topo.num_partitions();
  for (PartitionId p = 0; p < topo.num_partitions(); ++p) {
    if (!topo.dc_replicates(3, p) && topo.target_dc(3, p) != 2) {
      readable = p;
      break;
    }
  }
  ASSERT_LT(readable, topo.num_partitions());
  const sim::SimTime t0 = sim_of(dep).now();
  sc.start();
  sc.read({topo.make_key(readable, 1)});
  sc.commit();
  EXPECT_LT(sim_of(dep).now() - t0, 300'000u);
  net_of(dep).heal_all();
}

TEST(Failures, ParisRemoteReadCompletesAfterHeal) {
  Deployment dep(small_config(System::kParis, 4, 4, 2, /*seed=*/43));
  dep.start();
  settle(dep);
  const auto& topo = dep.topo();

  // Cut DC3 off entirely; a remote read from DC3 stalls, then completes
  // once healed (messages are queued, not lost — TCP semantics).
  net_of(dep).isolate_dc(3);
  auto& c = dep.add_client(3, topo.partitions_at(3)[0]);

  PartitionId remote_p = topo.num_partitions();
  for (PartitionId p = 0; p < topo.num_partitions(); ++p)
    if (!topo.dc_replicates(3, p)) {
      remote_p = p;
      break;
    }
  ASSERT_LT(remote_p, topo.num_partitions());

  bool read_done = false;
  c.start_tx([&](TxId, Timestamp) {
    c.read({topo.make_key(remote_p, 1)}, [&](std::vector<Item>) { read_done = true; });
  });
  dep.run_for(400'000);
  EXPECT_FALSE(read_done) << "remote read must stall while isolated";

  net_of(dep).heal_all();
  dep.run_for(400'000);
  EXPECT_TRUE(read_done) << "remote read must complete after heal";
}

TEST(Failures, BprBlockedReadsSurvivePartitionAndDrainAfterHeal) {
  Deployment dep(small_config(System::kBpr, 3, 6, 2, /*seed=*/47));
  dep.start();
  settle(dep);
  const auto& topo = dep.topo();
  const PartitionId p = 0;  // replicas {0, 1}

  // Cut DC0 from DC1: DC0's replica of p stops receiving heartbeats from
  // DC1, so its min(VV) freezes and fresh-snapshot reads block indefinitely.
  net_of(dep).partition_dcs(0, 1);
  dep.run_for(50'000);

  auto& c = dep.add_client(0, p);
  bool done = false;
  c.start_tx([&](TxId, Timestamp) {
    c.read({topo.make_key(p, 3)}, [&](std::vector<Item>) { done = true; });
  });
  dep.run_for(500'000);
  EXPECT_FALSE(done) << "BPR read must block while the peer is unreachable";

  net_of(dep).heal_dcs(0, 1);
  dep.run_for(300'000);
  EXPECT_TRUE(done) << "blocked read must drain once heartbeats resume";
}

TEST(Failures, ConsistencyHoldsAcrossPartitionHealCycles) {
  // Run traffic through partition/heal cycles and verify exactness offline.
  verify::HistoryRecorder history;
  Deployment dep(small_config(System::kParis, 3, 6, 2, /*seed=*/53), &history);
  dep.start();
  settle(dep);
  const auto& topo = dep.topo();

  auto& c0 = dep.add_client(0, topo.partitions_at(0)[0]);
  auto& c1 = dep.add_client(1, topo.partitions_at(1)[0]);
  SyncClient a(sim_of(dep), c0), b(sim_of(dep), c1);

  // During the partition, clients only touch partitions local to their DC:
  // ops targeting a replica behind the partition would (correctly) stall
  // until heal, which is exercised elsewhere.
  const auto& locals0 = topo.partitions_at(0);
  const auto& locals1 = topo.partitions_at(1);
  for (int cycle = 0; cycle < 3; ++cycle) {
    net_of(dep).partition_dcs(0, 2);
    for (int i = 0; i < 5; ++i) {
      a.put({{topo.make_key(locals0[i % locals0.size()], i), "a" + std::to_string(cycle)}});
      b.start();
      b.read({topo.make_key(locals1[i % locals1.size()], i)});
      b.commit();
    }
    net_of(dep).heal_dcs(0, 2);
    settle(dep, 200'000);
  }
  const auto violations = history.check();
  for (const auto& v : violations) ADD_FAILURE() << v;
  EXPECT_GT(history.num_slices(), 0u);
}

}  // namespace
}  // namespace paris::test
