// Garbage-collection protocol tests: version chains stay bounded under
// churn, long-running transactions protect their snapshot, and GC never
// breaks snapshot reads.

#include <gtest/gtest.h>

#include "proto/paris_server.h"
#include "test_util.h"

namespace paris::test {
namespace {

TEST(Gc, ChainsStayBoundedUnderChurn) {
  auto cfg = small_config(System::kParis, 3, 6, 2, /*seed=*/61);
  cfg.protocol.gc_interval_us = 20'000;
  Deployment dep(cfg);
  dep.start();
  settle(dep);
  const auto& topo = dep.topo();
  const PartitionId p = 0;
  const Key k = topo.make_key(p, 1);

  auto& c = dep.add_client(topo.replicas(p)[0], p);
  SyncClient sc(sim_of(dep), c);
  for (int i = 0; i < 200; ++i) {
    sc.put({{k, "gen" + std::to_string(i)}});
    dep.run_for(3'000);
  }
  settle(dep, 800'000);

  for (DcId d : topo.replicas(p)) {
    const auto len = dep.server(d, p).kvstore().chain_length(k);
    EXPECT_GE(len, 1u);
    EXPECT_LT(len, 20u) << "GC failed to prune churned versions at dc=" << d;
    EXPECT_EQ(dep.server(d, p).kvstore().latest(k)->v, "gen199");
  }
  EXPECT_GT(dep.server(topo.replicas(p)[0], p).kvstore().stats().gc_removed, 50u);
}

TEST(Gc, WatermarkNeverExceedsUst) {
  auto cfg = small_config(System::kParis, 3, 6, 2, /*seed=*/67);
  cfg.protocol.gc_interval_us = 20'000;
  Deployment dep(cfg);
  dep.start();
  auto& c = dep.add_client(0, dep.topo().partitions_at(0)[0]);
  SyncClient sc(sim_of(dep), c);
  for (int i = 0; i < 30; ++i) {
    sc.put({{dep.topo().make_key(i % 6, i), "v"}});
    dep.run_for(20'000);
    for (const auto& s : dep.servers()) {
      auto* ps = dynamic_cast<proto::ParisServer*>(s.get());
      ASSERT_NE(ps, nullptr);
      EXPECT_LE(ps->gc_watermark_value(), ps->ust());
    }
  }
}

TEST(Gc, LongRunningTransactionProtectsItsSnapshot) {
  auto cfg = small_config(System::kParis, 3, 6, 2, /*seed=*/71);
  cfg.protocol.gc_interval_us = 20'000;
  Deployment dep(cfg);
  dep.start();
  settle(dep);
  const auto& topo = dep.topo();
  const PartitionId p = 0;
  const Key hot = topo.make_key(p, 2);    // churned during the long tx
  const Key probe = topo.make_key(p, 3);  // written once, then churned

  auto& wc = dep.add_client(topo.replicas(p)[0], p);
  SyncClient w(sim_of(dep), wc);
  w.put({{probe, "old-probe"}});
  settle(dep);

  // Reader opens a transaction and holds it while the writer churns.
  auto& rc = dep.add_client(topo.replicas(p)[1], p);
  SyncClient r(sim_of(dep), rc);
  const Timestamp snap = r.start();
  ASSERT_FALSE(snap.is_zero());

  for (int i = 0; i < 100; ++i) {
    w.put({{hot, "churn"}, {probe, "new-probe-" + std::to_string(i)}});
    dep.run_for(5'000);
  }
  settle(dep, 400'000);

  // The long-running tx reads probe LATE: the pre-churn version (within its
  // snapshot) must have survived GC because the oldest-active aggregation
  // holds the watermark below snap.
  const Item got = r.read1(probe);
  EXPECT_EQ(got.v, "old-probe") << "GC pruned a version a live snapshot needed";
  EXPECT_LE(got.ut, snap);
  r.commit();

  // With the transaction finished, GC may advance and trim the chain.
  settle(dep, 600'000);
  for (DcId d : topo.replicas(p)) {
    EXPECT_LT(dep.server(d, p).kvstore().chain_length(probe), 10u);
  }
}

TEST(Gc, BprRetentionWindowPrunesOldVersions) {
  auto cfg = small_config(System::kBpr, 3, 6, 2, /*seed=*/73);
  cfg.protocol.gc_interval_us = 20'000;
  cfg.protocol.bpr_gc_retention_us = 100'000;
  Deployment dep(cfg);
  dep.start();
  settle(dep);
  const auto& topo = dep.topo();
  const PartitionId p = 0;
  const Key k = topo.make_key(p, 4);

  auto& c = dep.add_client(topo.replicas(p)[0], p);
  SyncClient sc(sim_of(dep), c);
  for (int i = 0; i < 100; ++i) {
    sc.put({{k, "g" + std::to_string(i)}});
    dep.run_for(4'000);
  }
  settle(dep, 500'000);
  for (DcId d : topo.replicas(p)) {
    EXPECT_LT(dep.server(d, p).kvstore().chain_length(k), 40u);
  }
}

}  // namespace
}  // namespace paris::test
