// Endpoint/host-list parsing tests: the cross-host addressing API that
// replaced base_port + rank arithmetic (DESIGN §10). Covers IPv4 literals,
// hostnames, bad ports, duplicate endpoints, count mismatch vs --processes,
// and the back-compat loopback expansion.

#include <gtest/gtest.h>

#include "runtime/endpoint.h"

namespace paris::runtime {
namespace {

TEST(Endpoint, ParsesIpv4Literal) {
  Endpoint ep;
  std::string err;
  ASSERT_TRUE(parse_endpoint("127.0.0.2:7421", &ep, &err)) << err;
  EXPECT_EQ(ep.host, "127.0.0.2");
  EXPECT_EQ(ep.port, 7421);
  EXPECT_EQ(ep.str(), "127.0.0.2:7421");
}

TEST(Endpoint, ParsesHostname) {
  Endpoint ep;
  std::string err;
  ASSERT_TRUE(parse_endpoint("dc-east.example.com:9000", &ep, &err)) << err;
  EXPECT_EQ(ep.host, "dc-east.example.com");
  EXPECT_EQ(ep.port, 9000);
}

TEST(Endpoint, RejectsJunk) {
  Endpoint ep;
  std::string err;
  EXPECT_FALSE(parse_endpoint("nohostport", &ep, &err));
  EXPECT_NE(err.find("expected host:port"), std::string::npos);
  EXPECT_FALSE(parse_endpoint(":7421", &ep, &err));
  EXPECT_FALSE(parse_endpoint("host:", &ep, &err));
  EXPECT_FALSE(parse_endpoint("host:abc", &ep, &err));
  EXPECT_FALSE(parse_endpoint("host:0", &ep, &err));
  EXPECT_FALSE(parse_endpoint("host:65536", &ep, &err));
  EXPECT_NE(err.find("out of range"), std::string::npos);
  EXPECT_FALSE(parse_endpoint("::1:7421", &ep, &err));
  EXPECT_NE(err.find("IPv6"), std::string::npos);
  EXPECT_FALSE(parse_endpoint("bad host:7421", &ep, &err));
}

TEST(Endpoint, ParsesHostList) {
  std::vector<Endpoint> hosts;
  std::string err;
  ASSERT_TRUE(parse_host_list("127.0.0.1:7421,127.0.0.2:7421,box3:8000", &hosts, &err)) << err;
  ASSERT_EQ(hosts.size(), 3u);
  EXPECT_EQ(hosts[0].str(), "127.0.0.1:7421");
  EXPECT_EQ(hosts[1].str(), "127.0.0.2:7421");
  EXPECT_EQ(hosts[2].str(), "box3:8000");
  EXPECT_EQ(format_host_list(hosts), "127.0.0.1:7421,127.0.0.2:7421,box3:8000");
}

TEST(Endpoint, HostListRejectsDuplicates) {
  std::vector<Endpoint> hosts;
  std::string err;
  EXPECT_FALSE(parse_host_list("h:1,h:1", &hosts, &err));
  EXPECT_NE(err.find("duplicate endpoint"), std::string::npos);
  // Same host, different ports is fine (two ranks on one box).
  ASSERT_TRUE(parse_host_list("h:1,h:2", &hosts, &err)) << err;
}

TEST(Endpoint, HostListRejectsEmptyEntries) {
  std::vector<Endpoint> hosts;
  std::string err;
  EXPECT_FALSE(parse_host_list("", &hosts, &err));
  EXPECT_FALSE(parse_host_list("h:1,,h:2", &hosts, &err));
  EXPECT_FALSE(parse_host_list("h:1,", &hosts, &err));
}

TEST(Endpoint, ValidateChecksCountAgainstProcesses) {
  std::vector<Endpoint> hosts = {{"a", 1}, {"b", 2}};
  std::string err;
  EXPECT_TRUE(validate_host_list(hosts, 2, &err)) << err;
  EXPECT_FALSE(validate_host_list(hosts, 3, &err));
  EXPECT_NE(err.find("2 endpoints"), std::string::npos);
  EXPECT_NE(err.find("3 processes"), std::string::npos);
}

TEST(Endpoint, LoopbackExpansionMatchesLegacyArithmetic) {
  const auto hosts = loopback_host_list(3, 7421);
  ASSERT_EQ(hosts.size(), 3u);
  for (std::uint32_t r = 0; r < 3; ++r) {
    EXPECT_EQ(hosts[r].host, "127.0.0.1");
    EXPECT_EQ(hosts[r].port, 7421 + r);
  }
  std::string err;
  EXPECT_TRUE(validate_host_list(hosts, 3, &err)) << err;
}

TEST(Endpoint, ResolvesIpv4Literal) {
  sockaddr_in sa;
  std::string err;
  ASSERT_TRUE(resolve_ipv4({"127.0.0.2", 7421}, &sa, &err)) << err;
  EXPECT_EQ(ntohs(sa.sin_port), 7421);
  EXPECT_EQ(ntohl(sa.sin_addr.s_addr), 0x7f000002u);
  EXPECT_FALSE(resolve_ipv4({"no.such.host.invalid", 1}, &sa, &err));
  EXPECT_NE(err.find("cannot resolve"), std::string::npos);
}

}  // namespace
}  // namespace paris::runtime
