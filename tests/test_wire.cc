// Wire codec tests: varint edge cases, per-message roundtrips, wire_size
// accuracy, and a randomized fuzz roundtrip across all message types.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/rng.h"
#include "wire/messages.h"

namespace paris::wire {
namespace {

TEST(Varint, SizeMatchesEncoding) {
  std::vector<std::uint8_t> buf;
  for (std::uint64_t v : {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                          0xffffffffull, ~0ull}) {
    buf.clear();
    Encoder e(buf);
    e.put_varint(v);
    EXPECT_EQ(buf.size(), varint_size(v)) << v;
    Decoder d(buf);
    EXPECT_EQ(d.get_varint(), v);
    EXPECT_TRUE(d.done());
  }
}

TEST(Varint, MaxValueRoundtrips) {
  std::vector<std::uint8_t> buf;
  Encoder e(buf);
  e.put_varint(~0ull);
  EXPECT_EQ(buf.size(), 10u);
  Decoder d(buf);
  EXPECT_EQ(d.get_varint(), ~0ull);
}

TEST(Bytes, RoundtripIncludingEmbeddedNul) {
  std::vector<std::uint8_t> buf;
  Encoder e(buf);
  const std::string s("a\0b\xff", 4);
  e.put_bytes(s);
  e.put_bytes("");
  Decoder d(buf);
  EXPECT_EQ(d.get_bytes(), s);
  EXPECT_EQ(d.get_bytes(), "");
  EXPECT_TRUE(d.done());
}

template <class M>
void roundtrip_expect(const M& msg) {
  std::vector<std::uint8_t> buf;
  encode_message(msg, buf);
  EXPECT_EQ(buf.size(), 1 + msg.wire_size()) << msg_type_name(M::kType);
  Decoder d(buf);
  auto decoded = decode_message(d);
  ASSERT_TRUE(d.done());
  ASSERT_EQ(decoded->type(), M::kType);
  // Re-encode and compare bytes: cheap deep-equality across all fields.
  std::vector<std::uint8_t> buf2;
  encode_message(*decoded, buf2);
  EXPECT_EQ(buf, buf2) << msg_type_name(M::kType);
}

TEST(Messages, ClientStartRoundtrip) {
  ClientStartReq req;
  req.ust_c = Timestamp::from_parts(123456, 3);
  roundtrip_expect(req);

  ClientStartResp resp;
  resp.tx = TxId::make(17, 12345);
  resp.snapshot = Timestamp::from_parts(99, 1);
  roundtrip_expect(resp);
}

TEST(Messages, ReadMessagesRoundtrip) {
  ClientReadReq r;
  r.tx = TxId::make(3, 9);
  r.keys = {1, 99999999999ull, 42};
  roundtrip_expect(r);

  ReadSliceReq s;
  s.tx = r.tx;
  s.snapshot = Timestamp::from_parts(5, 0);
  s.keys = {7};
  roundtrip_expect(s);

  ReadSliceResp resp;
  Item it;
  it.k = 7;
  it.v = "value-bytes";
  it.ut = Timestamp::from_parts(88, 2);
  it.tx = TxId::make(1, 2);
  it.sr = 4;
  resp.tx = r.tx;
  resp.items = {it, Item{}};
  roundtrip_expect(resp);

  ClientReadResp cr;
  cr.tx = r.tx;
  cr.items = {it};
  roundtrip_expect(cr);
}

TEST(Messages, CommitPathRoundtrip) {
  ClientCommitReq c;
  c.tx = TxId::make(2, 2);
  c.hwt = Timestamp::from_parts(1000, 9);
  c.writes = {{1, "a"}, {2, "bb"}};
  roundtrip_expect(c);

  PrepareReq p;
  p.tx = c.tx;
  p.partition = 12;
  p.snapshot = Timestamp::from_parts(900, 0);
  p.ht = Timestamp::from_parts(1000, 9);
  p.writes = {{1, "a"}};
  roundtrip_expect(p);

  PrepareResp pr;
  pr.tx = c.tx;
  pr.partition = 12;
  pr.pt = Timestamp::from_parts(1001, 0);
  roundtrip_expect(pr);

  Commit2pc c2;
  c2.tx = c.tx;
  c2.ct = Timestamp::from_parts(1002, 0);
  roundtrip_expect(c2);

  ClientCommitResp ccr;
  ccr.tx = c.tx;
  ccr.ct = c2.ct;
  roundtrip_expect(ccr);

  TxEnd te;
  te.tx = c.tx;
  roundtrip_expect(te);
}

TEST(Messages, ReplicationAndGossipRoundtrip) {
  ReplicateBatch b;
  b.partition = 3;
  b.upto = Timestamp::from_parts(777, 7);
  ReplicateGroup g;
  g.ct = Timestamp::from_parts(700, 0);
  g.txs.push_back(ReplicateTxn{TxId::make(9, 9), {{5, "x"}, {6, "y"}}});
  g.txs.push_back(ReplicateTxn{TxId::make(9, 10), {}});
  b.groups = {g, ReplicateGroup{Timestamp::from_parts(750, 0), {}}};
  roundtrip_expect(b);

  Heartbeat hb;
  hb.partition = 44;
  hb.t = Timestamp::from_parts(123, 0);
  roundtrip_expect(hb);

  GossipUp up;
  up.min_vv = Timestamp::from_parts(10, 1);
  up.oldest_active = Timestamp::from_parts(9, 0);
  roundtrip_expect(up);

  GossipRoot root;
  root.dc = 3;
  root.gst = Timestamp::from_parts(55, 5);
  root.oldest_active = Timestamp::from_parts(50, 0);
  roundtrip_expect(root);

  UstDown down;
  down.ust = Timestamp::from_parts(60, 0);
  down.gc_watermark = Timestamp::from_parts(58, 0);
  roundtrip_expect(down);
}

TEST(Messages, TypeNamesAreDistinct) {
  std::set<std::string> names;
#define COLLECT_NAME(T) names.insert(msg_type_name(T::kType));
  PARIS_FOREACH_MESSAGE(COLLECT_NAME)
#undef COLLECT_NAME
  EXPECT_EQ(names.size(), 30u) << "every message type must have a unique name";
}

// Randomized fuzz: build messages with random field contents, roundtrip.
TEST(Messages, FuzzRoundtripReplicateBatch) {
  Rng rng(31337);
  for (int iter = 0; iter < 200; ++iter) {
    ReplicateBatch b;
    b.partition = static_cast<PartitionId>(rng.next_below(1000));
    b.upto = Timestamp{rng.next_u64() >> rng.next_below(32)};
    const auto ngroups = rng.next_below(5);
    for (std::uint64_t i = 0; i < ngroups; ++i) {
      ReplicateGroup g;
      g.ct = Timestamp{rng.next_u64() >> 8};
      const auto ntx = rng.next_below(4);
      for (std::uint64_t t = 0; t < ntx; ++t) {
        ReplicateTxn tx;
        tx.tx = TxId{rng.next_u64()};
        const auto nw = rng.next_below(6);
        for (std::uint64_t w = 0; w < nw; ++w) {
          std::string val(rng.next_below(32), '\0');
          for (auto& ch : val) ch = static_cast<char>(rng.next_below(256));
          tx.writes.push_back(WriteKV{rng.next_u64(), std::move(val)});
        }
        g.txs.push_back(std::move(tx));
      }
      b.groups.push_back(std::move(g));
    }
    roundtrip_expect(b);
  }
}

}  // namespace
}  // namespace paris::wire
