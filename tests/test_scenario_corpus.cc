// Corpus-replay suite: every committed tests/corpus/*.scenario file — each
// one a schedule that either found a real bug (minimized repro) or pins a
// representative generated cell — must replay checker-clean forever. The
// files are pinned at real-time scale; sanitizer builds stretch them through
// scenario::scale_time so instrumentation slowdown never reads as loss.
//
// Socket scenarios re-exec this binary as children, so it defines its own
// main() with the maybe_run_socket_child() hook (same pattern as
// test_recovery.cc). Port registry: this suite owns 7860+ (10 per socket
// scenario), disjoint from every other suite so `ctest -j` never collides.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/scenario.h"
#include "workload/experiment.h"
#include "workload/socket_runner.h"

namespace paris::test {
namespace {

namespace fs = std::filesystem;
using scenario::Scenario;

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr std::uint64_t kTimeScale = 5;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr std::uint64_t kTimeScale = 5;
#else
constexpr std::uint64_t kTimeScale = 1;
#endif
#else
constexpr std::uint64_t kTimeScale = 1;
#endif

constexpr std::uint16_t kCorpusBasePort = 7860;

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(PARIS_CORPUS_DIR)) {
    if (entry.path().extension() == ".scenario") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(ScenarioCorpus, EveryPinnedScheduleReplaysClean) {
  const std::vector<fs::path> files = corpus_files();
  // The acceptance floor: a thinned-out corpus is a silent loss of
  // regression coverage, so the suite fails rather than passing vacuously.
  ASSERT_GE(files.size(), 5u) << "corpus at " << PARIS_CORPUS_DIR << " lost files";

  int socket_idx = 0;
  for (const fs::path& path : files) {
    SCOPED_TRACE(path.filename().string());
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "unreadable corpus file";
    std::ostringstream text;
    text << in.rdbuf();

    Scenario s;
    ASSERT_TRUE(scenario::decode_scenario(text.str(), s))
        << "corpus file no longer decodes — codec/version skew";
    scenario::scale_time(s, kTimeScale);
    SCOPED_TRACE(scenario::describe(s));

    workload::ExperimentConfig cfg;
    scenario::apply_scenario(s, cfg);
    if (s.runtime == runtime::Kind::kSockets) {
      cfg.socket.base_port =
          static_cast<std::uint16_t>(kCorpusBasePort + 10 * socket_idx++);
    }
    const workload::ExperimentResult res = workload::run_experiment(cfg);

    for (const auto& v : res.violations) ADD_FAILURE() << v;
    EXPECT_GT(res.committed, 0u) << "replay starved the workload";
    if (s.has_kill()) {
      EXPECT_GE(res.respawns, 1u) << "kill schedule replayed without a respawn";
    }
  }
}

}  // namespace
}  // namespace paris::test

// Socket scenarios re-exec this binary as children; the hook must intercept
// them before gtest parses argv (it exits in the child).
int main(int argc, char** argv) {
  paris::workload::maybe_run_socket_child(argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
