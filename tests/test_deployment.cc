// Deployment builder tests: server placement, accessors, stats
// aggregation, codec modes and cross-run determinism of the full stack.

#include <gtest/gtest.h>

#include "test_util.h"

namespace paris::test {
namespace {

TEST(Deployment, OneServerPerReplicaPlacement) {
  Deployment dep(small_config(System::kParis, 5, 45, 2));
  EXPECT_EQ(dep.servers().size(), 90u);  // N * R
  for (DcId d = 0; d < 5; ++d) {
    for (PartitionId p : dep.topo().partitions_at(d)) {
      auto& s = dep.server(d, p);
      EXPECT_EQ(s.dc(), d);
      EXPECT_EQ(s.partition(), p);
      EXPECT_EQ(s.replica_idx(), dep.topo().replica_idx(d, p));
    }
  }
}

TEST(Deployment, TypedServerAccessors) {
  Deployment paris(small_config(System::kParis, 3, 6, 2));
  EXPECT_NE(paris.paris_server(0, 0), nullptr);
  EXPECT_EQ(paris.bpr_server(0, 0), nullptr);

  Deployment bpr(small_config(System::kBpr, 3, 6, 2));
  EXPECT_EQ(bpr.paris_server(0, 0), nullptr);
  EXPECT_NE(bpr.bpr_server(0, 0), nullptr);
}

TEST(Deployment, ClientRejectsNonLocalCoordinator) {
  Deployment dep(small_config(System::kParis, 4, 4, 2));
  dep.start();
  // Partition 1 is replicated at DCs {1, 2}; DC0 cannot host its client.
  ASSERT_FALSE(dep.topo().dc_replicates(0, 1));
  EXPECT_DEATH(dep.add_client(0, 1), "coordinator");
}

TEST(Deployment, StatsAggregateAcrossServers) {
  Deployment dep(small_config(System::kParis, 3, 6, 2));
  dep.start();
  settle(dep);
  auto& c = dep.add_client(0, dep.topo().partitions_at(0)[0]);
  SyncClient sc(sim_of(dep), c);
  for (int i = 0; i < 5; ++i) {
    sc.start();
    sc.read({dep.topo().make_key(i % 6, i)});
    sc.write(dep.topo().make_key(i % 6, i), "x");
    sc.commit();
  }
  const auto st = dep.total_server_stats();
  EXPECT_EQ(st.txs_coordinated, 5u);
  EXPECT_GE(st.slices_served, 5u);
  EXPECT_GE(st.cohort_prepares, 5u);
  EXPECT_GE(st.applied_writes, 5u);
  EXPECT_GT(st.heartbeats_sent + st.replicate_batches_sent, 0u);
  EXPECT_GT(st.gossip_msgs_sent, 0u);
}

TEST(Deployment, WholeStackDeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    Deployment dep(small_config(System::kParis, 3, 6, 2, seed));
    dep.start();
    auto& c = dep.add_client(0, dep.topo().partitions_at(0)[0]);
    SyncClient sc(sim_of(dep), c);
    std::vector<std::uint64_t> trace;
    for (int i = 0; i < 10; ++i) {
      trace.push_back(sc.put({{dep.topo().make_key(i % 6, i), "v"}}).raw);
      trace.push_back(sim_of(dep).events_executed());
    }
    return trace;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(Deployment, CodecModesProduceSameProtocolOutcome) {
  auto run = [](sim::CodecMode mode) {
    auto cfg = small_config(System::kParis, 3, 6, 2, /*seed=*/5);
    cfg.codec = mode;
    Deployment dep(cfg);
    dep.start();
    settle(dep);
    auto& c = dep.add_client(0, dep.topo().partitions_at(0)[0]);
    SyncClient sc(sim_of(dep), c);
    sc.put({{dep.topo().make_key(0, 1), "same"}});
    settle(dep);
    sc.start();
    const Item it = sc.read1(dep.topo().make_key(0, 1));
    sc.commit();
    return it.v;
  };
  EXPECT_EQ(run(sim::CodecMode::kBytes), run(sim::CodecMode::kSizeOnly));
}

TEST(Deployment, BytesAccountedOnTheWire) {
  Deployment dep(small_config(System::kParis, 3, 6, 2));
  dep.start();
  dep.run_for(100'000);
  EXPECT_GT(net_of(dep).total_bytes_sent(), 1000u) << "heartbeats + gossip traffic";
  // Each registered server saw traffic.
  std::uint64_t with_traffic = 0;
  for (const auto& s : dep.servers())
    if (net_of(dep).counters(s->node()).msgs_sent > 0) ++with_traffic;
  EXPECT_EQ(with_traffic, dep.servers().size());
}

TEST(Deployment, StartTwiceIsRejected) {
  Deployment dep(small_config(System::kParis, 2, 2, 1));
  dep.start();
  EXPECT_DEATH(dep.start(), "twice");
}

}  // namespace
}  // namespace paris::test
