// Scenario-engine end-to-end tests on the thread runtime: generated
// schedules run checker-clean for both systems (the engine's core promise —
// adversarial schedules must not produce consistency violations, only
// counter activity), and a dedicated channel-fuzzing run proves the
// mutate-then-drop machinery exercises every rejection path without
// crashing or corrupting the history. Socket scenarios live in
// test_scenario_corpus.cc (they need the re-exec main()).

#include <gtest/gtest.h>

#include <cstdint>

#include "scenario/scenario.h"
#include "workload/experiment.h"

namespace paris::test {
namespace {

using scenario::Scenario;
using scenario::ScenarioEvent;
using scenario::ScenarioOptions;

/// Sanitizer builds run several times slower; generated schedules stretch
/// their windows via the generator's own time_scale so instrumentation
/// queueing never reads as message loss.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr std::uint64_t kTimeScale = 5;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr std::uint64_t kTimeScale = 5;
#else
constexpr std::uint64_t kTimeScale = 1;
#endif
#else
constexpr std::uint64_t kTimeScale = 1;
#endif

void run_generated(proto::System sys, std::uint64_t seed) {
  ScenarioOptions opts;
  opts.system = sys;
  opts.runtime = runtime::Kind::kThreads;
  opts.time_scale = kTimeScale;
  const Scenario s = scenario::generate_scenario(seed, opts);
  SCOPED_TRACE(scenario::describe(s));

  workload::ExperimentConfig cfg;
  scenario::apply_scenario(s, cfg);
  const workload::ExperimentResult res = workload::run_experiment(cfg);

  for (const auto& v : res.violations) ADD_FAILURE() << v;
  EXPECT_GT(res.committed, 0u) << "scenario starved the workload entirely";

  // The schedule must actually have injected faults, not run a quiet cluster.
  bool has_fuzz = false, has_wan_loss = false;
  for (const auto& e : s.events) {
    has_fuzz |= e.kind == ScenarioEvent::Kind::kFuzz;
    has_wan_loss |= e.kind == ScenarioEvent::Kind::kWan && e.wan.has_loss();
  }
  if (has_fuzz) {
    EXPECT_GT(res.fuzz.mutated, 0u) << "fuzz event scheduled but no frame mutated";
    EXPECT_EQ(res.fuzz.rejected_validate + res.fuzz.accepted_validate, res.fuzz.mutated);
  }
  if (has_wan_loss) {
    EXPECT_GT(res.wan.shaped, 0u) << "lossy WAN episode scheduled but shaped nothing";
  }
  // Reliable delivery is always on under scenarios; anything the faults ate
  // must have been recovered, which shows up as retransmissions unless the
  // schedule happened to drop nothing.
  EXPECT_GT(res.reliable.frames_sent, 0u);
}

// Seed 2 is one of the pinned corpus seeds (partition + wan + fuzz on
// threads); running it freshly-generated here keeps the generator and the
// committed corpus file honest about describing the same schedule.
TEST(ScenarioE2e, GeneratedScheduleIsCheckerCleanParis) {
  run_generated(proto::System::kParis, 2);
}

TEST(ScenarioE2e, GeneratedScheduleIsCheckerCleanBpr) {
  run_generated(proto::System::kBpr, 2);
}

// Direct channel-fuzzing run with deliberately hot rates: every mutant must
// be either refused by wire validation or parsed-and-discarded, originals
// are dropped (reliable retransmits them), and captured frames replay as
// duplicates the dedup layer absorbs — all without a checker violation.
TEST(ScenarioE2e, ChannelFuzzingExercisesEveryRejectionPath) {
  workload::ExperimentConfig cfg;
  cfg.system = proto::System::kParis;
  cfg.runtime = runtime::Kind::kThreads;
  cfg.worker_threads = 2;
  cfg.num_dcs = 3;
  cfg.num_partitions = 4;
  cfg.replication = 2;
  cfg.threads_per_process = 1;
  cfg.workload.ops_per_tx = 4;
  cfg.workload.writes_per_tx = 2;
  cfg.workload.keys_per_partition = 100;
  cfg.warmup_us = 50'000 * kTimeScale;
  cfg.measure_us = 600'000 * kTimeScale;
  cfg.aws_latency = false;
  cfg.codec = sim::CodecMode::kBytes;
  cfg.check_consistency = true;
  cfg.reliable = true;
  cfg.reliable_cfg.rto_us = 10'000 * kTimeScale;
  cfg.reliable_cfg.max_rto_us = 40'000 * kTimeScale;
  cfg.fuzz.corrupt_p = 0.03;
  cfg.fuzz.replay_p = 0.03;
  cfg.seed = 17;

  const workload::ExperimentResult res = workload::run_experiment(cfg);

  for (const auto& v : res.violations) ADD_FAILURE() << v;
  EXPECT_GT(res.committed, 0u);
  EXPECT_GT(res.fuzz.mutated, 0u);
  EXPECT_EQ(res.fuzz.rejected_validate + res.fuzz.accepted_validate, res.fuzz.mutated);
  EXPECT_GT(res.fuzz.captured, 0u);
  EXPECT_GT(res.fuzz.replays, 0u);
  // 3% of frames were eaten: the reliable layer must have been retransmitting.
  EXPECT_GT(res.reliable.retransmits, 0u);
}

}  // namespace
}  // namespace paris::test
