// ReliableTransport tests: exactly-once in-order delivery over deterministic
// message loss, duplicate-ack tolerance, retransmit-after-heal through a
// PartitionTransport blackout, latest-wins coalescing, window recycling
// under sustained loss, and end-to-end convergence — chaos may drop ANY
// message class and the exactness + causal + session checkers stay green.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <mutex>
#include <vector>

#include "runtime/partition_transport.h"
#include "runtime/reliable_transport.h"
#include "runtime/thread_runtime.h"
#include "workload/experiment.h"

namespace paris::test {
namespace {

using runtime::PartitionSpec;
using runtime::PartitionTransport;
using runtime::PartitionWindow;
using runtime::ReliableConfig;
using runtime::ReliableTransport;
using runtime::ThreadBackend;

/// Records delivered Commit2pc/Heartbeat payloads with arrival times
/// (accessed on the owning worker, then after stop()).
class SinkActor : public runtime::Actor {
 public:
  explicit SinkActor(runtime::Executor& exec) : exec_(&exec) {}
  void on_message(NodeId /*from*/, const wire::Message& m) override {
    if (m.type() == wire::MsgType::kCommit2pc) {
      values.push_back(static_cast<const wire::Commit2pc&>(m).tx.raw);
    } else if (m.type() == wire::MsgType::kHeartbeat) {
      values.push_back(static_cast<const wire::Heartbeat&>(m).t.raw);
    } else {
      ADD_FAILURE() << "unexpected message " << wire::msg_type_name(m.type());
    }
    at_us.push_back(exec_->now_us());
  }
  std::vector<std::uint64_t> values;
  std::vector<std::uint64_t> at_us;

 private:
  runtime::Executor* exec_;
};

wire::MessagePtr numbered(std::uint64_t i) {
  auto m = wire::make_message<wire::Commit2pc>();
  m->tx = TxId{i};
  return m;
}

wire::MessagePtr heartbeat(std::uint64_t t) {
  auto hb = wire::make_message<wire::Heartbeat>();
  hb->t = Timestamp{t};
  return hb;
}

/// Deterministically lossy/duplicating transport: `drop_frame(i)` decides
/// the fate of the i-th kReliableFrame occurrence per channel (counting
/// retransmissions); `dup_acks` re-sends every kReliableAck. Counters are
/// mutex-guarded — sends originate on the main thread (pre-start) and on
/// worker timers.
class FaultyTransport final : public runtime::TransportDecorator {
 public:
  explicit FaultyTransport(runtime::Transport& inner) : TransportDecorator(inner) {}

  void send(NodeId from, NodeId to, wire::MessagePtr msg) override {
    if (msg->type() == wire::MsgType::kReliableFrame) {
      std::uint64_t idx;
      {
        std::lock_guard<std::mutex> lk(mu_);
        idx = frame_count_[(static_cast<std::uint64_t>(from) << 32) | to]++;
      }
      if (drop_frame && drop_frame(idx)) return;  // eaten
    }
    if (msg->type() == wire::MsgType::kReliableAck && dup_acks) {
      inner_.send(from, to, msg);  // duplicate copy
    }
    inner_.send(from, to, std::move(msg));
  }

  std::uint64_t frames_seen(NodeId from, NodeId to) {
    std::lock_guard<std::mutex> lk(mu_);
    return frame_count_[(static_cast<std::uint64_t>(from) << 32) | to];
  }

  std::function<bool(std::uint64_t)> drop_frame;  ///< by per-channel occurrence
  bool dup_acks = false;

 private:
  std::mutex mu_;
  std::unordered_map<std::uint64_t, std::uint64_t> frame_count_;
};

/// Two wrapped sink nodes on separate workers over the given inner chain.
struct Rig {
  Rig(ThreadBackend& be, runtime::Transport& inner, ReliableConfig cfg)
      : rt(inner, be.exec(), cfg), a(be.exec()), b(be.exec()) {
    runtime::Actor* wa = rt.wrap(&a);
    runtime::Actor* wb = rt.wrap(&b);
    na = be.add_node(wa, 0, nullptr);
    nb = be.add_node(wb, 1, nullptr);
    rt.attach(wa, na);
    rt.attach(wb, nb);
  }
  ReliableTransport rt;
  SinkActor a, b;
  NodeId na = kInvalidNode, nb = kInvalidNode;
};

ReliableConfig fast_rto() {
  ReliableConfig cfg;
  cfg.rto_us = 5'000;
  cfg.max_rto_us = 20'000;  // tight backoff cap keeps lossy tests fast
  return cfg;
}

TEST(ReliableTransport, DeliversExactlyOnceInOrderUnderDrops) {
  ThreadBackend be(ThreadBackend::Options{2, 1});
  FaultyTransport lossy(be.transport());
  // Eat a third of all frame transmissions, including retransmissions
  // (hash-based: deterministic but aperiodic, so full-window go-back-N
  // rounds cannot resonate with the drop pattern).
  lossy.drop_frame = [](std::uint64_t i) { return splitmix64(i) % 3 == 0; };
  Rig rig(be, lossy, fast_rto());

  const std::uint64_t kMsgs = 50;
  for (std::uint64_t i = 0; i < kMsgs; ++i) rig.rt.send(rig.na, rig.nb, numbered(i));
  be.run_for(300'000);
  be.stop();

  ASSERT_EQ(rig.b.values.size(), kMsgs) << "at-least-once must recover every drop";
  for (std::uint64_t i = 0; i < kMsgs; ++i) {
    EXPECT_EQ(rig.b.values[i], i);  // exactly-once, in order
  }
  const auto s = rig.rt.stats();
  EXPECT_GT(s.retransmits, 0u);
  EXPECT_GT(s.ooo_frames, 0u);  // post-drop frames were buffered, never reordered
  EXPECT_EQ(rig.rt.window_size(rig.na), 0u) << "acks must drain the window";
}

TEST(ReliableTransport, DuplicateAcksAreHarmless) {
  ThreadBackend be(ThreadBackend::Options{2, 1});
  FaultyTransport lossy(be.transport());
  lossy.drop_frame = [](std::uint64_t i) { return i == 3; };
  lossy.dup_acks = true;  // every ack arrives twice
  Rig rig(be, lossy, fast_rto());

  const std::uint64_t kMsgs = 20;
  for (std::uint64_t i = 0; i < kMsgs; ++i) rig.rt.send(rig.na, rig.nb, numbered(i));
  be.run_for(200'000);
  be.stop();

  ASSERT_EQ(rig.b.values.size(), kMsgs);
  for (std::uint64_t i = 0; i < kMsgs; ++i) EXPECT_EQ(rig.b.values[i], i);
  const auto s = rig.rt.stats();
  EXPECT_GT(s.stale_acks, 0u) << "the duplicated acks must have been seen and ignored";
  EXPECT_EQ(rig.rt.window_size(rig.na), 0u);
}

TEST(ReliableTransport, RetransmitsAfterPartitionHeals) {
  ThreadBackend be(ThreadBackend::Options{2, 1});
  // Blackout DC0 <-> DC1 from construction until t=80ms: the first
  // transmissions and early retransmits are all eaten; delivery must happen
  // via retransmission after the heal deadline.
  PartitionSpec spec;
  spec.windows.push_back(PartitionWindow{0, 1, false, 0, 80'000});
  PartitionTransport part(be.transport(), be.exec(), spec);
  Rig rig(be, part, fast_rto());

  const std::uint64_t kMsgs = 10;
  for (std::uint64_t i = 0; i < kMsgs; ++i) rig.rt.send(rig.na, rig.nb, numbered(i));
  be.run_for(250'000);
  be.stop();

  ASSERT_EQ(rig.b.values.size(), kMsgs) << "messages must survive the blackout";
  for (std::uint64_t i = 0; i < kMsgs; ++i) {
    EXPECT_EQ(rig.b.values[i], i);
    EXPECT_GE(rig.b.at_us[i], 80'000u) << "nothing may cross an active blackout";
  }
  EXPECT_GT(part.stats().dropped, 0u);
  EXPECT_GT(rig.rt.stats().retransmits, 0u);
}

TEST(ReliableTransport, CoalescesSupersededLatestWinsMessages) {
  ThreadBackend be(ThreadBackend::Options{2, 1});
  PartitionSpec spec;
  spec.windows.push_back(PartitionWindow{0, 1, false, 0, 60'000});
  PartitionTransport part(be.transport(), be.exec(), spec);
  Rig rig(be, part, fast_rto());

  // 20 heartbeats into the blackout: 19 are superseded while unacked, so
  // retransmission carries placeholders for them and one live payload.
  const std::uint64_t kBeats = 20;
  for (std::uint64_t i = 0; i < kBeats; ++i) rig.rt.send(rig.na, rig.nb, heartbeat(i));
  be.run_for(200'000);
  be.stop();

  ASSERT_EQ(rig.b.values.size(), 1u)
      << "only the latest heartbeat should survive coalescing";
  EXPECT_EQ(rig.b.values[0], kBeats - 1);
  EXPECT_EQ(rig.rt.stats().coalesced, kBeats - 1);
  EXPECT_EQ(rig.rt.window_size(rig.na), 0u) << "placeholders must still be acked";
}

TEST(ReliableTransport, WindowRecyclingSurvivesSustainedLoss) {
  // "Wraparound" coverage: many times more traffic than the in-flight
  // window ever holds, with drops sprinkled across first sends and
  // retransmissions, must still deliver exactly once in order. Sends are
  // paced by a timer (a closed protocol would do the same), so the window
  // recycles continuously instead of draining one 400-deep burst.
  ThreadBackend be(ThreadBackend::Options{2, 1});
  FaultyTransport lossy(be.transport());
  lossy.drop_frame = [](std::uint64_t i) { return splitmix64(i ^ 0x5105) % 4 == 0; };
  ReliableConfig cfg;
  cfg.rto_us = 3'000;
  cfg.max_rto_us = 9'000;
  Rig rig(be, lossy, cfg);

  const std::uint64_t kMsgs = 200;
  std::uint64_t sent = 0;
  runtime::TimerHandle pump =
      be.exec().every(rig.na, /*period=*/1'000, /*phase=*/0, [&] {
        for (int k = 0; k < 2 && sent < kMsgs; ++k) {
          rig.rt.send(rig.na, rig.nb, numbered(sent++));
        }
      });
  be.run_for(800'000);
  be.stop();

  ASSERT_EQ(rig.b.values.size(), kMsgs);
  for (std::uint64_t i = 0; i < kMsgs; ++i) EXPECT_EQ(rig.b.values[i], i);
  EXPECT_EQ(rig.rt.window_size(rig.na), 0u);
  const auto s = rig.rt.stats();
  EXPECT_EQ(s.frames_sent, kMsgs);  // first transmissions counted once each
  EXPECT_GT(s.retransmits, 0u);
}

TEST(ReliableTransport, InFlightCapBoundsBlackoutProbes) {
  // 60 frames queued into a blackout with an in-flight cap of 8: every
  // retransmission probe may carry at most one burst, so total wire
  // traffic stays linear in (probes + backlog) — the naive full-window
  // go-back-N would resend all 60 frames on every probe. After heal the
  // queued tail must ack-clock out completely, in order.
  ThreadBackend be(ThreadBackend::Options{2, 1});
  PartitionSpec spec;
  spec.windows.push_back(PartitionWindow{0, 1, false, 0, 100'000});
  PartitionTransport part(be.transport(), be.exec(), spec);
  FaultyTransport counter(part);  // no drops; counts frame transmissions
  ReliableConfig cfg;
  cfg.rto_us = 5'000;
  cfg.max_rto_us = 20'000;
  cfg.max_in_flight = 8;
  Rig rig(be, counter, cfg);

  const std::uint64_t kMsgs = 60;
  for (std::uint64_t i = 0; i < kMsgs; ++i) rig.rt.send(rig.na, rig.nb, numbered(i));
  be.run_for(400'000);
  be.stop();

  ASSERT_EQ(rig.b.values.size(), kMsgs);
  for (std::uint64_t i = 0; i < kMsgs; ++i) EXPECT_EQ(rig.b.values[i], i);
  EXPECT_EQ(rig.rt.window_size(rig.na), 0u);
  // ~8-10 blackout probes x 8 frames + the 60-frame drain + slack: far
  // below the ~500+ a full-window resend per probe would transmit.
  EXPECT_LE(counter.frames_seen(rig.na, rig.nb), 350u)
      << "in-flight cap failed to bound retransmission traffic";
}

// ---------------------------------------------------------------------------
// Selective repeat (SACK) + adaptive RTO.
// ---------------------------------------------------------------------------

/// Captures every ReliableAck flowing through (cum + sack ranges).
class AckSpy final : public runtime::TransportDecorator {
 public:
  explicit AckSpy(runtime::Transport& inner) : TransportDecorator(inner) {}

  void send(NodeId from, NodeId to, wire::MessagePtr msg) override {
    if (msg->type() == wire::MsgType::kReliableAck) {
      const auto& a = static_cast<const wire::ReliableAck&>(*msg);
      std::lock_guard<std::mutex> lk(mu);
      acks.emplace_back(a.cum_seq, a.sack);
    }
    inner_.send(from, to, std::move(msg));
  }

  std::mutex mu;
  std::vector<std::pair<std::uint64_t, std::vector<std::uint64_t>>> acks;
};

TEST(ReliableSack, RetransmitsOnlyTheGaps) {
  // Burst of 30 with five scattered first-transmission drops. Selective
  // repeat must resend only (about) the five holes — bounded by the dropped
  // count, not the in-flight burst size go-back-N would replay.
  ThreadBackend be(ThreadBackend::Options{2, 1});
  FaultyTransport lossy(be.transport());
  lossy.drop_frame = [](std::uint64_t i) {
    return i == 3 || i == 9 || i == 15 || i == 21 || i == 27;
  };
  ReliableConfig cfg = fast_rto();
  cfg.sack = true;
  Rig rig(be, lossy, cfg);

  const std::uint64_t kMsgs = 30, kDropped = 5;
  for (std::uint64_t i = 0; i < kMsgs; ++i) rig.rt.send(rig.na, rig.nb, numbered(i));
  be.run_for(300'000);
  be.stop();

  ASSERT_EQ(rig.b.values.size(), kMsgs);
  for (std::uint64_t i = 0; i < kMsgs; ++i) EXPECT_EQ(rig.b.values[i], i);
  const auto s = rig.rt.stats();
  EXPECT_GT(s.retransmits, 0u);
  // Gap-only bound: each hole costs a retransmission, plus at most one
  // extra round of slack on a slow scheduler — far under the dozens a
  // go-back-N replay of the 27-deep burst would send (asserted below).
  EXPECT_LE(s.retransmits, 2 * kDropped + 3)
      << "SACK must confine retransmission to the gaps";
  EXPECT_GT(s.sacked_skips, 0u) << "the RTO scan must actually have skipped sacked frames";
  EXPECT_EQ(rig.rt.window_size(rig.na), 0u);
}

TEST(ReliableSack, GoBackNResendsTheBurstWithoutSack) {
  // The identical scenario with sack off: the same five holes force whole
  // in-flight-burst replays, so retransmissions exceed the burst size —
  // this is the waste the bench row (BENCH_realtime_socket.json) guards.
  ThreadBackend be(ThreadBackend::Options{2, 1});
  FaultyTransport lossy(be.transport());
  lossy.drop_frame = [](std::uint64_t i) {
    return i == 3 || i == 9 || i == 15 || i == 21 || i == 27;
  };
  ReliableConfig cfg = fast_rto();
  cfg.sack = false;
  Rig rig(be, lossy, cfg);

  const std::uint64_t kMsgs = 30;
  for (std::uint64_t i = 0; i < kMsgs; ++i) rig.rt.send(rig.na, rig.nb, numbered(i));
  be.run_for(300'000);
  be.stop();

  ASSERT_EQ(rig.b.values.size(), kMsgs);
  for (std::uint64_t i = 0; i < kMsgs; ++i) EXPECT_EQ(rig.b.values[i], i);
  const auto s = rig.rt.stats();
  EXPECT_GT(s.retransmits, 13u)  // > 2*dropped+3: strictly worse than the SACK bound
      << "go-back-N should have replayed whole bursts here";
  EXPECT_EQ(s.sacked_skips, 0u);
  EXPECT_EQ(rig.rt.window_size(rig.na), 0u);
}

TEST(ReliableSack, AckRangesCoalesceBufferedRuns) {
  // Drop seqs 1 and 5 of a 6-frame burst: the receiver buffers {2,3,4,6}
  // and must advertise exactly the coalesced ranges [2,4] and [6,6].
  ThreadBackend be(ThreadBackend::Options{2, 1});
  AckSpy spy(be.transport());
  FaultyTransport lossy(spy);
  lossy.drop_frame = [](std::uint64_t i) { return i == 0 || i == 4; };
  Rig rig(be, lossy, fast_rto());

  const std::uint64_t kMsgs = 6;
  for (std::uint64_t i = 0; i < kMsgs; ++i) rig.rt.send(rig.na, rig.nb, numbered(i));
  be.run_for(200'000);
  be.stop();

  ASSERT_EQ(rig.b.values.size(), kMsgs);
  for (std::uint64_t i = 0; i < kMsgs; ++i) EXPECT_EQ(rig.b.values[i], i);
  bool saw_coalesced = false;
  {
    std::lock_guard<std::mutex> lk(spy.mu);
    for (const auto& [cum, sack] : spy.acks) {
      if (cum == 0 && sack == std::vector<std::uint64_t>{2, 4, 6, 6}) {
        saw_coalesced = true;
      }
      ASSERT_EQ(sack.size() % 2, 0u) << "receivers must never emit odd range lists";
    }
  }
  EXPECT_TRUE(saw_coalesced)
      << "expected an ack advertising exactly [2,4] and [6,6] past the cum=0 hole";
}

TEST(ReliableSack, MalformedRangesAreRejectedNotTrusted) {
  // Inject hand-crafted garbage acks UNDER the reliable layer (straight
  // through the backend, as a broken peer process would): lo > hi, odd
  // range count, ranges overlapping the cumack hole, and a cumack beyond
  // anything ever sent. All must be counted and ignored — and delivery
  // must still complete exactly once after the blackout heals, proving no
  // window state was corrupted.
  ThreadBackend be(ThreadBackend::Options{2, 1});
  PartitionSpec spec;
  spec.windows.push_back(PartitionWindow{0, 1, false, 0, 120'000});
  PartitionTransport part(be.transport(), be.exec(), spec);
  Rig rig(be, part, fast_rto());

  const std::uint64_t kMsgs = 10;
  for (std::uint64_t i = 0; i < kMsgs; ++i) rig.rt.send(rig.na, rig.nb, numbered(i));

  auto bad_ack = [&](std::uint64_t cum, std::vector<std::uint64_t> sack) {
    auto a = wire::make_message<wire::ReliableAck>();
    a->cum_seq = cum;
    a->sack = std::move(sack);
    be.send(rig.nb, rig.na, std::move(a));  // bypasses framing: raw delivery
  };
  bad_ack(0, {5, 3});          // lo > hi
  bad_ack(0, {4});             // odd count
  bad_ack(0, {1, 3});          // overlaps the cum+1 hole (lo < cum+2)
  bad_ack(0, {3, 5, 4, 9});    // out of order / overlapping ranges
  bad_ack(1'000'000, {});      // acks seqs that were never assigned

  be.run_for(300'000);
  be.stop();

  ASSERT_EQ(rig.b.values.size(), kMsgs) << "corrupt acks must not wedge the channel";
  for (std::uint64_t i = 0; i < kMsgs; ++i) EXPECT_EQ(rig.b.values[i], i);
  EXPECT_GE(rig.rt.stats().malformed_acks, 5u);
  EXPECT_EQ(rig.rt.window_size(rig.na), 0u);
}

TEST(AdaptiveRto, EstimatorConvergesUnderJitteredRtts) {
  // U[20ms, 40ms] samples: srtt must settle near the 30ms mean, rttvar
  // near the ~5ms mean deviation, and the resulting RTO must sit above
  // every plausible sample (no spurious retransmits at steady state)
  // without ballooning to the cap.
  runtime::RttEstimator est;
  Rng rng(42);
  std::uint64_t max_sample = 0, spurious = 0;
  const std::uint64_t kSamples = 500;
  for (std::uint64_t i = 0; i < kSamples; ++i) {
    const std::uint64_t s = 20'000 + rng.next_u64() % 20'001;
    if (i > 50 && s > est.rto_us(5'000, 2'000'000)) ++spurious;
    est.on_sample(s);
    max_sample = std::max(max_sample, s);
  }
  EXPECT_TRUE(est.primed());
  EXPECT_EQ(est.samples(), kSamples);
  EXPECT_GT(est.srtt_us(), 25'000u);
  EXPECT_LT(est.srtt_us(), 35'000u);
  const std::uint64_t rto = est.rto_us(5'000, 2'000'000);
  EXPECT_GE(rto, max_sample) << "an RTO below observed RTTs guarantees spurious storms";
  EXPECT_LT(rto, 100'000u) << "the estimator must not balloon on bounded jitter";
  EXPECT_EQ(spurious, 0u) << "steady-state samples above the live RTO = spurious retransmit";

  // Clamping: floor and ceiling are honored.
  EXPECT_EQ(est.rto_us(1'000'000, 2'000'000), 1'000'000u);
  EXPECT_EQ(est.rto_us(1'000, 10'000), 10'000u);
  runtime::RttEstimator cold;
  EXPECT_FALSE(cold.primed());
  EXPECT_EQ(cold.rto_us(7'000, 2'000'000), 7'000u) << "unprimed: the floor";
}

TEST(PartitionSpec, ParsesPairIsolationAndLists) {
  PartitionSpec spec;
  ASSERT_TRUE(runtime::parse_partition_spec("0-1:500:1500", spec));
  ASSERT_EQ(spec.windows.size(), 1u);
  EXPECT_FALSE(spec.windows[0].isolate_all);
  EXPECT_EQ(spec.windows[0].a, 0u);
  EXPECT_EQ(spec.windows[0].b, 1u);
  EXPECT_EQ(spec.windows[0].start_us, 500'000u);
  EXPECT_EQ(spec.windows[0].end_us, 1'500'000u);

  ASSERT_TRUE(runtime::parse_partition_spec("2:2000:2500,0-1:1:2", spec));
  ASSERT_EQ(spec.windows.size(), 2u);
  EXPECT_TRUE(spec.windows[0].isolate_all);
  EXPECT_EQ(spec.windows[0].a, 2u);
  EXPECT_FALSE(spec.windows[1].isolate_all);

  // Blackout predicate: pair window hits both directions, nothing else.
  const PartitionWindow& w = spec.windows[1];
  EXPECT_TRUE(w.blacks_out(0, 1, 1'500));
  EXPECT_TRUE(w.blacks_out(1, 0, 1'500));
  EXPECT_FALSE(w.blacks_out(0, 2, 1'500));
  EXPECT_FALSE(w.blacks_out(0, 1, 2'000));  // heal deadline is exclusive

  PartitionSpec bad;
  EXPECT_FALSE(runtime::parse_partition_spec("", bad));
  EXPECT_FALSE(runtime::parse_partition_spec("0-1:500", bad));
  EXPECT_FALSE(runtime::parse_partition_spec("0-1:900:100", bad));  // end <= start
  EXPECT_FALSE(runtime::parse_partition_spec("x-1:1:2", bad));
  EXPECT_FALSE(runtime::parse_partition_spec("-1:0:500", bad));  // no unsigned wrap
}

// ---------------------------------------------------------------------------
// End-to-end convergence.
// ---------------------------------------------------------------------------

/// Sanitizer builds run the closed loop several times slower; stretch the
/// wall-clock windows so "committed > 0 within the window" stays a protocol
/// assertion, not a scheduler-speed one.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr std::uint64_t kTimeScale = 5;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr std::uint64_t kTimeScale = 5;
#else
constexpr std::uint64_t kTimeScale = 1;
#endif
#else
constexpr std::uint64_t kTimeScale = 1;
#endif

workload::ExperimentConfig reliable_cluster(std::uint64_t seed) {
  workload::ExperimentConfig cfg;
  cfg.runtime = runtime::Kind::kThreads;
  cfg.worker_threads = 2;
  cfg.num_dcs = 3;
  cfg.num_partitions = 6;
  cfg.replication = 2;
  cfg.threads_per_process = 1;
  cfg.workload.ops_per_tx = 8;
  cfg.workload.writes_per_tx = 2;
  cfg.workload.keys_per_partition = 100;
  cfg.warmup_us = 50'000 * kTimeScale;
  cfg.measure_us = 350'000 * kTimeScale;
  cfg.aws_latency = false;
  cfg.codec = sim::CodecMode::kBytes;
  cfg.check_consistency = true;
  cfg.reliable = true;
  // The RTO must scale with the sanitizer slowdown like the windows do:
  // once queueing delay exceeds the RTO, every message times out
  // spuriously and the duplicate load feeds back into more delay —
  // congestion collapse (an adaptive RTO is a ROADMAP item).
  cfg.reliable_cfg.rto_us = 20'000 * kTimeScale;
  cfg.seed = seed;
  return cfg;
}

/// The headline guarantee: with the reliable layer on, chaos may drop ANY
/// message class — request/response, 2PC, replication, acks — and the run
/// still converges and passes the exactness + causal-safety + per-session
/// monotonic-snapshot checkers, for both systems.
TEST(ReliableEndToEnd, ChaosDropAnythingStillConvergesCheckerClean) {
  for (const auto sys : {proto::System::kParis, proto::System::kBpr}) {
    auto cfg = reliable_cluster(71);
    cfg.system = sys;
    cfg.chaos.drop_p = 0.15;
    cfg.chaos.drop_class = runtime::ChaosDropClass::kAll;

    const auto res = workload::run_experiment(cfg);
    SCOPED_TRACE(proto::system_name(sys));
    EXPECT_GT(res.committed, 0u);
    EXPECT_GT(res.chaos.dropped, 0u) << "chaos must actually engage";
    EXPECT_GT(res.reliable.retransmits, 0u) << "recovery must actually engage";
    for (const auto& v : res.violations) ADD_FAILURE() << v;
  }
}

/// Request/response traffic specifically (the class the pre-PR 4 transport
/// could never drop) survives targeted drops.
TEST(ReliableEndToEnd, RequestClassDropsConverge) {
  auto cfg = reliable_cluster(72);
  cfg.chaos.drop_p = 0.2;
  cfg.chaos.drop_class = runtime::ChaosDropClass::kRequests;

  const auto res = workload::run_experiment(cfg);
  EXPECT_GT(res.committed, 0u);
  EXPECT_GT(res.chaos.dropped, 0u);
  for (const auto& v : res.violations) ADD_FAILURE() << v;
}

/// End-to-end adaptive RTO: over a jittered WAN latency model with NO
/// loss, a mistuned estimator (RTO under the real RTT) would retransmit
/// everything; the converged one must stay (nearly) silent while still
/// taking steady RTT samples.
TEST(ReliableEndToEnd, AdaptiveRtoNoRetransmitStormAtSteadyState) {
  auto cfg = reliable_cluster(77);
  cfg.latency_model = runtime::LatencyModelKind::kJitter;
  cfg.uniform_inter_dc_us = 10'000;
  cfg.reliable_cfg.adaptive_rto = true;
  cfg.reliable_cfg.rto_us = 200'000 * kTimeScale;  // pre-estimate: generous
  cfg.reliable_cfg.min_rto_us = 25'000 * kTimeScale;
  cfg.check_consistency = true;

  const auto res = workload::run_experiment(cfg);
  EXPECT_GT(res.committed, 0u);
  EXPECT_GT(res.reliable.rtt_samples, 100u) << "the estimator must actually be fed";
  // Strict storm bound only on unsanitized builds: sanitizer scheduling
  // spikes queueing delay far past any honest RTT estimate, and Karn's
  // rule then censors exactly the slow samples a spurious retransmission
  // delays — the estimator cannot see what it keeps retransmitting over.
  // Under sanitizers we only require that backoff keeps it from melting
  // down (and that the run stays checker-clean, asserted below).
  const std::uint64_t storm_bound =
      kTimeScale == 1 ? res.reliable.frames_sent / 100 : res.reliable.frames_sent / 2;
  EXPECT_LE(res.reliable.retransmits, storm_bound)
      << "adaptive RTO must not manufacture retransmissions on a lossless link";
  for (const auto& v : res.violations) ADD_FAILURE() << v;
}

/// A scheduled inter-DC blackout heals on its deadline and the run
/// converges checker-clean: nothing the partition ate stays lost.
TEST(ReliableEndToEnd, PartitionHealsAndConvergesCheckerClean) {
  auto cfg = reliable_cluster(73);
  cfg.measure_us = 750'000 * kTimeScale;
  cfg.partitions.windows.push_back(
      PartitionWindow{0, 1, false, 150'000 * kTimeScale, 450'000 * kTimeScale});

  const auto res = workload::run_experiment(cfg);
  EXPECT_GT(res.committed, 0u);
  EXPECT_GT(res.partition.dropped, 0u) << "the blackout must actually engage";
  EXPECT_GT(res.reliable.retransmits, 0u);
  for (const auto& v : res.violations) ADD_FAILURE() << v;
}

}  // namespace
}  // namespace paris::test
