// Scenario-engine unit tests (DESIGN §13): generator determinism, corpus
// codec exactness, time scaling, greedy shrinker fixpoint, and the WAN
// decorator's statistical/ordering contracts (Gilbert–Elliott burstiness,
// bandwidth-cap FIFO, directional shaping). No sockets here — this suite
// binds no ports and runs fully in-process.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/thread_runtime.h"
#include "runtime/wan_transport.h"
#include "scenario/scenario.h"

namespace paris::test {
namespace {

using runtime::ThreadBackend;
using runtime::WanConfig;
using runtime::WanLinkEpisode;
using runtime::WanTransport;
using scenario::Scenario;
using scenario::ScenarioEvent;
using scenario::ScenarioOptions;

ScenarioOptions socket_opts() {
  ScenarioOptions o;
  o.runtime = runtime::Kind::kSockets;
  return o;
}

// ---------------------------------------------------------------------------
// Generator.
// ---------------------------------------------------------------------------

TEST(ScenarioGenerator, DeterministicPerSeed) {
  const Scenario a = scenario::generate_scenario(7, socket_opts());
  const Scenario b = scenario::generate_scenario(7, socket_opts());
  EXPECT_EQ(scenario::encode_scenario(a), scenario::encode_scenario(b));

  // Different seeds draw different schedules (not for literally every pair,
  // but across a small window at least one must differ in the encoding).
  bool any_diff = false;
  for (std::uint64_t s = 8; s < 12 && !any_diff; ++s) {
    any_diff = scenario::encode_scenario(scenario::generate_scenario(s, socket_opts())) !=
               scenario::encode_scenario(a);
  }
  EXPECT_TRUE(any_diff);
}

TEST(ScenarioGenerator, KillsRequireSupervisedSockets) {
  ScenarioOptions threads;  // defaults: threads runtime
  ScenarioOptions no_kill = socket_opts();
  no_kill.allow_kill = false;
  bool socket_kill_seen = false;
  for (std::uint64_t s = 1; s <= 40; ++s) {
    EXPECT_FALSE(scenario::generate_scenario(s, threads).has_kill()) << "seed " << s;
    EXPECT_FALSE(scenario::generate_scenario(s, no_kill).has_kill()) << "seed " << s;
    socket_kill_seen |= scenario::generate_scenario(s, socket_opts()).has_kill();
  }
  EXPECT_TRUE(socket_kill_seen) << "40 socket seeds drew no kill at 35% each";
}

TEST(ScenarioGenerator, MembershipNeverCoexistsWithKillAndStaysRunnable) {
  ScenarioOptions no_memb = socket_opts();
  no_memb.allow_membership = false;
  bool join_seen = false, leave_seen = false;
  for (std::uint64_t s = 1; s <= 60; ++s) {
    EXPECT_FALSE(scenario::generate_scenario(s, no_memb).has_membership())
        << "seed " << s;
    for (const auto rt : {runtime::Kind::kThreads, runtime::Kind::kSockets}) {
      ScenarioOptions o;
      o.runtime = rt;
      const Scenario g = scenario::generate_scenario(s, o);
      // Supervised respawn and elastic membership are mutually exclusive in
      // the deployment; a generated schedule must always be runnable.
      EXPECT_FALSE(g.has_kill() && g.has_membership()) << "seed " << s;
      const std::uint32_t ranks =
          rt == runtime::Kind::kSockets ? g.socket_processes : g.num_dcs;
      for (const auto& e : g.events) {
        if (e.kind != ScenarioEvent::Kind::kJoin &&
            e.kind != ScenarioEvent::Kind::kLeave)
          continue;
        (e.kind == ScenarioEvent::Kind::kJoin ? join_seen : leave_seen) = true;
        // Rank 0 anchors the original view and donates state; the event must
        // land inside the run window.
        EXPECT_GE(e.memb_rank, 1u) << "seed " << s;
        EXPECT_LT(e.memb_rank, ranks) << "seed " << s;
        EXPECT_LT(e.memb_at_ms * 1000, g.warmup_us + g.measure_us) << "seed " << s;
      }
    }
  }
  EXPECT_TRUE(join_seen) << "60 seeds x 2 runtimes drew no join";
  EXPECT_TRUE(leave_seen) << "60 seeds x 2 runtimes drew no leave";
}

// ---------------------------------------------------------------------------
// Codec.
// ---------------------------------------------------------------------------

TEST(ScenarioCodec, RoundTripIsByteExact) {
  for (std::uint64_t s = 1; s <= 25; ++s) {
    for (const auto rt : {runtime::Kind::kThreads, runtime::Kind::kSockets}) {
      ScenarioOptions o;
      o.runtime = rt;
      o.system = (s % 2 != 0) ? proto::System::kParis : proto::System::kBpr;
      const Scenario orig = scenario::generate_scenario(s, o);
      const std::string text = scenario::encode_scenario(orig);
      Scenario back;
      ASSERT_TRUE(scenario::decode_scenario(text, back)) << text;
      EXPECT_EQ(scenario::encode_scenario(back), text) << "seed " << s;
      EXPECT_EQ(scenario::describe(back), scenario::describe(orig));
    }
  }
}

TEST(ScenarioCodec, RejectsUnknownKeysEventsAndValues) {
  Scenario s;
  EXPECT_TRUE(scenario::decode_scenario("seed 9\nsystem bpr\n# comment line\n", s));
  EXPECT_EQ(s.seed, 9u);
  EXPECT_EQ(s.system, proto::System::kBpr);

  // Version skew must fail loudly, not silently drop faults.
  EXPECT_FALSE(scenario::decode_scenario("bogus 1\n", s));
  EXPECT_FALSE(scenario::decode_scenario("event warp 1 2 3\n", s));
  EXPECT_FALSE(scenario::decode_scenario("system klingon\n", s));
  EXPECT_FALSE(scenario::decode_scenario("runtime fibers\n", s));
  EXPECT_FALSE(scenario::decode_scenario("event kill 1\n", s));  // truncated fields
}

// ---------------------------------------------------------------------------
// scale_time.
// ---------------------------------------------------------------------------

TEST(ScenarioScaleTime, StretchesWindowsAndLeavesRatesAlone) {
  Scenario s = scenario::generate_scenario(2, socket_opts());
  // Make sure the schedule exercises every scaled field.
  ScenarioEvent kill;
  kill.kind = ScenarioEvent::Kind::kKill;
  kill.kill_rank = 1;
  kill.kill_after_ms = 300;
  s.events.push_back(kill);

  Scenario scaled = s;
  scenario::scale_time(scaled, 5);
  EXPECT_EQ(scaled.warmup_us, s.warmup_us * 5);
  EXPECT_EQ(scaled.measure_us, s.measure_us * 5);
  EXPECT_EQ(scaled.rto_us, s.rto_us * 5);
  EXPECT_EQ(scaled.max_rto_us, s.max_rto_us * 5);
  ASSERT_EQ(scaled.events.size(), s.events.size());
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    const ScenarioEvent& a = s.events[i];
    const ScenarioEvent& b = scaled.events[i];
    ASSERT_EQ(a.kind, b.kind);
    switch (a.kind) {
      case ScenarioEvent::Kind::kPartition:
        EXPECT_EQ(b.partition.start_us, a.partition.start_us * 5);
        EXPECT_EQ(b.partition.end_us, a.partition.end_us * 5);
        break;
      case ScenarioEvent::Kind::kWan:
        EXPECT_EQ(b.wan.start_us, a.wan.start_us * 5);
        EXPECT_EQ(b.wan.end_us, a.wan.end_us * 5);
        // Link character models the link, not the slowed execution.
        EXPECT_EQ(b.wan.extra_delay_end_us, a.wan.extra_delay_end_us);
        EXPECT_EQ(b.wan.bandwidth_bytes_per_us, a.wan.bandwidth_bytes_per_us);
        EXPECT_EQ(b.wan.loss_bad, a.wan.loss_bad);
        break;
      case ScenarioEvent::Kind::kKill:
        EXPECT_EQ(b.kill_after_ms, a.kill_after_ms * 5);
        break;
      default:
        break;  // chaos/fuzz/skew carry only rates — untouched by design
    }
  }

  Scenario ident = s;
  scenario::scale_time(ident, 1);
  EXPECT_EQ(scenario::encode_scenario(ident), scenario::encode_scenario(s));
}

// ---------------------------------------------------------------------------
// Shrinker.
// ---------------------------------------------------------------------------

TEST(ScenarioShrinker, GreedyDropReachesAMinimalFixpoint) {
  Scenario s;
  for (int i = 0; i < 3; ++i) {
    ScenarioEvent e;
    e.kind = ScenarioEvent::Kind::kWan;
    e.wan.start_us = 1000u * static_cast<std::uint64_t>(i + 1);
    s.events.push_back(e);
  }
  ScenarioEvent part;
  part.kind = ScenarioEvent::Kind::kPartition;
  s.events.push_back(part);
  ScenarioEvent fz;
  fz.kind = ScenarioEvent::Kind::kFuzz;
  fz.fuzz_corrupt_p = 0.01;
  s.events.push_back(fz);

  // Synthetic oracle: the "violation" needs a partition AND a fuzz event —
  // a conjunction, so the shrinker must keep exactly one of each.
  const auto violates = [](const Scenario& c) {
    bool p = false, f = false;
    for (const auto& e : c.events) {
      p |= e.kind == ScenarioEvent::Kind::kPartition;
      f |= e.kind == ScenarioEvent::Kind::kFuzz;
    }
    return p && f;
  };

  std::uint32_t probes = 0;
  const Scenario shrunk = scenario::shrink_scenario(s, violates, &probes);
  ASSERT_EQ(shrunk.events.size(), 2u);
  EXPECT_TRUE(violates(shrunk)) << "shrunk schedule no longer violates";
  EXPECT_GT(probes, 0u);

  // Fixpoint: shrinking the shrunk schedule changes nothing, and every
  // probe fails (each remaining event is load-bearing).
  std::uint32_t probes2 = 0;
  const Scenario again = scenario::shrink_scenario(shrunk, violates, &probes2);
  EXPECT_EQ(scenario::encode_scenario(again), scenario::encode_scenario(shrunk));
  EXPECT_EQ(probes2, 2u);
}

// ---------------------------------------------------------------------------
// WAN decorator: Gilbert–Elliott chain statistics and determinism.
// ---------------------------------------------------------------------------

WanLinkEpisode ge_episode(double pgb, double pbg) {
  WanLinkEpisode e;
  e.a = 0;
  e.b = 1;
  e.start_us = 0;
  e.end_us = ~0ull;
  e.p_good_bad = pgb;
  e.p_bad_good = pbg;
  e.loss_bad = 0.5;
  return e;
}

TEST(WanGilbertElliott, BurstinessMatchesChainParameters) {
  ThreadBackend be(ThreadBackend::Options{2, 1});
  WanConfig cfg;
  cfg.seed = 42;
  cfg.episodes.push_back(ge_episode(0.1, 0.5));
  WanTransport wt(be.transport(), be.exec(), cfg);

  const int kSlots = 5000;
  int bad = 0, runs = 0, run_len_total = 0, cur = 0;
  for (int i = 0; i < kSlots; ++i) {
    if (wt.ge_bad(0, static_cast<std::uint64_t>(i) * WanTransport::kGeSlotUs)) {
      ++bad;
      ++cur;
    } else if (cur > 0) {
      ++runs;
      run_len_total += cur;
      cur = 0;
    }
  }
  // Stationary bad fraction = pgb / (pgb + pbg) = 1/6; mean bad-run length
  // = 1 / p_bad_good = 2 slots. Wide tolerances: 5000 slots of a chain with
  // ~1.7-slot correlation time give a std error well under these bounds.
  const double frac = static_cast<double>(bad) / kSlots;
  EXPECT_NEAR(frac, 1.0 / 6.0, 0.05);
  ASSERT_GT(runs, 0);
  const double mean_run = static_cast<double>(run_len_total) / runs;
  EXPECT_GT(mean_run, 1.4);
  EXPECT_LT(mean_run, 2.8);
  be.stop();
}

TEST(WanGilbertElliott, ChainIsSeedDeterministicAcrossInstances) {
  ThreadBackend be(ThreadBackend::Options{2, 1});
  WanConfig cfg;
  cfg.seed = 42;
  cfg.episodes.push_back(ge_episode(0.2, 0.4));
  WanTransport t1(be.transport(), be.exec(), cfg);
  WanTransport t2(be.transport(), be.exec(), cfg);
  WanConfig other = cfg;
  other.seed = 43;
  WanTransport t3(be.transport(), be.exec(), other);

  bool any_diff = false;
  for (int i = 0; i < 512; ++i) {
    const std::uint64_t now = static_cast<std::uint64_t>(i) * WanTransport::kGeSlotUs;
    EXPECT_EQ(t1.ge_bad(0, now), t2.ge_bad(0, now)) << "slot " << i;
    any_diff |= t1.ge_bad(0, now) != t3.ge_bad(0, now);
  }
  EXPECT_TRUE(any_diff) << "different seed produced an identical 512-slot chain";
  be.stop();
}

// ---------------------------------------------------------------------------
// WAN decorator: bandwidth FIFO and directional shaping (thread backend).
// ---------------------------------------------------------------------------

/// Records heartbeat payloads and arrival times on the backend clock.
class ArrivalActor : public runtime::Actor {
 public:
  explicit ArrivalActor(runtime::Executor& exec) : exec_(&exec) {}
  void on_message(NodeId /*from*/, const wire::Message& m) override {
    ASSERT_EQ(m.type(), wire::MsgType::kHeartbeat);
    values.push_back(static_cast<const wire::Heartbeat&>(m).t.raw);
    at_us.push_back(exec_->now_us());
  }
  std::vector<std::uint64_t> values;
  std::vector<std::uint64_t> at_us;

 private:
  runtime::Executor* exec_;
};

wire::MessagePtr heartbeat(std::uint64_t t) {
  auto hb = wire::make_message<wire::Heartbeat>();
  hb->t = Timestamp{t};
  return hb;
}

TEST(WanBandwidth, CapSerializesTheLinkFifo) {
  ThreadBackend be(ThreadBackend::Options{2, 1});
  ArrivalActor a(be.exec()), b(be.exec());
  const NodeId na = be.add_node(&a, 0, nullptr);
  const NodeId nb = be.add_node(&b, 1, nullptr);
  WanConfig cfg;
  cfg.seed = 1;
  WanLinkEpisode ep;
  ep.a = 0;
  ep.b = 1;
  ep.start_us = 0;
  ep.end_us = ~0ull;
  ep.bandwidth_bytes_per_us = 1;  // 1 MB/s: every heartbeat costs >= 2us
  cfg.episodes.push_back(ep);
  WanTransport wt(be.transport(), be.exec(), cfg);

  const int kMsgs = 40;
  const std::uint64_t sent_at = be.exec().now_us();
  for (int i = 0; i < kMsgs; ++i) wt.send(na, nb, heartbeat(static_cast<std::uint64_t>(i)));
  be.run_for(300'000);
  be.stop();

  ASSERT_EQ(b.values.size(), static_cast<std::size_t>(kMsgs));
  for (int i = 0; i < kMsgs; ++i) {
    EXPECT_EQ(b.values[i], static_cast<std::uint64_t>(i));  // FIFO through the pipe
    if (i > 0) {
      EXPECT_GE(b.at_us[i], b.at_us[i - 1]);
    }
  }
  // The pipe drains 1 byte/us and each encoded heartbeat is >= 2 bytes, so
  // the last departure is at least kMsgs * 2us after the burst went in
  // (scheduling can add lateness, never remove serialization delay).
  EXPECT_GE(b.at_us.back(), sent_at + static_cast<std::uint64_t>(kMsgs) * 2);
  const WanTransport::Stats st = wt.stats();
  EXPECT_EQ(st.shaped, static_cast<std::uint64_t>(kMsgs));
  EXPECT_GT(st.bw_queued, 0u) << "a 40-message burst never waited behind the pipe";
}

TEST(WanAsymmetry, ShapesOnlyTheNamedDirection) {
  ThreadBackend be(ThreadBackend::Options{2, 1});
  ArrivalActor a(be.exec()), b(be.exec());
  const NodeId na = be.add_node(&a, 0, nullptr);
  const NodeId nb = be.add_node(&b, 1, nullptr);
  WanConfig cfg;
  cfg.seed = 1;
  WanLinkEpisode ep;
  ep.a = 0;
  ep.b = 1;  // asymmetric: only 0 -> 1 is degraded
  ep.start_us = 0;
  ep.end_us = ~0ull;
  ep.extra_delay_start_us = 50'000;
  ep.extra_delay_end_us = 50'000;
  cfg.episodes.push_back(ep);
  WanTransport wt(be.transport(), be.exec(), cfg);

  const std::uint64_t sent_at = be.exec().now_us();
  wt.send(na, nb, heartbeat(1));
  wt.send(nb, na, heartbeat(2));
  be.run_for(200'000);
  be.stop();

  ASSERT_EQ(b.values.size(), 1u);
  ASSERT_EQ(a.values.size(), 1u);
  EXPECT_GE(b.at_us[0], sent_at + 50'000) << "degraded direction missed its extra delay";
  EXPECT_LT(a.at_us[0], b.at_us[0]) << "reverse direction was shaped too";
}

}  // namespace
}  // namespace paris::test
