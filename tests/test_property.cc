// Property-based protocol validation: randomized workloads across seeds,
// systems, workload mixes and cluster shapes, each checked offline against
// the exactness property (LWW winner within snapshot — subsumes causal
// snapshots and atomicity; see verify/history.h). All runs use the kBytes
// codec, so serialization is exercised on every message too.

#include <gtest/gtest.h>

#include "workload/experiment.h"

namespace paris::test {
namespace {

using workload::ExperimentConfig;
using workload::WorkloadSpec;

struct PropertyCase {
  proto::System system;
  std::uint32_t dcs;
  std::uint32_t partitions;
  std::uint32_t replication;
  std::uint32_t writes_per_tx;
  double multi_ratio;
  std::uint64_t seed;
};

std::string case_name(const testing::TestParamInfo<PropertyCase>& info) {
  const auto& p = info.param;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s_M%u_N%u_R%u_w%u_multi%02d_seed%llu",
                p.system == proto::System::kParis ? "paris" : "bpr", p.dcs, p.partitions,
                p.replication, p.writes_per_tx, static_cast<int>(p.multi_ratio * 100),
                static_cast<unsigned long long>(p.seed));
  return buf;
}

class ProtocolProperty : public testing::TestWithParam<PropertyCase> {};

TEST_P(ProtocolProperty, HistoryIsExact) {
  const auto& p = GetParam();
  ExperimentConfig cfg;
  cfg.system = p.system;
  cfg.num_dcs = p.dcs;
  cfg.num_partitions = p.partitions;
  cfg.replication = p.replication;
  cfg.workload.ops_per_tx = 8;
  cfg.workload.writes_per_tx = p.writes_per_tx;
  cfg.workload.partitions_per_tx = 3;
  cfg.workload.multi_dc_ratio = p.multi_ratio;
  cfg.workload.keys_per_partition = 60;  // heavy contention
  cfg.threads_per_process = 2;
  cfg.warmup_us = 100'000;
  cfg.measure_us = 250'000;
  cfg.seed = p.seed;
  cfg.check_consistency = true;
  cfg.codec = sim::CodecMode::kBytes;
  cfg.aws_latency = false;  // uniform 40ms WAN: higher tx counts per window

  const auto res = run_experiment(cfg);
  // All-remote workloads commit slowly (every tx pays a WAN round trip).
  const std::uint64_t floor = p.multi_ratio >= 0.99 ? 10 : 30;
  EXPECT_GT(res.committed, floor) << "workload barely ran";
  for (const auto& v : res.violations) ADD_FAILURE() << v;
}

std::vector<PropertyCase> make_cases() {
  std::vector<PropertyCase> cases;
  // Seed sweep on the canonical mixed configuration, both systems.
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1337ull, 77777ull}) {
    cases.push_back({proto::System::kParis, 3, 9, 2, 2, 0.3, seed});
    cases.push_back({proto::System::kBpr, 3, 9, 2, 2, 0.3, seed});
  }
  // Shape sweep: more DCs, different replication factors, write-heavy,
  // all-local and all-remote extremes.
  cases.push_back({proto::System::kParis, 5, 10, 2, 4, 0.5, 5});
  cases.push_back({proto::System::kParis, 4, 8, 3, 2, 0.2, 6});
  cases.push_back({proto::System::kParis, 2, 4, 2, 1, 0.0, 8});
  cases.push_back({proto::System::kParis, 5, 5, 1, 2, 1.0, 9});
  cases.push_back({proto::System::kParis, 3, 9, 2, 8, 0.3, 10});
  cases.push_back({proto::System::kBpr, 5, 10, 2, 4, 0.5, 11});
  cases.push_back({proto::System::kBpr, 4, 8, 3, 2, 0.2, 12});
  cases.push_back({proto::System::kBpr, 3, 9, 2, 8, 0.3, 13});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProtocolProperty, testing::ValuesIn(make_cases()),
                         case_name);

// Zipfian-free uniform contention catches different interleavings than the
// default skew: every client hammers a tiny uniform key space.
class UniformContention : public testing::TestWithParam<std::uint64_t> {};

TEST_P(UniformContention, ParisExactUnderMaxContention) {
  ExperimentConfig cfg;
  cfg.system = proto::System::kParis;
  cfg.num_dcs = 3;
  cfg.num_partitions = 6;
  cfg.replication = 2;
  cfg.workload.ops_per_tx = 6;
  cfg.workload.writes_per_tx = 3;
  cfg.workload.partitions_per_tx = 2;
  cfg.workload.multi_dc_ratio = 0.4;
  cfg.workload.keys_per_partition = 8;  // brutal write contention
  cfg.workload.zipf_theta = 0.01;       // ~uniform
  cfg.threads_per_process = 2;
  cfg.warmup_us = 50'000;
  cfg.measure_us = 200'000;
  cfg.seed = GetParam();
  cfg.check_consistency = true;
  cfg.codec = sim::CodecMode::kBytes;

  const auto res = run_experiment(cfg);
  for (const auto& v : res.violations) ADD_FAILURE() << v;
}

INSTANTIATE_TEST_SUITE_P(Seeds, UniformContention, testing::Values(3, 19, 23, 101));

}  // namespace
}  // namespace paris::test
