// Histogram and summary tests: bounded relative error, percentiles, merge,
// CDF monotonicity.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "stats/histogram.h"
#include "stats/summary.h"

namespace paris::stats {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_TRUE(h.cdf().empty());
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (std::uint64_t v = 0; v < 32; ++v) h.record(v);
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 31u);
  EXPECT_EQ(h.percentile(0.0), 0u);
  EXPECT_EQ(h.percentile(1.0), 31u);
  EXPECT_NEAR(h.mean(), 15.5, 1e-9);
}

TEST(Histogram, RelativeErrorBounded) {
  Rng rng(77);
  Histogram h;
  std::vector<std::uint64_t> vals;
  for (int i = 0; i < 50'000; ++i) {
    const std::uint64_t v = 1 + (rng.next_u64() >> (rng.next_below(40) + 14));
    vals.push_back(v);
    h.record(v);
  }
  std::sort(vals.begin(), vals.end());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    const auto exact = vals[static_cast<std::size_t>(q * (vals.size() - 1))];
    const auto approx = h.percentile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.04 + 1.0)
        << "q=" << q;
  }
}

TEST(Histogram, PercentilesAreMonotonic) {
  Rng rng(5);
  Histogram h;
  for (int i = 0; i < 10'000; ++i) h.record(rng.next_below(1'000'000));
  std::uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const auto v = h.percentile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Histogram, MergeEqualsUnion) {
  Rng rng(9);
  Histogram a, b, u;
  for (int i = 0; i < 5'000; ++i) {
    const auto v = rng.next_below(100'000);
    if (i % 2) {
      a.record(v);
    } else {
      b.record(v);
    }
    u.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), u.count());
  EXPECT_EQ(a.min(), u.min());
  EXPECT_EQ(a.max(), u.max());
  for (double q : {0.25, 0.5, 0.75, 0.99}) EXPECT_EQ(a.percentile(q), u.percentile(q));
}

TEST(Histogram, RecordNWeighting) {
  Histogram h;
  h.record_n(10, 99);
  h.record_n(1'000'000, 1);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_LE(h.percentile(0.5), 10u);
  EXPECT_GT(h.percentile(0.999), 900'000u);
}

TEST(Histogram, CdfIsMonotonicAndEndsAtOne) {
  Rng rng(11);
  Histogram h;
  for (int i = 0; i < 10'000; ++i) h.record(rng.next_below(1'000'000) + 1);
  const auto cdf = h.cdf();
  ASSERT_FALSE(cdf.empty());
  double prev_frac = 0;
  std::uint64_t prev_val = 0;
  for (const auto& [v, f] : cdf) {
    EXPECT_GE(v, prev_val);
    EXPECT_GE(f, prev_frac);
    prev_val = v;
    prev_frac = f;
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.record(5);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Summary, ReflectsHistogram) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v * 100);
  const auto s = Summary::of(h);
  EXPECT_EQ(s.count, 1000u);
  EXPECT_GT(s.p90, s.p50);
  EXPECT_GE(s.p99, s.p90);
  EXPECT_GE(s.max, s.p999);
  EXPECT_NEAR(s.mean, 50'050.0, 2000.0);
}

TEST(Format, UsToMs) {
  EXPECT_EQ(us_to_ms(12'345.0), "12.35");
  EXPECT_EQ(us_to_ms(12'345.0, 1), "12.3");
}

TEST(Format, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567890), "1,234,567,890");
}

}  // namespace
}  // namespace paris::stats
