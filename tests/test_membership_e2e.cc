// Elastic membership end to end (DESIGN §11): a DC scheduled to join
// mid-run starts outside every replica set, state-transfers from a donor
// replica once its view change fires, then serves in the new replica sets —
// and the whole history (including the cross-process merge on sockets) stays
// checker-clean. A scheduled leave drains without violations. Both systems
// are covered on real worker threads and on 3 real OS processes over TCP;
// the socket launcher additionally fails the run if a joined DC never served
// a read slice, so "join happened on paper only" cannot pass silently.
//
// Also covered here: the cross-host addressing surface (--hosts) driving a
// 2-process cluster across two DISTINCT loopback IPs, and the versioned
// launcher/child config codec (cfgver header, clear mixed-version errors).
//
// This binary defines its own main(): the socket tests re-exec it as socket
// children, which maybe_run_socket_child() intercepts before gtest runs.

#include <gtest/gtest.h>

#include <string>

#include "runtime/endpoint.h"
#include "workload/experiment.h"
#include "workload/socket_runner.h"

namespace paris::workload {
namespace {

ExperimentConfig memb_config(proto::System sys, runtime::Kind rt,
                             std::uint16_t base_port, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.system = sys;
  cfg.runtime = rt;
  cfg.num_dcs = 3;
  cfg.num_partitions = 4;
  cfg.replication = 2;
  cfg.threads_per_process = 2;
  cfg.workload = WorkloadSpec::read_heavy();
  cfg.workload.keys_per_partition = 500;
  cfg.warmup_us = 200'000;
  // Sockets crawl under sanitizers; give the joiner a longer serving tail.
  cfg.measure_us = rt == runtime::Kind::kSockets ? 1'600'000 : 1'000'000;
  cfg.seed = seed;
  cfg.aws_latency = false;
  cfg.check_consistency = true;
  cfg.codec = sim::CodecMode::kBytes;
  if (rt == runtime::Kind::kSockets) {
    cfg.socket.processes = 3;
    cfg.socket.base_port = base_port;
    cfg.reliable = true;  // beacons converge views; retransmission heals data
  }
  return cfg;
}

// On threads rank R IS the DC; on 3-process sockets rank R owns exactly DC R
// (dc mod 3 == R), so the same event means the same DC everywhere here.
void schedule_join(ExperimentConfig& cfg, std::uint32_t rank, std::uint64_t at_ms) {
  proto::MembershipEvent ev;
  ev.join = true;
  ev.rank = rank;
  ev.at_ms = at_ms;
  cfg.membership.events.push_back(ev);
}

void schedule_leave(ExperimentConfig& cfg, std::uint32_t rank, std::uint64_t at_ms) {
  proto::MembershipEvent ev;
  ev.join = false;
  ev.rank = rank;
  ev.at_ms = at_ms;
  cfg.membership.events.push_back(ev);
}

void expect_clean(const ExperimentResult& res) {
  for (const auto& v : res.violations) ADD_FAILURE() << v;
  EXPECT_GT(res.committed, 100u);
}

// ---------------------------------------------------------------------------
// Threads: join under load, leave under load, both systems.
// ---------------------------------------------------------------------------

TEST(MembershipE2E, ParisJoinOnThreadsIsCheckerClean) {
  auto cfg = memb_config(proto::System::kParis, runtime::Kind::kThreads, 0, 101);
  schedule_join(cfg, 2, 400);
  expect_clean(run_experiment(cfg));
}

TEST(MembershipE2E, BprJoinOnThreadsIsCheckerClean) {
  auto cfg = memb_config(proto::System::kBpr, runtime::Kind::kThreads, 0, 102);
  schedule_join(cfg, 2, 400);
  expect_clean(run_experiment(cfg));
}

TEST(MembershipE2E, ParisLeaveOnThreadsDrainsCleanly) {
  auto cfg = memb_config(proto::System::kParis, runtime::Kind::kThreads, 0, 103);
  schedule_leave(cfg, 1, 700);
  expect_clean(run_experiment(cfg));
}

TEST(MembershipE2E, BprLeaveOnThreadsDrainsCleanly) {
  auto cfg = memb_config(proto::System::kBpr, runtime::Kind::kThreads, 0, 104);
  schedule_leave(cfg, 1, 700);
  expect_clean(run_experiment(cfg));
}

// ---------------------------------------------------------------------------
// Sockets: the same schedules across 3 real processes. The launcher merges
// every child's history, runs the exactness checker on the union, and
// asserts the joined DC actually served slices.
// ---------------------------------------------------------------------------

TEST(MembershipE2E, ParisJoinAcrossThreeProcessesIsCheckerClean) {
  auto cfg = memb_config(proto::System::kParis, runtime::Kind::kSockets, 7951, 105);
  schedule_join(cfg, 2, 500);
  expect_clean(run_experiment(cfg));
}

TEST(MembershipE2E, BprJoinAcrossThreeProcessesIsCheckerClean) {
  auto cfg = memb_config(proto::System::kBpr, runtime::Kind::kSockets, 7961, 106);
  schedule_join(cfg, 2, 500);
  expect_clean(run_experiment(cfg));
}

TEST(MembershipE2E, ParisLeaveAcrossThreeProcessesDrainsCleanly) {
  auto cfg = memb_config(proto::System::kParis, runtime::Kind::kSockets, 7971, 107);
  schedule_leave(cfg, 1, 1000);
  expect_clean(run_experiment(cfg));
}

// ---------------------------------------------------------------------------
// Cross-host addressing: an explicit host list drives a 2-process cluster
// across two DISTINCT loopback IPs — no base_port + rank arithmetic anywhere
// in the path.
// ---------------------------------------------------------------------------

TEST(MembershipE2E, HostListSpansTwoLoopbackIPs) {
  ExperimentConfig cfg;
  cfg.system = proto::System::kParis;
  cfg.runtime = runtime::Kind::kSockets;
  cfg.num_dcs = 2;
  cfg.num_partitions = 4;
  cfg.replication = 2;
  cfg.threads_per_process = 2;
  cfg.workload = WorkloadSpec::read_heavy();
  cfg.workload.keys_per_partition = 500;
  cfg.warmup_us = 200'000;
  cfg.measure_us = 800'000;
  cfg.seed = 108;
  cfg.aws_latency = false;
  cfg.check_consistency = true;
  cfg.reliable = true;
  cfg.socket.processes = 2;
  std::string err;
  ASSERT_TRUE(runtime::parse_host_list("127.0.0.1:7981,127.0.0.2:7981",
                                       &cfg.socket.hosts, &err))
      << err;
  expect_clean(run_experiment(cfg));
}

// ---------------------------------------------------------------------------
// Versioned launcher/child config codec.
// ---------------------------------------------------------------------------

TEST(ConfigCodec, RoundtripsHostsAndMembershipSchedule) {
  auto cfg = memb_config(proto::System::kBpr, runtime::Kind::kSockets, 7421, 42);
  schedule_join(cfg, 2, 500);
  schedule_leave(cfg, 1, 900);
  std::string err;
  ASSERT_TRUE(runtime::parse_host_list("127.0.0.1:9001,10.0.0.2:9002,hostc:9003",
                                       &cfg.socket.hosts, &err))
      << err;

  const std::string text = detail::encode_experiment_config(cfg);
  EXPECT_EQ(text.rfind("cfgver ", 0), 0u) << "cfgver must be the first line";

  ExperimentConfig out;
  ASSERT_TRUE(detail::decode_experiment_config(text, out, &err)) << err;
  ASSERT_EQ(out.socket.hosts.size(), 3u);
  EXPECT_EQ(out.socket.hosts[1].host, "10.0.0.2");
  EXPECT_EQ(out.socket.hosts[1].port, 9002);
  EXPECT_EQ(out.socket.hosts[2].str(), "hostc:9003");
  ASSERT_EQ(out.membership.events.size(), 2u);
  EXPECT_TRUE(out.membership.events[0].join);
  EXPECT_EQ(out.membership.events[0].rank, 2u);
  EXPECT_EQ(out.membership.events[0].at_ms, 500u);
  EXPECT_FALSE(out.membership.events[1].join);
  EXPECT_EQ(out.membership.events[1].rank, 1u);
  EXPECT_EQ(out.membership.events[1].at_ms, 900u);
}

TEST(ConfigCodec, MissingHeaderFailsWithClearMessage) {
  const auto cfg = memb_config(proto::System::kParis, runtime::Kind::kSockets, 7421, 1);
  std::string text = detail::encode_experiment_config(cfg);
  text = text.substr(text.find('\n') + 1);  // strip the cfgver line

  ExperimentConfig out;
  std::string err;
  EXPECT_FALSE(detail::decode_experiment_config(text, out, &err));
  EXPECT_NE(err.find("cfgver"), std::string::npos) << err;
  EXPECT_NE(err.find("older"), std::string::npos) << err;
}

TEST(ConfigCodec, VersionSkewNamesBothVersions) {
  const auto cfg = memb_config(proto::System::kParis, runtime::Kind::kSockets, 7421, 1);
  std::string text = detail::encode_experiment_config(cfg);
  const std::size_t eol = text.find('\n');
  text = "cfgver 999\n" + text.substr(eol + 1);

  ExperimentConfig out;
  std::string err;
  EXPECT_FALSE(detail::decode_experiment_config(text, out, &err));
  EXPECT_NE(err.find("v999"), std::string::npos) << err;
  EXPECT_NE(err.find("version skew"), std::string::npos) << err;
}

TEST(ConfigCodec, UnknownKeyWithinMatchingVersionStillFails) {
  const auto cfg = memb_config(proto::System::kParis, runtime::Kind::kSockets, 7421, 1);
  const std::string text =
      detail::encode_experiment_config(cfg) + "some_future_knob 7\n";

  ExperimentConfig out;
  std::string err;
  EXPECT_FALSE(detail::decode_experiment_config(text, out, &err));
  EXPECT_NE(err.find("some_future_knob"), std::string::npos) << err;
}

}  // namespace
}  // namespace paris::workload

// The socket tests re-exec this binary as children; the hook must intercept
// them before gtest parses argv (it exits in the child).
int main(int argc, char** argv) {
  paris::workload::maybe_run_socket_child(argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
