// Workload-aware placement (DESIGN §14).
//
// Unit half: the Space-Saving access sketch, the NuCut-style assignment
// scores, and the migration-target chooser.
//
// E2E half: PaRiS and BPR clusters under open-loop hot-spot load migrate
// their 10 hottest keys mid-run — on the thread runtime and on 3 real
// processes over TCP — and the exactness/causality/session checkers stay
// green through fence, flush, drain, chain transfer and cutover. A seeded
// fault (migrate_fault_skip_copy: the chain transfer ships an empty chain)
// must surface as checker violations, proving the checkers actually watch
// the migration path.
//
// This binary defines its own main(): the socket e2e tests re-exec it as
// children, which maybe_run_socket_child() intercepts before gtest runs.

#include <gtest/gtest.h>

#include <functional>

#include "cluster/membership.h"
#include "placement/placement.h"
#include "workload/experiment.h"
#include "workload/socket_runner.h"

namespace paris::placement {
namespace {

std::uint32_t bit(DcId d) { return 1u << d; }

// ---------------------------------------------------------------------------
// Space-Saving sketch.
// ---------------------------------------------------------------------------

TEST(Sketch, CountsMasksAndDeterministicTop) {
  AccessSketch s(4);
  for (int i = 0; i < 3; ++i) s.note(/*k=*/11, /*dc=*/0);
  for (int i = 0; i < 5; ++i) s.note(22, 1);
  s.note(33, 0);
  s.note(33, 2);

  EXPECT_EQ(s.total(), 10u);
  const auto top = s.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 22u);
  EXPECT_EQ(top[0].count, 5u);
  EXPECT_EQ(top[0].dc_mask, bit(1));
  EXPECT_EQ(top[1].key, 11u);
  EXPECT_EQ(top[1].dc_mask, bit(0));
  // 33 saw two DCs.
  EXPECT_EQ(s.top(3)[2].dc_mask, bit(0) | bit(2));
}

TEST(Sketch, TopBreaksCountTiesByKeyAscending) {
  AccessSketch s(8);
  s.note(7, 0);
  s.note(3, 0);
  s.note(5, 0);
  const auto top = s.top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, 3u);
  EXPECT_EQ(top[1].key, 5u);
  EXPECT_EQ(top[2].key, 7u);
}

TEST(Sketch, EvictionHandsVictimCountToNewcomer) {
  AccessSketch s(2);
  for (int i = 0; i < 5; ++i) s.note(1, 0);
  for (int i = 0; i < 2; ++i) s.note(2, 1);
  s.note(3, 2);  // full: evicts key 2 (min count 2); newcomer inherits 2+1
  const auto top = s.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 1u);
  EXPECT_EQ(top[1].key, 3u);
  EXPECT_EQ(top[1].count, 3u) << "Space-Saving: victim count + 1 is the error bound";
  EXPECT_EQ(top[1].dc_mask, bit(2)) << "the mask does NOT carry over";
}

TEST(Sketch, MergeFoldsReportedEntries) {
  AccessSketch s(8);
  s.note(1, 0);
  s.merge({{1, 9, bit(2)}, {2, 4, bit(1)}});
  const auto top = s.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 1u);
  EXPECT_EQ(top[0].count, 10u);
  EXPECT_EQ(top[0].dc_mask, bit(0) | bit(2));
  EXPECT_EQ(top[1].count, 4u);
  EXPECT_EQ(s.total(), 14u);
}

// ---------------------------------------------------------------------------
// Assignment scoring and target choice.
// ---------------------------------------------------------------------------

TEST(Score, ReplicateFactorCountsAccessAndStorageDcs) {
  const cluster::Topology topo({/*dcs=*/2, /*partitions=*/2, /*replication=*/1});
  const DcId dc_of_p1 = topo.replicas(1)[0];
  // One key, accessed ONLY from partition 1's replica DC.
  const std::vector<AccessSketch::Entry> keys = {{/*key=*/100, /*count=*/10, bit(dc_of_p1)}};

  // Assigned to partition 0: the accessing DC and the storing DC differ.
  const auto misplaced = score_assignment(topo, keys, [](Key) { return PartitionId{0}; });
  EXPECT_DOUBLE_EQ(misplaced.replicate_factor, 2.0);
  // Assigned to partition 1: access is fully local.
  const auto placed = score_assignment(topo, keys, [](Key) { return PartitionId{1}; });
  EXPECT_DOUBLE_EQ(placed.replicate_factor, 1.0);
  // All load on one of two partitions: relative stddev is exactly 1.
  EXPECT_DOUBLE_EQ(placed.load_relative_stddev, 1.0);

  // Balanced: equal counts on both partitions.
  const std::vector<AccessSketch::Entry> two = {{100, 10, bit(dc_of_p1)}, {101, 10, bit(dc_of_p1)}};
  const auto balanced =
      score_assignment(topo, two, [](Key k) { return static_cast<PartitionId>(k % 2); });
  EXPECT_DOUBLE_EQ(balanced.load_relative_stddev, 0.0);
}

TEST(Choose, PrefersReplicaCoverageThenLoadThenId) {
  const cluster::Topology topo({/*dcs=*/3, /*partitions=*/3, /*replication=*/1});
  // Find the partition stored in DC 2: coverage beats any load imbalance.
  PartitionId in_dc2 = 0;
  for (PartitionId p = 0; p < 3; ++p)
    if (topo.replicas(p)[0] == 2) in_dc2 = p;
  AccessSketch::Entry from_dc2{/*key=*/5, /*count=*/100, bit(2)};
  EXPECT_EQ(choose_partition(topo, from_dc2, {1000, 1000, 1000}), in_dc2);

  // Accessed from everywhere, R=1: every partition covers exactly one DC —
  // a full tie, so the least-loaded partition wins...
  AccessSketch::Entry everywhere{5, 100, bit(0) | bit(1) | bit(2)};
  EXPECT_EQ(choose_partition(topo, everywhere, {5, 1, 7}), PartitionId{1});
  // ...and equal loads fall back to the lowest partition id (deterministic).
  EXPECT_EQ(choose_partition(topo, everywhere, {4, 4, 4}), PartitionId{0});
}

// ---------------------------------------------------------------------------
// E2E: online migration of the 10 hottest keys under open-loop load.
// ---------------------------------------------------------------------------

using workload::ExperimentConfig;
using workload::ExperimentResult;
using workload::run_experiment;

ExperimentConfig migration_config(proto::System sys, runtime::Kind rt, std::uint16_t base_port,
                                  std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.system = sys;
  cfg.runtime = rt;
  cfg.num_dcs = 3;
  cfg.num_partitions = 6;
  cfg.replication = 2;
  cfg.threads_per_process = 4;
  if (rt == runtime::Kind::kSockets) {
    cfg.socket.processes = 3;
    cfg.socket.base_port = base_port;
  }
  // Hot-spot skew accessed from every DC: each hot key's current partition
  // carries its (large) sketched load, so the balance tie-break always finds
  // a better home and all top-k moves are real.
  cfg.workload.key_dist = workload::KeyDistKind::kHotspot;
  cfg.workload.keys_per_partition = 1000;
  cfg.workload.multi_dc_ratio = 1.0;
  cfg.openloop.enabled = true;
  cfg.openloop.arrival_rate = 2500;
  cfg.protocol.placement_policy = static_cast<std::uint8_t>(Policy::kWorkloadAware);
  cfg.protocol.migrate_top_k = 10;
  cfg.protocol.migrate_at_us = 400'000;
  cfg.warmup_us = 300'000;
  cfg.measure_us = 2'200'000;
  cfg.check_consistency = true;
  cfg.aws_latency = false;
  cfg.seed = seed;
  return cfg;
}

void expect_migrated_clean(const ExperimentResult& res) {
  for (const auto& v : res.violations) ADD_FAILURE() << "violation: " << v;
  EXPECT_GT(res.committed, 0u);
  // The controller queues the top-10 hottest; a key already sitting on its
  // best partition (greedy load bookkeeping) legitimately stays, but under
  // this all-DCs hot-spot load at least 8 always have a strictly better home.
  EXPECT_GE(res.keys_migrated, 8u) << "the hottest keys must complete their moves";
  EXPECT_LE(res.keys_migrated, 10u);
  EXPECT_GT(res.migrate_chains_sent, 0u);
  EXPECT_EQ(res.migrate_chains_installed, res.migrate_chains_sent)
      << "every shipped chain must be installed at a destination replica";
  EXPECT_GT(res.sketch_reports, 0u);
  // Before/after scores were computed (fixed-point shipped across children).
  EXPECT_GT(res.replicate_factor_before, 0.0);
  EXPECT_GT(res.replicate_factor_after, 0.0);
  EXPECT_GT(res.load_rel_stddev_before, 0.0);
  EXPECT_GT(res.load_rel_stddev_after, 0.0);
}

TEST(PlacementE2E, ParisThreadsMigratesHotKeysCheckerClean) {
  expect_migrated_clean(
      run_experiment(migration_config(proto::System::kParis, runtime::Kind::kThreads, 0, 71)));
}

TEST(PlacementE2E, BprThreadsMigratesHotKeysCheckerClean) {
  expect_migrated_clean(
      run_experiment(migration_config(proto::System::kBpr, runtime::Kind::kThreads, 0, 72)));
}

TEST(PlacementE2E, ParisSocketsMigratesHotKeysCheckerClean) {
  expect_migrated_clean(
      run_experiment(migration_config(proto::System::kParis, runtime::Kind::kSockets, 7891, 73)));
}

TEST(PlacementE2E, BprSocketsMigratesHotKeysCheckerClean) {
  expect_migrated_clean(
      run_experiment(migration_config(proto::System::kBpr, runtime::Kind::kSockets, 7895, 74)));
}

// Teeth check: a migration that "completes" without copying the chain MUST
// be caught. The seeded fault ships an empty chain to the destination, so
// post-cutover snapshot reads of the hottest keys see a hole in history.
TEST(PlacementE2E, SkipCopyFaultIsCaughtByCheckers) {
  auto cfg = migration_config(proto::System::kParis, runtime::Kind::kSim, 0, 75);
  cfg.measure_us = 3'000'000;
  cfg.protocol.migrate_fault_skip_copy = true;
  const auto res = run_experiment(cfg);
  EXPECT_GT(res.keys_migrated, 0u) << "the faulty migration must still cut over";
  EXPECT_FALSE(res.violations.empty())
      << "an uncopied chain went unnoticed: the checkers have no teeth";
}

}  // namespace
}  // namespace paris::placement

// The e2e tests above re-exec this binary as socket children; the hook must
// intercept them before gtest parses argv (it exits in the child).
int main(int argc, char** argv) {
  paris::workload::maybe_run_socket_child(argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
