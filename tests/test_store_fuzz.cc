// Model-based fuzz of the multi-version store: random interleavings of
// out-of-order applies, duplicates and GC are compared against a trivial
// reference model. Any divergence in snapshot reads (for snapshots at or
// above the GC watermark) is a storage bug.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.h"
#include "storage/mv_store.h"

namespace paris::store {
namespace {

struct ModelVersion {
  Timestamp ut;
  TxId tx;
  DcId sr;
  Value v;
  std::int64_t delta = 0;  ///< counter payload (kind != 0)
  std::uint8_t kind = 0;
};

/// Reference: plain sorted vector per key, linear scans.
class ModelStore {
 public:
  void apply(Key k, const ModelVersion& ver) {
    auto& chain = model_[k];
    for (const auto& existing : chain) {
      if (existing.ut == ver.ut && existing.tx == ver.tx && existing.sr == ver.sr)
        return;  // duplicate
    }
    chain.push_back(ver);
    std::sort(chain.begin(), chain.end(), [](const ModelVersion& a, const ModelVersion& b) {
      if (a.ut != b.ut) return a.ut < b.ut;
      if (a.tx != b.tx) return a.tx < b.tx;
      return a.sr < b.sr;
    });
  }

  const ModelVersion* read(Key k, Timestamp snap) const {
    const auto it = model_.find(k);
    if (it == model_.end()) return nullptr;
    const ModelVersion* best = nullptr;
    for (const auto& v : it->second)
      if (v.ut <= snap) best = &v;
    return best;
  }

  /// Counter semantics over the full (never GC'd) history: sum of deltas
  /// since the last register base at or below the snapshot.
  std::int64_t read_counter(Key k, Timestamp snap) const {
    const auto it = model_.find(k);
    if (it == model_.end()) return 0;
    std::int64_t sum = 0;
    for (const auto& v : it->second) {
      if (v.ut > snap) break;
      if (v.kind == 0) {
        sum = v.v.empty() ? 0 : std::strtoll(v.v.c_str(), nullptr, 10);
      } else {
        sum += v.delta;
      }
    }
    return sum;
  }

  std::vector<Key> keys() const {
    std::vector<Key> out;
    for (const auto& [k, chain] : model_)
      if (!chain.empty()) out.push_back(k);
    return out;
  }

 private:
  std::map<Key, std::vector<ModelVersion>> model_;
};

class StoreFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(StoreFuzz, MatchesReferenceModelUnderRandomOpsAndGc) {
  Rng rng(GetParam());
  MvStore store;
  ModelStore model;
  Timestamp max_watermark = kTsZero;

  // Counter keys live in their own range (100+): registers and counters are
  // never mixed on one key, matching the protocol's documented contract.
  const auto counter_key = [&] { return 100 + rng.next_below(12); };

  const int kOps = 4000;
  for (int op = 0; op < kOps; ++op) {
    const auto dice = rng.next_below(100);
    if (dice < 55) {
      // Random apply: sometimes far in the past/future, sometimes a
      // duplicate of an existing coordinate.
      const Key k = rng.next_below(24);
      const Timestamp ut = Timestamp::from_parts(1 + rng.next_below(5000), 0);
      const TxId tx = TxId::make(1 + static_cast<NodeId>(rng.next_below(4)),
                                 static_cast<std::uint32_t>(rng.next_below(800)));
      const DcId sr = static_cast<DcId>(rng.next_below(3));
      const Value v = "v" + std::to_string(rng.next_u64() & 0xffff);
      store.apply(k, v, ut, tx, sr);
      model.apply(k, ModelVersion{ut, tx, sr, v, 0, 0});
    } else if (dice < 70) {
      // Counter ops: random binary deltas (occasionally a register base),
      // duplicates included, checked against the model's full-history sum.
      // Counter applies stay above the GC watermark — the protocol invariant
      // (ct > watermark, which trails the oldest active snapshot); a delta
      // below the fold horizon would be legitimately forgotten by GC.
      const Key k = counter_key();
      const Timestamp ut =
          Timestamp::from_parts(max_watermark.physical_us() + 1 + rng.next_below(5000), 0);
      const TxId tx = TxId::make(1 + static_cast<NodeId>(rng.next_below(4)),
                                 static_cast<std::uint32_t>(rng.next_below(800)));
      const DcId sr = static_cast<DcId>(rng.next_below(3));
      if (rng.next_below(10) == 0) {
        const Value base = std::to_string(rng.next_below(1000));
        store.apply(k, base, ut, tx, sr, /*kind=*/0);
        model.apply(k, ModelVersion{ut, tx, sr, base, 0, 0});
      } else {
        const auto delta = static_cast<std::int64_t>(rng.next_below(20)) - 10;
        store.apply(k, Value{}, delta, ut, tx, sr, /*kind=*/1);
        model.apply(k, ModelVersion{ut, tx, sr, Value{}, delta, 1});
      }
      const Timestamp snap =
          std::max(max_watermark, Timestamp::from_parts(rng.next_below(6000), 0));
      ASSERT_EQ(store.read_counter(k, snap).first, model.read_counter(k, snap))
          << "counter sum diverged, key " << k << " snap " << to_string(snap);
    } else if (dice < 90) {
      // Random snapshot read of a random key, only at or above the
      // watermark (below it, GC legitimately forgets).
      const Key k = rng.next_below(24);
      const Timestamp snap =
          std::max(max_watermark, Timestamp::from_parts(rng.next_below(6000), 0));
      const Version* got = store.read(k, snap);
      const ModelVersion* want = model.read(k, snap);
      if (want == nullptr) {
        ASSERT_EQ(got, nullptr) << "phantom version, key " << k;
      } else {
        ASSERT_NE(got, nullptr) << "missing version, key " << k << " snap "
                                << to_string(snap);
        ASSERT_EQ(got->ut, want->ut);
        ASSERT_EQ(got->tx, want->tx);
        ASSERT_EQ(got->sr, want->sr);
        if (k < 100) {
          ASSERT_EQ(got->v, want->v);  // GC folds counter values
        }
      }
    } else {
      // GC at a random watermark (monotonically increasing like the real
      // aggregated watermark).
      max_watermark =
          std::max(max_watermark, Timestamp::from_parts(rng.next_below(4000), 0));
      store.gc(max_watermark);
    }
  }

  // Final counter sweep: sums must match the model at and above the
  // watermark despite any interleaved GC folds and duplicate applies.
  for (Key k = 100; k < 112; ++k) {
    for (std::uint64_t s : {500ull, 2500ull, 9999ull}) {
      const Timestamp snap = std::max(max_watermark, Timestamp::from_parts(s, 0));
      ASSERT_EQ(store.read_counter(k, snap).first, model.read_counter(k, snap))
          << "final counter sweep diverged, key " << k;
    }
  }

  // Final full sweep at several snapshots.
  for (const Key k : model.keys()) {
    for (std::uint64_t s : {500ull, 2500ull, 9999ull}) {
      const Timestamp snap = std::max(max_watermark, Timestamp::from_parts(s, 0));
      const Version* got = store.read(k, snap);
      const ModelVersion* want = model.read(k, snap);
      ASSERT_EQ(got == nullptr, want == nullptr) << k;
      if (want != nullptr) {
        EXPECT_EQ(got->ut, want->ut) << k;
        if (k < 100) {
          EXPECT_EQ(got->v, want->v) << k;  // GC folds counter values
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreFuzz,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace paris::store
