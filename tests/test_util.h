#pragma once
// Shared test helpers: synchronous client wrapper and small deployment
// factories (uniform latency for speed and easy reasoning; kBytes codec so
// every test also exercises serialization).

#include <gtest/gtest.h>

#include <vector>

#include "proto/sim_access.h"

namespace paris::test {

using proto::Client;
using proto::Deployment;
using proto::DeploymentConfig;
using proto::System;
using wire::Item;
using wire::WriteKV;

/// Small deployment config: M DCs, N partitions, R replicas, uniform
/// inter-DC latency (default 20ms one-way), intra-DC 150µs.
inline DeploymentConfig small_config(System sys, std::uint32_t dcs, std::uint32_t partitions,
                                     std::uint32_t replication, std::uint64_t seed = 1,
                                     sim::SimTime inter_dc_us = 20'000) {
  DeploymentConfig cfg;
  cfg.system = sys;
  cfg.topo = {dcs, partitions, replication};
  cfg.aws_latency = false;
  cfg.uniform_inter_dc_us = inter_dc_us;
  cfg.codec = sim::CodecMode::kBytes;
  cfg.seed = seed;
  return cfg;
}

/// Runs the simulation until `done` becomes true (bounded by max_steps so a
/// protocol bug fails the test instead of hanging it).
inline void run_until_flag(sim::Simulation& sim, const bool& done,
                           std::uint64_t max_steps = 50'000'000) {
  std::uint64_t steps = 0;
  while (!done) {
    ASSERT_TRUE(sim.step()) << "simulation drained before operation completed";
    ASSERT_LT(++steps, max_steps) << "operation did not complete (deadlock?)";
  }
}

/// Blocking facade over the continuation-based client API.
class SyncClient {
 public:
  SyncClient(sim::Simulation& sim, Client& c) : sim_(sim), c_(c) {}

  Timestamp start() {
    bool done = false;
    Timestamp snap;
    c_.start_tx([&](TxId, Timestamp s) {
      snap = s;
      done = true;
    });
    run_until_flag(sim_, done);
    return snap;
  }

  std::vector<Item> read(std::vector<Key> keys) {
    bool done = false;
    std::vector<Item> out;
    c_.read(std::move(keys), [&](std::vector<Item> items) {
      out = std::move(items);
      done = true;
    });
    run_until_flag(sim_, done);
    return out;
  }

  Item read1(Key k) { return read({k})[0]; }

  void write(Key k, Value v) { c_.write({WriteKV{k, std::move(v)}}); }
  void write(std::vector<WriteKV> kvs) { c_.write(std::move(kvs)); }

  Timestamp commit() {
    bool done = false;
    Timestamp ct;
    c_.commit([&](Timestamp t) {
      ct = t;
      done = true;
    });
    run_until_flag(sim_, done);
    return ct;
  }

  /// start + write + commit in one shot; returns the commit timestamp.
  Timestamp put(std::vector<WriteKV> kvs) {
    start();
    write(std::move(kvs));
    return commit();
  }

  Client& raw() { return c_; }

 private:
  sim::Simulation& sim_;
  Client& c_;
};

/// Let replication, gossip and the UST settle (a few gossip rounds plus the
/// largest WAN round trip).
inline void settle(Deployment& dep, sim::SimTime us = 300'000) { dep.run_for(us); }

}  // namespace paris::test
