// scenario_runner — seeded adversarial fault-schedule fuzzing (DESIGN §13).
//
// Fuzz mode (default): draws N seeded scenarios (DC partitions, WAN link
// episodes, chaos, live channel fuzzing, clock skew, rank kills), runs each
// through run_experiment with the consistency checker on, and expects every
// one to converge checker-clean. A violating schedule is greedily shrunk to
// a minimal repro (every remaining event is load-bearing) and written as a
// corpus file for CI to replay forever.
//
// Replay mode (--replay/--replay-dir): re-runs committed corpus scenarios
// and fails if any violates again.
//
// Examples:
//   scenario_runner --seeds=25 --system=both --runtime=threads
//   scenario_runner --seeds=5 --runtime=sockets --listen-base-port=7850
//   scenario_runner --replay-dir=tests/corpus
//   scenario_runner --seeds=6 --emit-corpus=tests/corpus   # pin green seeds

#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/scenario.h"
#include "workload/socket_runner.h"

using namespace paris;

namespace {

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr std::uint64_t kDefaultTimeScale = 5;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr std::uint64_t kDefaultTimeScale = 5;
#else
constexpr std::uint64_t kDefaultTimeScale = 1;
#endif
#else
constexpr std::uint64_t kDefaultTimeScale = 1;
#endif

[[noreturn]] void usage(const char* argv0, int exit_code = 2) {
  std::printf(
      "usage: %s [options]\n"
      "  --seeds=N               scenarios per (system, runtime) cell (default 20)\n"
      "  --seed-base=S           first seed (default 1)\n"
      "  --system=paris|bpr|both protocol(s) under test (default both)\n"
      "  --runtime=threads|sockets|both\n"
      "                          backend(s) to fuzz (default threads)\n"
      "  --no-minimize           keep violating schedules as drawn (default:\n"
      "                          greedy event-drop shrink to a minimal repro)\n"
      "  --corpus-out=DIR        write violating (shrunk) schedules here\n"
      "                          (default scenario-corpus)\n"
      "  --emit-corpus=DIR       also write every CLEAN schedule here (used to\n"
      "                          pin regression seeds into tests/corpus)\n"
      "  --replay=FILE           replay one corpus file (repeatable; disables\n"
      "                          fuzz mode)\n"
      "  --replay-dir=DIR        replay every *.scenario file in DIR\n"
      "  --print                 print each schedule before running it\n"
      "  --time-scale=K          stretch all schedule windows by K (default %llu;\n"
      "                          sanitizer builds auto-scale)\n"
      "  --listen-base-port=P    sockets: child base port (default 7800)\n"
      "  --socket-dir=PATH       sockets: per-child logs + results (default:\n"
      "                          fresh temp dirs)\n"
      "  --help                  this text\n",
      argv0, static_cast<unsigned long long>(kDefaultTimeScale));
  std::exit(exit_code);
}

bool parse_flag(const char* arg, const char* name, const char** value) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  if (arg[n] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[n] == '=') {
    *value = arg + n + 1;
    return true;
  }
  return false;
}

struct RunnerOptions {
  std::uint64_t seeds = 20;
  std::uint64_t seed_base = 1;
  std::vector<proto::System> systems{proto::System::kParis, proto::System::kBpr};
  std::vector<runtime::Kind> runtimes{runtime::Kind::kThreads};
  bool minimize = true;
  bool print = false;
  std::string corpus_out = "scenario-corpus";
  std::string emit_corpus;
  std::vector<std::string> replay_files;
  std::uint64_t time_scale = kDefaultTimeScale;
  std::uint16_t base_port = 7800;
  std::string socket_dir;
};

struct RunOutcome {
  bool clean = false;
  std::vector<std::string> violations;
  workload::ExperimentResult res;
};

/// One full experiment for the scenario; socket fields the scenario does not
/// own (port, artifact dir) come from the runner options.
RunOutcome run_scenario(const scenario::Scenario& s, const RunnerOptions& opt,
                        const char* tag) {
  workload::ExperimentConfig cfg;
  scenario::apply_scenario(s, cfg);
  if (s.runtime == runtime::Kind::kSockets) {
    cfg.socket.base_port = opt.base_port;
    if (!opt.socket_dir.empty()) {
      cfg.socket.dir = opt.socket_dir + "/" + tag;
    }
  }
  RunOutcome out;
  out.res = workload::run_experiment(cfg);
  out.violations = out.res.violations;
  out.clean = out.violations.empty();
  return out;
}

void print_outcome(const scenario::Scenario& s, const RunOutcome& o) {
  const auto& r = o.res;
  std::printf("  %s: %s committed=%llu retx=%llu wan[shaped=%llu ge_drop=%llu "
              "bw_q=%llu dup=%llu] fuzz[mut=%llu rej=%llu acc=%llu replay=%llu] "
              "partition_drop=%llu respawns=%llu\n",
              scenario::describe(s).c_str(), o.clean ? "OK" : "VIOLATION",
              static_cast<unsigned long long>(r.committed),
              static_cast<unsigned long long>(r.reliable.retransmits),
              static_cast<unsigned long long>(r.wan.shaped),
              static_cast<unsigned long long>(r.wan.ge_dropped),
              static_cast<unsigned long long>(r.wan.bw_queued),
              static_cast<unsigned long long>(r.wan.duplicated),
              static_cast<unsigned long long>(r.fuzz.mutated),
              static_cast<unsigned long long>(r.fuzz.rejected_validate),
              static_cast<unsigned long long>(r.fuzz.accepted_validate),
              static_cast<unsigned long long>(r.fuzz.replays),
              static_cast<unsigned long long>(r.partition.dropped),
              static_cast<unsigned long long>(r.respawns));
  std::fflush(stdout);
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
  out.flush();
  return out.good();
}

void mkdir_p(const std::string& dir) {
  std::string cmd = "mkdir -p '" + dir + "'";
  (void)std::system(cmd.c_str());
}

std::string corpus_name(const scenario::Scenario& s) {
  std::ostringstream o;
  o << "seed-" << s.seed << '-' << (s.system == proto::System::kBpr ? "bpr" : "paris")
    << '-' << (s.runtime == runtime::Kind::kSockets ? "sockets" : "threads")
    << ".scenario";
  return o.str();
}

/// Fuzz one (seed, system, runtime) cell; returns true when checker-clean.
bool fuzz_one(std::uint64_t seed, proto::System sys, runtime::Kind rt,
              const RunnerOptions& opt) {
  scenario::ScenarioOptions gen;
  gen.system = sys;
  gen.runtime = rt;
  gen.time_scale = opt.time_scale;
  scenario::Scenario s = scenario::generate_scenario(seed, gen);
  if (opt.print) std::printf("%s", scenario::encode_scenario(s).c_str());
  const std::string tag = corpus_name(s);
  RunOutcome o = run_scenario(s, opt, tag.c_str());
  print_outcome(s, o);
  if (o.clean) {
    if (!opt.emit_corpus.empty()) {
      mkdir_p(opt.emit_corpus);
      write_file(opt.emit_corpus + "/" + tag, scenario::encode_scenario(s));
    }
    return true;
  }
  for (const auto& v : o.violations) std::printf("    %s\n", v.c_str());

  scenario::Scenario repro = s;
  if (opt.minimize && !s.events.empty()) {
    std::uint32_t probes = 0;
    repro = scenario::shrink_scenario(
        s,
        [&opt, &tag](const scenario::Scenario& cand) {
          return !run_scenario(cand, opt, tag.c_str()).clean;
        },
        &probes);
    std::printf("  shrunk %zu -> %zu events in %u probes\n", s.events.size(),
                repro.events.size(), probes);
  }
  mkdir_p(opt.corpus_out);
  std::ostringstream text;
  text << scenario::encode_scenario(repro);
  text << "# violating schedule";
  if (opt.minimize) text << " (minimized)";
  text << "; first violation:\n";
  text << "# " << (o.violations.empty() ? "(none recorded)" : o.violations.front())
       << '\n';
  const std::string path = opt.corpus_out + "/" + tag;
  write_file(path, text.str());
  std::printf("  repro written to %s\n", path.c_str());
  return false;
}

bool replay_one(const std::string& path, const RunnerOptions& opt) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  scenario::Scenario s;
  if (!in.good() && ss.str().empty()) {
    std::fprintf(stderr, "replay: cannot read %s\n", path.c_str());
    return false;
  }
  if (!scenario::decode_scenario(ss.str(), s)) {
    std::fprintf(stderr, "replay: malformed scenario file %s\n", path.c_str());
    return false;
  }
  // Corpus files are pinned at real-time scale; sanitizer builds (or an
  // explicit --time-scale) stretch every window before running.
  scenario::scale_time(s, opt.time_scale);
  std::printf("replay %s\n", path.c_str());
  const std::string tag = "replay-" + corpus_name(s);
  const RunOutcome o = run_scenario(s, opt, tag.c_str());
  print_outcome(s, o);
  for (const auto& v : o.violations) std::printf("    %s\n", v.c_str());
  return o.clean;
}

}  // namespace

int main(int argc, char** argv) {
  // Socket children re-exec this binary; the hook runs their share of the
  // experiment and exits. A normal invocation falls straight through.
  workload::maybe_run_socket_child(argc, argv);

  RunnerOptions opt;
  std::string replay_dir;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (parse_flag(argv[i], "--seeds", &v) && v) {
      opt.seeds = std::strtoull(v, nullptr, 10);
    } else if (parse_flag(argv[i], "--seed-base", &v) && v) {
      opt.seed_base = std::strtoull(v, nullptr, 10);
    } else if (parse_flag(argv[i], "--system", &v) && v) {
      if (std::string(v) == "paris") {
        opt.systems = {proto::System::kParis};
      } else if (std::string(v) == "bpr") {
        opt.systems = {proto::System::kBpr};
      } else if (std::string(v) == "both") {
        opt.systems = {proto::System::kParis, proto::System::kBpr};
      } else {
        usage(argv[0]);
      }
    } else if (parse_flag(argv[i], "--runtime", &v) && v) {
      if (std::string(v) == "threads") {
        opt.runtimes = {runtime::Kind::kThreads};
      } else if (std::string(v) == "sockets") {
        opt.runtimes = {runtime::Kind::kSockets};
      } else if (std::string(v) == "both") {
        opt.runtimes = {runtime::Kind::kThreads, runtime::Kind::kSockets};
      } else {
        usage(argv[0]);
      }
    } else if (parse_flag(argv[i], "--no-minimize", &v)) {
      opt.minimize = false;
    } else if (parse_flag(argv[i], "--corpus-out", &v) && v) {
      opt.corpus_out = v;
    } else if (parse_flag(argv[i], "--emit-corpus", &v) && v) {
      opt.emit_corpus = v;
    } else if (parse_flag(argv[i], "--replay", &v) && v) {
      opt.replay_files.push_back(v);
    } else if (parse_flag(argv[i], "--replay-dir", &v) && v) {
      replay_dir = v;
    } else if (parse_flag(argv[i], "--print", &v)) {
      opt.print = true;
    } else if (parse_flag(argv[i], "--time-scale", &v) && v) {
      opt.time_scale = std::strtoull(v, nullptr, 10);
    } else if (parse_flag(argv[i], "--listen-base-port", &v) && v) {
      const long port = std::atol(v);
      if (port <= 0 || port > 65000) {
        std::fprintf(stderr, "error: --listen-base-port must be in [1, 65000]\n");
        return 2;
      }
      opt.base_port = static_cast<std::uint16_t>(port);
    } else if (parse_flag(argv[i], "--socket-dir", &v) && v) {
      opt.socket_dir = v;
    } else if (parse_flag(argv[i], "--help", &v)) {
      usage(argv[0], 0);
    } else {
      usage(argv[0]);
    }
  }

  if (!replay_dir.empty()) {
    DIR* d = opendir(replay_dir.c_str());
    if (d == nullptr) {
      std::fprintf(stderr, "replay: cannot open directory %s\n", replay_dir.c_str());
      return 2;
    }
    std::vector<std::string> found;
    while (dirent* ent = readdir(d)) {
      const std::string name = ent->d_name;
      if (name.size() > 9 && name.substr(name.size() - 9) == ".scenario") {
        found.push_back(replay_dir + "/" + name);
      }
    }
    closedir(d);
    std::sort(found.begin(), found.end());  // deterministic replay order
    opt.replay_files.insert(opt.replay_files.end(), found.begin(), found.end());
    if (found.empty()) {
      std::fprintf(stderr, "replay: no *.scenario files in %s\n", replay_dir.c_str());
      return 2;
    }
  }

  if (!opt.replay_files.empty()) {
    int failures = 0;
    for (const auto& f : opt.replay_files) {
      if (!replay_one(f, opt)) ++failures;
    }
    std::printf("replayed %zu corpus scenarios, %d violating\n", opt.replay_files.size(),
                failures);
    return failures == 0 ? 0 : 1;
  }

  std::uint64_t total = 0, failed = 0;
  for (const auto rt : opt.runtimes) {
    for (const auto sys : opt.systems) {
      std::printf("fuzzing %s/%s: seeds %llu..%llu\n", proto::system_name(sys),
                  rt == runtime::Kind::kSockets ? "sockets" : "threads",
                  static_cast<unsigned long long>(opt.seed_base),
                  static_cast<unsigned long long>(opt.seed_base + opt.seeds - 1));
      for (std::uint64_t seed = opt.seed_base; seed < opt.seed_base + opt.seeds; ++seed) {
        ++total;
        if (!fuzz_one(seed, sys, rt, opt)) ++failed;
      }
    }
  }
  std::printf("%llu scenarios, %llu violating%s\n", static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(failed),
              failed != 0 ? " (repros in corpus dir)" : "");
  return failed == 0 ? 0 : 1;
}
