#!/usr/bin/env python3
"""Bench regression guard: compare a freshly measured BENCH_micro JSON
against the committed baseline and fail on a material regression.

Usage: bench_guard.py BASELINE.json CURRENT.json [--tolerance 0.30]

Rules (per row, matched by benchmark name):
  * throughput: current ops_per_sec must be >= (1 - tolerance) * baseline.
    The default 30% tolerance absorbs CI-runner noise and the committed
    baseline being measured on different hardware; a hot-path regression
    (e.g. an allocation sneaking back into a steady-state loop) blows well
    past it.
  * ultra-fast rows (baseline < 5 ns/op, e.g. hlc_tick): binary code
    layout alone moves such single-instruction-chain loops by >30%
    (documented in BENCH_micro.json), so their throughput floor is
    halved-again (tolerance doubled, capped at 60%). Their allocation rule
    still applies at full strength.
  * allocations: a row whose baseline is allocation-free (< 0.01 allocs/op)
    must stay allocation-free — allocs/op regressions never get noise slack.
  * rows present only in the current run are fine (new benchmarks); rows
    missing from the current run fail (a benchmark silently disappearing
    would hide regressions).

Exit code 0 = pass, 1 = regression, 2 = usage/IO error.
"""

import argparse
import json
import sys


def load_rows(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_guard: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    # The bench binary emits "results"; the committed baseline keeps the
    # curated before/after curve — its "after" array is the baseline.
    rows = doc.get("results") or doc.get("after") or []
    return {r["name"]: r for r in rows}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.30)
    args = ap.parse_args()

    base = load_rows(args.baseline)
    cur = load_rows(args.current)
    failures = []

    for name, b in sorted(base.items()):
        c = cur.get(name)
        if c is None:
            failures.append(f"{name}: missing from current run")
            continue
        tol = args.tolerance
        if b.get("ns_per_op", 1e9) < 5.0:  # layout-sensitive micro-row
            tol = min(2 * tol, 0.60)
        floor = (1.0 - tol) * b["ops_per_sec"]
        ratio = c["ops_per_sec"] / b["ops_per_sec"] if b["ops_per_sec"] else 1.0
        status = "ok"
        if c["ops_per_sec"] < floor:
            failures.append(
                f"{name}: {c['ops_per_sec']:.0f} ops/s is {ratio:.2f}x of the "
                f"baseline {b['ops_per_sec']:.0f} (floor {1 - tol:.2f}x)"
            )
            status = "THROUGHPUT REGRESSION"
        if b.get("allocs_per_op", 1.0) < 0.01 and c.get("allocs_per_op", 0.0) >= 0.01:
            failures.append(
                f"{name}: allocs/op regressed from "
                f"{b['allocs_per_op']:.4f} to {c['allocs_per_op']:.4f} "
                "(allocation-free rows must stay allocation-free)"
            )
            status = "ALLOCATION REGRESSION"
        print(f"  {name:<34} {ratio:6.2f}x  "
              f"allocs {b.get('allocs_per_op', 0):.3f} -> {c.get('allocs_per_op', 0):.3f}  {status}")

    for name in sorted(set(cur) - set(base)):
        print(f"  {name:<34} (new row, no baseline)")

    if failures:
        print("\nbench_guard: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nbench_guard: OK ({len(base)} rows within {args.tolerance:.0%} tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
