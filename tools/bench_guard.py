#!/usr/bin/env python3
"""Bench regression guard: compare a freshly measured BENCH_micro JSON
against the committed baseline and fail on a material regression.

Usage: bench_guard.py BASELINE.json CURRENT.json [--tolerance 0.30]

Rules (per row, matched by benchmark name):
  * throughput: current ops_per_sec must be >= (1 - tolerance) * baseline.
    The default 30% tolerance absorbs CI-runner noise and the committed
    baseline being measured on different hardware; a hot-path regression
    (e.g. an allocation sneaking back into a steady-state loop) blows well
    past it.
  * ultra-fast rows (baseline < 5 ns/op, e.g. hlc_tick): binary code
    layout alone moves such single-instruction-chain loops by >30%
    (documented in BENCH_micro.json), so their throughput floor is
    halved-again (tolerance doubled, capped at 60%). Their allocation rule
    still applies at full strength.
  * allocations: a row whose baseline is allocation-free (< 0.01 allocs/op)
    must stay allocation-free — allocs/op regressions never get noise slack.
  * rows present only in the current run are fine (new benchmarks); rows
    missing from the current run fail (a benchmark silently disappearing
    would hide regressions).

Realtime-bench documents (a top-level "rows" array, e.g.
BENCH_realtime_socket.json) are guarded too:
  * throughput rows carry "goodput_tx_s" instead of "ops_per_sec"; the same
    floor applies.
  * rows with a nonzero "retransmits_per_drop" (the SACK-efficiency
    headline: retransmissions per chaos-dropped frame) are guarded
    UPWARD — current must stay under baseline * (1 + --retx-tolerance).
    A SACK regression back to go-back-N multiplies this metric, which a
    throughput check alone would miss on a latency-bound run.
  * rows with a nonzero "syscalls_per_frame" (the batching headline:
    pump syscalls per frame moved) are guarded UPWARD the same way —
    current must stay under baseline * (1 + --tolerance). Losing the
    writev/large-read coalescing multiplies this metric while goodput on
    a fast loopback barely moves.
  * rows carry a "loop_mode" ("open" or "closed"): comparing rows of
    different modes is meaningless — closed-loop p99 hides queueing that
    open-loop intended latency charges in full — so a mode mismatch (or a
    mode that silently disappears from the current run) fails outright, it
    is never a tolerance question.
  * rows with a nonzero "achieved_intended_ratio" (open-loop health: the
    rate the system completed over the rate the arrival schedule asked
    for) are guarded DOWNWARD like a throughput floor — an engine that
    silently falls behind its own schedule fails even when raw goodput
    still looks plausible. The metric vanishing also fails.
  * baseline rows marked "optional": true (e.g. sockets_uring, which only
    exists on kernels with io_uring) may be missing from the current run —
    skipped with a notice instead of failing.

Self-check mode: `bench_guard.py --json-schema FILE...` validates committed
bench documents instead of comparing two runs — every numeric field must be
finite and non-negative (NaN/Infinity parse fine under Python's json module,
so a broken bench emitter can commit them silently; a negative counter means
an underflowed subtraction). CI runs this over every BENCH_*.json.

Exit code 0 = pass, 1 = regression, 2 = usage/IO error.
"""

import argparse
import json
import math
import sys


def load_rows(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_guard: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    # The micro bench emits "results"; its committed baseline keeps the
    # curated before/after curve ("after" is the baseline); realtime
    # benches commit a plain "rows" array.
    rows = doc.get("results") or doc.get("after") or doc.get("rows") or []
    out = {}
    for r in rows:
        r = dict(r)
        if "ops_per_sec" not in r and "goodput_tx_s" in r:
            r["ops_per_sec"] = r["goodput_tx_s"]
        out[r["name"]] = r
    return out


def schema_check(paths):
    """Walks every numeric field of each JSON document; NaN/Infinity and
    negative values fail (counters and rates are non-negative by
    construction — a violation means the emitter or a merge underflowed)."""
    bad = 0

    def walk(v, where):
        nonlocal bad
        if isinstance(v, bool):
            return
        if isinstance(v, (int, float)):
            if not math.isfinite(v):
                print(f"  {where}: non-finite value {v!r}", file=sys.stderr)
                bad += 1
            elif v < 0:
                print(f"  {where}: negative value {v!r}", file=sys.stderr)
                bad += 1
        elif isinstance(v, dict):
            for k, x in v.items():
                walk(x, f"{where}.{k}")
        elif isinstance(v, list):
            for i, x in enumerate(v):
                walk(x, f"{where}[{i}]")

    for path in paths:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            print(f"bench_guard: cannot read {path}: {e}", file=sys.stderr)
            return 2
        walk(doc, path)
    if bad:
        print(f"\nbench_guard: FAIL ({bad} malformed numeric fields)", file=sys.stderr)
        return 1
    print(f"bench_guard: OK ({len(paths)} documents, all numeric fields "
          "finite and non-negative)")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("files", nargs="+",
                    help="BASELINE CURRENT (compare mode) or any number of "
                         "bench JSONs with --json-schema")
    ap.add_argument("--tolerance", type=float, default=0.30)
    ap.add_argument("--retx-tolerance", type=float, default=1.00,
                    help="allowed upward slack on retransmits_per_drop rows "
                         "(1.0 = current may be up to 2x the baseline; a "
                         "go-back-N regression overshoots far past that)")
    ap.add_argument("--json-schema", action="store_true",
                    help="validate the given bench documents instead of "
                         "comparing: every numeric field must be finite and "
                         "non-negative")
    args = ap.parse_args()

    if args.json_schema:
        return schema_check(args.files)
    if len(args.files) != 2:
        ap.error("compare mode takes exactly BASELINE and CURRENT")

    base = load_rows(args.files[0])
    cur = load_rows(args.files[1])
    failures = []

    for name, b in sorted(base.items()):
        c = cur.get(name)
        if c is None:
            if b.get("optional"):
                print(f"  {name:<34} (optional row absent from current run; skipped)")
                continue
            failures.append(f"{name}: missing from current run")
            continue
        tol = args.tolerance
        if b.get("ns_per_op", 1e9) < 5.0:  # layout-sensitive micro-row
            tol = min(2 * tol, 0.60)
        if b.get("loop_mode") is not None:
            mode = c.get("loop_mode")
            if mode is None:
                failures.append(
                    f"{name}: loop_mode missing from the current run "
                    f"(baseline is \"{b['loop_mode']}\"; the mode a row was "
                    "driven in may not silently disappear)"
                )
            elif mode != b["loop_mode"]:
                failures.append(
                    f"{name}: loop_mode changed from \"{b['loop_mode']}\" to "
                    f"\"{mode}\" — open- and closed-loop rows measure "
                    "different things and must never be compared"
                )
                print(f"  {name:<34} LOOP MODE MISMATCH "
                      f"({b['loop_mode']} vs {mode})")
                continue  # the numeric comparison below would be meaningless
        floor = (1.0 - tol) * b["ops_per_sec"]
        ratio = c["ops_per_sec"] / b["ops_per_sec"] if b["ops_per_sec"] else 1.0
        status = "ok"
        if c["ops_per_sec"] < floor:
            failures.append(
                f"{name}: {c['ops_per_sec']:.0f} ops/s is {ratio:.2f}x of the "
                f"baseline {b['ops_per_sec']:.0f} (floor {1 - tol:.2f}x)"
            )
            status = "THROUGHPUT REGRESSION"
        if b.get("allocs_per_op", 1.0) < 0.01 and c.get("allocs_per_op", 0.0) >= 0.01:
            failures.append(
                f"{name}: allocs/op regressed from "
                f"{b['allocs_per_op']:.4f} to {c['allocs_per_op']:.4f} "
                "(allocation-free rows must stay allocation-free)"
            )
            status = "ALLOCATION REGRESSION"
        if b.get("retransmits_per_drop", 0.0) > 0.0:
            ceiling = b["retransmits_per_drop"] * (1.0 + args.retx_tolerance)
            retx = c.get("retransmits_per_drop")
            if retx is None:
                # A vanished metric must fail like a vanished row — a
                # defaulted 0.0 would silently disarm the guard.
                failures.append(
                    f"{name}: retransmits_per_drop missing from the current "
                    "run (guarded metrics may not silently disappear)"
                )
                status = "RETRANSMIT METRIC MISSING"
            elif retx > ceiling:
                failures.append(
                    f"{name}: retransmits_per_drop {retx:.2f} exceeds "
                    f"{ceiling:.2f} (baseline {b['retransmits_per_drop']:.2f} "
                    f"+ {args.retx_tolerance:.0%}) — selective repeat has "
                    "regressed toward go-back-N"
                )
                status = "RETRANSMIT REGRESSION"
        if b.get("achieved_intended_ratio", 0.0) > 0.0:
            r_floor = b["achieved_intended_ratio"] * (1.0 - args.tolerance)
            air = c.get("achieved_intended_ratio")
            if air is None:
                failures.append(
                    f"{name}: achieved_intended_ratio missing from the "
                    "current run (guarded metrics may not silently disappear)"
                )
                status = "OPEN-LOOP METRIC MISSING"
            elif air < r_floor:
                failures.append(
                    f"{name}: achieved_intended_ratio {air:.3f} fell below "
                    f"{r_floor:.3f} (baseline {b['achieved_intended_ratio']:.3f} "
                    f"- {args.tolerance:.0%}) — the open-loop engine is "
                    "falling behind its own arrival schedule"
                )
                status = "OPEN-LOOP RATE REGRESSION"
        if b.get("syscalls_per_frame", 0.0) > 0.0:
            ceiling = b["syscalls_per_frame"] * (1.0 + args.tolerance)
            spf = c.get("syscalls_per_frame")
            if spf is None:
                failures.append(
                    f"{name}: syscalls_per_frame missing from the current "
                    "run (guarded metrics may not silently disappear)"
                )
                status = "SYSCALL METRIC MISSING"
            elif spf > ceiling:
                failures.append(
                    f"{name}: syscalls_per_frame {spf:.2f} exceeds "
                    f"{ceiling:.2f} (baseline {b['syscalls_per_frame']:.2f} "
                    f"+ {args.tolerance:.0%}) — the pump's batching has "
                    "regressed toward one syscall per frame"
                )
                status = "SYSCALL BATCHING REGRESSION"
        print(f"  {name:<34} {ratio:6.2f}x  "
              f"allocs {b.get('allocs_per_op', 0):.3f} -> {c.get('allocs_per_op', 0):.3f}  {status}")

    for name in sorted(set(cur) - set(base)):
        print(f"  {name:<34} (new row, no baseline)")

    if failures:
        print("\nbench_guard: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nbench_guard: OK ({len(base)} rows within {args.tolerance:.0%} tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
