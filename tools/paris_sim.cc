// paris_sim — command-line driver for one-off experiments.
//
// Examples:
//   paris_sim --system=paris --dcs=5 --partitions=45 --replication=2
//     --threads=32 --writes=1 --multi=0.05 --measure-ms=1000
//   paris_sim --system=bpr --threads=256 --visibility
//   paris_sim --runtime=threads --workers=4 --dcs=3 --partitions=9 --check
//   paris_sim --runtime=sockets --processes=3 --dcs=3 --partitions=6 --check
//
// --runtime=sim runs the deterministic discrete-event simulator (default;
// same seed => byte-identical output); --runtime=threads runs the same
// protocol code on real worker threads; --runtime=sockets spawns one child
// process per rank, connected over TCP loopback speaking length-prefixed
// ReliableFrames, and merges their stats/histories (the checker then runs
// over the complete cross-process execution). Prints throughput, the
// latency distribution, blocking statistics (BPR) and, with --visibility,
// the update-visibility percentiles.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "cluster/membership.h"
#include "placement/placement.h"
#include "scenario/scenario.h"
#include "workload/experiment.h"
#include "runtime/socket_runtime.h"
#include "workload/socket_runner.h"

using namespace paris;

namespace {

[[noreturn]] void usage(const char* argv0, int exit_code = 2) {
  std::printf(
      "usage: %s [options]\n"
      "  --system=paris|bpr      protocol under test (default paris)\n"
      "  --runtime=sim|threads|sockets\n"
      "                          deterministic simulator, real worker threads,\n"
      "                          or real OS processes over TCP loopback\n"
      "                          (default sim)\n"
      "  --workers=W             threads/sockets: worker threads per process\n"
      "                          (default: one per server hosted locally)\n"
      "  --processes=N           sockets: child processes; process r owns the\n"
      "                          DCs with dc mod N == r (default: one per DC)\n"
      "  --hosts=H1:P1,H2:P2,... sockets: explicit listen endpoint per rank\n"
      "                          (one entry per process, in rank order); this\n"
      "                          is how a cluster spans hosts or distinct\n"
      "                          loopback IPs\n"
      "  --listen-base-port=P    sockets: DEPRECATED alias for\n"
      "                          --hosts=127.0.0.1:P,127.0.0.1:P+1,...\n"
      "                          (default 7421 when --hosts is absent)\n"
      "  --join-rank=R:MS        elastic membership: the DCs owned by rank R\n"
      "                          start OUTSIDE the replica sets and join MS ms\n"
      "                          into the run (snapshot + catch-up from a\n"
      "                          donor replica, then serve in the new view).\n"
      "                          threads: R names a DC. Repeatable\n"
      "  --leave-rank=R:MS       elastic membership: rank R's DCs leave the\n"
      "                          replica sets MS ms into the run (drained:\n"
      "                          peers stop routing to them, their clients\n"
      "                          stop at the boundary). Repeatable\n"
      "  --socket-dir=PATH       sockets: per-child logs + result files\n"
      "                          (default: a fresh temp dir; path is printed)\n"
      "  --supervise             sockets: respawn a dead rank (bumped\n"
      "                          incarnation epoch + snapshot state transfer\n"
      "                          from a surviving replica) instead of failing\n"
      "                          the whole run fast\n"
      "  --max-respawns=K        sockets: total respawn budget under\n"
      "                          --supervise (default 2)\n"
      "  --kill-rank=R:MS        sockets: SIGKILL rank R once MS ms of the\n"
      "                          supervised run have elapsed (fault schedule;\n"
      "                          requires --supervise)\n"
      "  --socket-pump=poll|uring\n"
      "                          sockets: I/O engine for the per-process pump\n"
      "                          thread. uring probes io_uring at startup and\n"
      "                          falls back to poll with a notice if the\n"
      "                          kernel lacks it (default poll)\n"
      "  --socket-outbound-kb=K  sockets: per-peer outbound ring budget in\n"
      "                          KiB; a full ring backpressures senders\n"
      "                          (parked envelopes, not loss). 0 = unbounded\n"
      "                          (default 4096)\n"
      "  --socket-unbatched      sockets: one frame per write syscall + 4KB\n"
      "                          reads (the pre-batching I/O pattern, kept\n"
      "                          for A/B measurement)\n"
      "  --probe-io-uring        print whether io_uring is usable on this\n"
      "                          kernel and exit (0 = yes, 3 = no)\n"
      "  --latency-model=none|matrix|jitter\n"
      "                          threads/sockets: inject per-DC-pair WAN\n"
      "                          delay (matrix), plus jitter (default none;\n"
      "                          the sim models latency itself)\n"
      "  --reliable              threads/sockets: at-least-once delivery —\n"
      "                          every protocol message is sequenced,\n"
      "                          retransmitted on timeout and deduplicated at\n"
      "                          the receiver, so chaos drops/partitions of\n"
      "                          ANY class still converge (exactly-once at\n"
      "                          the actor)\n"
      "  --reliable-rto-ms=R|auto\n"
      "                          retransmission timeout in ms (default 100),\n"
      "                          or 'auto': per-channel Jacobson/Karels RTT\n"
      "                          estimation (srtt + 4*rttvar, Karn's rule)\n"
      "  --reliable-sack=on|off  selective-repeat acks: receivers report\n"
      "                          buffered [lo,hi] seq ranges and senders\n"
      "                          retransmit only the gaps instead of the\n"
      "                          whole go-back-N burst (default on)\n"
      "  --scenario-seed=S       threads/sockets: draw a full adversarial\n"
      "                          fault schedule (DC partitions, WAN link\n"
      "                          episodes, chaos knobs, live frame fuzzing,\n"
      "                          clock skew, rank kills on supervised\n"
      "                          sockets) from seed S and fold it onto the\n"
      "                          run. The schedule owns cluster shape, run\n"
      "                          window and fault knobs; --system/--runtime\n"
      "                          pick the cell. See tools/scenario_runner\n"
      "                          for whole fuzzing campaigns\n"
      "  --scenario-file=PATH    replay a pinned corpus schedule\n"
      "                          (tests/corpus/*.scenario) instead of\n"
      "                          generating one; the file pins system AND\n"
      "                          runtime\n"
      "  --scenario-print        print the materialized schedule text and\n"
      "                          exit without running (requires one of\n"
      "                          --scenario-seed/--scenario-file)\n"
      "  --partition-spec=SPEC   threads/sockets: scheduled inter-DC\n"
      "                          blackouts, times in ms on the runtime clock.\n"
      "                          SPEC is comma-separated windows:\n"
      "                          A-B:start:end (pair) or A:start:end (isolate\n"
      "                          DC A). Messages crossing an active window\n"
      "                          are DROPPED; pair with --reliable to\n"
      "                          converge after heal\n"
      "  --chaos-reorder=P       threads/sockets: stall probability (cross-\n"
      "                          channel reorder; per-channel FIFO preserved)\n"
      "  --chaos-stall-ms=S      stall length for --chaos-reorder (default 10)\n"
      "  --chaos-duplicate=P     threads/sockets: duplicate replication\n"
      "                          messages\n"
      "  --chaos-drop=[CLASS:]P  threads/sockets: drop messages with\n"
      "                          probability P.\n"
      "                          CLASS is replication (default), requests or\n"
      "                          all. Without --reliable, replication drops\n"
      "                          surface as --check violations and request\n"
      "                          drops wedge transactions; with --reliable any\n"
      "                          class must converge checker-clean\n"
      "  --dcs=M                 number of data centers (default 5)\n"
      "  --partitions=N          number of partitions (default 45)\n"
      "  --replication=R         replication factor (default 2)\n"
      "  --threads=T             client threads per (DC, partition) process (default 8)\n"
      "  --ops=K                 operations per transaction (default 20)\n"
      "  --writes=W              writes among those (default 1)\n"
      "  --parts-per-tx=P        partitions touched per transaction (default 4)\n"
      "  --multi=F               multi-DC transaction ratio in [0,1] (default 0.05)\n"
      "  --keys=K                keys per partition (default 10000)\n"
      "  --zipf=T                zipfian theta (default 0.99)\n"
      "  --key-dist=zipf|uniform|zipf-ri|hotspot\n"
      "                          key-popularity distribution within a\n"
      "                          partition: YCSB zipfian (default), uniform,\n"
      "                          zipfian via rejection-inversion (exact PMF,\n"
      "                          supports theta >= 1), or hot-spot\n"
      "  --hot-keys=F            hotspot: fraction of keys in the hot set\n"
      "                          (default 0.01)\n"
      "  --hot-access=F          hotspot: fraction of accesses landing on the\n"
      "                          hot set (default 0.90)\n"
      "  --arrival-rate=R        OPEN-LOOP mode: replace the closed-loop\n"
      "                          sessions with a pre-drawn Poisson arrival\n"
      "                          process at R tx/s total. Latency is measured\n"
      "                          from each request's SCHEDULED arrival\n"
      "                          (coordinated-omission-safe); both the\n"
      "                          intended and the achieved rate are reported\n"
      "  --sessions=S            open loop: logical sessions multiplexed per\n"
      "                          engine (default 1024)\n"
      "  --rate-profile=constant|diurnal|flash\n"
      "                          open loop: shape the arrival rate — flat, a\n"
      "                          sinusoidal day/night ramp, or a flash crowd\n"
      "                          (default constant)\n"
      "  --flash-at-ms=T         flash profile: crowd arrives T ms into the\n"
      "                          run (default 300)\n"
      "  --flash-len-ms=L        flash profile: crowd lasts L ms (default 200)\n"
      "  --flash-mult=X          flash profile: rate multiplier (default 4)\n"
      "  --trace=PATH            open loop: replay arrivals from a text trace\n"
      "                          ('offset_us [key_rank]' per line, time-\n"
      "                          sorted, '#' comments) instead of drawing a\n"
      "                          Poisson process\n"
      "  --placement=hash|workload\n"
      "                          key->partition placement: static hash\n"
      "                          (default) or workload-aware — servers sketch\n"
      "                          per-key access (Space-Saving top-K), a\n"
      "                          controller scores placement by replication\n"
      "                          factor and load balance\n"
      "  --migrate-top-k=K       workload placement: migrate the K hottest\n"
      "                          keys online (fence -> flush -> copy chain ->\n"
      "                          commit; causal snapshots hold throughout)\n"
      "  --migrate-at-ms=T       workload placement: trigger the migration T\n"
      "                          ms into the run (0 = never; default 0)\n"
      "  --warmup-ms=W           warmup (default 300)\n"
      "  --measure-ms=M          measurement window (default 1000)\n"
      "  --duration-ms=D         alias for --measure-ms\n"
      "  --seed=S                RNG seed (default 42)\n"
      "  --uniform-latency       uniform 40ms WAN instead of the AWS matrix\n"
      "  --visibility            measure update visibility latency\n"
      "  --check                 run the offline exactness checker (slow)\n"
      "  --codec-bytes           encode/decode every message (default: size only)\n"
      "  --help                  this text\n",
      argv0);
  std::exit(exit_code);
}

bool parse_flag(const char* arg, const char* name, const char** value) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  if (arg[n] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[n] == '=') {
    *value = arg + n + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  // Socket children re-exec this binary; the hook runs their share of the
  // experiment and exits. A normal invocation falls straight through.
  workload::maybe_run_socket_child(argc, argv);

  workload::ExperimentConfig cfg;
  cfg.threads_per_process = 8;
  bool sessions_set = false;
  bool profile_set = false;
  bool sack_flag_set = false;
  bool socket_pump_set = false;
  bool socket_budget_set = false;
  bool socket_batch_set = false;
  bool probe_uring = false;
  bool scenario_seed_set = false;
  std::uint64_t scenario_seed = 0;
  std::string scenario_file;
  bool scenario_print = false;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (parse_flag(argv[i], "--system", &v) && v) {
      if (std::string(v) == "paris") {
        cfg.system = proto::System::kParis;
      } else if (std::string(v) == "bpr") {
        cfg.system = proto::System::kBpr;
      } else {
        usage(argv[0]);
      }
    } else if (parse_flag(argv[i], "--runtime", &v) && v) {
      if (std::string(v) == "sim") {
        cfg.runtime = runtime::Kind::kSim;
      } else if (std::string(v) == "threads") {
        cfg.runtime = runtime::Kind::kThreads;
      } else if (std::string(v) == "sockets") {
        cfg.runtime = runtime::Kind::kSockets;
      } else {
        usage(argv[0]);
      }
    } else if (parse_flag(argv[i], "--workers", &v) && v) {
      cfg.worker_threads = static_cast<std::uint32_t>(std::atoi(v));
    } else if (parse_flag(argv[i], "--processes", &v) && v) {
      cfg.socket.processes = static_cast<std::uint32_t>(std::atoi(v));
    } else if (parse_flag(argv[i], "--listen-base-port", &v) && v) {
      const long port = std::atol(v);
      if (port <= 0 || port > 65000) {
        std::fprintf(stderr, "error: --listen-base-port must be in [1, 65000], got '%s'\n",
                     v);
        return 2;
      }
      cfg.socket.base_port = static_cast<std::uint16_t>(port);
    } else if (parse_flag(argv[i], "--hosts", &v) && v) {
      std::string host_err;
      if (!runtime::parse_host_list(v, &cfg.socket.hosts, &host_err)) {
        std::fprintf(stderr, "error: --hosts: %s\n", host_err.c_str());
        return 2;
      }
    } else if ((parse_flag(argv[i], "--join-rank", &v) ||
                parse_flag(argv[i], "--leave-rank", &v)) &&
               v) {
      const bool join = std::strncmp(argv[i], "--join-rank", 11) == 0;
      const char* colon = std::strchr(v, ':');
      if (colon == nullptr || std::atoi(v) < 0) {
        std::fprintf(stderr, "error: %s takes R:MS with R >= 0, got '%s'\n",
                     join ? "--join-rank" : "--leave-rank", v);
        return 2;
      }
      proto::MembershipEvent ev;
      ev.join = join;
      ev.rank = static_cast<std::uint32_t>(std::atoi(v));
      ev.at_ms = std::strtoull(colon + 1, nullptr, 10);
      cfg.membership.events.push_back(ev);
    } else if (parse_flag(argv[i], "--socket-dir", &v) && v) {
      cfg.socket.dir = v;
    } else if (parse_flag(argv[i], "--supervise", &v)) {
      cfg.socket.supervise = true;
    } else if (parse_flag(argv[i], "--max-respawns", &v) && v) {
      cfg.socket.max_respawns = static_cast<std::uint32_t>(std::atoi(v));
    } else if (parse_flag(argv[i], "--kill-rank", &v) && v) {
      const char* colon = std::strchr(v, ':');
      if (colon == nullptr) {
        std::fprintf(stderr, "error: --kill-rank takes R:MS, got '%s'\n", v);
        return 2;
      }
      cfg.socket.kill_rank = std::atoi(v);
      cfg.socket.kill_after_ms = std::strtoull(colon + 1, nullptr, 10);
      if (cfg.socket.kill_rank < 0) {
        std::fprintf(stderr, "error: --kill-rank rank must be >= 0, got '%s'\n", v);
        return 2;
      }
    } else if (parse_flag(argv[i], "--socket-pump", &v) && v) {
      if (std::string(v) == "poll") {
        cfg.socket.pump = runtime::SocketPump::kPoll;
      } else if (std::string(v) == "uring") {
        cfg.socket.pump = runtime::SocketPump::kUring;
      } else {
        std::fprintf(stderr, "error: --socket-pump takes poll|uring, got '%s'\n", v);
        return 2;
      }
      socket_pump_set = true;
    } else if (parse_flag(argv[i], "--socket-outbound-kb", &v) && v) {
      const long long kb = std::atoll(v);
      if (kb < 0) {
        std::fprintf(stderr, "error: --socket-outbound-kb must be >= 0, got '%s'\n", v);
        return 2;
      }
      cfg.socket.outbound_budget = static_cast<std::uint64_t>(kb) * 1024;
      socket_budget_set = true;
    } else if (parse_flag(argv[i], "--socket-unbatched", &v)) {
      cfg.socket.batch_io = false;
      socket_batch_set = true;
    } else if (parse_flag(argv[i], "--probe-io-uring", &v)) {
      probe_uring = true;
    } else if (parse_flag(argv[i], "--latency-model", &v) && v) {
      if (std::string(v) == "none") {
        cfg.latency_model = runtime::LatencyModelKind::kNone;
      } else if (std::string(v) == "matrix") {
        cfg.latency_model = runtime::LatencyModelKind::kMatrix;
      } else if (std::string(v) == "jitter") {
        cfg.latency_model = runtime::LatencyModelKind::kJitter;
      } else {
        usage(argv[0]);
      }
    } else if (parse_flag(argv[i], "--reliable-rto-ms", &v) && v) {
      if (std::string(v) == "auto") {
        cfg.reliable_cfg.adaptive_rto = true;
        cfg.reliable = true;
        continue;
      }
      const long long rto_ms = std::atoll(v);
      if (rto_ms <= 0) {  // also catches non-numeric input (atoll -> 0)
        std::fprintf(stderr,
                     "error: --reliable-rto-ms must be a positive integer or 'auto', "
                     "got '%s'\n",
                     v);
        return 2;
      }
      cfg.reliable_cfg.rto_us = static_cast<std::uint64_t>(rto_ms) * 1000;
      cfg.reliable = true;
    } else if (parse_flag(argv[i], "--reliable-sack", &v) && v) {
      if (std::string(v) == "on") {
        cfg.reliable_cfg.sack = true;
      } else if (std::string(v) == "off") {
        cfg.reliable_cfg.sack = false;
      } else {
        std::fprintf(stderr, "error: --reliable-sack takes on|off, got '%s'\n", v);
        return 2;
      }
      sack_flag_set = true;
    } else if (parse_flag(argv[i], "--reliable", &v)) {
      cfg.reliable = true;
    } else if (parse_flag(argv[i], "--scenario-seed", &v) && v) {
      scenario_seed = std::strtoull(v, nullptr, 10);
      scenario_seed_set = true;
    } else if (parse_flag(argv[i], "--scenario-file", &v) && v) {
      scenario_file = v;
    } else if (parse_flag(argv[i], "--scenario-print", &v)) {
      scenario_print = true;
    } else if (parse_flag(argv[i], "--partition-spec", &v) && v) {
      if (!runtime::parse_partition_spec(v, cfg.partitions)) {
        std::fprintf(stderr, "error: malformed --partition-spec '%s'\n", v);
        return 2;
      }
    } else if (parse_flag(argv[i], "--chaos-reorder", &v) && v) {
      cfg.chaos.reorder_p = std::atof(v);
    } else if (parse_flag(argv[i], "--chaos-stall-ms", &v) && v) {
      cfg.chaos.reorder_stall_us = static_cast<std::uint64_t>(std::atoll(v)) * 1000;
    } else if (parse_flag(argv[i], "--chaos-duplicate", &v) && v) {
      cfg.chaos.duplicate_p = std::atof(v);
    } else if (parse_flag(argv[i], "--chaos-drop", &v) && v) {
      // [CLASS:]P — e.g. "0.1", "replication:0.1", "all:0.05".
      std::string spec(v);
      if (const auto colon = spec.find(':'); colon != std::string::npos) {
        const std::string cls = spec.substr(0, colon);
        if (cls == "replication") {
          cfg.chaos.drop_class = runtime::ChaosDropClass::kReplication;
        } else if (cls == "requests") {
          cfg.chaos.drop_class = runtime::ChaosDropClass::kRequests;
        } else if (cls == "all") {
          cfg.chaos.drop_class = runtime::ChaosDropClass::kAll;
        } else {
          std::fprintf(stderr, "error: unknown --chaos-drop class '%s'\n", cls.c_str());
          return 2;
        }
        spec = spec.substr(colon + 1);
      }
      cfg.chaos.drop_p = std::atof(spec.c_str());
    } else if (parse_flag(argv[i], "--dcs", &v) && v) {
      cfg.num_dcs = static_cast<std::uint32_t>(std::atoi(v));
    } else if (parse_flag(argv[i], "--partitions", &v) && v) {
      cfg.num_partitions = static_cast<std::uint32_t>(std::atoi(v));
    } else if (parse_flag(argv[i], "--replication", &v) && v) {
      cfg.replication = static_cast<std::uint32_t>(std::atoi(v));
    } else if (parse_flag(argv[i], "--threads", &v) && v) {
      cfg.threads_per_process = static_cast<std::uint32_t>(std::atoi(v));
    } else if (parse_flag(argv[i], "--ops", &v) && v) {
      cfg.workload.ops_per_tx = static_cast<std::uint32_t>(std::atoi(v));
    } else if (parse_flag(argv[i], "--writes", &v) && v) {
      cfg.workload.writes_per_tx = static_cast<std::uint32_t>(std::atoi(v));
    } else if (parse_flag(argv[i], "--parts-per-tx", &v) && v) {
      cfg.workload.partitions_per_tx = static_cast<std::uint32_t>(std::atoi(v));
    } else if (parse_flag(argv[i], "--multi", &v) && v) {
      cfg.workload.multi_dc_ratio = std::atof(v);
    } else if (parse_flag(argv[i], "--keys", &v) && v) {
      cfg.workload.keys_per_partition = static_cast<std::uint64_t>(std::atoll(v));
    } else if (parse_flag(argv[i], "--zipf", &v) && v) {
      cfg.workload.zipf_theta = std::atof(v);
    } else if (parse_flag(argv[i], "--key-dist", &v) && v) {
      if (!workload::parse_key_dist(v, &cfg.workload.key_dist)) {
        std::fprintf(stderr,
                     "error: --key-dist takes zipf|uniform|zipf-ri|hotspot, got '%s'\n", v);
        return 2;
      }
    } else if (parse_flag(argv[i], "--hot-keys", &v) && v) {
      cfg.workload.hot_key_frac = std::atof(v);
    } else if (parse_flag(argv[i], "--hot-access", &v) && v) {
      cfg.workload.hot_access_frac = std::atof(v);
    } else if (parse_flag(argv[i], "--arrival-rate", &v) && v) {
      cfg.openloop.arrival_rate = std::atof(v);
      cfg.openloop.enabled = true;
    } else if (parse_flag(argv[i], "--sessions", &v) && v) {
      cfg.openloop.sessions = static_cast<std::uint32_t>(std::atoi(v));
      sessions_set = true;
    } else if (parse_flag(argv[i], "--rate-profile", &v) && v) {
      if (!workload::parse_rate_profile(v, &cfg.openloop.profile)) {
        std::fprintf(stderr,
                     "error: --rate-profile takes constant|diurnal|flash, got '%s'\n", v);
        return 2;
      }
      profile_set = true;
    } else if (parse_flag(argv[i], "--flash-at-ms", &v) && v) {
      cfg.openloop.flash_at_us = static_cast<std::uint64_t>(std::atoll(v)) * 1000;
    } else if (parse_flag(argv[i], "--flash-len-ms", &v) && v) {
      cfg.openloop.flash_len_us = static_cast<std::uint64_t>(std::atoll(v)) * 1000;
    } else if (parse_flag(argv[i], "--flash-mult", &v) && v) {
      cfg.openloop.flash_mult = std::atof(v);
    } else if (parse_flag(argv[i], "--trace", &v) && v) {
      cfg.openloop.trace_path = v;
      cfg.openloop.enabled = true;
    } else if (parse_flag(argv[i], "--placement", &v) && v) {
      placement::Policy pol;
      if (!placement::parse_policy(v, &pol)) {
        std::fprintf(stderr, "error: --placement takes hash|workload, got '%s'\n", v);
        return 2;
      }
      cfg.protocol.placement_policy = static_cast<std::uint8_t>(pol);
    } else if (parse_flag(argv[i], "--migrate-top-k", &v) && v) {
      cfg.protocol.migrate_top_k = static_cast<std::uint32_t>(std::atoi(v));
    } else if (parse_flag(argv[i], "--migrate-at-ms", &v) && v) {
      cfg.protocol.migrate_at_us = static_cast<sim::SimTime>(std::atoll(v)) * 1000;
    } else if (parse_flag(argv[i], "--warmup-ms", &v) && v) {
      cfg.warmup_us = static_cast<sim::SimTime>(std::atoll(v)) * 1000;
    } else if (parse_flag(argv[i], "--measure-ms", &v) && v) {
      cfg.measure_us = static_cast<sim::SimTime>(std::atoll(v)) * 1000;
    } else if (parse_flag(argv[i], "--duration-ms", &v) && v) {
      cfg.measure_us = static_cast<sim::SimTime>(std::atoll(v)) * 1000;
    } else if (parse_flag(argv[i], "--seed", &v) && v) {
      cfg.seed = std::strtoull(v, nullptr, 10);
    } else if (parse_flag(argv[i], "--uniform-latency", &v)) {
      cfg.aws_latency = false;
    } else if (parse_flag(argv[i], "--visibility", &v)) {
      cfg.measure_visibility = true;
    } else if (parse_flag(argv[i], "--check", &v)) {
      cfg.check_consistency = true;
    } else if (parse_flag(argv[i], "--codec-bytes", &v)) {
      cfg.codec = sim::CodecMode::kBytes;
    } else if (parse_flag(argv[i], "--help", &v)) {
      usage(argv[0], 0);
    } else {
      usage(argv[0]);
    }
  }

  if (probe_uring) {
    std::string why;
    if (runtime::SocketBackend::probe_io_uring(&why)) {
      std::printf("io_uring: available\n");
      return 0;
    }
    std::printf("io_uring: unavailable (%s)\n", why.c_str());
    return 3;
  }

  // Scenario resolution: generate from seed (cell picked by --system/
  // --runtime) or decode a corpus file (which pins both), then fold the
  // schedule onto the config. Folding overwrites cluster shape, run window
  // and every fault knob — socket port/dir flags still apply on top.
  if (scenario_seed_set && !scenario_file.empty()) {
    std::fprintf(stderr, "error: --scenario-seed and --scenario-file are exclusive\n");
    return 2;
  }
  if (scenario_print && !scenario_seed_set && scenario_file.empty()) {
    std::fprintf(stderr,
                 "error: --scenario-print needs --scenario-seed or --scenario-file\n");
    return 2;
  }
  if (scenario_seed_set || !scenario_file.empty()) {
    scenario::Scenario sc;
    if (!scenario_file.empty()) {
      std::ifstream in(scenario_file);
      if (!in.good()) {
        std::fprintf(stderr, "error: cannot read --scenario-file '%s'\n",
                     scenario_file.c_str());
        return 2;
      }
      std::ostringstream text;
      text << in.rdbuf();
      if (!scenario::decode_scenario(text.str(), sc)) {
        std::fprintf(stderr, "error: malformed scenario file '%s'\n",
                     scenario_file.c_str());
        return 2;
      }
    } else {
      if (cfg.runtime == runtime::Kind::kSim) {
        std::fprintf(stderr,
                     "error: --scenario-seed requires --runtime=threads or sockets "
                     "(schedules drive the transport decorator chain)\n");
        return 2;
      }
      scenario::ScenarioOptions opts;
      opts.system = cfg.system;
      opts.runtime = cfg.runtime;
      sc = scenario::generate_scenario(scenario_seed, opts);
    }
    if (scenario_print) {
      std::fputs(scenario::encode_scenario(sc).c_str(), stdout);
      return 0;
    }
    scenario::apply_scenario(sc, cfg);
    std::printf("scenario: %s\n", scenario::describe(sc).c_str());
  }

  if (cfg.runtime == runtime::Kind::kSim &&
      (cfg.latency_model != runtime::LatencyModelKind::kNone || cfg.chaos.enabled() ||
       cfg.reliable || cfg.partitions.enabled())) {
    std::fprintf(stderr,
                 "error: --latency-model/--chaos-*/--reliable/--partition-spec require "
                 "--runtime=threads or sockets (the simulator models the network "
                 "itself)\n");
    return 2;
  }
  if (sack_flag_set && !cfg.reliable) {
    std::fprintf(stderr,
                 "error: --reliable-sack requires --reliable (there is no ack "
                 "machinery to configure without it)\n");
    return 2;
  }
  if (cfg.runtime != runtime::Kind::kSockets &&
      (cfg.socket.processes != 0 || !cfg.socket.dir.empty() || cfg.socket.supervise ||
       cfg.socket.kill_rank >= 0 || socket_pump_set || socket_budget_set ||
       socket_batch_set)) {
    std::fprintf(stderr,
                 "error: --processes/--socket-dir/--supervise/--kill-rank/"
                 "--socket-pump/--socket-outbound-kb/--socket-unbatched require "
                 "--runtime=sockets\n");
    return 2;
  }
  if (cfg.socket.kill_rank >= 0 && !cfg.socket.supervise) {
    std::fprintf(stderr,
                 "error: --kill-rank without --supervise would just fail the run "
                 "fast (nothing respawns the killed rank)\n");
    return 2;
  }
  if (cfg.runtime == runtime::Kind::kSockets) {
    const std::uint32_t nprocs = cfg.socket.resolve_processes(cfg.num_dcs);
    if (nprocs < 1 || nprocs > cfg.num_dcs) {
      std::fprintf(stderr,
                   "error: --processes must be in [1, dcs] (process r owns the DCs "
                   "with dc mod N == r)\n");
      return 2;
    }
    if (!cfg.socket.hosts.empty()) {
      std::string host_err;
      if (!runtime::validate_host_list(cfg.socket.hosts, nprocs, &host_err)) {
        std::fprintf(stderr, "error: --hosts: %s\n", host_err.c_str());
        return 2;
      }
    }
  } else if (!cfg.socket.hosts.empty()) {
    std::fprintf(stderr, "error: --hosts requires --runtime=sockets\n");
    return 2;
  }
  if (cfg.membership.enabled()) {
    if (cfg.runtime == runtime::Kind::kSim) {
      std::fprintf(stderr,
                   "error: --join-rank/--leave-rank require --runtime=threads or "
                   "sockets (view changes ride the live runtimes)\n");
      return 2;
    }
    if (cfg.socket.supervise) {
      std::fprintf(stderr,
                   "error: --join-rank/--leave-rank are exclusive with --supervise "
                   "(elastic membership and rank respawn fence epochs differently)\n");
      return 2;
    }
    // sockets: R is a process rank (its DCs are dc mod N == R); threads: R
    // names the DC itself.
    const std::uint32_t ranks = cfg.runtime == runtime::Kind::kSockets
                                    ? cfg.socket.resolve_processes(cfg.num_dcs)
                                    : cfg.num_dcs;
    for (const proto::MembershipEvent& ev : cfg.membership.events) {
      if (ev.rank >= ranks) {
        std::fprintf(stderr, "error: %s names rank %u outside [0, %u)\n",
                     ev.join ? "--join-rank" : "--leave-rank", ev.rank, ranks);
        return 2;
      }
      if (ev.at_ms * 1000 >= cfg.warmup_us + cfg.measure_us) {
        std::fprintf(stderr,
                     "error: %s=%u:%llu schedules the view change after the run ends "
                     "(%llu ms)\n",
                     ev.join ? "--join-rank" : "--leave-rank", ev.rank,
                     static_cast<unsigned long long>(ev.at_ms),
                     static_cast<unsigned long long>((cfg.warmup_us + cfg.measure_us) /
                                                     1000));
        return 2;
      }
    }
  }
  if (!cfg.reliable && cfg.chaos.drop_p > 0 &&
      cfg.chaos.drop_class != runtime::ChaosDropClass::kReplication) {
    std::fprintf(stderr,
                 "warning: --chaos-drop=%s without --reliable will wedge request/"
                 "response traffic (transactions stall instead of converging)\n",
                 runtime::chaos_drop_class_name(cfg.chaos.drop_class));
  }
  if (!cfg.reliable && cfg.partitions.enabled()) {
    std::fprintf(stderr,
                 "warning: --partition-spec without --reliable loses every message "
                 "crossing a blackout (no retransmission after heal)\n");
  }
  if (!cfg.openloop.trace_path.empty() && profile_set) {
    std::fprintf(stderr,
                 "error: --trace and --rate-profile are exclusive (a trace IS the "
                 "arrival process)\n");
    return 2;
  }
  if ((sessions_set || profile_set) && !cfg.openloop.enabled) {
    std::fprintf(stderr,
                 "error: --sessions/--rate-profile require open-loop mode "
                 "(--arrival-rate or --trace)\n");
    return 2;
  }
  if (cfg.openloop.enabled && cfg.openloop.trace_path.empty() &&
      cfg.openloop.arrival_rate <= 0) {
    std::fprintf(stderr, "error: --arrival-rate must be positive\n");
    return 2;
  }
  if (!cfg.openloop.trace_path.empty() &&
      cfg.openloop.trace_path.find_first_of(" \t") != std::string::npos) {
    std::fprintf(stderr,
                 "error: --trace paths with whitespace are not supported (the socket "
                 "config codec is line-oriented)\n");
    return 2;
  }
  if (cfg.workload.key_dist == workload::KeyDistKind::kHotspot &&
      (cfg.workload.hot_key_frac <= 0 || cfg.workload.hot_key_frac >= 1 ||
       cfg.workload.hot_access_frac <= 0 || cfg.workload.hot_access_frac >= 1)) {
    std::fprintf(stderr, "error: --hot-keys/--hot-access must be in (0, 1)\n");
    return 2;
  }
  if (cfg.workload.key_dist != workload::KeyDistKind::kZipfRejection &&
      cfg.workload.zipf_theta >= 1.0) {
    std::fprintf(stderr,
                 "error: --zipf >= 1 needs --key-dist=zipf-ri (the YCSB generator's "
                 "zeta diverges)\n");
    return 2;
  }
  if ((cfg.protocol.migrate_top_k != 0 || cfg.protocol.migrate_at_us != 0) &&
      cfg.protocol.placement_policy == 0) {
    std::fprintf(stderr,
                 "error: --migrate-top-k/--migrate-at-ms require --placement=workload\n");
    return 2;
  }

  std::printf("system=%s M=%u N=%u R=%u (%.0f machines/DC) threads=%u\n",
              proto::system_name(cfg.system), cfg.num_dcs, cfg.num_partitions,
              cfg.replication, cfg.machines_per_dc(), cfg.threads_per_process);
  // Only announced for the real runtimes: the default sim header stays
  // byte-identical across releases (the determinism tests diff it).
  if (cfg.runtime != runtime::Kind::kSim) {
    if (cfg.runtime == runtime::Kind::kThreads) {
      // Same default as the deployment: one worker per server node.
      const cluster::Topology topo({cfg.num_dcs, cfg.num_partitions, cfg.replication});
      std::printf("runtime: threads, %u workers (hw concurrency %u), latency model %s\n",
                  cfg.worker_threads != 0 ? cfg.worker_threads : topo.total_servers(),
                  std::thread::hardware_concurrency(),
                  runtime::latency_model_name(cfg.latency_model));
    } else {
      const std::uint32_t nprocs = cfg.socket.resolve_processes(cfg.num_dcs);
      const std::vector<runtime::Endpoint> hosts =
          cfg.socket.hosts.empty()
              ? runtime::loopback_host_list(nprocs, cfg.socket.base_port)
              : cfg.socket.hosts;
      std::printf(
          "runtime: sockets, %u processes on %s (hw concurrency %u), "
          "latency model %s, pump %s%s, outbound budget %llu KiB\n",
          nprocs, runtime::format_host_list(hosts).c_str(),
          std::thread::hardware_concurrency(),
          runtime::latency_model_name(cfg.latency_model),
          runtime::socket_pump_name(cfg.socket.pump),
          cfg.socket.batch_io ? "" : " (unbatched)",
          static_cast<unsigned long long>(cfg.socket.outbound_budget / 1024));
      if (cfg.socket.supervise) {
        std::printf("supervise: respawn budget %u", cfg.socket.max_respawns);
        if (cfg.socket.kill_rank >= 0) {
          std::printf(", SIGKILL rank %d at %llu ms", cfg.socket.kill_rank,
                      static_cast<unsigned long long>(cfg.socket.kill_after_ms));
        }
        std::printf("\n");
      }
    }
    for (const proto::MembershipEvent& ev : cfg.membership.events) {
      std::printf("membership: rank %u %s at %llu ms\n", ev.rank,
                  ev.join ? "joins" : "leaves",
                  static_cast<unsigned long long>(ev.at_ms));
    }
    if (cfg.chaos.enabled()) {
      std::printf("chaos: reorder=%.2f (stall %llu ms) duplicate=%.2f drop=%s:%.2f\n",
                  cfg.chaos.reorder_p,
                  static_cast<unsigned long long>(cfg.chaos.reorder_stall_us / 1000),
                  cfg.chaos.duplicate_p,
                  runtime::chaos_drop_class_name(cfg.chaos.drop_class), cfg.chaos.drop_p);
    }
    if (cfg.reliable) {
      if (cfg.reliable_cfg.adaptive_rto) {
        std::printf("reliable: at-least-once, rto auto (Jacobson/Karels), sack %s\n",
                    cfg.reliable_cfg.sack ? "on" : "off");
      } else {
        std::printf("reliable: at-least-once, rto %llu ms, sack %s\n",
                    static_cast<unsigned long long>(cfg.reliable_cfg.rto_us / 1000),
                    cfg.reliable_cfg.sack ? "on" : "off");
      }
    }
    for (const auto& w : cfg.partitions.windows) {
      if (w.isolate_all) {
        std::printf("partition: DC %u isolated %llu..%llu ms\n", w.a,
                    static_cast<unsigned long long>(w.start_us / 1000),
                    static_cast<unsigned long long>(w.end_us / 1000));
      } else {
        std::printf("partition: DC %u <-> DC %u cut %llu..%llu ms\n", w.a, w.b,
                    static_cast<unsigned long long>(w.start_us / 1000),
                    static_cast<unsigned long long>(w.end_us / 1000));
      }
    }
  }
  std::printf("workload: %s\n", cfg.workload.describe().c_str());
  // Announced only when the new modes are on: the default sim stdout stays
  // byte-identical across releases (the determinism tests diff it).
  if (cfg.openloop.enabled) {
    if (!cfg.openloop.trace_path.empty()) {
      std::printf("open loop: trace replay from %s, %u logical sessions/engine\n",
                  cfg.openloop.trace_path.c_str(), cfg.openloop.sessions);
    } else {
      std::printf("open loop: %.0f tx/s target, %s profile, %u logical sessions/engine\n",
                  cfg.openloop.arrival_rate,
                  workload::rate_profile_name(cfg.openloop.profile), cfg.openloop.sessions);
    }
  }
  if (cfg.protocol.placement_policy != 0) {
    std::printf("placement: workload-aware (sketch %u entries, report every %llu ms",
                cfg.protocol.sketch_capacity,
                static_cast<unsigned long long>(cfg.protocol.sketch_report_period_us / 1000));
    if (cfg.protocol.migrate_top_k != 0 && cfg.protocol.migrate_at_us != 0) {
      std::printf(", migrate top %u at %llu ms", cfg.protocol.migrate_top_k,
                  static_cast<unsigned long long>(cfg.protocol.migrate_at_us / 1000));
    }
    std::printf(")\n");
  }

  const auto res = workload::run_experiment(cfg);

  std::printf("\nthroughput      %10.1f ktx/s (%s tx in %.0f ms)\n",
              res.throughput_tx_s / 1000.0, stats::with_commas(res.committed).c_str(),
              cfg.measure_us / 1000.0);
  std::printf("latency mean    %10.2f ms\n", res.latency_us.mean / 1000.0);
  std::printf("latency p50     %10.2f ms\n", res.latency_us.p50 / 1000.0);
  std::printf("latency p95     %10.2f ms\n", res.latency_us.p95 / 1000.0);
  std::printf("latency p99     %10.2f ms\n", res.latency_us.p99 / 1000.0);
  if (cfg.openloop.enabled) {
    const double ratio = res.intended_rate_tx_s > 0
                             ? res.achieved_rate_tx_s / res.intended_rate_tx_s
                             : 0.0;
    std::printf("open loop       %10.1f tx/s intended -> %.1f tx/s achieved (%.1f %%)\n",
                res.intended_rate_tx_s, res.achieved_rate_tx_s, ratio * 100.0);
    std::printf("intended p50    %10.2f ms   p99 %10.2f ms  (from scheduled arrival)\n",
                res.intended_us.p50 / 1000.0, res.intended_us.p99 / 1000.0);
    std::printf("service  p50    %10.2f ms   p99 %10.2f ms  (from actual start)\n",
                res.service_us.p50 / 1000.0, res.service_us.p99 / 1000.0);
    std::printf("overdue         %10s of %s scheduled, max backlog %s\n",
                stats::with_commas(res.overdue).c_str(),
                stats::with_commas(res.scheduled).c_str(),
                stats::with_commas(res.max_backlog).c_str());
    std::printf("workload digest %#18llx\n",
                static_cast<unsigned long long>(res.workload_digest));
  }
  if (cfg.protocol.placement_policy != 0) {
    std::printf("placement       replicate_factor %.3f -> %.3f, load rel-stddev "
                "%.3f -> %.3f\n",
                res.replicate_factor_before, res.replicate_factor_after,
                res.load_rel_stddev_before, res.load_rel_stddev_after);
    std::printf("migration       %10s keys moved, %s parked, %s chains shipped / "
                "%s installed, %s sketch reports\n",
                stats::with_commas(res.keys_migrated).c_str(),
                stats::with_commas(res.migrate_parked).c_str(),
                stats::with_commas(res.migrate_chains_sent).c_str(),
                stats::with_commas(res.migrate_chains_installed).c_str(),
                stats::with_commas(res.sketch_reports).c_str());
  }
  if (res.blocked_reads > 0) {
    std::printf("blocked reads   %10s (avg %.1f ms)\n",
                stats::with_commas(res.blocked_reads).c_str(), res.avg_block_ms);
  }
  if (cfg.measure_visibility && res.visibility_hist.count() > 0) {
    std::printf("visibility p50  %10.2f ms\n",
                res.visibility_hist.percentile(0.5) / 1000.0);
    std::printf("visibility p99  %10.2f ms\n",
                res.visibility_hist.percentile(0.99) / 1000.0);
  }
  if (res.chaos.stalled + res.chaos.duplicated + res.chaos.dropped > 0) {
    std::printf("chaos injected  %10s stalls, %s duplicates, %s drops\n",
                stats::with_commas(res.chaos.stalled).c_str(),
                stats::with_commas(res.chaos.duplicated).c_str(),
                stats::with_commas(res.chaos.dropped).c_str());
  }
  if (res.partition.dropped > 0) {
    std::printf("partition drops %10s messages eaten by blackouts\n",
                stats::with_commas(res.partition.dropped).c_str());
  }
  if (res.wan.shaped > 0) {
    std::printf("wan shaping     %10s shaped, %s burst-dropped, %s duplicated, "
                "%s queued behind pipes (%s ms total wait)\n",
                stats::with_commas(res.wan.shaped).c_str(),
                stats::with_commas(res.wan.ge_dropped).c_str(),
                stats::with_commas(res.wan.duplicated).c_str(),
                stats::with_commas(res.wan.bw_queued).c_str(),
                stats::with_commas(res.wan.bw_wait_us / 1000).c_str());
  }
  if (res.fuzz.mutated + res.fuzz.replays > 0) {
    std::printf("frame fuzzing   %10s mutated (%s rejected / %s parsed-then-"
                "discarded), %s replays of %s captured\n",
                stats::with_commas(res.fuzz.mutated).c_str(),
                stats::with_commas(res.fuzz.rejected_validate).c_str(),
                stats::with_commas(res.fuzz.accepted_validate).c_str(),
                stats::with_commas(res.fuzz.replays).c_str(),
                stats::with_commas(res.fuzz.captured).c_str());
  }
  if (cfg.reliable) {
    std::printf("reliable layer  %10s frames, %s retransmits, %s dup-frames dropped, "
                "%s coalesced, %s sack-skips\n",
                stats::with_commas(res.reliable.frames_sent).c_str(),
                stats::with_commas(res.reliable.retransmits).c_str(),
                stats::with_commas(res.reliable.dup_frames).c_str(),
                stats::with_commas(res.reliable.coalesced).c_str(),
                stats::with_commas(res.reliable.sacked_skips).c_str());
  }
  if (cfg.runtime == runtime::Kind::kSockets) {
    std::printf("socket pump     %10s frames out, %s in, %s partial reads, "
                "%s short writes, %s reconnects\n",
                stats::with_commas(res.socket.frames_out).c_str(),
                stats::with_commas(res.socket.frames_in).c_str(),
                stats::with_commas(res.socket.partial_reads).c_str(),
                stats::with_commas(res.socket.short_writes).c_str(),
                stats::with_commas(res.socket.reconnects).c_str());
    std::printf("socket io       %10s syscalls (%.2f/frame, %s bytes/syscall), "
                "%s flushes, %s backpressure stalls%s%s\n",
                stats::with_commas(res.socket.read_syscalls +
                                   res.socket.write_syscalls).c_str(),
                res.socket.syscalls_per_frame(),
                stats::with_commas(
                    static_cast<std::uint64_t>(res.socket.bytes_per_syscall())).c_str(),
                stats::with_commas(res.socket.flushes).c_str(),
                stats::with_commas(res.socket.backpressure_stalls).c_str(),
                res.socket.backpressure_drops != 0 ? " (some shed)" : "",
                res.socket.uring_fallback != 0 ? ", uring->poll fallback" : "");
    if (cfg.socket.supervise) {
      std::printf("self-healing    %10s respawns, %s snapshots / %s catchups served, "
                  "%s prepared fenced, %s stale-epoch fenced, %s redials\n",
                  stats::with_commas(res.respawns).c_str(),
                  stats::with_commas(res.snapshots_served).c_str(),
                  stats::with_commas(res.catchups_served).c_str(),
                  stats::with_commas(res.prepared_fenced).c_str(),
                  stats::with_commas(res.socket.fenced_stale_epoch).c_str(),
                  stats::with_commas(res.socket.redial_attempts).c_str());
    }
  }
  std::printf("local-hit rate  %10.1f %%   max client cache %zu entries\n",
              res.local_hit_rate * 100.0, res.max_client_cache);
  std::printf("sim events      %10s    bytes on wire %s\n",
              stats::with_commas(res.sim_events).c_str(),
              stats::with_commas(res.bytes_sent).c_str());

  // Violations can also arrive without --check (a socket child crashing or
  // timing out is reported this way); any of them fails the run.
  if (!res.violations.empty()) {
    for (const auto& viol : res.violations) std::printf("VIOLATION: %s\n", viol.c_str());
    return 1;
  }
  if (cfg.check_consistency) {
    std::printf("consistency     OK (exactness checker passed)\n");
  }
  return 0;
}
