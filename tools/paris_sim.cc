// paris_sim — command-line driver for one-off experiments.
//
// Examples:
//   paris_sim --system=paris --dcs=5 --partitions=45 --replication=2
//     --threads=32 --writes=1 --multi=0.05 --measure-ms=1000
//   paris_sim --system=bpr --threads=256 --visibility
//   paris_sim --runtime=threads --workers=4 --dcs=3 --partitions=9 --check
//
// --runtime=sim runs the deterministic discrete-event simulator (default;
// same seed => byte-identical output); --runtime=threads runs the same
// protocol code on real worker threads. Prints throughput, the latency
// distribution, blocking statistics (BPR) and, with --visibility, the
// update-visibility percentiles.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "cluster/topology.h"
#include "workload/experiment.h"

using namespace paris;

namespace {

[[noreturn]] void usage(const char* argv0, int exit_code = 2) {
  std::printf(
      "usage: %s [options]\n"
      "  --system=paris|bpr      protocol under test (default paris)\n"
      "  --runtime=sim|threads   deterministic simulator or real worker\n"
      "                          threads (default sim)\n"
      "  --workers=W             threads runtime: worker threads\n"
      "                          (default: one per server)\n"
      "  --latency-model=none|matrix|jitter\n"
      "                          threads runtime: inject per-DC-pair WAN\n"
      "                          delay (matrix), plus jitter (default none;\n"
      "                          the sim models latency itself)\n"
      "  --reliable              threads: at-least-once delivery — every\n"
      "                          protocol message is sequenced, retransmitted\n"
      "                          on timeout and deduplicated at the receiver,\n"
      "                          so chaos drops/partitions of ANY class still\n"
      "                          converge (exactly-once at the actor)\n"
      "  --reliable-rto-ms=R     retransmission timeout (default 100)\n"
      "  --partition-spec=SPEC   threads: scheduled inter-DC blackouts, times\n"
      "                          in ms on the runtime clock. SPEC is comma-\n"
      "                          separated windows: A-B:start:end (pair) or\n"
      "                          A:start:end (isolate DC A). Messages crossing\n"
      "                          an active window are DROPPED; pair with\n"
      "                          --reliable to converge after heal\n"
      "  --chaos-reorder=P       threads: stall probability (cross-channel\n"
      "                          reorder; per-channel FIFO preserved)\n"
      "  --chaos-stall-ms=S      stall length for --chaos-reorder (default 10)\n"
      "  --chaos-duplicate=P     threads: duplicate replication messages\n"
      "  --chaos-drop=[CLASS:]P  threads: drop messages with probability P.\n"
      "                          CLASS is replication (default), requests or\n"
      "                          all. Without --reliable, replication drops\n"
      "                          surface as --check violations and request\n"
      "                          drops wedge transactions; with --reliable any\n"
      "                          class must converge checker-clean\n"
      "  --dcs=M                 number of data centers (default 5)\n"
      "  --partitions=N          number of partitions (default 45)\n"
      "  --replication=R         replication factor (default 2)\n"
      "  --threads=T             client threads per (DC, partition) process (default 8)\n"
      "  --ops=K                 operations per transaction (default 20)\n"
      "  --writes=W              writes among those (default 1)\n"
      "  --parts-per-tx=P        partitions touched per transaction (default 4)\n"
      "  --multi=F               multi-DC transaction ratio in [0,1] (default 0.05)\n"
      "  --keys=K                keys per partition (default 10000)\n"
      "  --zipf=T                zipfian theta (default 0.99)\n"
      "  --warmup-ms=W           warmup (default 300)\n"
      "  --measure-ms=M          measurement window (default 1000)\n"
      "  --duration-ms=D         alias for --measure-ms\n"
      "  --seed=S                RNG seed (default 42)\n"
      "  --uniform-latency       uniform 40ms WAN instead of the AWS matrix\n"
      "  --visibility            measure update visibility latency\n"
      "  --check                 run the offline exactness checker (slow)\n"
      "  --codec-bytes           encode/decode every message (default: size only)\n"
      "  --help                  this text\n",
      argv0);
  std::exit(exit_code);
}

bool parse_flag(const char* arg, const char* name, const char** value) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  if (arg[n] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[n] == '=') {
    *value = arg + n + 1;
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  workload::ExperimentConfig cfg;
  cfg.threads_per_process = 8;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (parse_flag(argv[i], "--system", &v) && v) {
      if (std::string(v) == "paris") {
        cfg.system = proto::System::kParis;
      } else if (std::string(v) == "bpr") {
        cfg.system = proto::System::kBpr;
      } else {
        usage(argv[0]);
      }
    } else if (parse_flag(argv[i], "--runtime", &v) && v) {
      if (std::string(v) == "sim") {
        cfg.runtime = runtime::Kind::kSim;
      } else if (std::string(v) == "threads") {
        cfg.runtime = runtime::Kind::kThreads;
      } else {
        usage(argv[0]);
      }
    } else if (parse_flag(argv[i], "--workers", &v) && v) {
      cfg.worker_threads = static_cast<std::uint32_t>(std::atoi(v));
    } else if (parse_flag(argv[i], "--latency-model", &v) && v) {
      if (std::string(v) == "none") {
        cfg.latency_model = runtime::LatencyModelKind::kNone;
      } else if (std::string(v) == "matrix") {
        cfg.latency_model = runtime::LatencyModelKind::kMatrix;
      } else if (std::string(v) == "jitter") {
        cfg.latency_model = runtime::LatencyModelKind::kJitter;
      } else {
        usage(argv[0]);
      }
    } else if (parse_flag(argv[i], "--reliable-rto-ms", &v) && v) {
      const long long rto_ms = std::atoll(v);
      if (rto_ms <= 0) {  // also catches non-numeric input (atoll -> 0)
        std::fprintf(stderr, "error: --reliable-rto-ms must be a positive integer, got '%s'\n",
                     v);
        return 2;
      }
      cfg.reliable_cfg.rto_us = static_cast<std::uint64_t>(rto_ms) * 1000;
      cfg.reliable = true;
    } else if (parse_flag(argv[i], "--reliable", &v)) {
      cfg.reliable = true;
    } else if (parse_flag(argv[i], "--partition-spec", &v) && v) {
      if (!runtime::parse_partition_spec(v, cfg.partitions)) {
        std::fprintf(stderr, "error: malformed --partition-spec '%s'\n", v);
        return 2;
      }
    } else if (parse_flag(argv[i], "--chaos-reorder", &v) && v) {
      cfg.chaos.reorder_p = std::atof(v);
    } else if (parse_flag(argv[i], "--chaos-stall-ms", &v) && v) {
      cfg.chaos.reorder_stall_us = static_cast<std::uint64_t>(std::atoll(v)) * 1000;
    } else if (parse_flag(argv[i], "--chaos-duplicate", &v) && v) {
      cfg.chaos.duplicate_p = std::atof(v);
    } else if (parse_flag(argv[i], "--chaos-drop", &v) && v) {
      // [CLASS:]P — e.g. "0.1", "replication:0.1", "all:0.05".
      std::string spec(v);
      if (const auto colon = spec.find(':'); colon != std::string::npos) {
        const std::string cls = spec.substr(0, colon);
        if (cls == "replication") {
          cfg.chaos.drop_class = runtime::ChaosDropClass::kReplication;
        } else if (cls == "requests") {
          cfg.chaos.drop_class = runtime::ChaosDropClass::kRequests;
        } else if (cls == "all") {
          cfg.chaos.drop_class = runtime::ChaosDropClass::kAll;
        } else {
          std::fprintf(stderr, "error: unknown --chaos-drop class '%s'\n", cls.c_str());
          return 2;
        }
        spec = spec.substr(colon + 1);
      }
      cfg.chaos.drop_p = std::atof(spec.c_str());
    } else if (parse_flag(argv[i], "--dcs", &v) && v) {
      cfg.num_dcs = static_cast<std::uint32_t>(std::atoi(v));
    } else if (parse_flag(argv[i], "--partitions", &v) && v) {
      cfg.num_partitions = static_cast<std::uint32_t>(std::atoi(v));
    } else if (parse_flag(argv[i], "--replication", &v) && v) {
      cfg.replication = static_cast<std::uint32_t>(std::atoi(v));
    } else if (parse_flag(argv[i], "--threads", &v) && v) {
      cfg.threads_per_process = static_cast<std::uint32_t>(std::atoi(v));
    } else if (parse_flag(argv[i], "--ops", &v) && v) {
      cfg.workload.ops_per_tx = static_cast<std::uint32_t>(std::atoi(v));
    } else if (parse_flag(argv[i], "--writes", &v) && v) {
      cfg.workload.writes_per_tx = static_cast<std::uint32_t>(std::atoi(v));
    } else if (parse_flag(argv[i], "--parts-per-tx", &v) && v) {
      cfg.workload.partitions_per_tx = static_cast<std::uint32_t>(std::atoi(v));
    } else if (parse_flag(argv[i], "--multi", &v) && v) {
      cfg.workload.multi_dc_ratio = std::atof(v);
    } else if (parse_flag(argv[i], "--keys", &v) && v) {
      cfg.workload.keys_per_partition = static_cast<std::uint64_t>(std::atoll(v));
    } else if (parse_flag(argv[i], "--zipf", &v) && v) {
      cfg.workload.zipf_theta = std::atof(v);
    } else if (parse_flag(argv[i], "--warmup-ms", &v) && v) {
      cfg.warmup_us = static_cast<sim::SimTime>(std::atoll(v)) * 1000;
    } else if (parse_flag(argv[i], "--measure-ms", &v) && v) {
      cfg.measure_us = static_cast<sim::SimTime>(std::atoll(v)) * 1000;
    } else if (parse_flag(argv[i], "--duration-ms", &v) && v) {
      cfg.measure_us = static_cast<sim::SimTime>(std::atoll(v)) * 1000;
    } else if (parse_flag(argv[i], "--seed", &v) && v) {
      cfg.seed = std::strtoull(v, nullptr, 10);
    } else if (parse_flag(argv[i], "--uniform-latency", &v)) {
      cfg.aws_latency = false;
    } else if (parse_flag(argv[i], "--visibility", &v)) {
      cfg.measure_visibility = true;
    } else if (parse_flag(argv[i], "--check", &v)) {
      cfg.check_consistency = true;
    } else if (parse_flag(argv[i], "--codec-bytes", &v)) {
      cfg.codec = sim::CodecMode::kBytes;
    } else if (parse_flag(argv[i], "--help", &v)) {
      usage(argv[0], 0);
    } else {
      usage(argv[0]);
    }
  }

  if (cfg.runtime == runtime::Kind::kSim &&
      (cfg.latency_model != runtime::LatencyModelKind::kNone || cfg.chaos.enabled() ||
       cfg.reliable || cfg.partitions.enabled())) {
    std::fprintf(stderr,
                 "error: --latency-model/--chaos-*/--reliable/--partition-spec require "
                 "--runtime=threads (the simulator models the network itself)\n");
    return 2;
  }
  if (!cfg.reliable && cfg.chaos.drop_p > 0 &&
      cfg.chaos.drop_class != runtime::ChaosDropClass::kReplication) {
    std::fprintf(stderr,
                 "warning: --chaos-drop=%s without --reliable will wedge request/"
                 "response traffic (transactions stall instead of converging)\n",
                 runtime::chaos_drop_class_name(cfg.chaos.drop_class));
  }
  if (!cfg.reliable && cfg.partitions.enabled()) {
    std::fprintf(stderr,
                 "warning: --partition-spec without --reliable loses every message "
                 "crossing a blackout (no retransmission after heal)\n");
  }

  std::printf("system=%s M=%u N=%u R=%u (%.0f machines/DC) threads=%u\n",
              proto::system_name(cfg.system), cfg.num_dcs, cfg.num_partitions,
              cfg.replication, cfg.machines_per_dc(), cfg.threads_per_process);
  // Only announced for the threads runtime: the default sim header stays
  // byte-identical across releases (the determinism tests diff it).
  if (cfg.runtime == runtime::Kind::kThreads) {
    // Same default as the deployment: one worker per server node.
    const cluster::Topology topo({cfg.num_dcs, cfg.num_partitions, cfg.replication});
    std::printf("runtime: threads, %u workers (hw concurrency %u), latency model %s\n",
                cfg.worker_threads != 0 ? cfg.worker_threads : topo.total_servers(),
                std::thread::hardware_concurrency(),
                runtime::latency_model_name(cfg.latency_model));
    if (cfg.chaos.enabled()) {
      std::printf("chaos: reorder=%.2f (stall %llu ms) duplicate=%.2f drop=%s:%.2f\n",
                  cfg.chaos.reorder_p,
                  static_cast<unsigned long long>(cfg.chaos.reorder_stall_us / 1000),
                  cfg.chaos.duplicate_p,
                  runtime::chaos_drop_class_name(cfg.chaos.drop_class), cfg.chaos.drop_p);
    }
    if (cfg.reliable) {
      std::printf("reliable: at-least-once, rto %llu ms\n",
                  static_cast<unsigned long long>(cfg.reliable_cfg.rto_us / 1000));
    }
    for (const auto& w : cfg.partitions.windows) {
      if (w.isolate_all) {
        std::printf("partition: DC %u isolated %llu..%llu ms\n", w.a,
                    static_cast<unsigned long long>(w.start_us / 1000),
                    static_cast<unsigned long long>(w.end_us / 1000));
      } else {
        std::printf("partition: DC %u <-> DC %u cut %llu..%llu ms\n", w.a, w.b,
                    static_cast<unsigned long long>(w.start_us / 1000),
                    static_cast<unsigned long long>(w.end_us / 1000));
      }
    }
  }
  std::printf("workload: %s\n", cfg.workload.describe().c_str());

  const auto res = workload::run_experiment(cfg);

  std::printf("\nthroughput      %10.1f ktx/s (%s tx in %.0f ms)\n",
              res.throughput_tx_s / 1000.0, stats::with_commas(res.committed).c_str(),
              cfg.measure_us / 1000.0);
  std::printf("latency mean    %10.2f ms\n", res.latency_us.mean / 1000.0);
  std::printf("latency p50     %10.2f ms\n", res.latency_us.p50 / 1000.0);
  std::printf("latency p95     %10.2f ms\n", res.latency_us.p95 / 1000.0);
  std::printf("latency p99     %10.2f ms\n", res.latency_us.p99 / 1000.0);
  if (res.blocked_reads > 0) {
    std::printf("blocked reads   %10s (avg %.1f ms)\n",
                stats::with_commas(res.blocked_reads).c_str(), res.avg_block_ms);
  }
  if (cfg.measure_visibility && res.visibility_hist.count() > 0) {
    std::printf("visibility p50  %10.2f ms\n",
                res.visibility_hist.percentile(0.5) / 1000.0);
    std::printf("visibility p99  %10.2f ms\n",
                res.visibility_hist.percentile(0.99) / 1000.0);
  }
  if (res.chaos.stalled + res.chaos.duplicated + res.chaos.dropped > 0) {
    std::printf("chaos injected  %10s stalls, %s duplicates, %s drops\n",
                stats::with_commas(res.chaos.stalled).c_str(),
                stats::with_commas(res.chaos.duplicated).c_str(),
                stats::with_commas(res.chaos.dropped).c_str());
  }
  if (res.partition.dropped > 0) {
    std::printf("partition drops %10s messages eaten by blackouts\n",
                stats::with_commas(res.partition.dropped).c_str());
  }
  if (cfg.reliable) {
    std::printf("reliable layer  %10s frames, %s retransmits, %s dup-frames dropped, "
                "%s coalesced\n",
                stats::with_commas(res.reliable.frames_sent).c_str(),
                stats::with_commas(res.reliable.retransmits).c_str(),
                stats::with_commas(res.reliable.dup_frames).c_str(),
                stats::with_commas(res.reliable.coalesced).c_str());
  }
  std::printf("local-hit rate  %10.1f %%   max client cache %zu entries\n",
              res.local_hit_rate * 100.0, res.max_client_cache);
  std::printf("sim events      %10s    bytes on wire %s\n",
              stats::with_commas(res.sim_events).c_str(),
              stats::with_commas(res.bytes_sent).c_str());

  if (cfg.check_consistency) {
    if (res.violations.empty()) {
      std::printf("consistency     OK (exactness checker passed)\n");
    } else {
      for (const auto& viol : res.violations) std::printf("VIOLATION: %s\n", viol.c_str());
      return 1;
    }
  }
  return 0;
}
