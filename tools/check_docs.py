#!/usr/bin/env python3
"""Documentation consistency gate (CI job `docs`).

1. Help-text drift: README.md embeds the verbatim `paris_sim --help` output
   between `<!-- paris-sim-help:begin -->` / `<!-- paris-sim-help:end -->`
   markers. This script runs the built binary and diffs, so the CLI flag
   reference in the README cannot drift from the tool (the usage line's
   argv[0] is normalized on both sides).

2. Markdown link check: every relative link or image in README.md and
   DESIGN.md must point at an existing file or directory (http(s) links are
   skipped — CI runs offline).

3. Scenario-flag coverage: every `--scenario-*` flag the binary reports in
   --help must appear inside the README help block (belt-and-braces on top
   of the verbatim diff: it still fires if the markers are moved to exclude
   the scenario section, and it pins the minimum expected flag set).

Usage: tools/check_docs.py [--binary build/paris_sim]
Exit code 0 = docs consistent, 1 = drift/broken links (diff printed).
"""

import argparse
import difflib
import pathlib
import re
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
BEGIN = "<!-- paris-sim-help:begin -->"
END = "<!-- paris-sim-help:end -->"


def normalize_usage(text: str) -> str:
    return re.sub(r"^usage: \S+ \[options\]", "usage: paris_sim [options]", text.strip(),
                  count=1)


def check_help(binary: pathlib.Path) -> int:
    readme = (ROOT / "README.md").read_text()
    try:
        block = readme.split(BEGIN)[1].split(END)[0]
    except IndexError:
        print(f"ERROR: README.md is missing the {BEGIN} / {END} markers")
        return 1
    fences = re.findall(r"```text\n(.*?)```", block, flags=re.S)
    if len(fences) != 1:
        print("ERROR: expected exactly one ```text fence between the help markers")
        return 1
    documented = normalize_usage(fences[0])

    out = subprocess.run([str(binary), "--help"], capture_output=True, text=True)
    if out.returncode != 0:
        print(f"ERROR: {binary} --help exited {out.returncode}")
        return 1
    actual = normalize_usage(out.stdout)

    if documented != actual:
        print("ERROR: README.md flag reference drifted from `paris_sim --help`:")
        sys.stdout.writelines(difflib.unified_diff(
            documented.splitlines(keepends=True), actual.splitlines(keepends=True),
            fromfile="README.md", tofile="paris_sim --help"))
        print("\nRegenerate: paste `paris_sim --help` into the marked README block.")
        return 1
    print("help-text check: README flag reference matches `paris_sim --help`")
    return 0


def check_scenario_flags(binary: pathlib.Path) -> int:
    out = subprocess.run([str(binary), "--help"], capture_output=True, text=True)
    if out.returncode != 0:
        print(f"ERROR: {binary} --help exited {out.returncode}")
        return 1
    flags = sorted(set(re.findall(r"--scenario-[a-z-]+", out.stdout)))
    expected = {"--scenario-seed", "--scenario-file", "--scenario-print"}
    missing_from_help = expected - set(flags)
    if missing_from_help:
        print(f"ERROR: paris_sim --help lost scenario flags: "
              f"{', '.join(sorted(missing_from_help))}")
        return 1
    readme = (ROOT / "README.md").read_text()
    try:
        block = readme.split(BEGIN)[1].split(END)[0]
    except IndexError:
        print(f"ERROR: README.md is missing the {BEGIN} / {END} markers")
        return 1
    undocumented = [f for f in flags if f not in block]
    if undocumented:
        print("ERROR: README help block is missing scenario flags: "
              f"{', '.join(undocumented)}")
        return 1
    print(f"scenario-flag check: {len(flags)} --scenario-* flags documented "
          "in the README help block")
    return 0


LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)#\s]+)(?:#[^)\s]*)?\)")


def check_links() -> int:
    bad = 0
    for doc in ("README.md", "DESIGN.md"):
        text = (ROOT / doc).read_text()
        # Strip fenced code blocks: their bracket syntax is not a link.
        text = re.sub(r"```.*?```", "", text, flags=re.S)
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if not (ROOT / target).exists():
                print(f"ERROR: {doc} links to missing path: {target}")
                bad += 1
    if bad == 0:
        print("link check: all relative links in README.md/DESIGN.md resolve")
    return 1 if bad else 0


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--binary", default=ROOT / "build" / "paris_sim", type=pathlib.Path)
    args = ap.parse_args()
    return check_help(args.binary) | check_links() | check_scenario_flags(args.binary)


if __name__ == "__main__":
    sys.exit(main())
