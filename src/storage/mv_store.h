#pragma once
// Multi-version key-value storage for one partition replica (§II-C).
//
// Each key holds a version chain ordered by the total version order
// (ut, transaction id, source DC) — the order PaRiS uses both for
// last-writer-wins convergence and for tie-breaking concurrent updates that
// received the same timestamp (§IV-B "Read"). Snapshot reads return the
// freshest version with ut <= snapshot. Garbage collection keeps, for every
// key, the newest version at-or-below the GC watermark plus everything newer
// (§IV-B "Garbage collection").

#include <cstdint>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/hlc.h"
#include "common/types.h"

namespace paris::store {

/// One stored version. The payload is tagged by `kind`: register puts carry
/// their bytes in `v`, counter deltas carry a binary int64 in `num` and
/// leave `v` empty. A register's numeric interpretation (its value when it
/// seeds a counter sum) is parsed lazily and cached in `num`, so neither
/// the register apply path nor repeated counter reads pay for strtoll.
struct Version {
  Value v;                      ///< register payload (empty for counter deltas)
  mutable std::int64_t num = 0; ///< binary payload / cached numeric value of v
  Timestamp ut;                 ///< update (commit) timestamp
  TxId tx;                      ///< creating transaction
  DcId sr = 0;                  ///< source DC
  std::uint8_t kind = 0;        ///< wire::WriteKind: register put or counter delta
  mutable bool num_cached = false;

  /// Numeric payload: the delta of a counter write, the (lazily parsed)
  /// decimal value of a register. Single-threaded by design, like the rest
  /// of the simulator — the cache is not synchronized.
  std::int64_t numeric() const {
    if (!num_cached) {
      num = v.empty() ? 0 : std::strtoll(v.c_str(), nullptr, 10);
      num_cached = true;
    }
    return num;
  }

  /// Total version order: (ut, tx, sr), per §IV-B.
  friend bool operator<(const Version& a, const Version& b) {
    if (a.ut != b.ut) return a.ut < b.ut;
    if (a.tx != b.tx) return a.tx < b.tx;
    return a.sr < b.sr;
  }
};

struct StoreStats {
  std::uint64_t applied_versions = 0;
  std::uint64_t gc_removed = 0;
  std::uint64_t reads = 0;
};

class MvStore {
 public:
  /// Installs a new version (idempotent inserts of an identical (ut,tx,sr)
  /// version are rejected as duplicates and ignored; replication channels
  /// are FIFO so this only happens in tests). `kind` selects the
  /// convergence semantics of the write (register vs counter delta).
  /// `delta` is the binary payload of a counter write; register writes
  /// ignore it (their numeric cache is parsed from v once, here).
  void apply(Key k, const Value& v, std::int64_t delta, Timestamp ut, TxId tx, DcId sr,
             std::uint8_t kind);

  /// String-payload convenience form: counter deltas are parsed from v
  /// (legacy/test call sites; the protocol hot path passes binary deltas).
  void apply(Key k, const Value& v, Timestamp ut, TxId tx, DcId sr, std::uint8_t kind = 0);

  /// Freshest version with ut <= snapshot, or nullptr if the key has no
  /// version inside the snapshot (callers surface a "key absent" item).
  const Version* read(Key k, Timestamp snapshot) const;

  /// Counter semantics (§II-B extension): the sum of all visible delta
  /// versions since (and including) the last visible register write, whose
  /// numeric value seeds the sum. Returns the sum and the newest
  /// contributing version (nullptr if nothing is visible). Summation is
  /// commutative and associative, so concurrent increments from different
  /// DCs all survive — unlike LWW, which would keep only one. The walk is
  /// purely over binary payloads; no string parsing.
  std::pair<std::int64_t, const Version*> read_counter(Key k, Timestamp snapshot) const;

  /// Latest version regardless of snapshot (diagnostics/convergence tests).
  const Version* latest(Key k) const;

  /// Number of stored versions of k (0 if unknown key).
  std::size_t chain_length(Key k) const;

  /// Prunes old versions: for each key keeps the newest version with
  /// ut <= watermark and all newer ones. Returns versions removed.
  std::size_t gc(Timestamp watermark);

  /// All keys with at least one version (unordered). Diagnostics and
  /// convergence tests; not a hot path.
  std::vector<Key> keys() const {
    std::vector<Key> out;
    out.reserve(chains_.size());
    for (const auto& [k, chain] : chains_) {
      if (!chain.empty()) out.push_back(k);
    }
    return out;
  }

  /// Full version chain of k in total order, or nullptr if the key has no
  /// versions. Online key migration ships this to the destination replicas.
  const std::vector<Version>* chain(Key k) const {
    auto it = chains_.find(k);
    return it == chains_.end() || it->second.empty() ? nullptr : &it->second;
  }

  std::size_t num_keys() const { return chains_.size(); }
  std::size_t num_versions() const { return num_versions_; }
  const StoreStats& stats() const { return stats_; }

  /// Visits every non-empty version chain as (key, const vector<Version>&),
  /// unordered. Snapshot state transfer streams the whole store through
  /// this; apply() is idempotent on (ut, tx, sr), so re-installing a
  /// visited version elsewhere is safe even when snapshot and catch-up
  /// streams overlap.
  template <class F>
  void for_each_chain(F&& f) const {
    for (const auto& [k, chain] : chains_) {
      if (!chain.empty()) f(k, chain);
    }
  }

 private:
  std::unordered_map<Key, std::vector<Version>> chains_;
  // Keys whose chain may shrink under GC; avoids full scans on every cycle.
  std::unordered_set<Key> multi_version_keys_;
  std::size_t num_versions_ = 0;
  mutable StoreStats stats_;
};

}  // namespace paris::store
