#include "storage/mv_store.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "common/assert.h"

namespace paris::store {

namespace {
std::int64_t parse_i64(const Value& v) {
  if (v.empty()) return 0;
  return std::strtoll(v.c_str(), nullptr, 10);
}
}  // namespace

void MvStore::apply(Key k, const Value& v, std::int64_t delta, Timestamp ut, TxId tx,
                    DcId sr, std::uint8_t kind) {
  auto& chain = chains_[k];
  // Counter deltas are born with their binary payload; a register's numeric
  // interpretation is parsed lazily on first counter-base use.
  Version ver{v, delta, ut, tx, sr, kind, /*num_cached=*/kind != 0};
  // The common case is in-order append (apply runs in increasing ct order;
  // replication is FIFO), so probe from the back.
  auto pos = chain.end();
  while (pos != chain.begin()) {
    auto prev = std::prev(pos);
    if (*prev < ver) break;
    if (!(ver < *prev)) return;  // duplicate (same ut, tx, sr): ignore
    pos = prev;
  }
  chain.insert(pos, std::move(ver));
  ++num_versions_;
  ++stats_.applied_versions;
  if (chain.size() > 1) multi_version_keys_.insert(k);
}

void MvStore::apply(Key k, const Value& v, Timestamp ut, TxId tx, DcId sr,
                    std::uint8_t kind) {
  apply(k, v, kind != 0 ? parse_i64(v) : 0, ut, tx, sr, kind);
}

const Version* MvStore::read(Key k, Timestamp snapshot) const {
  ++stats_.reads;
  const auto it = chains_.find(k);
  if (it == chains_.end()) return nullptr;
  const auto& chain = it->second;
  // Scan from the freshest end; chains are short (GC keeps them trimmed).
  for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit)
    if (rit->ut <= snapshot) return &*rit;
  return nullptr;
}

std::pair<std::int64_t, const Version*> MvStore::read_counter(Key k,
                                                              Timestamp snapshot) const {
  ++stats_.reads;
  const auto it = chains_.find(k);
  if (it == chains_.end()) return {0, nullptr};
  const auto& chain = it->second;
  std::int64_t sum = 0;
  const Version* newest = nullptr;
  // Walk newest -> oldest; a register write is a base that absorbs all
  // older history.
  for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
    if (rit->ut > snapshot) continue;
    if (newest == nullptr) newest = &*rit;
    sum += rit->numeric();
    if (rit->kind == 0) break;  // register base: stop
  }
  return {sum, newest};
}

const Version* MvStore::latest(Key k) const {
  const auto it = chains_.find(k);
  if (it == chains_.end() || it->second.empty()) return nullptr;
  return &it->second.back();
}

std::size_t MvStore::chain_length(Key k) const {
  const auto it = chains_.find(k);
  return it == chains_.end() ? 0 : it->second.size();
}

std::size_t MvStore::gc(Timestamp watermark) {
  std::size_t removed = 0;
  for (auto it = multi_version_keys_.begin(); it != multi_version_keys_.end();) {
    auto& chain = chains_[*it];
    // Find the newest version with ut <= watermark; erase everything before.
    std::size_t keep_from = 0;
    for (std::size_t i = chain.size(); i-- > 0;) {
      if (chain[i].ut <= watermark) {
        keep_from = i;
        break;
      }
    }
    if (keep_from > 0) {
      // Counter chains: fold the pruned history into the boundary version
      // so sums at snapshots >= watermark are preserved. The boundary
      // becomes a register base holding the full sum up to its timestamp.
      bool has_delta = chain[keep_from].kind != 0;
      for (std::size_t i = 0; i < keep_from && !has_delta; ++i)
        has_delta = chain[i].kind != 0;
      if (has_delta) {
        std::int64_t sum = 0;
        for (std::size_t i = keep_from + 1; i-- > 0;) {
          sum += chain[i].numeric();
          if (chain[i].kind == 0) break;
        }
        chain[keep_from].num = sum;
        // Materialize the string form once per fold so register-mode reads
        // of the synthetic base stay coherent (cold path, bounded by the GC
        // cadence — never by the read rate).
        chain[keep_from].v = std::to_string(sum);
        chain[keep_from].kind = 0;  // now a register base
      }
      chain.erase(chain.begin(), chain.begin() + static_cast<std::ptrdiff_t>(keep_from));
      removed += keep_from;
      num_versions_ -= keep_from;
    }
    if (chain.size() <= 1) {
      it = multi_version_keys_.erase(it);
    } else {
      ++it;
    }
  }
  stats_.gc_removed += removed;
  return removed;
}

}  // namespace paris::store
