#pragma once
// Hybrid Logical Clocks (Kulkarni et al., OPODIS'14), as used by PaRiS to
// generate commit timestamps (§III-B "Generating timestamps").
//
// A Timestamp packs the physical component (microseconds) into the high
// 48 bits and a logical counter into the low 16 bits. This gives the standard
// HLC property: timestamps are close to the physical clock, totally ordered,
// and can be advanced past an incoming event without waiting for the physical
// clock to catch up.

#include <cstdint>
#include <string>

#include "common/assert.h"

namespace paris {

/// Scalar timestamp used for versions, snapshots and the UST.
/// PaRiS's headline meta-data property: this one scalar is the *only*
/// dependency meta-data (Table I row "PaRiS": 1 ts).
struct Timestamp {
  std::uint64_t raw = 0;

  static constexpr int kLogicalBits = 16;
  static constexpr std::uint64_t kLogicalMask = (1ull << kLogicalBits) - 1;

  static constexpr Timestamp from_parts(std::uint64_t physical_us, std::uint16_t logical) {
    return Timestamp{(physical_us << kLogicalBits) | logical};
  }
  /// A timestamp at the given physical time with zero logical component.
  static constexpr Timestamp from_physical(std::uint64_t physical_us) {
    return from_parts(physical_us, 0);
  }

  constexpr std::uint64_t physical_us() const { return raw >> kLogicalBits; }
  constexpr std::uint16_t logical() const { return static_cast<std::uint16_t>(raw & kLogicalMask); }
  constexpr bool is_zero() const { return raw == 0; }

  constexpr Timestamp next() const { return Timestamp{raw + 1}; }

  friend constexpr auto operator<=>(Timestamp, Timestamp) = default;
};

inline constexpr Timestamp kTsZero{};
inline constexpr Timestamp kTsMax{~0ull};

/// Renders "phys.logical" for logs and test diagnostics.
std::string to_string(Timestamp ts);

/// Hybrid Logical Clock state machine. Not thread-safe; in the simulator each
/// server owns one and the event loop serializes access.
class Hlc {
 public:
  /// Current value without advancing (latest issued/observed timestamp).
  Timestamp value() const { return value_; }

  /// HLC "send/local" event: value = max(physical_now, value + 1).
  /// Returns the new value.
  Timestamp tick(std::uint64_t physical_now_us);

  /// HLC "receive" event: value = max(physical_now, value + 1, observed + 1).
  /// Mirrors Alg. 3 line 10 (HLC <- max(Clock, ht+1, HLC+1)).
  Timestamp tick_past(std::uint64_t physical_now_us, Timestamp observed);

  /// Merge an observed timestamp without producing a new event:
  /// value = max(value, observed, physical_now). Mirrors Alg. 3 line 16.
  Timestamp observe(std::uint64_t physical_now_us, Timestamp observed);

 private:
  static Timestamp phys(std::uint64_t physical_now_us) {
    return Timestamp::from_physical(physical_now_us);
  }
  Timestamp value_ = kTsZero;
};

}  // namespace paris
