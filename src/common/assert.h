#pragma once
// Lightweight contract checks. PARIS_CHECK is always on (cheap invariants on
// hot paths must use PARIS_DCHECK / PARIS_PARANOID_CHECK instead).

#include <cstdio>
#include <cstdlib>

namespace paris::detail {
[[noreturn]] inline void check_failed(const char* cond, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "PARIS_CHECK failed: %s at %s:%d%s%s\n", cond, file, line,
               msg && *msg ? " - " : "", msg ? msg : "");
  std::abort();
}
}  // namespace paris::detail

#define PARIS_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond)) ::paris::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define PARIS_CHECK_MSG(cond, msg)                                     \
  do {                                                                 \
    if (!(cond)) ::paris::detail::check_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifndef NDEBUG
#define PARIS_DCHECK(cond) PARIS_CHECK(cond)
#else
#define PARIS_DCHECK(cond) \
  do {                     \
  } while (0)
#endif

// Expensive protocol invariants (e.g. "a read-slice snapshot is always
// installed locally"); enabled with -DPARIS_PARANOID=1.
#ifdef PARIS_PARANOID
#define PARIS_PARANOID_CHECK(cond) PARIS_CHECK(cond)
#else
#define PARIS_PARANOID_CHECK(cond) \
  do {                             \
  } while (0)
#endif
