#include "common/phys_clock.h"

#include <cmath>

namespace paris {

PhysClock PhysClock::sample(Rng& rng, std::int64_t max_error_us, double max_drift_ppm) {
  const auto span = static_cast<std::uint64_t>(2 * max_error_us + 1);
  const std::int64_t offset = static_cast<std::int64_t>(rng.next_below(span)) - max_error_us;
  const double drift = (rng.next_double() * 2.0 - 1.0) * max_drift_ppm;
  return PhysClock(offset, drift);
}

std::uint64_t PhysClock::read_us(std::uint64_t now_us) const {
  const double drifted = static_cast<double>(now_us) * (drift_ppm_ * 1e-6);
  const std::int64_t shift = offset_us_ + static_cast<std::int64_t>(std::llround(drifted));
  const auto base = static_cast<std::int64_t>(now_us);
  const std::int64_t v = base + shift;
  return v < 0 ? 0 : static_cast<std::uint64_t>(v);
}

}  // namespace paris
