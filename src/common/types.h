#pragma once
// Core identifier and value types shared by every subsystem.

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace paris {

/// Keys are 64-bit integers (the paper uses 8-byte items; YCSB keys hash to
/// integers anyway). The cluster's KeyMapper assigns each key to a partition.
using Key = std::uint64_t;

/// Values are opaque byte strings (the workloads use 8-byte values).
using Value = std::string;

using DcId = std::uint32_t;         ///< data-center (replication site) id, 0..M-1
using PartitionId = std::uint32_t;  ///< shard id, 0..N-1
using ReplicaIdx = std::uint32_t;   ///< index of a replica within a partition, 0..R-1
using NodeId = std::uint32_t;       ///< simulator actor id (servers and clients)

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr ReplicaIdx kInvalidReplica = static_cast<ReplicaIdx>(-1);

/// Globally unique transaction identifier: (coordinator node, per-node seq).
/// Total order on TxId (used for tie-breaking concurrent same-timestamp
/// versions together with the source DC, per §IV-B "Read").
struct TxId {
  std::uint64_t raw = 0;

  static constexpr TxId make(NodeId coordinator, std::uint32_t seq) {
    return TxId{(static_cast<std::uint64_t>(coordinator) << 32) | seq};
  }
  constexpr NodeId coordinator() const { return static_cast<NodeId>(raw >> 32); }
  constexpr std::uint32_t seq() const { return static_cast<std::uint32_t>(raw); }
  constexpr bool valid() const { return raw != 0; }

  friend constexpr auto operator<=>(TxId, TxId) = default;
};

inline constexpr TxId kInvalidTxId{};

}  // namespace paris

template <>
struct std::hash<paris::TxId> {
  std::size_t operator()(paris::TxId id) const noexcept {
    return std::hash<std::uint64_t>{}(id.raw);
  }
};
