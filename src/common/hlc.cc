#include "common/hlc.h"

#include <algorithm>
#include <cstdio>

namespace paris {

std::string to_string(Timestamp ts) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%u",
                static_cast<unsigned long long>(ts.physical_us()),
                static_cast<unsigned>(ts.logical()));
  return buf;
}

Timestamp Hlc::tick(std::uint64_t physical_now_us) {
  value_ = std::max(phys(physical_now_us), value_.next());
  return value_;
}

Timestamp Hlc::tick_past(std::uint64_t physical_now_us, Timestamp observed) {
  value_ = std::max({phys(physical_now_us), value_.next(), observed.next()});
  return value_;
}

Timestamp Hlc::observe(std::uint64_t physical_now_us, Timestamp observed) {
  value_ = std::max({phys(physical_now_us), value_, observed});
  return value_;
}

}  // namespace paris
