#pragma once
// Deterministic random number generation. All randomness in the repository
// flows through these generators so that every simulation run is exactly
// reproducible from a single 64-bit seed.

#include <cstdint>
#include <vector>

#include "common/assert.h"

namespace paris {

/// SplitMix64 — used for seeding and hashing.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// xoshiro256** — fast, high-quality PRNG (Blackman & Vigna).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : s_) s = x = splitmix64(x);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    PARIS_DCHECK(bound > 0);
    // Lemire's multiply-shift rejection-free approximation is fine here:
    // the modulo bias for bound << 2^64 is negligible for simulation use,
    // but we keep the 128-bit multiply method for uniformity anyway.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Bernoulli with probability p.
  bool chance(double p) { return next_double() < p; }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    PARIS_DCHECK(hi >= lo);
    return lo + next_below(hi - lo + 1);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// YCSB-style zipfian generator over [0, n). Uses the Gray et al. method with
/// precomputed zeta(n, theta); construction is O(n), draws are O(1).
/// theta = 0.99 matches the paper's workload (§V-A).
class Zipfian {
 public:
  Zipfian(std::uint64_t n, double theta);

  std::uint64_t draw(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double half_pow_theta_;
};

/// Fisher-Yates sample of k distinct values from [0, n) without replacement.
std::vector<std::uint32_t> sample_distinct(Rng& rng, std::uint32_t n, std::uint32_t k);

}  // namespace paris
