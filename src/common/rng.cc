#include "common/rng.h"

#include <cmath>

namespace paris {

namespace {
double zeta(std::uint64_t n, double theta) {
  double sum = 0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}
}  // namespace

Zipfian::Zipfian(std::uint64_t n, double theta) : n_(n), theta_(theta) {
  PARIS_CHECK_MSG(n > 0, "zipfian over empty domain");
  PARIS_CHECK_MSG(theta > 0 && theta < 1.0, "theta must be in (0,1) for this generator");
  zetan_ = zeta(n, theta);
  const double zeta2 = zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta2 / zetan_);
  half_pow_theta_ = 1.0 + std::pow(0.5, theta);
}

std::uint64_t Zipfian::draw(Rng& rng) const {
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < half_pow_theta_) return 1;
  const auto v = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

std::vector<std::uint32_t> sample_distinct(Rng& rng, std::uint32_t n, std::uint32_t k) {
  PARIS_CHECK(k <= n);
  // Floyd's algorithm would avoid the O(n) init but partition counts are
  // small (tens); keep it simple and obviously correct.
  std::vector<std::uint32_t> pool(n);
  for (std::uint32_t i = 0; i < n; ++i) pool[i] = i;
  std::vector<std::uint32_t> out;
  out.reserve(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    const auto j = i + static_cast<std::uint32_t>(rng.next_below(n - i));
    std::swap(pool[i], pool[j]);
    out.push_back(pool[i]);
  }
  return out;
}

}  // namespace paris
