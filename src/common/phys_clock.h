#pragma once
// Physical clock model. The paper uses NTP-synchronized clocks; we model a
// per-server constant offset plus a slow linear drift, both bounded by a
// configurable synchronization error, on top of the simulator's global time.

#include <cstdint>

#include "common/rng.h"

namespace paris {

/// Per-server wall clock: reading it at simulated time t returns
/// t + offset + drift_ppm * t. Monotonicity is preserved because the drift
/// magnitude is far below 1 (reads also never go backwards for offset-only
/// perturbations).
class PhysClock {
 public:
  PhysClock() = default;
  PhysClock(std::int64_t offset_us, double drift_ppm)
      : offset_us_(offset_us), drift_ppm_(drift_ppm) {}

  /// Samples a clock with |offset| <= max_error_us and |drift| <= max_drift_ppm.
  static PhysClock sample(Rng& rng, std::int64_t max_error_us, double max_drift_ppm);

  /// The server's local wall-clock reading (µs) at simulated time now_us.
  std::uint64_t read_us(std::uint64_t now_us) const;

  std::int64_t offset_us() const { return offset_us_; }
  double drift_ppm() const { return drift_ppm_; }

 private:
  std::int64_t offset_us_ = 0;
  double drift_ppm_ = 0.0;
};

}  // namespace paris
