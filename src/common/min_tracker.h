#pragma once
// MinTracker: allocation-free replacement for std::multiset in the common
// server pattern "insert value / erase value / query minimum". A pair of
// binary heaps over flat vectors (live + lazily-deleted) gives O(log n)
// operations without the per-node heap traffic of a red-black tree: erases
// push onto the dead heap, and matching tops annihilate when the minimum is
// queried. Vectors keep their capacity, so a warmed-up tracker never
// allocates.
//
// Requirement: erase(v) may only be called for a value currently contained
// (standard multiset discipline at the call sites: every snapshot/prepared
// timestamp is inserted exactly once and erased exactly once). Under that
// contract the dead top can never be smaller than the live top.

#include <algorithm>
#include <cstddef>
#include <functional>
#include <iterator>
#include <vector>

#include "common/assert.h"

namespace paris {

template <class T, class Cmp = std::less<T>>
class MinTracker {
 public:
  void insert(const T& v) {
    push(live_, v);
    ++size_;
  }

  /// Marks one occurrence of v (which must be present) as erased. Deleted
  /// entries are reclaimed eagerly enough to keep memory O(live): matching
  /// tops annihilate here and in min(), a drained tracker drops both heaps
  /// wholesale, and when dead entries outnumber live ones the heaps are
  /// compacted (amortized O(log n) per operation).
  void erase(const T& v) {
    PARIS_DCHECK(size_ > 0);
    --size_;
    if (size_ == 0) {  // equal multisets: nothing left alive
      live_.clear();
      dead_.clear();
      return;
    }
    push(dead_, v);
    prune();
    if (dead_.size() > live_.size() / 2) compact();
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  /// Heap entries actually held (live + lazily deleted); tests assert this
  /// stays O(size) under churn.
  std::size_t internal_entries() const { return live_.size() + dead_.size(); }

  /// Smallest non-erased value; tracker must not be empty.
  const T& min() const {
    PARIS_DCHECK(size_ > 0);
    prune();
    return live_.front();
  }

 private:
  // std::*_heap are max-heaps; invert the comparator for min-at-front.
  struct Later {
    bool operator()(const T& a, const T& b) const { return Cmp{}(b, a); }
  };
  static void push(std::vector<T>& h, const T& v) {
    h.push_back(v);
    std::push_heap(h.begin(), h.end(), Later{});
  }
  static void pop(std::vector<T>& h) {
    std::pop_heap(h.begin(), h.end(), Later{});
    h.pop_back();
  }
  static bool equiv(const T& a, const T& b) { return !Cmp{}(a, b) && !Cmp{}(b, a); }

  void prune() const {
    while (!dead_.empty() && equiv(dead_.front(), live_.front())) {
      pop(live_);
      pop(dead_);
    }
  }

  /// Rebuilds live_ as the multiset difference live_ \ dead_ and empties
  /// dead_. All vectors keep their capacity.
  void compact() {
    std::sort(live_.begin(), live_.end(), Cmp{});
    std::sort(dead_.begin(), dead_.end(), Cmp{});
    scratch_.clear();
    std::set_difference(live_.begin(), live_.end(), dead_.begin(), dead_.end(),
                        std::back_inserter(scratch_), Cmp{});
    live_.swap(scratch_);
    std::make_heap(live_.begin(), live_.end(), Later{});
    dead_.clear();
    PARIS_DCHECK(live_.size() == size_);
  }

  mutable std::vector<T> live_;
  mutable std::vector<T> dead_;
  std::vector<T> scratch_;  ///< compaction buffer, capacity reused
  std::size_t size_ = 0;
};

}  // namespace paris
