#include "workload/socket_runner.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/assert.h"
#include "runtime/endpoint.h"
#include "runtime/process_group.h"
#include "verify/history.h"
#include "wire/buffer.h"

namespace paris::workload {
namespace detail {

namespace {

// ---------------------------------------------------------------------------
// Config codec (key value lines).
// ---------------------------------------------------------------------------

/// Codec version, the FIRST line of every encoded config (`cfgver N`). A
/// launcher and a child from different builds disagree loudly — "config is
/// cfgver X, this binary speaks Y" — instead of the old behavior where the
/// decoder's unknown-key rejection produced an unexplained failure (or,
/// worse, an OLDER child silently ignoring a key would run a different
/// experiment than the launcher believes). Bump on ANY codec change: new
/// key, removed key, or changed value semantics.
///   v1: unversioned historical format (no cfgver line).
///   v2: cfgver header; socket_hosts; membership_event lines.
constexpr std::uint64_t kConfigCodecVersion = 2;

void put(std::ostringstream& o, const char* k, std::uint64_t v) {
  o << k << ' ' << v << '\n';
}
void put(std::ostringstream& o, const char* k, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  o << k << ' ' << buf << '\n';
}

}  // namespace

std::string encode_experiment_config(const ExperimentConfig& c) {
  std::ostringstream o;
  put(o, "cfgver", kConfigCodecVersion);  // must stay the first line
  put(o, "system", static_cast<std::uint64_t>(c.system == proto::System::kBpr ? 1 : 0));
  put(o, "worker_threads", static_cast<std::uint64_t>(c.worker_threads));
  put(o, "num_dcs", static_cast<std::uint64_t>(c.num_dcs));
  put(o, "num_partitions", static_cast<std::uint64_t>(c.num_partitions));
  put(o, "replication", static_cast<std::uint64_t>(c.replication));
  put(o, "ops_per_tx", static_cast<std::uint64_t>(c.workload.ops_per_tx));
  put(o, "writes_per_tx", static_cast<std::uint64_t>(c.workload.writes_per_tx));
  put(o, "partitions_per_tx", static_cast<std::uint64_t>(c.workload.partitions_per_tx));
  put(o, "multi_dc_ratio", c.workload.multi_dc_ratio);
  put(o, "keys_per_partition", c.workload.keys_per_partition);
  put(o, "zipf_theta", c.workload.zipf_theta);
  put(o, "value_size", static_cast<std::uint64_t>(c.workload.value_size));
  put(o, "key_dist", static_cast<std::uint64_t>(c.workload.key_dist));
  put(o, "hot_key_frac", c.workload.hot_key_frac);
  put(o, "hot_access_frac", c.workload.hot_access_frac);
  put(o, "openloop_enabled", static_cast<std::uint64_t>(c.openloop.enabled));
  put(o, "arrival_rate", c.openloop.arrival_rate);
  put(o, "openloop_sessions", static_cast<std::uint64_t>(c.openloop.sessions));
  put(o, "rate_profile", static_cast<std::uint64_t>(c.openloop.profile));
  put(o, "diurnal_amp", c.openloop.diurnal_amp);
  put(o, "diurnal_period_us", c.openloop.diurnal_period_us);
  put(o, "flash_mult", c.openloop.flash_mult);
  put(o, "flash_at_us", c.openloop.flash_at_us);
  put(o, "flash_len_us", c.openloop.flash_len_us);
  // Single-token line: trace paths with whitespace are rejected up front by
  // the CLI, so the token-stream decoder below stays trivial.
  if (!c.openloop.trace_path.empty()) o << "trace_path " << c.openloop.trace_path << '\n';
  put(o, "threads_per_process", static_cast<std::uint64_t>(c.threads_per_process));
  put(o, "warmup_us", static_cast<std::uint64_t>(c.warmup_us));
  put(o, "measure_us", static_cast<std::uint64_t>(c.measure_us));
  put(o, "seed", c.seed);
  put(o, "check_consistency", static_cast<std::uint64_t>(c.check_consistency));
  put(o, "measure_visibility", static_cast<std::uint64_t>(c.measure_visibility));
  put(o, "visibility_sample_shift", static_cast<std::uint64_t>(c.visibility_sample_shift));
  put(o, "delta_r_us", static_cast<std::uint64_t>(c.protocol.delta_r_us));
  put(o, "delta_g_us", static_cast<std::uint64_t>(c.protocol.delta_g_us));
  put(o, "delta_u_us", static_cast<std::uint64_t>(c.protocol.delta_u_us));
  put(o, "gc_interval_us", static_cast<std::uint64_t>(c.protocol.gc_interval_us));
  put(o, "tree_fanout", static_cast<std::uint64_t>(c.protocol.tree_fanout));
  put(o, "ntp_error_us", static_cast<std::uint64_t>(c.protocol.ntp_error_us));
  put(o, "drift_ppm", c.protocol.drift_ppm);
  put(o, "bpr_gc_retention_us", static_cast<std::uint64_t>(c.protocol.bpr_gc_retention_us));
  put(o, "tx_context_timeout_us",
      static_cast<std::uint64_t>(c.protocol.tx_context_timeout_us));
  put(o, "placement_policy", static_cast<std::uint64_t>(c.protocol.placement_policy));
  put(o, "sketch_capacity", static_cast<std::uint64_t>(c.protocol.sketch_capacity));
  put(o, "sketch_report_period_us",
      static_cast<std::uint64_t>(c.protocol.sketch_report_period_us));
  put(o, "migrate_top_k", static_cast<std::uint64_t>(c.protocol.migrate_top_k));
  put(o, "migrate_at_us", static_cast<std::uint64_t>(c.protocol.migrate_at_us));
  put(o, "migrate_fault_skip_copy",
      static_cast<std::uint64_t>(c.protocol.migrate_fault_skip_copy));
  put(o, "aws_latency", static_cast<std::uint64_t>(c.aws_latency));
  put(o, "uniform_inter_dc_us", c.uniform_inter_dc_us);
  put(o, "uniform_intra_dc_us", c.uniform_intra_dc_us);
  put(o, "latency_model", static_cast<std::uint64_t>(c.latency_model));
  put(o, "chaos_reorder_p", c.chaos.reorder_p);
  put(o, "chaos_reorder_stall_us", c.chaos.reorder_stall_us);
  put(o, "chaos_duplicate_p", c.chaos.duplicate_p);
  put(o, "chaos_drop_p", c.chaos.drop_p);
  put(o, "chaos_drop_class", static_cast<std::uint64_t>(c.chaos.drop_class));
  put(o, "chaos_seed", c.chaos.seed);
  put(o, "reliable", static_cast<std::uint64_t>(c.reliable));
  put(o, "rto_us", c.reliable_cfg.rto_us);
  put(o, "max_rto_us", c.reliable_cfg.max_rto_us);
  put(o, "scan_period_us", c.reliable_cfg.scan_period_us);
  put(o, "fast_retx_guard_us", c.reliable_cfg.fast_retx_guard_us);
  put(o, "max_in_flight", c.reliable_cfg.max_in_flight);
  put(o, "max_ooo_buffered", static_cast<std::uint64_t>(c.reliable_cfg.max_ooo_buffered));
  put(o, "sack", static_cast<std::uint64_t>(c.reliable_cfg.sack));
  put(o, "max_sack_ranges", static_cast<std::uint64_t>(c.reliable_cfg.max_sack_ranges));
  put(o, "adaptive_rto", static_cast<std::uint64_t>(c.reliable_cfg.adaptive_rto));
  put(o, "min_rto_us", c.reliable_cfg.min_rto_us);
  put(o, "codec", static_cast<std::uint64_t>(c.codec));
  put(o, "socket_processes", static_cast<std::uint64_t>(c.socket.processes));
  put(o, "socket_base_port", static_cast<std::uint64_t>(c.socket.base_port));
  // Single token: "h1:p1,h2:p2,..." has no whitespace by construction.
  if (!c.socket.hosts.empty()) {
    o << "socket_hosts " << runtime::format_host_list(c.socket.hosts) << '\n';
  }
  put(o, "socket_connect_timeout_ms", c.socket.connect_timeout_ms);
  put(o, "socket_mesh_token", c.socket.mesh_token);
  put(o, "socket_supervise", static_cast<std::uint64_t>(c.socket.supervise));
  put(o, "socket_max_respawns", static_cast<std::uint64_t>(c.socket.max_respawns));
  // -1 (no scheduled kill) survives the unsigned line format: strtoull
  // negates a leading '-' and the cast back recovers the value.
  put(o, "socket_kill_rank",
      static_cast<std::uint64_t>(static_cast<std::int64_t>(c.socket.kill_rank)));
  put(o, "socket_kill_after_ms", c.socket.kill_after_ms);
  put(o, "socket_pump", static_cast<std::uint64_t>(c.socket.pump));
  put(o, "socket_outbound_budget", c.socket.outbound_budget);
  put(o, "socket_batch_io", static_cast<std::uint64_t>(c.socket.batch_io));
  put(o, "socket_stall_rank",
      static_cast<std::uint64_t>(static_cast<std::int64_t>(c.socket.stall_rank)));
  put(o, "socket_stall_peer", static_cast<std::uint64_t>(c.socket.stall_peer));
  put(o, "socket_stall_at_ms", c.socket.stall_at_ms);
  put(o, "socket_stall_len_ms", c.socket.stall_len_ms);
  put(o, "wan_seed", c.wan.seed);
  put(o, "fuzz_corrupt_p", c.fuzz.corrupt_p);
  put(o, "fuzz_replay_p", c.fuzz.replay_p);
  put(o, "fuzz_seed", c.fuzz.seed);
  put(o, "fuzz_max_capture_bytes", static_cast<std::uint64_t>(c.fuzz.max_capture_bytes));
  for (const proto::MembershipEvent& ev : c.membership.events) {
    o << "membership_event " << (ev.join ? 1 : 0) << ' ' << ev.rank << ' ' << ev.at_ms
      << '\n';
  }
  for (const auto& w : c.partitions.windows) {
    o << "partition_window " << w.a << ' ' << w.b << ' ' << (w.isolate_all ? 1 : 0) << ' '
      << w.start_us << ' ' << w.end_us << '\n';
  }
  for (const auto& e : c.wan.episodes) {
    char fp[160];
    std::snprintf(fp, sizeof(fp), "%.17g %.17g %.17g %.17g %.17g", e.p_good_bad,
                  e.p_bad_good, e.loss_good, e.loss_bad, e.duplicate_p);
    o << "wan_episode " << e.a << ' ' << e.b << ' ' << (e.symmetric ? 1 : 0) << ' '
      << e.start_us << ' ' << e.end_us << ' ' << e.extra_delay_start_us << ' '
      << e.extra_delay_end_us << ' ' << e.bandwidth_bytes_per_us << ' ' << fp << '\n';
  }
  return o.str();
}

bool decode_experiment_config(const std::string& text, ExperimentConfig& c,
                              std::string* err) {
  std::istringstream in(text);
  std::string key;
  // The version gate comes before everything else: a config written by a
  // different build must fail on the HEADER, with a message naming both
  // versions, not on whichever key happens to differ first.
  {
    std::string ver;
    if (!(in >> key >> ver) || key != "cfgver") {
      if (err != nullptr) {
        *err = "config file has no 'cfgver' header: the launcher binary is older "
               "than this child (it speaks codec v" +
               std::to_string(kConfigCodecVersion) + ") — rebuild so both sides match";
      }
      return false;
    }
    const std::uint64_t v = std::strtoull(ver.c_str(), nullptr, 10);
    if (v != kConfigCodecVersion) {
      if (err != nullptr) {
        *err = "config file is codec v" + std::to_string(v) +
               " but this binary speaks v" + std::to_string(kConfigCodecVersion) +
               ": launcher/child version skew — rebuild so both sides match";
      }
      return false;
    }
  }
  while (in >> key) {
    if (key == "membership_event") {
      proto::MembershipEvent ev;
      std::uint32_t join = 0;
      if (!(in >> join >> ev.rank >> ev.at_ms)) {
        if (err != nullptr) *err = "truncated membership_event line";
        return false;
      }
      ev.join = join != 0;
      c.membership.events.push_back(ev);
      continue;
    }
    if (key == "partition_window") {
      runtime::PartitionWindow w;
      std::uint32_t iso = 0;
      if (!(in >> w.a >> w.b >> iso >> w.start_us >> w.end_us)) {
        if (err != nullptr) *err = "truncated partition_window line";
        return false;
      }
      w.isolate_all = iso != 0;
      c.partitions.windows.push_back(w);
      continue;
    }
    if (key == "wan_episode") {
      runtime::WanLinkEpisode e;
      std::uint32_t sym = 0;
      if (!(in >> e.a >> e.b >> sym >> e.start_us >> e.end_us >> e.extra_delay_start_us >>
            e.extra_delay_end_us >> e.bandwidth_bytes_per_us >> e.p_good_bad >>
            e.p_bad_good >> e.loss_good >> e.loss_bad >> e.duplicate_p)) {
        if (err != nullptr) *err = "truncated wan_episode line";
        return false;
      }
      e.symmetric = sym != 0;
      c.wan.episodes.push_back(e);
      continue;
    }
    std::string val;
    if (!(in >> val)) {
      if (err != nullptr) *err = "config key '" + key + "' has no value (truncated file?)";
      return false;
    }
    const std::uint64_t u = std::strtoull(val.c_str(), nullptr, 10);
    const double d = std::atof(val.c_str());
    if (key == "system") {
      c.system = u != 0 ? proto::System::kBpr : proto::System::kParis;
    } else if (key == "worker_threads") {
      c.worker_threads = static_cast<std::uint32_t>(u);
    } else if (key == "num_dcs") {
      c.num_dcs = static_cast<std::uint32_t>(u);
    } else if (key == "num_partitions") {
      c.num_partitions = static_cast<std::uint32_t>(u);
    } else if (key == "replication") {
      c.replication = static_cast<std::uint32_t>(u);
    } else if (key == "ops_per_tx") {
      c.workload.ops_per_tx = static_cast<std::uint32_t>(u);
    } else if (key == "writes_per_tx") {
      c.workload.writes_per_tx = static_cast<std::uint32_t>(u);
    } else if (key == "partitions_per_tx") {
      c.workload.partitions_per_tx = static_cast<std::uint32_t>(u);
    } else if (key == "multi_dc_ratio") {
      c.workload.multi_dc_ratio = d;
    } else if (key == "keys_per_partition") {
      c.workload.keys_per_partition = u;
    } else if (key == "zipf_theta") {
      c.workload.zipf_theta = d;
    } else if (key == "value_size") {
      c.workload.value_size = static_cast<std::uint32_t>(u);
    } else if (key == "key_dist") {
      c.workload.key_dist = static_cast<KeyDistKind>(u);
    } else if (key == "hot_key_frac") {
      c.workload.hot_key_frac = d;
    } else if (key == "hot_access_frac") {
      c.workload.hot_access_frac = d;
    } else if (key == "openloop_enabled") {
      c.openloop.enabled = u != 0;
    } else if (key == "arrival_rate") {
      c.openloop.arrival_rate = d;
    } else if (key == "openloop_sessions") {
      c.openloop.sessions = static_cast<std::uint32_t>(u);
    } else if (key == "rate_profile") {
      c.openloop.profile = static_cast<RateProfile>(u);
    } else if (key == "diurnal_amp") {
      c.openloop.diurnal_amp = d;
    } else if (key == "diurnal_period_us") {
      c.openloop.diurnal_period_us = u;
    } else if (key == "flash_mult") {
      c.openloop.flash_mult = d;
    } else if (key == "flash_at_us") {
      c.openloop.flash_at_us = u;
    } else if (key == "flash_len_us") {
      c.openloop.flash_len_us = u;
    } else if (key == "trace_path") {
      c.openloop.trace_path = val;
    } else if (key == "threads_per_process") {
      c.threads_per_process = static_cast<std::uint32_t>(u);
    } else if (key == "warmup_us") {
      c.warmup_us = u;
    } else if (key == "measure_us") {
      c.measure_us = u;
    } else if (key == "seed") {
      c.seed = u;
    } else if (key == "check_consistency") {
      c.check_consistency = u != 0;
    } else if (key == "measure_visibility") {
      c.measure_visibility = u != 0;
    } else if (key == "visibility_sample_shift") {
      c.visibility_sample_shift = static_cast<std::uint32_t>(u);
    } else if (key == "delta_r_us") {
      c.protocol.delta_r_us = u;
    } else if (key == "delta_g_us") {
      c.protocol.delta_g_us = u;
    } else if (key == "delta_u_us") {
      c.protocol.delta_u_us = u;
    } else if (key == "gc_interval_us") {
      c.protocol.gc_interval_us = u;
    } else if (key == "tree_fanout") {
      c.protocol.tree_fanout = static_cast<std::uint32_t>(u);
    } else if (key == "ntp_error_us") {
      c.protocol.ntp_error_us = static_cast<std::int64_t>(u);
    } else if (key == "drift_ppm") {
      c.protocol.drift_ppm = d;
    } else if (key == "bpr_gc_retention_us") {
      c.protocol.bpr_gc_retention_us = u;
    } else if (key == "tx_context_timeout_us") {
      c.protocol.tx_context_timeout_us = u;
    } else if (key == "placement_policy") {
      c.protocol.placement_policy = static_cast<std::uint8_t>(u);
    } else if (key == "sketch_capacity") {
      c.protocol.sketch_capacity = static_cast<std::uint32_t>(u);
    } else if (key == "sketch_report_period_us") {
      c.protocol.sketch_report_period_us = u;
    } else if (key == "migrate_top_k") {
      c.protocol.migrate_top_k = static_cast<std::uint32_t>(u);
    } else if (key == "migrate_at_us") {
      c.protocol.migrate_at_us = u;
    } else if (key == "migrate_fault_skip_copy") {
      c.protocol.migrate_fault_skip_copy = u != 0;
    } else if (key == "aws_latency") {
      c.aws_latency = u != 0;
    } else if (key == "uniform_inter_dc_us") {
      c.uniform_inter_dc_us = u;
    } else if (key == "uniform_intra_dc_us") {
      c.uniform_intra_dc_us = u;
    } else if (key == "latency_model") {
      c.latency_model = static_cast<runtime::LatencyModelKind>(u);
    } else if (key == "chaos_reorder_p") {
      c.chaos.reorder_p = d;
    } else if (key == "chaos_reorder_stall_us") {
      c.chaos.reorder_stall_us = u;
    } else if (key == "chaos_duplicate_p") {
      c.chaos.duplicate_p = d;
    } else if (key == "chaos_drop_p") {
      c.chaos.drop_p = d;
    } else if (key == "chaos_drop_class") {
      c.chaos.drop_class = static_cast<runtime::ChaosDropClass>(u);
    } else if (key == "chaos_seed") {
      c.chaos.seed = u;
    } else if (key == "reliable") {
      c.reliable = u != 0;
    } else if (key == "rto_us") {
      c.reliable_cfg.rto_us = u;
    } else if (key == "max_rto_us") {
      c.reliable_cfg.max_rto_us = u;
    } else if (key == "scan_period_us") {
      c.reliable_cfg.scan_period_us = u;
    } else if (key == "fast_retx_guard_us") {
      c.reliable_cfg.fast_retx_guard_us = u;
    } else if (key == "max_in_flight") {
      c.reliable_cfg.max_in_flight = u;
    } else if (key == "max_ooo_buffered") {
      c.reliable_cfg.max_ooo_buffered = u;
    } else if (key == "sack") {
      c.reliable_cfg.sack = u != 0;
    } else if (key == "max_sack_ranges") {
      c.reliable_cfg.max_sack_ranges = u;
    } else if (key == "adaptive_rto") {
      c.reliable_cfg.adaptive_rto = u != 0;
    } else if (key == "min_rto_us") {
      c.reliable_cfg.min_rto_us = u;
    } else if (key == "codec") {
      c.codec = static_cast<sim::CodecMode>(u);
    } else if (key == "socket_processes") {
      c.socket.processes = static_cast<std::uint32_t>(u);
    } else if (key == "socket_base_port") {
      c.socket.base_port = static_cast<std::uint16_t>(u);
    } else if (key == "socket_hosts") {
      if (!runtime::parse_host_list(val, &c.socket.hosts, err)) return false;
    } else if (key == "socket_connect_timeout_ms") {
      c.socket.connect_timeout_ms = u;
    } else if (key == "socket_mesh_token") {
      c.socket.mesh_token = u;
    } else if (key == "socket_supervise") {
      c.socket.supervise = u != 0;
    } else if (key == "socket_max_respawns") {
      c.socket.max_respawns = static_cast<std::uint32_t>(u);
    } else if (key == "socket_kill_rank") {
      c.socket.kill_rank = static_cast<std::int32_t>(static_cast<std::int64_t>(u));
    } else if (key == "socket_kill_after_ms") {
      c.socket.kill_after_ms = u;
    } else if (key == "socket_pump") {
      c.socket.pump = static_cast<runtime::SocketPump>(u);
    } else if (key == "socket_outbound_budget") {
      c.socket.outbound_budget = u;
    } else if (key == "socket_batch_io") {
      c.socket.batch_io = u != 0;
    } else if (key == "socket_stall_rank") {
      c.socket.stall_rank = static_cast<std::int32_t>(static_cast<std::int64_t>(u));
    } else if (key == "socket_stall_peer") {
      c.socket.stall_peer = static_cast<std::uint32_t>(u);
    } else if (key == "socket_stall_at_ms") {
      c.socket.stall_at_ms = u;
    } else if (key == "socket_stall_len_ms") {
      c.socket.stall_len_ms = u;
    } else if (key == "wan_seed") {
      c.wan.seed = u;
    } else if (key == "fuzz_corrupt_p") {
      c.fuzz.corrupt_p = d;
    } else if (key == "fuzz_replay_p") {
      c.fuzz.replay_p = d;
    } else if (key == "fuzz_seed") {
      c.fuzz.seed = u;
    } else if (key == "fuzz_max_capture_bytes") {
      c.fuzz.max_capture_bytes = static_cast<std::uint32_t>(u);
    } else {
      // Same cfgver should mean the same key set, so reaching here suggests
      // a forgotten version bump — still refuse, a silently-dropped field
      // would make this child run a DIFFERENT experiment than the launcher.
      if (err != nullptr) {
        *err = "unknown config key '" + key +
               "' despite matching cfgver: the codec changed without a version bump";
      }
      return false;
    }
  }
  c.runtime = runtime::Kind::kSockets;
  return true;
}

// ---------------------------------------------------------------------------
// Child-result codec.
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kResultMagic = 0x50534b31;  // "PSK1"
/// Literal end-of-file marker: a truncated result file (partial flush,
/// child killed mid-write) loses it, so decode can reject gracefully
/// instead of tripping the Decoder's abort-on-truncation checks mid-blob.
constexpr std::uint8_t kResultTrailer[4] = {'P', 'S', 'K', '$'};

void put_hist(wire::Encoder& e, const stats::Histogram& h) {
  const auto r = h.raw();
  e.put_varint(r.count);
  e.put_varint(r.sum);
  e.put_varint(r.min);
  e.put_varint(r.max);
  e.put_varint(r.buckets.size());
  for (const auto& [idx, n] : r.buckets) {
    e.put_varint(idx);
    e.put_varint(n);
  }
}

void get_hist(wire::Decoder& d, stats::Histogram& h) {
  stats::Histogram::Raw r;
  r.count = d.get_varint();
  r.sum = d.get_varint();
  r.min = d.get_varint();
  r.max = d.get_varint();
  for (std::uint64_t i = 0, n = d.get_varint(); i < n; ++i) {
    const auto idx = static_cast<std::uint32_t>(d.get_varint());
    r.buckets.emplace_back(idx, d.get_varint());
  }
  h.merge_raw(r);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool write_file(const std::string& path, const void* data, std::size_t n) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  out.flush();
  return out.good();
}

void dump_log_tail(const std::string& path) {
  const std::string log = read_file(path);
  const std::size_t tail = 4000;
  const std::size_t from = log.size() > tail ? log.size() - tail : 0;
  std::fprintf(stderr, "---- %s%s ----\n%s\n", path.c_str(),
               from != 0 ? " (tail)" : "", log.c_str() + from);
}

}  // namespace

void encode_child_result(const ExperimentResult& res,
                         const std::vector<std::uint8_t>& history,
                         std::vector<std::uint8_t>& out) {
  wire::Encoder e(out);
  e.put_varint(kResultMagic);
  e.put_varint(res.committed);
  put_hist(e, res.latency_hist);
  put_hist(e, res.latency_local_hist);
  put_hist(e, res.latency_multi_hist);
  put_hist(e, res.visibility_hist);
  e.put_varint(res.blocked_reads);
  e.put_varint(static_cast<std::uint64_t>(res.avg_block_ms * 1000.0 *
                                          static_cast<double>(res.blocked_reads)));
  e.put_varint(res.gossip_msgs);
  e.put_varint(res.keys_read);
  e.put_varint(res.local_hits);
  e.put_varint(res.max_client_cache);
  e.put_varint(res.sim_events);
  e.put_varint(res.bytes_sent);
  e.put_varint(res.chaos.stalled);
  e.put_varint(res.chaos.duplicated);
  e.put_varint(res.chaos.dropped);
  e.put_varint(res.reliable.frames_sent);
  e.put_varint(res.reliable.retransmits);
  e.put_varint(res.reliable.fast_retransmits);
  e.put_varint(res.reliable.acks_sent);
  e.put_varint(res.reliable.dup_frames);
  e.put_varint(res.reliable.ooo_frames);
  e.put_varint(res.reliable.stale_acks);
  e.put_varint(res.reliable.coalesced);
  e.put_varint(res.reliable.sacked_skips);
  e.put_varint(res.reliable.malformed_acks);
  e.put_varint(res.reliable.rtt_samples);
  e.put_varint(res.partition.dropped);
  e.put_varint(res.socket.frames_out);
  e.put_varint(res.socket.frames_in);
  e.put_varint(res.socket.bytes_out);
  e.put_varint(res.socket.bytes_in);
  e.put_varint(res.socket.partial_reads);
  e.put_varint(res.socket.short_writes);
  e.put_varint(res.socket.reconnects);
  e.put_varint(res.socket.dropped_dead);
  e.put_varint(res.socket.redial_attempts);
  e.put_varint(res.socket.redial_giveups);
  e.put_varint(res.socket.fenced_stale_epoch);
  e.put_varint(res.socket.malformed_frames);
  e.put_varint(res.reliable.channel_resets);
  e.put_varint(res.reliable.fenced_frames);
  e.put_varint(res.snapshots_served);
  e.put_varint(res.catchups_served);
  e.put_varint(res.prepared_fenced);
  e.put_varint(res.recovery_ms);
  e.put_varint(res.socket.read_syscalls);
  e.put_varint(res.socket.write_syscalls);
  e.put_varint(res.socket.flushes);
  e.put_varint(res.socket.backpressure_stalls);
  e.put_varint(res.socket.backpressure_drops);
  e.put_varint(res.socket.uring_fallback);
  e.put_varint(res.wan.shaped);
  e.put_varint(res.wan.ge_dropped);
  e.put_varint(res.wan.duplicated);
  e.put_varint(res.wan.bw_queued);
  e.put_varint(res.wan.bw_wait_us);
  e.put_varint(res.fuzz.mutated);
  e.put_varint(res.fuzz.flips);
  e.put_varint(res.fuzz.truncations);
  e.put_varint(res.fuzz.splices);
  e.put_varint(res.fuzz.rejected_validate);
  e.put_varint(res.fuzz.accepted_validate);
  e.put_varint(res.fuzz.replays);
  e.put_varint(res.fuzz.captured);
  e.put_varint(res.scheduled);
  e.put_varint(res.overdue);
  e.put_varint(res.max_backlog);
  e.put_varint(res.workload_digest);
  put_hist(e, res.intended_hist);
  put_hist(e, res.service_hist);
  e.put_varint(res.keys_migrated);
  e.put_varint(res.migrate_parked);
  e.put_varint(res.migrate_chains_sent);
  e.put_varint(res.migrate_chains_installed);
  e.put_varint(res.sketch_reports);
  // Placement scores ride as fixed-point x1e6 (same convention as the
  // server stats they came from).
  e.put_varint(static_cast<std::uint64_t>(res.replicate_factor_before * 1e6 + 0.5));
  e.put_varint(static_cast<std::uint64_t>(res.replicate_factor_after * 1e6 + 0.5));
  e.put_varint(static_cast<std::uint64_t>(res.load_rel_stddev_before * 1e6 + 0.5));
  e.put_varint(static_cast<std::uint64_t>(res.load_rel_stddev_after * 1e6 + 0.5));
  e.put_blob(history);
  out.insert(out.end(), kResultTrailer, kResultTrailer + sizeof(kResultTrailer));
}

bool decode_child_result(const std::vector<std::uint8_t>& in, ExperimentResult& res,
                         std::vector<std::uint8_t>& history) {
  // Integrity gate first: magic needs a 5-byte varint, and the trailer must
  // close the file — any truncation loses it, keeping the Decoder's
  // abort-on-malformed checks out of reach for the common corruption case.
  if (in.size() < 5 + sizeof(kResultTrailer) ||
      std::memcmp(in.data() + in.size() - sizeof(kResultTrailer), kResultTrailer,
                  sizeof(kResultTrailer)) != 0) {
    return false;
  }
  wire::Decoder d(in.data(), in.size() - sizeof(kResultTrailer));
  if (d.get_varint() != kResultMagic) return false;
  res.committed = d.get_varint();
  get_hist(d, res.latency_hist);
  get_hist(d, res.latency_local_hist);
  get_hist(d, res.latency_multi_hist);
  get_hist(d, res.visibility_hist);
  res.blocked_reads = d.get_varint();
  const std::uint64_t blocked_time_us = d.get_varint();
  res.avg_block_ms = res.blocked_reads != 0
                         ? static_cast<double>(blocked_time_us) /
                               static_cast<double>(res.blocked_reads) / 1000.0
                         : 0.0;
  res.gossip_msgs = d.get_varint();
  res.keys_read = d.get_varint();
  res.local_hits = d.get_varint();
  res.max_client_cache = d.get_varint();
  res.sim_events = d.get_varint();
  res.bytes_sent = d.get_varint();
  res.chaos.stalled = d.get_varint();
  res.chaos.duplicated = d.get_varint();
  res.chaos.dropped = d.get_varint();
  res.reliable.frames_sent = d.get_varint();
  res.reliable.retransmits = d.get_varint();
  res.reliable.fast_retransmits = d.get_varint();
  res.reliable.acks_sent = d.get_varint();
  res.reliable.dup_frames = d.get_varint();
  res.reliable.ooo_frames = d.get_varint();
  res.reliable.stale_acks = d.get_varint();
  res.reliable.coalesced = d.get_varint();
  res.reliable.sacked_skips = d.get_varint();
  res.reliable.malformed_acks = d.get_varint();
  res.reliable.rtt_samples = d.get_varint();
  res.partition.dropped = d.get_varint();
  res.socket.frames_out = d.get_varint();
  res.socket.frames_in = d.get_varint();
  res.socket.bytes_out = d.get_varint();
  res.socket.bytes_in = d.get_varint();
  res.socket.partial_reads = d.get_varint();
  res.socket.short_writes = d.get_varint();
  res.socket.reconnects = d.get_varint();
  res.socket.dropped_dead = d.get_varint();
  res.socket.redial_attempts = d.get_varint();
  res.socket.redial_giveups = d.get_varint();
  res.socket.fenced_stale_epoch = d.get_varint();
  res.socket.malformed_frames = d.get_varint();
  res.reliable.channel_resets = d.get_varint();
  res.reliable.fenced_frames = d.get_varint();
  res.snapshots_served = d.get_varint();
  res.catchups_served = d.get_varint();
  res.prepared_fenced = d.get_varint();
  res.recovery_ms = d.get_varint();
  res.socket.read_syscalls = d.get_varint();
  res.socket.write_syscalls = d.get_varint();
  res.socket.flushes = d.get_varint();
  res.socket.backpressure_stalls = d.get_varint();
  res.socket.backpressure_drops = d.get_varint();
  res.socket.uring_fallback = d.get_varint();
  res.wan.shaped = d.get_varint();
  res.wan.ge_dropped = d.get_varint();
  res.wan.duplicated = d.get_varint();
  res.wan.bw_queued = d.get_varint();
  res.wan.bw_wait_us = d.get_varint();
  res.fuzz.mutated = d.get_varint();
  res.fuzz.flips = d.get_varint();
  res.fuzz.truncations = d.get_varint();
  res.fuzz.splices = d.get_varint();
  res.fuzz.rejected_validate = d.get_varint();
  res.fuzz.accepted_validate = d.get_varint();
  res.fuzz.replays = d.get_varint();
  res.fuzz.captured = d.get_varint();
  res.scheduled = d.get_varint();
  res.overdue = d.get_varint();
  res.max_backlog = d.get_varint();
  res.workload_digest = d.get_varint();
  get_hist(d, res.intended_hist);
  get_hist(d, res.service_hist);
  res.keys_migrated = d.get_varint();
  res.migrate_parked = d.get_varint();
  res.migrate_chains_sent = d.get_varint();
  res.migrate_chains_installed = d.get_varint();
  res.sketch_reports = d.get_varint();
  res.replicate_factor_before = static_cast<double>(d.get_varint()) / 1e6;
  res.replicate_factor_after = static_cast<double>(d.get_varint()) / 1e6;
  res.load_rel_stddev_before = static_cast<double>(d.get_varint()) / 1e6;
  res.load_rel_stddev_after = static_cast<double>(d.get_varint()) / 1e6;
  d.get_blob_into(history);
  return d.done();
}

// ---------------------------------------------------------------------------
// Launcher.
// ---------------------------------------------------------------------------

ExperimentResult run_socket_parent(const ExperimentConfig& cfg) {
  // Fork-bomb guard: a child process re-running the launcher path means
  // some binary used --runtime=sockets without routing its argv through
  // maybe_run_socket_child() first — each generation would spawn N more.
  PARIS_CHECK_MSG(std::getenv("PARIS_SOCKET_CHILD") == nullptr,
                  "socket launcher invoked INSIDE a socket child: the binary "
                  "did not call workload::maybe_run_socket_child() at the top "
                  "of main()");
  const auto wall_start = std::chrono::steady_clock::now();
  const std::uint32_t nprocs = cfg.socket.resolve_processes(cfg.num_dcs);
  PARIS_CHECK_MSG(nprocs >= 1 && nprocs <= cfg.num_dcs,
                  "sockets: --processes must be in [1, dcs] (ownership is dc %% processes)");
  std::vector<runtime::Endpoint> hosts;
  if (cfg.socket.hosts.empty()) {
    // Deprecated --listen-base-port path: the expansion itself needs the
    // whole contiguous port range to fit.
    PARIS_CHECK_MSG(static_cast<std::uint32_t>(cfg.socket.base_port) + nprocs - 1 <= 65535,
                    "sockets: --listen-base-port + processes overflows the port range");
    hosts = runtime::loopback_host_list(nprocs, cfg.socket.base_port);
  } else {
    std::string host_err;
    PARIS_CHECK_MSG(runtime::validate_host_list(cfg.socket.hosts, nprocs, &host_err),
                    host_err.c_str());
    hosts = cfg.socket.hosts;
  }

  std::string dir = cfg.socket.dir;
  if (dir.empty()) {
    char tmpl[] = "/tmp/paris-sockets-XXXXXX";
    PARIS_CHECK_MSG(mkdtemp(tmpl) != nullptr, "mkdtemp failed");
    dir = tmpl;
  } else {
    // mkdir -p: the CI jobs nest per-scenario dirs (socklogs/paris).
    for (std::size_t slash = dir.find('/', 1); slash != std::string::npos;
         slash = dir.find('/', slash + 1)) {
      (void)::mkdir(dir.substr(0, slash).c_str(), 0755);
    }
    (void)::mkdir(dir.c_str(), 0755);  // fine if any component already exists
  }

  // Every mesh gets a distinct hello token so two concurrent runs sharing
  // a port range reject each other's connections instead of silently
  // cross-wiring their clusters.
  ExperimentConfig child_cfg = cfg;
  if (child_cfg.socket.mesh_token == 0) {
    child_cfg.socket.mesh_token =
        (static_cast<std::uint64_t>(getpid()) << 32) ^ splitmix64(cfg.seed + 1);
  }
  const std::string cfgfile = dir + "/experiment.cfg";
  const std::string cfgtext = encode_experiment_config(child_cfg);
  PARIS_CHECK_MSG(write_file(cfgfile, cfgtext.data(), cfgtext.size()),
                  "cannot write the child config file");

  runtime::ProcessGroup pg;
  std::vector<std::string> outfiles;
  for (std::uint32_t r = 0; r < nprocs; ++r) {
    outfiles.push_back(dir + "/result-" + std::to_string(r) + ".bin");
    const std::string log = dir + "/child-" + std::to_string(r) + ".log";
    PARIS_CHECK_MSG(pg.spawn(r,
                             {"--paris-socket-child", cfgfile, std::to_string(r),
                              outfiles.back(), "0"},
                             log),
                    "fork/exec of a socket child failed");
  }
  std::printf("sockets: %u child processes on %s%s, artifacts in %s\n", nprocs,
              runtime::format_host_list(hosts).c_str(),
              cfg.socket.supervise ? ", supervised" : "", dir.c_str());
  std::fflush(stdout);

  ExperimentResult res;
  const std::uint64_t run_ms = (cfg.warmup_us + cfg.measure_us) / 1000;
  std::string err;
  // Generous deadline: mesh setup + 3x the run (sanitizer builds crawl) +
  // slack — a wedged child is killed instead of eating the CI job limit.
  // A respawned incarnation restarts its whole warmup+measure window after
  // the kill point, so supervised runs extend the budget accordingly.
  const std::uint64_t deadline_ms =
      cfg.socket.connect_timeout_ms + run_ms * 3 + 60'000 +
      (cfg.socket.supervise ? run_ms * 3 + cfg.socket.kill_after_ms : 0);
  bool ok;
  if (cfg.socket.supervise) {
    runtime::ProcessGroup::SuperviseOptions sup;
    sup.max_respawns = cfg.socket.max_respawns;
    sup.respawn = [&dir, &cfgfile, &outfiles](std::uint32_t rank, std::uint32_t incarnation,
                                              std::string& log) {
      log = dir + "/child-" + std::to_string(rank) + ".r" + std::to_string(incarnation) +
            ".log";
      return std::vector<std::string>{"--paris-socket-child", cfgfile,
                                      std::to_string(rank), outfiles[rank],
                                      std::to_string(incarnation)};
    };
    std::vector<runtime::ProcessGroup::KillEvent> kills;
    if (cfg.socket.kill_rank >= 0) {
      PARIS_CHECK_MSG(static_cast<std::uint32_t>(cfg.socket.kill_rank) < nprocs,
                      "sockets: --kill-rank out of range");
      kills.push_back(
          {static_cast<std::uint32_t>(cfg.socket.kill_rank), cfg.socket.kill_after_ms, false});
    }
    ok = pg.wait_supervised(deadline_ms, sup, kills, err);
    res.respawns = pg.respawns();
  } else {
    ok = pg.wait_all(deadline_ms, err);
  }
  if (!ok) {
    std::fprintf(stderr, "socket launcher: %s\n", err.c_str());
    for (const auto& c : pg.children()) dump_log_tail(c.log_path);
    res.violations.push_back("socket run failed: " + err);
    return res;
  }

  verify::HistoryRecorder merged;
  for (const auto& path : outfiles) {
    const std::string bytes = read_file(path);
    std::vector<std::uint8_t> buf(bytes.begin(), bytes.end());
    ExperimentResult part;
    std::vector<std::uint8_t> history;
    PARIS_CHECK_MSG(decode_child_result(buf, part, history),
                    "corrupt child result file (version skew?)");
    res.committed += part.committed;
    res.latency_hist.merge(part.latency_hist);
    res.latency_local_hist.merge(part.latency_local_hist);
    res.latency_multi_hist.merge(part.latency_multi_hist);
    res.visibility_hist.merge(part.visibility_hist);
    res.blocked_reads += part.blocked_reads;
    res.avg_block_ms += part.avg_block_ms * static_cast<double>(part.blocked_reads);
    res.gossip_msgs += part.gossip_msgs;
    res.keys_read += part.keys_read;
    res.local_hits += part.local_hits;
    res.max_client_cache = std::max(res.max_client_cache, part.max_client_cache);
    res.sim_events += part.sim_events;
    res.bytes_sent += part.bytes_sent;
    res.chaos.stalled += part.chaos.stalled;
    res.chaos.duplicated += part.chaos.duplicated;
    res.chaos.dropped += part.chaos.dropped;
    res.reliable.frames_sent += part.reliable.frames_sent;
    res.reliable.retransmits += part.reliable.retransmits;
    res.reliable.fast_retransmits += part.reliable.fast_retransmits;
    res.reliable.acks_sent += part.reliable.acks_sent;
    res.reliable.dup_frames += part.reliable.dup_frames;
    res.reliable.ooo_frames += part.reliable.ooo_frames;
    res.reliable.stale_acks += part.reliable.stale_acks;
    res.reliable.coalesced += part.reliable.coalesced;
    res.reliable.sacked_skips += part.reliable.sacked_skips;
    res.reliable.malformed_acks += part.reliable.malformed_acks;
    res.reliable.rtt_samples += part.reliable.rtt_samples;
    res.partition.dropped += part.partition.dropped;
    res.socket.frames_out += part.socket.frames_out;
    res.socket.frames_in += part.socket.frames_in;
    res.socket.bytes_out += part.socket.bytes_out;
    res.socket.bytes_in += part.socket.bytes_in;
    res.socket.partial_reads += part.socket.partial_reads;
    res.socket.short_writes += part.socket.short_writes;
    res.socket.reconnects += part.socket.reconnects;
    res.socket.dropped_dead += part.socket.dropped_dead;
    res.socket.redial_attempts += part.socket.redial_attempts;
    res.socket.redial_giveups += part.socket.redial_giveups;
    res.socket.fenced_stale_epoch += part.socket.fenced_stale_epoch;
    res.socket.malformed_frames += part.socket.malformed_frames;
    res.socket.read_syscalls += part.socket.read_syscalls;
    res.socket.write_syscalls += part.socket.write_syscalls;
    res.socket.flushes += part.socket.flushes;
    res.socket.backpressure_stalls += part.socket.backpressure_stalls;
    res.socket.backpressure_drops += part.socket.backpressure_drops;
    res.socket.uring_fallback += part.socket.uring_fallback;
    res.wan.shaped += part.wan.shaped;
    res.wan.ge_dropped += part.wan.ge_dropped;
    res.wan.duplicated += part.wan.duplicated;
    res.wan.bw_queued += part.wan.bw_queued;
    res.wan.bw_wait_us += part.wan.bw_wait_us;
    res.fuzz.mutated += part.fuzz.mutated;
    res.fuzz.flips += part.fuzz.flips;
    res.fuzz.truncations += part.fuzz.truncations;
    res.fuzz.splices += part.fuzz.splices;
    res.fuzz.rejected_validate += part.fuzz.rejected_validate;
    res.fuzz.accepted_validate += part.fuzz.accepted_validate;
    res.fuzz.replays += part.fuzz.replays;
    res.fuzz.captured += part.fuzz.captured;
    res.reliable.channel_resets += part.reliable.channel_resets;
    res.reliable.fenced_frames += part.reliable.fenced_frames;
    res.snapshots_served += part.snapshots_served;
    res.catchups_served += part.catchups_served;
    res.prepared_fenced += part.prepared_fenced;
    res.recovery_ms = std::max(res.recovery_ms, part.recovery_ms);
    res.scheduled += part.scheduled;
    res.overdue += part.overdue;
    res.max_backlog = std::max(res.max_backlog, part.max_backlog);
    // Every engine lives in exactly one child, so XOR across children equals
    // the global XOR over all engines (the cross-runtime digest invariant).
    res.workload_digest ^= part.workload_digest;
    res.intended_hist.merge(part.intended_hist);
    res.service_hist.merge(part.service_hist);
    res.keys_migrated += part.keys_migrated;
    res.migrate_parked += part.migrate_parked;
    res.migrate_chains_sent += part.migrate_chains_sent;
    res.migrate_chains_installed += part.migrate_chains_installed;
    res.sketch_reports += part.sketch_reports;
    // Scores are controller-only: every other child reports 0, max wins.
    res.replicate_factor_before =
        std::max(res.replicate_factor_before, part.replicate_factor_before);
    res.replicate_factor_after =
        std::max(res.replicate_factor_after, part.replicate_factor_after);
    res.load_rel_stddev_before =
        std::max(res.load_rel_stddev_before, part.load_rel_stddev_before);
    res.load_rel_stddev_after =
        std::max(res.load_rel_stddev_after, part.load_rel_stddev_after);
    if (cfg.check_consistency && !history.empty()) {
      merged.merge_serialized(history.data(), history.size());
    }
  }

  const double window_s = static_cast<double>(cfg.measure_us) / 1e6;
  res.throughput_tx_s =
      window_s > 0 ? static_cast<double>(res.committed) / window_s : 0.0;
  res.latency_us = stats::Summary::of(res.latency_hist);
  if (cfg.openloop.enabled) {
    res.intended_rate_tx_s =
        window_s > 0 ? static_cast<double>(res.scheduled) / window_s : 0.0;
    res.achieved_rate_tx_s = res.throughput_tx_s;
    res.intended_us = stats::Summary::of(res.intended_hist);
    res.service_us = stats::Summary::of(res.service_hist);
  }
  res.avg_block_ms = res.blocked_reads != 0
                         ? res.avg_block_ms / static_cast<double>(res.blocked_reads)
                         : 0.0;
  res.local_hit_rate =
      res.keys_read != 0
          ? static_cast<double>(res.local_hits) / static_cast<double>(res.keys_read)
          : 0.0;
  if (cfg.check_consistency) {
    res.violations = merged.check();
    // A scheduled join whose DCs never served a single read slice means the
    // new replica sets were installed on paper only — fail the run even
    // though the (empty) history is trivially consistent.
    for (const proto::MembershipEvent& ev : cfg.membership.events) {
      if (!ev.join) continue;
      for (DcId d = 0; d < cfg.num_dcs; ++d) {
        if (d % nprocs != ev.rank) continue;
        if (merged.slices_at_dc(d) == 0) {
          res.violations.push_back("membership: joined DC " + std::to_string(d) +
                                   " (rank " + std::to_string(ev.rank) +
                                   ") served no read slices after its join");
        }
      }
    }
  }
  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return res;
}

}  // namespace detail

void maybe_run_socket_child(int argc, char** argv) {
  if (argc != 6 || std::strcmp(argv[1], "--paris-socket-child") != 0) return;
  ExperimentConfig cfg;
  const std::string text = detail::read_file(argv[2]);
  PARIS_CHECK_MSG(!text.empty(), "socket child: unreadable or empty config file");
  std::string codec_err;
  PARIS_CHECK_MSG(detail::decode_experiment_config(text, cfg, &codec_err),
                  ("socket child: " + codec_err).c_str());
  cfg.socket.rank = std::atoi(argv[3]);
  // The incarnation epoch rides argv, not the shared config file: every
  // respawn of a rank gets a bumped value while the siblings keep theirs.
  cfg.socket.epoch = static_cast<std::uint32_t>(std::strtoul(argv[5], nullptr, 10));
  const std::uint32_t nprocs = cfg.socket.resolve_processes(cfg.num_dcs);
  const std::vector<runtime::Endpoint> hosts =
      cfg.socket.hosts.empty()
          ? runtime::loopback_host_list(nprocs, cfg.socket.base_port)
          : cfg.socket.hosts;
  PARIS_CHECK_MSG(static_cast<std::size_t>(cfg.socket.rank) < hosts.size(),
                  "socket child: rank outside the host list");
  std::printf("socket child: rank %d/%u epoch %u pid %d system=%s listen=%s\n",
              cfg.socket.rank, nprocs, cfg.socket.epoch, static_cast<int>(getpid()),
              proto::system_name(cfg.system),
              hosts[static_cast<std::size_t>(cfg.socket.rank)].str().c_str());
  std::fflush(stdout);

  std::vector<std::uint8_t> history;
  const ExperimentResult res = detail::run_local_experiment(
      cfg, cfg.check_consistency ? &history : nullptr);

  std::vector<std::uint8_t> out;
  detail::encode_child_result(res, history, out);
  PARIS_CHECK_MSG(detail::write_file(argv[4], out.data(), out.size()),
                  "socket child: cannot write the result file");
  std::printf(
      "socket child: done — %" PRIu64 " committed, %" PRIu64 " frames out / %" PRIu64
      " in, %" PRIu64 " retransmits, %" PRIu64 " redials (%" PRIu64 " giveups), %" PRIu64
      " stale-epoch fenced, %" PRIu64 " malformed, %" PRIu64 " snapshots / %" PRIu64
      " catchups served\n",
      res.committed, res.socket.frames_out, res.socket.frames_in,
      res.reliable.retransmits, res.socket.redial_attempts, res.socket.redial_giveups,
      res.socket.fenced_stale_epoch, res.socket.malformed_frames, res.snapshots_served,
      res.catchups_served);
  std::exit(0);
}

}  // namespace paris::workload
