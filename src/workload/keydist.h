#pragma once
// Pluggable key-popularity distributions for the workload engine. Every
// picker draws a RANK in [0, keys_per_partition); the generator maps ranks
// to keys with Topology::make_key, so a picker is partition-agnostic.
//
// Kinds:
//  - kZipfGray      YCSB Zipf via Gray et al. (common/rng.h Zipfian). The
//                   historical default: byte-identical draw sequences with
//                   every pre-existing seed are preserved by keeping it.
//  - kUniform       uniform over all ranks.
//  - kZipfRejection Zipf via Hörmann & Derflinger rejection-inversion:
//                   O(1) setup (no O(n) zeta precompute), exact Zipf PMF,
//                   supports theta >= 1 where the Gray generator cannot.
//  - kHotspot       hot_key_frac of the ranks absorb hot_access_frac of the
//                   accesses; uniform within the hot and cold sets.

#include <cstdint>

#include "common/rng.h"
#include "workload/spec.h"

namespace paris::workload {

const char* key_dist_name(KeyDistKind kind);
/// Parses "zipf" | "uniform" | "zipf-ri" | "hotspot"; false on junk.
bool parse_key_dist(const char* text, KeyDistKind* out);

class KeyPicker {
 public:
  /// Domain and distribution parameters come from the spec
  /// (keys_per_partition, zipf_theta, key_dist, hot_*_frac).
  explicit KeyPicker(const WorkloadSpec& spec);

  /// Draws a key rank in [0, n). Pure function of (picker, rng state):
  /// identical sequences per seed on every runtime backend.
  std::uint64_t draw(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  KeyDistKind kind() const { return kind_; }
  /// Number of ranks in the hot set (kHotspot only).
  std::uint64_t hot_n() const { return hot_n_; }

  /// Analytic P(rank = r) for the configured distribution — the oracle the
  /// chi-square generator tests compare empirical frequencies against.
  double pmf(std::uint64_t rank) const;

 private:
  std::uint64_t draw_rejection(Rng& rng) const;
  double h_integral(double x) const;
  double h(double x) const;
  double h_integral_inverse(double x) const;

  KeyDistKind kind_;
  std::uint64_t n_;
  double theta_ = 0;
  Zipfian gray_;  // always built; only consulted for kZipfGray
  // Rejection-inversion state (Hörmann & Derflinger 1996), kZipfRejection.
  double ri_hx1_ = 0;        // hIntegral(1.5) - 1
  double ri_hn_ = 0;         // hIntegral(n + 0.5)
  double ri_s_ = 0;          // acceptance shortcut threshold
  double ri_zetan_ = 0;      // zeta(n, theta), for pmf() only (lazy exact sum)
  // Hot-spot state.
  double hot_access_frac_ = 0;
  std::uint64_t hot_n_ = 0;
};

}  // namespace paris::workload
