#include "workload/generator.h"

#include <algorithm>

#include "common/assert.h"

namespace paris::workload {

TxGenerator::TxGenerator(const cluster::Topology& topo, const WorkloadSpec& spec,
                         DcId client_dc, std::uint64_t seed)
    : topo_(topo), spec_(spec), dc_(client_dc), rng_(seed), picker_(spec) {
  PARIS_CHECK(spec.writes_per_tx <= spec.ops_per_tx);
  PARIS_CHECK(spec.partitions_per_tx >= 1);
}

Value TxGenerator::make_value() {
  // Distinct, fixed-size payloads; uniqueness lets the checker compare
  // values, not just version tuples.
  const std::uint64_t tag = splitmix64((static_cast<std::uint64_t>(dc_) << 48) ^ ++value_seq_);
  Value v(spec_.value_size, '\0');
  for (std::uint32_t i = 0; i < spec_.value_size; ++i)
    v[i] = static_cast<char>((tag >> (8 * (i % 8))) & 0xff);
  return v;
}

TxPlan TxGenerator::next() {
  TxPlan plan;
  plan.multi_dc = rng_.chance(spec_.multi_dc_ratio);

  // Eligible partitions: only those replicated in the local DC for a
  // local-DC transaction; all partitions for a multi-DC one.
  const std::vector<PartitionId>* local = &topo_.partitions_at(dc_);
  const std::uint32_t domain = plan.multi_dc ? topo_.num_partitions()
                                             : static_cast<std::uint32_t>(local->size());
  PARIS_CHECK_MSG(domain > 0, "DC hosts no partitions");
  const std::uint32_t k = std::min(spec_.partitions_per_tx, domain);
  const auto picks = sample_distinct(rng_, domain, k);

  std::vector<PartitionId> parts(k);
  for (std::uint32_t i = 0; i < k; ++i)
    parts[i] = plan.multi_dc ? picks[i] : (*local)[picks[i]];

  // Round-robin the operations over the chosen partitions: reads first,
  // then writes, so both phases touch all partitions (the paper's
  // "4 partitions involved per transaction").
  const std::uint32_t reads = spec_.reads_per_tx();
  plan.reads.reserve(reads);
  for (std::uint32_t i = 0; i < reads; ++i) plan.reads.push_back(draw_key(parts[i % k]));
  plan.writes.reserve(spec_.writes_per_tx);
  for (std::uint32_t i = 0; i < spec_.writes_per_tx; ++i)
    plan.writes.push_back(wire::WriteKV{draw_key(parts[i % k]), make_value()});
  return plan;
}

TxPlan TxGenerator::next_for_key(Key k) {
  TxPlan plan;
  plan.multi_dc = !topo_.dc_replicates(dc_, topo_.partition_of(k));
  plan.reads.push_back(k);
  plan.writes.push_back(wire::WriteKV{k, make_value()});
  return plan;
}

}  // namespace paris::workload
