#include "workload/experiment.h"

#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/assert.h"
#include "stats/latency_recorder.h"
#include "verify/history.h"
#include "workload/driver.h"
#include "workload/openloop.h"
#include "workload/socket_runner.h"

namespace paris::workload {

namespace {

/// Tracer used by experiments: optional full-history recording (for the
/// exactness checker) plus sampled update-visibility measurement. Hooks
/// fire from every worker thread of a ThreadBackend, so mutations are
/// mutex-guarded (uncontended on the single-threaded sim backend).
class ExperimentTracer : public proto::Tracer {
 public:
  ExperimentTracer(bool check, bool visibility, std::uint32_t sample_shift)
      : check_(check), visibility_(visibility), sample_mask_((1u << sample_shift) - 1) {
    if (check_) history_ = std::make_unique<verify::HistoryRecorder>();
  }

  bool sampled(TxId tx) const {
    return (splitmix64(tx.raw) & sample_mask_) == 0;
  }

  void on_tx_started(NodeId client, TxId tx, Timestamp snapshot,
                     sim::SimTime now) override {
    if (history_) history_->on_tx_started(client, tx, snapshot, now);
  }

  void on_commit_writes(TxId tx, DcId origin,
                        const std::vector<wire::WriteKV>& writes) override {
    if (history_) history_->on_commit_writes(tx, origin, writes);
  }

  void on_commit_decided(TxId tx, Timestamp ct, DcId origin, sim::SimTime now) override {
    if (history_) history_->on_commit_decided(tx, ct, origin, now);
    if (visibility_ && sampled(tx)) {
      std::lock_guard<std::mutex> lk(mu_);
      commit_wall_[tx] = now;
    }
  }

  void on_replica_commit(TxId tx, Timestamp ct, DcId origin,
                         const wire::ReplicateTxn& txn) override {
    if (history_) history_->on_replica_commit(tx, ct, origin, txn);
  }

  void on_slice_served(DcId dc, PartitionId p, TxId tx, Timestamp snapshot,
                       std::uint8_t mode, const std::vector<wire::Item>& items,
                       sim::SimTime now) override {
    if (history_) history_->on_slice_served(dc, p, tx, snapshot, mode, items, now);
  }

  bool want_visibility(TxId tx) const override { return visibility_ && sampled(tx); }

  void on_visible(DcId, PartitionId, TxId tx, Timestamp, sim::SimTime now) override {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = commit_wall_.find(tx);
    // An apply can race ahead of the commit_wall_ record only if the tx was
    // not sampled; sampled() gates both sides, so a miss means the commit
    // happened before tracing was relevant (e.g. warmup overlap) — skip.
    if (it == commit_wall_.end()) return;
    visibility_hist_.record(now >= it->second ? now - it->second : 0);
  }

  verify::HistoryRecorder* history() { return history_.get(); }
  const stats::Histogram& visibility() const { return visibility_hist_; }

 private:
  bool check_;
  bool visibility_;
  std::uint64_t sample_mask_;
  std::mutex mu_;
  std::unique_ptr<verify::HistoryRecorder> history_;
  std::unordered_map<TxId, sim::SimTime> commit_wall_;
  stats::Histogram visibility_hist_;
};

}  // namespace

namespace detail {

ExperimentResult run_local_experiment(const ExperimentConfig& cfg,
                                      std::vector<std::uint8_t>* history_out) {
  const auto wall_start = std::chrono::steady_clock::now();

  proto::DeploymentConfig dc;
  dc.system = cfg.system;
  dc.runtime = cfg.runtime;
  dc.worker_threads = cfg.worker_threads;
  dc.socket = cfg.socket;
  dc.topo = {cfg.num_dcs, cfg.num_partitions, cfg.replication};
  dc.protocol = cfg.protocol;
  dc.cost = cfg.cost;
  dc.codec = cfg.codec;
  dc.aws_latency = cfg.aws_latency;
  dc.uniform_inter_dc_us = cfg.uniform_inter_dc_us;
  dc.uniform_intra_dc_us = cfg.uniform_intra_dc_us;
  dc.latency_model = cfg.latency_model;
  dc.chaos = cfg.chaos;
  dc.reliable = cfg.reliable;
  dc.reliable_cfg = cfg.reliable_cfg;
  dc.partitions = cfg.partitions;
  dc.wan = cfg.wan;
  dc.fuzz = cfg.fuzz;
  dc.membership = cfg.membership;
  dc.seed = cfg.seed;

  // Per-DC membership windows (offsets from run start, matching the
  // deployment's schedule timers): clients of a joining DC only start at its
  // join time; a leaving DC's clients stop at its leave time. An event's
  // rank expands to the DCs that rank owns, exactly as the deployment does.
  std::vector<std::uint64_t> join_at_us(cfg.num_dcs, 0);
  std::vector<std::uint64_t> leave_at_us(cfg.num_dcs, ~0ull);
  {
    const std::uint32_t nprocs = cfg.runtime == runtime::Kind::kSockets
                                     ? cfg.socket.resolve_processes(cfg.num_dcs)
                                     : cfg.num_dcs;
    for (const proto::MembershipEvent& ev : cfg.membership.events) {
      for (DcId d = 0; d < cfg.num_dcs; ++d) {
        if (d % nprocs != ev.rank) continue;
        (ev.join ? join_at_us : leave_at_us)[d] = ev.at_ms * 1000;
      }
    }
  }

  ExperimentTracer tracer(cfg.check_consistency, cfg.measure_visibility,
                          cfg.visibility_sample_shift);
  proto::Deployment dep(dc, &tracer);
  dep.start();

  // One client process per partition per DC, threads_per_process sessions
  // each, collocated with their coordinator (§V-A). EVERY process of a
  // socket deployment registers EVERY client — node ids must agree across
  // processes — but only builds sessions for the clients it hosts.
  //
  // Open-loop mode replaces the closed-loop sessions with one engine per
  // (DC, partition), multiplexing cfg.openloop.sessions logical sessions
  // onto a threads_per_process-wide client pool. Engine indices enumerate
  // the same (d, p) loop in every process so pre-drawn schedules (and the
  // cross-runtime workload digest) agree regardless of which process hosts
  // which engine.
  const bool open_loop = cfg.openloop.enabled;
  const std::uint64_t horizon_us = cfg.warmup_us + cfg.measure_us;
  std::vector<TraceEntry> trace;
  if (open_loop && !cfg.openloop.trace_path.empty()) {
    std::string err;
    const bool ok = load_trace(cfg.openloop.trace_path, &trace, &err);
    PARIS_CHECK_MSG(ok, err.c_str());
  }
  Collector collector;
  std::vector<std::unique_ptr<Session>> sessions;
  std::vector<NodeId> session_nodes;
  std::vector<DcId> session_dcs;
  std::vector<std::unique_ptr<OpenLoopEngine>> engines;
  const std::uint32_t num_engines = cfg.num_partitions * cfg.replication;
  std::uint32_t engine_index = 0;
  for (DcId d = 0; d < dep.topo().num_dcs(); ++d) {
    for (PartitionId p : dep.topo().partitions_at(d)) {
      if (open_loop) {
        std::vector<proto::Client*> pool;
        bool local = true;
        for (std::uint32_t t = 0; t < cfg.threads_per_process; ++t) {
          auto& client = dep.add_client(d, p);
          if (!dep.backend().local(client.node())) {
            local = false;
            continue;
          }
          pool.push_back(&client);
        }
        if (local && !pool.empty()) {
          const std::uint64_t eseed =
              splitmix64(cfg.seed ^ (static_cast<std::uint64_t>(d) << 40) ^
                         (static_cast<std::uint64_t>(p) << 20) ^ 0xA5A5ULL);
          auto eng = std::make_unique<OpenLoopEngine>(
              dep.topo(), cfg.workload, cfg.openloop, d, p, engine_index, num_engines,
              horizon_us, eseed, trace.empty() ? nullptr : &trace);
          for (proto::Client* c : pool) eng->add_client(c);
          eng->set_active_window(join_at_us[d], leave_at_us[d]);
          engines.push_back(std::move(eng));
        }
        ++engine_index;
        continue;
      }
      for (std::uint32_t t = 0; t < cfg.threads_per_process; ++t) {
        auto& client = dep.add_client(d, p);
        if (!dep.backend().local(client.node())) continue;
        const std::uint64_t seed =
            splitmix64(cfg.seed ^ (static_cast<std::uint64_t>(d) << 40) ^
                       (static_cast<std::uint64_t>(p) << 20) ^ t);
        sessions.push_back(std::make_unique<Session>(
            dep.exec(), client, TxGenerator(dep.topo(), cfg.workload, d, seed), collector));
        session_nodes.push_back(client.node());
        session_dcs.push_back(d);
      }
    }
  }

  // A respawned socket child (epoch > 0) streams donor state + catch-up
  // before it may serve: this starts the backend (all actors are registered
  // by now) and blocks until the transfer completes, so the t0 anchor below
  // never covers transactions run against a half-recovered store. Trivially
  // true for every other runtime.
  const auto recover_start = std::chrono::steady_clock::now();
  PARIS_CHECK_MSG(dep.wait_recovered(cfg.socket.connect_timeout_ms + 30'000),
                  "socket child: state transfer did not complete in time");
  const std::uint64_t recovery_ms =
      cfg.socket.epoch > 0
          ? static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                           std::chrono::steady_clock::now() - recover_start)
                                           .count())
          : 0;

  // The measurement window is anchored at the current runtime time: zero
  // for the sim backend (as before), the setup-elapsed steady-clock offset
  // for the threads backend.
  const sim::SimTime t0 = dep.exec().now_us();
  collector.set_window(t0 + cfg.warmup_us, t0 + cfg.warmup_us + cfg.measure_us);
  for (auto& eng : engines) {
    eng->recorder().set_window(t0 + cfg.warmup_us, t0 + cfg.warmup_us + cfg.measure_us);
    eng->start(dep.exec(), t0);
  }

  // Kick each closed loop on its client's execution context: inline for the
  // sim backend (the historical behavior), a mailbox task for threads. A
  // leaving DC's sessions drain at the leave time; a joining DC's sessions
  // are kicked by a fire-once timer at the join time instead of now (the
  // executor has no one-shot delayed post: huge period + a fired flag).
  constexpr std::uint64_t kFireOncePeriodUs = 3'600'000'000ull;
  std::vector<runtime::TimerHandle> session_gates;
  std::vector<std::unique_ptr<std::atomic<bool>>> gate_fired;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    Session* s = sessions[i].get();
    const DcId d = session_dcs[i];
    if (leave_at_us[d] != ~0ull) s->set_deadline(t0 + leave_at_us[d]);
    if (join_at_us[d] == 0) {
      dep.exec().post(session_nodes[i], [s] { s->run(); });
      continue;
    }
    gate_fired.push_back(std::make_unique<std::atomic<bool>>(false));
    std::atomic<bool>* fired = gate_fired.back().get();
    session_gates.push_back(dep.exec().every(
        session_nodes[i], kFireOncePeriodUs, join_at_us[d], [s, fired] {
          if (fired->exchange(true, std::memory_order_acq_rel)) return;
          s->run();
        }));
  }

  // Scheduled stall (CO regression tests): a helper thread flips the socket
  // pump's outbound stall toward one peer mid-run, then releases it.
  std::thread staller;
  if (cfg.runtime == runtime::Kind::kSockets && cfg.socket.rank >= 0 &&
      cfg.socket.rank == cfg.socket.stall_rank && cfg.socket.stall_len_ms > 0) {
    auto* sb = dep.socket_backend();
    PARIS_CHECK(sb != nullptr);
    const auto peer = cfg.socket.stall_peer;
    const auto at_ms = cfg.socket.stall_at_ms;
    const auto len_ms = cfg.socket.stall_len_ms;
    staller = std::thread([sb, peer, at_ms, len_ms] {
      std::this_thread::sleep_for(std::chrono::milliseconds(at_ms));
      sb->debug_stall_peer(peer, true);
      std::this_thread::sleep_for(std::chrono::milliseconds(len_ms));
      sb->debug_stall_peer(peer, false);
    });
  }

  dep.run_for(cfg.warmup_us + cfg.measure_us);
  if (staller.joinable()) staller.join();
  dep.stop();  // quiesce thread workers before reading state (sim: no-op)
  for (auto& eng : engines) eng->finalize();
  // A scheduled join must have completed inside the run: every joining
  // server finished its snapshot + catch-up and started serving.
  if (cfg.membership.enabled()) {
    PARIS_CHECK_MSG(dep.recovering_servers() == 0,
                    "membership join did not complete: servers still in state "
                    "transfer at run end (lengthen the run or move the join earlier)");
  }

  ExperimentResult res;
  res.throughput_tx_s = collector.throughput_tx_s();
  res.committed = collector.committed();
  res.latency_hist = collector.latency();
  res.latency_local_hist = collector.latency_local();
  res.latency_multi_hist = collector.latency_multi();
  res.latency_us = stats::Summary::of(res.latency_hist);

  if (open_loop) {
    stats::LatencyRecorder rec;
    for (const auto& eng : engines) {
      rec.merge(eng->recorder());
      res.workload_digest ^= eng->digest();
    }
    res.intended_rate_tx_s = rec.intended_rate();
    res.achieved_rate_tx_s = rec.achieved_rate();
    res.scheduled = rec.scheduled();
    res.overdue = rec.overdue();
    res.max_backlog = rec.max_backlog();
    res.intended_hist = rec.intended();
    res.service_hist = rec.service();
    res.intended_us = stats::Summary::of(res.intended_hist);
    res.service_us = stats::Summary::of(res.service_hist);
    // The generic throughput fields report the open-loop equivalents so
    // shared tooling (bench JSON, guard floors) keeps working.
    res.throughput_tx_s = res.achieved_rate_tx_s;
    res.committed = rec.completed();
  }

  const auto server_stats = dep.total_server_stats();
  res.blocked_reads = server_stats.reads_blocked;
  res.avg_block_ms = server_stats.reads_blocked
                         ? static_cast<double>(server_stats.blocked_time_us) /
                               static_cast<double>(server_stats.reads_blocked) / 1000.0
                         : 0.0;

  res.gossip_msgs = server_stats.gossip_msgs_sent;
  res.snapshots_served = server_stats.snapshots_served;
  res.catchups_served = server_stats.catchups_served;
  res.prepared_fenced = server_stats.prepared_fenced;
  res.recovery_ms = recovery_ms;
  res.keys_migrated = server_stats.keys_migrated;
  res.migrate_parked = server_stats.migrate_parked;
  res.migrate_chains_sent = server_stats.migrate_chains_sent;
  res.migrate_chains_installed = server_stats.migrate_chains_installed;
  res.sketch_reports = server_stats.sketch_reports_sent;
  res.replicate_factor_before =
      static_cast<double>(server_stats.replicate_factor_before_x1e6) / 1e6;
  res.replicate_factor_after =
      static_cast<double>(server_stats.replicate_factor_after_x1e6) / 1e6;
  res.load_rel_stddev_before =
      static_cast<double>(server_stats.load_rel_stddev_before_x1e6) / 1e6;
  res.load_rel_stddev_after =
      static_cast<double>(server_stats.load_rel_stddev_after_x1e6) / 1e6;
  for (const auto& c : dep.clients()) {
    res.max_client_cache = std::max(res.max_client_cache, c->stats().max_cache_size);
    res.keys_read += c->stats().keys_read;
    res.local_hits += c->stats().local_hits;
  }
  res.local_hit_rate =
      res.keys_read ? static_cast<double>(res.local_hits) / static_cast<double>(res.keys_read)
                    : 0;

  res.visibility_hist = tracer.visibility();
  res.sim_events = dep.backend().events_executed();
  res.bytes_sent = dep.transport().total_bytes_sent();
  if (dep.chaos_transport() != nullptr) res.chaos = dep.chaos_transport()->stats();
  if (dep.reliable_transport() != nullptr) res.reliable = dep.reliable_transport()->stats();
  if (dep.partition_transport() != nullptr) res.partition = dep.partition_transport()->stats();
  if (dep.wan_transport() != nullptr) res.wan = dep.wan_transport()->stats();
  if (dep.fuzz_transport() != nullptr) res.fuzz = dep.fuzz_transport()->stats();
  if (dep.socket_backend() != nullptr) res.socket = dep.socket_backend()->stats();
  if (tracer.history() != nullptr) {
    if (history_out != nullptr) {
      // Socket child: this process saw only its share of the execution —
      // checking it alone would report false phantoms for remote commits.
      // Ship the history; the launcher merges and checks.
      tracer.history()->serialize(*history_out);
    } else {
      res.violations = tracer.history()->check();
    }
  }

  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return res;
}

}  // namespace detail

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  if (cfg.runtime == runtime::Kind::kSockets && cfg.socket.rank < 0) {
    return detail::run_socket_parent(cfg);
  }
  return detail::run_local_experiment(cfg, nullptr);
}

}  // namespace paris::workload
