#include "workload/openloop.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/assert.h"

namespace paris::workload {

namespace {

/// Pump cadence: how often released-but-queued arrivals are checked against
/// the clock. 200us keeps release jitter well under the latencies measured.
constexpr std::uint64_t kPumpPeriodUs = 200;

/// Schedule memory guard: ~100 bytes/arrival means 4M arrivals is ~400MB
/// worst case per engine — far above any configuration the tests or benches
/// use, but a runaway rate*horizon product fails loudly instead of OOMing.
constexpr std::size_t kMaxArrivals = 4'000'000;

std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

const char* rate_profile_name(RateProfile p) {
  switch (p) {
    case RateProfile::kConstant: return "constant";
    case RateProfile::kDiurnal: return "diurnal";
    case RateProfile::kFlash: return "flash";
  }
  return "?";
}

bool parse_rate_profile(const char* text, RateProfile* out) {
  if (std::strcmp(text, "constant") == 0) {
    *out = RateProfile::kConstant;
  } else if (std::strcmp(text, "diurnal") == 0) {
    *out = RateProfile::kDiurnal;
  } else if (std::strcmp(text, "flash") == 0) {
    *out = RateProfile::kFlash;
  } else {
    return false;
  }
  return true;
}

bool load_trace(const std::string& path, std::vector<TraceEntry>* out, std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    *err = "cannot open trace file: " + path;
    return false;
  }
  char line[256];
  std::uint64_t last = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    char* s = line;
    while (*s == ' ' || *s == '\t') ++s;
    if (*s == '#' || *s == '\n' || *s == '\0') continue;
    TraceEntry e;
    char* end = nullptr;
    e.offset_us = std::strtoull(s, &end, 10);
    if (end == s) {
      *err = "bad trace line (expected 'offset_us [key_rank]'): " + std::string(line);
      std::fclose(f);
      return false;
    }
    s = end;
    while (*s == ' ' || *s == '\t') ++s;
    if (*s != '\n' && *s != '\0' && *s != '\r') {
      e.key_rank = std::strtoull(s, &end, 10);
      if (end == s) {
        *err = "bad trace key in line: " + std::string(line);
        std::fclose(f);
        return false;
      }
      e.has_key = true;
    }
    if (e.offset_us < last) {
      *err = "trace not time-sorted at offset " + std::to_string(e.offset_us);
      std::fclose(f);
      return false;
    }
    last = e.offset_us;
    out->push_back(e);
  }
  std::fclose(f);
  return true;
}

OpenLoopEngine::OpenLoopEngine(const cluster::Topology& topo, const WorkloadSpec& w,
                               const OpenLoopSpec& ol, DcId dc, PartitionId partition,
                               std::uint32_t engine_index, std::uint32_t num_engines,
                               std::uint64_t horizon_us, std::uint64_t seed,
                               const std::vector<TraceEntry>* trace)
    : horizon_us_(horizon_us) {
  PARIS_CHECK(num_engines > 0);
  const std::uint32_t sessions = ol.sessions > 0 ? ol.sessions : 1;
  // The generator and the arrival process use decoupled RNG streams so that
  // changing the rate never perturbs the transaction shapes and vice versa.
  TxGenerator gen(topo, w, dc, seed);
  Rng arrivals(splitmix64(seed ^ 0x9e3779b97f4a7c15ULL));

  if (trace != nullptr) {
    // Trace replay: lines are dealt round-robin across engines.
    for (std::size_t i = engine_index; i < trace->size(); i += num_engines) {
      const TraceEntry& e = (*trace)[i];
      if (e.offset_us > horizon_us) break;  // time-sorted: nothing later fits
      Arrival a;
      a.at_us = e.offset_us;
      a.session = static_cast<std::uint32_t>(i % sessions);
      a.plan = e.has_key
                   ? gen.next_for_key(topo.make_key(partition,
                                                    e.key_rank % w.keys_per_partition))
                   : gen.next();
      schedule_.push_back(std::move(a));
      if (schedule_.size() >= kMaxArrivals) break;
    }
  } else {
    const double base = ol.arrival_rate / static_cast<double>(num_engines);
    PARIS_CHECK_MSG(base > 0, "open-loop arrival rate must be positive");
    // Piecewise-Poisson: each inter-arrival gap is exponential at the
    // instantaneous rate. Exact for kConstant; for the shaped profiles the
    // rate is held over one gap, which is accurate while gaps are short
    // relative to the profile's timescale (they are: period >= 100ms,
    // gaps ~1/rate).
    double t = 0;
    std::uint64_t idx = 0;
    while (true) {
      double rate = base;
      switch (ol.profile) {
        case RateProfile::kConstant:
          break;
        case RateProfile::kDiurnal:
          rate = base * (1.0 + ol.diurnal_amp *
                                   std::sin(2.0 * M_PI * t /
                                            static_cast<double>(ol.diurnal_period_us)));
          if (rate < base * 0.01) rate = base * 0.01;
          break;
        case RateProfile::kFlash:
          if (t >= static_cast<double>(ol.flash_at_us) &&
              t < static_cast<double>(ol.flash_at_us + ol.flash_len_us)) {
            rate = base * ol.flash_mult;
          }
          break;
      }
      double u = arrivals.next_double();
      if (u < 1e-12) u = 1e-12;
      t += -std::log(u) / rate * 1e6;
      if (t > static_cast<double>(horizon_us)) break;
      Arrival a;
      a.at_us = static_cast<std::uint64_t>(t);
      a.session = static_cast<std::uint32_t>(idx % sessions);
      a.plan = gen.next();
      schedule_.push_back(std::move(a));
      ++idx;
      PARIS_CHECK_MSG(schedule_.size() < kMaxArrivals,
                      "open-loop schedule exceeds the arrival cap; lower "
                      "--arrival-rate or the run length");
    }
  }

  // FNV-1a over the whole schedule: arrival times, session ids and every
  // key touched. Engines XOR into the experiment-level workload digest.
  std::uint64_t h = 1469598103934665603ULL;
  for (const Arrival& a : schedule_) {
    h = fnv1a_mix(h, a.at_us);
    h = fnv1a_mix(h, a.session);
    for (Key k : a.plan.reads) h = fnv1a_mix(h, k);
    for (const auto& kv : a.plan.writes) h = fnv1a_mix(h, kv.k);
  }
  digest_ = h;
}

void OpenLoopEngine::add_client(proto::Client* c) { clients_.push_back(c); }

void OpenLoopEngine::start(runtime::Executor& exec, std::uint64_t t0) {
  PARIS_CHECK_MSG(!clients_.empty(), "open-loop engine started without clients");
  exec_ = &exec;
  t0_ = t0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    idle_.clear();
    for (std::size_t i = 0; i < clients_.size(); ++i) idle_.push_back(i);
  }
  pump_timer_ =
      exec.every(clients_[0]->node(), kPumpPeriodUs, kPumpPeriodUs, [this] { pump(); });
}

void OpenLoopEngine::finalize() {
  pump_timer_.cancel();
  std::lock_guard<std::mutex> lk(mu_);
  // Everything the schedule intended to send counts as scheduled — whether
  // or not the pump got to it before the run ended. This is what keeps the
  // intended rate honest when the system (or the pump behind a stalled
  // worker) falls behind.
  while (next_ < schedule_.size() && schedule_[next_].at_us <= horizon_us_) {
    const std::uint64_t at = schedule_[next_].at_us;
    if (at >= active_from_us_ && at < active_until_us_) rec_.note_scheduled(t0_ + at);
    ++next_;
  }
}

void OpenLoopEngine::pump() {
  const std::uint64_t now = exec_->now_us();
  std::lock_guard<std::mutex> lk(mu_);
  while (next_ < schedule_.size() && t0_ + schedule_[next_].at_us <= now) {
    const std::uint64_t at = schedule_[next_].at_us;
    if (at < active_from_us_ || at >= active_until_us_) {
      ++next_;  // outside this DC's membership window: intentionally unsent
      continue;
    }
    rec_.note_scheduled(t0_ + at);
    backlog_.push_back(next_);
    ++next_;
  }
  rec_.note_backlog(backlog_.size());
  while (!backlog_.empty() && !idle_.empty()) {
    const std::size_t ci = idle_.back();
    idle_.pop_back();
    const std::size_t ai = backlog_.front();
    backlog_.pop_front();
    // Hop to the client's own execution context (inline on the sim backend,
    // a mailbox task on threads). run_tx touches no engine state that needs
    // mu_, so the inline case cannot deadlock.
    exec_->post(clients_[ci]->node(), [this, ci, ai] { run_tx(ci, ai); });
  }
}

void OpenLoopEngine::run_tx(std::size_t ci, std::size_t ai) {
  proto::Client& c = *clients_[ci];
  const std::uint64_t started = exec_->now_us();
  const TxPlan& plan = schedule_[ai].plan;  // immutable after construction
  c.start_tx([this, ci, ai, started, &c, &plan](TxId, Timestamp) {
    if (plan.reads.empty()) {
      if (!plan.writes.empty()) c.write(plan.writes);
      c.commit([this, ci, ai, started](Timestamp) { on_done(ci, ai, started); });
      return;
    }
    c.read(plan.reads, [this, ci, ai, started, &c, &plan](std::vector<wire::Item>) {
      if (!plan.writes.empty()) c.write(plan.writes);
      c.commit([this, ci, ai, started](Timestamp) { on_done(ci, ai, started); });
    });
  });
}

void OpenLoopEngine::on_done(std::size_t ci, std::size_t ai, std::uint64_t started) {
  const std::uint64_t finished = exec_->now_us();
  std::size_t next_ai = static_cast<std::size_t>(-1);
  {
    std::lock_guard<std::mutex> lk(mu_);
    rec_.record(t0_ + schedule_[ai].at_us, started, finished);
    if (!backlog_.empty()) {
      next_ai = backlog_.front();
      backlog_.pop_front();
    } else {
      idle_.push_back(ci);
    }
  }
  // Already on this client's context: chain the next queued arrival
  // directly, keeping the channel saturated while a backlog exists.
  if (next_ai != static_cast<std::size_t>(-1)) run_tx(ci, next_ai);
}

}  // namespace paris::workload
