#pragma once
// Workload specification (§V-A): YCSB-style read/write mixes, zipfian key
// popularity, transaction shapes and the local-DC : multi-DC locality ratio.

#include <cstdint>
#include <string>

namespace paris::workload {

/// Key-popularity distribution (see workload/keydist.h for semantics).
enum class KeyDistKind : std::uint8_t {
  kZipfGray = 0,       ///< YCSB Zipf, Gray et al. (historical default)
  kUniform = 1,        ///< uniform over all ranks
  kZipfRejection = 2,  ///< Zipf via Hörmann rejection-inversion (theta >= 1 ok)
  kHotspot = 3,        ///< hot_key_frac of keys get hot_access_frac of accesses
};

struct WorkloadSpec {
  /// Operations per transaction (the paper always uses 20).
  std::uint32_t ops_per_tx = 20;
  /// Writes among those (1 -> 95:5 "workload B"; 10 -> 50:50 "workload A").
  std::uint32_t writes_per_tx = 1;
  /// Distinct partitions a transaction touches (paper default: 4).
  std::uint32_t partitions_per_tx = 4;
  /// Fraction of transactions that may touch partitions outside the local
  /// DC (0.05 = the paper's default 95:5 local:multi ratio).
  double multi_dc_ratio = 0.05;
  /// Keys per partition; zipfian ranks are drawn within a partition.
  std::uint64_t keys_per_partition = 10'000;
  /// YCSB default skew.
  double zipf_theta = 0.99;
  /// Item payload size (the paper uses small 8-byte items).
  std::uint32_t value_size = 8;
  /// Which key-popularity distribution draws ranks within a partition.
  KeyDistKind key_dist = KeyDistKind::kZipfGray;
  /// kHotspot: fraction of keys in the hot set (N%)...
  double hot_key_frac = 0.01;
  /// ...and fraction of accesses that land in it (M%).
  double hot_access_frac = 0.90;

  /// YCSB-B-like: 95:5 r:w => 19 reads + 1 write.
  static WorkloadSpec read_heavy() { return WorkloadSpec{}; }
  /// YCSB-A-like: 50:50 r:w => 10 reads + 10 writes.
  static WorkloadSpec write_heavy() {
    WorkloadSpec s;
    s.writes_per_tx = 10;
    return s;
  }

  std::uint32_t reads_per_tx() const { return ops_per_tx - writes_per_tx; }
  std::string describe() const;
};

}  // namespace paris::workload
