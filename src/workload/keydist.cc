#include "workload/keydist.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/assert.h"

namespace paris::workload {

const char* key_dist_name(KeyDistKind kind) {
  switch (kind) {
    case KeyDistKind::kZipfGray: return "zipf";
    case KeyDistKind::kUniform: return "uniform";
    case KeyDistKind::kZipfRejection: return "zipf-ri";
    case KeyDistKind::kHotspot: return "hotspot";
  }
  return "?";
}

bool parse_key_dist(const char* text, KeyDistKind* out) {
  if (std::strcmp(text, "zipf") == 0) { *out = KeyDistKind::kZipfGray; return true; }
  if (std::strcmp(text, "uniform") == 0) { *out = KeyDistKind::kUniform; return true; }
  if (std::strcmp(text, "zipf-ri") == 0) { *out = KeyDistKind::kZipfRejection; return true; }
  if (std::strcmp(text, "hotspot") == 0) { *out = KeyDistKind::kHotspot; return true; }
  return false;
}

namespace {
// Numerically stable helpers from Hörmann & Derflinger, "Rejection-inversion
// to generate variates from monotone discrete distributions" (1996):
// helper1(x) = log1p(x)/x, helper2(x) = expm1(x)/x, both with series
// expansions near 0 so theta == 1 is handled exactly.
double helper1(double x) {
  if (std::fabs(x) > 1e-8) return std::log1p(x) / x;
  return 1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x));
}
double helper2(double x) {
  if (std::fabs(x) > 1e-8) return std::expm1(x) / x;
  return 1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + 0.25 * x));
}
double zeta_sum(std::uint64_t n, double theta) {
  double sum = 0;
  for (std::uint64_t i = 1; i <= n; ++i)
    sum += std::exp(-theta * std::log(static_cast<double>(i)));
  return sum;
}
}  // namespace

// H(x) = integral of x^-theta: (x^{1-theta} - 1)/(1-theta), log x at theta=1.
double KeyPicker::h_integral(double x) const {
  const double log_x = std::log(x);
  return helper2((1.0 - theta_) * log_x) * log_x;
}

double KeyPicker::h(double x) const { return std::exp(-theta_ * std::log(x)); }

double KeyPicker::h_integral_inverse(double x) const {
  double t = x * (1.0 - theta_);
  if (t < -1.0) t = -1.0;  // round-off guard near the domain boundary
  return std::exp(helper1(t) * x);
}

KeyPicker::KeyPicker(const WorkloadSpec& spec)
    : kind_(spec.key_dist),
      n_(spec.keys_per_partition),
      theta_(spec.zipf_theta),
      // The Gray generator only supports theta in (0,1); feed it a clamped
      // value when another kind is active (it is never drawn from then).
      gray_(spec.keys_per_partition,
            spec.key_dist == KeyDistKind::kZipfGray
                ? spec.zipf_theta
                : std::clamp(spec.zipf_theta, 0.01, 0.99)) {
  PARIS_CHECK_MSG(n_ > 0, "key distribution over empty domain");
  if (kind_ == KeyDistKind::kZipfRejection) {
    PARIS_CHECK_MSG(theta_ > 0, "zipf-ri needs theta > 0");
    ri_hx1_ = h_integral(1.5) - 1.0;
    ri_hn_ = h_integral(static_cast<double>(n_) + 0.5);
    ri_s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
    ri_zetan_ = zeta_sum(n_, theta_);
  } else if (kind_ == KeyDistKind::kZipfGray) {
    ri_zetan_ = zeta_sum(n_, theta_);
  } else if (kind_ == KeyDistKind::kHotspot) {
    PARIS_CHECK_MSG(spec.hot_key_frac > 0 && spec.hot_key_frac < 1,
                    "hot_key_frac must be in (0,1)");
    PARIS_CHECK_MSG(spec.hot_access_frac >= 0 && spec.hot_access_frac <= 1,
                    "hot_access_frac must be in [0,1]");
    hot_access_frac_ = spec.hot_access_frac;
    const auto hot = static_cast<std::uint64_t>(
        std::llround(spec.hot_key_frac * static_cast<double>(n_)));
    hot_n_ = std::clamp<std::uint64_t>(hot, 1, n_ > 1 ? n_ - 1 : 1);
  }
}

std::uint64_t KeyPicker::draw_rejection(Rng& rng) const {
  // Hörmann rejection-inversion over [1, n]; expected < 1.1 iterations.
  for (;;) {
    const double u = ri_hn_ + rng.next_double() * (ri_hx1_ - ri_hn_);
    const double x = h_integral_inverse(u);
    double kd = std::floor(x + 0.5);
    if (kd < 1.0) kd = 1.0;
    const double nd = static_cast<double>(n_);
    if (kd > nd) kd = nd;
    if (kd - x <= ri_s_ || u >= h_integral(kd + 0.5) - h(kd))
      return static_cast<std::uint64_t>(kd) - 1;
  }
}

std::uint64_t KeyPicker::draw(Rng& rng) const {
  switch (kind_) {
    case KeyDistKind::kZipfGray:
      return gray_.draw(rng);
    case KeyDistKind::kUniform:
      return rng.next_below(n_);
    case KeyDistKind::kZipfRejection:
      return draw_rejection(rng);
    case KeyDistKind::kHotspot:
      if (rng.chance(hot_access_frac_)) return rng.next_below(hot_n_);
      return n_ > hot_n_ ? hot_n_ + rng.next_below(n_ - hot_n_) : rng.next_below(n_);
  }
  PARIS_CHECK_MSG(false, "bad key dist");
  return 0;
}

double KeyPicker::pmf(std::uint64_t rank) const {
  PARIS_DCHECK(rank < n_);
  switch (kind_) {
    case KeyDistKind::kUniform:
      return 1.0 / static_cast<double>(n_);
    case KeyDistKind::kZipfGray:
    case KeyDistKind::kZipfRejection:
      return std::exp(-theta_ * std::log(static_cast<double>(rank + 1))) / ri_zetan_;
    case KeyDistKind::kHotspot:
      if (rank < hot_n_) return hot_access_frac_ / static_cast<double>(hot_n_);
      return (1.0 - hot_access_frac_) / static_cast<double>(n_ - hot_n_);
  }
  return 0;
}

}  // namespace paris::workload
