#pragma once
// Per-client transaction generator: picks the partitions a transaction
// touches (local-DC or anywhere, §V-A), spreads the 20 operations
// round-robin over them, and draws keys zipfian within each partition.

#include <vector>

#include "cluster/membership.h"
#include "common/rng.h"
#include "wire/messages.h"
#include "workload/keydist.h"
#include "workload/spec.h"

namespace paris::workload {

/// One planned transaction: the reads execute first (in parallel), then the
/// writes (buffered, committed together) — the paper's transaction shape.
struct TxPlan {
  std::vector<Key> reads;
  std::vector<wire::WriteKV> writes;
  bool multi_dc = false;
};

class TxGenerator {
 public:
  TxGenerator(const cluster::Topology& topo, const WorkloadSpec& spec, DcId client_dc,
              std::uint64_t seed);

  TxPlan next();

  /// Trace replay: a minimal transaction pinned to `k` — one read of k and
  /// one write to k (multi_dc iff k's partition is not replicated locally).
  /// Bypasses the arrival-independent key distribution entirely.
  TxPlan next_for_key(Key k);

  const WorkloadSpec& spec() const { return spec_; }
  const KeyPicker& picker() const { return picker_; }

 private:
  Key draw_key(PartitionId p) { return topo_.make_key(p, picker_.draw(rng_)); }
  Value make_value();

  const cluster::Topology& topo_;
  WorkloadSpec spec_;
  DcId dc_;
  Rng rng_;
  KeyPicker picker_;
  std::uint64_t value_seq_ = 0;
};

}  // namespace paris::workload
