#pragma once
// Multi-process experiment orchestration for the socket runtime.
//
// A socket experiment is the SAME run_experiment() call, but the launcher
// side never builds a deployment: it serializes the ExperimentConfig to a
// file, re-executes its own binary once per process rank
// (`/proc/self/exe --paris-socket-child CFGFILE RANK OUTFILE`, stdout and
// stderr redirected to per-child log files), waits for the group, merges
// every child's stats/histograms, and — with check_consistency on — runs
// the exactness/causal/session checkers over the MERGED history: children
// record the events they host (commits at the origin coordinator, slices at
// the serving replica, session starts at the client) and ship them in the
// result file, so the launcher sees the complete cross-process execution.
//
// Any binary that can run --runtime=sockets must call
// maybe_run_socket_child() FIRST THING in main(): that is the hook the
// re-exec'd children are caught by. Binaries that never use sockets are
// unaffected (the call is a no-op without the marker argv).

#include <cstdint>
#include <string>
#include <vector>

#include "workload/experiment.h"

namespace paris::workload {

/// Child-process hook; see above. Never returns in a child (runs the
/// child's share of the experiment, writes the result file, exits).
void maybe_run_socket_child(int argc, char** argv);

namespace detail {

/// The single-process experiment body (sim, threads, or one socket child).
/// With `history_out` non-null the recorded history is serialized into it
/// and the offline checkers are NOT run here (the launcher checks the
/// merged history instead).
ExperimentResult run_local_experiment(const ExperimentConfig& cfg,
                                      std::vector<std::uint8_t>* history_out);

/// Launcher side: spawn children, wait, merge. Aborts via PARIS_CHECK on
/// plumbing failures; child crashes/timeouts surface as `violations`
/// entries (with the child log tails echoed to stderr) so callers fail
/// loudly without wedging.
ExperimentResult run_socket_parent(const ExperimentConfig& cfg);

/// Line-based (key value) config codec covering every field a socket run
/// can reach from the CLI/bench surface. The first line is a `cfgver N`
/// header; decode rejects a config from a different build with an error
/// naming both versions (mixed-version launcher/child), and still rejects
/// unknown keys within a matching version: a config silently dropping a
/// field would make children run a DIFFERENT experiment than the launcher
/// believes. `err` (optional) receives the human-readable reason.
std::string encode_experiment_config(const ExperimentConfig& cfg);
bool decode_experiment_config(const std::string& text, ExperimentConfig& cfg,
                              std::string* err = nullptr);

/// Binary child-result codec (wire::Encoder framing): stats + histograms +
/// the serialized history blob.
void encode_child_result(const ExperimentResult& res,
                         const std::vector<std::uint8_t>& history,
                         std::vector<std::uint8_t>& out);
bool decode_child_result(const std::vector<std::uint8_t>& in, ExperimentResult& res,
                         std::vector<std::uint8_t>& history);

}  // namespace detail
}  // namespace paris::workload
