#pragma once
// End-to-end experiment runner: builds a deployment, populates it with
// closed-loop client sessions (one client process per partition per DC,
// `threads_per_process` sessions each, as in §V-A), runs warmup +
// measurement, and returns aggregate results. Every figure benchmark in
// bench/ is a parameter sweep over run_experiment().

#include <string>
#include <vector>

#include "proto/deployment.h"
#include "stats/histogram.h"
#include "stats/summary.h"
#include "workload/openloop.h"
#include "workload/spec.h"

namespace paris::workload {

struct ExperimentConfig {
  proto::System system = proto::System::kParis;

  /// Runtime backend: deterministic simulator (default), real worker
  /// threads (`worker_threads` workers; 0 = one per server), or real OS
  /// processes over TCP loopback (kSockets: run_experiment spawns
  /// `socket.processes` children of the CURRENT binary — which must call
  /// maybe_run_socket_child() first thing in main() — waits, merges their
  /// stats and runs the checker over the merged history).
  runtime::Kind runtime = runtime::Kind::kSim;
  std::uint32_t worker_threads = 0;
  runtime::SocketConfig socket;
  /// Elastic membership schedule (DESIGN §11): scheduled DC join/leave view
  /// changes, measured from the post-warmup t0. A joining DC's clients only
  /// start at the join time; a leaving DC's clients stop at the leave time.
  proto::MembershipSchedule membership;

  // Cluster shape.
  std::uint32_t num_dcs = 5;
  std::uint32_t num_partitions = 45;
  std::uint32_t replication = 2;

  WorkloadSpec workload;
  /// Open-loop mode (DESIGN §14): when enabled, the closed-loop sessions are
  /// replaced by one OpenLoopEngine per (DC, partition replicated there)
  /// releasing a pre-drawn arrival schedule; threads_per_process sizes each
  /// engine's client pool instead of its session count.
  OpenLoopSpec openloop;
  /// Client threads per (DC, partition) client process; the load knob the
  /// paper sweeps to trace the throughput/latency curves.
  std::uint32_t threads_per_process = 4;

  sim::SimTime warmup_us = 300'000;
  sim::SimTime measure_us = 1'000'000;
  std::uint64_t seed = 1;

  /// Record every slice and run the offline exactness checker afterwards
  /// (memory-heavy; tests and small runs only).
  bool check_consistency = false;
  /// Track update visibility latency (Fig. 4); transactions are sampled at
  /// 1 / (1 << visibility_sample_shift).
  bool measure_visibility = false;
  std::uint32_t visibility_sample_shift = 4;

  proto::ProtocolConfig protocol;
  proto::CostModel cost;
  bool aws_latency = true;
  std::uint64_t uniform_inter_dc_us = 40'000;
  std::uint64_t uniform_intra_dc_us = 150;
  /// Threads runtime: latency-injecting transport decorator (the sim
  /// backend models latency itself) and optional fault injection — both
  /// draw from the aws/uniform latency settings above.
  runtime::LatencyModelKind latency_model = runtime::LatencyModelKind::kNone;
  runtime::ChaosConfig chaos;
  /// Threads runtime: at-least-once reliable delivery (chaos drops of any
  /// class and partitions still converge) and scheduled inter-DC blackouts.
  bool reliable = false;
  runtime::ReliableConfig reliable_cfg;
  runtime::PartitionSpec partitions;
  /// Threads/sockets: WAN-realism link episodes and live channel fuzzing
  /// (the scenario engine's knobs; both off by default).
  runtime::WanConfig wan;
  runtime::FuzzConfig fuzz;
  /// Benchmarks default to size-only codec accounting; tests use kBytes to
  /// exercise the serialization on every delivery.
  sim::CodecMode codec = sim::CodecMode::kSizeOnly;

  /// machines per DC for this config (each machine hosts one partition
  /// replica): N * R / M.
  double machines_per_dc() const {
    return static_cast<double>(num_partitions) * replication / num_dcs;
  }
};

struct ExperimentResult {
  double throughput_tx_s = 0;
  std::uint64_t committed = 0;
  stats::Summary latency_us;
  stats::Histogram latency_hist;        // µs
  stats::Histogram latency_local_hist;  // µs
  stats::Histogram latency_multi_hist;  // µs

  // BPR read blocking (whole run, §V-B "Blocking time").
  std::uint64_t blocked_reads = 0;
  double avg_block_ms = 0;

  // Update visibility latency (µs), all replicas of sampled transactions.
  stats::Histogram visibility_hist;

  // Stabilization / client-cache footprint (ablations). The raw hit-rate
  // numerator/denominator ride along so multi-process runs can merge the
  // ratio exactly.
  std::uint64_t gossip_msgs = 0;
  std::size_t max_client_cache = 0;
  double local_hit_rate = 0;
  std::uint64_t keys_read = 0;
  std::uint64_t local_hits = 0;

  // Run health / cost.
  std::uint64_t sim_events = 0;
  std::uint64_t bytes_sent = 0;
  double wall_seconds = 0;
  /// Fault-injection tallies (all zero unless cfg.chaos enabled).
  runtime::ChaosTransport::Stats chaos;
  /// Reliable-delivery tallies (all zero unless cfg.reliable).
  runtime::ReliableTransport::Stats reliable;
  /// Blackout tallies (all zero unless cfg.partitions configured).
  runtime::PartitionTransport::Stats partition;
  /// WAN link-shaping tallies (all zero unless cfg.wan configured).
  runtime::WanTransport::Stats wan;
  /// Channel-fuzzing tallies (all zero unless cfg.fuzz enabled).
  runtime::FuzzTransport::Stats fuzz;
  /// Socket-runtime tallies, summed across children (zero otherwise).
  runtime::SocketStats socket;
  /// Self-healing tallies (supervised socket runs; zero otherwise).
  std::uint64_t respawns = 0;          ///< launcher: dead ranks respawned
  std::uint64_t snapshots_served = 0;  ///< donor-side state transfers
  std::uint64_t catchups_served = 0;   ///< catch-up delta streams served
  std::uint64_t prepared_fenced = 0;   ///< 2PC entries fenced after a crash
  /// Slowest child's mesh-join + state-transfer time (ms): ~0 for a cold
  /// start, the time-to-rejoin for a respawned rank.
  std::uint64_t recovery_ms = 0;

  // --- Open-loop engine results (all zero/empty unless cfg.openloop.enabled;
  // DESIGN §14). Intended latency is measured from each request's SCHEDULED
  // arrival, service latency from its actual start — coordinated-omission-
  // safe, so a stalled server shows up in intended p99 instead of vanishing.
  double intended_rate_tx_s = 0;   ///< what the arrival process asked for
  double achieved_rate_tx_s = 0;   ///< what the system completed
  std::uint64_t scheduled = 0;     ///< arrivals scheduled inside the window
  std::uint64_t overdue = 0;       ///< arrivals that had to queue for a client
  std::uint64_t max_backlog = 0;   ///< deepest release backlog observed
  stats::Histogram intended_hist;  ///< µs, finished - scheduled
  stats::Histogram service_hist;   ///< µs, finished - started
  stats::Summary intended_us;
  stats::Summary service_us;
  /// XOR of per-engine FNV-1a schedule digests: equal across the sim, thread
  /// and socket runtimes for the same (config, seed).
  std::uint64_t workload_digest = 0;

  // --- Workload-aware placement results (zero unless placement_policy set).
  double replicate_factor_before = 0;
  double replicate_factor_after = 0;
  double load_rel_stddev_before = 0;
  double load_rel_stddev_after = 0;
  std::uint64_t keys_migrated = 0;
  std::uint64_t migrate_parked = 0;
  std::uint64_t migrate_chains_sent = 0;
  std::uint64_t migrate_chains_installed = 0;
  std::uint64_t sketch_reports = 0;

  std::vector<std::string> violations;  // non-empty => consistency bug
};

ExperimentResult run_experiment(const ExperimentConfig& cfg);

}  // namespace paris::workload
