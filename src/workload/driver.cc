#include "workload/driver.h"

namespace paris::workload {

void Collector::record_tx(sim::SimTime started, sim::SimTime finished, bool multi_dc) {
  std::lock_guard<std::mutex> lk(mu_);
  if (finished < begin_ || finished >= end_) return;
  ++committed_;
  const sim::SimTime lat = finished - started;
  latency_.record(lat);
  (multi_dc ? latency_multi_ : latency_local_).record(lat);
}

Session::Session(runtime::Executor& exec, proto::Client& client, TxGenerator gen,
                 Collector& collector)
    : exec_(exec), client_(client), gen_(std::move(gen)), collector_(collector) {}

void Session::next_tx() {
  if (deadline_us_ != 0 && exec_.now_us() >= deadline_us_) return;
  tx_start_ = exec_.now_us();
  plan_ = gen_.next();

  client_.start_tx([this](TxId, Timestamp) {
    if (plan_.reads.empty()) {
      write_and_commit();  // write-only transaction
      return;
    }
    // Phase 1: all reads in parallel (the paper's transaction shape).
    client_.read(plan_.reads, [this](std::vector<wire::Item>) { write_and_commit(); });
  });
}

void Session::write_and_commit() {
  // Phase 2: buffer all writes, then commit atomically.
  if (!plan_.writes.empty()) client_.write(plan_.writes);
  client_.commit([this](Timestamp) {
    collector_.record_tx(tx_start_, exec_.now_us(), plan_.multi_dc);
    ++txs_done_;
    next_tx();
  });
}

}  // namespace paris::workload
