#pragma once
// Closed-loop workload driver. A Session emulates one client thread of the
// paper's benchmark: start tx -> parallel reads -> buffered writes ->
// commit, immediately followed by the next transaction. The Collector
// aggregates committed-transaction latency/throughput over a measurement
// window (events outside the window — warmup and drain — are discarded).

#include <memory>
#include <mutex>
#include <vector>

#include "proto/client.h"
#include "runtime/executor.h"
#include "stats/histogram.h"
#include "workload/generator.h"

namespace paris::workload {

class Collector {
 public:
  void set_window(sim::SimTime begin, sim::SimTime end) {
    begin_ = begin;
    end_ = end;
  }

  /// Thread-safe: sessions on different workers of a ThreadBackend report
  /// concurrently (the mutex is uncontended on the single-threaded sim).
  void record_tx(sim::SimTime started, sim::SimTime finished, bool multi_dc);

  std::uint64_t committed() const { return committed_; }
  double window_seconds() const { return static_cast<double>(end_ - begin_) / 1e6; }
  double throughput_tx_s() const {
    return window_seconds() > 0 ? static_cast<double>(committed_) / window_seconds() : 0;
  }
  const stats::Histogram& latency() const { return latency_; }
  const stats::Histogram& latency_local() const { return latency_local_; }
  const stats::Histogram& latency_multi() const { return latency_multi_; }

 private:
  std::mutex mu_;
  sim::SimTime begin_ = 0, end_ = 0;
  std::uint64_t committed_ = 0;
  stats::Histogram latency_;        // µs, all transactions
  stats::Histogram latency_local_;  // µs, local-DC transactions
  stats::Histogram latency_multi_;  // µs, multi-DC transactions
};

class Session {
 public:
  Session(runtime::Executor& exec, proto::Client& client, TxGenerator gen,
          Collector& collector);

  /// Kicks off the closed loop; transactions chain until the runtime stops
  /// being run. On a threads backend, call via Executor::post so the loop
  /// starts on the client's own worker.
  void run() { next_tx(); }

  /// Stops the loop once runtime time reaches `abs_us` (checked between
  /// transactions): a leaving DC's clients drain instead of issuing into a
  /// replica set that no longer routes to them. 0 = no deadline.
  void set_deadline(std::uint64_t abs_us) { deadline_us_ = abs_us; }

  std::uint64_t txs_done() const { return txs_done_; }

 private:
  void next_tx();
  void write_and_commit();

  runtime::Executor& exec_;
  proto::Client& client_;
  TxGenerator gen_;
  Collector& collector_;
  TxPlan plan_;
  sim::SimTime tx_start_ = 0;
  std::uint64_t txs_done_ = 0;
  std::uint64_t deadline_us_ = 0;
};

}  // namespace paris::workload
