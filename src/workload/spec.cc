#include "workload/spec.h"

#include <cstdio>

namespace paris::workload {

std::string WorkloadSpec::describe() const {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "%u ops/tx (%ur:%uw), %u partitions/tx, local:multi %.0f:%.0f, zipf %.2f",
                ops_per_tx, reads_per_tx(), writes_per_tx, partitions_per_tx,
                (1.0 - multi_dc_ratio) * 100.0, multi_dc_ratio * 100.0, zipf_theta);
  std::string out = buf;
  // Non-default distributions announce themselves; the default keeps the
  // historical one-line format byte-identical (the determinism CI gate
  // byte-diffs sim output).
  switch (key_dist) {
    case KeyDistKind::kZipfGray:
      break;
    case KeyDistKind::kUniform:
      out += ", dist uniform";
      break;
    case KeyDistKind::kZipfRejection:
      out += ", dist zipf-ri";
      break;
    case KeyDistKind::kHotspot: {
      std::snprintf(buf, sizeof(buf), ", dist hotspot %.0f%%/%.0f%%", hot_key_frac * 100.0,
                    hot_access_frac * 100.0);
      out += buf;
      break;
    }
  }
  return out;
}

}  // namespace paris::workload
