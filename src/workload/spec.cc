#include "workload/spec.h"

#include <cstdio>

namespace paris::workload {

std::string WorkloadSpec::describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%u ops/tx (%ur:%uw), %u partitions/tx, local:multi %.0f:%.0f, zipf %.2f",
                ops_per_tx, reads_per_tx(), writes_per_tx, partitions_per_tx,
                (1.0 - multi_dc_ratio) * 100.0, multi_dc_ratio * 100.0, zipf_theta);
  return buf;
}

}  // namespace paris::workload
