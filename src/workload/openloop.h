#pragma once
// Open-loop workload engine (DESIGN §14). Unlike the closed-loop Session
// (driver.h), which only issues a request after the previous one finished,
// the open-loop engine PRE-DRAWS a deterministic arrival schedule — a
// Poisson process at a target rate (optionally shaped by a diurnal or
// flash-crowd profile) or a replayed trace — and releases arrivals at their
// scheduled times regardless of how the system is keeping up. Arrivals that
// find every client busy are never dropped: they queue in a FIFO backlog and
// their wait is charged to intended latency (stats/latency_recorder.h), the
// coordinated-omission-safe convention.
//
// One engine exists per (DC, partition replicated there); each multiplexes
// `sessions` logical client sessions onto a small pool of protocol clients.
// The schedule is a pure function of (topology, workload spec, open-loop
// spec, engine index, seed) — byte-identical across the sim, thread and
// socket runtimes — and each engine folds its schedule into an FNV-1a
// digest so cross-runtime equality is testable end to end.

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/membership.h"
#include "proto/client.h"
#include "runtime/executor.h"
#include "stats/latency_recorder.h"
#include "workload/generator.h"

namespace paris::workload {

enum class RateProfile : std::uint8_t {
  kConstant = 0,  ///< flat arrival rate
  kDiurnal = 1,   ///< rate * (1 + amp * sin(2*pi*t / period)) — day/night ramp
  kFlash = 2,     ///< rate * flash_mult inside [flash_at, flash_at + flash_len)
};

const char* rate_profile_name(RateProfile p);
/// Parses "constant" | "diurnal" | "flash"; false on junk.
bool parse_rate_profile(const char* text, RateProfile* out);

struct OpenLoopSpec {
  bool enabled = false;
  /// Total target arrival rate (tx/s) across the WHOLE cluster; each engine
  /// runs an independent Poisson process at rate / num_engines.
  double arrival_rate = 2000;
  /// Logical sessions multiplexed per engine (arrival i belongs to session
  /// i % sessions); the pool of protocol clients underneath is
  /// threads_per_process wide.
  std::uint32_t sessions = 1024;
  RateProfile profile = RateProfile::kConstant;
  double diurnal_amp = 0.5;                      ///< peak-to-mean swing
  std::uint64_t diurnal_period_us = 1'000'000;   ///< one "day"
  double flash_mult = 4.0;                       ///< crowd size multiplier
  std::uint64_t flash_at_us = 300'000;           ///< offset from run start
  std::uint64_t flash_len_us = 200'000;
  /// Non-empty: replay this trace instead of drawing a Poisson process.
  std::string trace_path;
};

/// One trace line: "offset_us [key_rank]". Lines are dealt round-robin to
/// engines (line i -> engine i % num_engines); a missing key_rank lets the
/// engine's generator draw the transaction shape instead.
struct TraceEntry {
  std::uint64_t offset_us = 0;
  bool has_key = false;
  std::uint64_t key_rank = 0;
};

/// Loads a trace file ('#' comments and blank lines skipped; entries must be
/// time-sorted). Returns false with *err set on parse failure.
bool load_trace(const std::string& path, std::vector<TraceEntry>* out, std::string* err);

class OpenLoopEngine {
 public:
  struct Arrival {
    std::uint64_t at_us = 0;    ///< offset from run start (t0)
    std::uint32_t session = 0;  ///< logical session id
    TxPlan plan;
  };

  /// Builds the full arrival schedule up to horizon_us at construction.
  /// engine_index / num_engines must enumerate (dc, partition) pairs in the
  /// same order in every process, or the cross-runtime digest breaks.
  OpenLoopEngine(const cluster::Topology& topo, const WorkloadSpec& w,
                 const OpenLoopSpec& ol, DcId dc, PartitionId partition,
                 std::uint32_t engine_index, std::uint32_t num_engines,
                 std::uint64_t horizon_us, std::uint64_t seed,
                 const std::vector<TraceEntry>* trace);

  /// Pool registration (all clients must share one execution locality).
  void add_client(proto::Client* c);

  /// Restricts releases to arrivals with at_us in [from_us, until_us)
  /// (offsets from t0, like the schedule itself). A joining DC's engine
  /// starts at its join time, a leaving DC's stops at its leave time; out-of-
  /// window arrivals are neither released nor counted as scheduled. The
  /// schedule — and hence the cross-runtime digest — is unchanged. Call
  /// before start().
  void set_active_window(std::uint64_t from_us, std::uint64_t until_us) {
    active_from_us_ = from_us;
    active_until_us_ = until_us;
  }

  /// Arms the release pump. t0 anchors schedule offsets to runtime time.
  void start(runtime::Executor& exec, std::uint64_t t0);

  /// After the run: counts every never-released arrival as scheduled, so the
  /// intended rate reflects the configured arrival process, not how far the
  /// pump got (coordinated omission applies to bookkeeping too).
  void finalize();

  stats::LatencyRecorder& recorder() { return rec_; }
  const stats::LatencyRecorder& recorder() const { return rec_; }
  std::uint64_t digest() const { return digest_; }
  std::size_t schedule_size() const { return schedule_.size(); }
  const std::vector<Arrival>& schedule() const { return schedule_; }

 private:
  void pump();
  void run_tx(std::size_t ci, std::size_t ai);
  void on_done(std::size_t ci, std::size_t ai, std::uint64_t started);

  // Immutable after construction.
  std::vector<Arrival> schedule_;
  std::uint64_t digest_ = 0;
  std::uint64_t horizon_us_ = 0;
  std::uint64_t active_from_us_ = 0;
  std::uint64_t active_until_us_ = ~0ull;

  std::vector<proto::Client*> clients_;
  runtime::Executor* exec_ = nullptr;
  runtime::TimerHandle pump_timer_;
  std::uint64_t t0_ = 0;

  // Release/dispatch state. Clients of one engine share a process but may
  // live on different worker threads; completions race with the pump.
  std::mutex mu_;
  std::size_t next_ = 0;              ///< next schedule index to release
  std::deque<std::size_t> backlog_;   ///< released, waiting for a client
  std::vector<std::size_t> idle_;     ///< idle client pool indices
  stats::LatencyRecorder rec_;
};

}  // namespace paris::workload
