#pragma once
// Log-bucketed latency histogram (HdrHistogram-style): values are grouped by
// power-of-two magnitude with 32 linear sub-buckets each, giving <= ~3.1%
// relative error across the full 64-bit range with a fixed 1.6 KiB footprint.

#include <cstdint>
#include <utility>
#include <vector>

namespace paris::stats {

class Histogram {
 public:
  static constexpr int kSubBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBits;  // 32
  static constexpr int kGroups = 64 - kSubBits;
  static constexpr int kNumBuckets = kGroups * kSubBuckets;

  void record(std::uint64_t v);
  void record_n(std::uint64_t v, std::uint64_t n);
  void merge(const Histogram& other);
  void clear();

  /// Exact internal state, for shipping a histogram across a process
  /// boundary (the socket runtime's children report to the launcher):
  /// merge_raw(raw()) on a fresh histogram reproduces this one bit-for-bit.
  struct Raw {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = ~0ull;
    std::uint64_t max = 0;
    std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;  ///< (index, count)
  };
  Raw raw() const;
  void merge_raw(const Raw& r);

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const { return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0; }

  /// Value at quantile q in [0,1] (bucket upper-midpoint approximation).
  std::uint64_t percentile(double q) const;

  /// (value, cumulative fraction) pairs for every non-empty bucket —
  /// directly plottable as a CDF (used for Fig. 4).
  std::vector<std::pair<std::uint64_t, double>> cdf() const;

 private:
  static int bucket_index(std::uint64_t v);
  static std::uint64_t bucket_mid(int idx);

  std::vector<std::uint64_t> buckets_;  // lazily sized to kNumBuckets
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

}  // namespace paris::stats
