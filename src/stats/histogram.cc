#include "stats/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/assert.h"

namespace paris::stats {

int Histogram::bucket_index(std::uint64_t v) {
  if (v < kSubBuckets) return static_cast<int>(v);  // group 0: exact
  const int msb = 63 - std::countl_zero(v);
  const int group = msb - kSubBits + 1;
  const int sub = static_cast<int>((v >> (msb - kSubBits)) & (kSubBuckets - 1));
  return group * kSubBuckets + sub;
}

std::uint64_t Histogram::bucket_mid(int idx) {
  const int group = idx / kSubBuckets;
  const int sub = idx % kSubBuckets;
  if (group == 0) return static_cast<std::uint64_t>(sub);
  const int shift = group - 1;
  const std::uint64_t lo = (static_cast<std::uint64_t>(kSubBuckets + sub)) << shift;
  const std::uint64_t width = 1ull << shift;
  return lo + width / 2;
}

void Histogram::record(std::uint64_t v) { record_n(v, 1); }

void Histogram::record_n(std::uint64_t v, std::uint64_t n) {
  if (n == 0) return;
  if (buckets_.empty()) buckets_.assign(kNumBuckets, 0);
  buckets_[static_cast<std::size_t>(bucket_index(v))] += n;
  count_ += n;
  sum_ += v * n;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (buckets_.empty()) buckets_.assign(kNumBuckets, 0);
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Raw Histogram::raw() const {
  Raw r;
  r.count = count_;
  r.sum = sum_;
  r.min = min_;
  r.max = max_;
  for (int i = 0; i < static_cast<int>(buckets_.size()); ++i) {
    if (buckets_[i] != 0) {
      r.buckets.emplace_back(static_cast<std::uint32_t>(i), buckets_[i]);
    }
  }
  return r;
}

void Histogram::merge_raw(const Raw& r) {
  if (r.count == 0) return;
  if (buckets_.empty()) buckets_.assign(kNumBuckets, 0);
  for (const auto& [idx, n] : r.buckets) {
    PARIS_CHECK(idx < static_cast<std::uint32_t>(kNumBuckets));
    buckets_[idx] += n;
  }
  count_ += r.count;
  sum_ += r.sum;
  min_ = std::min(min_, r.min);
  max_ = std::max(max_, r.max);
}

void Histogram::clear() {
  buckets_.clear();
  count_ = 0;
  sum_ = 0;
  min_ = ~0ull;
  max_ = 0;
}

std::uint64_t Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank definition: the smallest value with at least ceil(q * N)
  // observations at or below it.
  auto target = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
  if (target == 0) target = 1;
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) return std::min(bucket_mid(i), max_);
  }
  return max_;
}

std::vector<std::pair<std::uint64_t, double>> Histogram::cdf() const {
  std::vector<std::pair<std::uint64_t, double>> out;
  if (count_ == 0) return out;
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    seen += buckets_[i];
    out.emplace_back(bucket_mid(i), static_cast<double>(seen) / static_cast<double>(count_));
  }
  return out;
}

}  // namespace paris::stats
