#pragma once
// Coordinated-omission-safe latency recording (Tene's "how NOT to measure
// latency"). A closed-loop driver only issues the next request after the
// previous one finishes, so a stalled server silently *suppresses* the very
// samples that would have shown the stall: recorded percentiles stay flat
// while real users queue. The open-loop engine instead derives every
// request's latency from its SCHEDULED arrival time:
//
//   intended latency = finished - scheduled   (what a user would feel)
//   service  latency = finished - started     (what the server worked)
//
// Overdue arrivals (scheduled while all channels were busy) are never
// dropped — they queue and their wait is charged to intended latency — and
// the recorder reports both the intended and the achieved rate so saturation
// is visible instead of silently re-normalized away.

#include <cstdint>

#include "stats/histogram.h"

namespace paris::stats {

class LatencyRecorder {
 public:
  /// Measurement window [start_us, end_us); samples are windowed by FINISH
  /// time (same convention as the closed-loop Collector).
  void set_window(std::uint64_t start_us, std::uint64_t end_us) {
    win_start_ = start_us;
    win_end_ = end_us;
  }

  void record(std::uint64_t scheduled_us, std::uint64_t started_us, std::uint64_t finished_us) {
    if (finished_us < win_start_ || finished_us >= win_end_) return;
    intended_.record(finished_us - scheduled_us);
    service_.record(finished_us - started_us);
    ++completed_;
    if (started_us > scheduled_us + kOverdueGraceUs) ++overdue_;
  }

  /// The dispatch pump releases due arrivals every ~200us, so every request
  /// starts a hair after its scheduled instant. "Overdue" only counts waits
  /// beyond this grace — i.e. arrivals that actually queued behind a busy
  /// channel, not pump granularity.
  static constexpr std::uint64_t kOverdueGraceUs = 1000;

  /// A request whose scheduled arrival fell inside the window (counted at
  /// schedule time, NOT completion — that asymmetry is the whole point).
  void note_scheduled(std::uint64_t scheduled_us) {
    if (scheduled_us >= win_start_ && scheduled_us < win_end_) ++scheduled_;
  }
  void note_backlog(std::uint64_t depth) {
    if (depth > max_backlog_) max_backlog_ = depth;
  }

  const Histogram& intended() const { return intended_; }
  const Histogram& service() const { return service_; }
  std::uint64_t scheduled() const { return scheduled_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t overdue() const { return overdue_; }
  std::uint64_t max_backlog() const { return max_backlog_; }

  double window_s() const {
    return win_end_ > win_start_ ? static_cast<double>(win_end_ - win_start_) / 1e6 : 0;
  }
  /// Rate the arrival process asked for inside the window.
  double intended_rate() const {
    const double w = window_s();
    return w > 0 ? static_cast<double>(scheduled_) / w : 0;
  }
  /// Rate the system actually completed.
  double achieved_rate() const {
    const double w = window_s();
    return w > 0 ? static_cast<double>(completed_) / w : 0;
  }

  /// Cross-engine / cross-process aggregation (launcher side).
  void merge(const LatencyRecorder& o) {
    intended_.merge(o.intended_);
    service_.merge(o.service_);
    scheduled_ += o.scheduled_;
    completed_ += o.completed_;
    overdue_ += o.overdue_;
    if (o.max_backlog_ > max_backlog_) max_backlog_ = o.max_backlog_;
    if (win_end_ == 0) {
      win_start_ = o.win_start_;
      win_end_ = o.win_end_;
    }
  }

 private:
  Histogram intended_;
  Histogram service_;
  std::uint64_t win_start_ = 0, win_end_ = 0;
  std::uint64_t scheduled_ = 0, completed_ = 0, overdue_ = 0, max_backlog_ = 0;
};

}  // namespace paris::stats
