#include "stats/summary.h"

#include <cstdio>

namespace paris::stats {

Summary Summary::of(const Histogram& h) {
  Summary s;
  s.count = h.count();
  s.mean = h.mean();
  s.p50 = h.percentile(0.50);
  s.p90 = h.percentile(0.90);
  s.p95 = h.percentile(0.95);
  s.p99 = h.percentile(0.99);
  s.p999 = h.percentile(0.999);
  s.max = h.max();
  return s;
}

std::string us_to_ms(double us, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, us / 1000.0);
  return buf;
}

std::string with_commas(std::uint64_t v) {
  std::string raw = std::to_string(v);
  std::string out;
  int c = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (c && c % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++c;
  }
  return {out.rbegin(), out.rend()};
}

}  // namespace paris::stats
