#pragma once
// Compact numeric summaries and table formatting shared by benches and
// examples.

#include <cstdint>
#include <string>

#include "stats/histogram.h"

namespace paris::stats {

/// Point summary of a latency distribution, in the histogram's value unit.
struct Summary {
  std::uint64_t count = 0;
  double mean = 0;
  std::uint64_t p50 = 0, p90 = 0, p95 = 0, p99 = 0, p999 = 0, max = 0;

  static Summary of(const Histogram& h);
};

/// "12.3" style fixed formatting of µs as ms.
std::string us_to_ms(double us, int decimals = 2);

/// Thousands separator for counts ("1,234,567").
std::string with_commas(std::uint64_t v);

}  // namespace paris::stats
