#pragma once
// Observation hooks. A Tracer sees protocol-internal events without
// perturbing them; it backs both the correctness checker (src/verify) and
// the update-visibility measurements of Fig. 4.

#include <vector>

#include "common/hlc.h"
#include "common/types.h"
#include "sim/time.h"
#include "wire/messages.h"

namespace paris::proto {

class Tracer {
 public:
  virtual ~Tracer() = default;

  /// A client session observed its newly assigned transaction snapshot
  /// (ClientStartResp processed). Per client the stream is sequential —
  /// one transaction at a time — so arrival order is session order; the
  /// checker asserts snapshots never move backwards within a session.
  virtual void on_tx_started(NodeId /*client*/, TxId /*tx*/, Timestamp /*snapshot*/,
                             sim::SimTime /*now*/) {}

  /// A transaction's write set reached its coordinator (2PC about to run).
  virtual void on_commit_writes(TxId /*tx*/, DcId /*origin_dc*/,
                                const std::vector<wire::WriteKV>& /*writes*/) {}

  /// A transaction's commit timestamp was decided by its coordinator.
  virtual void on_commit_decided(TxId /*tx*/, Timestamp /*ct*/, DcId /*origin_dc*/,
                                 sim::SimTime /*now*/) {}

  /// A cohort durably applied tx's writes for `partition` at replica `dc`.
  virtual void on_applied(DcId /*dc*/, PartitionId /*partition*/, TxId /*tx*/,
                          Timestamp /*ct*/, sim::SimTime /*now*/) {}

  /// A replica applied tx's writes replicated from a remote DC — enough to
  /// reconstruct the commit record (ct, origin, write set) when the
  /// coordinator's process was killed before its own recorder could be
  /// harvested (DESIGN §11: the history checkers union-merge per-process
  /// records, so any surviving replica's view completes the commit).
  virtual void on_replica_commit(TxId /*tx*/, Timestamp /*ct*/, DcId /*origin_dc*/,
                                 const wire::ReplicateTxn& /*txn*/) {}

  /// tx's writes on `partition` became readable at replica `dc` (PaRiS: the
  /// server's UST passed ct; BPR: at apply time).
  virtual void on_visible(DcId /*dc*/, PartitionId /*partition*/, TxId /*tx*/,
                          Timestamp /*ct*/, sim::SimTime /*now*/) {}

  /// A read slice was served. `server_dc` is where it was served; `mode`
  /// is the wire::ReadMode the slice was evaluated under.
  virtual void on_slice_served(DcId /*server_dc*/, PartitionId /*partition*/, TxId /*tx*/,
                               Timestamp /*snapshot*/, std::uint8_t /*mode*/,
                               const std::vector<wire::Item>& /*items*/,
                               sim::SimTime /*now*/) {}

  /// BPR only: a read slice waited `blocked_us` before being served.
  virtual void on_read_blocked(DcId /*server_dc*/, PartitionId /*partition*/,
                               sim::SimTime /*blocked_us*/) {}

  /// A server's UST advanced.
  virtual void on_ust_advance(DcId /*dc*/, PartitionId /*partition*/, Timestamp /*ust*/,
                              sim::SimTime /*now*/) {}

  /// Filter for the (memory-heavy) visibility tracking; return true to have
  /// servers track apply->visible transitions for this transaction.
  virtual bool want_visibility(TxId /*tx*/) const { return false; }
};

}  // namespace paris::proto
