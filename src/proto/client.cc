#include "proto/client.h"

#include <algorithm>
#include <cstdlib>

#include "common/assert.h"

namespace paris::proto {

using namespace wire;

Client::Client(Runtime& rt, DcId dc, NodeId coordinator, Options opt)
    : rt_(rt), dc_(dc), coord_(coordinator), opt_(opt) {}

void Client::start_tx(StartCb cb) {
  PARIS_CHECK_MSG(!in_tx(), "client already has a running transaction");
  PARIS_CHECK(self_ != kInvalidNode);
  start_cb_ = std::move(cb);
  ++stats_.txs_started;

  auto req = rt_.net.msg_pool(self_).make<ClientStartReq>();
  // Alg. 1 line 2: piggyback the last observed snapshot. BPR additionally
  // folds in the last commit time so the fresh snapshot covers it.
  req->ust_c = opt_.fold_hwt_into_seen ? std::max(ust_c_, hwt_) : ust_c_;
  rt_.net.send(self_, coord_, std::move(req));
}

void Client::read(std::vector<Key> keys, ReadCb cb, ReadMode mode) {
  PARIS_CHECK_MSG(in_tx(), "read outside a transaction");
  PARIS_CHECK_MSG(read_cb_ == nullptr, "read already in flight");
  PARIS_CHECK(!keys.empty());
  read_cb_ = std::move(cb);
  pending_keys_ = std::move(keys);
  pending_found_.clear();
  pending_mode_ = mode;

  // Alg. 1 lines 10-14: serve from WS, RS, WC (in that order). Counter
  // reads always consult the server (the merged sum needs the global
  // history); local deltas are folded in on delivery.
  std::vector<Key>& remote = remote_scratch_;  // reused across reads
  remote.clear();
  for (Key k : pending_keys_) {
    if (pending_found_.count(k)) continue;  // duplicate key in request
    if (mode == ReadMode::kCounter) {
      if (const auto rs_it = rs_.find(k); rs_it != rs_.end()) {
        pending_found_.emplace(k, rs_it->second);  // repeatable reads
        ++stats_.local_hits;
      } else {
        remote.push_back(k);
      }
      continue;
    }
    const auto ws_it = std::find_if(ws_.begin(), ws_.end(),
                                    [k](const WriteKV& w) { return w.k == k; });
    if (ws_it != ws_.end()) {
      // Own uncommitted write: surfaced with the current transaction's id.
      Item item;
      item.k = k;
      item.v = ws_it->v;
      item.tx = current_tx_;
      item.sr = dc_;
      pending_found_.emplace(k, std::move(item));
      ++stats_.local_hits;
      continue;
    }
    if (const auto rs_it = rs_.find(k); rs_it != rs_.end()) {
      pending_found_.emplace(k, rs_it->second);  // repeatable reads
      ++stats_.local_hits;
      continue;
    }
    if (opt_.use_write_cache) {
      if (const auto c_it = cache_.find(k); c_it != cache_.end()) {
        pending_found_.emplace(k, c_it->second);
        ++stats_.local_hits;
        continue;
      }
    }
    remote.push_back(k);
  }
  stats_.keys_read += pending_keys_.size();

  if (remote.empty()) {
    // Fully served locally; stay asynchronous for uniform driver behavior.
    rt_.exec.defer(self_, [this] { deliver_read(); });
    return;
  }
  auto req = rt_.net.msg_pool(self_).make<ClientReadReq>();
  req->tx = current_tx_;
  req->mode = static_cast<std::uint8_t>(mode);
  req->keys.assign(remote.begin(), remote.end());  // keep pooled capacity
  rt_.net.send(self_, coord_, std::move(req));
}

void Client::add(Key k, std::int64_t delta) {
  PARIS_CHECK_MSG(in_tx(), "add outside a transaction");
  ++stats_.keys_written;
  const auto it = std::find_if(ws_.begin(), ws_.end(),
                               [k](const WriteKV& w) { return w.k == k; });
  if (it != ws_.end()) {
    PARIS_CHECK_MSG(it->write_kind() == WriteKind::kCounterAdd,
                    "mixing register and counter writes on one key");
    it->num = it->delta() + delta;
    it->v.clear();  // delta is binary from here on
  } else {
    ws_.emplace_back(k, delta);  // binary counter delta, no string round-trip
  }
}

void Client::write(std::vector<WriteKV> kvs) {
  PARIS_CHECK_MSG(in_tx(), "write outside a transaction");
  for (auto& kv : kvs) {
    ++stats_.keys_written;
    const auto it = std::find_if(ws_.begin(), ws_.end(),
                                 [&kv](const WriteKV& w) { return w.k == kv.k; });
    if (it != ws_.end()) {
      it->v = std::move(kv.v);  // Alg. 1 line 23: overwrite in place
    } else {
      ws_.push_back(std::move(kv));
    }
  }
}

void Client::commit(CommitCb cb) {
  PARIS_CHECK_MSG(in_tx(), "commit outside a transaction");
  PARIS_CHECK_MSG(commit_cb_ == nullptr, "commit already in flight");
  commit_cb_ = std::move(cb);

  if (ws_.empty()) {
    // Read-only: release the coordinator context, no 2PC (§II-D).
    auto req = rt_.net.msg_pool(self_).make<TxEnd>();
    req->tx = current_tx_;
    rt_.net.send(self_, coord_, std::move(req));
    ++stats_.read_only_txs;
    end_tx();
    // commit_cb_ stays set until the deferred completion fires: the client
    // is quiescent in between (all activity is callback-driven), and the
    // [this] capture keeps the deferred task small enough to avoid an
    // allocation inside std::function.
    rt_.exec.defer(self_, [this] {
      auto cb = std::move(commit_cb_);
      commit_cb_ = nullptr;
      cb(kTsZero);
    });
    return;
  }

  auto req = rt_.net.msg_pool(self_).make<ClientCommitReq>();
  req->tx = current_tx_;
  req->hwt = hwt_;  // Alg. 1 line 27
  req->writes = ws_;
  rt_.net.send(self_, coord_, std::move(req));
}

void Client::on_message(NodeId /*from*/, const Message& m) {
  switch (m.type()) {
    case MsgType::kClientStartResp: {
      const auto& r = static_cast<const ClientStartResp&>(m);
      current_tx_ = r.tx;
      snapshot_ = r.snapshot;
      if (rt_.tracer != nullptr) {
        rt_.tracer->on_tx_started(self_, r.tx, r.snapshot, rt_.exec.now_us());
      }
      ust_c_ = std::max(ust_c_, r.snapshot);
      rs_.clear();
      ws_.clear();
      // Alg. 1 line 6: prune cache entries the stable snapshot now covers.
      if (opt_.use_write_cache) {
        for (auto it = cache_.begin(); it != cache_.end();) {
          if (it->second.ut <= ust_c_) {
            it = cache_.erase(it);
          } else {
            ++it;
          }
        }
        for (auto it = counter_cache_.begin(); it != counter_cache_.end();) {
          auto& deltas = it->second;
          std::erase_if(deltas, [this](const auto& e) { return e.first <= ust_c_; });
          if (deltas.empty()) {
            it = counter_cache_.erase(it);
          } else {
            ++it;
          }
        }
      }
      auto cb = std::move(start_cb_);
      start_cb_ = nullptr;
      cb(current_tx_, snapshot_);
      return;
    }
    case MsgType::kClientReadResp: {
      const auto& r = static_cast<const ClientReadResp&>(m);
      PARIS_DCHECK(r.tx == current_tx_);
      for (const auto& item : r.items) {
        if (pending_mode_ == ReadMode::kCounter) {
          // Fold in this client's own deltas the stable snapshot cannot
          // contain yet: committed-but-unstable (counter cache, all with
          // ct > snapshot) and uncommitted (write set). Everything merges
          // as binary int64s; the decimal string is materialized once at
          // the API surface (items expose both .num and .v).
          Item merged = item;
          std::int64_t sum = merged.num;
          if (opt_.use_write_cache) {
            if (const auto cc = counter_cache_.find(item.k); cc != counter_cache_.end())
              for (const auto& [ct, d] : cc->second) sum += d;
          }
          for (const auto& w : ws_)
            if (w.k == item.k && w.write_kind() == WriteKind::kCounterAdd) sum += w.delta();
          merged.num = sum;
          merged.v = std::to_string(sum);
          pending_found_.emplace(item.k, std::move(merged));
        } else {
          pending_found_.emplace(item.k, item);
        }
      }
      deliver_read();
      return;
    }
    case MsgType::kClientCommitResp: {
      const auto& r = static_cast<const ClientCommitResp&>(m);
      PARIS_DCHECK(r.tx == current_tx_);
      hwt_ = r.ct;  // Alg. 1 line 29
      if (opt_.use_write_cache) {
        // Alg. 1 lines 30-31: tag WS with ct, move into the cache,
        // overwriting older duplicates. Counter deltas accumulate instead
        // of overwriting — each unstable increment must keep contributing.
        for (auto& w : ws_) {
          if (w.write_kind() == WriteKind::kCounterAdd) {
            counter_cache_[w.k].emplace_back(r.ct, w.delta());
            continue;
          }
          Item item;
          item.k = w.k;
          item.v = std::move(w.v);
          item.ut = r.ct;
          item.tx = current_tx_;
          item.sr = dc_;
          cache_[w.k] = std::move(item);
        }
        stats_.max_cache_size =
            std::max(stats_.max_cache_size, cache_.size() + counter_cache_.size());
      }
      ++stats_.txs_committed;
      end_tx();
      auto cb = std::move(commit_cb_);
      commit_cb_ = nullptr;
      cb(r.ct);
      return;
    }
    default:
      PARIS_CHECK_MSG(false, "unexpected message at client");
  }
}

void Client::deliver_read() {
  // Assemble results in request order; every key resolves either locally or
  // from a slice (absent keys come back as zero items).
  std::vector<Item> out;
  out.reserve(pending_keys_.size());
  for (Key k : pending_keys_) {
    const auto it = pending_found_.find(k);
    PARIS_CHECK_MSG(it != pending_found_.end(), "read response missing a key");
    out.push_back(it->second);
    rs_[k] = it->second;  // Alg. 1 line 18
  }
  pending_keys_.clear();
  pending_found_.clear();
  auto cb = std::move(read_cb_);
  read_cb_ = nullptr;
  cb(std::move(out));
}

void Client::end_tx() {
  current_tx_ = kInvalidTxId;
  snapshot_ = kTsZero;
  rs_.clear();
  ws_.clear();
}

}  // namespace paris::proto
