#pragma once
// Partition server common to PaRiS and BPR.
//
// A server owns exactly one partition replica (§II-C: one partition per
// server) and plays three roles, mirroring the paper's algorithms:
//
//  * transaction coordinator (Alg. 2): assigns snapshots, fans reads out to
//    cohort partitions (local or remote DC, chosen by Topology::target_dc),
//    and drives the 2PC commit;
//  * cohort (Alg. 3): serves read slices and proposes/receives commit
//    timestamps — the snapshot/visibility policy is the subclass hook where
//    PaRiS (non-blocking, UST) and BPR (blocking, fresh snapshots) differ;
//  * replica (Alg. 4): applies committed transactions in ct order every
//    ΔR, ships them to peer replicas, and emits heartbeats so the version
//    vector advances in the absence of updates.

#include <map>
#include <unordered_map>
#include <vector>

#include "common/min_tracker.h"
#include "common/phys_clock.h"
#include "proto/runtime.h"
#include "runtime/actor.h"
#include "storage/mv_store.h"

namespace paris::proto {

class ServerBase : public runtime::Actor {
 public:
  ServerBase(Runtime& rt, DcId dc, PartitionId partition);
  ~ServerBase() override = default;

  /// Called by the deployment after network registration.
  void attach(NodeId self, PhysClock clock);

  /// Starts ΔR apply/replicate and GC timers; subclasses add their own.
  /// `phase_rng` staggers timer phases so servers do not tick in lockstep.
  virtual void start_timers(Rng& phase_rng);

  void on_message(NodeId from, const wire::Message& m) final;

  // --- introspection ---
  DcId dc() const { return dc_; }
  PartitionId partition() const { return partition_; }
  NodeId node() const { return self_; }
  ReplicaIdx replica_idx() const { return replica_idx_; }
  /// min over the version vector: the snapshot fully installed locally
  /// ("local stable time" of this partition replica).
  Timestamp min_vv() const;
  Timestamp vv_entry(ReplicaIdx r) const { return vv_[r]; }
  const store::MvStore& kvstore() const { return store_; }
  Timestamp hlc_value() const { return hlc_.value(); }
  /// The snapshot a transaction starting here (with no prior context) would
  /// observe: the UST for PaRiS, the locally installed snapshot for BPR.
  virtual Timestamp stable_snapshot() const = 0;

  struct Stats {
    std::uint64_t txs_coordinated = 0;      ///< update txs committed as coordinator
    std::uint64_t read_only_txs = 0;        ///< TxEnd-terminated txs
    std::uint64_t slices_served = 0;
    std::uint64_t cohort_prepares = 0;
    std::uint64_t applied_writes = 0;
    std::uint64_t replicate_batches_sent = 0;
    std::uint64_t heartbeats_sent = 0;
    std::uint64_t gossip_msgs_sent = 0;
    std::uint64_t reads_blocked = 0;        ///< BPR only
    sim::SimTime blocked_time_us = 0;       ///< BPR only
  };
  const Stats& stats() const { return stats_; }

 protected:
  // ----- policy points where PaRiS and BPR diverge -----

  /// Snapshot assigned to a starting transaction, given the client's last
  /// observed snapshot (Alg. 2 lines 1-5 / BPR §V).
  virtual Timestamp assign_snapshot(Timestamp client_seen) = 0;

  /// Serve or queue a read slice (Alg. 3 lines 1-8 / BPR blocking rule).
  virtual void handle_read_slice(NodeId from, const wire::ReadSliceReq& req) = 0;

  /// Proposed commit timestamp after the HLC was ticked past ht
  /// (Alg. 3 line 12).
  virtual Timestamp propose_ts(const wire::PrepareReq& req) = 0;

  /// Called whenever an entry of the version vector advanced (apply,
  /// replicate, heartbeat). BPR drains blocked reads here.
  virtual void on_vv_advanced() {}

  /// A snapshot from another server/client was observed (read slice or
  /// prepare); PaRiS fast-forwards its UST (Alg. 3 lines 2, 11).
  virtual void observe_remote_snapshot(Timestamp /*snap*/) {}

  /// Watermark below which storage GC may prune superseded versions.
  virtual Timestamp gc_watermark() const = 0;

  /// A transaction's writes were applied locally; PaRiS registers it for
  /// apply->visible tracking (visibility happens when the UST passes ct).
  virtual void note_applied(TxId tx, Timestamp ct);

  // Stabilization-tree traffic; only PaRiS uses it.
  virtual void handle_gossip_up(NodeId /*from*/, const wire::GossipUp& /*m*/) {}
  virtual void handle_gossip_root(NodeId /*from*/, const wire::GossipRoot& /*m*/) {}
  virtual void handle_ust_down(NodeId /*from*/, const wire::UstDown& /*m*/) {}

  // ----- shared machinery -----

  /// Answers a read slice from local storage (snapshot-visible versions).
  void serve_slice(NodeId from, const wire::ReadSliceReq& req);

  /// Alg. 4 lines 5-22: apply committed txs with ct <= ub in ct order,
  /// replicate them to peer replicas, advance the local version clock,
  /// heartbeat if nothing shipped.
  void apply_tick();
  void gc_tick();

  std::uint64_t clock_us() const { return clock_.read_us(rt_.exec.now_us()); }
  void send(NodeId to, wire::MessagePtr m) { rt_.net.send(self_, to, std::move(m)); }
  /// Acquires a pooled outgoing message (returned to the pool on release).
  template <class T>
  wire::PooledPtr<T> make_msg() {
    return rt_.net.msg_pool(self_).make<T>();
  }
  /// Node serving partition p for requests originating in this server's DC.
  NodeId route_to_partition(PartitionId p) const;

  /// Minimum snapshot among transactions this server coordinates, or
  /// `fallback` when idle (GC aggregation, §IV-B).
  Timestamp oldest_active_snapshot(Timestamp fallback) const;

  Runtime& rt_;
  const DcId dc_;
  const PartitionId partition_;
  ReplicaIdx replica_idx_ = kInvalidReplica;
  NodeId self_ = kInvalidNode;
  PhysClock clock_;
  Hlc hlc_;
  store::MvStore store_;
  std::vector<Timestamp> vv_;  ///< R entries; vv_[replica_idx_] is the local version clock
  Stats stats_;

 private:
  // --- coordinator state (Alg. 2) ---
  struct ReadOp {
    std::uint32_t outstanding = 0;
    std::vector<wire::Item> items;
  };
  struct CommitOp {
    std::uint32_t outstanding = 0;
    Timestamp max_pt;
    std::vector<NodeId> cohort_nodes;
  };
  struct TxCtx {
    Timestamp snapshot;
    NodeId client = kInvalidNode;
    ReadOp read;
    CommitOp commit;
    bool committing = false;
    sim::SimTime created = 0;
  };

  void handle_start(NodeId from, const wire::ClientStartReq& m);
  void handle_client_read(NodeId from, const wire::ClientReadReq& m);
  void handle_slice_resp(NodeId from, const wire::ReadSliceResp& m);
  void handle_client_commit(NodeId from, const wire::ClientCommitReq& m);
  void handle_prepare(NodeId from, const wire::PrepareReq& m);
  void handle_prepare_resp(NodeId from, const wire::PrepareResp& m);
  void handle_commit2pc(NodeId from, const wire::Commit2pc& m);
  void handle_replicate(NodeId from, const wire::ReplicateBatch& m);
  void handle_heartbeat(NodeId from, const wire::Heartbeat& m);
  void handle_tx_end(NodeId from, const wire::TxEnd& m);

  void finish_tx(TxId tx);
  /// Reaps coordinator contexts abandoned by crashed clients (§III-C);
  /// without this an abandoned snapshot would pin the GC watermark forever.
  void reap_stale_contexts();

  std::unordered_map<TxId, TxCtx> tx_;
  MinTracker<Timestamp> active_snapshots_;  ///< min = oldest active snapshot
  std::uint32_t next_tx_seq_ = 1;

  // Reusable fan-out scratch for handle_client_read / handle_client_commit:
  // by-node grouping without a per-call map. fan_nodes_ holds the distinct
  // serving nodes of the current request (first-appearance order, which is
  // deterministic in the request's key order); fan_keys_/fan_writes_ are
  // parallel groups whose capacity persists across calls.
  std::vector<NodeId> fan_nodes_;
  std::vector<std::vector<Key>> fan_keys_;
  std::vector<std::vector<wire::WriteKV>> fan_writes_;
  std::size_t fan_group(NodeId node);

  // --- cohort state (Alg. 3 / Alg. 4) ---
  struct PrepEntry {
    Timestamp pt;
    std::vector<wire::WriteKV> writes;
  };
  std::unordered_map<TxId, PrepEntry> prepared_;
  MinTracker<Timestamp> prepared_pts_;  ///< min = apply upper-bound fence
  std::map<std::pair<Timestamp, TxId>, std::vector<wire::WriteKV>> committed_;

  runtime::TimerHandle apply_timer_;
  runtime::TimerHandle gc_timer_;
  runtime::TimerHandle ctx_reaper_timer_;
};

}  // namespace paris::proto
