#pragma once
// Partition server common to PaRiS and BPR.
//
// A server owns exactly one partition replica (§II-C: one partition per
// server) and plays three roles, mirroring the paper's algorithms:
//
//  * transaction coordinator (Alg. 2): assigns snapshots, fans reads out to
//    cohort partitions (local or remote DC, chosen by Topology::target_dc),
//    and drives the 2PC commit;
//  * cohort (Alg. 3): serves read slices and proposes/receives commit
//    timestamps — the snapshot/visibility policy is the subclass hook where
//    PaRiS (non-blocking, UST) and BPR (blocking, fresh snapshots) differ;
//  * replica (Alg. 4): applies committed transactions in ct order every
//    ΔR, ships them to peer replicas, and emits heartbeats so the version
//    vector advances in the absence of updates.

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/min_tracker.h"
#include "common/phys_clock.h"
#include "placement/placement.h"
#include "proto/runtime.h"
#include "runtime/actor.h"
#include "storage/mv_store.h"

namespace paris::proto {

class ServerBase : public runtime::Actor {
 public:
  ServerBase(Runtime& rt, DcId dc, PartitionId partition);
  ~ServerBase() override = default;

  /// Called by the deployment after network registration.
  void attach(NodeId self, PhysClock clock);

  /// Starts ΔR apply/replicate and GC timers; subclasses add their own.
  /// `phase_rng` staggers timer phases so servers do not tick in lockstep.
  virtual void start_timers(Rng& phase_rng);

  void on_message(NodeId from, const wire::Message& m) final;

  // --- introspection ---
  DcId dc() const { return dc_; }
  PartitionId partition() const { return partition_; }
  NodeId node() const { return self_; }
  ReplicaIdx replica_idx() const { return replica_idx_; }
  /// min over the version vector: the snapshot fully installed locally
  /// ("local stable time" of this partition replica). Skips the slots of
  /// DCs that have never been active in any installed membership view.
  Timestamp min_vv() const;
  /// min_vv() that additionally skips the still-zero slot of a freshly
  /// joined DC (view installed, first heartbeat not yet landed). For
  /// serving-side sanity checks only — the join HLC floor makes it sound.
  Timestamp min_vv_installed() const;
  Timestamp vv_entry(ReplicaIdx r) const { return vv_[r]; }
  const store::MvStore& kvstore() const { return store_; }
  Timestamp hlc_value() const { return hlc_.value(); }
  /// The snapshot a transaction starting here (with no prior context) would
  /// observe: the UST for PaRiS, the locally installed snapshot for BPR.
  virtual Timestamp stable_snapshot() const = 0;

  struct Stats {
    std::uint64_t txs_coordinated = 0;      ///< update txs committed as coordinator
    std::uint64_t read_only_txs = 0;        ///< TxEnd-terminated txs
    std::uint64_t slices_served = 0;
    std::uint64_t cohort_prepares = 0;
    std::uint64_t applied_writes = 0;
    std::uint64_t replicate_batches_sent = 0;
    std::uint64_t heartbeats_sent = 0;
    std::uint64_t gossip_msgs_sent = 0;
    std::uint64_t reads_blocked = 0;        ///< BPR only
    sim::SimTime blocked_time_us = 0;       ///< BPR only
    // --- crash recovery (DESIGN §11) ---
    std::uint64_t snapshots_served = 0;     ///< donor-side snapshot streams
    std::uint64_t catchups_served = 0;      ///< anti-entropy deltas answered
    std::uint64_t recovery_buffered = 0;    ///< messages held during recovery
    std::uint64_t orphan_commits = 0;       ///< Commit2pc with no prepared entry
    std::uint64_t orphan_prepare_resps = 0; ///< PrepareResp for unknown/settled tx
    std::uint64_t prepared_fenced = 0;      ///< prepared entries fenced (dead coordinator)
    // --- workload-aware placement (DESIGN §14) ---
    std::uint64_t sketch_reports_sent = 0;
    std::uint64_t keys_migrated = 0;        ///< controller: completed moves
    std::uint64_t migrate_parked = 0;       ///< client messages parked behind a fence
    std::uint64_t migrate_chains_sent = 0;  ///< src-replica chains shipped
    std::uint64_t migrate_chains_installed = 0;
    /// Controller-only NuCut-style placement scores, fixed-point ×1e6
    /// (0 everywhere else; aggregation keeps the max so the controller's
    /// value survives cluster-wide summing and cross-process merging).
    std::uint64_t replicate_factor_before_x1e6 = 0;
    std::uint64_t replicate_factor_after_x1e6 = 0;
    std::uint64_t load_rel_stddev_before_x1e6 = 0;
    std::uint64_t load_rel_stddev_after_x1e6 = 0;
  };
  const Stats& stats() const { return stats_; }

  // --- crash recovery (DESIGN §11) ---

  /// Epoch-salts coordinator transaction sequence numbers so a respawned
  /// incarnation can never re-mint a TxId its predecessor already used
  /// (TxId = (node, seq); the node id survives the respawn). Leaves 2^24
  /// transactions per incarnation, far beyond any run. Call before serving.
  void set_incarnation(std::uint32_t epoch);

  /// Deployment hook, run on this server's worker: stream a full snapshot of
  /// the partition from `donor`, then catch-up deltas from `peers` (the
  /// remaining replicas), buffering all other traffic meanwhile; when both
  /// phases finish, replay the buffer and invoke `on_done` (which typically
  /// starts the timers this server deferred).
  void start_recovery(NodeId donor, std::vector<NodeId> peers, std::function<void()> on_done);
  bool recovering() const { return rec_ != nullptr; }

  /// Elastic join, phase 0 (DESIGN §11): a server of a DC scheduled to join
  /// later parks from deployment start — every protocol message is buffered
  /// exactly as during recovery, so when the join view installs and
  /// start_recovery() runs, nothing that arrived early (a replicate batch
  /// from an eager peer, a routed read) is lost or applied out of order.
  /// start_recovery() reuses the parked state in place.
  void park_for_join();

  /// Elastic join, catch-up gate: when set, the transition from snapshot
  /// phase to catch-up phase passes through `gate(resume)` instead of
  /// running inline. The deployment layer uses it on sockets to wait until
  /// every peer rank has advertised the join view — guaranteeing the
  /// catch-up watermarks returned by peers are post-cutover — and then
  /// calls resume() on this server's worker.
  void set_catchup_gate(std::function<void(std::function<void()>)> gate) {
    catchup_gate_ = std::move(gate);
  }

  /// Survivor-side epoch fence: `nodes` belong to a dead incarnation, so any
  /// 2PC decision they owed this cohort will never arrive. Drops their
  /// prepared entries — un-fencing the apply upper bound a dead coordinator
  /// would otherwise pin forever (which would freeze this replica's version
  /// clock and, transitively, the cluster-wide UST).
  void fence_lost_coordinators(const std::vector<NodeId>& nodes);

  /// Survivor-side anti-entropy: ask `peer` (a freshly reincarnated replica)
  /// for every version newer than our applied watermarks — recovers writes
  /// only the dead incarnation had applied and replicated nowhere.
  void request_catchup(NodeId peer);

 protected:
  // ----- policy points where PaRiS and BPR diverge -----

  /// Snapshot assigned to a starting transaction, given the client's last
  /// observed snapshot (Alg. 2 lines 1-5 / BPR §V).
  virtual Timestamp assign_snapshot(Timestamp client_seen) = 0;

  /// Serve or queue a read slice (Alg. 3 lines 1-8 / BPR blocking rule).
  virtual void handle_read_slice(NodeId from, const wire::ReadSliceReq& req) = 0;

  /// Proposed commit timestamp after the HLC was ticked past ht
  /// (Alg. 3 line 12).
  virtual Timestamp propose_ts(const wire::PrepareReq& req) = 0;

  /// Called whenever an entry of the version vector advanced (apply,
  /// replicate, heartbeat). BPR drains blocked reads here.
  virtual void on_vv_advanced() {}

  /// A snapshot from another server/client was observed (read slice or
  /// prepare); PaRiS fast-forwards its UST (Alg. 3 lines 2, 11).
  virtual void observe_remote_snapshot(Timestamp /*snap*/) {}

  /// Watermark below which storage GC may prune superseded versions.
  virtual Timestamp gc_watermark() const = 0;

  /// A transaction's writes were applied locally; PaRiS registers it for
  /// apply->visible tracking (visibility happens when the UST passes ct).
  virtual void note_applied(TxId tx, Timestamp ct);

  /// Protocol-specific state appended to / restored from the snapshot header
  /// (PaRiS: UST and GC watermark). Encode and decode must consume symmetric
  /// bytes; donor and requester always run the same protocol subclass.
  virtual void encode_recovery_extras(wire::Encoder& /*e*/) const {}
  virtual void decode_recovery_extras(wire::Decoder& /*d*/) {}

  // Stabilization-tree traffic; only PaRiS uses it.
  virtual void handle_gossip_up(NodeId /*from*/, const wire::GossipUp& /*m*/) {}
  virtual void handle_gossip_root(NodeId /*from*/, const wire::GossipRoot& /*m*/) {}
  virtual void handle_ust_down(NodeId /*from*/, const wire::UstDown& /*m*/) {}

  // ----- shared machinery -----

  /// Answers a read slice from local storage (snapshot-visible versions).
  void serve_slice(NodeId from, const wire::ReadSliceReq& req);

  /// Alg. 4 lines 5-22: apply committed txs with ct <= ub in ct order,
  /// replicate them to peer replicas, advance the local version clock,
  /// heartbeat if nothing shipped.
  void apply_tick();
  void gc_tick();

  std::uint64_t clock_us() const { return clock_.read_us(rt_.exec.now_us()); }
  void send(NodeId to, wire::MessagePtr m) { rt_.net.send(self_, to, std::move(m)); }
  /// Acquires a pooled outgoing message (returned to the pool on release).
  template <class T>
  wire::PooledPtr<T> make_msg() {
    return rt_.net.msg_pool(self_).make<T>();
  }
  /// Node serving partition p for requests originating in this server's DC.
  NodeId route_to_partition(PartitionId p) const;

  /// Minimum snapshot among transactions this server coordinates, or
  /// `fallback` when idle (GC aggregation, §IV-B).
  Timestamp oldest_active_snapshot(Timestamp fallback) const;

  Runtime& rt_;
  const DcId dc_;
  const PartitionId partition_;
  ReplicaIdx replica_idx_ = kInvalidReplica;
  NodeId self_ = kInvalidNode;
  PhysClock clock_;
  Hlc hlc_;
  store::MvStore store_;
  std::vector<Timestamp> vv_;  ///< R entries; vv_[replica_idx_] is the local version clock
  Stats stats_;

 private:
  // --- coordinator state (Alg. 2) ---
  struct ReadOp {
    std::uint32_t outstanding = 0;
    std::vector<wire::Item> items;
  };
  struct CommitOp {
    std::uint32_t outstanding = 0;
    Timestamp max_pt;
    std::vector<NodeId> cohort_nodes;
  };
  struct TxCtx {
    Timestamp snapshot;
    NodeId client = kInvalidNode;
    ReadOp read;
    CommitOp commit;
    bool committing = false;
    sim::SimTime created = 0;
  };

  void handle_start(NodeId from, const wire::ClientStartReq& m);
  void handle_client_read(NodeId from, const wire::ClientReadReq& m);
  void handle_slice_resp(NodeId from, const wire::ReadSliceResp& m);
  void handle_client_commit(NodeId from, const wire::ClientCommitReq& m);
  void handle_prepare(NodeId from, const wire::PrepareReq& m);
  void handle_prepare_resp(NodeId from, const wire::PrepareResp& m);
  void handle_commit2pc(NodeId from, const wire::Commit2pc& m);
  void handle_replicate(NodeId from, const wire::ReplicateBatch& m);
  void handle_heartbeat(NodeId from, const wire::Heartbeat& m);
  void handle_tx_end(NodeId from, const wire::TxEnd& m);

  void finish_tx(TxId tx);
  /// Reaps coordinator contexts abandoned by crashed clients (§III-C);
  /// without this an abandoned snapshot would pin the GC watermark forever.
  void reap_stale_contexts();

  std::unordered_map<TxId, TxCtx> tx_;
  MinTracker<Timestamp> active_snapshots_;  ///< min = oldest active snapshot
  std::uint32_t next_tx_seq_ = 1;
  std::uint32_t incarnation_ = 0;

  // Recently decided commit timestamps (bounded ring + index). After a
  // cohort respawn the channel reset retransmits unacked PrepareReqs, so the
  // new incarnation can prepare a transaction whose decision this
  // coordinator already broadcast; its duplicate PrepareResp is answered
  // from this ring with a fresh Commit2pc, clearing the stale prepared
  // entry that would otherwise fence the cohort's apply loop forever.
  static constexpr std::size_t kRecentCommitCap = 8192;
  std::deque<std::pair<TxId, Timestamp>> recent_commits_;
  std::unordered_map<TxId, Timestamp> recent_commit_ct_;
  void remember_commit(TxId tx, Timestamp ct);

  // Reusable fan-out scratch for handle_client_read / handle_client_commit:
  // by-node grouping without a per-call map. fan_nodes_ holds the distinct
  // serving nodes of the current request (first-appearance order, which is
  // deterministic in the request's key order); fan_keys_/fan_writes_ are
  // parallel groups whose capacity persists across calls.
  std::vector<NodeId> fan_nodes_;
  std::vector<std::vector<Key>> fan_keys_;
  std::vector<std::vector<wire::WriteKV>> fan_writes_;
  std::size_t fan_group(NodeId node);

  // --- cohort state (Alg. 3 / Alg. 4) ---
  struct PrepEntry {
    Timestamp pt;
    std::vector<wire::WriteKV> writes;
  };
  std::unordered_map<TxId, PrepEntry> prepared_;
  MinTracker<Timestamp> prepared_pts_;  ///< min = apply upper-bound fence
  std::map<std::pair<Timestamp, TxId>, std::vector<wire::WriteKV>> committed_;

  runtime::TimerHandle apply_timer_;
  runtime::TimerHandle gc_timer_;
  runtime::TimerHandle ctx_reaper_timer_;

  // --- crash recovery (DESIGN §11) ---
  struct RecoveryState {
    NodeId donor = kInvalidNode;
    std::vector<NodeId> peers;          ///< catch-up targets after the snapshot
    std::uint32_t next_chunk = 0;       ///< expected SnapshotChunk seq
    std::size_t catchup_pending = 0;    ///< last-chunks still owed by peers
    std::vector<std::uint8_t> snap_buf; ///< reassembled snapshot blob
    /// Traffic held while recovering, replayed on finish: the reliable layer
    /// already delivered these exactly-once, so dropping them would lose
    /// protocol messages for good.
    std::vector<std::pair<NodeId, std::vector<std::uint8_t>>> held;
    std::function<void()> on_done;
    /// park_for_join(): buffering started before any transfer was armed.
    bool parked = false;
    /// Elastic join: on finish, tick the HLC past max(vv_) so every commit
    /// this server coordinates post-join exceeds any snapshot that
    /// stabilized while it was out (the §14 migration floor argument).
    bool join_floor = false;
  };
  std::unique_ptr<RecoveryState> rec_;
  std::function<void(std::function<void()>)> catchup_gate_;

  // --- workload-aware placement + online key migration (DESIGN §14) ---
  //
  // Routing overrides sit in front of the static hash map at the two fan-out
  // sites (partition_for). One key moves at a time, cluster-wide:
  //   controller --MigrateFence--> all servers (park new client txs on k)
  //   every server --MigrateFlush--> src replicas (FIFO behind its 2PC sends)
  //   src replica: all flushes in + no prepared/committed entry touching k
  //     --MigrateChain (full version chain)--> every dst replica
  //   dst replica: all R chains installed --MigrateReady--> controller
  //   controller --MigrateCommit--> all servers (flip override, unfence,
  //     replay parked) --MigrateCommitAck--> controller, next move.
  // Requires FIFO channels (the backend invariant; migration runs must not
  // enable chaos reorder), which makes the flush a true barrier: any
  // PrepareReq for k a server sent before fencing is ordered before its
  // flush on the same channel.

  /// Effective key -> partition map: migration overrides, else the hash.
  PartitionId partition_for(Key k) const {
    if (!override_.empty()) {
      if (auto it = override_.find(k); it != override_.end()) return it->second;
    }
    return rt_.topo.partition_of(k);
  }
  bool placement_on() const { return rt_.cfg.placement_policy != 0; }
  bool is_controller() const;
  NodeId controller_node() const;
  /// True when the message was parked behind an active fence (caller must
  /// return without processing).
  bool park_if_fenced(NodeId from, const wire::Message& m, Key k);
  void sketch_note_keys(const std::vector<Key>& keys);
  void sketch_tick();
  void maybe_start_migration();
  void start_next_move();
  void maybe_ship_chain();
  void note_flush(std::uint64_t move_id, Key key, Timestamp floor);

  void handle_sketch_report(NodeId from, const wire::SketchReport& m);
  void handle_migrate_fence(NodeId from, const wire::MigrateFence& m);
  void handle_migrate_flush(NodeId from, const wire::MigrateFlush& m);
  void handle_migrate_chain(NodeId from, const wire::MigrateChain& m);
  void handle_migrate_ready(NodeId from, const wire::MigrateReady& m);
  void handle_migrate_commit(NodeId from, const wire::MigrateCommit& m);
  void handle_migrate_commit_ack(NodeId from, const wire::MigrateCommitAck& m);

  std::unordered_map<Key, PartitionId> override_;  ///< migrated keys
  placement::AccessSketch sketch_{0};              ///< sized from cfg in ctor
  runtime::TimerHandle sketch_timer_;

  /// Every-server fence for the one in-flight move.
  struct FenceState {
    std::uint64_t move_id = 0;
    Key key = 0;
    PartitionId src = 0, dst = 0;
    std::vector<std::pair<NodeId, std::vector<std::uint8_t>>> parked;
  };
  std::unique_ptr<FenceState> fence_;

  /// Src-replica side: flush barrier + drain, then chain shipping.
  struct SrcMoveState {
    std::uint64_t move_id = 0;
    Key key = 0;
    PartitionId dst = 0;
    std::uint32_t flushes_pending = 0;
    /// Running max of the flush floors (every server's HLC at fence time).
    Timestamp floor;
  };
  std::unique_ptr<SrcMoveState> src_move_;

  /// Dst-replica side: one chain owed per src replica.
  struct DstMoveState {
    std::uint64_t move_id = 0;
    std::uint32_t chains_pending = 0;
    /// Running max of the chain floors; ticked past before MigrateReady so
    /// post-cutover commit proposals land strictly above every snapshot
    /// that stabilized — and every version that committed — pre-cutover.
    Timestamp floor;
  };
  std::unique_ptr<DstMoveState> dst_move_;

  /// Controller-only migration driver.
  struct MoveSpec {
    Key key = 0;
    PartitionId src = 0, dst = 0;
  };
  struct ControllerState {
    placement::AccessSketch merged{1024};
    bool migration_started = false;
    std::vector<MoveSpec> queue;
    std::size_t next = 0;            ///< queue index of the next move to start
    std::uint64_t move_id = 0;       ///< current move (0 = idle)
    std::uint32_t readies_pending = 0;
    std::uint32_t acks_pending = 0;
  };
  std::unique_ptr<ControllerState> ctrl_;

  void handle_snapshot_request(NodeId from, const wire::SnapshotRequest& m);
  void handle_snapshot_chunk(NodeId from, const wire::SnapshotChunk& m);
  void handle_catchup_request(NodeId from, const wire::CatchUpRequest& m);
  void handle_catchup_chunk(NodeId from, const wire::CatchUpChunk& m);
  void finish_recovery();
  /// Decodes and installs a length-prefixed version-record list via the
  /// idempotent store apply (original source DC preserved, no replication
  /// side effects — these versions were already replicated by their origin).
  void install_records(wire::Decoder& d);
  static void encode_version_record(wire::Encoder& e, Key k, const store::Version& ver);
};

}  // namespace paris::proto
