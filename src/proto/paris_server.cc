#include "proto/paris_server.h"

#include <algorithm>

#include "common/assert.h"

namespace paris::proto {

using namespace wire;

ParisServer::ParisServer(Runtime& rt, DcId dc, PartitionId partition)
    : ServerBase(rt, dc, partition),
      tree_(rt.topo.servers_per_dc(dc), rt.cfg.tree_fanout),
      gsv_(rt.topo.num_dcs(), kTsZero),
      oldest_by_dc_(rt.topo.num_dcs(), kTsZero) {
  const auto& locals = rt.topo.partitions_at(dc);
  const auto it = std::find(locals.begin(), locals.end(), partition);
  PARIS_CHECK(it != locals.end());
  local_idx_ = static_cast<std::uint32_t>(it - locals.begin());
}

void ParisServer::resolve_tree_nodes() {
  if (tree_resolved_) return;
  const auto& locals = rt_.topo.partitions_at(dc_);
  if (!tree_.is_root(local_idx_))
    parent_node_ = rt_.dir.server(dc_, locals[tree_.parent(local_idx_)]);
  for (std::uint32_t c : tree_.children(local_idx_)) {
    const NodeId n = rt_.dir.server(dc_, locals[c]);
    child_slot_[n] = child_nodes_.size();
    child_nodes_.push_back(n);
  }
  child_min_.assign(child_nodes_.size(), kTsZero);
  child_oldest_.assign(child_nodes_.size(), kTsZero);
  if (tree_.is_root(local_idx_)) {
    dc_roots_.assign(rt_.topo.num_dcs(), kInvalidNode);
    for (DcId d = 0; d < rt_.topo.num_dcs(); ++d) {
      const auto& remote_locals = rt_.topo.partitions_at(d);
      if (!remote_locals.empty()) dc_roots_[d] = rt_.dir.server(d, remote_locals[0]);
    }
  }
  tree_resolved_ = true;
}

void ParisServer::start_timers(Rng& phase_rng) {
  ServerBase::start_timers(phase_rng);
  resolve_tree_nodes();
  gst_timer_ = rt_.exec.every(self_, rt_.cfg.delta_g_us, phase_rng.next_below(rt_.cfg.delta_g_us),
                              [this] { gst_tick(); });
  if (tree_.is_root(local_idx_)) {
    ust_timer_ = rt_.exec.every(self_, rt_.cfg.delta_u_us,
                                phase_rng.next_below(rt_.cfg.delta_u_us), [this] { ust_tick(); });
  }
}

// ---------------------------------------------------------------------------
// Policy points.
// ---------------------------------------------------------------------------

Timestamp ParisServer::assign_snapshot(Timestamp client_seen) {
  // Alg. 2 lines 1-5: fast-forward the local UST with the client's view so
  // snapshots seen by one client advance monotonically, then assign it.
  set_ust(std::max(ust_, client_seen));
  return ust_;
}

void ParisServer::handle_read_slice(NodeId from, const ReadSliceReq& req) {
  // Alg. 3 line 2: the incoming snapshot is stable, adopt it if fresher.
  set_ust(std::max(ust_, req.snapshot));
  // The UST invariant that makes non-blocking reads safe: any snapshot
  // handed out by any coordinator in any DC is already installed here. The
  // installed variant ignores a freshly joined DC's still-empty slot (the
  // join HLC floor keeps its future versions above every stable snapshot).
  PARIS_PARANOID_CHECK(min_vv_installed() >= req.snapshot);
  serve_slice(from, req);  // never blocks
}

Timestamp ParisServer::propose_ts(const PrepareReq& /*req*/) {
  // Alg. 3 line 12 (strengthened, DESIGN.md §4): propose above the HLC
  // (already ticked past ht = max(snapshot, hwt)) and strictly above the
  // local UST, so the new version cannot fall inside an already-stable
  // snapshot. Fold the proposal back into the HLC to keep it monotonic.
  const Timestamp pt = std::max(hlc_.value(), ust_.next());
  hlc_.observe(clock_us(), pt);
  return pt;
}

void ParisServer::observe_remote_snapshot(Timestamp snap) { set_ust(std::max(ust_, snap)); }

void ParisServer::note_applied(TxId tx, Timestamp ct) {
  if (rt_.tracer != nullptr && rt_.tracer->want_visibility(tx)) {
    pending_visibility_.emplace(ct, tx);
    if (ct <= ust_) set_ust(ust_);  // defensive immediate drain
  }
}

void ParisServer::set_ust(Timestamp t) {
  if (t > ust_) {
    ust_ = t;
    if (rt_.tracer) rt_.tracer->on_ust_advance(dc_, partition_, ust_, rt_.exec.now_us());
  }
  // Sampled updates become visible once the UST passes their ct.
  while (!pending_visibility_.empty() && pending_visibility_.top().first <= ust_) {
    const auto [ct, tx] = pending_visibility_.top();
    pending_visibility_.pop();
    if (rt_.tracer) rt_.tracer->on_visible(dc_, partition_, tx, ct, rt_.exec.now_us());
  }
}

void ParisServer::encode_recovery_extras(Encoder& e) const {
  e.put_varint(ust_.raw);
  e.put_varint(gc_watermark_.raw);
}

void ParisServer::decode_recovery_extras(Decoder& d) {
  const Timestamp donor_ust{d.get_varint()};
  const Timestamp donor_gc{d.get_varint()};
  set_ust(std::max(ust_, donor_ust));
  gc_watermark_ = std::max(gc_watermark_, donor_gc);
}

// ---------------------------------------------------------------------------
// Stabilization gossip (Alg. 4 lines 34-38).
// ---------------------------------------------------------------------------

void ParisServer::gst_tick() {
  if (rt_.net.node_paused(self_)) return;  // crashed process does no work
  resolve_tree_nodes();
  rt_.net.charge_cpu(self_, rt_.cost.gossip_us);

  // Aggregate this subtree's minimum installed snapshot and oldest active
  // transaction snapshot (GC watermark input; a server with no running
  // transaction contributes its current stable snapshot, §IV-B).
  Timestamp sub_min = min_vv();
  Timestamp sub_oldest = oldest_active_snapshot(/*fallback=*/ust_);
  for (std::size_t i = 0; i < child_nodes_.size(); ++i) {
    sub_min = std::min(sub_min, child_min_[i]);
    sub_oldest = std::min(sub_oldest, child_oldest_[i]);
  }

  if (!tree_.is_root(local_idx_)) {
    auto up = make_msg<GossipUp>();
    up->min_vv = sub_min;
    up->oldest_active = sub_oldest;
    send(parent_node_, std::move(up));
    ++stats_.gossip_msgs_sent;
    return;
  }

  // Root: this is the DC's GST; exchange with the other DC roots.
  gsv_[dc_] = std::max(gsv_[dc_], sub_min);
  oldest_by_dc_[dc_] = sub_oldest;
  auto root_msg = make_msg<GossipRoot>();
  root_msg->dc = dc_;
  root_msg->gst = gsv_[dc_];
  root_msg->oldest_active = oldest_by_dc_[dc_];
  const wire::MessagePtr root_shared = std::move(root_msg);
  for (DcId d = 0; d < rt_.topo.num_dcs(); ++d) {
    // Only currently-active DCs take part in the root exchange: a drained
    // DC stops gossiping, a not-yet-joined one has nothing to contribute.
    if (d == dc_ || dc_roots_[d] == kInvalidNode || !rt_.dc_active(d)) continue;
    send(dc_roots_[d], root_shared);
    ++stats_.gossip_msgs_sent;
  }
}

void ParisServer::handle_gossip_up(NodeId from, const GossipUp& m) {
  resolve_tree_nodes();
  const auto it = child_slot_.find(from);
  PARIS_CHECK_MSG(it != child_slot_.end(), "gossip-up from non-child");
  child_min_[it->second] = std::max(child_min_[it->second], m.min_vv);
  child_oldest_[it->second] = m.oldest_active;
}

void ParisServer::handle_gossip_root(NodeId /*from*/, const GossipRoot& m) {
  PARIS_CHECK_MSG(tree_.is_root(local_idx_), "root exchange received by non-root");
  gsv_[m.dc] = std::max(gsv_[m.dc], m.gst);
  oldest_by_dc_[m.dc] = m.oldest_active;
}

void ParisServer::ust_tick() {
  if (rt_.net.node_paused(self_)) return;
  resolve_tree_nodes();
  rt_.net.charge_cpu(self_, rt_.cost.gossip_us);

  // The UST is the aggregate minimum of the currently-active DCs' GSTs; it
  // is 0 (no stable snapshot yet) until each of them has reported at least
  // once — which also freezes the UST across a join until the new DC's root
  // first reports, mirroring the conservative min_vv(). A drained DC drops
  // out of the minimum (its replicated versions are covered by the active
  // DCs' own min_vv terms).
  Timestamp candidate = kTsMax;
  Timestamp oldest = kTsMax;
  for (DcId d = 0; d < rt_.topo.num_dcs(); ++d) {
    if (!rt_.dc_active(d)) continue;
    candidate = std::min(candidate, gsv_[d]);
    oldest = std::min(oldest, oldest_by_dc_[d]);
  }
  if (candidate.is_zero() || candidate == kTsMax) return;

  set_ust(std::max(ust_, candidate));
  // GC below both every DC's oldest active snapshot and the UST itself.
  gc_watermark_ = std::max(gc_watermark_, std::min(oldest, ust_));

  auto down = make_msg<UstDown>();
  down->ust = ust_;
  down->gc_watermark = gc_watermark_;
  const wire::MessagePtr down_shared = std::move(down);
  for (NodeId child : child_nodes_) {
    send(child, down_shared);
    ++stats_.gossip_msgs_sent;
  }
}

void ParisServer::handle_ust_down(NodeId /*from*/, const UstDown& m) {
  resolve_tree_nodes();
  set_ust(std::max(ust_, m.ust));
  gc_watermark_ = std::max(gc_watermark_, m.gc_watermark);
  auto down = make_msg<UstDown>();
  down->ust = ust_;
  down->gc_watermark = gc_watermark_;
  const wire::MessagePtr down_shared = std::move(down);
  for (NodeId child : child_nodes_) {
    send(child, down_shared);
    ++stats_.gossip_msgs_sent;
  }
}

}  // namespace paris::proto
