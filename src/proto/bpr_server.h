#pragma once
// BPR — Blocking Partial Replication (§V, "Competitor system").
//
// BPR is the paper's baseline: same storage, replication, 2PC and meta-data
// footprint (one timestamp) as PaRiS, but it favors snapshot freshness:
// a transaction's snapshot is the maximum of the client's highest observed
// snapshot and the coordinator's clock. The price is that a read slice with
// snapshot t must WAIT until the partition has applied every local and
// remote transaction with timestamp up to t — i.e. until min(VV) >= t.

#include <map>

#include "proto/server_base.h"

namespace paris::proto {

class BprServer : public ServerBase {
 public:
  BprServer(Runtime& rt, DcId dc, PartitionId partition)
      : ServerBase(rt, dc, partition) {}

  /// Locally installed snapshot: reads up to this bound proceed immediately.
  Timestamp local_stable() const { return min_vv(); }
  std::size_t blocked_reads_pending() const { return blocked_.size(); }
  Timestamp stable_snapshot() const override { return min_vv(); }

 protected:
  Timestamp assign_snapshot(Timestamp client_seen) override;
  void handle_read_slice(NodeId from, const wire::ReadSliceReq& req) override;
  Timestamp propose_ts(const wire::PrepareReq& req) override;
  void on_vv_advanced() override;
  Timestamp gc_watermark() const override;
  void note_applied(TxId tx, Timestamp ct) override;

 private:
  struct BlockedRead {
    NodeId from;
    wire::ReadSliceReq req;
    sim::SimTime since;
  };
  /// Parked reads keyed by required snapshot; drained when min(VV) advances.
  std::multimap<Timestamp, BlockedRead> blocked_;
};

}  // namespace paris::proto
