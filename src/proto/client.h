#pragma once
// Client session (Alg. 1).
//
// A client is pinned to one coordinator partition server in its local DC
// (§II-C) and runs one interactive transaction at a time. The API is
// continuation-based because the client lives inside the discrete-event
// simulation: start_tx / read / commit complete asynchronously.
//
// PaRiS clients keep a private write cache WC_c holding their own committed
// writes that the UST has not yet covered; on every transaction start the
// cache is pruned of entries at or below the new snapshot (§III-B "Cache").
// BPR clients need no cache (snapshots are fresh and include the client's
// last commit time) — they fold hwt into the "seen" timestamp instead.

#include <functional>
#include <unordered_map>
#include <vector>

#include "proto/runtime.h"
#include "runtime/actor.h"

namespace paris::proto {

class Client : public runtime::Actor {
 public:
  struct Options {
    bool use_write_cache = true;    ///< PaRiS: read-your-writes via WC_c
    bool fold_hwt_into_seen = false;  ///< BPR: snapshot >= last commit time
  };
  static Options paris_options() { return {true, false}; }
  static Options bpr_options() { return {false, true}; }

  using StartCb = std::function<void(TxId, Timestamp snapshot)>;
  using ReadCb = std::function<void(std::vector<wire::Item>)>;
  using CommitCb = std::function<void(Timestamp ct)>;

  Client(Runtime& rt, DcId dc, NodeId coordinator, Options opt);

  void attach(NodeId self) { self_ = self; }

  // --- transaction API (one operation outstanding at a time) ---
  void start_tx(StartCb cb);
  /// Reads keys in parallel; results arrive in request order. Keys found in
  /// the write set, read set or write cache are served locally (Alg. 1
  /// lines 8-19). With ReadMode::kCounter every key is evaluated with
  /// counter semantics: the returned value is the merged sum of all visible
  /// deltas plus this client's own not-yet-stable deltas (read-your-writes
  /// for counters). Do not mix modes on the same key within a transaction.
  void read(std::vector<Key> keys, ReadCb cb,
            wire::ReadMode mode = wire::ReadMode::kRegister);
  /// Buffers writes in the write set (Alg. 1 lines 21-25).
  void write(std::vector<wire::WriteKV> kvs);
  /// Buffers a convergent counter increment (§II-B conflict-resolution
  /// extension): concurrent adds from any DC merge by summation.
  void add(Key k, std::int64_t delta);
  /// Finalizes the transaction: runs the 2PC if the write set is non-empty,
  /// otherwise just releases the coordinator context. cb receives the
  /// commit timestamp (zero for read-only transactions).
  void commit(CommitCb cb);

  // --- introspection ---
  bool in_tx() const { return current_tx_.valid(); }
  Timestamp ust() const { return ust_c_; }
  Timestamp hwt() const { return hwt_; }
  Timestamp snapshot() const { return snapshot_; }
  std::size_t cache_size() const { return cache_.size(); }
  NodeId node() const { return self_; }
  DcId dc() const { return dc_; }

  struct Stats {
    std::uint64_t txs_started = 0;
    std::uint64_t txs_committed = 0;
    std::uint64_t read_only_txs = 0;
    std::uint64_t keys_read = 0;
    std::uint64_t keys_written = 0;
    std::uint64_t local_hits = 0;  ///< reads served from WS/RS/WC
    std::size_t max_cache_size = 0;
  };
  const Stats& stats() const { return stats_; }

  void on_message(NodeId from, const wire::Message& m) override;

 private:
  void deliver_read();
  void end_tx();

  Runtime& rt_;
  DcId dc_;
  NodeId coord_;
  NodeId self_ = kInvalidNode;
  Options opt_;

  // Session state (Alg. 1).
  Timestamp ust_c_;  ///< highest stable snapshot observed
  Timestamp hwt_;    ///< commit time of the last update transaction
  std::unordered_map<Key, wire::Item> cache_;  ///< WC_c (register writes)
  /// WC_c for counters: committed-but-not-yet-stable deltas per key. Same
  /// lifecycle as cache_: pruned on transaction start once ct <= ust_c.
  std::unordered_map<Key, std::vector<std::pair<Timestamp, std::int64_t>>> counter_cache_;

  // Current transaction.
  TxId current_tx_;
  Timestamp snapshot_;
  std::unordered_map<Key, wire::Item> rs_;  ///< read set
  std::vector<wire::WriteKV> ws_;           ///< write set (ordered)

  // Pending operation state.
  StartCb start_cb_;
  ReadCb read_cb_;
  CommitCb commit_cb_;
  std::vector<Key> pending_keys_;                    ///< full request order
  std::vector<Key> remote_scratch_;                  ///< keys not served locally
  std::unordered_map<Key, wire::Item> pending_found_;  ///< local + server hits
  wire::ReadMode pending_mode_ = wire::ReadMode::kRegister;

  Stats stats_;
};

}  // namespace paris::proto
