#pragma once
// Shared per-deployment context handed to every server and client. The
// protocol layer programs against the runtime abstraction (Executor for
// time/timers/deferred tasks, Transport for messaging) and never sees the
// concrete backend — the same servers and clients run unchanged on the
// deterministic simulator (runtime::SimBackend) and on real worker threads
// (runtime::ThreadBackend).

#include "cluster/topology.h"
#include "proto/config.h"
#include "proto/tracer.h"
#include "runtime/executor.h"
#include "runtime/transport.h"

namespace paris::proto {

struct Runtime {
  runtime::Executor& exec;
  runtime::Transport& net;
  const cluster::Topology& topo;
  cluster::Directory& dir;
  CostModel cost;
  ProtocolConfig cfg;
  Tracer* tracer = nullptr;  ///< optional, not owned
};

}  // namespace paris::proto
