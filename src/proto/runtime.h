#pragma once
// Shared per-deployment context handed to every server and client. The
// protocol layer programs against the runtime abstraction (Executor for
// time/timers/deferred tasks, Transport for messaging) and never sees the
// concrete backend — the same servers and clients run unchanged on the
// deterministic simulator (runtime::SimBackend) and on real worker threads
// (runtime::ThreadBackend).

#include "cluster/membership.h"
#include "proto/config.h"
#include "proto/tracer.h"
#include "runtime/executor.h"
#include "runtime/transport.h"

namespace paris::proto {

struct Runtime {
  runtime::Executor& exec;
  runtime::Transport& net;
  const cluster::Topology& topo;
  cluster::Directory& dir;
  CostModel cost;
  ProtocolConfig cfg;
  Tracer* tracer = nullptr;  ///< optional, not owned
  /// Versioned membership views (DESIGN §11); null = every DC active for
  /// the whole run (the static pre-elastic behavior).
  cluster::Membership* mem = nullptr;  ///< optional, not owned

  /// Replication fan-out / routing predicate: does `d` replicate in the
  /// CURRENT view?
  bool dc_active(DcId d) const { return mem == nullptr || mem->active(d); }
  /// Has `d` ever been active up to the current view? Version-vector slots
  /// of never-joined DCs are skippable in stabilization minima; a drained
  /// DC's slot keeps counting.
  bool dc_ever_active(DcId d) const { return mem == nullptr || mem->ever_active(d); }
  /// Was `d` active in view 0? A late joiner's zero vv entry is skippable
  /// until its first heartbeat lands (the join HLC floor keeps that sound).
  bool dc_initially_active(DcId d) const {
    return mem == nullptr || mem->initially_active(d);
  }
  /// View-relative Topology::target_dc.
  DcId route_dc(DcId client_dc, PartitionId p) const {
    return mem != nullptr ? mem->target_dc(client_dc, p) : topo.target_dc(client_dc, p);
  }
};

}  // namespace paris::proto
