#pragma once
// Shared per-deployment context handed to every server and client.

#include "cluster/topology.h"
#include "proto/config.h"
#include "proto/tracer.h"
#include "sim/network.h"
#include "sim/simulation.h"

namespace paris::proto {

struct Runtime {
  sim::Simulation& sim;
  sim::Network& net;
  const cluster::Topology& topo;
  cluster::Directory& dir;
  CostModel cost;
  ProtocolConfig cfg;
  Tracer* tracer = nullptr;  ///< optional, not owned
};

}  // namespace paris::proto
