#pragma once
// Deployment: builds a complete simulated cluster — network, one server per
// (DC, partition) replica, physical clocks, timers — for either system
// (PaRiS or BPR), and hands out client sessions. This is the top-level
// entry point of the library; see examples/quickstart.cc for usage.

#include <memory>
#include <vector>

#include "cluster/topology.h"
#include "proto/bpr_server.h"
#include "proto/client.h"
#include "proto/paris_server.h"
#include "proto/runtime.h"
#include "sim/network.h"

namespace paris::proto {

enum class System { kParis, kBpr };

inline const char* system_name(System s) { return s == System::kParis ? "PaRiS" : "BPR"; }

struct DeploymentConfig {
  System system = System::kParis;
  cluster::TopologyConfig topo;
  ProtocolConfig protocol;
  CostModel cost;
  sim::CodecMode codec = sim::CodecMode::kBytes;
  /// true: AWS-calibrated inter-DC latencies (first M of the paper's ten
  /// regions); false: uniform latencies (unit tests).
  bool aws_latency = true;
  sim::SimTime uniform_inter_dc_us = 40'000;
  sim::SimTime uniform_intra_dc_us = 150;
  double jitter = 0.05;
  std::uint64_t seed = 1;
};

class Deployment {
 public:
  explicit Deployment(const DeploymentConfig& cfg, Tracer* tracer = nullptr);

  /// Starts all server timers (apply/replicate, gossip, GC). Call once
  /// before running the simulation.
  void start();

  /// Creates a client session collocated with the given coordinator
  /// partition server in `dc` (the paper collocates one client process per
  /// partition per DC). The deployment owns the client.
  Client& add_client(DcId dc, PartitionId coordinator_partition);

  // --- accessors ---
  sim::Simulation& sim() { return sim_; }
  sim::Network& net() { return net_; }
  const cluster::Topology& topo() const { return topo_; }
  Runtime& runtime() { return rt_; }
  const DeploymentConfig& config() const { return cfg_; }

  ServerBase& server(DcId dc, PartitionId p);
  /// Null if the deployment runs the other system.
  ParisServer* paris_server(DcId dc, PartitionId p);
  BprServer* bpr_server(DcId dc, PartitionId p);
  const std::vector<std::unique_ptr<ServerBase>>& servers() const { return servers_; }
  const std::vector<std::unique_ptr<Client>>& clients() const { return clients_; }

  /// Convenience: run the simulation for `us` microseconds.
  void run_for(sim::SimTime us) { sim_.run_until(sim_.now() + us); }

  /// Aggregated server stats across the cluster.
  ServerBase::Stats total_server_stats() const;

 private:
  DeploymentConfig cfg_;
  sim::Simulation sim_;
  sim::Network net_;
  cluster::Topology topo_;
  cluster::Directory dir_;
  Runtime rt_;
  std::vector<std::unique_ptr<ServerBase>> servers_;
  std::vector<std::unique_ptr<Client>> clients_;
  bool started_ = false;
};

}  // namespace paris::proto
