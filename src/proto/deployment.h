#pragma once
// Deployment: builds a complete cluster — runtime backend, one server per
// (DC, partition) replica, physical clocks, timers — for either system
// (PaRiS or BPR), and hands out client sessions. This is the top-level
// entry point of the library; see examples/quickstart.cc for usage.
//
// The deployment programs only against the runtime abstraction: with
// runtime::Kind::kSim it runs inside the deterministic discrete-event
// simulator (byte-identical per seed), with runtime::Kind::kThreads the
// same protocol code runs on real worker threads. Sim-specific access
// (fault injection, stepping) lives in proto/sim_access.h.

#include <atomic>
#include <memory>
#include <vector>

#include "cluster/membership.h"
#include "proto/bpr_server.h"
#include "proto/client.h"
#include "proto/paris_server.h"
#include "proto/runtime.h"
#include "runtime/backend.h"
#include "runtime/fuzz_transport.h"
#include "runtime/latency_transport.h"
#include "runtime/partition_transport.h"
#include "runtime/reliable_transport.h"
#include "runtime/wan_transport.h"
#include "runtime/socket_runtime.h"
#include "sim/codec_mode.h"

namespace paris::proto {

enum class System { kParis, kBpr };

inline const char* system_name(System s) { return s == System::kParis ? "PaRiS" : "BPR"; }

/// Elastic membership schedule (DESIGN §11): at `at_ms` of run time, the DCs
/// owned by process rank `rank` join (start inactive, snapshot + catch-up in,
/// then serve) or leave (drain: peers stop fanning out / routing to them).
/// On the threads/sim backends "rank" addresses DC `rank` directly.
struct MembershipEvent {
  bool join = true;
  std::uint32_t rank = 0;
  std::uint64_t at_ms = 0;
};

struct MembershipSchedule {
  std::vector<MembershipEvent> events;
  bool enabled() const { return !events.empty(); }
};

struct DeploymentConfig {
  System system = System::kParis;
  cluster::TopologyConfig topo;
  ProtocolConfig protocol;
  CostModel cost;
  /// Backend: deterministic simulator (default), real worker threads, or
  /// real OS processes connected over TCP (kSockets; see socket below).
  runtime::Kind runtime = runtime::Kind::kSim;
  /// Threads/sockets backend: worker thread count (per process for
  /// sockets); 0 = one per server node hosted by this process.
  std::uint32_t worker_threads = 0;
  /// Sockets backend: this process's rank + cluster wiring. A deployment is
  /// only ever built INSIDE a child process (rank >= 0); the launcher side
  /// lives in workload::run_experiment, which spawns children and merges.
  runtime::SocketConfig socket;
  /// Scheduled DC join/leave view changes (empty = static membership).
  MembershipSchedule membership;
  sim::CodecMode codec = sim::CodecMode::kBytes;
  /// true: AWS-calibrated inter-DC latencies (first M of the paper's ten
  /// regions); false: uniform latencies (unit tests).
  bool aws_latency = true;
  std::uint64_t uniform_inter_dc_us = 40'000;
  std::uint64_t uniform_intra_dc_us = 150;
  double jitter = 0.05;
  /// Threads backend only: wrap the transport in a LatencyTransport drawing
  /// from the same matrix/jitter settings above, so a threads run models
  /// WAN delay like the simulator does. kNone = instant delivery.
  runtime::LatencyModelKind latency_model = runtime::LatencyModelKind::kNone;
  /// Threads backend only: fault-injection decorator (off by default).
  runtime::ChaosConfig chaos;
  /// Threads backend only: at-least-once reliable delivery. Wraps every
  /// protocol message in a sequenced frame with retransmission + dedup, so
  /// chaos drops and partitions of ANY message class still converge
  /// (DESIGN.md §9). Off by default: the undecorated path pays nothing.
  bool reliable = false;
  runtime::ReliableConfig reliable_cfg;
  /// Threads backend only: scheduled inter-DC blackouts (messages crossing
  /// an active window are dropped; heals at the window deadline).
  runtime::PartitionSpec partitions;
  /// Threads/sockets: WAN-realism link episodes (asymmetric delay ramps,
  /// bandwidth caps, Gilbert–Elliott burst loss). Off when empty.
  runtime::WanConfig wan;
  /// Threads/sockets: live channel fuzzing (mutate-then-drop + replay),
  /// below the reliable layer. Off by default.
  runtime::FuzzConfig fuzz;
  std::uint64_t seed = 1;
};

class Deployment {
 public:
  explicit Deployment(const DeploymentConfig& cfg, Tracer* tracer = nullptr);
  ~Deployment();

  /// Starts all server timers (apply/replicate, gossip, GC). Call once
  /// before running the deployment.
  ///
  /// Socket children additionally get the self-healing wiring (DESIGN §11):
  /// every local server learns its incarnation epoch, an epoch listener
  /// fences stale reliable channels / 2PC state when a peer rank respawns,
  /// and — when this child IS the respawn (epoch > 0) — local servers defer
  /// their timers until donor state transfer + catch-up completes.
  void start();

  /// Sockets, epoch > 0: number of local servers still streaming donor
  /// state. Reaches 0 once every local server has rejoined.
  std::uint32_t recovering_servers() const {
    return recovering_.load(std::memory_order_acquire);
  }
  /// Polls until every local server finished recovery or `timeout_ms`
  /// elapsed; returns true on success. Trivially true when no recovery was
  /// armed. Starts the backend workers if start() left them cold.
  bool wait_recovered(std::uint64_t timeout_ms);

  /// Creates a client session collocated with the given coordinator
  /// partition server in `dc` (the paper collocates one client process per
  /// partition per DC). The deployment owns the client. Clients must be
  /// added before the first run_for().
  Client& add_client(DcId dc, PartitionId coordinator_partition);

  // --- accessors ---
  runtime::Backend& backend() { return *backend_; }
  runtime::Executor& exec() { return backend_->exec(); }
  /// The transport the protocol layer sends through: the backend's own, or
  /// the outermost decorator when a latency model / chaos is configured.
  runtime::Transport& transport() { return rt_.net; }
  /// Non-null when the deployment injects latency (threads backend with
  /// latency_model != kNone).
  runtime::LatencyTransport* latency_transport() { return latency_tp_.get(); }
  /// Non-null when fault injection is on (chaos.enabled()).
  runtime::ChaosTransport* chaos_transport() { return chaos_tp_.get(); }
  /// Non-null when at-least-once delivery is on (cfg.reliable, threads).
  runtime::ReliableTransport* reliable_transport() { return reliable_tp_.get(); }
  /// Non-null when scheduled blackouts are configured (cfg.partitions).
  runtime::PartitionTransport* partition_transport() { return partition_tp_.get(); }
  /// Non-null when WAN link episodes are configured (cfg.wan.enabled()).
  runtime::WanTransport* wan_transport() { return wan_tp_.get(); }
  /// Non-null when channel fuzzing is on (cfg.fuzz.enabled()).
  runtime::FuzzTransport* fuzz_transport() { return fuzz_tp_.get(); }
  /// Non-null when this deployment runs the socket backend (child process).
  runtime::SocketBackend* socket_backend() {
    return cfg_.runtime == runtime::Kind::kSockets
               ? static_cast<runtime::SocketBackend*>(backend_.get())
               : nullptr;
  }
  const cluster::Topology& topo() const { return topo_; }
  Runtime& runtime() { return rt_; }
  const DeploymentConfig& config() const { return cfg_; }

  ServerBase& server(DcId dc, PartitionId p);
  /// Null if the deployment runs the other system.
  ParisServer* paris_server(DcId dc, PartitionId p);
  BprServer* bpr_server(DcId dc, PartitionId p);
  const std::vector<std::unique_ptr<ServerBase>>& servers() const { return servers_; }
  const std::vector<std::unique_ptr<Client>>& clients() const { return clients_; }

  /// Advances the deployment by `us` microseconds (simulated or wall time).
  void run_for(std::uint64_t us) { backend_->run_for(us); }
  /// Stops worker threads (threads backend; no-op for sim). Call before
  /// inspecting server/client state of a threads run; also runs on
  /// destruction.
  void stop() { backend_->stop(); }

  /// Aggregated server stats across the cluster, accumulated in NodeId
  /// order so the output is deterministic regardless of container order.
  ServerBase::Stats total_server_stats() const;

 private:
  /// Registers an actor with the backend, interposing the reliable-delivery
  /// endpoint when cfg.reliable is on.
  NodeId register_actor(runtime::Actor* real, DcId dc, runtime::ServiceFn service,
                        NodeId colocate_with = kInvalidNode);

  /// Installs the epoch listener: when a peer rank's epoch rises (it was
  /// respawned), every local server resets its reliable channels to the
  /// reincarnated nodes, fences prepared 2PC entries of the dead
  /// coordinators, and offers anti-entropy catch-up.
  void wire_epoch_fencing(runtime::SocketBackend& sb);
  /// Epoch > 0 child: posts start_recovery on every local server that has a
  /// surviving remote replica (donor + peers), deferring its timers to the
  /// recovery-done callback. Servers with no surviving replica start cold.
  void arm_socket_recovery(runtime::SocketBackend& sb);
  /// Elastic membership (DESIGN §11): parks the servers of later-joining
  /// DCs, schedules the local join/leave view installs, wires the beacon
  /// view listener (sockets) and the catch-up gate, and arms the join-time
  /// state transfer for the local DCs that join late (their timers are
  /// deferred to the join-done callback).
  void arm_membership(Rng& phase_rng);
  /// DCs this process hosts (all of them off the socket backend).
  bool hosts_dc(DcId d) const;
  void install_view_local(std::uint32_t view_id);
  void begin_join(DcId d, std::uint32_t view_id);

  DeploymentConfig cfg_;
  cluster::Topology topo_;
  cluster::Directory dir_;
  /// Built before rt_ (which carries the pointer); views precomputed from
  /// cfg_.membership so every process derives the identical sequence.
  std::unique_ptr<cluster::Membership> membership_;
  std::unique_ptr<runtime::Backend> backend_;
  // Transport decorator chain (threads/sockets backends only); the protocol
  // sends through reliable -> fuzz -> chaos -> partition -> wan -> latency
  // -> backend (each layer optional). Fuzz sits just below reliable so it
  // sees — and may corrupt/replay — the sequenced frames the reliable layer
  // must recover from; wan shapes links next to the latency model it
  // perturbs. Declared innermost-first and before rt_, which binds a
  // reference to the outermost transport.
  std::unique_ptr<runtime::LatencyTransport> latency_tp_;
  std::unique_ptr<runtime::WanTransport> wan_tp_;
  std::unique_ptr<runtime::PartitionTransport> partition_tp_;
  std::unique_ptr<runtime::ChaosTransport> chaos_tp_;
  std::unique_ptr<runtime::FuzzTransport> fuzz_tp_;
  std::unique_ptr<runtime::ReliableTransport> reliable_tp_;
  Runtime rt_;
  std::vector<std::unique_ptr<ServerBase>> servers_;
  std::vector<std::unique_ptr<Client>> clients_;
  bool started_ = false;
  /// Local servers whose recovery is still in flight (sockets epoch > 0
  /// respawn, or an elastic join's state transfer).
  std::atomic<std::uint32_t> recovering_{0};
  /// Fire-once membership schedule timers + catch-up gate pollers (the
  /// executor has no one-shot delayed post; each handle guards with a flag).
  std::vector<runtime::TimerHandle> sched_timers_;
  std::vector<std::unique_ptr<std::atomic<bool>>> sched_fired_;
  /// Actor hosting every membership schedule/gate timer: timers may only be
  /// created pre-start or from this actor's own worker (its callbacks).
  NodeId memb_timer_node_ = kInvalidNode;

 public:
  /// The membership view machinery (null when no schedule is configured).
  cluster::Membership* membership() { return membership_.get(); }
};

}  // namespace paris::proto
