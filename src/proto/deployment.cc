#include "proto/deployment.h"

#include <algorithm>
#include <chrono>
#include <initializer_list>
#include <thread>

#include "common/assert.h"
#include "common/rng.h"
#include "runtime/sim_runtime.h"
#include "runtime/thread_runtime.h"

namespace paris::proto {

namespace {
sim::LatencyModel build_latency(const DeploymentConfig& cfg) {
  auto m = cfg.aws_latency
               ? sim::LatencyModel::aws(cfg.topo.num_dcs)
               : sim::LatencyModel::uniform(cfg.topo.num_dcs, cfg.uniform_inter_dc_us,
                                            cfg.uniform_intra_dc_us);
  m.set_jitter(cfg.jitter);
  return m;
}

std::unique_ptr<runtime::Backend> build_backend(const DeploymentConfig& cfg,
                                                const cluster::Topology& topo) {
  if (cfg.runtime == runtime::Kind::kThreads) {
    runtime::ThreadBackend::Options opt;
    opt.workers = cfg.worker_threads != 0 ? cfg.worker_threads : topo.total_servers();
    opt.seed = cfg.seed;
    return std::make_unique<runtime::ThreadBackend>(opt);
  }
  if (cfg.runtime == runtime::Kind::kSockets) {
    PARIS_CHECK_MSG(cfg.socket.rank >= 0,
                    "socket deployments are built inside child processes only "
                    "(run_experiment spawns them)");
    runtime::SocketBackend::Options opt;
    opt.rank = static_cast<std::uint32_t>(cfg.socket.rank);
    opt.nprocs = cfg.socket.resolve_processes(cfg.topo.num_dcs);
    opt.base_port = cfg.socket.base_port;
    opt.seed = cfg.seed;
    opt.connect_timeout_ms = cfg.socket.connect_timeout_ms;
    opt.mesh_token = cfg.socket.mesh_token;
    opt.epoch = cfg.socket.epoch;
    opt.pump = cfg.socket.pump;
    opt.outbound_budget = cfg.socket.outbound_budget;
    opt.batch_io = cfg.socket.batch_io;
    if (cfg.worker_threads != 0) {
      opt.workers = cfg.worker_threads;
    } else {
      // One worker per LOCAL server node (dc % nprocs == rank owns the DC).
      std::uint32_t local_servers = 0;
      for (DcId dc = 0; dc < topo.num_dcs(); ++dc) {
        if (dc % opt.nprocs == opt.rank) {
          local_servers += static_cast<std::uint32_t>(topo.partitions_at(dc).size());
        }
      }
      opt.workers = local_servers != 0 ? local_servers : 1;
    }
    return std::make_unique<runtime::SocketBackend>(opt);
  }
  return std::make_unique<runtime::SimBackend>(cfg.seed, build_latency(cfg), cfg.codec);
}

std::unique_ptr<runtime::LatencyTransport> build_latency_tp(const DeploymentConfig& cfg,
                                                            runtime::Backend& be) {
  // The sim network models latency itself; decorating it would double-count.
  if (cfg.runtime == runtime::Kind::kSim ||
      cfg.latency_model == runtime::LatencyModelKind::kNone) {
    return nullptr;
  }
  auto model = build_latency(cfg);
  if (cfg.latency_model == runtime::LatencyModelKind::kMatrix) model.set_jitter(0);
  return std::make_unique<runtime::LatencyTransport>(be.transport(), be.exec(),
                                                     std::move(model), cfg.seed);
}

std::unique_ptr<runtime::WanTransport> build_wan_tp(const DeploymentConfig& cfg,
                                                    runtime::Backend& be,
                                                    runtime::Transport* below) {
  if (cfg.runtime == runtime::Kind::kSim || !cfg.wan.enabled()) return nullptr;
  runtime::WanConfig wan = cfg.wan;
  if (wan.seed == 0) wan.seed = cfg.seed;
  return std::make_unique<runtime::WanTransport>(
      below != nullptr ? *below : be.transport(), be.exec(), std::move(wan));
}

std::unique_ptr<runtime::PartitionTransport> build_partition_tp(const DeploymentConfig& cfg,
                                                                runtime::Backend& be,
                                                                runtime::Transport* below) {
  if (cfg.runtime == runtime::Kind::kSim || !cfg.partitions.enabled()) return nullptr;
  return std::make_unique<runtime::PartitionTransport>(
      below != nullptr ? *below : be.transport(), be.exec(), cfg.partitions);
}

std::unique_ptr<runtime::ChaosTransport> build_chaos_tp(const DeploymentConfig& cfg,
                                                        runtime::Backend& be,
                                                        runtime::Transport* below) {
  if (cfg.runtime == runtime::Kind::kSim || !cfg.chaos.enabled()) return nullptr;
  runtime::ChaosConfig chaos = cfg.chaos;
  if (chaos.seed == 0) chaos.seed = cfg.seed;
  return std::make_unique<runtime::ChaosTransport>(
      below != nullptr ? *below : be.transport(), be.exec(), chaos);
}

std::unique_ptr<runtime::FuzzTransport> build_fuzz_tp(const DeploymentConfig& cfg,
                                                      runtime::Backend& be,
                                                      runtime::Transport* below) {
  if (cfg.runtime == runtime::Kind::kSim || !cfg.fuzz.enabled()) return nullptr;
  runtime::FuzzConfig fuzz = cfg.fuzz;
  if (fuzz.seed == 0) fuzz.seed = cfg.seed;
  return std::make_unique<runtime::FuzzTransport>(
      below != nullptr ? *below : be.transport(), be.exec(), fuzz);
}

std::unique_ptr<runtime::ReliableTransport> build_reliable_tp(const DeploymentConfig& cfg,
                                                              runtime::Backend& be,
                                                              runtime::Transport* below) {
  if (cfg.runtime == runtime::Kind::kSim || !cfg.reliable) return nullptr;
  runtime::ReliableConfig rc = cfg.reliable_cfg;
  // Frames are stamped with the receiver's incarnation so post-respawn
  // retransmissions of the dead channel can never mingle with the
  // renumbered stream (threads/sim stay at epoch 0 throughout).
  if (auto* sb = dynamic_cast<runtime::SocketBackend*>(&be)) rc.self_epoch = sb->epoch();
  return std::make_unique<runtime::ReliableTransport>(
      below != nullptr ? *below : be.transport(), be.exec(), rc);
}

runtime::Transport* first_nonnull(std::initializer_list<runtime::Transport*> ts) {
  for (runtime::Transport* t : ts)
    if (t != nullptr) return t;
  return nullptr;
}

runtime::Transport& outermost(runtime::Backend& be, runtime::Transport* candidate) {
  return candidate != nullptr ? *candidate : be.transport();
}
}  // namespace

Deployment::Deployment(const DeploymentConfig& cfg, Tracer* tracer)
    : cfg_(cfg),
      topo_(cfg.topo),
      dir_(topo_),
      backend_(build_backend(cfg, topo_)),
      latency_tp_(build_latency_tp(cfg, *backend_)),
      wan_tp_(build_wan_tp(cfg, *backend_, latency_tp_.get())),
      partition_tp_(build_partition_tp(
          cfg, *backend_, first_nonnull({wan_tp_.get(), latency_tp_.get()}))),
      chaos_tp_(build_chaos_tp(
          cfg, *backend_,
          first_nonnull({partition_tp_.get(), wan_tp_.get(), latency_tp_.get()}))),
      fuzz_tp_(build_fuzz_tp(
          cfg, *backend_,
          first_nonnull(
              {chaos_tp_.get(), partition_tp_.get(), wan_tp_.get(), latency_tp_.get()}))),
      reliable_tp_(build_reliable_tp(
          cfg, *backend_,
          first_nonnull({fuzz_tp_.get(), chaos_tp_.get(), partition_tp_.get(),
                         wan_tp_.get(), latency_tp_.get()}))),
      rt_{backend_->exec(),
          outermost(*backend_,
                    first_nonnull({reliable_tp_.get(), fuzz_tp_.get(), chaos_tp_.get(),
                                   partition_tp_.get(), wan_tp_.get(), latency_tp_.get()})),
          topo_,
          dir_,
          cfg.cost,
          cfg.protocol,
          tracer} {
  // One server per (DC, partition) replica; registration order is
  // deterministic: DC-major, partition-minor.
  const auto service = [cost = rt_.cost](const wire::Message& m) {
    return cost.service_us(m);
  };
  for (DcId dc = 0; dc < topo_.num_dcs(); ++dc) {
    for (PartitionId p : topo_.partitions_at(dc)) {
      std::unique_ptr<ServerBase> server;
      if (cfg.system == System::kParis) {
        server = std::make_unique<ParisServer>(rt_, dc, p);
      } else {
        server = std::make_unique<BprServer>(rt_, dc, p);
      }
      const NodeId node = register_actor(server.get(), dc, service);
      server->attach(node, PhysClock::sample(backend_->rng(), cfg.protocol.ntp_error_us,
                                             cfg.protocol.drift_ppm));
      dir_.set_server(dc, p, node);
      servers_.push_back(std::move(server));
    }
  }
}

Deployment::~Deployment() {
  // Thread workers must be quiescent before servers/clients are destroyed.
  backend_->stop();
}

NodeId Deployment::register_actor(runtime::Actor* real, DcId dc, runtime::ServiceFn service,
                                  NodeId colocate_with) {
  // With reliable delivery on, the backend delivers to the interposing
  // endpoint (dedup + ack) instead of the protocol actor directly.
  runtime::Actor* actor = reliable_tp_ ? reliable_tp_->wrap(real) : real;
  const NodeId node = backend_->add_node(actor, dc, std::move(service), colocate_with);
  if (reliable_tp_) reliable_tp_->attach(actor, node);
  return node;
}

void Deployment::start() {
  PARIS_CHECK_MSG(!started_, "start() called twice");
  started_ = true;
  runtime::SocketBackend* sb = socket_backend();
  if (sb != nullptr) {
    for (auto& s : servers_)
      if (backend_->local(s->node())) s->set_incarnation(sb->epoch());
    wire_epoch_fencing(*sb);  // before the mesh comes up: no fired-early race
    if (sb->epoch() > 0) {
      arm_socket_recovery(*sb);
      return;  // local timers start per-server as each recovery completes
    }
  }
  Rng& phase_rng = backend_->rng();
  for (auto& s : servers_) s->start_timers(phase_rng);
}

void Deployment::wire_epoch_fencing(runtime::SocketBackend& sb) {
  sb.set_epoch_listener([this, &sb](std::uint32_t peer_rank, std::uint32_t epoch) {
    // The rank's previous incarnation is dead: its reliable channel state,
    // prepared-2PC entries it coordinated, and any un-replicated tail died
    // with it. Collect the server nodes it owns, then heal every LOCAL
    // server on its own worker (the listener fires on an io/accept thread).
    std::vector<NodeId> affected;
    for (const auto& s : servers_)
      if (sb.owner_of(s->dc()) == peer_rank) affected.push_back(s->node());
    if (affected.empty()) return;
    for (const auto& sp : servers_) {
      ServerBase* s = sp.get();
      if (!backend_->local(s->node())) continue;
      const NodeId self = s->node();
      exec().post(self, [this, s, self, affected, epoch] {
        // Channel reset FIRST: the fresh incarnation has empty dedup state,
        // so anything sent afterwards (including the catch-up request
        // below) must ride a renumbered channel stamped with its epoch.
        if (reliable_tp_ != nullptr) reliable_tp_->reset_peer_channels(self, affected, epoch);
        s->fence_lost_coordinators(affected);
        // Anti-entropy: versions only this survivor ever applied flow to
        // the respawned replica via its catch-up fan-out; asking it back
        // heals versions the survivor missed (transitively, through the
        // respawn's donor + peers). The respawn buffers the request while
        // still recovering and serves it on finish.
        for (const auto& o : servers_) {
          if (o->partition() != s->partition() || o->node() == self) continue;
          if (std::find(affected.begin(), affected.end(), o->node()) != affected.end())
            s->request_catchup(o->node());
        }
      });
    }
  });
}

void Deployment::arm_socket_recovery(runtime::SocketBackend& sb) {
  for (auto& sp : servers_) {
    ServerBase* s = sp.get();
    if (!backend_->local(s->node())) {
      s->start_timers(backend_->rng());  // remote: timers are dropped anyway
      continue;
    }
    // Surviving replicas of this partition live in DCs owned by OTHER
    // ranks (every DC with our residue died with the old incarnation).
    std::vector<NodeId> remotes;
    for (DcId d : topo_.replicas(s->partition()))
      if (sb.owner_of(d) != sb.rank()) remotes.push_back(dir_.server(d, s->partition()));
    // Timers start from the recovery-done callback on a worker thread; the
    // shared backend rng is not safe there, so derive a per-server phase rng.
    const std::uint64_t tseed =
        splitmix64(cfg_.seed ^ 0x5245'434f'5645'52ull ^ s->node());  // "RECOVER"
    if (remotes.empty()) {
      Rng phase_rng(tseed);
      s->start_timers(phase_rng);  // no donor anywhere: rejoin cold
      continue;
    }
    // Rotate the donor pick so parallel recoveries spread across replicas.
    const std::size_t pick = (s->dc() + s->partition()) % remotes.size();
    std::rotate(remotes.begin(), remotes.begin() + static_cast<std::ptrdiff_t>(pick),
                remotes.end());
    const NodeId donor = remotes.front();
    std::vector<NodeId> peers(remotes.begin() + 1, remotes.end());
    recovering_.fetch_add(1, std::memory_order_acq_rel);
    exec().post(s->node(), [this, s, donor, peers = std::move(peers), tseed] {
      s->start_recovery(donor, peers, [this, s, tseed] {
        Rng phase_rng(tseed);
        s->start_timers(phase_rng);
        recovering_.fetch_sub(1, std::memory_order_acq_rel);
      });
    });
  }
}

bool Deployment::wait_recovered(std::uint64_t timeout_ms) {
  if (recovering_.load(std::memory_order_acquire) == 0) return true;
  runtime::SocketBackend* sb = socket_backend();
  PARIS_CHECK_MSG(sb != nullptr, "recovery armed without a socket backend");
  sb->start();  // idempotent: recovery needs the mesh + workers live
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (recovering_.load(std::memory_order_acquire) != 0) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

Client& Deployment::add_client(DcId dc, PartitionId coordinator_partition) {
  PARIS_CHECK_MSG(topo_.dc_replicates(dc, coordinator_partition),
                  "client coordinator must be a local partition server");
  const NodeId coord = dir_.server(dc, coordinator_partition);
  const Client::Options opt =
      cfg_.system == System::kParis ? Client::paris_options() : Client::bpr_options();
  auto client = std::make_unique<Client>(rt_, dc, coord, opt);
  const NodeId node = register_actor(client.get(), dc, nullptr, /*colocate_with=*/coord);
  client->attach(node);
  clients_.push_back(std::move(client));
  return *clients_.back();
}

ServerBase& Deployment::server(DcId dc, PartitionId p) {
  const NodeId node = dir_.server(dc, p);
  for (auto& s : servers_)
    if (s->node() == node) return *s;
  PARIS_CHECK_MSG(false, "server not found");
  __builtin_unreachable();
}

ParisServer* Deployment::paris_server(DcId dc, PartitionId p) {
  return dynamic_cast<ParisServer*>(&server(dc, p));
}

BprServer* Deployment::bpr_server(DcId dc, PartitionId p) {
  return dynamic_cast<BprServer*>(&server(dc, p));
}

ServerBase::Stats Deployment::total_server_stats() const {
  // Accumulate in NodeId order: the sums commute, but a fixed order keeps
  // any future non-commutative aggregate (and debug prints) deterministic.
  std::vector<const ServerBase*> order;
  order.reserve(servers_.size());
  for (const auto& s : servers_) order.push_back(s.get());
  std::sort(order.begin(), order.end(),
            [](const ServerBase* a, const ServerBase* b) { return a->node() < b->node(); });

  ServerBase::Stats t;
  for (const ServerBase* s : order) {
    const auto& x = s->stats();
    t.txs_coordinated += x.txs_coordinated;
    t.read_only_txs += x.read_only_txs;
    t.slices_served += x.slices_served;
    t.cohort_prepares += x.cohort_prepares;
    t.applied_writes += x.applied_writes;
    t.replicate_batches_sent += x.replicate_batches_sent;
    t.heartbeats_sent += x.heartbeats_sent;
    t.gossip_msgs_sent += x.gossip_msgs_sent;
    t.reads_blocked += x.reads_blocked;
    t.blocked_time_us += x.blocked_time_us;
    t.snapshots_served += x.snapshots_served;
    t.catchups_served += x.catchups_served;
    t.recovery_buffered += x.recovery_buffered;
    t.orphan_commits += x.orphan_commits;
    t.orphan_prepare_resps += x.orphan_prepare_resps;
    t.prepared_fenced += x.prepared_fenced;
    t.sketch_reports_sent += x.sketch_reports_sent;
    t.keys_migrated += x.keys_migrated;
    t.migrate_parked += x.migrate_parked;
    t.migrate_chains_sent += x.migrate_chains_sent;
    t.migrate_chains_installed += x.migrate_chains_installed;
    // Placement scores are computed only on the controller; every other
    // server reports 0, so max (not sum) preserves the controller's value.
    t.replicate_factor_before_x1e6 =
        std::max(t.replicate_factor_before_x1e6, x.replicate_factor_before_x1e6);
    t.replicate_factor_after_x1e6 =
        std::max(t.replicate_factor_after_x1e6, x.replicate_factor_after_x1e6);
    t.load_rel_stddev_before_x1e6 =
        std::max(t.load_rel_stddev_before_x1e6, x.load_rel_stddev_before_x1e6);
    t.load_rel_stddev_after_x1e6 =
        std::max(t.load_rel_stddev_after_x1e6, x.load_rel_stddev_after_x1e6);
  }
  return t;
}

}  // namespace paris::proto
