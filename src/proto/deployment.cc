#include "proto/deployment.h"

#include <algorithm>
#include <chrono>
#include <initializer_list>
#include <mutex>
#include <thread>

#include "common/assert.h"
#include "common/rng.h"
#include "runtime/endpoint.h"
#include "runtime/sim_runtime.h"
#include "runtime/thread_runtime.h"

namespace paris::proto {

namespace {
/// The executor has no one-shot delayed post; a fire-once schedule entry is
/// a periodic timer with an absurd period plus an atomic fired flag.
constexpr std::uint64_t kFireOncePeriodUs = 3'600'000'000ull;  // 1h
/// How often a joining server polls peer view advertisements (sockets).
constexpr std::uint64_t kGatePollPeriodUs = 10'000;

/// Join-time catch-up gate (sockets): phase 2 of a joining server's state
/// transfer holds until every peer rank has advertised the join view — from
/// then on peers include the joiner in their replication fan-out, so the
/// per-source catch-up watermarks cover the cutover with no gap.
struct JoinGate {
  std::mutex mu;
  bool open = false;
  std::function<void()> resume;
};

/// The socket host list every layer derives endpoints from: the configured
/// --hosts list verbatim, or the back-compat loopback expansion of the
/// deprecated base-port scheme (the ONLY sanctioned port-arithmetic site).
std::vector<runtime::Endpoint> resolve_hosts(const DeploymentConfig& cfg) {
  const std::uint32_t nprocs = cfg.socket.resolve_processes(cfg.topo.num_dcs);
  return cfg.socket.hosts.empty()
             ? runtime::loopback_host_list(nprocs, cfg.socket.base_port)
             : cfg.socket.hosts;
}

std::unique_ptr<cluster::Membership> build_membership(const DeploymentConfig& cfg,
                                                      const cluster::Topology& topo) {
  if (!cfg.membership.enabled()) return nullptr;
  const bool sockets = cfg.runtime == runtime::Kind::kSockets;
  const std::uint32_t nprocs =
      sockets ? cfg.socket.resolve_processes(cfg.topo.num_dcs) : 0;
  std::vector<cluster::Member> members;
  if (sockets) {
    const auto hosts = resolve_hosts(cfg);
    for (std::uint32_t r = 0; r < hosts.size(); ++r)
      members.push_back({r, hosts[r], static_cast<std::uint32_t>(cfg.socket.epoch)});
  }
  // A schedule event names a process rank; it expands to every DC that rank
  // owns (sockets) or to DC `rank` directly (threads/sim), so each change
  // moves whole failure domains at once.
  std::vector<cluster::ViewChange> changes;
  for (const MembershipEvent& ev : cfg.membership.events) {
    cluster::ViewChange c;
    c.join = ev.join;
    c.at_us = ev.at_ms * 1000;
    if (sockets) {
      PARIS_CHECK_MSG(ev.rank < nprocs, "membership event names a rank outside the cluster");
      for (DcId d = 0; d < cfg.topo.num_dcs; ++d)
        if (d % nprocs == ev.rank) c.dcs.push_back(d);
    } else {
      PARIS_CHECK_MSG(ev.rank < cfg.topo.num_dcs,
                      "membership event names a DC outside the topology");
      c.dcs.push_back(static_cast<DcId>(ev.rank));
    }
    changes.push_back(std::move(c));
  }
  std::stable_sort(changes.begin(), changes.end(),
                   [](const cluster::ViewChange& a, const cluster::ViewChange& b) {
                     return a.at_us < b.at_us;
                   });
  return std::make_unique<cluster::Membership>(topo, std::move(members), std::move(changes));
}

sim::LatencyModel build_latency(const DeploymentConfig& cfg) {
  auto m = cfg.aws_latency
               ? sim::LatencyModel::aws(cfg.topo.num_dcs)
               : sim::LatencyModel::uniform(cfg.topo.num_dcs, cfg.uniform_inter_dc_us,
                                            cfg.uniform_intra_dc_us);
  m.set_jitter(cfg.jitter);
  return m;
}

std::unique_ptr<runtime::Backend> build_backend(const DeploymentConfig& cfg,
                                                const cluster::Topology& topo) {
  if (cfg.runtime == runtime::Kind::kThreads) {
    runtime::ThreadBackend::Options opt;
    opt.workers = cfg.worker_threads != 0 ? cfg.worker_threads : topo.total_servers();
    opt.seed = cfg.seed;
    return std::make_unique<runtime::ThreadBackend>(opt);
  }
  if (cfg.runtime == runtime::Kind::kSockets) {
    PARIS_CHECK_MSG(cfg.socket.rank >= 0,
                    "socket deployments are built inside child processes only "
                    "(run_experiment spawns them)");
    runtime::SocketBackend::Options opt;
    opt.rank = static_cast<std::uint32_t>(cfg.socket.rank);
    opt.nprocs = cfg.socket.resolve_processes(cfg.topo.num_dcs);
    opt.hosts = resolve_hosts(cfg);
    opt.seed = cfg.seed;
    opt.connect_timeout_ms = cfg.socket.connect_timeout_ms;
    opt.mesh_token = cfg.socket.mesh_token;
    opt.epoch = cfg.socket.epoch;
    opt.pump = cfg.socket.pump;
    opt.outbound_budget = cfg.socket.outbound_budget;
    opt.batch_io = cfg.socket.batch_io;
    if (cfg.worker_threads != 0) {
      opt.workers = cfg.worker_threads;
    } else {
      // One worker per LOCAL server node (dc % nprocs == rank owns the DC).
      std::uint32_t local_servers = 0;
      for (DcId dc = 0; dc < topo.num_dcs(); ++dc) {
        if (dc % opt.nprocs == opt.rank) {
          local_servers += static_cast<std::uint32_t>(topo.partitions_at(dc).size());
        }
      }
      opt.workers = local_servers != 0 ? local_servers : 1;
    }
    return std::make_unique<runtime::SocketBackend>(opt);
  }
  return std::make_unique<runtime::SimBackend>(cfg.seed, build_latency(cfg), cfg.codec);
}

std::unique_ptr<runtime::LatencyTransport> build_latency_tp(const DeploymentConfig& cfg,
                                                            runtime::Backend& be) {
  // The sim network models latency itself; decorating it would double-count.
  if (cfg.runtime == runtime::Kind::kSim ||
      cfg.latency_model == runtime::LatencyModelKind::kNone) {
    return nullptr;
  }
  auto model = build_latency(cfg);
  if (cfg.latency_model == runtime::LatencyModelKind::kMatrix) model.set_jitter(0);
  return std::make_unique<runtime::LatencyTransport>(be.transport(), be.exec(),
                                                     std::move(model), cfg.seed);
}

std::unique_ptr<runtime::WanTransport> build_wan_tp(const DeploymentConfig& cfg,
                                                    runtime::Backend& be,
                                                    runtime::Transport* below) {
  if (cfg.runtime == runtime::Kind::kSim || !cfg.wan.enabled()) return nullptr;
  runtime::WanConfig wan = cfg.wan;
  if (wan.seed == 0) wan.seed = cfg.seed;
  return std::make_unique<runtime::WanTransport>(
      below != nullptr ? *below : be.transport(), be.exec(), std::move(wan));
}

std::unique_ptr<runtime::PartitionTransport> build_partition_tp(const DeploymentConfig& cfg,
                                                                runtime::Backend& be,
                                                                runtime::Transport* below) {
  if (cfg.runtime == runtime::Kind::kSim || !cfg.partitions.enabled()) return nullptr;
  return std::make_unique<runtime::PartitionTransport>(
      below != nullptr ? *below : be.transport(), be.exec(), cfg.partitions);
}

std::unique_ptr<runtime::ChaosTransport> build_chaos_tp(const DeploymentConfig& cfg,
                                                        runtime::Backend& be,
                                                        runtime::Transport* below) {
  if (cfg.runtime == runtime::Kind::kSim || !cfg.chaos.enabled()) return nullptr;
  runtime::ChaosConfig chaos = cfg.chaos;
  if (chaos.seed == 0) chaos.seed = cfg.seed;
  return std::make_unique<runtime::ChaosTransport>(
      below != nullptr ? *below : be.transport(), be.exec(), chaos);
}

std::unique_ptr<runtime::FuzzTransport> build_fuzz_tp(const DeploymentConfig& cfg,
                                                      runtime::Backend& be,
                                                      runtime::Transport* below) {
  if (cfg.runtime == runtime::Kind::kSim || !cfg.fuzz.enabled()) return nullptr;
  runtime::FuzzConfig fuzz = cfg.fuzz;
  if (fuzz.seed == 0) fuzz.seed = cfg.seed;
  return std::make_unique<runtime::FuzzTransport>(
      below != nullptr ? *below : be.transport(), be.exec(), fuzz);
}

std::unique_ptr<runtime::ReliableTransport> build_reliable_tp(const DeploymentConfig& cfg,
                                                              runtime::Backend& be,
                                                              runtime::Transport* below) {
  if (cfg.runtime == runtime::Kind::kSim || !cfg.reliable) return nullptr;
  runtime::ReliableConfig rc = cfg.reliable_cfg;
  // Frames are stamped with the receiver's incarnation so post-respawn
  // retransmissions of the dead channel can never mingle with the
  // renumbered stream (threads/sim stay at epoch 0 throughout).
  if (auto* sb = dynamic_cast<runtime::SocketBackend*>(&be)) rc.self_epoch = sb->epoch();
  return std::make_unique<runtime::ReliableTransport>(
      below != nullptr ? *below : be.transport(), be.exec(), rc);
}

runtime::Transport* first_nonnull(std::initializer_list<runtime::Transport*> ts) {
  for (runtime::Transport* t : ts)
    if (t != nullptr) return t;
  return nullptr;
}

runtime::Transport& outermost(runtime::Backend& be, runtime::Transport* candidate) {
  return candidate != nullptr ? *candidate : be.transport();
}
}  // namespace

Deployment::Deployment(const DeploymentConfig& cfg, Tracer* tracer)
    : cfg_(cfg),
      topo_(cfg.topo),
      dir_(topo_),
      membership_(build_membership(cfg, topo_)),
      backend_(build_backend(cfg, topo_)),
      latency_tp_(build_latency_tp(cfg, *backend_)),
      wan_tp_(build_wan_tp(cfg, *backend_, latency_tp_.get())),
      partition_tp_(build_partition_tp(
          cfg, *backend_, first_nonnull({wan_tp_.get(), latency_tp_.get()}))),
      chaos_tp_(build_chaos_tp(
          cfg, *backend_,
          first_nonnull({partition_tp_.get(), wan_tp_.get(), latency_tp_.get()}))),
      fuzz_tp_(build_fuzz_tp(
          cfg, *backend_,
          first_nonnull(
              {chaos_tp_.get(), partition_tp_.get(), wan_tp_.get(), latency_tp_.get()}))),
      reliable_tp_(build_reliable_tp(
          cfg, *backend_,
          first_nonnull({fuzz_tp_.get(), chaos_tp_.get(), partition_tp_.get(),
                         wan_tp_.get(), latency_tp_.get()}))),
      rt_{backend_->exec(),
          outermost(*backend_,
                    first_nonnull({reliable_tp_.get(), fuzz_tp_.get(), chaos_tp_.get(),
                                   partition_tp_.get(), wan_tp_.get(), latency_tp_.get()})),
          topo_,
          dir_,
          cfg.cost,
          cfg.protocol,
          tracer,
          membership_.get()} {
  // One server per (DC, partition) replica; registration order is
  // deterministic: DC-major, partition-minor.
  const auto service = [cost = rt_.cost](const wire::Message& m) {
    return cost.service_us(m);
  };
  for (DcId dc = 0; dc < topo_.num_dcs(); ++dc) {
    for (PartitionId p : topo_.partitions_at(dc)) {
      std::unique_ptr<ServerBase> server;
      if (cfg.system == System::kParis) {
        server = std::make_unique<ParisServer>(rt_, dc, p);
      } else {
        server = std::make_unique<BprServer>(rt_, dc, p);
      }
      const NodeId node = register_actor(server.get(), dc, service);
      server->attach(node, PhysClock::sample(backend_->rng(), cfg.protocol.ntp_error_us,
                                             cfg.protocol.drift_ppm));
      dir_.set_server(dc, p, node);
      servers_.push_back(std::move(server));
    }
  }
}

Deployment::~Deployment() {
  // Thread workers must be quiescent before servers/clients are destroyed.
  backend_->stop();
}

NodeId Deployment::register_actor(runtime::Actor* real, DcId dc, runtime::ServiceFn service,
                                  NodeId colocate_with) {
  // With reliable delivery on, the backend delivers to the interposing
  // endpoint (dedup + ack) instead of the protocol actor directly.
  runtime::Actor* actor = reliable_tp_ ? reliable_tp_->wrap(real) : real;
  const NodeId node = backend_->add_node(actor, dc, std::move(service), colocate_with);
  if (reliable_tp_) reliable_tp_->attach(actor, node);
  return node;
}

void Deployment::start() {
  PARIS_CHECK_MSG(!started_, "start() called twice");
  started_ = true;
  runtime::SocketBackend* sb = socket_backend();
  if (sb != nullptr) {
    for (auto& s : servers_)
      if (backend_->local(s->node())) s->set_incarnation(sb->epoch());
    wire_epoch_fencing(*sb);  // before the mesh comes up: no fired-early race
    if (sb->epoch() > 0) {
      PARIS_CHECK_MSG(membership_ == nullptr,
                      "elastic membership combined with a supervised respawn is not "
                      "supported (the scenario generator keeps them exclusive)");
      arm_socket_recovery(*sb);
      return;  // local timers start per-server as each recovery completes
    }
  }
  Rng& phase_rng = backend_->rng();
  if (membership_ != nullptr) {
    arm_membership(phase_rng);
    return;  // joining DCs' timers start from their join-done callbacks
  }
  for (auto& s : servers_) s->start_timers(phase_rng);
}

void Deployment::arm_membership(Rng& phase_rng) {
  cluster::Membership& mem = *membership_;
  runtime::SocketBackend* sb = socket_backend();

  // Servers of later-joining DCs park from t = 0: everything that arrives
  // before their join (replicate/heartbeat tails routed by a peer that
  // installed the view first, early client reads) is buffered and replayed
  // after the state transfer, so nothing is double-counted into the version
  // vector. Everyone else starts normally.
  for (auto& sp : servers_) {
    ServerBase* s = sp.get();
    if (!backend_->local(s->node())) {
      s->start_timers(phase_rng);  // remote: timers are dropped anyway
      continue;
    }
    if (mem.initially_active(s->dc())) {
      s->start_timers(phase_rng);
    } else {
      s->park_for_join();
    }
  }

  // Beacon-driven installs (sockets): a peer advertising view V pulls us to
  // V within one beacon period even if our own schedule timer is late; the
  // echo advertisement confirms the install to the joiner's catch-up gate.
  if (sb != nullptr) {
    sb->set_view_listener([this, sb](std::uint32_t /*rank*/, std::uint32_t view) {
      install_view_local(view);
      sb->advertise_view(view);
    });
  }

  // One fire-once timer per scheduled change, hosted on the first local
  // server's context. Every rank runs the same schedule, so views converge
  // even without beacons; beacons just tighten the window.
  memb_timer_node_ = kInvalidNode;
  for (auto& sp : servers_)
    if (backend_->local(sp->node())) {
      memb_timer_node_ = sp->node();
      break;
    }
  PARIS_CHECK_MSG(memb_timer_node_ != kInvalidNode,
                  "membership schedule with no local servers");

  for (std::uint32_t i = 0; i < mem.changes().size(); ++i) {
    const cluster::ViewChange& c = mem.changes()[i];
    const std::uint32_t view_id = i + 1;
    std::vector<DcId> local_joins;
    if (c.join)
      for (DcId d : c.dcs)
        if (hosts_dc(d)) local_joins.push_back(d);
    sched_fired_.push_back(std::make_unique<std::atomic<bool>>(false));
    std::atomic<bool>* fired = sched_fired_.back().get();
    sched_timers_.push_back(exec().every(
        memb_timer_node_, kFireOncePeriodUs, std::max<std::uint64_t>(c.at_us, 1),
        [this, view_id, local_joins, fired] {
          if (fired->exchange(true, std::memory_order_acq_rel)) return;
          install_view_local(view_id);
          if (runtime::SocketBackend* b = socket_backend()) b->advertise_view(view_id);
          for (DcId d : local_joins) begin_join(d, view_id);
        }));
  }
}

bool Deployment::hosts_dc(DcId d) const {
  if (cfg_.runtime != runtime::Kind::kSockets) return true;
  const std::uint32_t nprocs = cfg_.socket.resolve_processes(cfg_.topo.num_dcs);
  return d % nprocs == static_cast<std::uint32_t>(cfg_.socket.rank);
}

void Deployment::install_view_local(std::uint32_t view_id) {
  if (membership_ != nullptr) membership_->install(view_id);
}

void Deployment::begin_join(DcId dc, std::uint32_t view_id) {
  runtime::SocketBackend* sb = socket_backend();
  // Donors come from the replicas active in the PREVIOUS view (the joiner is
  // excluded by construction; view validation guarantees at least one).
  const cluster::MembershipView& prev = membership_->view_at(view_id - 1);
  for (auto& sp : servers_) {
    ServerBase* s = sp.get();
    if (s->dc() != dc || !backend_->local(s->node())) continue;
    std::vector<NodeId> remotes;
    for (DcId d : prev.replica_sets[s->partition()])
      remotes.push_back(dir_.server(d, s->partition()));
    PARIS_CHECK_MSG(!remotes.empty(), "join with no active donor replica");
    // Rotate the donor pick so parallel joins spread across replicas.
    const std::size_t pick = (s->dc() + s->partition()) % remotes.size();
    std::rotate(remotes.begin(), remotes.begin() + static_cast<std::ptrdiff_t>(pick),
                remotes.end());
    const NodeId donor = remotes.front();
    std::vector<NodeId> peers(remotes.begin() + 1, remotes.end());
    const NodeId self = s->node();
    if (sb != nullptr) {
      auto gate = std::make_shared<JoinGate>();
      s->set_catchup_gate([this, self, gate](std::function<void()> resume) {
        std::lock_guard<std::mutex> lk(gate->mu);
        if (gate->open) {
          exec().post(self, std::move(resume));
          return;
        }
        gate->resume = std::move(resume);
      });
      // The poller lives on memb_timer_node_ — the actor whose worker is
      // running this very callback, the only context allowed to create
      // timers post-start. It reads peer-view atomics and posts the resume
      // cross-thread, both safe from here.
      const std::uint32_t nprocs = cfg_.socket.resolve_processes(cfg_.topo.num_dcs);
      sched_timers_.push_back(exec().every(
          memb_timer_node_, kGatePollPeriodUs, kGatePollPeriodUs,
          [this, sb, nprocs, view_id, self, gate] {
            for (std::uint32_t r = 0; r < nprocs; ++r)
              if (r != sb->rank() && sb->peer_view(r) < view_id) return;
            std::function<void()> resume;
            {
              std::lock_guard<std::mutex> lk(gate->mu);
              if (gate->open) return;
              gate->open = true;
              resume = std::move(gate->resume);
            }
            if (resume) exec().post(self, std::move(resume));
          }));
    }
    // Timers start from the join-done callback on a worker thread; derive a
    // per-server phase rng (the shared backend rng is not safe there).
    const std::uint64_t tseed = splitmix64(cfg_.seed ^ 0x4a4f'494eull ^ s->node());  // "JOIN"
    recovering_.fetch_add(1, std::memory_order_acq_rel);
    exec().post(self, [this, s, donor, peers = std::move(peers), tseed] {
      s->start_recovery(donor, peers, [this, s, tseed] {
        Rng phase_rng(tseed);
        s->start_timers(phase_rng);
        recovering_.fetch_sub(1, std::memory_order_acq_rel);
      });
    });
  }
}

void Deployment::wire_epoch_fencing(runtime::SocketBackend& sb) {
  sb.set_epoch_listener([this, &sb](std::uint32_t peer_rank, std::uint32_t epoch) {
    // The rank's previous incarnation is dead: its reliable channel state,
    // prepared-2PC entries it coordinated, and any un-replicated tail died
    // with it. Collect the server nodes it owns, then heal every LOCAL
    // server on its own worker (the listener fires on an io/accept thread).
    std::vector<NodeId> affected;
    for (const auto& s : servers_)
      if (sb.owner_of(s->dc()) == peer_rank) affected.push_back(s->node());
    if (affected.empty()) return;
    for (const auto& sp : servers_) {
      ServerBase* s = sp.get();
      if (!backend_->local(s->node())) continue;
      const NodeId self = s->node();
      exec().post(self, [this, s, self, affected, epoch] {
        // Channel reset FIRST: the fresh incarnation has empty dedup state,
        // so anything sent afterwards (including the catch-up request
        // below) must ride a renumbered channel stamped with its epoch.
        if (reliable_tp_ != nullptr) reliable_tp_->reset_peer_channels(self, affected, epoch);
        s->fence_lost_coordinators(affected);
        // Anti-entropy: versions only this survivor ever applied flow to
        // the respawned replica via its catch-up fan-out; asking it back
        // heals versions the survivor missed (transitively, through the
        // respawn's donor + peers). The respawn buffers the request while
        // still recovering and serves it on finish.
        for (const auto& o : servers_) {
          if (o->partition() != s->partition() || o->node() == self) continue;
          if (std::find(affected.begin(), affected.end(), o->node()) != affected.end())
            s->request_catchup(o->node());
        }
      });
    }
  });
}

void Deployment::arm_socket_recovery(runtime::SocketBackend& sb) {
  for (auto& sp : servers_) {
    ServerBase* s = sp.get();
    if (!backend_->local(s->node())) {
      s->start_timers(backend_->rng());  // remote: timers are dropped anyway
      continue;
    }
    // Surviving replicas of this partition live in DCs owned by OTHER
    // ranks (every DC with our residue died with the old incarnation).
    std::vector<NodeId> remotes;
    for (DcId d : topo_.replicas(s->partition()))
      if (sb.owner_of(d) != sb.rank()) remotes.push_back(dir_.server(d, s->partition()));
    // Timers start from the recovery-done callback on a worker thread; the
    // shared backend rng is not safe there, so derive a per-server phase rng.
    const std::uint64_t tseed =
        splitmix64(cfg_.seed ^ 0x5245'434f'5645'52ull ^ s->node());  // "RECOVER"
    if (remotes.empty()) {
      Rng phase_rng(tseed);
      s->start_timers(phase_rng);  // no donor anywhere: rejoin cold
      continue;
    }
    // Rotate the donor pick so parallel recoveries spread across replicas.
    const std::size_t pick = (s->dc() + s->partition()) % remotes.size();
    std::rotate(remotes.begin(), remotes.begin() + static_cast<std::ptrdiff_t>(pick),
                remotes.end());
    const NodeId donor = remotes.front();
    std::vector<NodeId> peers(remotes.begin() + 1, remotes.end());
    recovering_.fetch_add(1, std::memory_order_acq_rel);
    exec().post(s->node(), [this, s, donor, peers = std::move(peers), tseed] {
      s->start_recovery(donor, peers, [this, s, tseed] {
        Rng phase_rng(tseed);
        s->start_timers(phase_rng);
        recovering_.fetch_sub(1, std::memory_order_acq_rel);
      });
    });
  }
}

bool Deployment::wait_recovered(std::uint64_t timeout_ms) {
  if (recovering_.load(std::memory_order_acquire) == 0) return true;
  runtime::SocketBackend* sb = socket_backend();
  PARIS_CHECK_MSG(sb != nullptr, "recovery armed without a socket backend");
  sb->start();  // idempotent: recovery needs the mesh + workers live
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (recovering_.load(std::memory_order_acquire) != 0) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

Client& Deployment::add_client(DcId dc, PartitionId coordinator_partition) {
  PARIS_CHECK_MSG(topo_.dc_replicates(dc, coordinator_partition),
                  "client coordinator must be a local partition server");
  const NodeId coord = dir_.server(dc, coordinator_partition);
  const Client::Options opt =
      cfg_.system == System::kParis ? Client::paris_options() : Client::bpr_options();
  auto client = std::make_unique<Client>(rt_, dc, coord, opt);
  const NodeId node = register_actor(client.get(), dc, nullptr, /*colocate_with=*/coord);
  client->attach(node);
  clients_.push_back(std::move(client));
  return *clients_.back();
}

ServerBase& Deployment::server(DcId dc, PartitionId p) {
  const NodeId node = dir_.server(dc, p);
  for (auto& s : servers_)
    if (s->node() == node) return *s;
  PARIS_CHECK_MSG(false, "server not found");
  __builtin_unreachable();
}

ParisServer* Deployment::paris_server(DcId dc, PartitionId p) {
  return dynamic_cast<ParisServer*>(&server(dc, p));
}

BprServer* Deployment::bpr_server(DcId dc, PartitionId p) {
  return dynamic_cast<BprServer*>(&server(dc, p));
}

ServerBase::Stats Deployment::total_server_stats() const {
  // Accumulate in NodeId order: the sums commute, but a fixed order keeps
  // any future non-commutative aggregate (and debug prints) deterministic.
  std::vector<const ServerBase*> order;
  order.reserve(servers_.size());
  for (const auto& s : servers_) order.push_back(s.get());
  std::sort(order.begin(), order.end(),
            [](const ServerBase* a, const ServerBase* b) { return a->node() < b->node(); });

  ServerBase::Stats t;
  for (const ServerBase* s : order) {
    const auto& x = s->stats();
    t.txs_coordinated += x.txs_coordinated;
    t.read_only_txs += x.read_only_txs;
    t.slices_served += x.slices_served;
    t.cohort_prepares += x.cohort_prepares;
    t.applied_writes += x.applied_writes;
    t.replicate_batches_sent += x.replicate_batches_sent;
    t.heartbeats_sent += x.heartbeats_sent;
    t.gossip_msgs_sent += x.gossip_msgs_sent;
    t.reads_blocked += x.reads_blocked;
    t.blocked_time_us += x.blocked_time_us;
    t.snapshots_served += x.snapshots_served;
    t.catchups_served += x.catchups_served;
    t.recovery_buffered += x.recovery_buffered;
    t.orphan_commits += x.orphan_commits;
    t.orphan_prepare_resps += x.orphan_prepare_resps;
    t.prepared_fenced += x.prepared_fenced;
    t.sketch_reports_sent += x.sketch_reports_sent;
    t.keys_migrated += x.keys_migrated;
    t.migrate_parked += x.migrate_parked;
    t.migrate_chains_sent += x.migrate_chains_sent;
    t.migrate_chains_installed += x.migrate_chains_installed;
    // Placement scores are computed only on the controller; every other
    // server reports 0, so max (not sum) preserves the controller's value.
    t.replicate_factor_before_x1e6 =
        std::max(t.replicate_factor_before_x1e6, x.replicate_factor_before_x1e6);
    t.replicate_factor_after_x1e6 =
        std::max(t.replicate_factor_after_x1e6, x.replicate_factor_after_x1e6);
    t.load_rel_stddev_before_x1e6 =
        std::max(t.load_rel_stddev_before_x1e6, x.load_rel_stddev_before_x1e6);
    t.load_rel_stddev_after_x1e6 =
        std::max(t.load_rel_stddev_after_x1e6, x.load_rel_stddev_after_x1e6);
  }
  return t;
}

}  // namespace paris::proto
