#pragma once
// Protocol configuration and the CPU cost model.
//
// The cost model is the calibration layer between the simulator and the
// paper's c5.xlarge testbed: each message type charges the receiving server
// a CPU service time, and servers process messages serially. Absolute
// numbers are not meant to match the paper; the knees, crossovers and ratios
// of the evaluation figures come out of this model (DESIGN.md §6).

#include <cstdint>

#include "sim/time.h"
#include "wire/messages.h"

namespace paris::proto {

struct CostModel {
  // Coordinator-side message handling.
  sim::SimTime start_us = 4;
  sim::SimTime client_read_base_us = 6;
  sim::SimTime client_read_per_key_us = 1;
  sim::SimTime slice_resp_per_item_us = 1;
  sim::SimTime client_commit_base_us = 8;
  sim::SimTime client_commit_per_key_us = 1;
  sim::SimTime prepare_resp_us = 3;
  sim::SimTime tx_end_us = 1;

  // Cohort-side.
  sim::SimTime read_slice_base_us = 10;
  sim::SimTime read_slice_per_key_us = 4;
  sim::SimTime prepare_base_us = 15;
  sim::SimTime prepare_per_key_us = 2;
  sim::SimTime commit2pc_us = 5;

  // Replication & stabilization.
  sim::SimTime replicate_base_us = 3;
  sim::SimTime replicate_per_tx_us = 2;
  sim::SimTime replicate_per_write_us = 2;
  sim::SimTime heartbeat_us = 1;
  sim::SimTime gossip_us = 2;

  // Background work charged by timers.
  sim::SimTime apply_tick_us = 2;
  sim::SimTime apply_per_write_us = 2;

  // BPR-only: cost of parking and waking a blocked read. The paper
  // attributes BPR's throughput loss to exactly this block/unblock overhead
  // plus the extra threads needed to cover blocked time (§V-B).
  sim::SimTime block_enqueue_us = 2;
  sim::SimTime unblock_us = 2;

  /// CPU cost of processing message m at a server.
  sim::SimTime service_us(const wire::Message& m) const;
};

struct ProtocolConfig {
  sim::SimTime delta_r_us = 1000;       ///< apply/replicate cycle (Alg. 4)
  sim::SimTime delta_g_us = 5000;       ///< intra-DC gossip period (paper: 5ms)
  sim::SimTime delta_u_us = 5000;       ///< UST computation period (paper: 5ms)
  sim::SimTime gc_interval_us = 50'000; ///< storage GC cadence
  std::uint32_t tree_fanout = 2;        ///< stabilization tree arity
  std::int64_t ntp_error_us = 500;      ///< max physical clock offset
  double drift_ppm = 50;                ///< max physical clock drift
  /// BPR has no UST to bound active snapshots, so its GC keeps a fixed
  /// retention window behind the locally-installed snapshot.
  sim::SimTime bpr_gc_retention_us = 2'000'000;
  /// Coordinator contexts of transactions that never finished (crashed
  /// clients) are reaped in the background after this timeout (§III-C
  /// "client failures are transparent to the system").
  sim::SimTime tx_context_timeout_us = 10'000'000;

  // --- Workload-aware placement (DESIGN §14) ---
  /// 0 = hash baseline (static Topology::partition_of), 1 = workload-aware:
  /// servers sketch per-key access, a controller migrates hot keys.
  /// (placement::Policy; stored as an int so config.h stays wire-layer-free.)
  std::uint8_t placement_policy = 0;
  /// Space-Saving sketch capacity per server.
  std::uint32_t sketch_capacity = 256;
  /// How often servers ship their sketch to the controller (0 = never).
  sim::SimTime sketch_report_period_us = 200'000;
  /// Workload-aware policy: migrate this many of the hottest keys...
  std::uint32_t migrate_top_k = 0;
  /// ...starting at this run time (0 = never trigger migration).
  sim::SimTime migrate_at_us = 0;
  /// Fault injection with teeth: src replicas ship EMPTY version chains, so
  /// post-migration reads are deterministically stale and the exactness
  /// checker must go red. Proves the migration tests can fail.
  bool migrate_fault_skip_copy = false;
};

}  // namespace paris::proto
