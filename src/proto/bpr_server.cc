#include "proto/bpr_server.h"

#include <algorithm>

namespace paris::proto {

using namespace wire;

Timestamp BprServer::assign_snapshot(Timestamp client_seen) {
  // Freshest snapshot the coordinator can vouch for: its clock (via the
  // HLC, which is always >= the physical clock) joined with the client's
  // highest observed snapshot (which includes its last commit time).
  const Timestamp now = hlc_.observe(clock_us(), kTsZero);
  return std::max(client_seen, now);
}

void BprServer::handle_read_slice(NodeId from, const ReadSliceReq& req) {
  if (min_vv() >= req.snapshot) {
    serve_slice(from, req);
    return;
  }
  // Block until all transactions (local and remote) with timestamp <= the
  // snapshot have been applied here. The enqueue/unblock CPU charges model
  // the synchronization overhead the paper attributes BPR's throughput
  // loss to (§V-B).
  rt_.net.charge_cpu(self_, rt_.cost.block_enqueue_us);
  ++stats_.reads_blocked;
  blocked_.emplace(req.snapshot, BlockedRead{from, req, rt_.exec.now_us()});
}

void BprServer::on_vv_advanced() {
  const Timestamp lst = min_vv();
  while (!blocked_.empty() && blocked_.begin()->first <= lst) {
    BlockedRead br = std::move(blocked_.begin()->second);
    blocked_.erase(blocked_.begin());
    rt_.net.charge_cpu(self_, rt_.cost.unblock_us);
    const sim::SimTime waited = rt_.exec.now_us() - br.since;
    stats_.blocked_time_us += waited;
    if (rt_.tracer) rt_.tracer->on_read_blocked(dc_, partition_, waited);
    serve_slice(br.from, br.req);
  }
}

Timestamp BprServer::propose_ts(const PrepareReq& /*req*/) {
  // The HLC was ticked past ht = max(snapshot, hwt) in handle_prepare, so
  // its value already reflects causality.
  return hlc_.value();
}

Timestamp BprServer::gc_watermark() const {
  // BPR has no aggregated oldest-active snapshot; retain a fixed window
  // behind the locally installed snapshot (DESIGN.md §4).
  const Timestamp lst = min_vv();
  const std::uint64_t margin = Timestamp::from_physical(rt_.cfg.bpr_gc_retention_us).raw;
  return lst.raw > margin ? Timestamp{lst.raw - margin} : kTsZero;
}

void BprServer::note_applied(TxId tx, Timestamp ct) {
  // In BPR an applied version is immediately readable by a fresh-enough
  // snapshot: visibility == apply.
  if (rt_.tracer != nullptr && rt_.tracer->want_visibility(tx))
    rt_.tracer->on_visible(dc_, partition_, tx, ct, rt_.exec.now_us());
}

}  // namespace paris::proto
