#include "proto/server_base.h"

#include <algorithm>

#include "common/assert.h"

namespace paris::proto {

using namespace wire;

// ---------------------------------------------------------------------------
// Cost model.
// ---------------------------------------------------------------------------

sim::SimTime CostModel::service_us(const Message& m) const {
  switch (m.type()) {
    case MsgType::kClientStartReq:
      return start_us;
    case MsgType::kClientReadReq: {
      const auto& r = static_cast<const ClientReadReq&>(m);
      return client_read_base_us + client_read_per_key_us * r.keys.size();
    }
    case MsgType::kReadSliceReq: {
      const auto& r = static_cast<const ReadSliceReq&>(m);
      return read_slice_base_us + read_slice_per_key_us * r.keys.size();
    }
    case MsgType::kReadSliceResp: {
      const auto& r = static_cast<const ReadSliceResp&>(m);
      return slice_resp_per_item_us * r.items.size();
    }
    case MsgType::kClientCommitReq: {
      const auto& r = static_cast<const ClientCommitReq&>(m);
      return client_commit_base_us + client_commit_per_key_us * r.writes.size();
    }
    case MsgType::kPrepareReq: {
      const auto& r = static_cast<const PrepareReq&>(m);
      return prepare_base_us + prepare_per_key_us * r.writes.size();
    }
    case MsgType::kPrepareResp:
      return prepare_resp_us;
    case MsgType::kCommit2pc:
      return commit2pc_us;
    case MsgType::kReplicateBatch: {
      const auto& r = static_cast<const ReplicateBatch&>(m);
      sim::SimTime t = replicate_base_us;
      for (const auto& g : r.groups) {
        t += replicate_per_tx_us * g.txs.size();
        for (const auto& tx : g.txs) t += replicate_per_write_us * tx.writes.size();
      }
      return t;
    }
    case MsgType::kHeartbeat:
      return heartbeat_us;
    case MsgType::kGossipUp:
    case MsgType::kGossipRoot:
    case MsgType::kUstDown:
      return gossip_us;
    case MsgType::kTxEnd:
      return tx_end_us;
    // Client-bound replies cost nothing at a server.
    case MsgType::kClientStartResp:
    case MsgType::kClientReadResp:
    case MsgType::kClientCommitResp:
      return 0;
    // Transport-layer framing (threads-only reliable delivery) never reaches
    // the sim cost model.
    case MsgType::kReliableFrame:
    case MsgType::kReliableAck:
      return 0;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Construction / registration.
// ---------------------------------------------------------------------------

ServerBase::ServerBase(Runtime& rt, DcId dc, PartitionId partition)
    : rt_(rt), dc_(dc), partition_(partition) {
  replica_idx_ = rt_.topo.replica_idx(dc, partition);
  PARIS_CHECK_MSG(replica_idx_ != kInvalidReplica, "server placed at a DC not replicating it");
  vv_.assign(rt_.topo.replication(), kTsZero);
}

void ServerBase::attach(NodeId self, PhysClock clock) {
  self_ = self;
  clock_ = clock;
}

void ServerBase::start_timers(Rng& phase_rng) {
  PARIS_CHECK_MSG(self_ != kInvalidNode, "attach() must precede start_timers()");
  const auto& cfg = rt_.cfg;
  apply_timer_ = rt_.exec.every(self_, cfg.delta_r_us, phase_rng.next_below(cfg.delta_r_us),
                                [this] { apply_tick(); });
  gc_timer_ = rt_.exec.every(self_, cfg.gc_interval_us, phase_rng.next_below(cfg.gc_interval_us),
                             [this] { gc_tick(); });
  ctx_reaper_timer_ = rt_.exec.every(self_, cfg.tx_context_timeout_us / 2,
                                     phase_rng.next_below(cfg.tx_context_timeout_us / 2),
                                     [this] { reap_stale_contexts(); });
}

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

void ServerBase::on_message(NodeId from, const Message& m) {
  switch (m.type()) {
    case MsgType::kClientStartReq:
      return handle_start(from, static_cast<const ClientStartReq&>(m));
    case MsgType::kClientReadReq:
      return handle_client_read(from, static_cast<const ClientReadReq&>(m));
    case MsgType::kReadSliceReq:
      return handle_read_slice(from, static_cast<const ReadSliceReq&>(m));
    case MsgType::kReadSliceResp:
      return handle_slice_resp(from, static_cast<const ReadSliceResp&>(m));
    case MsgType::kClientCommitReq:
      return handle_client_commit(from, static_cast<const ClientCommitReq&>(m));
    case MsgType::kPrepareReq:
      return handle_prepare(from, static_cast<const PrepareReq&>(m));
    case MsgType::kPrepareResp:
      return handle_prepare_resp(from, static_cast<const PrepareResp&>(m));
    case MsgType::kCommit2pc:
      return handle_commit2pc(from, static_cast<const Commit2pc&>(m));
    case MsgType::kReplicateBatch:
      return handle_replicate(from, static_cast<const ReplicateBatch&>(m));
    case MsgType::kHeartbeat:
      return handle_heartbeat(from, static_cast<const Heartbeat&>(m));
    case MsgType::kTxEnd:
      return handle_tx_end(from, static_cast<const TxEnd&>(m));
    case MsgType::kGossipUp:
      return handle_gossip_up(from, static_cast<const GossipUp&>(m));
    case MsgType::kGossipRoot:
      return handle_gossip_root(from, static_cast<const GossipRoot&>(m));
    case MsgType::kUstDown:
      return handle_ust_down(from, static_cast<const UstDown&>(m));
    case MsgType::kClientStartResp:
    case MsgType::kClientReadResp:
    case MsgType::kClientCommitResp:
      PARIS_CHECK_MSG(false, "client-bound message delivered to a server");
    case MsgType::kReliableFrame:
    case MsgType::kReliableAck:
      PARIS_CHECK_MSG(false, "transport framing leaked past the reliable endpoint");
  }
}

// ---------------------------------------------------------------------------
// Coordinator role (Alg. 2).
// ---------------------------------------------------------------------------

void ServerBase::handle_start(NodeId from, const ClientStartReq& m) {
  const TxId tx = TxId::make(self_, next_tx_seq_++);
  const Timestamp snapshot = assign_snapshot(m.ust_c);
  tx_.emplace(tx, TxCtx{snapshot, from, {}, {}, false, rt_.exec.now_us()});
  active_snapshots_.insert(snapshot);

  auto resp = make_msg<ClientStartResp>();
  resp->tx = tx;
  resp->snapshot = snapshot;
  send(from, std::move(resp));
}

NodeId ServerBase::route_to_partition(PartitionId p) const {
  return rt_.dir.server(rt_.topo.target_dc(dc_, p), p);
}

void ServerBase::handle_client_read(NodeId from, const ClientReadReq& m) {
  auto it = tx_.find(m.tx);
  PARIS_CHECK_MSG(it != tx_.end(), "read for unknown transaction");
  TxCtx& ctx = it->second;
  PARIS_CHECK_MSG(ctx.read.outstanding == 0, "client issued overlapping reads");
  PARIS_CHECK(!m.keys.empty());
  (void)from;

  // Group keys by serving node (local replica if present, else the DC's
  // preferred remote replica; Alg. 2 lines 9-12) in the reusable scratch.
  fan_nodes_.clear();
  for (Key k : m.keys)
    fan_keys_[fan_group(route_to_partition(rt_.topo.partition_of(k)))].push_back(k);

  ctx.read.outstanding = static_cast<std::uint32_t>(fan_nodes_.size());
  ctx.read.items.clear();
  for (std::size_t i = 0; i < fan_nodes_.size(); ++i) {
    auto req = make_msg<ReadSliceReq>();
    req->tx = m.tx;
    req->snapshot = ctx.snapshot;
    req->mode = m.mode;
    req->keys.assign(fan_keys_[i].begin(), fan_keys_[i].end());
    send(fan_nodes_[i], std::move(req));
  }
}

/// Index of `node` in the current fan-out, adding (and clearing) its group
/// lazily. Linear scan: a transaction touches a handful of partitions.
std::size_t ServerBase::fan_group(NodeId node) {
  for (std::size_t i = 0; i < fan_nodes_.size(); ++i)
    if (fan_nodes_[i] == node) return i;
  fan_nodes_.push_back(node);
  const std::size_t gi = fan_nodes_.size() - 1;
  if (fan_keys_.size() <= gi) fan_keys_.emplace_back();
  if (fan_writes_.size() <= gi) fan_writes_.emplace_back();
  fan_keys_[gi].clear();
  fan_writes_[gi].clear();
  return gi;
}

void ServerBase::handle_slice_resp(NodeId /*from*/, const ReadSliceResp& m) {
  auto it = tx_.find(m.tx);
  if (it == tx_.end()) return;  // transaction already ended
  TxCtx& ctx = it->second;
  PARIS_DCHECK(ctx.read.outstanding > 0);
  ctx.read.items.insert(ctx.read.items.end(), m.items.begin(), m.items.end());
  if (--ctx.read.outstanding > 0) return;

  auto resp = make_msg<ClientReadResp>();
  resp->tx = m.tx;
  // Copy, don't move: a move-assign would free the pooled vector's warmed
  // buffer and defeat the pool's capacity reuse.
  resp->items.assign(ctx.read.items.begin(), ctx.read.items.end());
  ctx.read.items.clear();
  send(ctx.client, std::move(resp));
}

void ServerBase::handle_client_commit(NodeId from, const ClientCommitReq& m) {
  auto it = tx_.find(m.tx);
  PARIS_CHECK_MSG(it != tx_.end(), "commit for unknown transaction");
  TxCtx& ctx = it->second;
  PARIS_CHECK_MSG(!ctx.committing, "double commit");
  PARIS_CHECK_MSG(!m.writes.empty(), "empty commit should use TxEnd");
  (void)from;
  ctx.committing = true;
  if (rt_.tracer) rt_.tracer->on_commit_writes(m.tx, dc_, m.writes);

  const Timestamp ht = std::max(ctx.snapshot, m.hwt);  // Alg. 2 line 19

  fan_nodes_.clear();
  for (const auto& w : m.writes)
    fan_writes_[fan_group(route_to_partition(rt_.topo.partition_of(w.k)))].push_back(w);

  ctx.commit.outstanding = static_cast<std::uint32_t>(fan_nodes_.size());
  ctx.commit.max_pt = kTsZero;
  ctx.commit.cohort_nodes.clear();
  for (std::size_t i = 0; i < fan_nodes_.size(); ++i) {
    ctx.commit.cohort_nodes.push_back(fan_nodes_[i]);
    auto req = make_msg<PrepareReq>();
    req->tx = m.tx;
    req->partition = partition_;  // coordinator partition, informational
    req->snapshot = ctx.snapshot;
    req->ht = ht;
    req->writes.assign(fan_writes_[i].begin(), fan_writes_[i].end());
    send(fan_nodes_[i], std::move(req));
  }
}

void ServerBase::handle_prepare_resp(NodeId /*from*/, const PrepareResp& m) {
  auto it = tx_.find(m.tx);
  PARIS_CHECK_MSG(it != tx_.end(), "prepare response for unknown transaction");
  TxCtx& ctx = it->second;
  PARIS_DCHECK(ctx.commit.outstanding > 0);
  ctx.commit.max_pt = std::max(ctx.commit.max_pt, m.pt);
  if (--ctx.commit.outstanding > 0) return;

  // Alg. 2 lines 26-29: ct = max proposed; fan out, reply to client, clear.
  const Timestamp ct = ctx.commit.max_pt;
  for (NodeId cohort : ctx.commit.cohort_nodes) {
    auto cm = make_msg<Commit2pc>();
    cm->tx = m.tx;
    cm->ct = ct;
    send(cohort, std::move(cm));
  }
  if (rt_.tracer) rt_.tracer->on_commit_decided(m.tx, ct, dc_, rt_.exec.now_us());

  auto resp = make_msg<ClientCommitResp>();
  resp->tx = m.tx;
  resp->ct = ct;
  send(ctx.client, std::move(resp));
  stats_.txs_coordinated++;
  finish_tx(m.tx);
}

void ServerBase::handle_tx_end(NodeId /*from*/, const TxEnd& m) {
  stats_.read_only_txs++;
  finish_tx(m.tx);
}

void ServerBase::finish_tx(TxId tx) {
  auto it = tx_.find(tx);
  if (it == tx_.end()) return;
  active_snapshots_.erase(it->second.snapshot);
  tx_.erase(it);
}

void ServerBase::reap_stale_contexts() {
  const sim::SimTime now = rt_.exec.now_us();
  const sim::SimTime timeout = rt_.cfg.tx_context_timeout_us;
  for (auto it = tx_.begin(); it != tx_.end();) {
    // Never reap a transaction whose 2PC is in flight — cohorts hold
    // prepared state keyed to it.
    if (!it->second.committing && it->second.created + timeout <= now) {
      active_snapshots_.erase(it->second.snapshot);
      it = tx_.erase(it);
    } else {
      ++it;
    }
  }
}

Timestamp ServerBase::oldest_active_snapshot(Timestamp fallback) const {
  return active_snapshots_.empty() ? fallback : active_snapshots_.min();
}

// ---------------------------------------------------------------------------
// Cohort role (Alg. 3).
// ---------------------------------------------------------------------------

void ServerBase::serve_slice(NodeId from, const ReadSliceReq& req) {
  const auto mode = static_cast<ReadMode>(req.mode);
  auto resp = make_msg<ReadSliceResp>();
  resp->tx = req.tx;
  resp->items.reserve(req.keys.size());
  for (Key k : req.keys) {
    Item item;
    item.k = k;
    if (mode == ReadMode::kCounter) {
      // Convergent counter (§II-B): merge visible deltas by summation. The
      // sum travels as a binary int64 (item.num); the client materializes
      // the string form at the API surface.
      const auto [sum, newest] = store_.read_counter(k, req.snapshot);
      if (newest != nullptr) {
        item.num = sum;
        item.ut = newest->ut;
        item.tx = newest->tx;
        item.sr = newest->sr;
      }
    } else {
      const store::Version* ver = store_.read(k, req.snapshot);
      if (ver != nullptr) {
        item.v = ver->v;  // register payload; .num stays 0 (counter-only field)
        item.ut = ver->ut;
        item.tx = ver->tx;
        item.sr = ver->sr;
      }  // else: key has no version within the snapshot -> zero item
    }
    resp->items.push_back(std::move(item));
  }
  stats_.slices_served++;
  if (rt_.tracer)
    rt_.tracer->on_slice_served(dc_, partition_, req.tx, req.snapshot, req.mode,
                                resp->items, rt_.exec.now_us());
  send(from, std::move(resp));
}

void ServerBase::handle_prepare(NodeId from, const PrepareReq& m) {
  hlc_.tick_past(clock_us(), m.ht);  // Alg. 3 line 10
  observe_remote_snapshot(m.snapshot);
  const Timestamp pt = propose_ts(m);  // Alg. 3 line 12
  prepared_.emplace(m.tx, PrepEntry{pt, m.writes});
  prepared_pts_.insert(pt);
  stats_.cohort_prepares++;

  auto resp = make_msg<PrepareResp>();
  resp->tx = m.tx;
  resp->partition = partition_;
  resp->pt = pt;
  send(from, std::move(resp));
}

void ServerBase::handle_commit2pc(NodeId /*from*/, const Commit2pc& m) {
  hlc_.observe(clock_us(), m.ct);  // Alg. 3 line 16
  auto it = prepared_.find(m.tx);
  PARIS_CHECK_MSG(it != prepared_.end(), "commit for unknown prepared transaction");
  prepared_pts_.erase(it->second.pt);
  PARIS_DCHECK(m.ct >= it->second.pt);
  committed_.emplace(std::make_pair(m.ct, m.tx), std::move(it->second.writes));
  prepared_.erase(it);
}

// ---------------------------------------------------------------------------
// Replica role (Alg. 4).
// ---------------------------------------------------------------------------

void ServerBase::note_applied(TxId /*tx*/, Timestamp /*ct*/) {}

void ServerBase::apply_tick() {
  if (rt_.net.node_paused(self_)) return;  // crashed process does no work
  rt_.net.charge_cpu(self_, rt_.cost.apply_tick_us);

  // Upper bound on what can safely enter the local snapshot: one below the
  // minimum prepared timestamp, or clock/HLC when the prepare window is
  // empty (Alg. 4 lines 6-7).
  Timestamp ub;
  if (!prepared_pts_.empty()) {
    ub = Timestamp{prepared_pts_.min().raw - 1};
  } else {
    ub = std::max(Timestamp::from_physical(clock_us()), hlc_.value());
    // Fold ub into the HLC: the version clock promises every future commit
    // from this replica exceeds ub, so no future prepare may propose <= ub
    // (a prepare in this same microsecond could otherwise tie with ub).
    hlc_.observe(clock_us(), ub);
  }

  // Build straight into a pooled batch: its RecyclingVec groups keep every
  // nesting level's capacity across ΔR ticks, so a warmed-up apply loop
  // assembles the batch without heap traffic. An empty batch just returns
  // to the pool.
  auto batch = make_msg<ReplicateBatch>();
  sim::SimTime apply_cost = 0;
  while (!committed_.empty()) {
    auto it = committed_.begin();
    const Timestamp ct = it->first.first;
    if (ct > ub) break;
    if (batch->groups.empty() || batch->groups.back().ct != ct) {
      ReplicateGroup& g = batch->groups.emplace_back();  // recycled: reset both fields
      g.ct = ct;
      g.txs.clear();
    }
    const TxId tx = it->first.second;
    for (const auto& w : it->second) {
      store_.apply(w.k, w.v, w.kind != 0 ? w.delta() : 0, ct, tx, dc_, w.kind);
      ++stats_.applied_writes;
      apply_cost += rt_.cost.apply_per_write_us;
    }
    if (rt_.tracer) rt_.tracer->on_applied(dc_, partition_, tx, ct, rt_.exec.now_us());
    note_applied(tx, ct);
    ReplicateTxn& t = batch->groups.back().txs.emplace_back();
    t.tx = tx;
    // Element-wise copy into the recycled slots (not a buffer move): the
    // pooled batch keeps its warmed WriteKV strings, so a steady-state
    // apply tick builds the batch without touching the heap.
    t.writes.assign(it->second.begin(), it->second.end());
    committed_.erase(it);
  }
  if (apply_cost > 0) rt_.net.charge_cpu(self_, apply_cost);

  bool shipped = false;
  if (!batch->groups.empty()) {
    batch->partition = partition_;
    batch->upto = ub;
    const wire::MessagePtr batch_msg = std::move(batch);  // shared across peers
    for (DcId peer : rt_.topo.replicas(partition_)) {
      if (peer == dc_) continue;
      send(rt_.dir.server(peer, partition_), batch_msg);
      ++stats_.replicate_batches_sent;
      shipped = true;
    }
    if (rt_.topo.replication() == 1) shipped = true;  // no peers to ship to
  }

  if (vv_[replica_idx_] < ub) {
    vv_[replica_idx_] = ub;
    on_vv_advanced();
  }

  if (!shipped) {
    // Alg. 4 line 21: heartbeat so peer version vectors advance without
    // updates.
    for (DcId peer : rt_.topo.replicas(partition_)) {
      if (peer == dc_) continue;
      auto hb = make_msg<Heartbeat>();
      hb->partition = partition_;
      hb->t = ub;
      send(rt_.dir.server(peer, partition_), std::move(hb));
      ++stats_.heartbeats_sent;
    }
  }
}

void ServerBase::handle_replicate(NodeId from, const ReplicateBatch& m) {
  PARIS_DCHECK(m.partition == partition_);
  const DcId sender_dc = rt_.net.dc_of(from);
  for (const auto& g : m.groups) {
    for (const auto& t : g.txs) {
      for (const auto& w : t.writes) {
        store_.apply(w.k, w.v, w.kind != 0 ? w.delta() : 0, g.ct, t.tx, sender_dc, w.kind);
        ++stats_.applied_writes;
      }
      if (rt_.tracer) rt_.tracer->on_applied(dc_, partition_, t.tx, g.ct, rt_.exec.now_us());
      note_applied(t.tx, g.ct);
    }
  }
  const ReplicaIdx i = rt_.topo.replica_idx(sender_dc, partition_);
  PARIS_CHECK_MSG(i != kInvalidReplica, "replicate from non-replica DC");
  if (vv_[i] < m.upto) {
    vv_[i] = m.upto;
    on_vv_advanced();
  }
}

void ServerBase::handle_heartbeat(NodeId from, const Heartbeat& m) {
  PARIS_DCHECK(m.partition == partition_);
  const DcId sender_dc = rt_.net.dc_of(from);
  const ReplicaIdx i = rt_.topo.replica_idx(sender_dc, partition_);
  PARIS_CHECK_MSG(i != kInvalidReplica, "heartbeat from non-replica DC");
  if (vv_[i] < m.t) {
    vv_[i] = m.t;
    on_vv_advanced();
  }
}

Timestamp ServerBase::min_vv() const {
  Timestamp m = kTsMax;
  for (Timestamp t : vv_) m = std::min(m, t);
  return m;
}

void ServerBase::gc_tick() {
  if (rt_.net.node_paused(self_)) return;
  store_.gc(gc_watermark());
}

}  // namespace paris::proto
