#include "proto/server_base.h"

#include <algorithm>

#include "common/assert.h"

namespace paris::proto {

using namespace wire;

// ---------------------------------------------------------------------------
// Cost model.
// ---------------------------------------------------------------------------

sim::SimTime CostModel::service_us(const Message& m) const {
  switch (m.type()) {
    case MsgType::kClientStartReq:
      return start_us;
    case MsgType::kClientReadReq: {
      const auto& r = static_cast<const ClientReadReq&>(m);
      return client_read_base_us + client_read_per_key_us * r.keys.size();
    }
    case MsgType::kReadSliceReq: {
      const auto& r = static_cast<const ReadSliceReq&>(m);
      return read_slice_base_us + read_slice_per_key_us * r.keys.size();
    }
    case MsgType::kReadSliceResp: {
      const auto& r = static_cast<const ReadSliceResp&>(m);
      return slice_resp_per_item_us * r.items.size();
    }
    case MsgType::kClientCommitReq: {
      const auto& r = static_cast<const ClientCommitReq&>(m);
      return client_commit_base_us + client_commit_per_key_us * r.writes.size();
    }
    case MsgType::kPrepareReq: {
      const auto& r = static_cast<const PrepareReq&>(m);
      return prepare_base_us + prepare_per_key_us * r.writes.size();
    }
    case MsgType::kPrepareResp:
      return prepare_resp_us;
    case MsgType::kCommit2pc:
      return commit2pc_us;
    case MsgType::kReplicateBatch: {
      const auto& r = static_cast<const ReplicateBatch&>(m);
      sim::SimTime t = replicate_base_us;
      for (const auto& g : r.groups) {
        t += replicate_per_tx_us * g.txs.size();
        for (const auto& tx : g.txs) t += replicate_per_write_us * tx.writes.size();
      }
      return t;
    }
    case MsgType::kHeartbeat:
      return heartbeat_us;
    case MsgType::kGossipUp:
    case MsgType::kGossipRoot:
    case MsgType::kUstDown:
      return gossip_us;
    case MsgType::kTxEnd:
      return tx_end_us;
    // Client-bound replies cost nothing at a server.
    case MsgType::kClientStartResp:
    case MsgType::kClientReadResp:
    case MsgType::kClientCommitResp:
      return 0;
    // Transport-layer framing (threads-only reliable delivery) never reaches
    // the sim cost model.
    case MsgType::kReliableFrame:
    case MsgType::kReliableAck:
      return 0;
    // Recovery state transfer only runs under the socket runtime, outside
    // the simulated cost model.
    case MsgType::kSnapshotRequest:
    case MsgType::kSnapshotChunk:
    case MsgType::kCatchUpRequest:
    case MsgType::kCatchUpChunk:
      return 0;
    // Placement control plane: like recovery, charged nothing — migration
    // throughput is dominated by the flush/drain barrier, not CPU.
    case MsgType::kSketchReport:
    case MsgType::kMigrateFence:
    case MsgType::kMigrateFlush:
    case MsgType::kMigrateChain:
    case MsgType::kMigrateReady:
    case MsgType::kMigrateCommit:
    case MsgType::kMigrateCommitAck:
      return 0;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Construction / registration.
// ---------------------------------------------------------------------------

ServerBase::ServerBase(Runtime& rt, DcId dc, PartitionId partition)
    : rt_(rt), dc_(dc), partition_(partition) {
  replica_idx_ = rt_.topo.replica_idx(dc, partition);
  PARIS_CHECK_MSG(replica_idx_ != kInvalidReplica, "server placed at a DC not replicating it");
  vv_.assign(rt_.topo.replication(), kTsZero);
  if (placement_on()) {
    sketch_ = placement::AccessSketch(rt_.cfg.sketch_capacity);
    if (is_controller()) ctrl_ = std::make_unique<ControllerState>();
  }
}

void ServerBase::attach(NodeId self, PhysClock clock) {
  self_ = self;
  clock_ = clock;
}

void ServerBase::start_timers(Rng& phase_rng) {
  PARIS_CHECK_MSG(self_ != kInvalidNode, "attach() must precede start_timers()");
  const auto& cfg = rt_.cfg;
  apply_timer_ = rt_.exec.every(self_, cfg.delta_r_us, phase_rng.next_below(cfg.delta_r_us),
                                [this] { apply_tick(); });
  gc_timer_ = rt_.exec.every(self_, cfg.gc_interval_us, phase_rng.next_below(cfg.gc_interval_us),
                             [this] { gc_tick(); });
  ctx_reaper_timer_ = rt_.exec.every(self_, cfg.tx_context_timeout_us / 2,
                                     phase_rng.next_below(cfg.tx_context_timeout_us / 2),
                                     [this] { reap_stale_contexts(); });
  if (placement_on() && cfg.sketch_report_period_us > 0) {
    sketch_timer_ = rt_.exec.every(self_, cfg.sketch_report_period_us,
                                   phase_rng.next_below(cfg.sketch_report_period_us),
                                   [this] { sketch_tick(); });
  }
}

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

void ServerBase::on_message(NodeId from, const Message& m) {
  if (rec_ != nullptr) {
    switch (m.type()) {
      case MsgType::kSnapshotChunk:
      case MsgType::kCatchUpChunk:
        break;  // recovery traffic flows through
      default: {
        // Everything else is held (re-encoded) and replayed after recovery:
        // the reliable endpoint already delivered it exactly-once, so a drop
        // here would lose a protocol message for good. That includes peer
        // Snapshot/CatchUp REQUESTS — a recovering replica serves them once
        // its own state is whole.
        auto& slot = rec_->held.emplace_back(from, std::vector<std::uint8_t>{});
        encode_message(m, slot.second);
        ++stats_.recovery_buffered;
        return;
      }
    }
  }
  switch (m.type()) {
    case MsgType::kClientStartReq:
      return handle_start(from, static_cast<const ClientStartReq&>(m));
    case MsgType::kClientReadReq:
      return handle_client_read(from, static_cast<const ClientReadReq&>(m));
    case MsgType::kReadSliceReq:
      return handle_read_slice(from, static_cast<const ReadSliceReq&>(m));
    case MsgType::kReadSliceResp:
      return handle_slice_resp(from, static_cast<const ReadSliceResp&>(m));
    case MsgType::kClientCommitReq:
      return handle_client_commit(from, static_cast<const ClientCommitReq&>(m));
    case MsgType::kPrepareReq:
      return handle_prepare(from, static_cast<const PrepareReq&>(m));
    case MsgType::kPrepareResp:
      return handle_prepare_resp(from, static_cast<const PrepareResp&>(m));
    case MsgType::kCommit2pc:
      return handle_commit2pc(from, static_cast<const Commit2pc&>(m));
    case MsgType::kReplicateBatch:
      return handle_replicate(from, static_cast<const ReplicateBatch&>(m));
    case MsgType::kHeartbeat:
      return handle_heartbeat(from, static_cast<const Heartbeat&>(m));
    case MsgType::kTxEnd:
      return handle_tx_end(from, static_cast<const TxEnd&>(m));
    case MsgType::kGossipUp:
      return handle_gossip_up(from, static_cast<const GossipUp&>(m));
    case MsgType::kGossipRoot:
      return handle_gossip_root(from, static_cast<const GossipRoot&>(m));
    case MsgType::kUstDown:
      return handle_ust_down(from, static_cast<const UstDown&>(m));
    case MsgType::kSnapshotRequest:
      return handle_snapshot_request(from, static_cast<const SnapshotRequest&>(m));
    case MsgType::kSnapshotChunk:
      return handle_snapshot_chunk(from, static_cast<const SnapshotChunk&>(m));
    case MsgType::kCatchUpRequest:
      return handle_catchup_request(from, static_cast<const CatchUpRequest&>(m));
    case MsgType::kCatchUpChunk:
      return handle_catchup_chunk(from, static_cast<const CatchUpChunk&>(m));
    case MsgType::kSketchReport:
      return handle_sketch_report(from, static_cast<const SketchReport&>(m));
    case MsgType::kMigrateFence:
      return handle_migrate_fence(from, static_cast<const MigrateFence&>(m));
    case MsgType::kMigrateFlush:
      return handle_migrate_flush(from, static_cast<const MigrateFlush&>(m));
    case MsgType::kMigrateChain:
      return handle_migrate_chain(from, static_cast<const MigrateChain&>(m));
    case MsgType::kMigrateReady:
      return handle_migrate_ready(from, static_cast<const MigrateReady&>(m));
    case MsgType::kMigrateCommit:
      return handle_migrate_commit(from, static_cast<const MigrateCommit&>(m));
    case MsgType::kMigrateCommitAck:
      return handle_migrate_commit_ack(from, static_cast<const MigrateCommitAck&>(m));
    case MsgType::kClientStartResp:
    case MsgType::kClientReadResp:
    case MsgType::kClientCommitResp:
      PARIS_CHECK_MSG(false, "client-bound message delivered to a server");
    case MsgType::kReliableFrame:
    case MsgType::kReliableAck:
      PARIS_CHECK_MSG(false, "transport framing leaked past the reliable endpoint");
  }
}

// ---------------------------------------------------------------------------
// Coordinator role (Alg. 2).
// ---------------------------------------------------------------------------

void ServerBase::handle_start(NodeId from, const ClientStartReq& m) {
  const TxId tx = TxId::make(self_, next_tx_seq_++);
  const Timestamp snapshot = assign_snapshot(m.ust_c);
  tx_.emplace(tx, TxCtx{snapshot, from, {}, {}, false, rt_.exec.now_us()});
  active_snapshots_.insert(snapshot);

  auto resp = make_msg<ClientStartResp>();
  resp->tx = tx;
  resp->snapshot = snapshot;
  send(from, std::move(resp));
}

NodeId ServerBase::route_to_partition(PartitionId p) const {
  return rt_.dir.server(rt_.route_dc(dc_, p), p);
}

void ServerBase::handle_client_read(NodeId from, const ClientReadReq& m) {
  auto it = tx_.find(m.tx);
  PARIS_CHECK_MSG(it != tx_.end(), "read for unknown transaction");
  TxCtx& ctx = it->second;
  PARIS_CHECK_MSG(ctx.read.outstanding == 0, "client issued overlapping reads");
  PARIS_CHECK(!m.keys.empty());
  if (fence_ != nullptr) {
    for (Key k : m.keys)
      if (park_if_fenced(from, m, k)) return;
  }
  if (placement_on()) sketch_note_keys(m.keys);
  (void)from;

  // Group keys by serving node (local replica if present, else the DC's
  // preferred remote replica; Alg. 2 lines 9-12) in the reusable scratch.
  fan_nodes_.clear();
  for (Key k : m.keys)
    fan_keys_[fan_group(route_to_partition(partition_for(k)))].push_back(k);

  ctx.read.outstanding = static_cast<std::uint32_t>(fan_nodes_.size());
  ctx.read.items.clear();
  for (std::size_t i = 0; i < fan_nodes_.size(); ++i) {
    auto req = make_msg<ReadSliceReq>();
    req->tx = m.tx;
    req->snapshot = ctx.snapshot;
    req->mode = m.mode;
    req->keys.assign(fan_keys_[i].begin(), fan_keys_[i].end());
    send(fan_nodes_[i], std::move(req));
  }
}

/// Index of `node` in the current fan-out, adding (and clearing) its group
/// lazily. Linear scan: a transaction touches a handful of partitions.
std::size_t ServerBase::fan_group(NodeId node) {
  for (std::size_t i = 0; i < fan_nodes_.size(); ++i)
    if (fan_nodes_[i] == node) return i;
  fan_nodes_.push_back(node);
  const std::size_t gi = fan_nodes_.size() - 1;
  if (fan_keys_.size() <= gi) fan_keys_.emplace_back();
  if (fan_writes_.size() <= gi) fan_writes_.emplace_back();
  fan_keys_[gi].clear();
  fan_writes_[gi].clear();
  return gi;
}

void ServerBase::handle_slice_resp(NodeId /*from*/, const ReadSliceResp& m) {
  auto it = tx_.find(m.tx);
  if (it == tx_.end()) return;  // transaction already ended
  TxCtx& ctx = it->second;
  PARIS_DCHECK(ctx.read.outstanding > 0);
  ctx.read.items.insert(ctx.read.items.end(), m.items.begin(), m.items.end());
  if (--ctx.read.outstanding > 0) return;

  auto resp = make_msg<ClientReadResp>();
  resp->tx = m.tx;
  // Copy, don't move: a move-assign would free the pooled vector's warmed
  // buffer and defeat the pool's capacity reuse.
  resp->items.assign(ctx.read.items.begin(), ctx.read.items.end());
  ctx.read.items.clear();
  send(ctx.client, std::move(resp));
}

void ServerBase::handle_client_commit(NodeId from, const ClientCommitReq& m) {
  auto it = tx_.find(m.tx);
  PARIS_CHECK_MSG(it != tx_.end(), "commit for unknown transaction");
  TxCtx& ctx = it->second;
  PARIS_CHECK_MSG(!ctx.committing, "double commit");
  PARIS_CHECK_MSG(!m.writes.empty(), "empty commit should use TxEnd");
  // Park BEFORE the tracer sees the write set: a parked commit is replayed
  // through this handler in full, and the checker must record it once.
  if (fence_ != nullptr) {
    for (const auto& w : m.writes)
      if (park_if_fenced(from, m, w.k)) return;
  }
  if (placement_on()) {
    for (const auto& w : m.writes) sketch_.note(w.k, dc_);
  }
  (void)from;
  ctx.committing = true;
  if (rt_.tracer) rt_.tracer->on_commit_writes(m.tx, dc_, m.writes);

  const Timestamp ht = std::max(ctx.snapshot, m.hwt);  // Alg. 2 line 19

  fan_nodes_.clear();
  for (const auto& w : m.writes)
    fan_writes_[fan_group(route_to_partition(partition_for(w.k)))].push_back(w);

  ctx.commit.outstanding = static_cast<std::uint32_t>(fan_nodes_.size());
  ctx.commit.max_pt = kTsZero;
  ctx.commit.cohort_nodes.clear();
  for (std::size_t i = 0; i < fan_nodes_.size(); ++i) {
    ctx.commit.cohort_nodes.push_back(fan_nodes_[i]);
    auto req = make_msg<PrepareReq>();
    req->tx = m.tx;
    req->partition = partition_;  // coordinator partition, informational
    req->snapshot = ctx.snapshot;
    req->ht = ht;
    req->writes.assign(fan_writes_[i].begin(), fan_writes_[i].end());
    send(fan_nodes_[i], std::move(req));
  }
}

void ServerBase::handle_prepare_resp(NodeId from, const PrepareResp& m) {
  auto it = tx_.find(m.tx);
  if (it == tx_.end() || it->second.commit.outstanding == 0) {
    // Duplicate vote for an already-decided transaction. After a cohort
    // respawn the channel reset retransmits unacked PrepareReqs, so the new
    // incarnation may prepare a transaction whose commit we already
    // broadcast pre-reset; left alone, its prepared entry would fence its
    // apply loop forever. Re-send the decision if the ring still has it.
    ++stats_.orphan_prepare_resps;
    if (auto ct = recent_commit_ct_.find(m.tx); ct != recent_commit_ct_.end()) {
      auto cm = make_msg<Commit2pc>();
      cm->tx = m.tx;
      cm->ct = ct->second;
      send(from, std::move(cm));
    }
    return;
  }
  TxCtx& ctx = it->second;
  ctx.commit.max_pt = std::max(ctx.commit.max_pt, m.pt);
  if (--ctx.commit.outstanding > 0) return;

  // Alg. 2 lines 26-29: ct = max proposed; fan out, reply to client, clear.
  const Timestamp ct = ctx.commit.max_pt;
  for (NodeId cohort : ctx.commit.cohort_nodes) {
    auto cm = make_msg<Commit2pc>();
    cm->tx = m.tx;
    cm->ct = ct;
    send(cohort, std::move(cm));
  }
  remember_commit(m.tx, ct);
  if (rt_.tracer) rt_.tracer->on_commit_decided(m.tx, ct, dc_, rt_.exec.now_us());

  auto resp = make_msg<ClientCommitResp>();
  resp->tx = m.tx;
  resp->ct = ct;
  send(ctx.client, std::move(resp));
  stats_.txs_coordinated++;
  finish_tx(m.tx);
}

void ServerBase::handle_tx_end(NodeId /*from*/, const TxEnd& m) {
  stats_.read_only_txs++;
  finish_tx(m.tx);
}

void ServerBase::finish_tx(TxId tx) {
  auto it = tx_.find(tx);
  if (it == tx_.end()) return;
  active_snapshots_.erase(it->second.snapshot);
  tx_.erase(it);
}

void ServerBase::reap_stale_contexts() {
  const sim::SimTime now = rt_.exec.now_us();
  const sim::SimTime timeout = rt_.cfg.tx_context_timeout_us;
  for (auto it = tx_.begin(); it != tx_.end();) {
    // Never reap a transaction whose 2PC is in flight — cohorts hold
    // prepared state keyed to it.
    if (!it->second.committing && it->second.created + timeout <= now) {
      active_snapshots_.erase(it->second.snapshot);
      it = tx_.erase(it);
    } else {
      ++it;
    }
  }
}

Timestamp ServerBase::oldest_active_snapshot(Timestamp fallback) const {
  return active_snapshots_.empty() ? fallback : active_snapshots_.min();
}

// ---------------------------------------------------------------------------
// Cohort role (Alg. 3).
// ---------------------------------------------------------------------------

void ServerBase::serve_slice(NodeId from, const ReadSliceReq& req) {
  const auto mode = static_cast<ReadMode>(req.mode);
  auto resp = make_msg<ReadSliceResp>();
  resp->tx = req.tx;
  resp->items.reserve(req.keys.size());
  for (Key k : req.keys) {
    Item item;
    item.k = k;
    if (mode == ReadMode::kCounter) {
      // Convergent counter (§II-B): merge visible deltas by summation. The
      // sum travels as a binary int64 (item.num); the client materializes
      // the string form at the API surface.
      const auto [sum, newest] = store_.read_counter(k, req.snapshot);
      if (newest != nullptr) {
        item.num = sum;
        item.ut = newest->ut;
        item.tx = newest->tx;
        item.sr = newest->sr;
      }
    } else {
      const store::Version* ver = store_.read(k, req.snapshot);
      if (ver != nullptr) {
        item.v = ver->v;  // register payload; .num stays 0 (counter-only field)
        item.ut = ver->ut;
        item.tx = ver->tx;
        item.sr = ver->sr;
      }  // else: key has no version within the snapshot -> zero item
    }
    resp->items.push_back(std::move(item));
  }
  stats_.slices_served++;
  if (rt_.tracer)
    rt_.tracer->on_slice_served(dc_, partition_, req.tx, req.snapshot, req.mode,
                                resp->items, rt_.exec.now_us());
  send(from, std::move(resp));
}

void ServerBase::handle_prepare(NodeId from, const PrepareReq& m) {
  hlc_.tick_past(clock_us(), m.ht);  // Alg. 3 line 10
  observe_remote_snapshot(m.snapshot);
  const Timestamp pt = propose_ts(m);  // Alg. 3 line 12
  prepared_.emplace(m.tx, PrepEntry{pt, m.writes});
  prepared_pts_.insert(pt);
  stats_.cohort_prepares++;

  auto resp = make_msg<PrepareResp>();
  resp->tx = m.tx;
  resp->partition = partition_;
  resp->pt = pt;
  send(from, std::move(resp));
}

void ServerBase::handle_commit2pc(NodeId /*from*/, const Commit2pc& m) {
  hlc_.observe(clock_us(), m.ct);  // Alg. 3 line 16
  auto it = prepared_.find(m.tx);
  if (it == prepared_.end()) {
    // No prepared entry: a predecessor incarnation prepared it before the
    // crash (the coordinator's retransmitted decision reaches the respawn),
    // or the entry was epoch-fenced. The writes reach this replica through
    // snapshot/catch-up or replication from the surviving cohorts.
    ++stats_.orphan_commits;
    return;
  }
  prepared_pts_.erase(it->second.pt);
  PARIS_DCHECK(m.ct >= it->second.pt);
  committed_.emplace(std::make_pair(m.ct, m.tx), std::move(it->second.writes));
  prepared_.erase(it);
}

// ---------------------------------------------------------------------------
// Replica role (Alg. 4).
// ---------------------------------------------------------------------------

void ServerBase::note_applied(TxId /*tx*/, Timestamp /*ct*/) {}

void ServerBase::apply_tick() {
  if (rt_.net.node_paused(self_)) return;  // crashed process does no work
  rt_.net.charge_cpu(self_, rt_.cost.apply_tick_us);

  // Upper bound on what can safely enter the local snapshot: one below the
  // minimum prepared timestamp, or clock/HLC when the prepare window is
  // empty (Alg. 4 lines 6-7).
  Timestamp ub;
  if (!prepared_pts_.empty()) {
    ub = Timestamp{prepared_pts_.min().raw - 1};
  } else {
    ub = std::max(Timestamp::from_physical(clock_us()), hlc_.value());
    // Fold ub into the HLC: the version clock promises every future commit
    // from this replica exceeds ub, so no future prepare may propose <= ub
    // (a prepare in this same microsecond could otherwise tie with ub).
    hlc_.observe(clock_us(), ub);
  }

  // Build straight into a pooled batch: its RecyclingVec groups keep every
  // nesting level's capacity across ΔR ticks, so a warmed-up apply loop
  // assembles the batch without heap traffic. An empty batch just returns
  // to the pool.
  auto batch = make_msg<ReplicateBatch>();
  sim::SimTime apply_cost = 0;
  while (!committed_.empty()) {
    auto it = committed_.begin();
    const Timestamp ct = it->first.first;
    if (ct > ub) break;
    if (batch->groups.empty() || batch->groups.back().ct != ct) {
      ReplicateGroup& g = batch->groups.emplace_back();  // recycled: reset both fields
      g.ct = ct;
      g.txs.clear();
    }
    const TxId tx = it->first.second;
    for (const auto& w : it->second) {
      store_.apply(w.k, w.v, w.kind != 0 ? w.delta() : 0, ct, tx, dc_, w.kind);
      ++stats_.applied_writes;
      apply_cost += rt_.cost.apply_per_write_us;
    }
    if (rt_.tracer) rt_.tracer->on_applied(dc_, partition_, tx, ct, rt_.exec.now_us());
    note_applied(tx, ct);
    ReplicateTxn& t = batch->groups.back().txs.emplace_back();
    t.tx = tx;
    // Element-wise copy into the recycled slots (not a buffer move): the
    // pooled batch keeps its warmed WriteKV strings, so a steady-state
    // apply tick builds the batch without touching the heap.
    t.writes.assign(it->second.begin(), it->second.end());
    committed_.erase(it);
  }
  if (apply_cost > 0) rt_.net.charge_cpu(self_, apply_cost);

  bool shipped = false;
  if (!batch->groups.empty()) {
    batch->partition = partition_;
    batch->upto = ub;
    const wire::MessagePtr batch_msg = std::move(batch);  // shared across peers
    for (DcId peer : rt_.topo.replicas(partition_)) {
      // Fan out only to peers active in the current membership view: a
      // drained DC gets no new batches, a not-yet-joined DC catches up via
      // snapshot + catch-up transfer instead.
      if (peer == dc_ || !rt_.dc_active(peer)) continue;
      send(rt_.dir.server(peer, partition_), batch_msg);
      ++stats_.replicate_batches_sent;
      shipped = true;
    }
    if (rt_.topo.replication() == 1) shipped = true;  // no peers to ship to
  }

  if (vv_[replica_idx_] < ub) {
    vv_[replica_idx_] = ub;
    on_vv_advanced();
  }

  if (!shipped) {
    // Alg. 4 line 21: heartbeat so peer version vectors advance without
    // updates.
    for (DcId peer : rt_.topo.replicas(partition_)) {
      if (peer == dc_ || !rt_.dc_active(peer)) continue;
      auto hb = make_msg<Heartbeat>();
      hb->partition = partition_;
      hb->t = ub;
      send(rt_.dir.server(peer, partition_), std::move(hb));
      ++stats_.heartbeats_sent;
    }
  }

  // Migration drain piggybacks on the apply cycle: once the in-flight 2PC
  // state for the fenced key has fully settled into the store, the chain
  // ships (DESIGN §14).
  if (src_move_ != nullptr) maybe_ship_chain();
}

void ServerBase::handle_replicate(NodeId from, const ReplicateBatch& m) {
  PARIS_DCHECK(m.partition == partition_);
  const DcId sender_dc = rt_.net.dc_of(from);
  for (const auto& g : m.groups) {
    for (const auto& t : g.txs) {
      for (const auto& w : t.writes) {
        store_.apply(w.k, w.v, w.kind != 0 ? w.delta() : 0, g.ct, t.tx, sender_dc, w.kind);
        ++stats_.applied_writes;
      }
      if (rt_.tracer) {
        rt_.tracer->on_applied(dc_, partition_, t.tx, g.ct, rt_.exec.now_us());
        rt_.tracer->on_replica_commit(t.tx, g.ct, sender_dc, t);
      }
      note_applied(t.tx, g.ct);
    }
  }
  const ReplicaIdx i = rt_.topo.replica_idx(sender_dc, partition_);
  PARIS_CHECK_MSG(i != kInvalidReplica, "replicate from non-replica DC");
  if (vv_[i] < m.upto) {
    vv_[i] = m.upto;
    on_vv_advanced();
  }
}

void ServerBase::handle_heartbeat(NodeId from, const Heartbeat& m) {
  PARIS_DCHECK(m.partition == partition_);
  const DcId sender_dc = rt_.net.dc_of(from);
  const ReplicaIdx i = rt_.topo.replica_idx(sender_dc, partition_);
  PARIS_CHECK_MSG(i != kInvalidReplica, "heartbeat from non-replica DC");
  if (vv_[i] < m.t) {
    vv_[i] = m.t;
    on_vv_advanced();
  }
}

Timestamp ServerBase::min_vv() const {
  // Conservative minimum over the replica slots of every DC that has EVER
  // been active in the installed membership view sequence. A never-joined
  // DC's zero slot is skipped (it has shipped nothing, so nothing of its
  // can be missing from a snapshot); the instant its join view installs,
  // its slot counts — stabilization freezes at the pre-join value until the
  // joiner's first batch/heartbeat lands, which is safe (monotone) and what
  // makes the freeze window measurable rather than hidden.
  const auto& reps = rt_.topo.replicas(partition_);
  Timestamp m = kTsMax;
  for (ReplicaIdx i = 0; i < vv_.size(); ++i) {
    if (!rt_.dc_ever_active(reps[i])) continue;
    m = std::min(m, vv_[i]);
  }
  return m;
}

Timestamp ServerBase::min_vv_installed() const {
  // Like min_vv(), but additionally skips the still-zero slots of DCs that
  // were NOT active in view 0 — i.e. a fresh joiner between view install and
  // its first heartbeat. Used only by serving-side sanity checks: the join
  // HLC floor guarantees every post-join version exceeds any pre-join stable
  // snapshot, so a snapshot above this relaxed minimum can still be served
  // exactly during the freeze window.
  const auto& reps = rt_.topo.replicas(partition_);
  Timestamp m = kTsMax;
  for (ReplicaIdx i = 0; i < vv_.size(); ++i) {
    if (!rt_.dc_ever_active(reps[i])) continue;
    if (vv_[i].is_zero() && !rt_.dc_initially_active(reps[i])) continue;
    m = std::min(m, vv_[i]);
  }
  return m;
}

void ServerBase::gc_tick() {
  if (rt_.net.node_paused(self_)) return;
  store_.gc(gc_watermark());
}

// ---------------------------------------------------------------------------
// Workload-aware placement + online key migration (DESIGN §14).
// ---------------------------------------------------------------------------

namespace {
std::uint64_t to_x1e6(double v) { return static_cast<std::uint64_t>(v * 1e6 + 0.5); }
}  // namespace

bool ServerBase::is_controller() const {
  return partition_ == 0 && dc_ == rt_.topo.replicas(0)[0];
}

NodeId ServerBase::controller_node() const {
  return rt_.dir.server(rt_.topo.replicas(0)[0], 0);
}

bool ServerBase::park_if_fenced(NodeId from, const Message& m, Key k) {
  if (k != fence_->key) return false;
  auto& slot = fence_->parked.emplace_back(from, std::vector<std::uint8_t>{});
  encode_message(m, slot.second);
  ++stats_.migrate_parked;
  return true;
}

void ServerBase::sketch_note_keys(const std::vector<Key>& keys) {
  for (Key k : keys) sketch_.note(k, dc_);
}

void ServerBase::sketch_tick() {
  if (rt_.net.node_paused(self_)) return;
  if (sketch_.total() > 0) {
    // Ship the hot slice to the controller, then reset: counts are
    // per-period deltas the controller sums.
    const auto top = sketch_.top(64);
    if (ctrl_ != nullptr) {
      ctrl_->merged.merge(top);
    } else {
      auto rep = make_msg<SketchReport>();
      rep->dc = dc_;
      rep->partition = partition_;
      rep->entries.reserve(top.size());
      for (const auto& e : top)
        rep->entries.push_back(SketchEntry{e.key, e.count, e.dc_mask});
      send(controller_node(), std::move(rep));
    }
    ++stats_.sketch_reports_sent;
    sketch_.clear();
  }
  if (ctrl_ != nullptr) maybe_start_migration();
}

void ServerBase::handle_sketch_report(NodeId /*from*/, const SketchReport& m) {
  PARIS_CHECK_MSG(ctrl_ != nullptr, "sketch report delivered to a non-controller");
  std::vector<placement::AccessSketch::Entry> es;
  es.reserve(m.entries.size());
  for (const auto& e : m.entries)
    es.push_back(placement::AccessSketch::Entry{e.k, e.count, e.dc_mask});
  ctrl_->merged.merge(es);
}

void ServerBase::maybe_start_migration() {
  const auto& cfg = rt_.cfg;
  if (ctrl_->migration_started || cfg.migrate_at_us == 0 || cfg.migrate_top_k == 0) return;
  if (rt_.exec.now_us() < cfg.migrate_at_us) return;
  if (ctrl_->merged.total() == 0) return;  // nothing sketched yet, retry next tick
  ctrl_->migration_started = true;

  const auto assign = [this](Key k) { return partition_for(k); };
  const auto before = placement::score_assignment(rt_.topo, ctrl_->merged.entries(), assign);
  stats_.replicate_factor_before_x1e6 = to_x1e6(before.replicate_factor);
  stats_.load_rel_stddev_before_x1e6 = to_x1e6(before.load_relative_stddev);

  std::vector<std::uint64_t> load(rt_.topo.num_partitions(), 0);
  for (const auto& e : ctrl_->merged.entries()) load[partition_for(e.key)] += e.count;

  for (const auto& e : ctrl_->merged.top(cfg.migrate_top_k)) {
    const PartitionId cur = partition_for(e.key);
    const PartitionId dst = placement::choose_partition(rt_.topo, e, load);
    if (dst == cur) continue;
    load[cur] -= std::min(load[cur], e.count);
    load[dst] += e.count;
    ctrl_->queue.push_back(MoveSpec{e.key, cur, dst});
  }
  start_next_move();
}

void ServerBase::start_next_move() {
  if (ctrl_->next >= ctrl_->queue.size()) {
    ctrl_->move_id = 0;
    const auto assign = [this](Key k) { return partition_for(k); };
    const auto after = placement::score_assignment(rt_.topo, ctrl_->merged.entries(), assign);
    stats_.replicate_factor_after_x1e6 = to_x1e6(after.replicate_factor);
    stats_.load_rel_stddev_after_x1e6 = to_x1e6(after.load_relative_stddev);
    return;
  }
  const MoveSpec mv = ctrl_->queue[ctrl_->next++];
  ctrl_->move_id = ctrl_->next;  // 1-based, strictly increasing
  ctrl_->readies_pending = rt_.topo.replication();
  ctrl_->acks_pending = rt_.topo.total_servers();
  {
    auto f = make_msg<MigrateFence>();
    f->move_id = ctrl_->move_id;
    f->key = mv.key;
    f->src = mv.src;
    f->dst = mv.dst;
    const MessagePtr shared = std::move(f);
    for (DcId d = 0; d < rt_.topo.num_dcs(); ++d)
      for (PartitionId p : rt_.topo.partitions_at(d)) {
        const NodeId n = rt_.dir.server(d, p);
        if (n != self_) send(n, shared);
      }
  }
  MigrateFence self_fence;
  self_fence.move_id = ctrl_->move_id;
  self_fence.key = mv.key;
  self_fence.src = mv.src;
  self_fence.dst = mv.dst;
  handle_migrate_fence(self_, self_fence);
}

void ServerBase::handle_migrate_fence(NodeId /*from*/, const MigrateFence& m) {
  PARIS_CHECK_MSG(fence_ == nullptr, "overlapping migration fences");
  fence_ = std::make_unique<FenceState>();
  fence_->move_id = m.move_id;
  fence_->key = m.key;
  fence_->src = m.src;
  fence_->dst = m.dst;
  // Tell every src replica this server stopped routing new transactions to
  // the key. FIFO channels order the flush behind any PrepareReq this
  // server already sent for it.
  // The flush carries this server's HLC: every snapshot it handed out (and
  // every commit it proposed) before the fence is bounded by it, so the max
  // over all flushes upper-bounds everything stable at cutover.
  for (DcId d : rt_.topo.replicas(m.src)) {
    const NodeId n = rt_.dir.server(d, m.src);
    if (n == self_) {
      note_flush(m.move_id, m.key, hlc_.value());
      continue;
    }
    auto fl = make_msg<MigrateFlush>();
    fl->move_id = m.move_id;
    fl->key = m.key;
    fl->from_dc = dc_;
    fl->from_partition = partition_;
    fl->floor = hlc_.value();
    send(n, std::move(fl));
  }
}

void ServerBase::handle_migrate_flush(NodeId /*from*/, const MigrateFlush& m) {
  note_flush(m.move_id, m.key, m.floor);
}

void ServerBase::note_flush(std::uint64_t move_id, Key key, Timestamp floor) {
  if (src_move_ == nullptr) {
    // Lazily armed: a peer's flush may overtake this replica's own fence.
    src_move_ = std::make_unique<SrcMoveState>();
    src_move_->move_id = move_id;
    src_move_->key = key;
    src_move_->flushes_pending = rt_.topo.total_servers();
  }
  PARIS_CHECK_MSG(src_move_->move_id == move_id, "flush for a different move");
  PARIS_CHECK(src_move_->flushes_pending > 0);
  src_move_->floor = std::max(src_move_->floor, floor);
  --src_move_->flushes_pending;
  maybe_ship_chain();
}

void ServerBase::maybe_ship_chain() {
  if (src_move_->flushes_pending > 0) return;
  const Key key = src_move_->key;
  // Drained? Any prepared or committed-but-unapplied entry naming the key
  // means an in-flight 2PC can still add versions; re-checked from
  // apply_tick until clear (2PC traffic is never parked, so this resolves).
  for (const auto& [tx, pe] : prepared_)
    for (const auto& w : pe.writes)
      if (w.k == key) return;
  for (const auto& [ct_tx, writes] : committed_)
    for (const auto& w : writes)
      if (w.k == key) return;
  // The barrier only completes after our own fence (its flush is counted in
  // handle_migrate_fence), so the destination is always known here.
  PARIS_CHECK_MSG(fence_ != nullptr && fence_->move_id == src_move_->move_id,
                  "src replica shipping without its own fence");
  std::vector<std::uint8_t> blob;
  Encoder e(blob);
  const std::vector<store::Version>* chain =
      rt_.cfg.migrate_fault_skip_copy ? nullptr : store_.chain(key);
  if (chain != nullptr) {
    e.put_varint(chain->size());
    for (const auto& ver : *chain) encode_version_record(e, key, ver);
  } else {
    // Key never written here — or the seeded fault: shipping an empty chain
    // makes post-migration reads deterministically stale (checker-visible).
    e.put_varint(0);
  }
  // Ship-time HLC also bounds any 2PC that drained AFTER the fence floors
  // were sampled (its timestamps were proposed at this replica).
  const Timestamp floor = std::max(src_move_->floor, hlc_.value());
  for (DcId d : rt_.topo.replicas(fence_->dst)) {
    auto ch = make_msg<MigrateChain>();
    ch->move_id = src_move_->move_id;
    ch->key = key;
    ch->src_dc = dc_;
    ch->floor = floor;
    ch->payload = blob;
    send(rt_.dir.server(d, fence_->dst), std::move(ch));
    ++stats_.migrate_chains_sent;
  }
  src_move_.reset();
}

void ServerBase::handle_migrate_chain(NodeId /*from*/, const MigrateChain& m) {
  if (dst_move_ == nullptr) {
    dst_move_ = std::make_unique<DstMoveState>();
    dst_move_->move_id = m.move_id;
    dst_move_->chains_pending = rt_.topo.replication();
  }
  PARIS_CHECK_MSG(dst_move_->move_id == m.move_id, "chain for a different move");
  Decoder d(m.payload);
  install_records(d);
  PARIS_CHECK_MSG(d.done(), "trailing bytes after migrated chain");
  ++stats_.migrate_chains_installed;
  dst_move_->floor = std::max(dst_move_->floor, m.floor);
  if (--dst_move_->chains_pending > 0) return;
  // The timestamp half of the handover: without this, a dst replica whose
  // HLC lags could propose a post-cutover commit for the key BELOW a
  // snapshot that was already stable pre-cutover — the version would appear
  // "in the past" and reads served from the frozen src chain (or any
  // replica that missed it) would be exactness violations. Ticking strictly
  // past the floor orders every new version after everything pre-cutover.
  hlc_.tick_past(clock_us(), dst_move_->floor);
  dst_move_.reset();
  auto rdy = make_msg<MigrateReady>();
  rdy->move_id = m.move_id;
  rdy->dc = dc_;
  rdy->partition = partition_;
  if (controller_node() == self_) {
    handle_migrate_ready(self_, *rdy);  // dst replica doubling as controller
  } else {
    send(controller_node(), std::move(rdy));
  }
}

void ServerBase::handle_migrate_ready(NodeId /*from*/, const MigrateReady& m) {
  PARIS_CHECK_MSG(ctrl_ != nullptr && ctrl_->move_id == m.move_id, "ready for unknown move");
  PARIS_CHECK(ctrl_->readies_pending > 0);
  if (--ctrl_->readies_pending > 0) return;
  // Every dst replica holds the full chain union: commit the move.
  const MoveSpec mv = ctrl_->queue[ctrl_->next - 1];
  {
    auto c = make_msg<MigrateCommit>();
    c->move_id = m.move_id;
    c->key = mv.key;
    c->src = mv.src;
    c->dst = mv.dst;
    const MessagePtr shared = std::move(c);
    for (DcId d = 0; d < rt_.topo.num_dcs(); ++d)
      for (PartitionId p : rt_.topo.partitions_at(d)) {
        const NodeId n = rt_.dir.server(d, p);
        if (n != self_) send(n, shared);
      }
  }
  MigrateCommit self_commit;
  self_commit.move_id = m.move_id;
  self_commit.key = mv.key;
  self_commit.src = mv.src;
  self_commit.dst = mv.dst;
  handle_migrate_commit(self_, self_commit);
}

void ServerBase::handle_migrate_commit(NodeId /*from*/, const MigrateCommit& m) {
  PARIS_CHECK_MSG(fence_ != nullptr && fence_->move_id == m.move_id, "commit without fence");
  PARIS_DCHECK(fence_->key == m.key);
  override_[m.key] = m.dst;
  // Unfence BEFORE the replay (the finish_recovery pattern): replayed
  // messages must take the normal dispatch path and route via the override.
  const std::unique_ptr<FenceState> fence = std::move(fence_);
  for (const auto& [from_node, bytes] : fence->parked) {
    Decoder d(bytes.data(), bytes.size());
    const MessagePtr mm = decode_message_pooled(d, rt_.net.msg_pool(self_));
    on_message(from_node, *mm);
  }
  auto ack = make_msg<MigrateCommitAck>();
  ack->move_id = m.move_id;
  ack->dc = dc_;
  ack->partition = partition_;
  if (controller_node() == self_) {
    handle_migrate_commit_ack(self_, *ack);
  } else {
    send(controller_node(), std::move(ack));
  }
}

void ServerBase::handle_migrate_commit_ack(NodeId /*from*/, const MigrateCommitAck& m) {
  PARIS_CHECK_MSG(ctrl_ != nullptr && ctrl_->move_id == m.move_id, "ack for unknown move");
  PARIS_CHECK(ctrl_->acks_pending > 0);
  if (--ctrl_->acks_pending > 0) return;
  ++stats_.keys_migrated;
  start_next_move();
}

// ---------------------------------------------------------------------------
// Crash recovery (DESIGN §11).
// ---------------------------------------------------------------------------

void ServerBase::set_incarnation(std::uint32_t epoch) {
  PARIS_CHECK_MSG(epoch < 256, "incarnation epoch exceeds the TxId salt space");
  incarnation_ = epoch;
  next_tx_seq_ = 1 + (epoch << 24);
}

void ServerBase::remember_commit(TxId tx, Timestamp ct) {
  recent_commits_.emplace_back(tx, ct);
  recent_commit_ct_.emplace(tx, ct);
  if (recent_commits_.size() > kRecentCommitCap) {
    recent_commit_ct_.erase(recent_commits_.front().first);
    recent_commits_.pop_front();
  }
}

void ServerBase::fence_lost_coordinators(const std::vector<NodeId>& nodes) {
  for (auto it = prepared_.begin(); it != prepared_.end();) {
    const NodeId coord = it->first.coordinator();
    if (std::find(nodes.begin(), nodes.end(), coord) != nodes.end()) {
      prepared_pts_.erase(it->second.pt);
      it = prepared_.erase(it);
      ++stats_.prepared_fenced;
    } else {
      ++it;
    }
  }
}

/// Record layout: [k][kind u8][ut][tx][sr][kind==0 ? bytes v : zigzag num].
/// The original source DC travels with every version so the store's total
/// version order — (ut, tx, sr) — is preserved bit-exactly on the requester.
void ServerBase::encode_version_record(Encoder& e, Key k, const store::Version& ver) {
  e.put_varint(k);
  e.put_u8(ver.kind);
  e.put_varint(ver.ut.raw);
  e.put_varint(ver.tx.raw);
  e.put_varint(ver.sr);
  if (ver.kind != 0) {
    e.put_varint(wire::detail::zigzag(ver.numeric()));
  } else {
    e.put_bytes(ver.v);
  }
}

void ServerBase::install_records(Decoder& d) {
  const std::uint64_t n = d.get_varint();
  std::string scratch;
  for (std::uint64_t i = 0; i < n; ++i) {
    const Key k = d.get_varint();
    const std::uint8_t kind = d.get_u8();
    const Timestamp ut{d.get_varint()};
    const TxId tx{d.get_varint()};
    const DcId sr = static_cast<DcId>(d.get_varint());
    if (kind != 0) {
      const std::int64_t delta = wire::detail::unzigzag(d.get_varint());
      store_.apply(k, Value{}, delta, ut, tx, sr, kind);
    } else {
      d.get_bytes_into(scratch);
      store_.apply(k, scratch, 0, ut, tx, sr, kind);
    }
    // No note_applied / tracer on_applied here: these versions were applied
    // (and traced) by their original replicas; recovery only rebuilds state.
  }
}

void ServerBase::park_for_join() {
  PARIS_CHECK_MSG(rec_ == nullptr, "park_for_join after recovery started");
  rec_ = std::make_unique<RecoveryState>();
  rec_->parked = true;
  // donor stays kInvalidNode: buffer everything, transfer nothing — yet.
  // start_recovery() arms the transfer in place when the join view installs.
}

void ServerBase::start_recovery(NodeId donor, std::vector<NodeId> peers,
                                std::function<void()> on_done) {
  if (rec_ != nullptr && rec_->parked) {
    // Elastic join: the parked buffer (everything since deployment start)
    // carries over; the transfer phases begin now, and the finish ticks the
    // HLC past the transferred vv so post-join commits clear every snapshot
    // that stabilized while this DC was out.
    rec_->parked = false;
    rec_->join_floor = true;
  } else {
    PARIS_CHECK_MSG(rec_ == nullptr, "recovery already in progress");
    rec_ = std::make_unique<RecoveryState>();
  }
  rec_->donor = donor;
  rec_->peers = std::move(peers);
  rec_->on_done = std::move(on_done);
  auto req = make_msg<SnapshotRequest>();
  req->partition = partition_;
  req->epoch = incarnation_;
  send(donor, std::move(req));
}

void ServerBase::handle_snapshot_request(NodeId from, const SnapshotRequest& m) {
  PARIS_DCHECK(m.partition == partition_);
  (void)m;
  // One blob: header (HLC, vv, protocol extras), then the whole store.
  std::vector<std::uint8_t> blob;
  Encoder e(blob);
  e.put_varint(hlc_.value().raw);
  e.put_varint(vv_.size());
  for (Timestamp t : vv_) e.put_varint(t.raw);
  encode_recovery_extras(e);
  std::uint64_t nrec = 0;
  store_.for_each_chain(
      [&](Key, const std::vector<store::Version>& chain) { nrec += chain.size(); });
  e.put_varint(nrec);
  store_.for_each_chain([&](Key k, const std::vector<store::Version>& chain) {
    for (const auto& ver : chain) encode_version_record(e, k, ver);
  });

  // Stream it in bounded chunks; the reliable channel is FIFO, so seq order
  // is preserved and the requester reassembles by concatenation.
  constexpr std::size_t kChunkBytes = 256 * 1024;
  std::uint32_t seq = 0;
  std::size_t off = 0;
  do {
    const std::size_t n = std::min(kChunkBytes, blob.size() - off);
    auto chunk = make_msg<SnapshotChunk>();
    chunk->partition = partition_;
    chunk->seq = seq++;
    chunk->last = (off + n == blob.size()) ? 1 : 0;
    chunk->payload.assign(blob.begin() + static_cast<std::ptrdiff_t>(off),
                          blob.begin() + static_cast<std::ptrdiff_t>(off + n));
    off += n;
    send(from, std::move(chunk));
  } while (off < blob.size());
  ++stats_.snapshots_served;
}

void ServerBase::handle_snapshot_chunk(NodeId from, const SnapshotChunk& m) {
  if (rec_ == nullptr || from != rec_->donor) return;  // unsolicited: ignore
  PARIS_CHECK_MSG(m.seq == rec_->next_chunk, "snapshot chunk out of order on a FIFO channel");
  ++rec_->next_chunk;
  rec_->snap_buf.insert(rec_->snap_buf.end(), m.payload.begin(), m.payload.end());
  if (m.last == 0) return;

  // Install: header, extras, then every version record.
  Decoder d(rec_->snap_buf);
  hlc_.observe(clock_us(), Timestamp{d.get_varint()});
  const std::uint64_t nvv = d.get_varint();
  PARIS_CHECK_MSG(nvv == vv_.size(), "snapshot vv arity mismatch");
  for (std::uint64_t i = 0; i < nvv; ++i) {
    const Timestamp t{d.get_varint()};
    if (vv_[i] < t) vv_[i] = t;
  }
  decode_recovery_extras(d);
  install_records(d);
  PARIS_CHECK_MSG(d.done(), "trailing bytes after snapshot records");
  rec_->snap_buf.clear();
  rec_->snap_buf.shrink_to_fit();
  on_vv_advanced();

  // Phase 2: catch-up deltas from the remaining replicas — anything they
  // applied after the donor's snapshot line (or that only they ever had).
  // The gate (elastic join, sockets) defers this until every peer rank has
  // advertised the join view, so the watermarks peers answer with are
  // post-cutover; without a gate it runs inline.
  auto resume = [this] {
    if (rec_ == nullptr) return;  // raced with an external finish
    if (rec_->peers.empty()) {
      finish_recovery();
      return;
    }
    rec_->catchup_pending = rec_->peers.size();
    for (NodeId peer : rec_->peers) request_catchup(peer);
  };
  if (catchup_gate_) {
    catchup_gate_(std::move(resume));
  } else {
    resume();
  }
}

void ServerBase::request_catchup(NodeId peer) {
  auto req = make_msg<CatchUpRequest>();
  req->partition = partition_;
  req->epoch = incarnation_;
  req->vv.reserve(vv_.size());
  for (Timestamp t : vv_) req->vv.push_back(t.raw);
  send(peer, std::move(req));
}

void ServerBase::handle_catchup_request(NodeId from, const CatchUpRequest& m) {
  PARIS_DCHECK(m.partition == partition_);
  // Ship every version above the requester's applied watermark for the
  // version's source replica; records are idempotent, so over-shipping
  // (e.g. for a version the snapshot already carried) is harmless.
  constexpr std::size_t kChunkBytes = 256 * 1024;
  std::vector<std::uint8_t> body;
  Encoder be(body);
  std::uint64_t count = 0;
  auto emit = [&](bool last) {
    auto chunk = make_msg<CatchUpChunk>();
    chunk->partition = partition_;
    chunk->last = last ? 1 : 0;
    std::vector<std::uint8_t> payload;
    Encoder pe(payload);
    pe.put_varint(count);
    payload.insert(payload.end(), body.begin(), body.end());
    if (last) {
      Encoder tail(payload);
      tail.put_varint(vv_.size());
      for (Timestamp t : vv_) tail.put_varint(t.raw);
    }
    chunk->payload = std::move(payload);
    send(from, std::move(chunk));
    body.clear();
    count = 0;
  };
  store_.for_each_chain([&](Key k, const std::vector<store::Version>& chain) {
    for (const auto& ver : chain) {
      const ReplicaIdx slot = rt_.topo.replica_idx(ver.sr, partition_);
      const std::uint64_t watermark =
          (slot != kInvalidReplica && slot < m.vv.size()) ? m.vv[slot] : 0;
      if (ver.ut.raw <= watermark) continue;  // requester already has it
      encode_version_record(be, k, ver);
      ++count;
      if (body.size() >= kChunkBytes) emit(false);
    }
  });
  emit(true);  // always sent: the last chunk carries our version vector
  ++stats_.catchups_served;
}

void ServerBase::handle_catchup_chunk(NodeId from, const CatchUpChunk& m) {
  PARIS_DCHECK(m.partition == partition_);
  Decoder d(m.payload);
  install_records(d);
  if (m.last != 0) {
    const std::uint64_t nvv = d.get_varint();
    bool advanced = false;
    for (std::uint64_t i = 0; i < nvv; ++i) {
      const Timestamp t{d.get_varint()};
      if (i < vv_.size() && vv_[i] < t) {
        vv_[i] = t;
        advanced = true;
      }
    }
    if (advanced) on_vv_advanced();
    if (rec_ != nullptr && rec_->catchup_pending > 0 &&
        std::find(rec_->peers.begin(), rec_->peers.end(), from) != rec_->peers.end()) {
      if (--rec_->catchup_pending == 0) finish_recovery();
    }
  }
  PARIS_CHECK_MSG(d.done(), "trailing bytes after catch-up records");
}

void ServerBase::finish_recovery() {
  if (rec_->join_floor) {
    // Elastic join HLC floor (the §14 migration argument): every vv entry we
    // now hold is >= the cluster's frozen stabilization point at cutover, so
    // ticking the HLC past max(vv_) guarantees every commit this server
    // proposes post-join lands strictly above any snapshot that stabilized
    // while its DC was out — those snapshots stay exact forever.
    Timestamp floor;
    for (Timestamp t : vv_) floor = std::max(floor, t);
    hlc_.observe(clock_us(), floor.next());
  }
  // Clear rec_ BEFORE the replay: recovering() must read false so the held
  // messages take the normal dispatch path (and any Snapshot/CatchUp request
  // among them is served, not re-buffered).
  const std::unique_ptr<RecoveryState> rec = std::move(rec_);
  for (const auto& [from, bytes] : rec->held) {
    Decoder d(bytes.data(), bytes.size());
    const MessagePtr m = decode_message_pooled(d, rt_.net.msg_pool(self_));
    on_message(from, *m);
  }
  if (rec->on_done) rec->on_done();
}

}  // namespace paris::proto
