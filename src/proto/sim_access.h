#pragma once
// Sim-specific access beneath a Deployment, for tests, examples and fault
// injection. The protocol layer itself never touches these: only code that
// explicitly needs the deterministic simulator (stepping, pausing nodes,
// partitioning DCs) reaches through here, and it aborts on a non-sim
// backend.

#include "proto/deployment.h"
#include "runtime/sim_runtime.h"

namespace paris::proto {

inline sim::Simulation& sim_of(Deployment& d) {
  return runtime::SimBackend::of(d.backend()).sim();
}

inline sim::Network& net_of(Deployment& d) {
  return runtime::SimBackend::of(d.backend()).net();
}

}  // namespace paris::proto
