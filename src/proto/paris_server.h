#pragma once
// The PaRiS partition server (§III-B, §IV).
//
// Differences from the base server, all centered on the Universal Stable
// Time (UST):
//  * transactions are assigned the server's UST as snapshot — a snapshot
//    already installed by every DC, so every read slice is served
//    immediately (non-blocking reads);
//  * commit timestamps are proposed strictly above both the HLC (which was
//    ticked past ht) and the local UST, so no version can ever join an
//    already-stable snapshot retroactively;
//  * servers participate in the two-level stabilization gossip (Alg. 4
//    lines 34-38): a per-DC aggregation tree computes the DC's Global
//    Stable Time (GST = min over local servers of min(VV)); DC roots
//    exchange GSTs; every ΔU the root takes the global minimum as the UST
//    and disseminates it down the tree. The same gossip aggregates the
//    oldest active snapshot to drive storage GC (§IV-B).

#include <queue>

#include "cluster/membership.h"
#include "proto/server_base.h"

namespace paris::proto {

class ParisServer : public ServerBase {
 public:
  ParisServer(Runtime& rt, DcId dc, PartitionId partition);

  void start_timers(Rng& phase_rng) override;

  /// This server's universal stable time ust_n^m.
  Timestamp ust() const { return ust_; }
  /// Snapshot watermark below which storage GC prunes (aggregated oldest
  /// active snapshot).
  Timestamp gc_watermark_value() const { return gc_watermark_; }
  bool is_gossip_root() const { return tree_.is_root(local_idx_); }
  Timestamp stable_snapshot() const override { return ust_; }

 protected:
  Timestamp assign_snapshot(Timestamp client_seen) override;
  void handle_read_slice(NodeId from, const wire::ReadSliceReq& req) override;
  Timestamp propose_ts(const wire::PrepareReq& req) override;
  void observe_remote_snapshot(Timestamp snap) override;
  Timestamp gc_watermark() const override { return gc_watermark_; }
  void note_applied(TxId tx, Timestamp ct) override;

  void handle_gossip_up(NodeId from, const wire::GossipUp& m) override;
  void handle_gossip_root(NodeId from, const wire::GossipRoot& m) override;
  void handle_ust_down(NodeId from, const wire::UstDown& m) override;

  // Snapshot extras (DESIGN §11): a respawned PaRiS server inherits the
  // donor's UST and GC watermark instead of starting from zero — its
  // stabilization gossip would eventually recompute both, but until then a
  // zero UST would assign unreadably stale snapshots to new transactions.
  void encode_recovery_extras(wire::Encoder& e) const override;
  void decode_recovery_extras(wire::Decoder& d) override;

 private:
  void resolve_tree_nodes();
  void gst_tick();  ///< every ΔG: aggregate minima up the tree / across roots
  void ust_tick();  ///< every ΔU (root only): UST = min of GSTs, disseminate
  void set_ust(Timestamp t);

  Timestamp ust_;
  Timestamp gc_watermark_;

  // Stabilization tree position.
  cluster::StabTree tree_;
  std::uint32_t local_idx_ = 0;
  NodeId parent_node_ = kInvalidNode;
  std::vector<NodeId> child_nodes_;
  std::unordered_map<NodeId, std::size_t> child_slot_;
  std::vector<Timestamp> child_min_;     ///< last GossipUp.min_vv per child
  std::vector<Timestamp> child_oldest_;  ///< last GossipUp.oldest_active per child
  bool tree_resolved_ = false;

  // Root-only state: last GST / oldest-active reported per DC.
  std::vector<Timestamp> gsv_;
  std::vector<Timestamp> oldest_by_dc_;
  std::vector<NodeId> dc_roots_;

  // Apply->visible tracking for sampled transactions (Fig. 4): a tx's
  // writes become readable here once the UST passes its ct.
  using VisEntry = std::pair<Timestamp, TxId>;
  std::priority_queue<VisEntry, std::vector<VisEntry>, std::greater<>> pending_visibility_;

  runtime::TimerHandle gst_timer_;
  runtime::TimerHandle ust_timer_;
};

}  // namespace paris::proto
