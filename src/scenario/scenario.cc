#include "scenario/scenario.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/rng.h"

namespace paris::scenario {

const char* scenario_event_kind_name(ScenarioEvent::Kind k) {
  switch (k) {
    case ScenarioEvent::Kind::kPartition:
      return "partition";
    case ScenarioEvent::Kind::kWan:
      return "wan";
    case ScenarioEvent::Kind::kChaos:
      return "chaos";
    case ScenarioEvent::Kind::kFuzz:
      return "fuzz";
    case ScenarioEvent::Kind::kSkew:
      return "skew";
    case ScenarioEvent::Kind::kKill:
      return "kill";
    case ScenarioEvent::Kind::kJoin:
      return "join";
    case ScenarioEvent::Kind::kLeave:
      return "leave";
  }
  return "?";
}

namespace {

/// Distinct DC pair, order-sensitive (WAN episodes are directional).
void draw_dc_pair(Rng& rng, std::uint32_t dcs, DcId& a, DcId& b) {
  a = static_cast<DcId>(rng.next_below(dcs));
  b = static_cast<DcId>(rng.next_below(dcs - 1));
  if (b >= a) ++b;
}

std::uint64_t ms(std::uint64_t v) { return v * 1000; }

}  // namespace

Scenario generate_scenario(std::uint64_t seed, const ScenarioOptions& opts) {
  // The Rng seed is salted so scenario draws never correlate with the
  // experiment seed the scenario itself carries.
  Rng rng(splitmix64(seed ^ 0x7363656e6172696full));  // "scenario"
  const std::uint64_t ts = opts.time_scale != 0 ? opts.time_scale : 1;

  Scenario s;
  s.seed = seed;
  s.system = opts.system;
  s.runtime = opts.runtime;
  s.num_dcs = 3;
  s.num_partitions = static_cast<std::uint32_t>(rng.range(4, 6));
  s.replication = 2;
  s.threads_per_process = 1;
  s.socket_processes = 3;
  s.warmup_us = ms(50) * ts;
  s.measure_us = ms(rng.range(600, 900)) * ts;
  s.latency_model = rng.chance(0.5) ? runtime::LatencyModelKind::kJitter
                                    : runtime::LatencyModelKind::kNone;
  s.inter_dc_us = ms(rng.range(2, 8));
  s.rto_us = ms(10) * ts;
  s.max_rto_us = ms(40) * ts;

  // Fault windows live in [150ms, ~70% of measure] (scaled): everything
  // heals with a clean tail, so the checker sees convergence, not a run
  // that ended mid-blackout.
  const std::uint64_t lo = s.warmup_us + ms(100) * ts;
  const std::uint64_t hi = s.warmup_us + s.measure_us * 7 / 10;

  const std::uint64_t partitions = rng.range(0, 2);
  for (std::uint64_t i = 0; i < partitions; ++i) {
    ScenarioEvent e;
    e.kind = ScenarioEvent::Kind::kPartition;
    draw_dc_pair(rng, s.num_dcs, e.partition.a, e.partition.b);
    if (e.partition.a > e.partition.b) std::swap(e.partition.a, e.partition.b);
    e.partition.isolate_all = rng.chance(0.2);
    e.partition.start_us = rng.range(lo, hi - ms(150) * ts);
    e.partition.end_us = e.partition.start_us + ms(rng.range(80, 150)) * ts;
    s.events.push_back(e);
  }

  const std::uint64_t wans = rng.range(0, 3);
  for (std::uint64_t i = 0; i < wans; ++i) {
    ScenarioEvent e;
    e.kind = ScenarioEvent::Kind::kWan;
    draw_dc_pair(rng, s.num_dcs, e.wan.a, e.wan.b);
    e.wan.symmetric = rng.chance(0.4);
    e.wan.start_us = rng.range(lo, hi - ms(200) * ts);
    e.wan.end_us = e.wan.start_us + ms(rng.range(150, 300)) * ts;
    // Mid-run degradation: delay ramps from near the healthy baseline up to
    // a visibly degraded one-way time (asymmetric unless symmetric drawn).
    e.wan.extra_delay_start_us = ms(rng.range(0, 3));
    e.wan.extra_delay_end_us = ms(rng.range(5, 20));
    // Bandwidth cap >= 4 bytes/us (4 MB/s): tight enough to queue bursts,
    // loose enough that the pipe drains within the episode.
    e.wan.bandwidth_bytes_per_us =
        rng.chance(0.5) ? static_cast<std::uint32_t>(rng.range(4, 16)) : 0;
    if (rng.chance(0.6)) {  // Gilbert–Elliott burst loss
      e.wan.p_good_bad = 0.05 + rng.next_double() * 0.25;
      e.wan.p_bad_good = 0.3 + rng.next_double() * 0.5;
      e.wan.loss_good = rng.next_double() * 0.02;
      e.wan.loss_bad = 0.2 + rng.next_double() * 0.5;
    }
    if (rng.chance(0.3)) e.wan.duplicate_p = rng.next_double() * 0.2;
    s.events.push_back(e);
  }

  if (rng.chance(0.5)) {
    ScenarioEvent e;
    e.kind = ScenarioEvent::Kind::kChaos;
    e.chaos_reorder_p = rng.next_double() * 0.05;
    e.chaos_drop_p = rng.next_double() * 0.04;
    e.chaos_duplicate_p = rng.next_double() * 0.1;
    s.events.push_back(e);
  }

  if (rng.chance(0.6)) {
    ScenarioEvent e;
    e.kind = ScenarioEvent::Kind::kFuzz;
    e.fuzz_corrupt_p = 0.002 + rng.next_double() * 0.018;
    e.fuzz_replay_p = 0.002 + rng.next_double() * 0.018;
    s.events.push_back(e);
  }

  if (rng.chance(0.5)) {
    ScenarioEvent e;
    e.kind = ScenarioEvent::Kind::kSkew;
    e.skew_ntp_error_us = static_cast<std::int64_t>(rng.range(500, 5'000));
    e.skew_drift_ppm = static_cast<double>(rng.range(0, 200));
    s.events.push_back(e);
  }

  bool drew_kill = false;
  if (opts.runtime == runtime::Kind::kSockets && opts.allow_kill && rng.chance(0.35)) {
    ScenarioEvent e;
    e.kind = ScenarioEvent::Kind::kKill;
    // Never rank 0 (it hosts DC 0's coordinator share of most traffic and
    // killing it exercises nothing the other ranks don't); the kill lands
    // mid-measurement so the respawn rejoins under load.
    e.kill_rank = static_cast<std::int32_t>(rng.range(1, s.socket_processes - 1));
    e.kill_after_ms = rng.range(200, 500) * ts;
    s.events.push_back(e);
    drew_kill = true;
  }

  // Elastic membership: only when no kill was drawn — supervised respawn
  // and elastic membership are mutually exclusive in the deployment, and a
  // generated schedule must always be runnable. "Rank" addresses a socket
  // process on sockets and a DC directly on threads; never rank 0 (it
  // always stays to anchor the original view and donate state).
  if (opts.allow_membership && !drew_kill && rng.chance(0.3)) {
    const std::uint32_t ranks = opts.runtime == runtime::Kind::kSockets
                                    ? s.socket_processes
                                    : s.num_dcs;
    ScenarioEvent e;
    e.memb_rank = static_cast<std::uint32_t>(rng.range(1, ranks - 1));
    if (rng.chance(0.6)) {
      // Join early enough that the joined DC serves a long measured tail.
      e.kind = ScenarioEvent::Kind::kJoin;
      e.memb_at_ms = rng.range(150, 400) * ts;
    } else {
      // Leave late enough that the leaver first contributes real history.
      e.kind = ScenarioEvent::Kind::kLeave;
      e.memb_at_ms = rng.range(400, 600) * ts;
    }
    s.events.push_back(e);
  }
  return s;
}

void apply_scenario(const Scenario& s, workload::ExperimentConfig& cfg) {
  cfg.system = s.system;
  cfg.runtime = s.runtime;
  cfg.worker_threads = 2;
  cfg.num_dcs = s.num_dcs;
  cfg.num_partitions = s.num_partitions;
  cfg.replication = s.replication;
  cfg.threads_per_process = s.threads_per_process;
  cfg.workload.ops_per_tx = 8;
  cfg.workload.writes_per_tx = 2;
  cfg.workload.keys_per_partition = 100;
  cfg.warmup_us = s.warmup_us;
  cfg.measure_us = s.measure_us;
  cfg.seed = s.seed;
  cfg.check_consistency = true;
  cfg.aws_latency = false;
  cfg.uniform_inter_dc_us = s.inter_dc_us;
  cfg.latency_model = s.latency_model;
  cfg.codec = sim::CodecMode::kBytes;
  // The scenario contract: ANY schedule must converge checker-clean, which
  // needs at-least-once delivery under the fault load.
  cfg.reliable = true;
  cfg.reliable_cfg.rto_us = s.rto_us;
  cfg.reliable_cfg.max_rto_us = s.max_rto_us;
  if (s.runtime == runtime::Kind::kSockets) {
    cfg.socket.processes = s.socket_processes;
  }
  for (const auto& e : s.events) {
    switch (e.kind) {
      case ScenarioEvent::Kind::kPartition:
        cfg.partitions.windows.push_back(e.partition);
        break;
      case ScenarioEvent::Kind::kWan:
        cfg.wan.episodes.push_back(e.wan);
        break;
      case ScenarioEvent::Kind::kChaos:
        cfg.chaos.reorder_p = std::max(cfg.chaos.reorder_p, e.chaos_reorder_p);
        cfg.chaos.reorder_stall_us = s.rto_us;
        cfg.chaos.drop_p = std::max(cfg.chaos.drop_p, e.chaos_drop_p);
        cfg.chaos.duplicate_p = std::max(cfg.chaos.duplicate_p, e.chaos_duplicate_p);
        cfg.chaos.drop_class = runtime::ChaosDropClass::kAll;  // reliable is on
        break;
      case ScenarioEvent::Kind::kFuzz:
        cfg.fuzz.corrupt_p = std::max(cfg.fuzz.corrupt_p, e.fuzz_corrupt_p);
        cfg.fuzz.replay_p = std::max(cfg.fuzz.replay_p, e.fuzz_replay_p);
        break;
      case ScenarioEvent::Kind::kSkew:
        cfg.protocol.ntp_error_us = e.skew_ntp_error_us;
        cfg.protocol.drift_ppm = e.skew_drift_ppm;
        break;
      case ScenarioEvent::Kind::kKill:
        cfg.socket.supervise = true;
        cfg.socket.kill_rank = e.kill_rank;
        cfg.socket.kill_after_ms = e.kill_after_ms;
        // DESIGN §11: a SIGKILL can separate a multi-DC transaction's
        // coordinator from its replicated writes mid-2PC; kill schedules run
        // single-DC transactions so every commit is atomic w.r.t. the crash
        // (same constraint as the recovery acceptance tests).
        cfg.workload.multi_dc_ratio = 0.0;
        break;
      case ScenarioEvent::Kind::kJoin:
      case ScenarioEvent::Kind::kLeave: {
        // Exclusive with kKill by construction (the generator never draws
        // both; the deployment rejects membership + supervise).
        proto::MembershipEvent ev;
        ev.join = e.kind == ScenarioEvent::Kind::kJoin;
        ev.rank = e.memb_rank;
        ev.at_ms = e.memb_at_ms;
        cfg.membership.events.push_back(ev);
        break;
      }
    }
  }
}

void scale_time(Scenario& s, std::uint64_t k) {
  if (k <= 1) return;
  s.warmup_us *= k;
  s.measure_us *= k;
  s.rto_us *= k;
  s.max_rto_us *= k;
  for (auto& e : s.events) {
    switch (e.kind) {
      case ScenarioEvent::Kind::kPartition:
        e.partition.start_us *= k;
        e.partition.end_us *= k;
        break;
      case ScenarioEvent::Kind::kWan:
        // Window scales; delay magnitudes and bandwidth stay — they model
        // the link, not the (slowed) execution.
        e.wan.start_us *= k;
        e.wan.end_us *= k;
        break;
      case ScenarioEvent::Kind::kKill:
        e.kill_after_ms *= k;
        break;
      case ScenarioEvent::Kind::kJoin:
      case ScenarioEvent::Kind::kLeave:
        e.memb_at_ms *= k;
        break;
      case ScenarioEvent::Kind::kChaos:
      case ScenarioEvent::Kind::kFuzz:
      case ScenarioEvent::Kind::kSkew:
        break;  // probabilities and clock error are time-free
    }
  }
}

namespace {
void put_f(std::ostringstream& o, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  o << buf;
}
}  // namespace

std::string encode_scenario(const Scenario& s) {
  std::ostringstream o;
  o << "# paris scenario v1\n";
  o << "seed " << s.seed << '\n';
  o << "system " << (s.system == proto::System::kBpr ? "bpr" : "paris") << '\n';
  o << "runtime " << (s.runtime == runtime::Kind::kSockets ? "sockets" : "threads")
    << '\n';
  o << "dcs " << s.num_dcs << '\n';
  o << "partitions " << s.num_partitions << '\n';
  o << "replication " << s.replication << '\n';
  o << "threads_per_process " << s.threads_per_process << '\n';
  o << "socket_processes " << s.socket_processes << '\n';
  o << "warmup_us " << s.warmup_us << '\n';
  o << "measure_us " << s.measure_us << '\n';
  o << "inter_dc_us " << s.inter_dc_us << '\n';
  o << "latency_model " << static_cast<std::uint32_t>(s.latency_model) << '\n';
  o << "rto_us " << s.rto_us << '\n';
  o << "max_rto_us " << s.max_rto_us << '\n';
  for (const auto& e : s.events) {
    o << "event " << scenario_event_kind_name(e.kind);
    switch (e.kind) {
      case ScenarioEvent::Kind::kPartition:
        o << ' ' << e.partition.a << ' ' << e.partition.b << ' '
          << (e.partition.isolate_all ? 1 : 0) << ' ' << e.partition.start_us << ' '
          << e.partition.end_us;
        break;
      case ScenarioEvent::Kind::kWan:
        o << ' ' << e.wan.a << ' ' << e.wan.b << ' ' << (e.wan.symmetric ? 1 : 0) << ' '
          << e.wan.start_us << ' ' << e.wan.end_us << ' ' << e.wan.extra_delay_start_us
          << ' ' << e.wan.extra_delay_end_us << ' ' << e.wan.bandwidth_bytes_per_us;
        for (const double v : {e.wan.p_good_bad, e.wan.p_bad_good, e.wan.loss_good,
                               e.wan.loss_bad, e.wan.duplicate_p}) {
          o << ' ';
          put_f(o, v);
        }
        break;
      case ScenarioEvent::Kind::kChaos:
        for (const double v : {e.chaos_reorder_p, e.chaos_drop_p, e.chaos_duplicate_p}) {
          o << ' ';
          put_f(o, v);
        }
        break;
      case ScenarioEvent::Kind::kFuzz:
        for (const double v : {e.fuzz_corrupt_p, e.fuzz_replay_p}) {
          o << ' ';
          put_f(o, v);
        }
        break;
      case ScenarioEvent::Kind::kSkew:
        o << ' ' << e.skew_ntp_error_us << ' ';
        put_f(o, e.skew_drift_ppm);
        break;
      case ScenarioEvent::Kind::kKill:
        o << ' ' << e.kill_rank << ' ' << e.kill_after_ms;
        break;
      case ScenarioEvent::Kind::kJoin:
      case ScenarioEvent::Kind::kLeave:
        o << ' ' << e.memb_rank << ' ' << e.memb_at_ms;
        break;
    }
    o << '\n';
  }
  return o.str();
}

bool decode_scenario(const std::string& text, Scenario& out) {
  Scenario s;
  std::istringstream in(text);
  std::string key;
  while (in >> key) {
    if (key[0] == '#') {  // comment: eat the rest of the line
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    if (key == "event") {
      std::string kind;
      if (!(in >> kind)) return false;
      ScenarioEvent e;
      if (kind == "partition") {
        e.kind = ScenarioEvent::Kind::kPartition;
        std::uint32_t iso = 0;
        if (!(in >> e.partition.a >> e.partition.b >> iso >> e.partition.start_us >>
              e.partition.end_us)) {
          return false;
        }
        e.partition.isolate_all = iso != 0;
      } else if (kind == "wan") {
        e.kind = ScenarioEvent::Kind::kWan;
        std::uint32_t sym = 0;
        if (!(in >> e.wan.a >> e.wan.b >> sym >> e.wan.start_us >> e.wan.end_us >>
              e.wan.extra_delay_start_us >> e.wan.extra_delay_end_us >>
              e.wan.bandwidth_bytes_per_us >> e.wan.p_good_bad >> e.wan.p_bad_good >>
              e.wan.loss_good >> e.wan.loss_bad >> e.wan.duplicate_p)) {
          return false;
        }
        e.wan.symmetric = sym != 0;
      } else if (kind == "chaos") {
        e.kind = ScenarioEvent::Kind::kChaos;
        if (!(in >> e.chaos_reorder_p >> e.chaos_drop_p >> e.chaos_duplicate_p)) {
          return false;
        }
      } else if (kind == "fuzz") {
        e.kind = ScenarioEvent::Kind::kFuzz;
        if (!(in >> e.fuzz_corrupt_p >> e.fuzz_replay_p)) return false;
      } else if (kind == "skew") {
        e.kind = ScenarioEvent::Kind::kSkew;
        if (!(in >> e.skew_ntp_error_us >> e.skew_drift_ppm)) return false;
      } else if (kind == "kill") {
        e.kind = ScenarioEvent::Kind::kKill;
        if (!(in >> e.kill_rank >> e.kill_after_ms)) return false;
      } else if (kind == "join" || kind == "leave") {
        e.kind = kind == "join" ? ScenarioEvent::Kind::kJoin
                                : ScenarioEvent::Kind::kLeave;
        if (!(in >> e.memb_rank >> e.memb_at_ms)) return false;
      } else {
        return false;  // unknown event kind: version skew, fail loudly
      }
      s.events.push_back(e);
      continue;
    }
    std::string val;
    if (!(in >> val)) return false;
    const std::uint64_t u = std::strtoull(val.c_str(), nullptr, 10);
    if (key == "seed") {
      s.seed = u;
    } else if (key == "system") {
      if (val != "paris" && val != "bpr") return false;
      s.system = val == "bpr" ? proto::System::kBpr : proto::System::kParis;
    } else if (key == "runtime") {
      if (val != "threads" && val != "sockets") return false;
      s.runtime = val == "sockets" ? runtime::Kind::kSockets : runtime::Kind::kThreads;
    } else if (key == "dcs") {
      s.num_dcs = static_cast<std::uint32_t>(u);
    } else if (key == "partitions") {
      s.num_partitions = static_cast<std::uint32_t>(u);
    } else if (key == "replication") {
      s.replication = static_cast<std::uint32_t>(u);
    } else if (key == "threads_per_process") {
      s.threads_per_process = static_cast<std::uint32_t>(u);
    } else if (key == "socket_processes") {
      s.socket_processes = static_cast<std::uint32_t>(u);
    } else if (key == "warmup_us") {
      s.warmup_us = u;
    } else if (key == "measure_us") {
      s.measure_us = u;
    } else if (key == "inter_dc_us") {
      s.inter_dc_us = u;
    } else if (key == "latency_model") {
      s.latency_model = static_cast<runtime::LatencyModelKind>(u);
    } else if (key == "rto_us") {
      s.rto_us = u;
    } else if (key == "max_rto_us") {
      s.max_rto_us = u;
    } else {
      return false;  // unknown key: reject rather than silently drop faults
    }
  }
  out = std::move(s);
  return true;
}

std::string describe(const Scenario& s) {
  std::ostringstream o;
  o << "seed=" << s.seed << ' ' << (s.system == proto::System::kBpr ? "bpr" : "paris")
    << '/' << (s.runtime == runtime::Kind::kSockets ? "sockets" : "threads") << ' '
    << s.num_dcs << "dc/" << s.num_partitions << "p run="
    << (s.warmup_us + s.measure_us) / 1000 << "ms events=[";
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    if (i != 0) o << ' ';
    o << scenario_event_kind_name(s.events[i].kind);
  }
  o << ']';
  return o.str();
}

Scenario shrink_scenario(Scenario s, const std::function<bool(const Scenario&)>& still_violates,
                         std::uint32_t* probes) {
  std::uint32_t n = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < s.events.size();) {
      Scenario cand = s;
      cand.events.erase(cand.events.begin() + static_cast<std::ptrdiff_t>(i));
      ++n;
      if (still_violates(cand)) {
        // The event was irrelevant to the violation: drop it for good and
        // retry the same index (the next event shifted into it).
        s = std::move(cand);
        changed = true;
      } else {
        ++i;
      }
    }
  }
  if (probes != nullptr) *probes = n;
  return s;
}

}  // namespace paris::scenario
