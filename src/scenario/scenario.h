#pragma once
// Scenario engine (DESIGN.md §13): seeded adversarial fault schedules.
//
// A Scenario is a fully materialized run plan — cluster shape, run window,
// and a list of fault EVENTS (DC partitions, WAN link episodes, chaos
// knobs, live channel fuzzing, clock skew, rank kills) — drawn once from a
// seed by generate_scenario(). The same seed always yields the same
// schedule, and every event executes through deterministic machinery (the
// counter-hash transport decorators, the scheduled partition windows, the
// launcher's timed kill), so a scenario reproduces per seed on both the
// thread backend and the multi-process socket backend.
//
// The flow the fuzz tooling builds on:
//
//   seed -> generate_scenario -> apply_scenario -> run_experiment
//        -> (violations?) -> shrink_scenario -> encode_scenario -> corpus
//
// Corpus files (tests/corpus/*.scenario) are the text encoding; they replay
// forever in CI via decode_scenario + run_experiment, so every schedule
// that ever found a bug keeps guarding against its return.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "workload/experiment.h"

namespace paris::scenario {

/// One fault event. A tagged struct rather than a class hierarchy: the
/// shrinker drops events wholesale and the codec writes them line-per-line,
/// both of which want flat value semantics.
struct ScenarioEvent {
  enum class Kind : std::uint8_t {
    kPartition,  ///< scheduled inter-DC blackout window
    kWan,        ///< WAN link episode (delay ramp / bandwidth / burst loss)
    kChaos,      ///< uniform reorder/drop/duplicate knobs, whole run
    kFuzz,       ///< live channel fuzzing (mutate-then-drop + replay)
    kSkew,       ///< NTP offset spread + clock drift across servers
    kKill,       ///< timed SIGKILL of a socket rank (supervised respawn)
    kJoin,       ///< elastic membership: a rank's DCs join mid-run
    kLeave,      ///< elastic membership: a rank's DCs drain and leave
  };
  Kind kind = Kind::kPartition;

  runtime::PartitionWindow partition{};  // kPartition
  runtime::WanLinkEpisode wan{};         // kWan
  double chaos_reorder_p = 0;            // kChaos...
  double chaos_drop_p = 0;
  double chaos_duplicate_p = 0;
  double fuzz_corrupt_p = 0;  // kFuzz...
  double fuzz_replay_p = 0;
  std::int64_t skew_ntp_error_us = 0;  // kSkew...
  double skew_drift_ppm = 0;
  std::int32_t kill_rank = -1;  // kKill...
  std::uint64_t kill_after_ms = 0;
  std::uint32_t memb_rank = 0;  // kJoin/kLeave...
  std::uint64_t memb_at_ms = 0;
};

const char* scenario_event_kind_name(ScenarioEvent::Kind k);

/// A materialized fault schedule plus the base run it applies to.
struct Scenario {
  std::uint64_t seed = 0;  ///< generator identity (recorded in corpus files)
  proto::System system = proto::System::kParis;
  /// kThreads or kSockets (the launcher side; children spawn themselves).
  runtime::Kind runtime = runtime::Kind::kThreads;
  std::uint32_t num_dcs = 3;
  std::uint32_t num_partitions = 4;
  std::uint32_t replication = 2;
  std::uint32_t threads_per_process = 1;
  std::uint32_t socket_processes = 3;  ///< sockets only
  std::uint64_t warmup_us = 50'000;
  std::uint64_t measure_us = 700'000;
  /// Uniform inter-DC one-way delay; kNone leaves delivery instant and the
  /// WAN episodes as the only delay source.
  std::uint64_t inter_dc_us = 5'000;
  runtime::LatencyModelKind latency_model = runtime::LatencyModelKind::kNone;
  /// Reliable-layer RTO for this run; the generator scales it with
  /// time_scale so sanitizer queueing delay never reads as loss.
  std::uint64_t rto_us = 10'000;
  std::uint64_t max_rto_us = 40'000;
  std::vector<ScenarioEvent> events;

  bool has_kill() const {
    for (const auto& e : events)
      if (e.kind == ScenarioEvent::Kind::kKill) return true;
    return false;
  }
  bool has_membership() const {
    for (const auto& e : events)
      if (e.kind == ScenarioEvent::Kind::kJoin || e.kind == ScenarioEvent::Kind::kLeave)
        return true;
    return false;
  }
};

/// Generator knobs. `time_scale` stretches every window (sanitizer builds);
/// `allow_kill` gates rank kills (they need the supervised socket launcher,
/// so threads scenarios never draw them regardless).
struct ScenarioOptions {
  proto::System system = proto::System::kParis;
  runtime::Kind runtime = runtime::Kind::kThreads;
  bool allow_kill = true;
  /// Gates elastic join/leave draws. A scenario never carries BOTH a kill
  /// and a membership event: supervised respawn and elastic membership are
  /// mutually exclusive in the deployment, so the generator keeps them so.
  bool allow_membership = true;
  std::uint64_t time_scale = 1;
};

/// Draws a full fault schedule from the seed. Pure: same (seed, opts) ->
/// same Scenario, on every platform.
Scenario generate_scenario(std::uint64_t seed, const ScenarioOptions& opts);

/// Folds the scenario into a runnable ExperimentConfig: cluster shape, the
/// run window, reliable delivery + consistency checking always on (the
/// whole point is that the checker stays green), and every event mapped
/// onto its transport decorator / launcher knob. Socket port/dir fields are
/// left for the caller.
void apply_scenario(const Scenario& s, workload::ExperimentConfig& cfg);

/// Multiplies every time field — run window, RTOs, event windows, the kill
/// delay — by k. Corpus files are pinned at real-time scale; sanitizer
/// builds replay them through scale_time so instrumentation slowdown never
/// reads as message loss. k=1 is the identity.
void scale_time(Scenario& s, std::uint64_t k);

/// Text codec (corpus files). Line-oriented, '#' comments, unknown keys
/// rejected so version skew fails loudly rather than silently dropping
/// faults. decode accepts what encode produces (round-trip exact).
std::string encode_scenario(const Scenario& s);
bool decode_scenario(const std::string& text, Scenario& out);

/// One-line human summary ("seed=42 paris/threads 3dc ev=[wan wan fuzz]").
std::string describe(const Scenario& s);

/// Greedy event-drop minimization: repeatedly tries removing each event,
/// keeping any removal after which `still_violates` holds, until a fixpoint
/// (no single removal preserves the violation). The predicate is injected
/// so tests can shrink without running experiments; the runner passes
/// run-and-check. Returns the shrunk scenario; `probes` (optional) counts
/// predicate invocations.
Scenario shrink_scenario(Scenario s, const std::function<bool(const Scenario&)>& still_violates,
                         std::uint32_t* probes = nullptr);

}  // namespace paris::scenario
