#pragma once
// Workload-aware data placement (DESIGN §14). Keys start on the hash
// baseline (Topology::partition_of). Each server feeds an online per-key
// access sketch (Space-Saving top-K with a per-key accessing-DC bitmask);
// sketches are periodically reported to a controller server which scores the
// current assignment the way the NuCut/parsa graph partitioners score cuts:
//
//   replicate_factor     count-weighted average, over sketched keys, of
//                        |D_k ∪ S_k| — the DCs that access the key plus the
//                        DCs that must store it. Lower = less cross-DC
//                        traffic per access.
//   load_relative_stddev stddev/mean of per-partition sketched load.
//                        Lower = better balance.
//
// The workload-aware policy then migrates the hottest keys to the partition
// whose replica set best covers the key's accessing DCs (ties: least loaded
// partition). Migration itself is the wire protocol in proto/server_base.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "cluster/membership.h"
#include "common/types.h"

namespace paris::placement {

enum class Policy : std::uint8_t {
  kHash = 0,           ///< static Topology::partition_of — the baseline
  kWorkloadAware = 1,  ///< sketch-driven online hot-key migration
};

const char* policy_name(Policy p);
bool parse_policy(const char* text, Policy* out);

/// Space-Saving top-K frequency sketch (Metwally et al.) with a per-key
/// accessing-DC bitmask. O(1) expected per note(); bounded memory.
class AccessSketch {
 public:
  struct Entry {
    Key key = 0;
    std::uint64_t count = 0;
    std::uint32_t dc_mask = 0;  ///< bit d set => DC d accessed the key
  };

  explicit AccessSketch(std::uint32_t capacity = 256);

  void note(Key k, DcId accessing_dc);
  /// Top `k` entries, highest count first (key ascending on ties, so the
  /// order is deterministic across runtimes).
  std::vector<Entry> top(std::uint32_t k) const;
  const std::vector<Entry>& entries() const { return entries_; }
  std::uint64_t total() const { return total_; }
  std::uint32_t capacity() const { return capacity_; }

  /// Controller side: fold a reported sketch into this one.
  void merge(const std::vector<Entry>& reported);
  void clear();

 private:
  std::uint32_t capacity_;
  std::vector<Entry> entries_;
  std::unordered_map<Key, std::uint32_t> index_;  // key -> entries_ slot
  std::uint64_t total_ = 0;
};

struct PlacementScore {
  double replicate_factor = 0;
  double load_relative_stddev = 0;
};

/// Scores an assignment over the sketched keys. `assign` maps key ->
/// partition (the hash baseline or hash + migration overrides).
PlacementScore score_assignment(const cluster::Topology& topo,
                                const std::vector<AccessSketch::Entry>& keys,
                                const std::function<PartitionId(Key)>& assign);

/// Workload-aware target for a hot key: the partition whose replica-DC set
/// covers the most of the key's accessing DCs; ties broken by lower sketched
/// load, then lower partition id (deterministic). `part_load` has one entry
/// per partition.
PartitionId choose_partition(const cluster::Topology& topo, const AccessSketch::Entry& e,
                             const std::vector<std::uint64_t>& part_load);

}  // namespace paris::placement
