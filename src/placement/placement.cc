#include "placement/placement.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "common/assert.h"

namespace paris::placement {

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kHash: return "hash";
    case Policy::kWorkloadAware: return "workload";
  }
  return "?";
}

bool parse_policy(const char* text, Policy* out) {
  if (std::strcmp(text, "hash") == 0) { *out = Policy::kHash; return true; }
  if (std::strcmp(text, "workload") == 0) { *out = Policy::kWorkloadAware; return true; }
  return false;
}

AccessSketch::AccessSketch(std::uint32_t capacity) : capacity_(capacity ? capacity : 1) {
  entries_.reserve(capacity_);
}

void AccessSketch::note(Key k, DcId accessing_dc) {
  ++total_;
  const std::uint32_t bit = 1u << (accessing_dc & 31u);
  if (auto it = index_.find(k); it != index_.end()) {
    Entry& e = entries_[it->second];
    ++e.count;
    e.dc_mask |= bit;
    return;
  }
  if (entries_.size() < capacity_) {
    index_.emplace(k, static_cast<std::uint32_t>(entries_.size()));
    entries_.push_back(Entry{k, 1, bit});
    return;
  }
  // Space-Saving eviction: the minimum-count entry hands its slot (and its
  // count, the sketch's error bound) to the newcomer.
  std::uint32_t victim = 0;
  for (std::uint32_t i = 1; i < entries_.size(); ++i)
    if (entries_[i].count < entries_[victim].count) victim = i;
  index_.erase(entries_[victim].key);
  index_.emplace(k, victim);
  entries_[victim].key = k;
  entries_[victim].count += 1;
  entries_[victim].dc_mask = bit;
}

std::vector<AccessSketch::Entry> AccessSketch::top(std::uint32_t k) const {
  std::vector<Entry> out = entries_;
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

void AccessSketch::merge(const std::vector<Entry>& reported) {
  for (const Entry& r : reported) {
    total_ += r.count;
    if (auto it = index_.find(r.key); it != index_.end()) {
      entries_[it->second].count += r.count;
      entries_[it->second].dc_mask |= r.dc_mask;
      continue;
    }
    if (entries_.size() < capacity_) {
      index_.emplace(r.key, static_cast<std::uint32_t>(entries_.size()));
      entries_.push_back(r);
      continue;
    }
    std::uint32_t victim = 0;
    for (std::uint32_t i = 1; i < entries_.size(); ++i)
      if (entries_[i].count < entries_[victim].count) victim = i;
    if (entries_[victim].count >= r.count) continue;  // newcomer is colder
    index_.erase(entries_[victim].key);
    index_.emplace(r.key, victim);
    entries_[victim] = r;
  }
}

void AccessSketch::clear() {
  entries_.clear();
  index_.clear();
  total_ = 0;
}

PlacementScore score_assignment(const cluster::Topology& topo,
                                const std::vector<AccessSketch::Entry>& keys,
                                const std::function<PartitionId(Key)>& assign) {
  PlacementScore s;
  if (keys.empty()) return s;
  std::vector<std::uint64_t> load(topo.num_partitions(), 0);
  double weighted = 0;
  std::uint64_t total = 0;
  for (const auto& e : keys) {
    const PartitionId p = assign(e.key);
    PARIS_DCHECK(p < topo.num_partitions());
    load[p] += e.count;
    std::uint32_t mask = e.dc_mask;
    for (DcId d : topo.replicas(p)) mask |= 1u << (d & 31u);
    weighted += static_cast<double>(e.count) * std::popcount(mask);
    total += e.count;
  }
  s.replicate_factor = total ? weighted / static_cast<double>(total) : 0;
  const double mean = static_cast<double>(total) / static_cast<double>(load.size());
  if (mean > 0) {
    double var = 0;
    for (std::uint64_t l : load) {
      const double d = static_cast<double>(l) - mean;
      var += d * d;
    }
    s.load_relative_stddev = std::sqrt(var / static_cast<double>(load.size())) / mean;
  }
  return s;
}

PartitionId choose_partition(const cluster::Topology& topo, const AccessSketch::Entry& e,
                             const std::vector<std::uint64_t>& part_load) {
  PARIS_DCHECK(part_load.size() == topo.num_partitions());
  PartitionId best = 0;
  int best_cover = -1;
  std::uint64_t best_load = 0;
  for (PartitionId p = 0; p < topo.num_partitions(); ++p) {
    std::uint32_t covered = 0;
    for (DcId d : topo.replicas(p)) covered |= 1u << (d & 31u);
    const int cover = std::popcount(covered & e.dc_mask);
    if (cover > best_cover || (cover == best_cover && part_load[p] < best_load)) {
      best = p;
      best_cover = cover;
      best_load = part_load[p];
    }
  }
  return best;
}

}  // namespace paris::placement
