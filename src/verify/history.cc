#include "verify/history.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace paris::verify {

using wire::Item;
using wire::WriteKV;

void HistoryRecorder::on_tx_started(NodeId client, TxId tx, Timestamp snapshot,
                                    sim::SimTime /*now*/) {
  std::lock_guard<std::mutex> lk(mu_);
  sessions_[client].push_back(SessionStart{tx, snapshot});
}

void HistoryRecorder::on_commit_writes(TxId tx, DcId origin,
                                       const std::vector<WriteKV>& writes) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& rec = txs_[tx];
  rec.origin = origin;
  rec.writes = writes;
}

void HistoryRecorder::on_commit_decided(TxId tx, Timestamp ct, DcId origin,
                                        sim::SimTime /*now*/) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& rec = txs_[tx];
  rec.ct = ct;
  rec.origin = origin;
  ++decided_;
}

void HistoryRecorder::on_replica_commit(TxId tx, Timestamp ct, DcId origin,
                                        const wire::ReplicateTxn& txn) {
  // A replica's view of a remote commit: authoritative iff the coordinator's
  // own record is missing (its process was killed before harvest). Only this
  // partition's writes are visible here; other partitions' replicas complete
  // the record via the same union. decided_ is NOT bumped — it counts
  // coordinator decisions.
  std::lock_guard<std::mutex> lk(mu_);
  auto& rec = txs_[tx];
  if (rec.ct.is_zero()) {
    rec.ct = ct;
    rec.origin = origin;
  }
  for (const auto& w : txn.writes) {
    bool known = false;
    for (const auto& have : rec.writes) {
      if (have.k == w.k) {
        known = true;
        break;
      }
    }
    if (!known) rec.writes.push_back(w);
  }
}

void HistoryRecorder::on_slice_served(DcId server_dc, PartitionId partition, TxId tx,
                                      Timestamp snapshot, std::uint8_t mode,
                                      const std::vector<Item>& items, sim::SimTime now) {
  if (!opt_.record_slices) return;
  std::lock_guard<std::mutex> lk(mu_);
  slices_.push_back(SliceRecord{server_dc, partition, tx, snapshot, mode, items, now});
}

void HistoryRecorder::serialize(std::vector<std::uint8_t>& out) const {
  std::lock_guard<std::mutex> lk(mu_);
  wire::Encoder e(out);
  wire::detail::WireWriter w{e};
  e.put_varint(txs_.size());
  for (const auto& [tx, rec] : txs_) {
    e.put_varint(tx.raw);
    e.put_varint(rec.ct.raw);
    e.put_varint(rec.origin);
    w(rec.writes);
  }
  e.put_varint(slices_.size());
  for (const auto& s : slices_) {
    e.put_varint(s.dc);
    e.put_varint(s.partition);
    e.put_varint(s.reader.raw);
    e.put_varint(s.snapshot.raw);
    e.put_u8(s.mode);
    w(s.items);
    e.put_varint(s.at);
  }
  e.put_varint(sessions_.size());
  for (const auto& [node, starts] : sessions_) {
    e.put_varint(node);
    e.put_varint(starts.size());
    for (const auto& st : starts) {
      e.put_varint(st.tx.raw);
      e.put_varint(st.snapshot.raw);
    }
  }
  e.put_varint(decided_);
}

void HistoryRecorder::merge_serialized(const std::uint8_t* data, std::size_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  wire::Decoder d(data, n);
  wire::detail::WireReader r{d};
  for (std::uint64_t i = 0, ntx = d.get_varint(); i < ntx; ++i) {
    const TxId tx{d.get_varint()};
    const Timestamp ct{d.get_varint()};
    const DcId origin = static_cast<DcId>(d.get_varint());
    std::vector<WriteKV> writes;
    r(writes);
    // Union, not overwrite: after a mid-run kill the same tx can appear in
    // several children's blobs — the dead coordinator's partial record and
    // the surviving replicas' per-partition views.
    TxRecord& rec = txs_[tx];
    if (rec.ct.is_zero() && !ct.is_zero()) {
      rec.ct = ct;
      rec.origin = origin;
    }
    if (rec.writes.empty()) {
      rec.writes = std::move(writes);
    } else {
      for (auto& w : writes) {
        bool known = false;
        for (const auto& have : rec.writes) {
          if (have.k == w.k) {
            known = true;
            break;
          }
        }
        if (!known) rec.writes.push_back(std::move(w));
      }
    }
  }
  for (std::uint64_t i = 0, ns = d.get_varint(); i < ns; ++i) {
    SliceRecord s;
    s.dc = static_cast<DcId>(d.get_varint());
    s.partition = static_cast<PartitionId>(d.get_varint());
    s.reader = TxId{d.get_varint()};
    s.snapshot = Timestamp{d.get_varint()};
    s.mode = d.get_u8();
    r(s.items);
    s.at = d.get_varint();
    slices_.push_back(std::move(s));
  }
  for (std::uint64_t i = 0, nc = d.get_varint(); i < nc; ++i) {
    const NodeId node = static_cast<NodeId>(d.get_varint());
    auto& starts = sessions_[node];
    for (std::uint64_t j = 0, ns = d.get_varint(); j < ns; ++j) {
      SessionStart st;
      st.tx = TxId{d.get_varint()};
      st.snapshot = Timestamp{d.get_varint()};
      starts.push_back(st);
    }
  }
  decided_ += d.get_varint();
  PARIS_CHECK_MSG(d.done(), "history blob has trailing bytes");
}

Timestamp HistoryRecorder::commit_ts(TxId tx) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = txs_.find(tx);
  return it == txs_.end() ? kTsZero : it->second.ct;
}

namespace {

/// One committed write, in the system's total version order.
struct WriteVersion {
  Timestamp ct;
  TxId tx;
  DcId sr;
  const Value* v;
  std::int64_t num;  ///< binary counter delta (kind != 0)
  std::uint8_t kind;

  friend bool operator<(const WriteVersion& a, const WriteVersion& b) {
    if (a.ct != b.ct) return a.ct < b.ct;
    if (a.tx != b.tx) return a.tx < b.tx;
    return a.sr < b.sr;
  }
};

std::int64_t parse_i64(const Value& v) {
  return v.empty() ? 0 : std::strtoll(v.c_str(), nullptr, 10);
}

/// Expected counter value at `snapshot`: fold the sorted versions from the
/// last register base (its numeric value seeds the sum) through the
/// snapshot — mirrors MvStore::read_counter over the committed history.
std::int64_t expected_counter(const std::vector<WriteVersion>& versions, Timestamp snapshot) {
  std::int64_t sum = 0;
  for (const auto& v : versions) {
    if (v.ct > snapshot) break;
    if (v.kind == 0) {
      sum = parse_i64(*v.v);  // register base resets
    } else {
      sum += v.num;
    }
  }
  return sum;
}

std::string fmt(const char* f, auto... args) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), f, args...);
  return buf;
}

}  // namespace

std::vector<std::string> HistoryRecorder::check() const {
  std::lock_guard<std::mutex> lk(mu_);  // run after the deployment stopped
  std::vector<std::string> violations;

  // Per-session monotonic snapshots: within one client session, assigned
  // snapshots never move backwards (order-independent across sessions; each
  // session's stream was recorded in its own sequential order). Shares the
  // flood cap with the slice checks below: a systemic regression must not
  // drown the output.
  for (const auto& [client, starts] : sessions_) {
    for (std::size_t i = 1; i < starts.size(); ++i) {
      if (starts[i].snapshot < starts[i - 1].snapshot) {
        violations.push_back(fmt(
            "client=%u tx=%llu: SESSION violation — snapshot %s moved backwards "
            "(previous tx %llu had %s)",
            client, (unsigned long long)starts[i].tx.raw,
            to_string(starts[i].snapshot).c_str(),
            (unsigned long long)starts[i - 1].tx.raw,
            to_string(starts[i - 1].snapshot).c_str()));
        if (violations.size() > 50) {
          violations.push_back("... further violations suppressed");
          return violations;
        }
      }
    }
  }

  // Index committed writes per key, sorted by the total version order.
  std::unordered_map<Key, std::vector<WriteVersion>> by_key;
  std::unordered_map<Key, bool> has_delta;
  for (const auto& [tx, rec] : txs_) {
    if (rec.ct.is_zero()) continue;  // never decided (in flight at end of run)
    for (const auto& w : rec.writes) {
      by_key[w.k].push_back(
          WriteVersion{rec.ct, tx, rec.origin, &w.v, w.kind != 0 ? w.delta() : 0, w.kind});
      if (w.kind != 0) has_delta[w.k] = true;
    }
  }
  for (auto& [k, versions] : by_key) std::sort(versions.begin(), versions.end());

  // Exactness: every slice item is the LWW winner within the snapshot.
  // Two causal-safety assertions are checked first; they must hold under
  // ANY delivery schedule the transport produces — including the injected
  // cross-channel reorder of runtime::ChaosTransport — because they depend
  // only on commit timestamps, never on arrival order:
  //  * no read from the future: a slice never returns a version committed
  //    after its snapshot (atomic-visibility / snapshot isolation);
  //  * no phantom version: every returned (ut, tx) pair matches a commit
  //    that actually happened (catches duplicated/diverged applies).
  for (const auto& s : slices_) {
    for (const auto& item : s.items) {
      if (!item.ut.is_zero()) {
        if (item.ut > s.snapshot) {
          violations.push_back(
              fmt("slice@%llu dc=%u p=%u key=%llu snap=%s: CAUSAL violation — returned "
                  "version from the future (ut=%s > snapshot)",
                  (unsigned long long)s.at, s.dc, s.partition, (unsigned long long)item.k,
                  to_string(s.snapshot).c_str(), to_string(item.ut).c_str()));
        }
        const auto txit = txs_.find(item.tx);
        if (txit == txs_.end() || txit->second.ct.is_zero() || txit->second.ct != item.ut) {
          violations.push_back(
              fmt("slice@%llu dc=%u p=%u key=%llu: PHANTOM version — returned (ut=%s "
                  "tx=%llu) but no such commit exists",
                  (unsigned long long)s.at, s.dc, s.partition, (unsigned long long)item.k,
                  to_string(item.ut).c_str(), (unsigned long long)item.tx.raw));
        }
      }
      const WriteVersion* winner = nullptr;
      if (const auto it = by_key.find(item.k); it != by_key.end()) {
        for (const auto& v : it->second) {
          if (v.ct > s.snapshot) break;
          winner = &v;
        }
      }
      if (winner == nullptr) {
        if (!item.ut.is_zero()) {
          violations.push_back(
              fmt("slice@%llu dc=%u p=%u key=%llu snap=%s: returned version ut=%s but no "
                  "committed write <= snapshot exists",
                  (unsigned long long)s.at, s.dc, s.partition, (unsigned long long)item.k,
                  to_string(s.snapshot).c_str(), to_string(item.ut).c_str()));
        }
        continue;
      }
      if (item.ut.is_zero()) {
        violations.push_back(
            fmt("slice@%llu dc=%u p=%u key=%llu snap=%s: returned ABSENT but tx %llu "
                "committed ct=%s <= snapshot (stale/lost write)",
                (unsigned long long)s.at, s.dc, s.partition, (unsigned long long)item.k,
                to_string(s.snapshot).c_str(), (unsigned long long)winner->tx.raw,
                to_string(winner->ct).c_str()));
        continue;
      }
      // Note: sr is not compared. The version-order tuple is (ut, tx, sr)
      // but TxIds are globally unique, so sr never disambiguates; stores
      // stamp sr with the DC of the preparing cohort, which can legally
      // differ from the coordinator's DC for multi-DC write sets.
      if (item.ut != winner->ct || item.tx != winner->tx) {
        violations.push_back(
            fmt("slice@%llu dc=%u p=%u key=%llu snap=%s: returned (ut=%s tx=%llu) "
                "but LWW winner is (ct=%s tx=%llu)",
                (unsigned long long)s.at, s.dc, s.partition, (unsigned long long)item.k,
                to_string(s.snapshot).c_str(), to_string(item.ut).c_str(),
                (unsigned long long)item.tx.raw, to_string(winner->ct).c_str(),
                (unsigned long long)winner->tx.raw));
        continue;
      }
      if (s.mode == static_cast<std::uint8_t>(wire::ReadMode::kCounter)) {
        // Counter reads return the merged sum (binary, item.num), not the
        // newest raw value.
        const std::int64_t expect = expected_counter(by_key[item.k], s.snapshot);
        if (item.num != expect) {
          violations.push_back(
              fmt("slice@%llu key=%llu: counter sum %lld but expected %lld "
                  "(lost/duplicated delta)",
                  (unsigned long long)s.at, (unsigned long long)item.k,
                  static_cast<long long>(item.num), static_cast<long long>(expect)));
        }
      } else if (!has_delta[item.k] && item.v != *winner->v) {
        // Value comparison only for pure-register keys: GC legitimately
        // folds counter histories into synthetic base values.
        violations.push_back(fmt("slice@%llu key=%llu: version matches but value differs",
                                 (unsigned long long)s.at, (unsigned long long)item.k));
      }
    }
    if (violations.size() > 50) {
      violations.push_back("... further violations suppressed");
      break;
    }
  }
  return violations;
}

}  // namespace paris::verify
