#pragma once
// Execution-history recording and offline consistency checking.
//
// The HistoryRecorder taps the Tracer hooks and captures every committed
// write and every served read slice. check() then validates the strongest
// property the protocols promise (DESIGN.md §4):
//
//   EXACT SNAPSHOT READS — a slice served at snapshot s returns, for every
//   key, exactly the last-writer-wins winner among ALL transactions ever
//   committed with ct <= s (by the total order (ct, tx, srcDC)).
//
// This single check subsumes causal-snapshot consistency and atomicity:
// commit timestamps respect causality (Proposition 1), so if the winner's
// dependencies had newer-but-<=s versions missing, they would themselves
// violate exactness; and all writes of a transaction share one ct, so a
// snapshot either includes all of them or none (Proposition 4).
//
// The checker compares against commits decided at ANY time, including after
// the read was served — correctness relies on the protocols' promise that
// no transaction can ever commit at or below an already-readable snapshot.
// A bug in the UST, HLC, version-clock or blocking logic shows up as an
// exactness violation here.
//
// Additionally, check() validates PER-SESSION MONOTONIC SNAPSHOTS: the
// snapshots assigned to one client session never move backwards across its
// transactions (the session guarantee behind monotonic reads). Exactness is
// per-slice and cannot see this client-visible regression — e.g. a stale
// retransmitted ClientStartResp leaking past the reliable layer's dedup
// would re-assign an old snapshot without any slice being wrong for it.

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "proto/tracer.h"

namespace paris::verify {

class HistoryRecorder : public proto::Tracer {
 public:
  struct Options {
    bool record_slices = true;   ///< needed by check(); heavy for big runs
    bool track_visibility = false;
  };
  HistoryRecorder() : HistoryRecorder(Options{true, false}) {}
  explicit HistoryRecorder(Options opt) : opt_(opt) {}

  // Tracer interface. Recording is mutex-guarded so histories can be taped
  // from every worker of a ThreadBackend (uncontended under the sim).
  void on_tx_started(NodeId client, TxId tx, Timestamp snapshot,
                     sim::SimTime now) override;
  void on_commit_writes(TxId tx, DcId origin,
                        const std::vector<wire::WriteKV>& writes) override;
  void on_commit_decided(TxId tx, Timestamp ct, DcId origin, sim::SimTime now) override;
  void on_replica_commit(TxId tx, Timestamp ct, DcId origin,
                         const wire::ReplicateTxn& txn) override;
  void on_slice_served(DcId server_dc, PartitionId partition, TxId tx, Timestamp snapshot,
                       std::uint8_t mode, const std::vector<wire::Item>& items,
                       sim::SimTime now) override;
  bool want_visibility(TxId /*tx*/) const override { return opt_.track_visibility; }

  /// Runs all offline checks; returns human-readable violations (empty ==
  /// history is consistent).
  std::vector<std::string> check() const;

  /// Serializes the complete recorded history (commit records, slices,
  /// per-session snapshot streams) so a socket-runtime child can ship it to
  /// the launcher; merge_serialized() appends such a blob into this
  /// recorder. Commit records are UNION-merged (ct adopted if unknown,
  /// writes united by key): when a coordinator's process is killed mid-run
  /// its own record dies with it, and the surviving replicas' views
  /// (on_replica_commit) — shipped in other children's blobs — reconstruct
  /// the commit so applied-then-read writes are not misflagged as phantoms.
  void serialize(std::vector<std::uint8_t>& out) const;
  void merge_serialized(const std::uint8_t* data, std::size_t n);

  std::size_t num_committed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return decided_;
  }
  std::size_t num_slices() const {
    std::lock_guard<std::mutex> lk(mu_);
    return slices_.size();
  }

  /// Slices served by replicas IN `dc` (the serving side, not the reader's
  /// DC). The socket launcher uses this on the merged history to assert that
  /// a DC joined mid-run actually took read traffic in its new replica sets.
  std::size_t slices_at_dc(DcId dc) const {
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t n = 0;
    for (const SliceRecord& s : slices_) n += s.dc == dc ? 1 : 0;
    return n;
  }

  /// Commit timestamp of tx (zero if unknown/undecided).
  Timestamp commit_ts(TxId tx) const;

 private:
  struct TxRecord {
    Timestamp ct;  ///< zero until decided
    DcId origin = 0;
    std::vector<wire::WriteKV> writes;
  };
  struct SliceRecord {
    DcId dc;
    PartitionId partition;
    TxId reader;
    Timestamp snapshot;
    std::uint8_t mode;
    std::vector<wire::Item> items;
    sim::SimTime at;
  };
  struct SessionStart {
    TxId tx;
    Timestamp snapshot;
  };

  Options opt_;
  mutable std::mutex mu_;
  std::unordered_map<TxId, TxRecord> txs_;
  std::vector<SliceRecord> slices_;
  /// Per client session, snapshot assignments in session order (a session
  /// runs one transaction at a time, so its appends are sequential even on
  /// the thread backend).
  std::unordered_map<NodeId, std::vector<SessionStart>> sessions_;
  std::size_t decided_ = 0;
};

}  // namespace paris::verify
