#include "cluster/topology.h"

#include <algorithm>

namespace paris::cluster {

Topology::Topology(const TopologyConfig& cfg) : cfg_(cfg) {
  PARIS_CHECK_MSG(cfg.num_dcs >= 1, "need at least one DC");
  PARIS_CHECK_MSG(cfg.num_partitions >= 1, "need at least one partition");
  PARIS_CHECK_MSG(cfg.replication >= 1 && cfg.replication <= cfg.num_dcs,
                  "replication factor must be in [1, M]");

  const std::uint32_t M = cfg.num_dcs, N = cfg.num_partitions, R = cfg.replication;
  replicas_.resize(N);
  replica_idx_.assign(static_cast<std::size_t>(M) * N, kInvalidReplica);
  local_partitions_.resize(M);

  for (PartitionId p = 0; p < N; ++p) {
    replicas_[p].reserve(R);
    for (std::uint32_t j = 0; j < R; ++j) {
      const DcId dc = (p + j) % M;
      replicas_[p].push_back(dc);
      replica_idx_[static_cast<std::size_t>(dc) * N + p] = j;
      local_partitions_[dc].push_back(p);
    }
  }
  for (auto& v : local_partitions_) {
    std::sort(v.begin(), v.end());
    total_servers_ += static_cast<std::uint32_t>(v.size());
  }
}

DcId Topology::target_dc(DcId client_dc, PartitionId p) const {
  const ReplicaIdx local = replica_idx(client_dc, p);
  if (local != kInvalidReplica) return client_dc;
  const auto& reps = replicas(p);
  // Fixed per-(DC, partition) preference, rotated across DCs so remote load
  // spreads over the R replicas (round-robin assignment of §V-A).
  return reps[(client_dc + p) % reps.size()];
}

}  // namespace paris::cluster
