#pragma once
// Intra-DC stabilization tree (§IV-B "Stabilization protocol"): the servers
// of a DC are arranged in a k-ary tree; minima are aggregated leaves->root,
// and the UST is disseminated root->leaves. PaRiS organizes nodes this way
// (following GentleRain/Cure) to keep the gossip message count linear.

#include <cstdint>
#include <vector>

#include "common/assert.h"

namespace paris::cluster {

class StabTree {
 public:
  /// A k-ary heap-shaped tree over n nodes indexed 0..n-1; node 0 is root.
  StabTree(std::uint32_t n, std::uint32_t fanout = 2) : n_(n), fanout_(fanout) {
    PARIS_CHECK(n >= 1);
    PARIS_CHECK(fanout >= 1);
  }

  std::uint32_t size() const { return n_; }
  std::uint32_t fanout() const { return fanout_; }
  bool is_root(std::uint32_t i) const { return i == 0; }

  std::uint32_t parent(std::uint32_t i) const {
    PARIS_DCHECK(i > 0 && i < n_);
    return (i - 1) / fanout_;
  }

  std::vector<std::uint32_t> children(std::uint32_t i) const {
    std::vector<std::uint32_t> out;
    for (std::uint32_t c = i * fanout_ + 1; c <= i * fanout_ + fanout_ && c < n_; ++c)
      out.push_back(c);
    return out;
  }

  std::uint32_t depth() const {
    std::uint32_t d = 0, span = 1, covered = 1;
    while (covered < n_) {
      span *= fanout_;
      covered += span;
      ++d;
    }
    return d;
  }

 private:
  std::uint32_t n_;
  std::uint32_t fanout_;
};

}  // namespace paris::cluster
