#pragma once
// Cluster topology: M data centers, N partitions, replication factor R
// (§II-C). Each partition is replicated at R DCs chosen round-robin
// (partition p lives at DCs (p+j) mod M for j in [0,R)), which spreads
// primaries evenly and gives every DC exactly N*R/M local partitions when
// M divides N*R — matching the paper's deployments (e.g. 45 partitions,
// R=2, 5 DCs -> 18 servers per DC).

#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "common/types.h"

namespace paris::cluster {

struct TopologyConfig {
  std::uint32_t num_dcs = 3;         ///< M
  std::uint32_t num_partitions = 9;  ///< N
  std::uint32_t replication = 2;     ///< R (<= M)
};

class Topology {
 public:
  explicit Topology(const TopologyConfig& cfg);

  std::uint32_t num_dcs() const { return cfg_.num_dcs; }
  std::uint32_t num_partitions() const { return cfg_.num_partitions; }
  std::uint32_t replication() const { return cfg_.replication; }

  /// Deterministic key -> partition map. Keys are constructed by
  /// make_key(partition, rank) so workloads can target partitions directly;
  /// the inverse is a plain modulo (the paper only requires a deterministic
  /// hash assignment).
  PartitionId partition_of(Key k) const { return static_cast<PartitionId>(k % cfg_.num_partitions); }
  Key make_key(PartitionId p, std::uint64_t rank) const {
    return rank * cfg_.num_partitions + p;
  }

  /// The R DCs storing partition p, primary first.
  const std::vector<DcId>& replicas(PartitionId p) const {
    PARIS_DCHECK(p < cfg_.num_partitions);
    return replicas_[p];
  }

  bool dc_replicates(DcId dc, PartitionId p) const {
    return replica_idx(dc, p) != kInvalidReplica;
  }

  /// Index of DC `dc` within replicas(p), or kInvalidReplica.
  ReplicaIdx replica_idx(DcId dc, PartitionId p) const {
    PARIS_DCHECK(dc < cfg_.num_dcs && p < cfg_.num_partitions);
    return replica_idx_[static_cast<std::size_t>(dc) * cfg_.num_partitions + p];
  }

  /// Partitions with a replica in `dc` (sorted). One server each => this is
  /// also the per-DC server list ("machines per DC" in the paper's plots).
  const std::vector<PartitionId>& partitions_at(DcId dc) const {
    PARIS_DCHECK(dc < cfg_.num_dcs);
    return local_partitions_[dc];
  }

  std::uint32_t servers_per_dc(DcId dc) const {
    return static_cast<std::uint32_t>(partitions_at(dc).size());
  }
  std::uint32_t total_servers() const { return total_servers_; }

  /// DC whose replica of p a node in client_dc should contact: the local DC
  /// if it replicates p, otherwise a per-(DC, partition) round-robin choice,
  /// fixed for all clients of the DC (§V-A "preferred remote replica").
  DcId target_dc(DcId client_dc, PartitionId p) const;

 private:
  TopologyConfig cfg_;
  std::vector<std::vector<DcId>> replicas_;             // [p] -> R DCs
  std::vector<ReplicaIdx> replica_idx_;                 // [dc*N+p]
  std::vector<std::vector<PartitionId>> local_partitions_;  // [dc]
  std::uint32_t total_servers_ = 0;
};

/// Runtime directory: where each (dc, partition) server actor lives in the
/// simulated network. Populated by the cluster builder.
class Directory {
 public:
  explicit Directory(const Topology& topo)
      : topo_(&topo),
        nodes_(static_cast<std::size_t>(topo.num_dcs()) * topo.num_partitions(), kInvalidNode) {}

  void set_server(DcId dc, PartitionId p, NodeId node) {
    nodes_[index(dc, p)] = node;
  }
  NodeId server(DcId dc, PartitionId p) const {
    const NodeId n = nodes_[index(dc, p)];
    PARIS_DCHECK(n != kInvalidNode);
    return n;
  }
  bool has_server(DcId dc, PartitionId p) const { return nodes_[index(dc, p)] != kInvalidNode; }

 private:
  std::size_t index(DcId dc, PartitionId p) const {
    PARIS_DCHECK(dc < topo_->num_dcs() && p < topo_->num_partitions());
    return static_cast<std::size_t>(dc) * topo_->num_partitions() + p;
  }
  const Topology* topo_;
  std::vector<NodeId> nodes_;
};

}  // namespace paris::cluster
