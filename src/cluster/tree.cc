// tree.h is header-only; TU kept so the cluster library always has content.
#include "cluster/tree.h"
