#pragma once
// Cluster membership: the static universe (topology) plus the versioned
// membership VIEW machinery that makes replica sets elastic (DESIGN §11).
//
// The universe — M data centers, N partitions, replication factor R, each
// partition replicated at R DCs chosen round-robin (partition p lives at
// DCs (p+j) mod M for j in [0,R), §II-C) — is fixed for the lifetime of a
// run. What changes mid-run is which DCs are ACTIVE: a membership view is
// {view_id, members: [(rank, endpoint, epoch)], replica_sets}, and a
// join/leave schedule precomputes the whole view sequence up front so every
// process derives identical views from the shared config. Installation is a
// single atomic index bump (monotone, idempotent); on the socket runtime
// the current view id piggybacks on the epoch beacons, so peers converge on
// a view change within one beacon period.
//
// This header also hosts the pieces the old cluster/ layer kept in separate
// files: the Directory (where each (dc, partition) server actor lives) and
// the intra-DC stabilization tree (§IV-B) PaRiS aggregates its UST over.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/assert.h"
#include "common/types.h"
#include "runtime/endpoint.h"

namespace paris::cluster {

struct TopologyConfig {
  std::uint32_t num_dcs = 3;         ///< M
  std::uint32_t num_partitions = 9;  ///< N
  std::uint32_t replication = 2;     ///< R (<= M)
};

class Topology {
 public:
  explicit Topology(const TopologyConfig& cfg);

  std::uint32_t num_dcs() const { return cfg_.num_dcs; }
  std::uint32_t num_partitions() const { return cfg_.num_partitions; }
  std::uint32_t replication() const { return cfg_.replication; }

  /// Deterministic key -> partition map. Keys are constructed by
  /// make_key(partition, rank) so workloads can target partitions directly;
  /// the inverse is a plain modulo (the paper only requires a deterministic
  /// hash assignment).
  PartitionId partition_of(Key k) const { return static_cast<PartitionId>(k % cfg_.num_partitions); }
  Key make_key(PartitionId p, std::uint64_t rank) const {
    return rank * cfg_.num_partitions + p;
  }

  /// The R DCs storing partition p, primary first.
  const std::vector<DcId>& replicas(PartitionId p) const {
    PARIS_DCHECK(p < cfg_.num_partitions);
    return replicas_[p];
  }

  bool dc_replicates(DcId dc, PartitionId p) const {
    return replica_idx(dc, p) != kInvalidReplica;
  }

  /// Index of DC `dc` within replicas(p), or kInvalidReplica.
  ReplicaIdx replica_idx(DcId dc, PartitionId p) const {
    PARIS_DCHECK(dc < cfg_.num_dcs && p < cfg_.num_partitions);
    return replica_idx_[static_cast<std::size_t>(dc) * cfg_.num_partitions + p];
  }

  /// Partitions with a replica in `dc` (sorted). One server each => this is
  /// also the per-DC server list ("machines per DC" in the paper's plots).
  const std::vector<PartitionId>& partitions_at(DcId dc) const {
    PARIS_DCHECK(dc < cfg_.num_dcs);
    return local_partitions_[dc];
  }

  std::uint32_t servers_per_dc(DcId dc) const {
    return static_cast<std::uint32_t>(partitions_at(dc).size());
  }
  std::uint32_t total_servers() const { return total_servers_; }

  /// DC whose replica of p a node in client_dc should contact: the local DC
  /// if it replicates p, otherwise a per-(DC, partition) round-robin choice,
  /// fixed for all clients of the DC (§V-A "preferred remote replica").
  /// View-blind; Membership::target_dc is the view-relative variant.
  DcId target_dc(DcId client_dc, PartitionId p) const;

 private:
  TopologyConfig cfg_;
  std::vector<std::vector<DcId>> replicas_;             // [p] -> R DCs
  std::vector<ReplicaIdx> replica_idx_;                 // [dc*N+p]
  std::vector<std::vector<PartitionId>> local_partitions_;  // [dc]
  std::uint32_t total_servers_ = 0;
};

/// Runtime directory: where each (dc, partition) server actor lives in the
/// network. Populated by the cluster builder; covers the whole universe —
/// inactive DCs keep their slots so a joining DC's servers are addressable
/// the instant its view installs.
class Directory {
 public:
  explicit Directory(const Topology& topo)
      : topo_(&topo),
        nodes_(static_cast<std::size_t>(topo.num_dcs()) * topo.num_partitions(), kInvalidNode) {}

  void set_server(DcId dc, PartitionId p, NodeId node) {
    nodes_[index(dc, p)] = node;
  }
  NodeId server(DcId dc, PartitionId p) const {
    const NodeId n = nodes_[index(dc, p)];
    PARIS_DCHECK(n != kInvalidNode);
    return n;
  }
  bool has_server(DcId dc, PartitionId p) const { return nodes_[index(dc, p)] != kInvalidNode; }

 private:
  std::size_t index(DcId dc, PartitionId p) const {
    PARIS_DCHECK(dc < topo_->num_dcs() && p < topo_->num_partitions());
    return static_cast<std::size_t>(dc) * topo_->num_partitions() + p;
  }
  const Topology* topo_;
  std::vector<NodeId> nodes_;
};

/// Intra-DC stabilization tree (§IV-B): the servers of a DC are arranged in
/// a k-ary tree; minima are aggregated leaves->root, and the UST is
/// disseminated root->leaves (following GentleRain/Cure) to keep the gossip
/// message count linear.
class StabTree {
 public:
  /// A k-ary heap-shaped tree over n nodes indexed 0..n-1; node 0 is root.
  StabTree(std::uint32_t n, std::uint32_t fanout = 2) : n_(n), fanout_(fanout) {
    PARIS_CHECK(n >= 1);
    PARIS_CHECK(fanout >= 1);
  }

  std::uint32_t size() const { return n_; }
  std::uint32_t fanout() const { return fanout_; }
  bool is_root(std::uint32_t i) const { return i == 0; }

  std::uint32_t parent(std::uint32_t i) const {
    PARIS_DCHECK(i > 0 && i < n_);
    return (i - 1) / fanout_;
  }

  std::vector<std::uint32_t> children(std::uint32_t i) const {
    std::vector<std::uint32_t> out;
    for (std::uint32_t c = i * fanout_ + 1; c <= i * fanout_ + fanout_ && c < n_; ++c)
      out.push_back(c);
    return out;
  }

  std::uint32_t depth() const {
    std::uint32_t d = 0, span = 1, covered = 1;
    while (covered < n_) {
      span *= fanout_;
      covered += span;
      ++d;
    }
    return d;
  }

 private:
  std::uint32_t n_;
  std::uint32_t fanout_;
};

// ---------------------------------------------------------------------------
// Versioned membership views.
// ---------------------------------------------------------------------------

/// One rank of the process mesh as a view names it: by endpoint, not by
/// port arithmetic. Threads deployments use synthetic members (rank == dc,
/// empty endpoint) so the same view machinery runs without a mesh.
struct Member {
  std::uint32_t rank = 0;
  runtime::Endpoint endpoint;
  std::uint32_t epoch = 0;  ///< incarnation at the time the view was built
};

/// A scheduled membership change: the named DCs join (become active) or
/// leave (drain) at `at_us` of run time. Each change produces one view.
struct ViewChange {
  bool join = true;
  std::vector<DcId> dcs;
  std::uint64_t at_us = 0;
};

struct MembershipView {
  std::uint32_t view_id = 0;
  std::vector<Member> members;
  std::vector<std::uint8_t> active;       ///< [dc] -> replicates in this view
  std::vector<std::uint8_t> ever_active;  ///< [dc] -> active in any view <= this
  /// [p] -> the active subset of Topology::replicas(p), replica order kept.
  std::vector<std::vector<DcId>> replica_sets;

  bool is_active(DcId d) const { return active[d] != 0; }
};

/// The precomputed view sequence + an atomic cursor. All views are derived
/// up front from the schedule (every process computes the same sequence from
/// the shared config); install() only ever moves the cursor forward, so
/// concurrent installs from a beacon listener and the local schedule agree.
class Membership {
 public:
  /// No schedule: one static view with every DC active.
  explicit Membership(const Topology& topo) : Membership(topo, {}, {}) {}

  /// `changes` must be sorted by at_us; a DC named by a join must not be
  /// active in view 0 (it starts out), a DC named by a leave must be. Every
  /// view must leave each partition with at least one active replica.
  Membership(const Topology& topo, std::vector<Member> members,
             std::vector<ViewChange> changes);

  const Topology& topo() const { return topo_; }
  const std::vector<ViewChange>& changes() const { return changes_; }
  std::uint32_t num_views() const { return static_cast<std::uint32_t>(views_.size()); }
  const MembershipView& view_at(std::uint32_t id) const {
    PARIS_DCHECK(id < views_.size());
    return views_[id];
  }

  std::uint32_t current_view_id() const { return cur_.load(std::memory_order_acquire); }
  const MembershipView& view() const { return views_[current_view_id()]; }

  /// Monotone cutover: moves the cursor to max(current, view_id). Returns
  /// true when the cursor advanced. Safe from any thread (beacon listener,
  /// local schedule timer); out-of-range ids clamp to the last view.
  bool install(std::uint32_t view_id);

  /// DC replicates in the CURRENT view (fan-out + routing predicate).
  bool active(DcId d) const { return view().active[d] != 0; }
  /// DC was active in the current or any earlier view (version-vector slots
  /// of a drained DC keep counting; a never-joined DC's slot does not).
  bool ever_active(DcId d) const { return view().ever_active[d] != 0; }
  /// DC was active in view 0 (a "founding" member; late joiners report
  /// false — their zero vv entries are skippable until they first ship).
  bool initially_active(DcId d) const { return views_[0].active[d] != 0; }

  const std::vector<DcId>& active_replicas(PartitionId p) const {
    return view().replica_sets[p];
  }

  /// View-relative Topology::target_dc: the local DC if it actively
  /// replicates p, else a fixed per-(DC, partition) rotation over the
  /// CURRENT view's active replicas of p.
  DcId target_dc(DcId client_dc, PartitionId p) const;

 private:
  const Topology& topo_;
  std::vector<ViewChange> changes_;
  std::vector<MembershipView> views_;
  std::atomic<std::uint32_t> cur_{0};
};

}  // namespace paris::cluster
