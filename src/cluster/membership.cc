#include "cluster/membership.h"

#include <algorithm>

namespace paris::cluster {

Topology::Topology(const TopologyConfig& cfg) : cfg_(cfg) {
  PARIS_CHECK_MSG(cfg.num_dcs >= 1, "need at least one DC");
  PARIS_CHECK_MSG(cfg.num_partitions >= 1, "need at least one partition");
  PARIS_CHECK_MSG(cfg.replication >= 1 && cfg.replication <= cfg.num_dcs,
                  "replication factor must be in [1, M]");

  const std::uint32_t M = cfg.num_dcs, N = cfg.num_partitions, R = cfg.replication;
  replicas_.resize(N);
  replica_idx_.assign(static_cast<std::size_t>(M) * N, kInvalidReplica);
  local_partitions_.resize(M);

  for (PartitionId p = 0; p < N; ++p) {
    replicas_[p].reserve(R);
    for (std::uint32_t j = 0; j < R; ++j) {
      const DcId dc = (p + j) % M;
      replicas_[p].push_back(dc);
      replica_idx_[static_cast<std::size_t>(dc) * N + p] = j;
      local_partitions_[dc].push_back(p);
    }
  }
  for (auto& v : local_partitions_) {
    std::sort(v.begin(), v.end());
    total_servers_ += static_cast<std::uint32_t>(v.size());
  }
}

DcId Topology::target_dc(DcId client_dc, PartitionId p) const {
  const ReplicaIdx local = replica_idx(client_dc, p);
  if (local != kInvalidReplica) return client_dc;
  const auto& reps = replicas(p);
  // Fixed per-(DC, partition) preference, rotated across DCs so remote load
  // spreads over the R replicas (round-robin assignment of §V-A).
  return reps[(client_dc + p) % reps.size()];
}

namespace {

// Rebuilds the view-relative pieces (ever_active carry, per-partition active
// replica subsets) from an updated active mask.
void finalize_view(const Topology& topo, const MembershipView* prev, MembershipView* v) {
  const std::uint32_t M = topo.num_dcs(), N = topo.num_partitions();
  v->ever_active.assign(M, 0);
  for (DcId d = 0; d < M; ++d) {
    const bool before = prev != nullptr && prev->ever_active[d] != 0;
    v->ever_active[d] = (before || v->active[d] != 0) ? 1 : 0;
  }
  v->replica_sets.assign(N, {});
  for (PartitionId p = 0; p < N; ++p) {
    for (DcId d : topo.replicas(p)) {
      if (v->active[d] != 0) v->replica_sets[p].push_back(d);
    }
    PARIS_CHECK_MSG(!v->replica_sets[p].empty(),
                    "membership view would leave a partition with no active replica");
  }
}

}  // namespace

Membership::Membership(const Topology& topo, std::vector<Member> members,
                       std::vector<ViewChange> changes)
    : topo_(topo), changes_(std::move(changes)) {
  const std::uint32_t M = topo.num_dcs();

  MembershipView v0;
  v0.view_id = 0;
  v0.members = std::move(members);
  v0.active.assign(M, 1);
  // DCs scheduled to JOIN start out of the replica set; everything else is a
  // founding member of view 0.
  for (const ViewChange& c : changes_) {
    if (!c.join) continue;
    for (DcId d : c.dcs) {
      PARIS_CHECK_MSG(d < M, "join schedule names a DC outside the topology");
      PARIS_CHECK_MSG(v0.active[d] != 0, "DC scheduled to join twice");
      v0.active[d] = 0;
    }
  }
  finalize_view(topo_, nullptr, &v0);
  views_.push_back(std::move(v0));

  std::uint64_t prev_at = 0;
  for (const ViewChange& c : changes_) {
    PARIS_CHECK_MSG(c.at_us >= prev_at, "membership schedule must be sorted by time");
    prev_at = c.at_us;
    MembershipView v = views_.back();
    v.view_id = static_cast<std::uint32_t>(views_.size());
    for (DcId d : c.dcs) {
      PARIS_CHECK_MSG(d < M, "membership schedule names a DC outside the topology");
      if (c.join) {
        PARIS_CHECK_MSG(v.active[d] == 0, "DC joining is already active");
      } else {
        PARIS_CHECK_MSG(v.active[d] != 0, "DC leaving is not active");
      }
      v.active[d] = c.join ? 1 : 0;
    }
    finalize_view(topo_, &views_.back(), &v);
    views_.push_back(std::move(v));
  }
}

bool Membership::install(std::uint32_t view_id) {
  const std::uint32_t last = static_cast<std::uint32_t>(views_.size()) - 1;
  const std::uint32_t target = std::min(view_id, last);
  std::uint32_t cur = cur_.load(std::memory_order_acquire);
  while (cur < target) {
    if (cur_.compare_exchange_weak(cur, target, std::memory_order_acq_rel,
                                   std::memory_order_acquire))
      return true;
  }
  return false;
}

DcId Membership::target_dc(DcId client_dc, PartitionId p) const {
  const MembershipView& v = view();
  if (v.active[client_dc] != 0 && topo_.dc_replicates(client_dc, p)) return client_dc;
  const auto& reps = v.replica_sets[p];
  // Same fixed rotation as Topology::target_dc, but over the view's active
  // replicas so reads never route to a drained or not-yet-joined DC.
  return reps[(client_dc + p) % reps.size()];
}

}  // namespace paris::cluster
