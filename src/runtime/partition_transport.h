#pragma once
// PartitionTransport: scheduled inter-DC blackouts for the thread runtime
// (DESIGN.md §9).
//
// The simulator's fault injection (sim::Network::partition_dcs/isolate_dc)
// BUFFERS traffic, modeling TCP connections that survive the outage. Real
// packets do not wait: this decorator models the packet view — every
// message crossing a blacked-out DC pair is dropped, and the layer heals
// itself at the window's deadline. Stacked under ReliableTransport the
// combination reproduces the simulator's semantics end-to-end (nothing is
// lost, delivery resumes after heal, per-channel order holds) while also
// exercising the retransmission machinery a real WAN needs; without the
// reliable layer a partition is plain message loss, which the exactness
// checker then reports — useful for demonstrating what the paper's TCP
// assumption actually buys.
//
// Windows are checked against the executor clock at send time, so the
// decorator is a pure function of (spec, time): no randomness, no state.
// Intra-DC traffic (including client <-> colocated coordinator) is never
// affected.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/executor.h"
#include "runtime/latency_transport.h"
#include "runtime/transport.h"

namespace paris::runtime {

/// One scheduled blackout: either a DC pair (a <-> b) or a full isolation
/// of DC a (when isolate_all is set). Times are absolute executor time in
/// µs — for the thread backend, µs since backend construction, so specs are
/// effectively run-relative (warmup included).
struct PartitionWindow {
  DcId a = 0;
  DcId b = 0;
  bool isolate_all = false;
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;  ///< heal deadline (exclusive)

  bool blacks_out(DcId x, DcId y, std::uint64_t now) const {
    if (now < start_us || now >= end_us) return false;
    if (isolate_all) return x == a || y == a;
    return (x == a && y == b) || (x == b && y == a);
  }
};

struct PartitionSpec {
  std::vector<PartitionWindow> windows;
  bool enabled() const { return !windows.empty(); }
};

/// Parses a comma-separated spec, times in MILLISECONDS:
///   "0-1:500:1500"  DCs 0 and 1 cannot talk from t=500ms to t=1500ms
///   "2:2000:2500"   DC 2 is isolated from everyone in [2000ms, 2500ms)
/// Returns false (and leaves `out` untouched) on malformed input.
bool parse_partition_spec(const std::string& s, PartitionSpec& out);

class PartitionTransport final : public TransportDecorator {
 public:
  struct Stats {
    std::uint64_t dropped = 0;  ///< messages eaten by an active blackout
  };

  PartitionTransport(Transport& inner, Executor& exec, PartitionSpec spec)
      : TransportDecorator(inner), exec_(exec), spec_(std::move(spec)) {}

  void send(NodeId from, NodeId to, wire::MessagePtr msg) override {
    if (blacked_out(from, to)) return;  // msg released, never delivered
    inner_.send(from, to, std::move(msg));
  }
  void send_at(NodeId from, NodeId to, wire::MessagePtr msg, std::uint64_t at_us) override {
    if (blacked_out(from, to)) return;
    inner_.send_at(from, to, std::move(msg), at_us);
  }

  const PartitionSpec& spec() const { return spec_; }
  Stats stats() const { return {dropped_.load(std::memory_order_relaxed)}; }

 private:
  bool blacked_out(NodeId from, NodeId to) {
    const DcId a = dc_of(from), b = dc_of(to);
    if (a == b) return false;
    const std::uint64_t now = exec_.now_us();
    for (const auto& w : spec_.windows) {
      if (w.blacks_out(a, b, now)) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  Executor& exec_;
  PartitionSpec spec_;
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace paris::runtime
