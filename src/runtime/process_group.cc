#include "runtime/process_group.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <thread>
#include <unordered_map>

namespace paris::runtime {

namespace {

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// SIGINT/SIGTERM forwarding: the handler may only touch async-signal-safe
// state, so live child pids sit in a fixed lock-free table (slot per spawn,
// cleared on reap). After forwarding, the default disposition is restored
// and the signal re-raised so the launcher itself still dies with it.
constexpr std::size_t kMaxForwardSlots = 256;
std::atomic<pid_t> g_forward_pids[kMaxForwardSlots];
std::atomic<std::size_t> g_forward_hwm{0};
std::atomic<bool> g_forward_installed{false};

void forward_signal_handler(int sig) {
  const std::size_t n = g_forward_hwm.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n && i < kMaxForwardSlots; ++i) {
    const pid_t p = g_forward_pids[i].load(std::memory_order_acquire);
    if (p > 0) kill(p, sig);
  }
  signal(sig, SIG_DFL);
  raise(sig);
}

void install_forwarding_once() {
  bool expected = false;
  if (!g_forward_installed.compare_exchange_strong(expected, true)) return;
  struct sigaction sa = {};
  sa.sa_handler = forward_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

void clear_forwarding(std::size_t slot) {
  if (slot < kMaxForwardSlots) g_forward_pids[slot].store(0, std::memory_order_release);
}

}  // namespace

ProcessGroup::~ProcessGroup() { kill_all(); }

void ProcessGroup::register_forwarding(std::size_t slot, pid_t pid) {
  install_forwarding_once();
  if (slot >= kMaxForwardSlots) return;  // beyond the table: not forwarded
  g_forward_pids[slot].store(pid, std::memory_order_release);
  std::size_t hwm = g_forward_hwm.load(std::memory_order_relaxed);
  while (hwm < slot + 1 &&
         !g_forward_hwm.compare_exchange_weak(hwm, slot + 1, std::memory_order_release)) {
  }
}

bool ProcessGroup::spawn(std::uint32_t rank, const std::vector<std::string>& args,
                         const std::string& log_path, std::uint32_t incarnation) {
  const pid_t parent = getpid();
  const pid_t pid = fork();
  if (pid < 0) return false;
  if (pid == 0) {
    // A launcher crash must not leak ranks holding ports: ask the kernel to
    // SIGKILL us when the parent dies. The prctl races with a parent death
    // between fork and here, so re-check the parent afterwards.
    prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (getppid() != parent) _exit(126);
    // Child marker: lets the launcher path detect (and refuse) recursive
    // self-spawning when a binary forgets the maybe_run_socket_child hook.
    setenv("PARIS_SOCKET_CHILD", "1", 1);
    // Child: logs replace stdout/stderr, then become the target binary.
    const int fd = open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      dup2(fd, STDOUT_FILENO);
      dup2(fd, STDERR_FILENO);
      if (fd > STDERR_FILENO) close(fd);
    }
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>("/proc/self/exe"));
    for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    execv("/proc/self/exe", argv.data());
    std::fprintf(stderr, "execv(/proc/self/exe) failed: errno=%d\n", errno);
    _exit(127);
  }
  children_.push_back(Child{rank, incarnation, pid, log_path, -1});
  register_forwarding(children_.size() - 1, pid);
  return true;
}

bool ProcessGroup::wait_all(std::uint64_t timeout_ms, std::string& error) {
  const std::uint64_t deadline = now_ms() + timeout_ms;
  std::size_t live = 0;
  for (const auto& c : children_)
    if (c.exit_code < 0) ++live;

  while (live > 0) {
    bool progressed = false;
    for (std::size_t i = 0; i < children_.size(); ++i) {
      Child& c = children_[i];
      if (c.exit_code >= 0) continue;
      int status = 0;
      const pid_t r = waitpid(c.pid, &status, WNOHANG);
      if (r == c.pid) {
        c.exit_code = WIFEXITED(status) ? WEXITSTATUS(status)
                                        : 128 + (WIFSIGNALED(status) ? WTERMSIG(status) : 0);
        clear_forwarding(i);
        --live;
        progressed = true;
        if (c.exit_code != 0) {
          char buf[160];
          std::snprintf(buf, sizeof(buf),
                        "child rank %u (pid %d) exited with code %d — see %s", c.rank,
                        static_cast<int>(c.pid), c.exit_code, c.log_path.c_str());
          error = buf;
          kill_all();
          return false;
        }
      }
    }
    if (live == 0) break;
    if (now_ms() >= deadline) {
      error = "timed out waiting for socket children; killing the group";
      kill_all();
      return false;
    }
    if (!progressed) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return true;
}

bool ProcessGroup::wait_supervised(std::uint64_t timeout_ms, const SuperviseOptions& opts,
                                   std::vector<KillEvent>& kills, std::string& error) {
  const std::uint64_t start = now_ms();
  const std::uint64_t deadline = start + timeout_ms;

  struct PendingRespawn {
    std::uint32_t rank;
    std::uint32_t incarnation;
    std::uint64_t due_ms;
  };
  std::vector<PendingRespawn> pending;
  std::unordered_map<std::uint32_t, std::uint64_t> backoff_ms;     // per rank
  std::unordered_map<std::uint32_t, std::uint32_t> incarnations;   // per rank

  while (true) {
    const std::uint64_t now = now_ms();
    bool progressed = false;

    // Fire the fault schedule against the CURRENT incarnation of the rank.
    for (auto& k : kills) {
      if (k.fired || now < start + k.after_ms) continue;
      k.fired = true;
      for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
        if (it->rank == k.rank && it->exit_code < 0) {
          kill(it->pid, SIGKILL);
          progressed = true;
          break;
        }
      }
    }

    // Reap; a nonzero exit becomes a respawn instead of a group kill.
    for (std::size_t i = 0; i < children_.size(); ++i) {
      Child& c = children_[i];
      if (c.exit_code >= 0) continue;
      int status = 0;
      const pid_t r = waitpid(c.pid, &status, WNOHANG);
      if (r != c.pid) continue;
      c.exit_code = WIFEXITED(status) ? WEXITSTATUS(status)
                                      : 128 + (WIFSIGNALED(status) ? WTERMSIG(status) : 0);
      clear_forwarding(i);
      progressed = true;
      if (c.exit_code == 0) continue;
      if (!opts.respawn || respawns_ >= opts.max_respawns) {
        char buf[192];
        std::snprintf(buf, sizeof(buf),
                      "child rank %u (pid %d) exited with code %d and the respawn "
                      "budget (%u) is exhausted — see %s",
                      c.rank, static_cast<int>(c.pid), c.exit_code, opts.max_respawns,
                      c.log_path.c_str());
        error = buf;
        kill_all();
        return false;
      }
      ++respawns_;
      std::uint64_t& b = backoff_ms[c.rank];
      const std::uint64_t delay = b;  // first respawn of a rank is immediate
      b = b == 0 ? opts.backoff_base_ms : std::min(b * 2, opts.backoff_cap_ms);
      const std::uint32_t inc = ++incarnations[c.rank];
      pending.push_back(PendingRespawn{c.rank, inc, now + delay});
    }

    // Launch due respawns.
    for (std::size_t i = 0; i < pending.size();) {
      if (pending[i].due_ms > now) {
        ++i;
        continue;
      }
      const PendingRespawn p = pending[i];
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
      std::string log_path;
      const std::vector<std::string> args = opts.respawn(p.rank, p.incarnation, log_path);
      if (!spawn(p.rank, args, log_path, p.incarnation)) {
        error = "respawn fork failed";
        kill_all();
        return false;
      }
      progressed = true;
    }

    std::size_t live = 0;
    for (const auto& c : children_)
      if (c.exit_code < 0) ++live;
    if (live == 0 && pending.empty()) break;

    if (now_ms() >= deadline) {
      error = "timed out waiting for socket children (supervised); killing the group";
      kill_all();
      return false;
    }
    if (!progressed) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // Success iff the LAST incarnation of every rank exited zero (earlier
  // incarnations died on purpose — that is what supervision is for).
  std::unordered_map<std::uint32_t, const Child*> last;
  for (const auto& c : children_) {
    auto [it, fresh] = last.emplace(c.rank, &c);
    if (!fresh && c.incarnation >= it->second->incarnation) it->second = &c;
  }
  for (const auto& [rank, c] : last) {
    if (c->exit_code != 0) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "final incarnation %u of rank %u exited with code %d — see %s",
                    c->incarnation, rank, c->exit_code, c->log_path.c_str());
      error = buf;
      return false;
    }
  }
  return true;
}

void ProcessGroup::kill_all() {
  for (std::size_t i = 0; i < children_.size(); ++i) {
    Child& c = children_[i];
    if (c.exit_code >= 0) continue;
    kill(c.pid, SIGKILL);
    int status = 0;
    waitpid(c.pid, &status, 0);
    c.exit_code = 128 + SIGKILL;
    clear_forwarding(i);
  }
}

}  // namespace paris::runtime
