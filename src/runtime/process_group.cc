#include "runtime/process_group.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <thread>

namespace paris::runtime {

namespace {
std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ProcessGroup::~ProcessGroup() { kill_all(); }

bool ProcessGroup::spawn(std::uint32_t rank, const std::vector<std::string>& args,
                         const std::string& log_path) {
  const pid_t pid = fork();
  if (pid < 0) return false;
  if (pid == 0) {
    // Child marker: lets the launcher path detect (and refuse) recursive
    // self-spawning when a binary forgets the maybe_run_socket_child hook.
    setenv("PARIS_SOCKET_CHILD", "1", 1);
    // Child: logs replace stdout/stderr, then become the target binary.
    const int fd = open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      dup2(fd, STDOUT_FILENO);
      dup2(fd, STDERR_FILENO);
      if (fd > STDERR_FILENO) close(fd);
    }
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>("/proc/self/exe"));
    for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    execv("/proc/self/exe", argv.data());
    std::fprintf(stderr, "execv(/proc/self/exe) failed: errno=%d\n", errno);
    _exit(127);
  }
  children_.push_back(Child{rank, pid, log_path, -1});
  return true;
}

bool ProcessGroup::wait_all(std::uint64_t timeout_ms, std::string& error) {
  const std::uint64_t deadline = now_ms() + timeout_ms;
  std::size_t live = 0;
  for (const auto& c : children_)
    if (c.exit_code < 0) ++live;

  while (live > 0) {
    bool progressed = false;
    for (auto& c : children_) {
      if (c.exit_code >= 0) continue;
      int status = 0;
      const pid_t r = waitpid(c.pid, &status, WNOHANG);
      if (r == c.pid) {
        c.exit_code = WIFEXITED(status) ? WEXITSTATUS(status)
                                        : 128 + (WIFSIGNALED(status) ? WTERMSIG(status) : 0);
        --live;
        progressed = true;
        if (c.exit_code != 0) {
          char buf[160];
          std::snprintf(buf, sizeof(buf),
                        "child rank %u (pid %d) exited with code %d — see %s", c.rank,
                        static_cast<int>(c.pid), c.exit_code, c.log_path.c_str());
          error = buf;
          kill_all();
          return false;
        }
      }
    }
    if (live == 0) break;
    if (now_ms() >= deadline) {
      error = "timed out waiting for socket children; killing the group";
      kill_all();
      return false;
    }
    if (!progressed) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return true;
}

void ProcessGroup::kill_all() {
  for (auto& c : children_) {
    if (c.exit_code >= 0) continue;
    kill(c.pid, SIGKILL);
    int status = 0;
    waitpid(c.pid, &status, 0);
    c.exit_code = 128 + SIGKILL;
  }
}

}  // namespace paris::runtime
