#include "runtime/reliable_transport.h"

#include <algorithm>
#include <map>

#include "common/assert.h"

namespace paris::runtime {

namespace {

/// Latest-wins periodic messages: a newer instance on the same channel
/// supersedes an unacked older one, so the older frame can be coalesced to
/// a placeholder instead of being retransmitted through a partition.
/// ReplicateBatch is NOT here — every batch carries unique writes.
int coalesce_slot(wire::MsgType t) {
  switch (t) {
    case wire::MsgType::kHeartbeat:
      return 0;
    case wire::MsgType::kGossipUp:
      return 1;
    case wire::MsgType::kGossipRoot:
      return 2;
    case wire::MsgType::kUstDown:
      return 3;
    default:
      return -1;
  }
}
constexpr int kCoalesceSlots = 4;

}  // namespace

/// Per-node interposer: owns the sender windows of every channel ORIGINATING
/// at this node and the receiver dedup state of every channel TERMINATING at
/// it. All state is touched only on the node's own worker (sends, timer
/// fires and deliveries all run there), so no locks are needed — the same
/// ownership discipline as the backend's per-worker pools.
class ReliableTransport::Endpoint final : public Actor {
 public:
  Endpoint(ReliableTransport& rt, Actor* real) : rt_(rt), real_(real) {}

  void attach(NodeId self) {
    self_ = self;
    const std::uint64_t period = rt_.cfg_.effective_scan_period_us();
    PARIS_CHECK(period > 0);
    // Stagger scan phases across nodes so retransmission bursts do not
    // synchronize cluster-wide.
    timer_ = rt_.exec_.every(self, period, (self * 7919) % period, [this] { scan(); });
  }

  void on_message(NodeId from, const wire::Message& m) override {
    switch (m.type()) {
      case wire::MsgType::kReliableFrame:
        return handle_frame(from, static_cast<const wire::ReliableFrame&>(m));
      case wire::MsgType::kReliableAck:
        return handle_ack(from, static_cast<const wire::ReliableAck&>(m));
      default:
        // Unframed traffic (e.g. from an unwrapped test node) passes through.
        real_->on_message(from, m);
    }
  }

  void send_framed(NodeId to, const wire::Message& msg, std::uint64_t at_us) {
    SendChannel& ch = send_[to];
    const wire::MsgType t = msg.type();
    const std::uint64_t seq = ++ch.next_seq;

    auto frame = rt_.inner_.msg_pool(self_).make<wire::ReliableFrame>();
    frame->seq = seq;
    frame->dst_epoch = ch.dst_epoch;
    frame->inner_type = static_cast<std::uint8_t>(t);
    wire::encode_message(msg, frame->payload);

    if (const int slot = coalesce_slot(t); slot >= 0) {
      const std::uint64_t prev = ch.latest_wins[slot];
      if (prev > ch.acked) tombstone(ch, prev);
      ch.latest_wins[slot] = seq;
    }

    ch.window.push_back(Flight{wire::MessagePtr(std::move(frame)), 0, at_us});
    rt_.stats_.frames_sent.fetch_add(1, std::memory_order_relaxed);
    pump(to, ch, rt_.exec_.now_us());
  }

  std::size_t window_size() const {
    std::size_t n = 0;
    for (const auto& [to, ch] : send_) n += ch.window.size();
    return n;
  }

  /// A peer incarnation restarted with empty reliable state: renumber every
  /// unacked frame toward it from seq 1 (fresh ReliableFrame objects — an
  /// in-flight delayed copy may still reference the old ones) and restart
  /// the dedup state of the channel FROM it. Runs on this node's worker.
  void reset_channels(const std::vector<NodeId>& peers, std::uint32_t peer_epoch) {
    const std::uint64_t now = rt_.exec_.now_us();
    for (const NodeId peer : peers) {
      SendChannel& ch = send_[peer];  // created if absent: future sends need the epoch
      ch.dst_epoch = peer_epoch;
      std::uint64_t n = 0;
      for (Flight& fl : ch.window) {
        const auto& old = static_cast<const wire::ReliableFrame&>(*fl.frame);
        auto nf = rt_.inner_.msg_pool(self_).make<wire::ReliableFrame>();
        nf->seq = ++n;
        nf->dst_epoch = peer_epoch;
        nf->inner_type = old.inner_type;
        nf->payload = old.payload;
        fl.frame = wire::MessagePtr(std::move(nf));
        fl.sent_at_us = 0;  // queued again: pump retransmits from scratch
        fl.sacked = false;
        fl.retransmitted = true;  // Karn: its ack would be ambiguous
      }
      for (auto& lw : ch.latest_wins) lw = lw > ch.acked ? lw - ch.acked : 0;
      ch.next_seq = n;
      ch.acked = 0;
      ch.sent = 0;
      ch.backoff = 1;
      rt_.stats_.channel_resets.fetch_add(1, std::memory_order_relaxed);
      pump(peer, ch, now);
      if (auto it = recv_.find(peer); it != recv_.end()) {
        it->second.delivered = 0;
        it->second.ooo.clear();
        rt_.stats_.channel_resets.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

 private:
  struct Flight {
    wire::MessagePtr frame;
    std::uint64_t sent_at_us = 0;   ///< 0 = queued, not yet transmitted
    std::uint64_t first_at_us = 0;  ///< send_at deadline for the FIRST transmission
    bool sacked = false;            ///< receiver holds it (selective ack)
    bool retransmitted = false;     ///< Karn's rule: no RTT sample from these
  };
  struct SendChannel {
    std::uint64_t next_seq = 0;  ///< last assigned
    std::uint32_t dst_epoch = 0;  ///< receiver incarnation the numbering belongs to
    std::uint64_t acked = 0;     ///< cumulative; window holds [acked+1, next_seq]
    std::uint64_t sent = 0;      ///< highest seq transmitted at least once
    std::uint32_t backoff = 1;   ///< RTO multiplier, doubled per silent round
    std::deque<Flight> window;
    std::uint64_t latest_wins[kCoalesceSlots] = {0, 0, 0, 0};
    RttEstimator rtt;            ///< adaptive-RTO state (Jacobson/Karels)
  };

  struct RecvChannel {
    std::uint64_t delivered = 0;  ///< highest in-order seq handed up
    std::map<std::uint64_t, std::vector<std::uint8_t>> ooo;  ///< buffered past a gap
  };

  /// The channel's current base RTO: the measured estimate when adaptive
  /// RTO is on and primed, the configured constant otherwise.
  std::uint64_t base_rto(const SendChannel& ch) const {
    if (rt_.cfg_.adaptive_rto && ch.rtt.primed()) {
      return ch.rtt.rto_us(rt_.cfg_.min_rto_us, rt_.cfg_.max_rto_us);
    }
    return rt_.cfg_.rto_us;
  }

  /// Transmits queued frames up to the in-flight cap (first transmissions
  /// are ack-clocked: the cap holds the line whenever the window is deeper
  /// than max_in_flight, e.g. against a partitioned peer). Each frame
  /// carries its own send_at deadline, honored however late the cap lets
  /// it out (a past deadline is the backend's clamp-to-now case).
  void pump(NodeId to, SendChannel& ch, std::uint64_t now) {
    const std::uint64_t limit = ch.acked + rt_.cfg_.max_in_flight;
    while (ch.sent < ch.next_seq && ch.sent < limit) {
      Flight& fl = ch.window[ch.sent - ch.acked];  // frame with seq ch.sent + 1
      fl.sent_at_us = now;
      ++ch.sent;
      if (fl.first_at_us != 0) {
        rt_.inner_.send_at(self_, to, fl.frame, fl.first_at_us);
      } else {
        rt_.inner_.send(self_, to, fl.frame);
      }
    }
  }

  /// Replaces the (still unacked) frame `seq` with an empty placeholder so
  /// retransmissions stop carrying its superseded payload.
  void tombstone(SendChannel& ch, std::uint64_t seq) {
    Flight& fl = ch.window[seq - (ch.acked + 1)];
    const auto& old = static_cast<const wire::ReliableFrame&>(*fl.frame);
    if (old.payload.empty()) return;  // already a placeholder
    auto ph = rt_.inner_.msg_pool(self_).make<wire::ReliableFrame>();
    ph->seq = seq;
    ph->dst_epoch = old.dst_epoch;
    ph->inner_type = old.inner_type;
    fl.frame = wire::MessagePtr(std::move(ph));
    rt_.stats_.coalesced.fetch_add(1, std::memory_order_relaxed);
  }

  void handle_frame(NodeId from, const wire::ReliableFrame& f) {
    if (f.dst_epoch != rt_.cfg_.self_epoch) {
      // Stamped for another incarnation of this process: a retransmission
      // numbered for the dead channel (or one sent before the peer noticed
      // our respawn). Dropping it — no ack, no buffering — keeps stale
      // seqs out of the reorder buffer, where they would later mask the
      // renumbered frame carrying the same seq. The sender renumbers and
      // restamps on its own epoch notice, so delivery converges.
      rt_.stats_.fenced_frames.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    RecvChannel& ch = recv_[from];
    if (f.seq <= ch.delivered) {
      // Duplicate: a retransmission raced the ack. Re-ack so the sender's
      // window drains even if the original ack was lost.
      rt_.stats_.dup_frames.fetch_add(1, std::memory_order_relaxed);
      send_ack(from, ch);
      return;
    }
    if (f.seq == ch.delivered + 1) {
      deliver_payload(from, f.payload);
      ch.delivered = f.seq;
      // The gap just filled: drain everything buffered behind it.
      auto it = ch.ooo.begin();
      while (it != ch.ooo.end() && it->first == ch.delivered + 1) {
        deliver_payload(from, it->second);
        ch.delivered = it->first;
        it = ch.ooo.erase(it);
      }
      send_ack(from, ch);
      return;
    }
    // Past a gap (a drop ate a predecessor): buffer, bounded; the stale ack
    // below tells the sender to fast-retransmit the missing head.
    rt_.stats_.ooo_frames.fetch_add(1, std::memory_order_relaxed);
    if (ch.ooo.size() < rt_.cfg_.max_ooo_buffered) {
      ch.ooo.emplace(f.seq, f.payload);  // no-op if that seq is already held
    }
    send_ack(from, ch);  // the SACK ranges tell the sender what to skip
  }

  void deliver_payload(NodeId from, const std::vector<std::uint8_t>& payload) {
    if (payload.empty()) return;  // placeholder: only advances the sequence
    wire::Decoder d(payload);
    const wire::MessagePtr inner = wire::decode_message_pooled(d, rt_.inner_.msg_pool(self_));
    PARIS_DCHECK(d.done());
    real_->on_message(from, *inner);
  }

  /// SACK well-formedness (acks cross process boundaries under the socket
  /// backend, so malformed input is survived, never asserted on): even
  /// count, lo <= hi, the first range strictly beyond the cumack hole
  /// (lo >= cum + 2), ascending and non-adjacent.
  static bool sack_well_formed(const wire::ReliableAck& a) {
    if (a.sack.size() % 2 != 0) return false;
    std::uint64_t prev_hi = a.cum_seq;  // ranges must start past cum+1
    for (std::size_t i = 0; i < a.sack.size(); i += 2) {
      const std::uint64_t lo = a.sack[i], hi = a.sack[i + 1];
      if (lo > hi || lo < prev_hi + 2) return false;
      prev_hi = hi;
    }
    return true;
  }

  /// Marks the window's flights covered by the ack's SACK ranges so
  /// retransmission skips them. Clamped to [acked+1, next_seq]; stale
  /// ranges below the window are no-ops.
  void apply_sack(SendChannel& ch, const wire::ReliableAck& a) {
    if (a.sack.empty() || !rt_.cfg_.sack) return;
    if (!sack_well_formed(a) || a.cum_seq > ch.next_seq) {
      rt_.stats_.malformed_acks.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    for (std::size_t i = 0; i < a.sack.size(); i += 2) {
      std::uint64_t lo = std::max(a.sack[i], ch.acked + 1);
      const std::uint64_t hi = std::min(a.sack[i + 1], ch.next_seq);
      for (std::uint64_t seq = lo; seq <= hi; ++seq) {
        ch.window[seq - (ch.acked + 1)].sacked = true;
      }
    }
  }

  void handle_ack(NodeId from, const wire::ReliableAck& a) {
    const auto it = send_.find(from);
    if (it == send_.end()) return;  // ack for a channel we never opened
    SendChannel& ch = it->second;
    if (a.cum_seq > ch.next_seq) {
      // A peer acking seqs we never assigned is broken (or restarted with
      // stale state): ignore the whole ack rather than corrupt the window.
      rt_.stats_.malformed_acks.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (a.cum_seq <= ch.acked) {
      rt_.stats_.stale_acks.fetch_add(1, std::memory_order_relaxed);
      // Even a stale ack carries fresh SACK state — during loss recovery
      // stale acks are the MAIN carrier of it.
      apply_sack(ch, a);
      // Fast retransmit: a stale ack while frames are in flight means the
      // receiver is stuck behind a gap. The receiver buffers everything
      // after the gap, so resending just the window HEAD fills it; the
      // guard interval absorbs the stale-ack burst one loss produces.
      if (!ch.window.empty()) {
        const std::uint64_t now = rt_.exec_.now_us();
        Flight& head = ch.window.front();
        if (head.sent_at_us + rt_.cfg_.effective_fast_retx_guard_us() <= now) {
          rt_.inner_.send(self_, from, head.frame);
          head.sent_at_us = now;
          head.retransmitted = true;
          rt_.stats_.retransmits.fetch_add(1, std::memory_order_relaxed);
          rt_.stats_.fast_retransmits.fetch_add(1, std::memory_order_relaxed);
        }
      }
      return;
    }
    const std::uint64_t now = rt_.exec_.now_us();
    // RTT sample from the NEWEST acked frame that was transmitted exactly
    // once (Karn's rule: a retransmitted frame's ack is ambiguous).
    std::uint64_t sample_from = 0;
    while (ch.acked < a.cum_seq && !ch.window.empty()) {
      const Flight& fl = ch.window.front();
      if (!fl.retransmitted && fl.sent_at_us != 0) sample_from = fl.sent_at_us;
      ch.window.pop_front();
      ++ch.acked;
    }
    if (sample_from != 0 && now >= sample_from) {
      ch.rtt.on_sample(now - sample_from);
      rt_.stats_.rtt_samples.fetch_add(1, std::memory_order_relaxed);
    }
    if (ch.sent < ch.acked) ch.sent = ch.acked;
    ch.backoff = 1;  // forward progress: reset the backoff
    apply_sack(ch, a);
    pump(from, ch, now);  // ack-clock the queued tail out
  }

  void send_ack(NodeId to, const RecvChannel& ch) {
    auto ack = rt_.inner_.msg_pool(self_).make<wire::ReliableAck>();
    ack->cum_seq = ch.delivered;
    if (rt_.cfg_.sack && !ch.ooo.empty()) {
      // Coalesce the buffered-past-the-gap seqs (the map is ordered) into
      // up to max_sack_ranges [lo,hi] pairs; the tail past the cap is
      // simply re-covered by retransmission.
      std::uint64_t lo = 0, hi = 0;
      for (const auto& [seq, payload] : ch.ooo) {
        if (lo == 0) {
          lo = hi = seq;
        } else if (seq == hi + 1) {
          hi = seq;
        } else {
          ack->sack.push_back(lo);
          ack->sack.push_back(hi);
          if (ack->sack.size() / 2 >= rt_.cfg_.max_sack_ranges) {
            lo = 0;
            break;
          }
          lo = hi = seq;
        }
      }
      if (lo != 0) {
        ack->sack.push_back(lo);
        ack->sack.push_back(hi);
      }
    }
    rt_.inner_.send(self_, to, std::move(ack));
    rt_.stats_.acks_sent.fetch_add(1, std::memory_order_relaxed);
  }

  /// Resends the IN-FLIGHT burst's GAPS in order — flights the receiver
  /// selectively acked are skipped (with cfg.sack off nothing is ever
  /// marked, so this degrades to the PR 4 go-back-N over the burst) — then
  /// tops the burst back up to the cap. Queued frames beyond the cap stay
  /// queued — a deep blackout backlog costs one bounded burst per probe,
  /// not O(backlog).
  void retransmit_window(NodeId to, SendChannel& ch, std::uint64_t now) {
    const std::uint64_t n = ch.sent - ch.acked;
    std::uint64_t resent = 0, skipped = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      Flight& fl = ch.window[i];
      if (fl.sacked) {
        ++skipped;
        continue;  // the receiver already holds it
      }
      rt_.inner_.send(self_, to, fl.frame);  // handle copy, same bytes
      fl.sent_at_us = now;
      fl.retransmitted = true;
      ++resent;
    }
    rt_.stats_.retransmits.fetch_add(resent, std::memory_order_relaxed);
    if (skipped != 0) rt_.stats_.sacked_skips.fetch_add(skipped, std::memory_order_relaxed);
    pump(to, ch, now);
  }

  /// RTO scan (periodic, on this node's worker): any channel whose oldest
  /// unacked frame has been silent past the (backed-off) RTO retransmits
  /// its in-flight gaps in order. The base RTO is per channel when the
  /// adaptive estimator is primed.
  void scan() {
    const std::uint64_t now = rt_.exec_.now_us();
    for (auto& [to, ch] : send_) {
      if (ch.window.empty()) continue;
      const std::uint64_t base = base_rto(ch);
      const std::uint64_t rto = std::min<std::uint64_t>(base * ch.backoff, rt_.cfg_.max_rto_us);
      if (ch.window.front().sent_at_us + rto > now) continue;
      retransmit_window(to, ch, now);
      if (base * ch.backoff < rt_.cfg_.max_rto_us) ch.backoff *= 2;
    }
  }

  ReliableTransport& rt_;
  Actor* real_;
  NodeId self_ = kInvalidNode;
  std::unordered_map<NodeId, SendChannel> send_;  ///< keyed by destination
  std::unordered_map<NodeId, RecvChannel> recv_;  ///< keyed by origin
  TimerHandle timer_;
};

ReliableTransport::ReliableTransport(Transport& inner, Executor& exec, ReliableConfig cfg)
    : TransportDecorator(inner), exec_(exec), cfg_(cfg) {}

ReliableTransport::~ReliableTransport() = default;

Actor* ReliableTransport::wrap(Actor* real) {
  PARIS_CHECK(real != nullptr);
  endpoints_.push_back(std::make_unique<Endpoint>(*this, real));
  return endpoints_.back().get();
}

void ReliableTransport::attach(Actor* wrapped, NodeId node) {
  auto* ep = static_cast<Endpoint*>(wrapped);
  if (by_node_.size() <= node) by_node_.resize(node + 1, nullptr);
  PARIS_CHECK_MSG(by_node_[node] == nullptr, "node attached twice");
  by_node_[node] = ep;
  ep->attach(node);
}

void ReliableTransport::send(NodeId from, NodeId to, wire::MessagePtr msg) {
  Endpoint* ep = from < by_node_.size() ? by_node_[from] : nullptr;
  if (ep == nullptr) {  // unwrapped sender (tests): raw passthrough
    inner_.send(from, to, std::move(msg));
    return;
  }
  ep->send_framed(to, *msg, /*at_us=*/0);
}

void ReliableTransport::send_at(NodeId from, NodeId to, wire::MessagePtr msg,
                                std::uint64_t at_us) {
  Endpoint* ep = from < by_node_.size() ? by_node_[from] : nullptr;
  if (ep == nullptr) {
    inner_.send_at(from, to, std::move(msg), at_us);
    return;
  }
  ep->send_framed(to, *msg, at_us);
}

ReliableTransport::Stats ReliableTransport::stats() const {
  Stats s;
  s.frames_sent = stats_.frames_sent.load(std::memory_order_relaxed);
  s.retransmits = stats_.retransmits.load(std::memory_order_relaxed);
  s.fast_retransmits = stats_.fast_retransmits.load(std::memory_order_relaxed);
  s.acks_sent = stats_.acks_sent.load(std::memory_order_relaxed);
  s.dup_frames = stats_.dup_frames.load(std::memory_order_relaxed);
  s.ooo_frames = stats_.ooo_frames.load(std::memory_order_relaxed);
  s.stale_acks = stats_.stale_acks.load(std::memory_order_relaxed);
  s.coalesced = stats_.coalesced.load(std::memory_order_relaxed);
  s.sacked_skips = stats_.sacked_skips.load(std::memory_order_relaxed);
  s.malformed_acks = stats_.malformed_acks.load(std::memory_order_relaxed);
  s.rtt_samples = stats_.rtt_samples.load(std::memory_order_relaxed);
  s.channel_resets = stats_.channel_resets.load(std::memory_order_relaxed);
  s.fenced_frames = stats_.fenced_frames.load(std::memory_order_relaxed);
  return s;
}

std::size_t ReliableTransport::window_size(NodeId node) const {
  Endpoint* ep = node < by_node_.size() ? by_node_[node] : nullptr;
  return ep != nullptr ? ep->window_size() : 0;
}

void ReliableTransport::reset_peer_channels(NodeId self, const std::vector<NodeId>& peers,
                                            std::uint32_t peer_epoch) {
  Endpoint* ep = self < by_node_.size() ? by_node_[self] : nullptr;
  if (ep != nullptr) ep->reset_channels(peers, peer_epoch);
}

}  // namespace paris::runtime
