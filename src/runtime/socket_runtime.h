#pragma once
// SocketBackend: the protocol stack across real OS processes (DESIGN.md §10).
//
// Every process of a socket deployment builds the SAME topology in the SAME
// registration order, so node ids agree everywhere by construction; each
// process rank OWNS the nodes of the data centers with dc % nprocs == rank
// and executes only those. Intra-process traffic goes through the wrapped
// ThreadBackend's mailboxes exactly as before; a message addressed to a
// node another process owns is routed out instead (RemoteRouter hook):
//
//   [len u32][from u32][to u32][encode_message bytes]       (little-endian)
//
// length-prefixed on a per-peer TCP connection. With cfg.reliable on, the
// encoded message IS a wire::ReliableFrame / wire::ReliableAck — the same
// seq/ack/SACK framing the thread runtime uses — so retransmission, dedup
// and selective repeat work identically across the process boundary; the
// whole decorator chain (Reliable → Chaos → Partition → Latency) composes
// on top unchanged, because it runs above the Transport seam in the sending
// process.
//
// I/O model (DESIGN §12): one pump thread per process services the peer
// sockets (all nonblocking), the listen socket and a wake pipe, through one
// of two interchangeable engines selected by Options::pump:
//
//   * poll: a poll(2) readiness loop. Outbound frames queue per peer as a
//     ring of frame buffers; the pump swaps the ring for its private drain
//     list and flushes it as iovec chains via one sendmsg() per batch (≤
//     kMaxWritevIovecs iovecs / kMaxWritevBytes bytes per call, resuming
//     mid-iovec after a short write). Inbound reads land directly in the
//     reassembler's buffer in kReadChunk gulps, so one syscall drains many
//     frames.
//   * uring: the same batching policy driven by an io_uring submission
//     ring (recv + sendmsg SQEs, a timeout tick for beacons/redial).
//     Probed at runtime; when the kernel lacks io_uring the backend logs a
//     note, counts uring_fallback and runs the poll engine instead — never
//     a hard failure.
//
// Flow control: each peer's outbound ring is bounded by
// Options::outbound_budget bytes. When the ring is full, forward() REFUSES
// the frame (returns false) and the sending worker parks the envelope
// locally (ThreadBackend's router park path, counted as
// backpressure_stalls) and retries shortly — one slow peer degrades that
// channel instead of ballooning resident memory. The reliable layer's
// per-channel in-flight cap bounds how much a channel can ever park.
//
// Worker threads never block on the network: a send appends to the peer's
// ring and, when the ring was empty, pokes the wake pipe (a one-byte
// nonblocking write, elided while a wake is already armed so a flood of
// senders can't fill the pipe). The pump's poll timeout doubles as the
// redial timer: if a connection dies mid-run, the original dialer redials
// with capped exponential backoff + seed-deterministic jitter — in-flight
// bytes on the dead connection are gone (exactly the crash/restart case),
// and the reliable layer's seq state retransmits and dedups across the
// reconnect.
//
// Membership is epoch-fenced (DESIGN §11): every (re)incarnation of a rank
// carries a monotonically increasing epoch in its connection hello, and both
// sides heartbeat it as a pump-level beacon lease. A hello or beacon whose
// epoch is OLDER than the best known for that rank is fenced — the
// connection is closed and counted — so a zombie half of a partitioned old
// incarnation can never feed stale frames into reliable windows. Inbound
// frames are additionally validated byte-level (wire::validate_encoded_
// message) before touching a mailbox: the strict in-process decoder treats
// malformation as a codec bug and aborts, but bytes from a socket are a
// trust boundary — corrupt frames are counted and dropped instead.
//
// Determinism: none beyond the thread runtime's — see DESIGN §10/§12 for
// which guarantees survive real sockets (checker-validated convergence
// does, under either pump engine; byte-identical output and
// seed-reproducible chaos schedules across processes do not, since every
// process draws from its own stream and the kernel orders completions).

#include <sys/uio.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/endpoint.h"
#include "runtime/thread_runtime.h"

namespace paris::runtime {

/// Which engine drives the socket pump thread (DESIGN §12).
enum class SocketPump : std::uint8_t {
  kPoll = 0,   ///< poll(2) readiness loop (default, works everywhere)
  kUring = 1,  ///< io_uring submission ring; falls back to poll if absent
};

inline const char* socket_pump_name(SocketPump p) {
  return p == SocketPump::kUring ? "uring" : "poll";
}

/// Placement + wiring of a multi-process socket deployment. rank < 0 means
/// "launcher": run_experiment spawns the children and aggregates; only
/// children (rank >= 0) ever build a SocketBackend.
struct SocketConfig {
  std::int32_t rank = -1;        ///< this process's rank; -1 = launcher
  std::uint32_t processes = 0;   ///< 0 = one per DC
  /// Rank r listens on hosts[r]. Empty = the deprecated --listen-base-port
  /// convenience applies: the deployment expands loopback_host_list(nprocs,
  /// base_port) — the only surviving base_port + rank site in the tree.
  std::vector<Endpoint> hosts;
  std::uint16_t base_port = 7421;  ///< DEPRECATED alias; see `hosts`
  std::uint64_t connect_timeout_ms = 15'000;
  /// Mesh identity, echoed in every connection hello: two concurrent runs
  /// sharing a port range must not silently cross-connect their clusters.
  /// 0 = the launcher derives one (pid ^ seed) and ships it to children.
  std::uint64_t mesh_token = 0;
  std::string dir;  ///< launcher: child logs + result files (empty = temp dir)
  /// Incarnation epoch of THIS child's rank: 0 for the initial spawn, +1 per
  /// respawn (the launcher passes it via argv, not the shared config file).
  /// Carried in the hello and heartbeated as a beacon lease; peers fence any
  /// connection or beacon carrying an older epoch for the same rank.
  std::uint32_t epoch = 0;
  /// Launcher: respawn a dead rank (with a bumped epoch + state transfer)
  /// instead of failing fast. CI exactness jobs keep the fail-fast default.
  bool supervise = false;
  std::uint32_t max_respawns = 2;  ///< supervise: total respawn budget
  /// Launcher fault schedule: SIGKILL `kill_rank` once `kill_after_ms` of
  /// supervised wait have elapsed (-1 = no scheduled kill).
  std::int32_t kill_rank = -1;
  std::uint64_t kill_after_ms = 0;
  /// I/O pump engine; uring probes at runtime and falls back to poll.
  SocketPump pump = SocketPump::kPoll;
  /// Per-peer outbound ring budget in bytes; a full ring makes forward()
  /// refuse frames so senders park (backpressure). 0 = unbounded (the
  /// pre-§12 behavior, kept for A/B measurement only).
  std::uint64_t outbound_budget = 4u << 20;
  /// false = one frame per write syscall + 4KB reads (the unbatched path,
  /// kept measurable for the bench's batched-vs-unbatched row).
  bool batch_io = true;
  /// Coordinated-omission regression hook (tests): stall_at_ms into the run,
  /// the child with rank == stall_rank stops draining outbound frames toward
  /// stall_peer for stall_len_ms (debug_stall_peer), then resumes. A
  /// closed-loop driver's percentiles stay flat through such a stall; the
  /// open-loop intended percentiles must not. -1 = disabled.
  std::int32_t stall_rank = -1;
  std::uint32_t stall_peer = 0;
  std::uint64_t stall_at_ms = 0;
  std::uint64_t stall_len_ms = 0;

  std::uint32_t resolve_processes(std::uint32_t num_dcs) const {
    return processes != 0 ? processes : num_dcs;
  }
};

/// Socket-pump counters (per process).
struct SocketStats {
  std::uint64_t frames_out = 0;     ///< frames routed to a peer
  std::uint64_t frames_in = 0;      ///< frames injected from peers
  std::uint64_t bytes_out = 0;      ///< payload bytes written to sockets
  std::uint64_t bytes_in = 0;       ///< payload bytes read from sockets
  std::uint64_t partial_reads = 0;  ///< reads that ended mid-frame
  std::uint64_t short_writes = 0;   ///< writes that drained only part of a batch
  std::uint64_t reconnects = 0;     ///< connections re-established mid-run
  std::uint64_t dropped_dead = 0;   ///< frames dropped: peer down, no buffer
  std::uint64_t redial_attempts = 0;   ///< redials tried (incl. failures)
  std::uint64_t redial_giveups = 0;    ///< dead episodes that hit the retry cap
  std::uint64_t fenced_stale_epoch = 0;  ///< hellos/beacons from a dead incarnation
  std::uint64_t malformed_frames = 0;    ///< inbound frames failing validation
  std::uint64_t read_syscalls = 0;   ///< recv/readv/uring-recv completions
  std::uint64_t write_syscalls = 0;  ///< sendmsg/uring-send completions
  std::uint64_t flushes = 0;         ///< outbound ring→drain swaps (batches)
  std::uint64_t backpressure_stalls = 0;  ///< envelopes parked: peer ring full
  std::uint64_t backpressure_drops = 0;   ///< parked envelopes shed at the cap
  std::uint64_t uring_fallback = 0;  ///< 1 if uring was asked for but absent

  /// Syscalls spent per frame moved (both directions); the bench's headline
  /// batching metric. 0 when no frames moved.
  double syscalls_per_frame() const {
    const std::uint64_t fr = frames_out + frames_in;
    return fr == 0 ? 0.0
                   : static_cast<double>(read_syscalls + write_syscalls) /
                         static_cast<double>(fr);
  }
  /// Payload bytes moved per syscall (both directions). 0 when idle.
  double bytes_per_syscall() const {
    const std::uint64_t sc = read_syscalls + write_syscalls;
    return sc == 0 ? 0.0
                   : static_cast<double>(bytes_out + bytes_in) /
                         static_cast<double>(sc);
  }
};

namespace sockdetail {

inline constexpr std::uint32_t kHelloMagic = 0x50415253;  // "PARS"
/// [magic u32][rank u32][token u64][epoch u32][reserved u32]
inline constexpr std::size_t kHelloSize = 24;
inline constexpr std::size_t kFrameHeader = 4;            // u32 length prefix
inline constexpr std::size_t kMaxFrame = 64u << 20;       // sanity bound

/// Frames whose `to` field is this sentinel are pump-level epoch beacons
/// ([rank u32][epoch u32][view u32] payload), consumed by the peer's pump as
/// a lease heartbeat — never injected into a mailbox. The view field is how
/// membership view changes propagate (DESIGN §11): a rank that installed
/// view V advertises it here, and peers install on observation. The sentinel
/// can't collide with a real node id (kInvalidNode).
inline constexpr std::uint32_t kEpochBeaconDst = 0xFFFF'FFFFu;
inline constexpr std::size_t kBeaconBytes = 12;

/// Batching policy (DESIGN §12): one outbound syscall covers at most this
/// many iovecs / bytes, and one inbound syscall reads up to kReadChunk.
inline constexpr std::size_t kMaxWritevIovecs = 64;
inline constexpr std::size_t kMaxWritevBytes = 256u << 10;
inline constexpr std::size_t kReadChunk = 256u << 10;

/// One reassembled wire frame.
struct Frame {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  std::vector<std::uint8_t> bytes;  ///< encode_message payload
};

/// Zero-copy view of a reassembled frame: `data` points into the
/// reassembler's buffer and is valid only until the next feed()/next*()
/// call. The backend's inbound path injects straight from this view.
struct FrameView {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  const std::uint8_t* data = nullptr;
  std::size_t len = 0;
};

/// Appends [len][from][to][msg bytes] to out (len covers from+to+msg).
void append_frame(std::vector<std::uint8_t>& out, NodeId from, NodeId to,
                  const std::uint8_t* msg, std::size_t n);

/// Incremental frame parser: feed() arbitrary byte chunks (any split — one
/// byte at a time is fine), next() yields complete frames. Consumed bytes
/// are compacted lazily so a slow trickle does not shift the buffer per
/// byte. Returns false from feed() on a protocol error (frame longer than
/// kMaxFrame or shorter than its own header), after which the stream is
/// unusable.
///
/// The pump's zero-copy inbound path skips feed()'s memcpy entirely:
/// reserve(n) hands out a writable window at the tail of the internal
/// buffer (compacting/growing as needed) for recv() to fill, and commit(m)
/// publishes the m bytes actually read. feed() is reserve+memcpy+commit.
class FrameReassembler {
 public:
  bool feed(const std::uint8_t* p, std::size_t n);
  std::uint8_t* reserve(std::size_t n);  ///< writable tail window of >= n bytes
  void commit(std::size_t n) { len_ += n; }
  bool ok() const { return !bad_; }  ///< false once the stream went corrupt
  bool next(Frame& out);       ///< copying variant (tests, tools)
  bool next_view(FrameView& out);  ///< zero-copy variant (the pump's hot path)
  std::size_t buffered() const { return len_ - off_; }
  void reset() {
    len_ = 0;
    off_ = 0;
    bad_ = false;
  }

 private:
  std::vector<std::uint8_t> buf_;  ///< capacity storage; valid bytes = [off_, len_)
  std::size_t len_ = 0;
  std::size_t off_ = 0;
  bool bad_ = false;
};

/// Scatter-gather cursor over a queue of whole-frame buffers: build() fills
/// an iovec chain (capped by count and bytes) starting wherever the last
/// short write stopped, advance(n) consumes n written bytes — possibly
/// mid-frame, mid-iovec — and done() says the queue drained. This is the
/// resumable core of the pump's batched write path, kept free of fd/state
/// so the torture test can drive it over a socketpair directly.
class FrameQueueCursor {
 public:
  /// Fills up to max_iov entries covering at most max_bytes unwritten bytes;
  /// returns the number of entries filled (0 = nothing left).
  std::size_t build(const std::vector<std::vector<std::uint8_t>>& frames,
                    struct iovec* iov, std::size_t max_iov,
                    std::size_t max_bytes) const;
  void advance(const std::vector<std::vector<std::uint8_t>>& frames, std::size_t n);
  bool done(const std::vector<std::vector<std::uint8_t>>& frames) const {
    return frame_ >= frames.size();
  }
  std::size_t frame_index() const { return frame_; }
  std::size_t byte_offset() const { return off_; }
  void reset() {
    frame_ = 0;
    off_ = 0;
  }

 private:
  std::size_t frame_ = 0;  ///< first frame with unwritten bytes
  std::size_t off_ = 0;    ///< written prefix of frames[frame_]
};

struct Uring;  // io_uring engine state; defined in socket_runtime.cc only

}  // namespace sockdetail

class SocketBackend final : public Backend, public RemoteRouter {
 public:
  struct Options {
    std::uint32_t rank = 0;
    std::uint32_t nprocs = 1;
    /// Rank r binds hosts[r] and dials peers at their listed endpoints;
    /// exactly nprocs entries. There is no port arithmetic at this layer.
    std::vector<Endpoint> hosts;
    std::uint32_t workers = 1;  ///< worker threads for the LOCAL actor set
    std::uint64_t seed = 1;
    std::uint64_t connect_timeout_ms = 15'000;
    /// Must match across the whole mesh; hellos carrying a different token
    /// are rejected (a concurrent run sharing the port range, not a peer).
    std::uint64_t mesh_token = 0;
    /// This rank's incarnation epoch (0 = initial spawn); see SocketConfig.
    std::uint32_t epoch = 0;
    /// I/O pump engine; kUring probes at start() and falls back to poll.
    SocketPump pump = SocketPump::kPoll;
    /// Per-peer outbound ring budget in bytes (0 = unbounded); see
    /// SocketConfig::outbound_budget.
    std::uint64_t outbound_budget = 4u << 20;
    bool batch_io = true;  ///< false: 1 frame/write + 4KB reads (bench A/B)
  };

  explicit SocketBackend(Options opt);
  ~SocketBackend() override;

  // --- Backend ---
  Kind kind() const override { return Kind::kSockets; }
  Executor& exec() override { return tb_.exec(); }
  Transport& transport() override { return tb_.transport(); }
  Rng& rng() override { return tb_.rng(); }
  NodeId add_node(Actor* actor, DcId dc, ServiceFn service,
                  NodeId colocate_with = kInvalidNode) override;
  void run_for(std::uint64_t us) override;
  void stop() override;
  std::uint64_t events_executed() const override { return tb_.events_executed(); }
  bool local(NodeId n) const override { return is_local(n); }

  // --- RemoteRouter ---
  bool is_local(NodeId n) const override {
    return owner_of(node_dc_[n]) == opt_.rank;
  }
  bool forward(NodeId from, NodeId to, const std::vector<std::uint8_t>& bytes) override;

  /// Binds the listen port, establishes the full peer mesh (dial ranks
  /// below ours, accept ranks above; blocks until complete or
  /// connect_timeout_ms, then aborts) and starts the I/O pump + worker
  /// threads. run_for() calls it; idempotent.
  void start();

  std::uint32_t owner_of(DcId dc) const { return dc % opt_.nprocs; }
  std::uint32_t rank() const { return opt_.rank; }
  std::uint32_t nprocs() const { return opt_.nprocs; }
  std::uint32_t epoch() const { return opt_.epoch; }
  /// Engine actually driving the pump (kPoll after a uring fallback).
  SocketPump active_pump() const { return active_pump_; }
  SocketStats stats() const;

  /// True when this kernel can set up and drive an io_uring; `why` (if
  /// non-null) gets the failure reason. Probing builds and tears down a
  /// tiny ring — cheap enough for CLI/CI gating (--probe-io-uring).
  static bool probe_io_uring(std::string* why = nullptr);

  /// Fired (from the pump thread, or the start() caller during mesh setup)
  /// whenever a peer rank's known epoch INCREASES — i.e. that rank was
  /// respawned. Install before start(); the deployment layer uses it to
  /// reset reliable channels and fence lost coordinators.
  using EpochListener = std::function<void(std::uint32_t rank, std::uint32_t epoch)>;
  void set_epoch_listener(EpochListener fn) { epoch_listener_ = std::move(fn); }
  /// Highest epoch observed (via hello or beacon) for `peer_rank`.
  std::uint32_t peer_epoch(std::uint32_t peer_rank) const {
    return peer_epochs_[peer_rank].load(std::memory_order_acquire);
  }

  /// Fired (pump thread or mesh setup) whenever a peer rank's advertised
  /// membership view id INCREASES. The deployment layer installs the view
  /// locally, so a view change scheduled on one rank reaches the whole mesh
  /// within a beacon period. Install before start().
  using ViewListener = std::function<void(std::uint32_t rank, std::uint32_t view)>;
  void set_view_listener(ViewListener fn) { view_listener_ = std::move(fn); }
  /// Starts advertising membership view `v` in this rank's hellos and
  /// beacons (monotone max) and pushes an immediate beacon to every live
  /// peer rather than waiting out the beacon period.
  void advertise_view(std::uint32_t v);
  /// Highest view id observed (via hello or beacon) from `peer_rank`.
  std::uint32_t peer_view(std::uint32_t peer_rank) const {
    return peer_views_[peer_rank].load(std::memory_order_acquire);
  }

  /// Test hook: shuts down the TCP connection to `peer_rank` (both
  /// directions), as if the link died. The pump notices EOF; the original
  /// dialer then redials, and the reliable layer's retransmission + seq
  /// dedup must recover everything that was in flight.
  void debug_kill_connection(std::uint32_t peer_rank);

  /// Test hook: while set, the pump neither reads from nor writes to
  /// `peer_rank`'s connection — as if the remote kernel stopped draining
  /// its receive buffer. The link stays alive, so forward() keeps queueing
  /// until the outbound budget refuses frames and senders park
  /// (backpressure). Clearing it lets the stalled bytes flow again.
  void debug_stall_peer(std::uint32_t peer_rank, bool stalled);

  /// Test hook: bytes currently queued (unwritten) toward `peer_rank` —
  /// the quantity outbound_budget bounds.
  std::uint64_t debug_outbound_queued(std::uint32_t peer_rank) const;

 private:
  struct Peer {
    int fd = -1;
    bool alive = false;
    bool we_dial = false;  ///< we originated the connection (and redial it)
    // Redial schedule (pump thread only): capped exponential backoff with
    // seed-deterministic jitter, reset per dead episode. After the retry cap
    // the episode gives up — a respawned peer revives it by dialing us.
    std::uint64_t next_redial_us = 0;
    std::uint64_t redial_backoff_us = 0;
    std::uint32_t redial_tries = 0;
    bool redial_gave_up = false;
    sockdetail::FrameReassembler in;
    // Outbound ring (DESIGN §12): workers append whole-frame buffers to
    // `out` under mu, recycling from `spare`; the pump SWAPS the ring for
    // its private `drain` list and flushes iovec chains with no lock held,
    // so a slow syscall burst never stalls a forwarding worker. Short
    // writes resume at `dcur`; order holds because drain always empties
    // before the next swap. `queued` tracks every unwritten byte
    // (out + drain + staged) — forward()'s budget check and the pump's
    // "anything pending?" test read it lock-free.
    std::mutex mu;
    std::vector<std::vector<std::uint8_t>> out;    ///< producers, under mu
    std::vector<std::vector<std::uint8_t>> spare;  ///< recycled buffers, under mu
    std::vector<std::vector<std::uint8_t>> drain;  ///< pump thread only
    sockdetail::FrameQueueCursor dcur;             ///< pump thread only
    std::atomic<std::uint64_t> queued{0};
    std::atomic<bool> stalled{false};  ///< debug_stall_peer
    // uring engine only (pump thread): one recv and one send op may be in
    // flight per peer; staged send bytes live in sbuf so drain buffers can
    // recycle at submission time while the kernel still reads sbuf.
    bool recv_inflight = false;
    bool send_inflight = false;
    std::vector<std::uint8_t> sbuf;  ///< staged send bytes (stable in flight)
    std::size_t sbuf_off = 0, sbuf_len = 0;
    /// Bumped on every fd change (attach/redial/death). uring completions
    /// carry the generation they were submitted under; a mismatch means the
    /// op belongs to a previous connection (fd numbers get reused) and its
    /// result is discarded.
    std::uint32_t conn_gen = 0;
  };

  void io_main();
  void io_main_poll();
  void io_main_uring(sockdetail::Uring& ur);
  /// Shared periodic work (both engines): beacons, redial schedule,
  /// pending-hello progression. Returns the poll/tick timeout hint in ms.
  int periodic(std::uint64_t now_us);
  void handle_readable(Peer& p);
  void handle_writable(Peer& p);
  /// Runs the reassembler over freshly-committed inbound bytes: beacons,
  /// validation, mailbox injection. Shared by both engines. Returns false
  /// when the stream went corrupt (caller must mark_dead).
  bool process_inbound(Peer& p, std::size_t bytes_read);
  /// Swaps out→drain when drain is empty (recycling spent buffers into
  /// spare); returns true when drain has unwritten bytes afterwards.
  bool refill_drain(Peer& p);
  bool out_pending(Peer& p) const {
    return p.queued.load(std::memory_order_relaxed) != 0;
  }
  void mark_dead(Peer& p);
  void mark_dead_locked(Peer& p);  ///< caller holds p.mu
  bool dial_peer(std::uint32_t r, std::uint64_t deadline_ms);
  void accept_pending();
  void wake();
  /// Queues an epoch beacon ([rank][epoch][view] of SELF) on `p` (locks p.mu).
  void queue_beacon(Peer& p);
  /// Records `e` for `rank`; fires the listener on an increase. Returns
  /// false when `e` is OLDER than the known epoch — the caller must fence.
  bool note_epoch(std::uint32_t rank, std::uint32_t e);
  /// Records view `v` for `rank`; fires the view listener on an increase.
  /// Views only ever grow — an older advertised view is simply stale news
  /// (the peer will catch up from OUR beacons), never a fencing offense.
  void note_view(std::uint32_t rank, std::uint32_t v);

  Options opt_;
  ThreadBackend tb_;
  std::vector<DcId> node_dc_;  ///< appended BEFORE tb_.add_node (see .cc)
  std::vector<std::unique_ptr<Peer>> peers_;  ///< index = rank; [rank()] unused
  /// Accepted connections whose hello has not fully arrived yet.
  struct PendingAccept {
    int fd = -1;
    std::uint8_t hello[sockdetail::kHelloSize];
    std::size_t got = 0;
  };
  std::vector<PendingAccept> pending_;
  int listen_fd_ = -1;
  int wake_rd_ = -1, wake_wr_ = -1;
  /// True between a wake-pipe write and the pump draining it: senders skip
  /// the syscall (and can't fill the pipe) while a wake is already armed.
  std::atomic<bool> wake_armed_{false};
  std::thread io_thread_;
  std::atomic<bool> io_running_{false};
  std::atomic<bool> flush_and_exit_{false};
  bool started_ = false;
  bool stopped_ = false;
  SocketPump active_pump_ = SocketPump::kPoll;
  /// Live io_uring engine state (null when polling); built in start() so
  /// the fallback decision is visible before the pump thread exists.
  std::unique_ptr<sockdetail::Uring> uring_;

  struct AtomicStats {
    std::atomic<std::uint64_t> frames_out{0}, frames_in{0}, bytes_out{0}, bytes_in{0},
        partial_reads{0}, short_writes{0}, reconnects{0}, dropped_dead{0},
        redial_attempts{0}, redial_giveups{0}, fenced_stale_epoch{0},
        malformed_frames{0}, read_syscalls{0}, write_syscalls{0}, flushes{0},
        uring_fallback{0};
  };
  AtomicStats stats_;

  /// Highest epoch seen per peer rank (hello or beacon); [rank()] unused.
  std::unique_ptr<std::atomic<std::uint32_t>[]> peer_epochs_;
  EpochListener epoch_listener_;
  /// Highest membership view id each peer rank has advertised; [rank()]
  /// holds OUR advertised view (what hellos and beacons carry).
  std::unique_ptr<std::atomic<std::uint32_t>[]> peer_views_;
  ViewListener view_listener_;
  std::uint64_t next_beacon_us_ = 0;  ///< pump thread only
};

}  // namespace paris::runtime
