#include "runtime/endpoint.h"

#include <arpa/inet.h>
#include <netdb.h>

#include <cstdio>
#include <cstring>

namespace paris::runtime {

std::string Endpoint::str() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), ":%u", static_cast<unsigned>(port));
  return host + buf;
}

bool parse_endpoint(const std::string& text, Endpoint* out, std::string* err) {
  const auto set_err = [&](const std::string& what) {
    if (err != nullptr) *err = "bad endpoint \"" + text + "\": " + what;
    return false;
  };
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos) return set_err("expected host:port");
  const std::string host = text.substr(0, colon);
  const std::string port_s = text.substr(colon + 1);
  if (host.empty()) return set_err("empty host");
  if (port_s.empty()) return set_err("empty port");
  // Hostnames/IPv4 only: a second ':' means someone passed an IPv6 literal.
  if (host.find(':') != std::string::npos) return set_err("IPv6 literals are not supported");
  std::uint64_t port = 0;
  for (char c : port_s) {
    if (c < '0' || c > '9') return set_err("port is not a number");
    port = port * 10 + static_cast<std::uint64_t>(c - '0');
    if (port > 65535) return set_err("port out of range [1, 65535]");
  }
  if (port == 0) return set_err("port out of range [1, 65535]");
  for (char c : host) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '_';
    if (!ok) return set_err("host contains invalid characters");
  }
  out->host = host;
  out->port = static_cast<std::uint16_t>(port);
  return true;
}

bool parse_host_list(const std::string& text, std::vector<Endpoint>* out, std::string* err) {
  out->clear();
  if (text.empty()) {
    if (err != nullptr) *err = "empty host list";
    return false;
  }
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    Endpoint ep;
    if (!parse_endpoint(text.substr(begin, end - begin), &ep, err)) return false;
    for (const Endpoint& prev : *out) {
      if (prev == ep) {
        if (err != nullptr)
          *err = "duplicate endpoint \"" + ep.str() + "\" — two ranks cannot share a listen address";
        return false;
      }
    }
    out->push_back(std::move(ep));
    if (end == text.size()) break;
    begin = end + 1;
  }
  return true;
}

bool validate_host_list(const std::vector<Endpoint>& hosts, std::uint32_t nprocs,
                        std::string* err) {
  if (hosts.size() != nprocs) {
    if (err != nullptr) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "host list names %zu endpoints but the cluster runs %u processes",
                    hosts.size(), nprocs);
      *err = buf;
    }
    return false;
  }
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    if (hosts[i].port == 0) {
      if (err != nullptr) *err = "endpoint \"" + hosts[i].str() + "\" has port 0";
      return false;
    }
    for (std::size_t j = i + 1; j < hosts.size(); ++j) {
      if (hosts[i] == hosts[j]) {
        if (err != nullptr)
          *err = "duplicate endpoint \"" + hosts[i].str() +
                 "\" — two ranks cannot share a listen address";
        return false;
      }
    }
  }
  return true;
}

std::string format_host_list(const std::vector<Endpoint>& hosts) {
  std::string out;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    if (i != 0) out += ',';
    out += hosts[i].str();
  }
  return out;
}

std::vector<Endpoint> loopback_host_list(std::uint32_t nprocs, std::uint16_t base_port) {
  std::vector<Endpoint> hosts;
  hosts.reserve(nprocs);
  for (std::uint32_t r = 0; r < nprocs; ++r)
    hosts.push_back(Endpoint{"127.0.0.1", static_cast<std::uint16_t>(base_port + r)});
  return hosts;
}

bool resolve_ipv4(const Endpoint& ep, sockaddr_in* out, std::string* err) {
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(ep.port);
  if (inet_pton(AF_INET, ep.host.c_str(), &out->sin_addr) == 1) return true;
  addrinfo hints = {};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = getaddrinfo(ep.host.c_str(), nullptr, &hints, &res);
  if (rc != 0 || res == nullptr) {
    if (err != nullptr)
      *err = "cannot resolve host \"" + ep.host + "\": " + gai_strerror(rc);
    if (res != nullptr) freeaddrinfo(res);
    return false;
  }
  out->sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  freeaddrinfo(res);
  return true;
}

}  // namespace paris::runtime
