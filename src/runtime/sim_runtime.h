#pragma once
// SimBackend: the discrete-event simulator packaged as a runtime::Backend.
// A thin adapter — every Executor/Transport call forwards 1:1 to the same
// sim::Simulation / sim::Network call the protocol layer used to make
// directly, so a sim-backed run is byte-identical to the pre-abstraction
// code (same event order, same RNG draw sequence, same message order).

#include <cstdint>
#include <unordered_map>
#include <utility>

#include "runtime/backend.h"
#include "sim/network.h"
#include "sim/simulation.h"

namespace paris::runtime {

class SimBackend final : public Backend, public Executor, public Transport {
 public:
  SimBackend(std::uint64_t seed, sim::LatencyModel latency,
             sim::CodecMode codec = sim::CodecMode::kBytes)
      : sim_(seed), net_(sim_, std::move(latency), codec) {}

  // --- Backend ---
  Kind kind() const override { return Kind::kSim; }
  Executor& exec() override { return *this; }
  Transport& transport() override { return *this; }
  Rng& rng() override { return sim_.rng(); }
  NodeId add_node(Actor* actor, DcId dc, ServiceFn service,
                  NodeId colocate_with = kInvalidNode) override {
    const NodeId n = net_.add_node(actor, dc, std::move(service));
    if (colocate_with != kInvalidNode) net_.set_colocated(n, colocate_with);
    return n;
  }
  void run_for(std::uint64_t us) override { sim_.run_until(sim_.now() + us); }
  void stop() override {}
  std::uint64_t events_executed() const override { return sim_.events_executed(); }

  // --- Executor ---
  std::uint64_t now_us() const override { return sim_.now(); }
  void defer(NodeId /*actor*/, std::function<void()> fn) override {
    sim_.after(0, std::move(fn));
  }
  // The driving thread IS the sim's single execution context: run inline.
  void post(NodeId /*actor*/, std::function<void()> fn) override { fn(); }
  std::uint64_t start_periodic(NodeId /*actor*/, std::uint64_t period_us,
                               std::uint64_t phase_us, std::function<void()> fn) override {
    const std::uint64_t id = next_timer_id_++;
    timers_.emplace(id, sim_.every(period_us, phase_us, std::move(fn)));
    return id;
  }
  void cancel_periodic(std::uint64_t id) override { timers_.erase(id); }

  // --- Transport ---
  void send(NodeId from, NodeId to, wire::MessagePtr msg) override {
    net_.send(from, to, std::move(msg));
  }
  wire::MessagePool& msg_pool(NodeId /*self*/) override { return net_.msg_pool(); }
  DcId dc_of(NodeId n) const override { return net_.dc_of(n); }
  bool node_paused(NodeId n) const override { return net_.node_paused(n); }
  void charge_cpu(NodeId n, std::uint64_t us) override { net_.charge_cpu(n, us); }
  std::uint64_t total_bytes_sent() const override { return net_.total_bytes_sent(); }

  // --- sim-specific access (tests, fault injection, benches) ---
  sim::Simulation& sim() { return sim_; }
  sim::Network& net() { return net_; }
  /// Checked downcast for test helpers reaching under a Deployment.
  static SimBackend& of(Backend& b);

 private:
  sim::Simulation sim_;
  sim::Network net_;
  std::unordered_map<std::uint64_t, sim::Simulation::PeriodicHandle> timers_;
  std::uint64_t next_timer_id_ = 1;
};

}  // namespace paris::runtime
