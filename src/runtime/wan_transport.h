#pragma once
// WanTransport: WAN-realism link shaping for the thread/socket runtimes
// (DESIGN.md §13).
//
// The LatencyTransport models a healthy WAN: a static per-DC-pair mean plus
// symmetric jitter. Real long-haul links misbehave in ways that matter to a
// causal-consistency protocol — routes degrade mid-run, the two directions
// of a path see different delay, a congested link serializes bytes instead
// of delaying messages independently, and loss arrives in bursts, not as
// independent coin flips. This decorator adds exactly those behaviors as
// scheduled per-link EPISODES, composable with the rest of the chain:
//
//   protocol -> Reliable -> Fuzz -> Chaos -> Partition -> Wan -> Latency -> backend
//
// Each episode names a directed DC link (or both directions) and a time
// window, and contributes:
//  * extra one-way delay, linearly ramped from `extra_delay_start_us` at the
//    window start to `extra_delay_end_us` at the window end (mid-run
//    degradation; asymmetric because episodes are directional);
//  * a bandwidth cap modeled as serialization delay: the link is a FIFO
//    pipe draining `bandwidth_bytes_per_us`, so a message departs at
//    max(now, link_free) + bytes/rate and delivery order on the link equals
//    arrival order (the FIFO invariant tests assert this);
//  * Gilbert–Elliott correlated loss: a two-state (good/bad) Markov chain
//    advanced once per kGeSlotUs time slot, with per-message drop
//    probability loss_good / loss_bad depending on the state. The chain is
//    a pure function of (seed, episode index, slot) — precomputed lazily
//    and identical across threads, processes and reruns — so burst
//    placement is seed-deterministic on every backend;
//  * optional duplication of the idempotent replication layer.
//
// Determinism: per-message draws use the PR 3 counter-hash idiom (pure
// function of seed, channel and the channel's send index); the GE chain is
// time-sliced as above. Two runs with the same seed shape/drop the same
// per-channel message sequence on every backend, including the 3-process
// socket runtime where each child evaluates the identical pure functions.

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/latency_transport.h"

namespace paris::runtime {

/// One scheduled link-shaping episode; see file header. Times are absolute
/// executor µs (run-relative for the thread backend, warmup included).
struct WanLinkEpisode {
  DcId a = 0;
  DcId b = 0;
  /// false: shapes only traffic from DC a to DC b (asymmetric); true: both.
  bool symmetric = false;
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;  ///< exclusive
  std::uint64_t extra_delay_start_us = 0;  ///< added delay at window start
  std::uint64_t extra_delay_end_us = 0;    ///< ... ramped to this at the end
  std::uint32_t bandwidth_bytes_per_us = 0;  ///< 0 = uncapped
  double p_good_bad = 0;  ///< GE per-slot transition P(good -> bad)
  double p_bad_good = 0;  ///< GE per-slot transition P(bad -> good)
  double loss_good = 0;   ///< per-message drop probability in good state
  double loss_bad = 0;    ///< ... in bad state
  double duplicate_p = 0; ///< idempotent-layer duplication probability

  bool matches(DcId from, DcId to, std::uint64_t now) const {
    if (now < start_us || now >= end_us) return false;
    if (from == a && to == b) return true;
    return symmetric && from == b && to == a;
  }
  bool has_loss() const { return loss_good > 0 || loss_bad > 0; }
};

struct WanConfig {
  std::vector<WanLinkEpisode> episodes;
  std::uint64_t seed = 0;  ///< 0: the deployment substitutes its own seed

  bool enabled() const { return !episodes.empty(); }
};

class WanTransport final : public TransportDecorator {
 public:
  /// GE chain time-slice: one state transition per 10ms of executor time.
  static constexpr std::uint64_t kGeSlotUs = 10'000;

  struct Stats {
    std::uint64_t shaped = 0;      ///< messages that crossed an active episode
    std::uint64_t ge_dropped = 0;  ///< eaten by Gilbert–Elliott loss
    std::uint64_t duplicated = 0;
    std::uint64_t bw_queued = 0;   ///< messages that waited behind the pipe
    std::uint64_t bw_wait_us = 0;  ///< total serialization queue wait
  };

  WanTransport(Transport& inner, Executor& exec, WanConfig cfg);

  void send(NodeId from, NodeId to, wire::MessagePtr msg) override {
    send_at(from, to, std::move(msg), exec_.now_us());
  }
  void send_at(NodeId from, NodeId to, wire::MessagePtr msg, std::uint64_t at_us) override;

  Stats stats() const;

  /// GE state of episode `ep` at executor time `now` — a pure function of
  /// (cfg.seed, ep, slot), public so tests can measure burstiness directly.
  bool ge_bad(std::size_t ep, std::uint64_t now);

  const WanConfig& config() const { return cfg_; }

 private:
  /// Lazily extends episode ep's precomputed state chain through `slot`.
  bool chain_state(std::size_t ep, std::uint64_t slot);

  Executor& exec_;
  WanConfig cfg_;
  detail::ChannelDraws draws_;

  /// Per-episode precomputed GE chain (true = bad state), grown on demand.
  /// A chain is a pure function of the seed, so all threads extend it to
  /// identical values; the mutex only orders the growth.
  struct GeChain {
    std::vector<bool> bad;
  };
  std::mutex ge_mu_;
  std::vector<GeChain> ge_;

  /// Per directed-DC-link serialization pipe (bandwidth episodes).
  struct Pipe {
    std::uint64_t free_at_us = 0;
  };
  std::mutex pipe_mu_;
  std::unordered_map<std::uint64_t, Pipe> pipes_;

  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace paris::runtime
