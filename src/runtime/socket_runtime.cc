#include "runtime/socket_runtime.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/assert.h"
#include "wire/messages.h"

namespace paris::runtime {

namespace sockdetail {

namespace {
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}
std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}
}  // namespace

void append_frame(std::vector<std::uint8_t>& out, NodeId from, NodeId to,
                  const std::uint8_t* msg, std::size_t n) {
  put_u32(out, static_cast<std::uint32_t>(n + 8));  // from + to + payload
  put_u32(out, from);
  put_u32(out, to);
  out.insert(out.end(), msg, msg + n);
}

bool FrameReassembler::feed(const std::uint8_t* p, std::size_t n) {
  if (bad_) return false;
  // Compact the consumed prefix once it dominates, amortizing the memmove.
  // feed() is the only safe point: the caller's contract says FrameViews
  // do not outlive the next feed()/next*() call, and next_view() must not
  // move the buffer under the view it just returned.
  if (off_ > 4096 && off_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(off_));
    off_ = 0;
  }
  buf_.insert(buf_.end(), p, p + n);
  return true;
}

bool FrameReassembler::next_view(FrameView& out) {
  if (bad_) return false;
  const std::size_t avail = buf_.size() - off_;
  if (avail < kFrameHeader) {
    // Everything consumed: compact so the buffer never grows unboundedly
    // from leftover prefixes.
    if (off_ != 0 && avail == 0) {
      buf_.clear();
      off_ = 0;
    }
    return false;
  }
  const std::uint32_t len = get_u32(buf_.data() + off_);
  if (len < 8 || len > kMaxFrame) {
    bad_ = true;  // stream corrupt; the connection must be torn down
    return false;
  }
  if (avail < kFrameHeader + len) return false;  // partial frame: wait for more
  const std::uint8_t* p = buf_.data() + off_ + kFrameHeader;
  out.from = get_u32(p);
  out.to = get_u32(p + 4);
  out.data = p + 8;
  out.len = len - 8;
  off_ += kFrameHeader + len;
  return true;
}

bool FrameReassembler::next(Frame& out) {
  FrameView v;
  if (!next_view(v)) return false;
  out.from = v.from;
  out.to = v.to;
  out.bytes.assign(v.data, v.data + v.len);
  return true;
}

}  // namespace sockdetail

namespace {

// Redial backoff: capped exponential per dead episode. The first retry is
// quick (a blip should not stall the mesh), the cap keeps a dead peer from
// being hammered, and the attempt cap bounds a peer that never comes back —
// a respawned incarnation revives the episode by dialing US.
constexpr std::uint64_t kRedialBaseUs = 50'000;
constexpr std::uint64_t kRedialCapUs = 2'000'000;
constexpr std::uint32_t kRedialMaxTries = 64;
constexpr std::uint64_t kBeaconPeriodUs = 50'000;  ///< epoch lease heartbeat
constexpr std::uint64_t kFlushBudgetUs = 300'000;  ///< stop(): outbuf drain bound
constexpr int kPollSliceMs = 100;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  PARIS_CHECK(flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

void set_nodelay(int fd) {
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

/// [magic u32][rank u32][token u64][epoch u32][reserved u32], little-endian
/// via memcpy (loopback: both ends share endianness; cross-host would pin
/// it explicitly).
void make_hello(std::uint8_t (&h)[sockdetail::kHelloSize], std::uint32_t rank,
                std::uint64_t token, std::uint32_t epoch) {
  const std::uint32_t magic = sockdetail::kHelloMagic;
  const std::uint32_t reserved = 0;
  std::memcpy(h, &magic, 4);
  std::memcpy(h + 4, &rank, 4);
  std::memcpy(h + 8, &token, 8);
  std::memcpy(h + 16, &epoch, 4);
  std::memcpy(h + 20, &reserved, 4);
}

bool parse_hello(const std::uint8_t (&h)[sockdetail::kHelloSize], std::uint32_t& rank,
                 std::uint64_t& token, std::uint32_t& epoch) {
  std::uint32_t magic;
  std::memcpy(&magic, h, 4);
  std::memcpy(&rank, h + 4, 4);
  std::memcpy(&token, h + 8, 8);
  std::memcpy(&epoch, h + 16, 4);
  return magic == sockdetail::kHelloMagic;
}

}  // namespace

SocketBackend::SocketBackend(Options opt)
    : opt_(opt), tb_(ThreadBackend::Options{opt.workers, opt.seed}) {
  PARIS_CHECK(opt_.nprocs >= 1 && opt_.rank < opt_.nprocs);
  PARIS_CHECK_MSG(static_cast<std::uint32_t>(opt_.base_port) + opt_.nprocs - 1 <= 65535,
                  "socket backend: base_port + nprocs overflows the port range");
  tb_.set_router(this);
  peers_.reserve(opt_.nprocs);
  for (std::uint32_t r = 0; r < opt_.nprocs; ++r) {
    peers_.push_back(std::make_unique<Peer>());
    peers_[r]->we_dial = r < opt_.rank;  // dial down, accept up
  }
  peer_epochs_ = std::make_unique<std::atomic<std::uint32_t>[]>(opt_.nprocs);
  for (std::uint32_t r = 0; r < opt_.nprocs; ++r) {
    peer_epochs_[r].store(0, std::memory_order_relaxed);
  }
}

bool SocketBackend::note_epoch(std::uint32_t rank, std::uint32_t e) {
  auto& slot = peer_epochs_[rank];
  std::uint32_t cur = slot.load(std::memory_order_acquire);
  while (e > cur) {
    if (slot.compare_exchange_weak(cur, e, std::memory_order_acq_rel)) {
      if (epoch_listener_) epoch_listener_(rank, e);
      return true;
    }
  }
  return e >= cur;  // false: stale incarnation — the caller fences it
}

void SocketBackend::queue_beacon(Peer& p) {
  std::uint8_t payload[sockdetail::kBeaconBytes];
  std::memcpy(payload, &opt_.rank, 4);
  std::memcpy(payload + 4, &opt_.epoch, 4);
  std::lock_guard<std::mutex> lk(p.mu);
  if (!p.alive) return;
  sockdetail::append_frame(p.out, opt_.rank, sockdetail::kEpochBeaconDst, payload,
                           sizeof(payload));
}

SocketBackend::~SocketBackend() { stop(); }

NodeId SocketBackend::add_node(Actor* actor, DcId dc, ServiceFn service,
                               NodeId colocate_with) {
  // Record ownership FIRST: the wrapped backend consults the router for the
  // id being assigned (worker placement skips remote nodes), so the dc map
  // must already cover it.
  node_dc_.push_back(dc);
  const NodeId node = tb_.add_node(actor, dc, std::move(service), colocate_with);
  PARIS_CHECK(node + 1 == node_dc_.size());
  return node;
}

void SocketBackend::forward(NodeId from, NodeId to,
                            const std::vector<std::uint8_t>& bytes) {
  // The wire frame carries the true sender id: the protocol layer replies
  // to `from`, and the reliable layer keys its per-channel seq/dedup state
  // on it — ids agree across processes because registration order does.
  const std::uint32_t owner = owner_of(node_dc_[to]);
  PARIS_DCHECK(owner != opt_.rank);
  Peer& p = *peers_[owner];
  bool poke = false;
  {
    std::lock_guard<std::mutex> lk(p.mu);
    if (!p.alive) {
      stats_.dropped_dead.fetch_add(1, std::memory_order_relaxed);
      return;  // link down: the reliable layer (if any) re-covers this
    }
    poke = p.out.empty();
    sockdetail::append_frame(p.out, from, to, bytes.data(), bytes.size());
  }
  stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
  if (poke) wake();
}

void SocketBackend::wake() {
  const std::uint8_t b = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is fine.
  (void)!write(wake_wr_, &b, 1);
}

void SocketBackend::start() {
  PARIS_CHECK_MSG(!stopped_, "socket backend restarted after stop(); runs are one-shot");
  if (started_) return;
  started_ = true;

  int pipefd[2];
  PARIS_CHECK(pipe(pipefd) == 0);
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];
  set_nonblocking(wake_rd_);
  set_nonblocking(wake_wr_);

  // Listen socket: rank r owns port base + r.
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  PARIS_CHECK(listen_fd_ >= 0);
  const int one = 1;
  (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(static_cast<std::uint16_t>(opt_.base_port + opt_.rank));
  PARIS_CHECK_MSG(bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                  "socket backend: bind failed (port in use?)");
  PARIS_CHECK(listen(listen_fd_, 64) == 0);

  const std::uint64_t deadline_us =
      tb_.now_us() + opt_.connect_timeout_ms * 1000;

  // Dial every rank below ours (they listen first in launch order, but a
  // racing start is fine: retry until the deadline).
  for (std::uint32_t r = 0; r < opt_.rank; ++r) {
    PARIS_CHECK_MSG(dial_peer(r, deadline_us),
                    "socket backend: could not reach a lower-ranked peer");
  }

  // Accept every rank above ours; the 8-byte hello names the dialer.
  std::uint32_t missing = opt_.nprocs - 1 - opt_.rank;
  while (missing > 0) {
    PARIS_CHECK_MSG(tb_.now_us() < deadline_us,
                    "socket backend: timed out waiting for higher-ranked peers");
    pollfd pfd{listen_fd_, POLLIN, 0};
    if (poll(&pfd, 1, kPollSliceMs) <= 0) continue;
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // Deadline-bounded hello read: a stray connector that sends fewer than
    // kHelloSize bytes and stalls (port scanner, a killed child of another
    // run) must not hang mesh setup past connect_timeout_ms.
    set_nonblocking(fd);
    std::uint8_t hello[sockdetail::kHelloSize];
    std::size_t got = 0;
    while (got < sizeof(hello) && tb_.now_us() < deadline_us) {
      pollfd hp{fd, POLLIN, 0};
      if (poll(&hp, 1, kPollSliceMs) <= 0) continue;
      const ssize_t n = read(fd, hello + got, sizeof(hello) - got);
      if (n <= 0 && !(n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))) break;
      if (n > 0) got += static_cast<std::size_t>(n);
    }
    std::uint32_t rank;
    std::uint64_t token;
    std::uint32_t epoch;
    if (got != sizeof(hello) || !parse_hello(hello, rank, token, epoch) ||
        token != opt_.mesh_token || rank <= opt_.rank || rank >= opt_.nprocs ||
        peers_[rank]->alive) {
      close(fd);  // stranger (e.g. a concurrent run on our port range)
      continue;
    }
    if (!note_epoch(rank, epoch)) {  // a zombie old incarnation dialed in
      stats_.fenced_stale_epoch.fetch_add(1, std::memory_order_relaxed);
      close(fd);
      continue;
    }
    set_nonblocking(fd);
    set_nodelay(fd);
    Peer& p = *peers_[rank];
    {
      std::lock_guard<std::mutex> lk(p.mu);
      p.fd = fd;
      p.alive = true;
    }
    queue_beacon(p);  // the dialer learns OUR epoch from the first beacon
    --missing;
  }

  set_nonblocking(listen_fd_);
  io_running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { io_main(); });
  tb_.start();
}

bool SocketBackend::dial_peer(std::uint32_t r, std::uint64_t deadline_us) {
  const sockaddr_in addr =
      loopback_addr(static_cast<std::uint16_t>(opt_.base_port + r));
  while (true) {  // always at least one attempt (redial passes a past deadline)
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    PARIS_CHECK(fd >= 0);
    if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
      std::uint8_t hello[sockdetail::kHelloSize];
      make_hello(hello, opt_.rank, opt_.mesh_token, opt_.epoch);
      if (write(fd, hello, sizeof(hello)) != sizeof(hello)) {
        close(fd);
        return false;
      }
      set_nonblocking(fd);
      set_nodelay(fd);
      Peer& p = *peers_[r];
      {
        std::lock_guard<std::mutex> lk(p.mu);
        p.fd = fd;
        p.alive = true;
        p.redial_tries = 0;
        p.redial_backoff_us = 0;
        p.redial_gave_up = false;
      }
      queue_beacon(p);  // lease heartbeat; the hello already carried the epoch
      return true;
    }
    close(fd);
    if (tb_.now_us() >= deadline_us) return false;
    // Peer not listening yet (launch skew): back off briefly and retry.
    usleep(50'000);
  }
}

void SocketBackend::run_for(std::uint64_t us) {
  start();
  tb_.run_for(us);
}

void SocketBackend::stop() {
  if (stopped_) return;
  stopped_ = true;
  // Quiesce the workers first (no new forwards), then let the pump drain
  // what is already buffered — bounded, so a dead peer cannot hang stop().
  tb_.stop();
  if (io_thread_.joinable()) {
    flush_and_exit_.store(true, std::memory_order_release);
    wake();
    io_thread_.join();
  }
  io_running_.store(false, std::memory_order_release);
  for (auto& p : peers_) {
    if (p->fd >= 0) close(p->fd);
    p->fd = -1;
    p->alive = false;
  }
  for (auto& pa : pending_) close(pa.fd);
  pending_.clear();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_rd_ >= 0) close(wake_rd_);
  if (wake_wr_ >= 0) close(wake_wr_);
  listen_fd_ = wake_rd_ = wake_wr_ = -1;
}

void SocketBackend::mark_dead_locked(Peer& p) {
  if (p.fd >= 0) close(p.fd);
  p.fd = -1;
  p.alive = false;
  // A TCP stream died mid-frame: both the half-read input and the
  // half-written output are unusable. The reliable layer retransmits over
  // the replacement connection; without it this is honest message loss.
  p.in.reset();
  p.out.clear();
  p.drain.clear();
  p.doff = 0;
  // Fresh dead episode: quick first retry, then exponential backoff.
  p.redial_tries = 0;
  p.redial_backoff_us = kRedialBaseUs;
  p.redial_gave_up = false;
  p.next_redial_us = tb_.now_us() + kRedialBaseUs;
}

void SocketBackend::mark_dead(Peer& p) {
  std::lock_guard<std::mutex> lk(p.mu);
  mark_dead_locked(p);
}

void SocketBackend::handle_readable(Peer& p) {
  std::uint8_t buf[65536];
  while (true) {
    const ssize_t n = recv(p.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      stats_.bytes_in.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
      if (!p.in.feed(buf, static_cast<std::size_t>(n))) {
        mark_dead(p);
        return;
      }
      sockdetail::FrameView f;
      while (p.in.next_view(f)) {  // zero-copy: straight into the envelope
        stats_.frames_in.fetch_add(1, std::memory_order_relaxed);
        if (f.to == sockdetail::kEpochBeaconDst) {
          // Pump-level epoch lease. A beacon from a STALE incarnation means
          // a zombie half of an old process still owns this connection:
          // fence the whole link before it can touch reliable windows.
          if (f.len != sockdetail::kBeaconBytes) {
            stats_.malformed_frames.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          std::uint32_t brank, bepoch;
          std::memcpy(&brank, f.data, 4);
          std::memcpy(&bepoch, f.data + 4, 4);
          if (brank >= opt_.nprocs || brank == opt_.rank ||
              !note_epoch(brank, bepoch)) {
            stats_.fenced_stale_epoch.fetch_add(1, std::memory_order_relaxed);
            mark_dead(p);
            return;
          }
          continue;
        }
        // The sender knows our node ids (identical registration order), so
        // anything out of range or non-local is a peer bug; drop it rather
        // than corrupt the mailboxes. Payload bytes crossed a process
        // boundary: validate before handing them to the strict (aborting)
        // in-process decoder — corruption is counted and dropped, never a
        // crash (the reliable layer re-covers dropped frames).
        if (f.to < node_dc_.size() && f.from < node_dc_.size() && is_local(f.to)) {
          if (!wire::validate_encoded_message(f.data, f.len)) {
            stats_.malformed_frames.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          tb_.inject_encoded(f.from, f.to, f.data, f.len);
        }
      }
      if (p.in.buffered() != 0) {
        stats_.partial_reads.fetch_add(1, std::memory_order_relaxed);
      }
      if (static_cast<std::size_t>(n) < sizeof(buf)) return;  // drained
      continue;
    }
    if (n == 0) {  // orderly EOF: peer stopped or restarted
      mark_dead(p);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
    mark_dead(p);
    return;
  }
}

bool SocketBackend::out_pending(Peer& p) {
  if (p.doff < p.drain.size()) return true;  // pump-owned: no lock needed
  std::lock_guard<std::mutex> lk(p.mu);
  return !p.out.empty();
}

void SocketBackend::handle_writable(Peer& p) {
  while (true) {
    if (p.doff >= p.drain.size()) {
      // Refill: SWAP the producers' buffer in under the lock, drain it
      // with no lock held — a slow send() burst must never stall workers.
      p.drain.clear();
      p.doff = 0;
      std::lock_guard<std::mutex> lk(p.mu);
      if (p.out.empty()) return;
      std::swap(p.out, p.drain);
    }
    while (p.doff < p.drain.size()) {
      const ssize_t n = send(p.fd, p.drain.data() + p.doff, p.drain.size() - p.doff,
                             MSG_NOSIGNAL);
      if (n > 0) {
        stats_.bytes_out.fetch_add(static_cast<std::uint64_t>(n),
                                   std::memory_order_relaxed);
        p.doff += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
        stats_.short_writes.fetch_add(1, std::memory_order_relaxed);
        return;  // kernel buffer full: resume on the next POLLOUT
      }
      mark_dead(p);  // EPIPE/ECONNRESET etc.
      return;
    }
  }
}

void SocketBackend::accept_pending() {
  // New connections (mid-run reconnects from a restarted/redialing peer).
  while (true) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;
    set_nonblocking(fd);
    set_nodelay(fd);
    pending_.push_back(PendingAccept{fd, {}, 0});
  }
  // Progress hellos; attach completed ones.
  for (std::size_t i = 0; i < pending_.size();) {
    PendingAccept& pa = pending_[i];
    const ssize_t n = read(pa.fd, pa.hello + pa.got, sizeof(pa.hello) - pa.got);
    if (n > 0) pa.got += static_cast<std::size_t>(n);
    const bool err = (n == 0) || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                                  errno != EINTR);
    if (pa.got == sizeof(pa.hello)) {
      std::uint32_t rank;
      std::uint64_t token;
      std::uint32_t epoch;
      if (parse_hello(pa.hello, rank, token, epoch) && token == opt_.mesh_token &&
          rank < opt_.nprocs && rank != opt_.rank) {
        if (!note_epoch(rank, epoch)) {
          // A dead incarnation of this rank redialed in: fence it.
          stats_.fenced_stale_epoch.fetch_add(1, std::memory_order_relaxed);
          close(pa.fd);
        } else {
          Peer& p = *peers_[rank];
          {
            std::lock_guard<std::mutex> lk(p.mu);
            if (p.fd >= 0) close(p.fd);  // replaced: the peer restarted its side
            p.fd = pa.fd;
            p.alive = true;
            p.in.reset();
            p.out.clear();
            p.drain.clear();
            p.doff = 0;
            p.redial_tries = 0;
            p.redial_backoff_us = 0;
            p.redial_gave_up = false;
          }
          queue_beacon(p);
          stats_.reconnects.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        close(pa.fd);  // stranger or token mismatch: not our mesh
      }
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    if (err) {
      close(pa.fd);
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    ++i;
  }
}

void SocketBackend::io_main() {
  std::vector<pollfd> pfds;
  std::vector<Peer*> order;
  std::uint64_t flush_deadline_us = 0;

  while (true) {
    const bool flushing = flush_and_exit_.load(std::memory_order_acquire);
    if (flushing && flush_deadline_us == 0) {
      flush_deadline_us = tb_.now_us() + kFlushBudgetUs;
    }

    pfds.clear();
    order.clear();
    pfds.push_back(pollfd{wake_rd_, POLLIN, 0});
    pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
    bool any_out = false;
    for (auto& up : peers_) {
      Peer& p = *up;
      if (!p.alive || p.fd < 0) continue;
      short ev = POLLIN;
      if (out_pending(p)) {
        ev |= POLLOUT;
        any_out = true;
      }
      pfds.push_back(pollfd{p.fd, ev, 0});
      order.push_back(&p);
    }
    for (const auto& pa : pending_) pfds.push_back(pollfd{pa.fd, POLLIN, 0});

    if (flushing && (!any_out || tb_.now_us() >= flush_deadline_us)) break;

    poll(pfds.data(), static_cast<nfds_t>(pfds.size()), kPollSliceMs);

    if (pfds[0].revents & POLLIN) {  // drain the wake pipe
      std::uint8_t sink[256];
      while (read(wake_rd_, sink, sizeof(sink)) > 0) {
      }
    }
    if (pfds[1].revents & POLLIN) accept_pending();
    if (!pending_.empty()) accept_pending();  // progress partial hellos

    for (std::size_t i = 0; i < order.size(); ++i) {
      Peer& p = *order[i];
      const short rev = pfds[2 + i].revents;
      if (p.alive && (rev & (POLLIN | POLLHUP | POLLERR))) handle_readable(p);
      if (p.alive && p.fd >= 0) handle_writable(p);  // opportunistic drain
    }

    if (!flushing) {
      const std::uint64_t now = tb_.now_us();
      // Redial dead peers we originally dialed; the accept side of a dead
      // link just waits for the peer's redial. Backoff doubles per failed
      // attempt up to the cap; the jitter is a pure function of
      // (seed, rank, attempt) so a run replays the same schedule.
      for (std::uint32_t r = 0; r < opt_.nprocs; ++r) {
        Peer& p = *peers_[r];
        if (p.alive || !p.we_dial || p.redial_gave_up || now < p.next_redial_us) {
          continue;
        }
        stats_.redial_attempts.fetch_add(1, std::memory_order_relaxed);
        if (dial_peer(r, now + 1)) {  // single quick attempt per period
          stats_.reconnects.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (++p.redial_tries >= kRedialMaxTries) {
          p.redial_gave_up = true;  // a respawned peer revives us by dialing in
          stats_.redial_giveups.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const std::uint64_t jitter =
            splitmix64(opt_.seed ^ (std::uint64_t{r} << 32) ^ p.redial_tries) %
            (p.redial_backoff_us / 4 + 1);
        p.next_redial_us = now + p.redial_backoff_us + jitter;
        p.redial_backoff_us = std::min(p.redial_backoff_us * 2, kRedialCapUs);
      }
      // Epoch lease heartbeat: every live connection re-announces our
      // incarnation so a peer that missed the hello (or a half-open zombie)
      // converges on the newest epoch within a beacon period.
      if (now >= next_beacon_us_) {
        for (auto& up : peers_) {
          if (up->alive) queue_beacon(*up);
        }
        next_beacon_us_ = now + kBeaconPeriodUs;
      }
    }
  }
}

SocketStats SocketBackend::stats() const {
  SocketStats s;
  s.frames_out = stats_.frames_out.load(std::memory_order_relaxed);
  s.frames_in = stats_.frames_in.load(std::memory_order_relaxed);
  s.bytes_out = stats_.bytes_out.load(std::memory_order_relaxed);
  s.bytes_in = stats_.bytes_in.load(std::memory_order_relaxed);
  s.partial_reads = stats_.partial_reads.load(std::memory_order_relaxed);
  s.short_writes = stats_.short_writes.load(std::memory_order_relaxed);
  s.reconnects = stats_.reconnects.load(std::memory_order_relaxed);
  s.dropped_dead = stats_.dropped_dead.load(std::memory_order_relaxed);
  s.redial_attempts = stats_.redial_attempts.load(std::memory_order_relaxed);
  s.redial_giveups = stats_.redial_giveups.load(std::memory_order_relaxed);
  s.fenced_stale_epoch = stats_.fenced_stale_epoch.load(std::memory_order_relaxed);
  s.malformed_frames = stats_.malformed_frames.load(std::memory_order_relaxed);
  return s;
}

void SocketBackend::debug_kill_connection(std::uint32_t peer_rank) {
  Peer& p = *peers_[peer_rank];
  std::lock_guard<std::mutex> lk(p.mu);
  if (p.fd >= 0) shutdown(p.fd, SHUT_RDWR);  // pump sees EOF and tears down
}

}  // namespace paris::runtime
