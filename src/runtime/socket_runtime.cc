#include "runtime/socket_runtime.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define PARIS_HAS_IO_URING 1
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/assert.h"
#include "wire/messages.h"

namespace paris::runtime {

namespace sockdetail {

namespace {
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}
std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}
}  // namespace

void append_frame(std::vector<std::uint8_t>& out, NodeId from, NodeId to,
                  const std::uint8_t* msg, std::size_t n) {
  put_u32(out, static_cast<std::uint32_t>(n + 8));  // from + to + payload
  put_u32(out, from);
  put_u32(out, to);
  out.insert(out.end(), msg, msg + n);
}

std::uint8_t* FrameReassembler::reserve(std::size_t n) {
  // Compact the consumed prefix once it dominates, amortizing the memmove.
  // reserve() is the only safe point: the caller's contract says FrameViews
  // do not outlive the next reserve()/feed()/next*() call, and next_view()
  // must not move the buffer under the view it just returned.
  if (off_ > 4096 && off_ * 2 > len_) {
    std::memmove(buf_.data(), buf_.data() + off_, len_ - off_);
    len_ -= off_;
    off_ = 0;
  }
  if (len_ + n > buf_.size()) buf_.resize(len_ + n);
  return buf_.data() + len_;
}

bool FrameReassembler::feed(const std::uint8_t* p, std::size_t n) {
  if (bad_) return false;
  std::memcpy(reserve(n), p, n);
  commit(n);
  return true;
}

bool FrameReassembler::next_view(FrameView& out) {
  if (bad_) return false;
  const std::size_t avail = len_ - off_;
  if (avail < kFrameHeader) {
    // Everything consumed: rewind so the buffer never grows unboundedly
    // from leftover prefixes.
    if (off_ != 0 && avail == 0) {
      len_ = 0;
      off_ = 0;
    }
    return false;
  }
  const std::uint32_t len = get_u32(buf_.data() + off_);
  if (len < 8 || len > kMaxFrame) {
    bad_ = true;  // stream corrupt; the connection must be torn down
    return false;
  }
  if (avail < kFrameHeader + len) return false;  // partial frame: wait for more
  const std::uint8_t* p = buf_.data() + off_ + kFrameHeader;
  out.from = get_u32(p);
  out.to = get_u32(p + 4);
  out.data = p + 8;
  out.len = len - 8;
  off_ += kFrameHeader + len;
  return true;
}

bool FrameReassembler::next(Frame& out) {
  FrameView v;
  if (!next_view(v)) return false;
  out.from = v.from;
  out.to = v.to;
  out.bytes.assign(v.data, v.data + v.len);
  return true;
}

std::size_t FrameQueueCursor::build(const std::vector<std::vector<std::uint8_t>>& frames,
                                    struct iovec* iov, std::size_t max_iov,
                                    std::size_t max_bytes) const {
  std::size_t n = 0, bytes = 0, off = off_;
  for (std::size_t i = frame_; i < frames.size() && n < max_iov && bytes < max_bytes;
       ++i) {
    std::size_t take = frames[i].size() - off;
    if (bytes + take > max_bytes) take = max_bytes - bytes;
    if (take != 0) {
      iov[n].iov_base = const_cast<std::uint8_t*>(frames[i].data() + off);
      iov[n].iov_len = take;
      ++n;
      bytes += take;
    }
    off = 0;  // only the first (resumed) frame starts mid-buffer
  }
  return n;
}

void FrameQueueCursor::advance(const std::vector<std::vector<std::uint8_t>>& frames,
                               std::size_t n) {
  while (n > 0) {
    PARIS_DCHECK(frame_ < frames.size());
    const std::size_t left = frames[frame_].size() - off_;
    if (n < left) {
      off_ += n;
      return;
    }
    n -= left;
    ++frame_;
    off_ = 0;
  }
}

}  // namespace sockdetail

namespace {

// Redial backoff: capped exponential per dead episode. The first retry is
// quick (a blip should not stall the mesh), the cap keeps a dead peer from
// being hammered, and the attempt cap bounds a peer that never comes back —
// a respawned incarnation revives the episode by dialing US.
constexpr std::uint64_t kRedialBaseUs = 50'000;
constexpr std::uint64_t kRedialCapUs = 2'000'000;
constexpr std::uint32_t kRedialMaxTries = 64;
constexpr std::uint64_t kBeaconPeriodUs = 50'000;  ///< epoch lease heartbeat
constexpr std::uint64_t kFlushBudgetUs = 300'000;  ///< stop(): outbuf drain bound
constexpr int kPollSliceMs = 100;
/// batch_io=false (the bench's A/B baseline): one frame per write syscall
/// and small reads — roughly the pre-§12 syscall pattern.
constexpr std::size_t kUnbatchedReadChunk = 4096;
/// Recycled frame buffers kept per peer; beyond this they just deallocate.
constexpr std::size_t kSpareCap = 256;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  PARIS_CHECK(flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

void set_nodelay(int fd) {
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// [magic u32][rank u32][token u64][epoch u32][view u32], little-endian via
/// memcpy (the mesh is homogeneous x86/ARM-LE in every supported deployment;
/// a mixed-endian mesh would pin byte order explicitly).
void make_hello(std::uint8_t (&h)[sockdetail::kHelloSize], std::uint32_t rank,
                std::uint64_t token, std::uint32_t epoch, std::uint32_t view) {
  const std::uint32_t magic = sockdetail::kHelloMagic;
  std::memcpy(h, &magic, 4);
  std::memcpy(h + 4, &rank, 4);
  std::memcpy(h + 8, &token, 8);
  std::memcpy(h + 16, &epoch, 4);
  std::memcpy(h + 20, &view, 4);
}

bool parse_hello(const std::uint8_t (&h)[sockdetail::kHelloSize], std::uint32_t& rank,
                 std::uint64_t& token, std::uint32_t& epoch, std::uint32_t& view) {
  std::uint32_t magic;
  std::memcpy(&magic, h, 4);
  std::memcpy(&rank, h + 4, 4);
  std::memcpy(&token, h + 8, 8);
  std::memcpy(&epoch, h + 16, 4);
  std::memcpy(&view, h + 20, 4);
  return magic == sockdetail::kHelloMagic;
}

}  // namespace

#if PARIS_HAS_IO_URING

namespace sockdetail {

namespace {
int sys_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, p));
}
int sys_uring_enter(int fd, unsigned submit, unsigned min_complete, unsigned flags) {
  return static_cast<int>(
      syscall(__NR_io_uring_enter, fd, submit, min_complete, flags, nullptr, 0));
}
}  // namespace

/// One submission/completion ring shared by every peer socket, the wake
/// pipe, the listen socket and a 50ms tick. Mapped and driven with raw
/// syscalls; ops carry (kind | rank | conn_gen) in user_data so a
/// completion that outlives its connection (fd numbers get reused) is
/// recognized and discarded.
struct Uring {
  enum Kind : unsigned { kRecv = 1, kSend = 2, kWakeOp = 3, kListen = 4, kTick = 5 };

  int ring_fd = -1;
  unsigned sq_entries = 0, cq_entries = 0;
  void* sq_ptr = nullptr;
  void* cq_ptr = nullptr;
  std::size_t sq_map_len = 0, cq_map_len = 0;
  bool single_mmap = false;
  io_uring_sqe* sqes = nullptr;
  std::size_t sqe_map_len = 0;
  // Raw ring pointers (kernel-shared); accessed with __atomic builtins.
  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned sq_mask = 0;
  unsigned* sq_array = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned cq_mask = 0;
  io_uring_cqe* cqes = nullptr;
  unsigned tail_local = 0;   ///< our private SQ tail
  unsigned to_submit = 0;    ///< SQEs prepared since the last enter()
  __kernel_timespec tick_ts{};
  bool tick_armed = false;
  bool wake_op_armed = false;
  bool listen_armed = false;
  std::uint8_t wake_buf[256];

  ~Uring() {
    if (sqes) munmap(sqes, sqe_map_len);
    if (cq_ptr && cq_ptr != sq_ptr) munmap(cq_ptr, cq_map_len);
    if (sq_ptr) munmap(sq_ptr, sq_map_len);
    if (ring_fd >= 0) close(ring_fd);
  }

  static std::uint64_t ud(Kind k, std::uint32_t rank, std::uint32_t gen) {
    return (static_cast<std::uint64_t>(k) << 56) |
           (static_cast<std::uint64_t>(rank) << 32) | gen;
  }

  static std::unique_ptr<Uring> create(std::uint32_t nprocs, std::string* why) {
    auto fail = [&](const char* what) {
      if (why) *why = std::string(what) + ": " + std::strerror(errno);
      return nullptr;
    };
    // Worst case per loop: one recv + one send per peer, wake, listen, tick.
    unsigned entries = 32;
    while (entries < 2 * nprocs + 8) entries <<= 1;
    auto ur = std::make_unique<Uring>();
    io_uring_params p{};
    ur->ring_fd = sys_uring_setup(entries, &p);
    if (ur->ring_fd < 0) return fail("io_uring_setup");
    ur->sq_entries = p.sq_entries;
    ur->cq_entries = p.cq_entries;
    ur->sq_map_len = p.sq_off.array + p.sq_entries * sizeof(unsigned);
    ur->cq_map_len = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
#ifdef IORING_FEAT_SINGLE_MMAP
    ur->single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
#endif
    if (ur->single_mmap) {
      ur->sq_map_len = ur->cq_map_len = std::max(ur->sq_map_len, ur->cq_map_len);
    }
    ur->sq_ptr = mmap(nullptr, ur->sq_map_len, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ur->ring_fd, IORING_OFF_SQ_RING);
    if (ur->sq_ptr == MAP_FAILED) {
      ur->sq_ptr = nullptr;
      return fail("mmap sq ring");
    }
    if (ur->single_mmap) {
      ur->cq_ptr = ur->sq_ptr;
    } else {
      ur->cq_ptr = mmap(nullptr, ur->cq_map_len, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ur->ring_fd, IORING_OFF_CQ_RING);
      if (ur->cq_ptr == MAP_FAILED) {
        ur->cq_ptr = nullptr;
        return fail("mmap cq ring");
      }
    }
    ur->sqe_map_len = p.sq_entries * sizeof(io_uring_sqe);
    void* sq = mmap(nullptr, ur->sqe_map_len, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ur->ring_fd, IORING_OFF_SQES);
    if (sq == MAP_FAILED) return fail("mmap sqes");
    ur->sqes = static_cast<io_uring_sqe*>(sq);
    auto* sqb = static_cast<std::uint8_t*>(ur->sq_ptr);
    auto* cqb = static_cast<std::uint8_t*>(ur->cq_ptr);
    ur->sq_head = reinterpret_cast<unsigned*>(sqb + p.sq_off.head);
    ur->sq_tail = reinterpret_cast<unsigned*>(sqb + p.sq_off.tail);
    ur->sq_mask = *reinterpret_cast<unsigned*>(sqb + p.sq_off.ring_mask);
    ur->sq_array = reinterpret_cast<unsigned*>(sqb + p.sq_off.array);
    ur->cq_head = reinterpret_cast<unsigned*>(cqb + p.cq_off.head);
    ur->cq_tail = reinterpret_cast<unsigned*>(cqb + p.cq_off.tail);
    ur->cq_mask = *reinterpret_cast<unsigned*>(cqb + p.cq_off.ring_mask);
    ur->cqes = reinterpret_cast<io_uring_cqe*>(cqb + p.cq_off.cqes);
    ur->tail_local = __atomic_load_n(ur->sq_tail, __ATOMIC_ACQUIRE);
#ifdef IORING_REGISTER_PROBE
    {
      // The ops we submit landed in different kernel releases (SEND/RECV
      // are 5.6); verify support up front so an old kernel falls back at
      // start() instead of dying per-op with -EINVAL completions.
      constexpr unsigned kOps = 64;
      std::vector<std::uint8_t> buf(sizeof(io_uring_probe) +
                                    kOps * sizeof(io_uring_probe_op));
      std::memset(buf.data(), 0, buf.size());
      auto* probe = reinterpret_cast<io_uring_probe*>(buf.data());
      if (syscall(__NR_io_uring_register, ur->ring_fd, IORING_REGISTER_PROBE, probe,
                  kOps) == 0) {
        for (unsigned op : {static_cast<unsigned>(IORING_OP_RECV),
                            static_cast<unsigned>(IORING_OP_SEND),
                            static_cast<unsigned>(IORING_OP_READ),
                            static_cast<unsigned>(IORING_OP_POLL_ADD),
                            static_cast<unsigned>(IORING_OP_TIMEOUT)}) {
          if (op > probe->last_op ||
              !(probe->ops[op].flags & IO_URING_OP_SUPPORTED)) {
            if (why) *why = "kernel io_uring lacks a required opcode";
            return nullptr;
          }
        }
      }
    }
#endif
    return ur;
  }

  /// Next free SQE, zeroed, already linked into sq_array; nullptr if the
  /// ring is momentarily full (the caller retries next loop).
  io_uring_sqe* get_sqe(std::uint64_t user_data) {
    const unsigned head = __atomic_load_n(sq_head, __ATOMIC_ACQUIRE);
    if (tail_local - head >= sq_entries) return nullptr;
    const unsigned idx = tail_local & sq_mask;
    io_uring_sqe* e = &sqes[idx];
    std::memset(e, 0, sizeof(*e));
    e->user_data = user_data;
    sq_array[idx] = idx;
    ++tail_local;
    ++to_submit;
    return e;
  }

  /// Publishes prepared SQEs and blocks for at least one completion (the
  /// tick op bounds the wait). EINTR retries; other errors are fatal here —
  /// the ring was validated at create().
  void submit_and_wait() {
    __atomic_store_n(sq_tail, tail_local, __ATOMIC_RELEASE);
    while (true) {
      const int r =
          sys_uring_enter(ring_fd, to_submit, 1, IORING_ENTER_GETEVENTS);
      if (r >= 0) {
        to_submit -= static_cast<unsigned>(r) <= to_submit ? static_cast<unsigned>(r)
                                                           : to_submit;
        return;
      }
      if (errno == EINTR) continue;
      PARIS_CHECK_MSG(false, "io_uring_enter failed mid-run");
    }
  }

  bool pop(io_uring_cqe& out) {
    const unsigned head = __atomic_load_n(cq_head, __ATOMIC_RELAXED);
    const unsigned tail = __atomic_load_n(cq_tail, __ATOMIC_ACQUIRE);
    if (head == tail) return false;
    out = cqes[head & cq_mask];
    __atomic_store_n(cq_head, head + 1, __ATOMIC_RELEASE);
    return true;
  }
};

}  // namespace sockdetail

#else  // !PARIS_HAS_IO_URING

namespace sockdetail {
struct Uring {
  static std::unique_ptr<Uring> create(std::uint32_t, std::string* why) {
    if (why) *why = "built without <linux/io_uring.h>";
    return nullptr;
  }
};
}  // namespace sockdetail

#endif  // PARIS_HAS_IO_URING

SocketBackend::SocketBackend(Options opt)
    : opt_(std::move(opt)), tb_(ThreadBackend::Options{opt_.workers, opt_.seed}) {
  PARIS_CHECK(opt_.nprocs >= 1 && opt_.rank < opt_.nprocs);
  std::string err;
  PARIS_CHECK_MSG(validate_host_list(opt_.hosts, opt_.nprocs, &err),
                  "socket backend: bad host list");
  tb_.set_router(this);
  peers_.reserve(opt_.nprocs);
  for (std::uint32_t r = 0; r < opt_.nprocs; ++r) {
    peers_.push_back(std::make_unique<Peer>());
    peers_[r]->we_dial = r < opt_.rank;  // dial down, accept up
  }
  peer_epochs_ = std::make_unique<std::atomic<std::uint32_t>[]>(opt_.nprocs);
  peer_views_ = std::make_unique<std::atomic<std::uint32_t>[]>(opt_.nprocs);
  for (std::uint32_t r = 0; r < opt_.nprocs; ++r) {
    peer_epochs_[r].store(0, std::memory_order_relaxed);
    peer_views_[r].store(0, std::memory_order_relaxed);
  }
}

bool SocketBackend::note_epoch(std::uint32_t rank, std::uint32_t e) {
  auto& slot = peer_epochs_[rank];
  std::uint32_t cur = slot.load(std::memory_order_acquire);
  while (e > cur) {
    if (slot.compare_exchange_weak(cur, e, std::memory_order_acq_rel)) {
      if (epoch_listener_) epoch_listener_(rank, e);
      return true;
    }
  }
  return e >= cur;  // false: stale incarnation — the caller fences it
}

void SocketBackend::note_view(std::uint32_t rank, std::uint32_t v) {
  auto& slot = peer_views_[rank];
  std::uint32_t cur = slot.load(std::memory_order_acquire);
  while (v > cur) {
    if (slot.compare_exchange_weak(cur, v, std::memory_order_acq_rel)) {
      if (view_listener_) view_listener_(rank, v);
      return;
    }
  }
}

void SocketBackend::advertise_view(std::uint32_t v) {
  auto& slot = peer_views_[opt_.rank];
  std::uint32_t cur = slot.load(std::memory_order_acquire);
  while (v > cur && !slot.compare_exchange_weak(cur, v, std::memory_order_acq_rel)) {
  }
  // Push the news now instead of waiting out the beacon period: the view
  // change gates the joiner's catch-up phase, so propagation latency is
  // directly part of the join window.
  bool poke = false;
  for (auto& up : peers_) {
    if (up->alive) {
      queue_beacon(*up);
      poke = true;
    }
  }
  if (poke) wake();
}

void SocketBackend::queue_beacon(Peer& p) {
  const std::uint32_t view = peer_views_[opt_.rank].load(std::memory_order_acquire);
  std::uint8_t payload[sockdetail::kBeaconBytes];
  std::memcpy(payload, &opt_.rank, 4);
  std::memcpy(payload + 4, &opt_.epoch, 4);
  std::memcpy(payload + 8, &view, 4);
  std::lock_guard<std::mutex> lk(p.mu);
  if (!p.alive) return;
  // Beacons bypass the budget (they ARE the liveness signal and are tiny)
  // but still account: queued is the pump's "anything unwritten?" test.
  std::vector<std::uint8_t> buf;
  if (!p.spare.empty()) {
    buf = std::move(p.spare.back());
    p.spare.pop_back();
    buf.clear();
  }
  sockdetail::append_frame(buf, opt_.rank, sockdetail::kEpochBeaconDst, payload,
                           sizeof(payload));
  p.queued.fetch_add(buf.size(), std::memory_order_relaxed);
  p.out.push_back(std::move(buf));
}

SocketBackend::~SocketBackend() { stop(); }

NodeId SocketBackend::add_node(Actor* actor, DcId dc, ServiceFn service,
                               NodeId colocate_with) {
  // Record ownership FIRST: the wrapped backend consults the router for the
  // id being assigned (worker placement skips remote nodes), so the dc map
  // must already cover it.
  node_dc_.push_back(dc);
  const NodeId node = tb_.add_node(actor, dc, std::move(service), colocate_with);
  PARIS_CHECK(node + 1 == node_dc_.size());
  return node;
}

bool SocketBackend::forward(NodeId from, NodeId to,
                            const std::vector<std::uint8_t>& bytes) {
  // The wire frame carries the true sender id: the protocol layer replies
  // to `from`, and the reliable layer keys its per-channel seq/dedup state
  // on it — ids agree across processes because registration order does.
  const std::uint32_t owner = owner_of(node_dc_[to]);
  PARIS_DCHECK(owner != opt_.rank);
  Peer& p = *peers_[owner];
  const std::uint64_t flen = sockdetail::kFrameHeader + 8 + bytes.size();
  bool poke = false;
  {
    std::lock_guard<std::mutex> lk(p.mu);
    if (!p.alive) {
      stats_.dropped_dead.fetch_add(1, std::memory_order_relaxed);
      return true;  // consumed: link down, the reliable layer (if any) re-covers
    }
    if (opt_.outbound_budget != 0 &&
        p.queued.load(std::memory_order_relaxed) + flen > opt_.outbound_budget) {
      return false;  // ring full: the sender parks the envelope (backpressure)
    }
    std::vector<std::uint8_t> buf;
    if (!p.spare.empty()) {
      buf = std::move(p.spare.back());
      p.spare.pop_back();
      buf.clear();
    }
    sockdetail::append_frame(buf, from, to, bytes.data(), bytes.size());
    p.out.push_back(std::move(buf));
    poke = p.queued.fetch_add(flen, std::memory_order_relaxed) == 0;
  }
  stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
  if (poke) wake();
  return true;
}

void SocketBackend::wake() {
  // One armed wake at a time: the first sender after a pump drain pays the
  // pipe write; everyone else sees the flag and skips the syscall, so a
  // flood of senders can neither fill the pipe nor lose a wakeup (the pump
  // clears the flag BEFORE rescanning the peers — any frame enqueued after
  // the clear is seen by that rescan, any frame enqueued before it is
  // covered by the wake being drained).
  if (wake_armed_.exchange(true, std::memory_order_acq_rel)) return;
  const std::uint8_t b = 1;
  (void)!write(wake_wr_, &b, 1);  // nonblocking; one byte per armed wake
}

void SocketBackend::start() {
  PARIS_CHECK_MSG(!stopped_, "socket backend restarted after stop(); runs are one-shot");
  if (started_) return;
  started_ = true;

  int pipefd[2];
  PARIS_CHECK(pipe(pipefd) == 0);
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];
  set_nonblocking(wake_rd_);
  set_nonblocking(wake_wr_);

  // Listen socket: rank r binds its own endpoint from the host list, so a
  // multi-homed box (or CI's distinct loopback IPs) binds the exact address
  // peers will dial.
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  PARIS_CHECK(listen_fd_ >= 0);
  const int one = 1;
  (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::string rerr;
  PARIS_CHECK_MSG(resolve_ipv4(opt_.hosts[opt_.rank], &addr, &rerr),
                  "socket backend: cannot resolve own listen endpoint");
  PARIS_CHECK_MSG(bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
                  "socket backend: bind failed (port in use?)");
  PARIS_CHECK(listen(listen_fd_, 64) == 0);

  const std::uint64_t deadline_us =
      tb_.now_us() + opt_.connect_timeout_ms * 1000;

  // Dial every rank below ours (they listen first in launch order, but a
  // racing start is fine: retry until the deadline).
  for (std::uint32_t r = 0; r < opt_.rank; ++r) {
    PARIS_CHECK_MSG(dial_peer(r, deadline_us),
                    "socket backend: could not reach a lower-ranked peer");
  }

  // Accept every rank above ours; the hello names the dialer.
  std::uint32_t missing = opt_.nprocs - 1 - opt_.rank;
  while (missing > 0) {
    PARIS_CHECK_MSG(tb_.now_us() < deadline_us,
                    "socket backend: timed out waiting for higher-ranked peers");
    pollfd pfd{listen_fd_, POLLIN, 0};
    if (poll(&pfd, 1, kPollSliceMs) <= 0) continue;
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // Deadline-bounded hello read: a stray connector that sends fewer than
    // kHelloSize bytes and stalls (port scanner, a killed child of another
    // run) must not hang mesh setup past connect_timeout_ms.
    set_nonblocking(fd);
    std::uint8_t hello[sockdetail::kHelloSize];
    std::size_t got = 0;
    while (got < sizeof(hello) && tb_.now_us() < deadline_us) {
      pollfd hp{fd, POLLIN, 0};
      if (poll(&hp, 1, kPollSliceMs) <= 0) continue;
      const ssize_t n = read(fd, hello + got, sizeof(hello) - got);
      if (n <= 0 && !(n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))) break;
      if (n > 0) got += static_cast<std::size_t>(n);
    }
    std::uint32_t rank;
    std::uint64_t token;
    std::uint32_t epoch;
    std::uint32_t view;
    if (got != sizeof(hello) || !parse_hello(hello, rank, token, epoch, view) ||
        token != opt_.mesh_token || rank <= opt_.rank || rank >= opt_.nprocs ||
        peers_[rank]->alive) {
      close(fd);  // stranger (e.g. a concurrent run on our port range)
      continue;
    }
    if (!note_epoch(rank, epoch)) {  // a zombie old incarnation dialed in
      stats_.fenced_stale_epoch.fetch_add(1, std::memory_order_relaxed);
      close(fd);
      continue;
    }
    note_view(rank, view);
    set_nonblocking(fd);
    set_nodelay(fd);
    Peer& p = *peers_[rank];
    {
      std::lock_guard<std::mutex> lk(p.mu);
      p.fd = fd;
      p.alive = true;
      ++p.conn_gen;
    }
    queue_beacon(p);  // the dialer learns OUR epoch from the first beacon
    --missing;
  }

  set_nonblocking(listen_fd_);

  // Resolve the pump engine before the thread exists, so active_pump() and
  // the fallback note are stable from the caller's point of view.
  active_pump_ = opt_.pump;
  if (opt_.pump == SocketPump::kUring) {
    std::string why;
    uring_ = sockdetail::Uring::create(opt_.nprocs, &why);
    if (!uring_) {
      std::fprintf(stderr,
                   "[socket rank %u] io_uring unavailable (%s); falling back to poll\n",
                   opt_.rank, why.c_str());
      stats_.uring_fallback.store(1, std::memory_order_relaxed);
      active_pump_ = SocketPump::kPoll;
    }
  }

  io_running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { io_main(); });
  tb_.start();
}

bool SocketBackend::dial_peer(std::uint32_t r, std::uint64_t deadline_us) {
  sockaddr_in addr;
  std::string rerr;
  PARIS_CHECK_MSG(resolve_ipv4(opt_.hosts[r], &addr, &rerr),
                  "socket backend: cannot resolve peer endpoint");
  while (true) {  // always at least one attempt (redial passes a past deadline)
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    PARIS_CHECK(fd >= 0);
    if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
      std::uint8_t hello[sockdetail::kHelloSize];
      make_hello(hello, opt_.rank, opt_.mesh_token, opt_.epoch,
                 peer_views_[opt_.rank].load(std::memory_order_acquire));
      if (write(fd, hello, sizeof(hello)) != sizeof(hello)) {
        close(fd);
        return false;
      }
      set_nonblocking(fd);
      set_nodelay(fd);
      Peer& p = *peers_[r];
      {
        std::lock_guard<std::mutex> lk(p.mu);
        p.fd = fd;
        p.alive = true;
        ++p.conn_gen;
        p.redial_tries = 0;
        p.redial_backoff_us = 0;
        p.redial_gave_up = false;
      }
      queue_beacon(p);  // lease heartbeat; the hello already carried the epoch
      return true;
    }
    close(fd);
    if (tb_.now_us() >= deadline_us) return false;
    // Peer not listening yet (launch skew): back off briefly and retry.
    usleep(50'000);
  }
}

void SocketBackend::run_for(std::uint64_t us) {
  start();
  tb_.run_for(us);
}

void SocketBackend::stop() {
  if (stopped_) return;
  stopped_ = true;
  // Quiesce the workers first (no new forwards), then let the pump drain
  // what is already buffered — bounded, so a dead peer cannot hang stop().
  tb_.stop();
  if (io_thread_.joinable()) {
    flush_and_exit_.store(true, std::memory_order_release);
    wake();
    io_thread_.join();
  }
  io_running_.store(false, std::memory_order_release);
  uring_.reset();  // tears down the ring; kernel cancels anything in flight
  for (auto& p : peers_) {
    if (p->fd >= 0) close(p->fd);
    p->fd = -1;
    p->alive = false;
  }
  for (auto& pa : pending_) close(pa.fd);
  pending_.clear();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_rd_ >= 0) close(wake_rd_);
  if (wake_wr_ >= 0) close(wake_wr_);
  listen_fd_ = wake_rd_ = wake_wr_ = -1;
}

void SocketBackend::mark_dead_locked(Peer& p) {
  if (p.fd >= 0) {
    // shutdown() before close() kicks any uring op still targeting this fd
    // into completing promptly (EPIPE/ECONNRESET) instead of lingering.
    shutdown(p.fd, SHUT_RDWR);
    close(p.fd);
  }
  p.fd = -1;
  p.alive = false;
  ++p.conn_gen;
  // A TCP stream died mid-frame: both the half-read input and the
  // half-written output are unusable. The reliable layer retransmits over
  // the replacement connection; without it this is honest message loss.
  p.in.reset();
  p.out.clear();
  p.drain.clear();
  p.dcur.reset();
  p.queued.store(0, std::memory_order_relaxed);
  if (!p.send_inflight) p.sbuf_off = p.sbuf_len = 0;  // else: CQE gen-mismatch discards
  // Fresh dead episode: quick first retry, then exponential backoff.
  p.redial_tries = 0;
  p.redial_backoff_us = kRedialBaseUs;
  p.redial_gave_up = false;
  p.next_redial_us = tb_.now_us() + kRedialBaseUs;
}

void SocketBackend::mark_dead(Peer& p) {
  std::lock_guard<std::mutex> lk(p.mu);
  mark_dead_locked(p);
}

bool SocketBackend::process_inbound(Peer& p, std::size_t bytes_read) {
  stats_.bytes_in.fetch_add(bytes_read, std::memory_order_relaxed);
  sockdetail::FrameView f;
  while (p.in.next_view(f)) {  // zero-copy: straight into the envelope
    stats_.frames_in.fetch_add(1, std::memory_order_relaxed);
    if (f.to == sockdetail::kEpochBeaconDst) {
      // Pump-level epoch lease. A beacon from a STALE incarnation means
      // a zombie half of an old process still owns this connection:
      // fence the whole link before it can touch reliable windows.
      if (f.len != sockdetail::kBeaconBytes) {
        stats_.malformed_frames.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      std::uint32_t brank, bepoch, bview;
      std::memcpy(&brank, f.data, 4);
      std::memcpy(&bepoch, f.data + 4, 4);
      std::memcpy(&bview, f.data + 8, 4);
      if (brank >= opt_.nprocs || brank == opt_.rank || !note_epoch(brank, bepoch)) {
        stats_.fenced_stale_epoch.fetch_add(1, std::memory_order_relaxed);
        return false;  // caller tears the connection down
      }
      note_view(brank, bview);
      continue;
    }
    // The sender knows our node ids (identical registration order), so
    // anything out of range or non-local is a peer bug; drop it rather
    // than corrupt the mailboxes. Payload bytes crossed a process
    // boundary: validate before handing them to the strict (aborting)
    // in-process decoder — corruption is counted and dropped, never a
    // crash (the reliable layer re-covers dropped frames).
    if (f.to < node_dc_.size() && f.from < node_dc_.size() && is_local(f.to)) {
      if (!wire::validate_encoded_message(f.data, f.len)) {
        stats_.malformed_frames.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      tb_.inject_encoded(f.from, f.to, f.data, f.len);
    }
  }
  if (!p.in.ok()) return false;  // corrupt length prefix mid-stream
  if (p.in.buffered() != 0) {
    stats_.partial_reads.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

void SocketBackend::handle_readable(Peer& p) {
  const std::size_t chunk =
      opt_.batch_io ? sockdetail::kReadChunk : kUnbatchedReadChunk;
  while (true) {
    // Read straight into the reassembler's tail: one syscall drains as many
    // frames as the kernel has buffered, with no bounce-buffer memcpy.
    std::uint8_t* dst = p.in.reserve(chunk);
    const ssize_t n = recv(p.fd, dst, chunk, 0);
    if (n > 0) {
      stats_.read_syscalls.fetch_add(1, std::memory_order_relaxed);
      p.in.commit(static_cast<std::size_t>(n));
      if (!process_inbound(p, static_cast<std::size_t>(n))) {
        mark_dead(p);
        return;
      }
      if (static_cast<std::size_t>(n) < chunk) return;  // drained
      continue;
    }
    if (n == 0) {  // orderly EOF: peer stopped or restarted
      mark_dead(p);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
    mark_dead(p);
    return;
  }
}

bool SocketBackend::refill_drain(Peer& p) {
  if (!p.dcur.done(p.drain)) return true;  // resume the current batch first
  // Drain fully written: recycle its buffers and SWAP the producers' ring in
  // under the lock; the iovec flush itself runs with no lock held, so a slow
  // syscall burst never stalls a forwarding worker.
  std::lock_guard<std::mutex> lk(p.mu);
  for (auto& b : p.drain) {
    if (p.spare.size() < kSpareCap) {
      b.clear();
      p.spare.push_back(std::move(b));
    }
  }
  p.drain.clear();
  p.dcur.reset();
  if (p.out.empty()) return false;
  std::swap(p.out, p.drain);
  stats_.flushes.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void SocketBackend::handle_writable(Peer& p) {
  struct iovec iov[sockdetail::kMaxWritevIovecs];
  const std::size_t max_iov = opt_.batch_io ? sockdetail::kMaxWritevIovecs : 1;
  while (true) {
    if (!refill_drain(p)) return;
    const std::size_t cnt =
        p.dcur.build(p.drain, iov, max_iov, sockdetail::kMaxWritevBytes);
    if (cnt == 0) return;
    std::size_t total = 0;
    for (std::size_t i = 0; i < cnt; ++i) total += iov[i].iov_len;
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = cnt;
    // sendmsg == writev + MSG_NOSIGNAL (a raw writev to a dead peer would
    // raise SIGPIPE); one syscall flushes up to kMaxWritevIovecs frames.
    const ssize_t n = sendmsg(p.fd, &mh, MSG_NOSIGNAL);
    if (n > 0) {
      stats_.write_syscalls.fetch_add(1, std::memory_order_relaxed);
      stats_.bytes_out.fetch_add(static_cast<std::uint64_t>(n),
                                 std::memory_order_relaxed);
      p.dcur.advance(p.drain, static_cast<std::size_t>(n));
      p.queued.fetch_sub(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
      if (static_cast<std::size_t>(n) < total) {
        // Kernel buffer filled mid-chain: resume at the cursor on POLLOUT.
        stats_.short_writes.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      stats_.short_writes.fetch_add(1, std::memory_order_relaxed);
      return;  // kernel buffer full: resume on the next POLLOUT
    }
    mark_dead(p);  // EPIPE/ECONNRESET etc.
    return;
  }
}

void SocketBackend::accept_pending() {
  // New connections (mid-run reconnects from a restarted/redialing peer).
  while (true) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;
    set_nonblocking(fd);
    set_nodelay(fd);
    pending_.push_back(PendingAccept{fd, {}, 0});
  }
  // Progress hellos; attach completed ones.
  for (std::size_t i = 0; i < pending_.size();) {
    PendingAccept& pa = pending_[i];
    const ssize_t n = read(pa.fd, pa.hello + pa.got, sizeof(pa.hello) - pa.got);
    if (n > 0) pa.got += static_cast<std::size_t>(n);
    const bool err = (n == 0) || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                                  errno != EINTR);
    if (pa.got == sizeof(pa.hello)) {
      std::uint32_t rank;
      std::uint64_t token;
      std::uint32_t epoch;
      std::uint32_t view;
      if (parse_hello(pa.hello, rank, token, epoch, view) && token == opt_.mesh_token &&
          rank < opt_.nprocs && rank != opt_.rank) {
        if (!note_epoch(rank, epoch)) {
          // A dead incarnation of this rank redialed in: fence it.
          stats_.fenced_stale_epoch.fetch_add(1, std::memory_order_relaxed);
          close(pa.fd);
        } else {
          note_view(rank, view);
          Peer& p = *peers_[rank];
          {
            std::lock_guard<std::mutex> lk(p.mu);
            if (p.fd >= 0) close(p.fd);  // replaced: the peer restarted its side
            p.fd = pa.fd;
            p.alive = true;
            ++p.conn_gen;
            p.in.reset();
            p.out.clear();
            p.drain.clear();
            p.dcur.reset();
            p.queued.store(0, std::memory_order_relaxed);
            if (!p.send_inflight) p.sbuf_off = p.sbuf_len = 0;
            p.redial_tries = 0;
            p.redial_backoff_us = 0;
            p.redial_gave_up = false;
          }
          queue_beacon(p);
          stats_.reconnects.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        close(pa.fd);  // stranger or token mismatch: not our mesh
      }
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    if (err) {
      close(pa.fd);
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    ++i;
  }
}

int SocketBackend::periodic(std::uint64_t now) {
  // Redial dead peers we originally dialed; the accept side of a dead
  // link just waits for the peer's redial. Backoff doubles per failed
  // attempt up to the cap; the jitter is a pure function of
  // (seed, rank, attempt) so a run replays the same schedule.
  for (std::uint32_t r = 0; r < opt_.nprocs; ++r) {
    Peer& p = *peers_[r];
    if (p.alive || !p.we_dial || p.redial_gave_up || now < p.next_redial_us) {
      continue;
    }
    stats_.redial_attempts.fetch_add(1, std::memory_order_relaxed);
    if (dial_peer(r, now + 1)) {  // single quick attempt per period
      stats_.reconnects.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (++p.redial_tries >= kRedialMaxTries) {
      p.redial_gave_up = true;  // a respawned peer revives us by dialing in
      stats_.redial_giveups.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const std::uint64_t jitter =
        splitmix64(opt_.seed ^ (std::uint64_t{r} << 32) ^ p.redial_tries) %
        (p.redial_backoff_us / 4 + 1);
    p.next_redial_us = now + p.redial_backoff_us + jitter;
    p.redial_backoff_us = std::min(p.redial_backoff_us * 2, kRedialCapUs);
  }
  // Epoch lease heartbeat: every live connection re-announces our
  // incarnation so a peer that missed the hello (or a half-open zombie)
  // converges on the newest epoch within a beacon period.
  if (now >= next_beacon_us_) {
    for (auto& up : peers_) {
      if (up->alive) queue_beacon(*up);
    }
    next_beacon_us_ = now + kBeaconPeriodUs;
  }
  return kPollSliceMs;
}

void SocketBackend::io_main() {
#if PARIS_HAS_IO_URING
  if (uring_) {
    io_main_uring(*uring_);
    return;
  }
#endif
  io_main_poll();
}

void SocketBackend::io_main_poll() {
  std::vector<pollfd> pfds;
  std::vector<Peer*> order;
  std::uint64_t flush_deadline_us = 0;

  while (true) {
    const bool flushing = flush_and_exit_.load(std::memory_order_acquire);
    if (flushing && flush_deadline_us == 0) {
      flush_deadline_us = tb_.now_us() + kFlushBudgetUs;
    }

    pfds.clear();
    order.clear();
    pfds.push_back(pollfd{wake_rd_, POLLIN, 0});
    pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
    bool any_out = false;
    for (auto& up : peers_) {
      Peer& p = *up;
      if (!p.alive || p.fd < 0) continue;
      if (p.stalled.load(std::memory_order_acquire)) continue;  // debug hook
      short ev = POLLIN;
      if (out_pending(p)) {
        ev |= POLLOUT;
        any_out = true;
      }
      pfds.push_back(pollfd{p.fd, ev, 0});
      order.push_back(&p);
    }
    for (const auto& pa : pending_) pfds.push_back(pollfd{pa.fd, POLLIN, 0});

    if (flushing && (!any_out || tb_.now_us() >= flush_deadline_us)) break;

    poll(pfds.data(), static_cast<nfds_t>(pfds.size()), kPollSliceMs);

    if (pfds[0].revents & POLLIN) {  // drain the wake pipe, then re-arm
      std::uint8_t sink[256];
      while (read(wake_rd_, sink, sizeof(sink)) > 0) {
      }
    }
    // Disarm BEFORE scanning: a sender that skips its pipe write because the
    // flag was still set must have enqueued before this store, and the scan
    // below sees its frame. (Clearing after the scan would lose it.)
    wake_armed_.store(false, std::memory_order_release);

    if (pfds[1].revents & POLLIN) accept_pending();
    if (!pending_.empty()) accept_pending();  // progress partial hellos

    for (std::size_t i = 0; i < order.size(); ++i) {
      Peer& p = *order[i];
      const short rev = pfds[2 + i].revents;
      if (p.alive && (rev & (POLLIN | POLLHUP | POLLERR))) handle_readable(p);
      if (p.alive && p.fd >= 0) handle_writable(p);  // opportunistic drain
    }

    if (!flushing) periodic(tb_.now_us());
  }
}

SocketStats SocketBackend::stats() const {
  SocketStats s;
  s.frames_out = stats_.frames_out.load(std::memory_order_relaxed);
  s.frames_in = stats_.frames_in.load(std::memory_order_relaxed);
  s.bytes_out = stats_.bytes_out.load(std::memory_order_relaxed);
  s.bytes_in = stats_.bytes_in.load(std::memory_order_relaxed);
  s.partial_reads = stats_.partial_reads.load(std::memory_order_relaxed);
  s.short_writes = stats_.short_writes.load(std::memory_order_relaxed);
  s.reconnects = stats_.reconnects.load(std::memory_order_relaxed);
  s.dropped_dead = stats_.dropped_dead.load(std::memory_order_relaxed);
  s.redial_attempts = stats_.redial_attempts.load(std::memory_order_relaxed);
  s.redial_giveups = stats_.redial_giveups.load(std::memory_order_relaxed);
  s.fenced_stale_epoch = stats_.fenced_stale_epoch.load(std::memory_order_relaxed);
  s.malformed_frames = stats_.malformed_frames.load(std::memory_order_relaxed);
  s.read_syscalls = stats_.read_syscalls.load(std::memory_order_relaxed);
  s.write_syscalls = stats_.write_syscalls.load(std::memory_order_relaxed);
  s.flushes = stats_.flushes.load(std::memory_order_relaxed);
  s.uring_fallback = stats_.uring_fallback.load(std::memory_order_relaxed);
  // Backpressure is observed where it bites: the ThreadBackend's router
  // park path (the sender side of the seam).
  s.backpressure_stalls = tb_.router_parks();
  s.backpressure_drops = tb_.router_park_drops();
  return s;
}

void SocketBackend::debug_kill_connection(std::uint32_t peer_rank) {
  Peer& p = *peers_[peer_rank];
  std::lock_guard<std::mutex> lk(p.mu);
  if (p.fd >= 0) shutdown(p.fd, SHUT_RDWR);  // pump sees EOF and tears down
}

void SocketBackend::debug_stall_peer(std::uint32_t peer_rank, bool stalled) {
  peers_[peer_rank]->stalled.store(stalled, std::memory_order_release);
  if (started_) wake();  // unstall promptly
}

std::uint64_t SocketBackend::debug_outbound_queued(std::uint32_t peer_rank) const {
  return peers_[peer_rank]->queued.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// io_uring engine (DESIGN §12). Raw syscalls — no liburing dependency.
// ---------------------------------------------------------------------------

#if PARIS_HAS_IO_URING

bool SocketBackend::probe_io_uring(std::string* why) {
  auto ur = sockdetail::Uring::create(1, why);
  return ur != nullptr;
}

void SocketBackend::io_main_uring(sockdetail::Uring& ur) {
  using U = sockdetail::Uring;
  std::uint64_t flush_deadline_us = 0;

  // Stages the next outbound batch for `p` into its stable sbuf. Drain
  // buffers recycle at staging time; the kernel only ever reads sbuf, which
  // is never resized while a send is in flight (sends are armed one at a
  // time per peer).
  auto stage_send = [&](Peer& p) {
    if (p.sbuf_off < p.sbuf_len) return true;  // resume the unsent remainder
    if (!refill_drain(p)) return false;
    struct iovec iov[sockdetail::kMaxWritevIovecs];
    const std::size_t max_iov = opt_.batch_io ? sockdetail::kMaxWritevIovecs : 1;
    const std::size_t cnt =
        p.dcur.build(p.drain, iov, max_iov, sockdetail::kMaxWritevBytes);
    if (cnt == 0) return false;
    std::size_t total = 0;
    for (std::size_t i = 0; i < cnt; ++i) total += iov[i].iov_len;
    if (p.sbuf.size() < total) p.sbuf.resize(total);
    std::size_t off = 0;
    for (std::size_t i = 0; i < cnt; ++i) {
      std::memcpy(p.sbuf.data() + off, iov[i].iov_base, iov[i].iov_len);
      off += iov[i].iov_len;
    }
    p.sbuf_off = 0;
    p.sbuf_len = total;
    p.dcur.advance(p.drain, total);  // staged == as good as queued for order
    return true;
  };

  while (true) {
    const bool flushing = flush_and_exit_.load(std::memory_order_acquire);
    if (flushing && flush_deadline_us == 0) {
      flush_deadline_us = tb_.now_us() + kFlushBudgetUs;
    }
    bool any_out = false;
    for (std::uint32_t r = 0; r < opt_.nprocs; ++r) {
      Peer& p = *peers_[r];
      if (p.alive && (out_pending(p) || p.send_inflight)) any_out = true;
    }
    if (flushing && (!any_out || tb_.now_us() >= flush_deadline_us)) break;

    // Arm everything that should be listening. A full SQ just defers the op
    // to the next loop — completions free slots monotonically.
    if (!ur.wake_op_armed) {
      if (auto* e = ur.get_sqe(U::ud(U::kWakeOp, 0, 0))) {
        e->opcode = IORING_OP_READ;
        e->fd = wake_rd_;
        e->addr = reinterpret_cast<std::uint64_t>(ur.wake_buf);
        e->len = sizeof(ur.wake_buf);
        ur.wake_op_armed = true;
      }
    }
    if (!ur.listen_armed) {
      if (auto* e = ur.get_sqe(U::ud(U::kListen, 0, 0))) {
        e->opcode = IORING_OP_POLL_ADD;
        e->fd = listen_fd_;
        e->poll_events = POLLIN;
        ur.listen_armed = true;
      }
    }
    if (!ur.tick_armed) {
      if (auto* e = ur.get_sqe(U::ud(U::kTick, 0, 0))) {
        ur.tick_ts.tv_sec = 0;
        ur.tick_ts.tv_nsec = 50'000'000;  // beacon/redial cadence
        e->opcode = IORING_OP_TIMEOUT;
        e->addr = reinterpret_cast<std::uint64_t>(&ur.tick_ts);
        e->len = 1;
        ur.tick_armed = true;
      }
    }
    for (std::uint32_t r = 0; r < opt_.nprocs; ++r) {
      Peer& p = *peers_[r];
      if (!p.alive || p.fd < 0 || p.stalled.load(std::memory_order_acquire)) continue;
      if (!p.recv_inflight) {
        const std::size_t chunk =
            opt_.batch_io ? sockdetail::kReadChunk : kUnbatchedReadChunk;
        // The reassembler tail is stable until the completion: nothing else
        // touches p.in while this op is in flight (reset() keeps capacity).
        std::uint8_t* dst = p.in.reserve(chunk);
        if (auto* e = ur.get_sqe(U::ud(U::kRecv, r, p.conn_gen))) {
          e->opcode = IORING_OP_RECV;
          e->fd = p.fd;
          e->addr = reinterpret_cast<std::uint64_t>(dst);
          e->len = static_cast<unsigned>(chunk);
          p.recv_inflight = true;
        }
      }
      if (!p.send_inflight && stage_send(p)) {
        if (auto* e = ur.get_sqe(U::ud(U::kSend, r, p.conn_gen))) {
          e->opcode = IORING_OP_SEND;
          e->fd = p.fd;
          e->addr = reinterpret_cast<std::uint64_t>(p.sbuf.data() + p.sbuf_off);
          e->len = static_cast<unsigned>(p.sbuf_len - p.sbuf_off);
          e->msg_flags = MSG_NOSIGNAL;
          p.send_inflight = true;
        }
      }
    }

    ur.submit_and_wait();

    io_uring_cqe cqe;
    while (ur.pop(cqe)) {
      const unsigned kind = static_cast<unsigned>(cqe.user_data >> 56);
      const std::uint32_t r = static_cast<std::uint32_t>(cqe.user_data >> 32) &
                              0x00FF'FFFFu;
      const std::uint32_t gen = static_cast<std::uint32_t>(cqe.user_data);
      switch (kind) {
        case U::kWakeOp: {
          ur.wake_op_armed = false;
          std::uint8_t sink[256];
          while (read(wake_rd_, sink, sizeof(sink)) > 0) {
          }
          wake_armed_.store(false, std::memory_order_release);
          break;
        }
        case U::kListen:
          ur.listen_armed = false;
          accept_pending();
          break;
        case U::kTick:
          ur.tick_armed = false;  // periodic work runs below every loop
          break;
        case U::kRecv: {
          Peer& p = *peers_[r];
          p.recv_inflight = false;
          if (gen != p.conn_gen) break;  // a previous connection's completion
          if (cqe.res > 0) {
            stats_.read_syscalls.fetch_add(1, std::memory_order_relaxed);
            p.in.commit(static_cast<std::size_t>(cqe.res));
            if (!process_inbound(p, static_cast<std::size_t>(cqe.res))) mark_dead(p);
          } else if (cqe.res == 0) {
            mark_dead(p);  // orderly EOF
          } else if (cqe.res != -EAGAIN && cqe.res != -EINTR) {
            mark_dead(p);
          }
          break;
        }
        case U::kSend: {
          Peer& p = *peers_[r];
          p.send_inflight = false;
          if (gen != p.conn_gen) {
            p.sbuf_off = p.sbuf_len = 0;  // stale staging: discard
            break;
          }
          if (cqe.res > 0) {
            stats_.write_syscalls.fetch_add(1, std::memory_order_relaxed);
            stats_.bytes_out.fetch_add(static_cast<std::uint64_t>(cqe.res),
                                       std::memory_order_relaxed);
            p.sbuf_off += static_cast<std::size_t>(cqe.res);
            p.queued.fetch_sub(static_cast<std::uint64_t>(cqe.res),
                               std::memory_order_relaxed);
            if (p.sbuf_off < p.sbuf_len) {
              stats_.short_writes.fetch_add(1, std::memory_order_relaxed);
            }
          } else if (cqe.res != -EAGAIN && cqe.res != -EINTR) {
            mark_dead(p);
          }
          break;
        }
        default:
          break;
      }
    }

    if (!pending_.empty()) accept_pending();  // progress partial hellos
    if (!flushing) periodic(tb_.now_us());
  }
}

#else  // !PARIS_HAS_IO_URING

bool SocketBackend::probe_io_uring(std::string* why) {
  if (why) *why = "built without <linux/io_uring.h>";
  return false;
}

void SocketBackend::io_main_uring(sockdetail::Uring&) {}

#endif  // PARIS_HAS_IO_URING

}  // namespace paris::runtime
