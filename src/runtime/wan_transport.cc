#include "runtime/wan_transport.h"

namespace paris::runtime {

WanTransport::WanTransport(Transport& inner, Executor& exec, WanConfig cfg)
    : TransportDecorator(inner),
      exec_(exec),
      cfg_(std::move(cfg)),
      draws_(splitmix64(cfg_.seed ^ 0x77616e5452505854ull)),  // salt: "wanTRPXT"
      ge_(cfg_.episodes.size()) {}

bool WanTransport::chain_state(std::size_t ep, std::uint64_t slot) {
  std::lock_guard<std::mutex> lk(ge_mu_);
  GeChain& c = ge_[ep];
  const WanLinkEpisode& e = cfg_.episodes[ep];
  while (c.bad.size() <= slot) {
    const std::uint64_t k = c.bad.size();
    const bool prev = k == 0 ? false : c.bad[k - 1];  // chains start good
    // Transition draw: a pure function of (seed, episode, slot) — every
    // thread/process extending this chain computes identical states.
    const std::uint64_t h =
        splitmix64(splitmix64(cfg_.seed ^ 0x4745636861696eull ^ ep) ^ k);  // "GEchain"
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    c.bad.push_back(prev ? (u >= e.p_bad_good) : (u < e.p_good_bad));
  }
  return c.bad[slot];
}

bool WanTransport::ge_bad(std::size_t ep, std::uint64_t now) {
  const WanLinkEpisode& e = cfg_.episodes[ep];
  const std::uint64_t slot = now >= e.start_us ? (now - e.start_us) / kGeSlotUs : 0;
  return chain_state(ep, slot);
}

void WanTransport::send_at(NodeId from, NodeId to, wire::MessagePtr msg,
                           std::uint64_t at_us) {
  const DcId da = dc_of(from), db = dc_of(to);
  if (da == db) {  // intra-DC traffic never crosses a WAN link
    inner_.send_at(from, to, std::move(msg), at_us);
    return;
  }
  const std::uint64_t now = exec_.now_us();
  std::uint64_t deliver_at = at_us;
  bool shaped = false;
  for (std::size_t i = 0; i < cfg_.episodes.size(); ++i) {
    const WanLinkEpisode& e = cfg_.episodes[i];
    if (!e.matches(da, db, now)) continue;
    shaped = true;

    // Correlated loss first: a message eaten by a burst pays nothing else.
    if (e.has_loss()) {
      const double p = ge_bad(i, now) ? e.loss_bad : e.loss_good;
      if (p > 0 && draws_.next(from, to) < p) {
        std::lock_guard<std::mutex> lk(stats_mu_);
        ++stats_.ge_dropped;
        ++stats_.shaped;
        return;  // msg released, never delivered
      }
    }

    // Bandwidth cap: the link is a FIFO pipe; this message departs when the
    // pipe has drained everything ahead of it plus its own serialization
    // time. Keyed by directed DC pair so both directions own private pipes.
    if (e.bandwidth_bytes_per_us > 0) {
      const std::uint64_t bytes = msg->wire_size() + 1;  // +1 type tag
      const std::uint64_t ser_us =
          (bytes + e.bandwidth_bytes_per_us - 1) / e.bandwidth_bytes_per_us;
      const std::uint64_t key = (static_cast<std::uint64_t>(da) << 32) | db;
      std::uint64_t depart;
      std::uint64_t waited = 0;
      {
        std::lock_guard<std::mutex> lk(pipe_mu_);
        Pipe& pipe = pipes_[key];
        const std::uint64_t start = pipe.free_at_us > at_us ? pipe.free_at_us : at_us;
        waited = start - at_us;
        depart = start + ser_us;
        pipe.free_at_us = depart;
      }
      deliver_at = deliver_at > depart ? deliver_at : depart;
      if (waited > 0) {
        std::lock_guard<std::mutex> lk(stats_mu_);
        ++stats_.bw_queued;
        stats_.bw_wait_us += waited;
      }
    }

    // Time-varying extra delay: linear ramp across the episode window.
    if (e.extra_delay_start_us != 0 || e.extra_delay_end_us != 0) {
      const std::uint64_t span = e.end_us - e.start_us;
      const std::uint64_t off = now - e.start_us;
      const double frac = span != 0 ? static_cast<double>(off) / static_cast<double>(span)
                                    : 0.0;
      const double d = static_cast<double>(e.extra_delay_start_us) +
                       frac * (static_cast<double>(e.extra_delay_end_us) -
                               static_cast<double>(e.extra_delay_start_us));
      deliver_at += static_cast<std::uint64_t>(d);
    }

    if (e.duplicate_p > 0 && idempotent_message_class(*msg) &&
        draws_.next(from, to) < e.duplicate_p) {
      inner_.send_at(from, to, msg, deliver_at);  // handle copy, same payload
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++stats_.duplicated;
    }
  }
  if (shaped) {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++stats_.shaped;
  }
  inner_.send_at(from, to, std::move(msg), deliver_at);
}

WanTransport::Stats WanTransport::stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return stats_;
}

}  // namespace paris::runtime
