#pragma once
// Executor: the scheduling surface the protocol layer programs against
// instead of sim::Simulation. Implementations: runtime::SimBackend (the
// deterministic discrete-event loop) and runtime::ThreadBackend (real
// worker threads + steady-clock timers).
//
// Every deferred task and timer is bound to an actor: the backend runs it
// on that actor's execution context, so actor state needs no locking. The
// sim backend has a single context (the event loop); the thread backend has
// one per worker.

#include <cstdint>
#include <functional>
#include <utility>

#include "common/types.h"

namespace paris::runtime {

class TimerHandle;

class Executor {
 public:
  virtual ~Executor() = default;

  /// Monotonic time in µs: simulated time (sim) or steady-clock time since
  /// backend construction (threads).
  virtual std::uint64_t now_us() const = 0;

  /// Runs fn on `actor`'s execution context, always asynchronously — the
  /// caller continues before fn runs (sim: an event at now; threads: a
  /// mailbox task). Must be called from `actor`'s own context (or before
  /// the backend started).
  virtual void defer(NodeId actor, std::function<void()> fn) = 0;

  /// Runs fn on `actor`'s execution context from *outside* it (driver
  /// setup): inline for the sim backend, whose driving thread is the only
  /// context; a mailbox task for the thread backend.
  virtual void post(NodeId actor, std::function<void()> fn) = 0;

  /// Periodic timer on `actor`'s context: first fire at now + phase, then
  /// every period. Prefer every(), which wraps the id in a RAII handle.
  virtual std::uint64_t start_periodic(NodeId actor, std::uint64_t period_us,
                                       std::uint64_t phase_us,
                                       std::function<void()> fn) = 0;
  /// Cancels a periodic timer; safe after the backend stopped and on ids
  /// already cancelled.
  virtual void cancel_periodic(std::uint64_t id) = 0;

  TimerHandle every(NodeId actor, std::uint64_t period_us, std::uint64_t phase_us,
                    std::function<void()> fn);
};

/// RAII periodic-timer handle: cancels the timer when destroyed or reset
/// (replaces sim::Simulation::PeriodicHandle at the protocol layer).
class TimerHandle {
 public:
  TimerHandle() = default;
  TimerHandle(Executor* exec, std::uint64_t id) : exec_(exec), id_(id) {}
  TimerHandle(const TimerHandle&) = delete;
  TimerHandle& operator=(const TimerHandle&) = delete;
  TimerHandle(TimerHandle&& o) noexcept : exec_(o.exec_), id_(o.id_) { o.exec_ = nullptr; }
  TimerHandle& operator=(TimerHandle&& o) noexcept {
    if (this != &o) {
      cancel();
      exec_ = o.exec_;
      id_ = o.id_;
      o.exec_ = nullptr;
    }
    return *this;
  }
  ~TimerHandle() { cancel(); }

  void cancel() {
    if (exec_ != nullptr) {
      exec_->cancel_periodic(id_);
      exec_ = nullptr;
    }
  }

 private:
  Executor* exec_ = nullptr;
  std::uint64_t id_ = 0;
};

inline TimerHandle Executor::every(NodeId actor, std::uint64_t period_us,
                                   std::uint64_t phase_us, std::function<void()> fn) {
  return TimerHandle(this, start_periodic(actor, period_us, phase_us, std::move(fn)));
}

}  // namespace paris::runtime
